// Builds the orchestrator's resource view from a live emulated network
// ("based on a global network and resource view, it is responsible for
// mapping service requests to available resources").
#pragma once

#include "netemu/network.hpp"
#include "sg/resource_model.hpp"

namespace escape::orchestrator {

/// Snapshots `network` into a ResourceGraph: hosts become SAPs, switches
/// and containers keep their kind, links carry their configured
/// bandwidth and delay.
sg::ResourceGraph resource_view_from(netemu::Network& network);

}  // namespace escape::orchestrator
