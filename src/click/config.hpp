// Parser for the Click configuration language subset used by the VNF
// catalog, and the factory registry mapping class names to elements.
//
// Supported syntax:
//   src :: RatedSource(RATE 1000);         // declaration
//   src -> Queue(100) -> sink;             // chains with inline anonymous
//   cl[1] -> [0]out; cl [2] -> Discard;    // port specifiers
//   elementclass CountedQueue {            // compound element classes
//     input -> q :: Queue(100);
//     q -> Unqueue -> Counter -> output;
//   }
//   cq :: CountedQueue; src2 -> cq -> sink2;
//   // line and /* block */ comments
//
// Compounds are expanded at parse time: inner elements are instantiated
// as "<instance>/<inner>" and the compound's input[i]/output[j] pseudo
// ports are spliced into the surrounding connections. Not supported
// (documented limitation vs. full Click): compound arguments ($VAR),
// require statements.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "click/router.hpp"
#include "util/result.hpp"

namespace escape::click {

/// Factory registry: Click class name -> element constructor.
class ElementRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Element>()>;

  /// The process-wide registry preloaded with the standard library
  /// (see elements.hpp).
  static ElementRegistry& global();

  void register_class(std::string class_name, Factory factory);
  bool has(std::string_view class_name) const;
  std::unique_ptr<Element> create(std::string_view class_name) const;
  std::vector<std::string> class_names() const;

 private:
  std::map<std::string, Factory, std::less<>> factories_;
};

/// A parsed element declaration.
struct Declaration {
  std::string name;
  std::string class_name;
  std::string config;  // raw argument string
};

/// Parse result: declarations in order plus connections. Compound
/// classes are already expanded away.
struct ParsedConfig {
  std::vector<Declaration> declarations;
  std::vector<Connection> connections;
};

/// Parses configuration text (syntax only; class names are not checked
/// except compound references, which are expanded).
Result<ParsedConfig> parse_config(std::string_view text);

/// Parses `text`, instantiates elements through `registry`, configures
/// them, wires connections and initializes the router.
Result<std::unique_ptr<Router>> build_router(std::string_view text, EventScheduler& scheduler,
                                             const ElementRegistry& registry =
                                                 ElementRegistry::global());

}  // namespace escape::click
