// Canonical chaos workload: the standard chain lifecycle (deploy ->
// traffic -> scale-out -> container kill -> restore -> scale-in ->
// settle) over a two-switch, two-container topology, every step
// fault-tolerant so any armed schedule can perturb it.
#pragma once

#include "chaos/explorer.hpp"

namespace escape::chaos {

struct LifecycleScenarioOptions {
  /// Worker threads of the sharded engine. The scenario always pins
  /// shard_by = kSwitch, so order digests are comparable across thread
  /// counts (the partition, not the pool size, fixes event ordering).
  std::size_t threads = 1;
  /// Health-probe tuning forwarded into enable_self_healing().
  SimDuration probe_interval = 20 * timeunit::kMillisecond;
  SimDuration probe_timeout = 10 * timeunit::kMillisecond;
  int probe_miss = 2;
};

/// Builds the deploy/scale/kill/restore/scale lifecycle scenario.
Scenario lifecycle_scenario(LifecycleScenarioOptions options = {});

}  // namespace escape::chaos
