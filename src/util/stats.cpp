#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace escape {

void Histogram::record(double sample) {
  samples_.push_back(sample);
  sorted_valid_ = false;
  sum_ += sample;
  sum_sq_ += sample * sample;
  min_ = std::min(min_, sample);
  max_ = std::max(max_, sample);
}

double Histogram::min() const { return samples_.empty() ? 0.0 : min_; }
double Histogram::max() const { return samples_.empty() ? 0.0 : max_; }

double Histogram::mean() const {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double Histogram::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double n = static_cast<double>(samples_.size());
  const double m = sum_ / n;
  const double var = std::max(0.0, sum_sq_ / n - m * m);
  return std::sqrt(var);
}

void Histogram::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Histogram::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted_.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

void Histogram::clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
  sum_ = sum_sq_ = 0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

std::string Histogram::summary() const {
  return strings::format("n=%zu mean=%.3f p50=%.3f p95=%.3f max=%.3f",
                         count(), mean(), p50(), p95(), max());
}

}  // namespace escape
