#include "openflow/flow_table.hpp"

#include <algorithm>

namespace escape::openflow {

bool FlowTable::expired(const FlowEntry& e, SimTime now) const {
  if (e.hard_timeout && now >= e.installed_at + e.hard_timeout) return true;
  if (e.idle_timeout && now >= e.last_hit + e.idle_timeout) return true;
  return false;
}

void FlowTable::fire_removed(const FlowEntry& e, FlowRemovedReason reason) {
  if (e.send_flow_removed && removed_cb_) removed_cb_(e, reason);
}

void FlowTable::add_entry(FlowEntry entry) {
  if (entry.match.is_exact()) {
    exact_[entry.match.fields()] = std::move(entry);
    return;
  }
  // Insert keeping descending priority order; equal priorities keep
  // insertion order (stable).
  auto pos = std::upper_bound(
      wildcard_.begin(), wildcard_.end(), entry.priority,
      [](std::uint16_t prio, const FlowEntry& e) { return prio > e.priority; });
  wildcard_.insert(pos, std::move(entry));
}

void FlowTable::delete_matching(const Match& match, bool strict,
                                std::optional<std::uint16_t> priority) {
  auto should_delete = [&](const FlowEntry& e) {
    if (strict) {
      return e.match == match && (!priority || e.priority == *priority);
    }
    // Non-strict: delete entries whose match is "covered" by the given
    // match template. For simplicity we test whether the template matches
    // the entry's concrete fields when the entry is exact, or equality
    // otherwise; a wildcard-all template deletes everything.
    if (match.is_table_miss()) return true;
    if (e.match.is_exact()) return match.matches(e.match.fields());
    return e.match == match;
  };

  for (auto it = exact_.begin(); it != exact_.end();) {
    if (should_delete(it->second)) {
      fire_removed(it->second, FlowRemovedReason::kDelete);
      it = exact_.erase(it);
    } else {
      ++it;
    }
  }
  std::erase_if(wildcard_, [&](const FlowEntry& e) {
    if (should_delete(e)) {
      fire_removed(e, FlowRemovedReason::kDelete);
      return true;
    }
    return false;
  });
}

void FlowTable::apply(const FlowMod& mod, SimTime now) {
  ++version_;  // any flow-mod may add/remove/rewrite entries
  switch (mod.command) {
    case FlowModCommand::kAdd: {
      // OF 1.0: identical match+priority overwrites (counters reset).
      // Exact adds overwrite via the hash map directly; wildcard adds
      // only need to examine entries of equal priority (the vector is
      // sorted by priority, so the scan is bounded to that range).
      if (mod.match.is_exact()) {
        auto it = exact_.find(mod.match.fields());
        if (it != exact_.end()) {
          fire_removed(it->second, FlowRemovedReason::kDelete);
          exact_.erase(it);
        }
      } else {
        auto lo = std::lower_bound(
            wildcard_.begin(), wildcard_.end(), mod.priority,
            [](const FlowEntry& e, std::uint16_t prio) { return e.priority > prio; });
        auto hi = std::upper_bound(
            lo, wildcard_.end(), mod.priority,
            [](std::uint16_t prio, const FlowEntry& e) { return prio > e.priority; });
        for (auto it = lo; it != hi;) {
          if (it->match == mod.match) {
            fire_removed(*it, FlowRemovedReason::kDelete);
            it = wildcard_.erase(it);
            hi = std::upper_bound(
                it, wildcard_.end(), mod.priority,
                [](std::uint16_t prio, const FlowEntry& e) { return prio > e.priority; });
          } else {
            ++it;
          }
        }
      }
      FlowEntry e;
      e.match = mod.match;
      e.priority = mod.priority;
      e.cookie = mod.cookie;
      e.idle_timeout = mod.idle_timeout;
      e.hard_timeout = mod.hard_timeout;
      e.actions = mod.actions;
      e.send_flow_removed = mod.send_flow_removed;
      e.installed_at = now;
      e.last_hit = now;
      add_entry(std::move(e));
      break;
    }
    case FlowModCommand::kModify: {
      bool any = false;
      auto modify = [&](FlowEntry& e) {
        if (e.match == mod.match) {
          e.actions = mod.actions;
          e.cookie = mod.cookie;
          any = true;
        }
      };
      for (auto& [_, e] : exact_) modify(e);
      for (auto& e : wildcard_) modify(e);
      if (!any) apply(FlowMod{FlowModCommand::kAdd, mod.match, mod.priority, mod.cookie,
                              mod.idle_timeout, mod.hard_timeout, mod.actions, mod.buffer_id,
                              mod.send_flow_removed},
                      now);
      break;
    }
    case FlowModCommand::kDelete:
      delete_matching(mod.match, /*strict=*/false, std::nullopt);
      break;
    case FlowModCommand::kDeleteStrict:
      delete_matching(mod.match, /*strict=*/true, mod.priority);
      break;
  }
}

FlowEntry* FlowTable::lookup(const net::FlowKey& key, std::size_t packet_bytes, SimTime now) {
  ++lookups_;

  // Miss memo fast path: this key already scanned the whole table under
  // the current version and matched nothing.
  if (miss_memo_version_ == version_ && !miss_memo_.empty() &&
      miss_memo_.find(key) != miss_memo_.end()) {
    ++miss_short_circuits_;
    return nullptr;
  }

  // Exact-match fast path.
  if (auto it = exact_.find(key); it != exact_.end()) {
    if (expired(it->second, now)) {
      fire_removed(it->second,
                   it->second.hard_timeout && now >= it->second.installed_at +
                                                         it->second.hard_timeout
                       ? FlowRemovedReason::kHardTimeout
                       : FlowRemovedReason::kIdleTimeout);
      exact_.erase(it);
      ++version_;
    } else {
      // An exact entry always outranks wildcards only if no wildcard has
      // strictly higher priority; check the top of the wildcard list.
      FlowEntry& e = it->second;
      const FlowEntry* better = nullptr;
      for (const auto& w : wildcard_) {
        if (w.priority <= e.priority) break;
        if (!expired(w, now) && w.match.matches(key)) {
          better = &w;
          break;
        }
      }
      if (!better) {
        e.packet_count++;
        e.byte_count += packet_bytes;
        e.last_hit = now;
        ++matched_;
        return &e;
      }
    }
  }

  // Wildcard scan in priority order, evicting expired entries lazily.
  for (auto it = wildcard_.begin(); it != wildcard_.end();) {
    if (expired(*it, now)) {
      fire_removed(*it, it->hard_timeout && now >= it->installed_at + it->hard_timeout
                            ? FlowRemovedReason::kHardTimeout
                            : FlowRemovedReason::kIdleTimeout);
      it = wildcard_.erase(it);
      ++version_;
      continue;
    }
    if (it->match.matches(key)) {
      it->packet_count++;
      it->byte_count += packet_bytes;
      it->last_hit = now;
      ++matched_;
      return &*it;
    }
    ++it;
  }
  if (miss_memo_version_ != version_ || miss_memo_.size() >= kMissMemoCap) {
    miss_memo_.clear();
    miss_memo_version_ = version_;
  }
  miss_memo_.insert(key);
  return nullptr;
}

std::size_t FlowTable::expire(SimTime now) {
  std::size_t evicted = 0;
  for (auto it = exact_.begin(); it != exact_.end();) {
    if (expired(it->second, now)) {
      fire_removed(it->second, it->second.hard_timeout && now >= it->second.installed_at +
                                                                     it->second.hard_timeout
                                   ? FlowRemovedReason::kHardTimeout
                                   : FlowRemovedReason::kIdleTimeout);
      it = exact_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  std::erase_if(wildcard_, [&](const FlowEntry& e) {
    if (expired(e, now)) {
      fire_removed(e, e.hard_timeout && now >= e.installed_at + e.hard_timeout
                          ? FlowRemovedReason::kHardTimeout
                          : FlowRemovedReason::kIdleTimeout);
      ++evicted;
      return true;
    }
    return false;
  });
  if (evicted) ++version_;
  return evicted;
}

void FlowTable::record_hit(FlowEntry& entry, std::size_t packet_bytes, SimTime now) {
  ++lookups_;
  entry.packet_count++;
  entry.byte_count += packet_bytes;
  entry.last_hit = now;
  ++matched_;
}

std::vector<FlowStatsEntry> FlowTable::stats(SimTime now) const {
  std::vector<FlowStatsEntry> out;
  out.reserve(size());
  auto emit = [&](const FlowEntry& e) {
    FlowStatsEntry s;
    s.match = e.match;
    s.priority = e.priority;
    s.cookie = e.cookie;
    s.packet_count = e.packet_count;
    s.byte_count = e.byte_count;
    s.age = now - e.installed_at;
    s.actions = e.actions;
    out.push_back(std::move(s));
  };
  for (const auto& [_, e] : exact_) emit(e);
  for (const auto& e : wildcard_) emit(e);
  return out;
}

void FlowTable::clear() {
  exact_.clear();
  wildcard_.clear();
  ++version_;
}

}  // namespace escape::openflow
