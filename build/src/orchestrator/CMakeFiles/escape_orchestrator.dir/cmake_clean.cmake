file(REMOVE_RECURSE
  "CMakeFiles/escape_orchestrator.dir/deployment.cpp.o"
  "CMakeFiles/escape_orchestrator.dir/deployment.cpp.o.d"
  "CMakeFiles/escape_orchestrator.dir/mapping.cpp.o"
  "CMakeFiles/escape_orchestrator.dir/mapping.cpp.o.d"
  "CMakeFiles/escape_orchestrator.dir/view.cpp.o"
  "CMakeFiles/escape_orchestrator.dir/view.cpp.o.d"
  "libescape_orchestrator.a"
  "libescape_orchestrator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escape_orchestrator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
