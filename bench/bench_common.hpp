// Shared topology builders for the benchmark suite.
#pragma once

#include "escape/environment.hpp"

namespace escape::benchutil {

/// Linear topology: sap1 - s1 - s2 - ... - sN - sap2, one container per
/// switch. Every link 1 Gb/s, 100 us.
inline void build_linear(Environment& env, int n_switches) {
  auto& net = env.network();
  netemu::LinkConfig cfg;
  cfg.bandwidth_bps = 1'000'000'000;
  cfg.delay = 100 * timeunit::kMicrosecond;
  net.add_host("sap1");
  net.add_host("sap2");
  for (int i = 1; i <= n_switches; ++i) {
    net.add_switch("s" + std::to_string(i));
    net.add_container("c" + std::to_string(i), 4.0, 32);
    (void)net.add_link("c" + std::to_string(i), 0, "s" + std::to_string(i), 3, cfg);
    if (i > 1) {
      (void)net.add_link("s" + std::to_string(i - 1), 2, "s" + std::to_string(i), 1, cfg);
    }
  }
  (void)net.add_link("sap1", 0, "s1", 10, cfg);
  (void)net.add_link("sap2", 0, "s" + std::to_string(n_switches), 10, cfg);
}

/// A k-VNF monitor chain between sap1 and sap2.
inline sg::ServiceGraph monitor_chain(int k, double cpu = 0.05,
                                      std::uint64_t bw = 1'000'000) {
  sg::ServiceGraph g("bench-chain");
  g.add_sap("sap1").add_sap("sap2");
  std::string prev = "sap1";
  for (int i = 0; i < k; ++i) {
    std::string id = "v" + std::to_string(i);
    g.add_vnf(id, "monitor", {}, cpu);
    g.add_link(prev, id, bw);
    prev = id;
  }
  g.add_link(prev, "sap2", bw);
  return g;
}

}  // namespace escape::benchutil
