// Scaling of the sharded parallel event engine: the same multi-region
// traffic workload executed with 1/2/4/8 worker threads. The partition
// (8 regions) is fixed, so every thread count executes bit-identical
// event sequences -- the bench verifies that via the order digest while
// measuring wall-clock throughput.
#include "bench_common.hpp"

#include "netemu/network.hpp"
#include "util/sharded_event.hpp"

namespace escape {
namespace {

constexpr int kRegions = 8;
constexpr int kPairsPerRegion = 2;
constexpr std::uint64_t kFramesPerFlow = 4000;

std::string region_name(int r, const std::string& suffix) {
  return "r" + std::to_string(r) + "_" + suffix;
}

/// kRegions islands of host pairs exchanging local traffic, chained by
/// gateway host pairs whose links carry the cross-region (cross-shard)
/// latency. Partitioned by region -> one shard per region.
void build_and_run(std::size_t threads, std::uint64_t* executed, std::uint64_t* digest,
                   double* virtual_ms) {
  ShardedScheduler sched;
  netemu::Network net{sched.shard(0)};

  netemu::LinkConfig intra;
  intra.bandwidth_bps = 10'000'000'000ULL;
  intra.delay = 20 * timeunit::kMicrosecond;
  netemu::LinkConfig inter = intra;
  inter.delay = 200 * timeunit::kMicrosecond;  // the conservative lookahead

  for (int r = 0; r < kRegions; ++r) {
    for (int p = 0; p < kPairsPerRegion; ++p) {
      const std::string a = region_name(r, "src" + std::to_string(p));
      const std::string b = region_name(r, "dst" + std::to_string(p));
      net.add_host(a);
      net.add_host(b);
      (void)net.add_link(a, 0, b, 0, intra);
    }
  }
  // Ring of gateway pairs: r0_gw1 - r1_gw0, r1_gw1 - r2_gw0, ...
  for (int r = 0; r < kRegions; ++r) {
    net.add_host(region_name(r, "gw1"));
    net.add_host(region_name((r + 1) % kRegions, "gw0" + std::to_string(r)));
    (void)net.add_link(region_name(r, "gw1"), 0,
                       region_name((r + 1) % kRegions, "gw0" + std::to_string(r)), 0, inter);
  }

  net.partition(sched, netemu::ShardBy::kRegion, threads);

  for (int r = 0; r < kRegions; ++r) {
    for (int p = 0; p < kPairsPerRegion; ++p) {
      auto* src = net.host(region_name(r, "src" + std::to_string(p)));
      auto* dst = net.host(region_name(r, "dst" + std::to_string(p)));
      src->start_udp_flow(dst->mac(), dst->ip(), 5000, 7777, kFramesPerFlow,
                          /*rate_pps=*/1'000'000, /*frame_size=*/1400);
    }
    auto* gw = net.host(region_name(r, "gw1"));
    auto* peer = net.host(region_name((r + 1) % kRegions, "gw0" + std::to_string(r)));
    gw->start_udp_flow(peer->mac(), peer->ip(), 6000, 8888, kFramesPerFlow / 4,
                       /*rate_pps=*/250'000, /*frame_size=*/1400);
  }

  sched.run();
  *executed = sched.executed_events();
  *digest = sched.order_digest();
  *virtual_ms = static_cast<double>(sched.now()) / timeunit::kMillisecond;
}

void BM_ParallelTraffic(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  static std::uint64_t reference_digest = 0;  // set by the threads=1 run

  std::uint64_t total_events = 0;
  std::uint64_t executed = 0, digest = 0;
  double virtual_ms = 0;
  for (auto _ : state) {
    build_and_run(threads, &executed, &digest, &virtual_ms);
    total_events += executed;
  }
  if (threads == 1) {
    reference_digest = digest;
  } else if (reference_digest != 0 && digest != reference_digest) {
    state.SkipWithError("order digest diverged from the single-thread run");
    return;
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(total_events));
  state.counters["events"] = static_cast<double>(executed);
  state.counters["virtual_ms"] = virtual_ms;
  state.counters["threads"] = static_cast<double>(threads);

  // Mirror the workload size into the registry so BENCH_parallel.json
  // records the scaling runs (timing lives in the benchmark output).
  obs::MetricsRegistry::global()
      .gauge("bench_parallel_events_total", {{"threads", std::to_string(threads)}})
      .set(static_cast<double>(executed));
}
BENCHMARK(BM_ParallelTraffic)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

}  // namespace
}  // namespace escape

ESCAPE_BENCH_MAIN("parallel");
