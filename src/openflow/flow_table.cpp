#include "openflow/flow_table.hpp"

#include <algorithm>

namespace escape::openflow {

namespace {

/// mask_signature() of a fully-exact match (wildcards 0, /32 prefixes).
constexpr std::uint64_t kExactSig = (32ULL << 32) | (32ULL << 40);

}  // namespace

bool FlowTable::expired(const FlowEntry& e, SimTime now) const {
  if (e.hard_timeout && now >= e.installed_at + e.hard_timeout) return true;
  if (e.idle_timeout && now >= e.last_hit + e.idle_timeout) return true;
  return false;
}

FlowRemovedReason FlowTable::expiry_reason(const FlowEntry& e, SimTime now) const {
  return e.hard_timeout && now >= e.installed_at + e.hard_timeout
             ? FlowRemovedReason::kHardTimeout
             : FlowRemovedReason::kIdleTimeout;
}

void FlowTable::fire_removed(const FlowEntry& e, FlowRemovedReason reason) {
  if (e.send_flow_removed && removed_cb_) removed_cb_(e, reason);
}

bool FlowTable::outranks(const FlowEntry& a, bool a_exact, const FlowEntry& b, bool b_exact) {
  if (a.priority != b.priority) return a.priority > b.priority;
  if (a_exact != b_exact) return a_exact;
  return a.seq < b.seq;
}

FlowTable::MaskGroup& FlowTable::group_for(const Match& match) {
  auto [it, inserted] = groups_.try_emplace(match.mask_signature());
  if (inserted) {
    it->second.mask = match;
    it->second.exact = match.is_exact();
    probe_order_dirty_ = true;
  }
  return it->second;
}

void FlowTable::link_entry(EntryIt it) {
  MaskGroup& g = group_for(it->match);
  const std::uint16_t old_max = g.max_priority();
  const bool was_empty = g.prio_counts.empty();
  auto& bucket = g.buckets[it->match.masked(it->match.fields())];
  // Keep buckets sorted by (priority desc, seq asc) so the first
  // non-expired entry is the bucket's best candidate.
  auto pos = std::lower_bound(bucket.begin(), bucket.end(), it,
                              [](const EntryIt& a, const EntryIt& b) {
                                if (a->priority != b->priority) return a->priority > b->priority;
                                return a->seq < b->seq;
                              });
  bucket.insert(pos, it);
  ++g.prio_counts[it->priority];
  ++g.size;
  if (was_empty || g.max_priority() != old_max) probe_order_dirty_ = true;
}

void FlowTable::erase_entry(EntryIt it, std::optional<FlowRemovedReason> reason) {
  if (reason) fire_removed(*it, *reason);
  auto git = groups_.find(it->match.mask_signature());
  MaskGroup& g = git->second;
  const std::uint16_t old_max = g.max_priority();
  const net::FlowKey key = it->match.masked(it->match.fields());
  auto bit = g.buckets.find(key);
  auto& bucket = bit->second;
  bucket.erase(std::find(bucket.begin(), bucket.end(), it));
  if (bucket.empty()) g.buckets.erase(bit);
  auto pit = g.prio_counts.find(it->priority);
  if (--pit->second == 0) g.prio_counts.erase(pit);
  if (--g.size == 0) {
    groups_.erase(git);
    probe_order_dirty_ = true;
  } else if (g.max_priority() != old_max) {
    probe_order_dirty_ = true;
  }
  entries_.erase(it);
}

const std::vector<FlowTable::MaskGroup*>& FlowTable::probe_order() const {
  if (probe_order_dirty_) {
    probe_order_.clear();
    probe_order_.reserve(groups_.size());
    for (auto& [sig, g] : groups_) {
      if (sig != kExactSig) probe_order_.push_back(const_cast<MaskGroup*>(&g));
    }
    std::sort(probe_order_.begin(), probe_order_.end(), [](const MaskGroup* a, const MaskGroup* b) {
      if (a->max_priority() != b->max_priority()) return a->max_priority() > b->max_priority();
      return a->mask.mask_signature() < b->mask.mask_signature();
    });
    probe_order_dirty_ = false;
  }
  return probe_order_;
}

void FlowTable::apply(const FlowMod& mod, SimTime now) {
  ++version_;  // any flow-mod may add/remove/rewrite entries
  apply_one(mod, now);
}

void FlowTable::apply_batch(const std::vector<FlowMod>& mods, SimTime now) {
  if (mods.empty()) return;
  ++version_;
  for (const auto& mod : mods) apply_one(mod, now);
}

void FlowTable::apply_one(const FlowMod& mod, SimTime now) {
  switch (mod.command) {
    case FlowModCommand::kAdd: {
      // OF 1.0: identical match+priority overwrites (counters reset).
      // Exact adds overwrite the occupant of their bucket regardless of
      // priority; wildcard adds only displace equal-priority equal-match
      // entries. Either way only the template's own bucket is examined.
      MaskGroup& g = group_for(mod.match);
      if (auto bit = g.buckets.find(mod.match.masked(mod.match.fields()));
          bit != g.buckets.end()) {
        std::vector<EntryIt> victims;
        for (EntryIt it : bit->second) {
          if (g.exact || (it->priority == mod.priority && it->match == mod.match)) {
            victims.push_back(it);
          }
        }
        for (EntryIt it : victims) erase_entry(it, FlowRemovedReason::kDelete);
      }
      FlowEntry e;
      e.match = mod.match;
      e.priority = mod.priority;
      e.cookie = mod.cookie;
      e.idle_timeout = mod.idle_timeout;
      e.hard_timeout = mod.hard_timeout;
      e.actions = mod.actions;
      e.send_flow_removed = mod.send_flow_removed;
      e.installed_at = now;
      e.last_hit = now;
      e.seq = next_seq_++;
      entries_.push_back(std::move(e));
      link_entry(std::prev(entries_.end()));
      break;
    }
    case FlowModCommand::kModify: {
      // Rewrites actions+cookie of every entry with the same match (any
      // priority), keeping counters; adds when nothing matched.
      bool any = false;
      if (auto git = groups_.find(mod.match.mask_signature()); git != groups_.end()) {
        auto bit = git->second.buckets.find(mod.match.masked(mod.match.fields()));
        if (bit != git->second.buckets.end()) {
          for (EntryIt it : bit->second) {
            if (it->match == mod.match) {
              it->actions = mod.actions;
              it->cookie = mod.cookie;
              any = true;
            }
          }
        }
      }
      if (!any) {
        FlowMod add = mod;
        add.command = FlowModCommand::kAdd;
        apply_one(add, now);
      }
      break;
    }
    case FlowModCommand::kDelete:
      delete_matching(mod.match, /*strict=*/false, std::nullopt);
      break;
    case FlowModCommand::kDeleteStrict:
      delete_matching(mod.match, /*strict=*/true, mod.priority);
      break;
  }
}

void FlowTable::delete_matching(const Match& match, bool strict,
                                std::optional<std::uint16_t> priority) {
  last_delete_examined_ = 0;
  std::vector<EntryIt> victims;

  auto scan_bucket = [&](MaskGroup& g, const net::FlowKey& key, auto&& pred) {
    auto bit = g.buckets.find(key);
    if (bit == g.buckets.end()) return;
    for (EntryIt it : bit->second) {
      ++last_delete_examined_;
      if (pred(*it)) victims.push_back(it);
    }
  };

  if (!strict && match.is_table_miss()) {
    // Wildcard-all template: everything goes, already in install order.
    last_delete_examined_ = entries_.size();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) victims.push_back(it);
  } else if (strict) {
    // Strict: exact template identity (match equality + priority), which
    // can only live in the template's own bucket.
    if (auto git = groups_.find(match.mask_signature()); git != groups_.end()) {
      scan_bucket(git->second, match.masked(match.fields()), [&](const FlowEntry& e) {
        return e.match == match && (!priority || e.priority == *priority);
      });
    }
  } else {
    // Non-strict: delete entries "covered" by the template — exact
    // entries whose concrete fields the template matches, plus
    // wildcard entries equal to the template. The equality half is one
    // bucket probe; the covered-exact half only scans the exact group,
    // and only when the template itself is not exact (an exact template
    // covers exactly its own bucket occupant).
    if (auto git = groups_.find(match.mask_signature()); git != groups_.end()) {
      scan_bucket(git->second, match.masked(match.fields()),
                  [&](const FlowEntry& e) { return e.match == match; });
    }
    if (!match.is_exact()) {
      if (auto git = groups_.find(kExactSig); git != groups_.end()) {
        for (auto& [key, bucket] : git->second.buckets) {
          last_delete_examined_ += bucket.size();
          if (!match.matches(key)) continue;
          for (EntryIt it : bucket) victims.push_back(it);
        }
      }
    }
  }

  // Fire flow-removed in canonical install order regardless of which
  // index the victims came from.
  std::sort(victims.begin(), victims.end(),
            [](const EntryIt& a, const EntryIt& b) { return a->seq < b->seq; });
  for (EntryIt it : victims) erase_entry(it, FlowRemovedReason::kDelete);
}

FlowEntry* FlowTable::lookup(const net::FlowKey& key, std::size_t packet_bytes, SimTime now) {
  ++lookups_;

  // Miss memo fast path: this key already probed every eligible group
  // under the current version and matched nothing.
  if (miss_memo_version_ == version_ && !miss_memo_.empty() &&
      miss_memo_.find(key) != miss_memo_.end()) {
    ++miss_short_circuits_;
    return nullptr;
  }

  FlowEntry* best = nullptr;
  bool best_exact = false;

  // Exact-match fast path: one hash probe against the exact tuple space.
  if (auto git = groups_.find(kExactSig); git != groups_.end()) {
    if (auto bit = git->second.buckets.find(key); bit != git->second.buckets.end()) {
      for (EntryIt it : bit->second) {
        if (expired(*it, now)) continue;
        best = &*it;
        best_exact = true;
        break;
      }
    }
  }

  // Wildcard tuple spaces in descending max-priority order. Early exit:
  // once a group's max priority falls below the best candidate (or ties
  // it while the best is exact — exact wins priority ties), no later
  // group can win.
  for (MaskGroup* g : probe_order()) {
    if (best) {
      const std::uint16_t gmax = g->max_priority();
      if (gmax < best->priority) break;
      if (gmax == best->priority && best_exact) break;
    }
    auto bit = g->buckets.find(g->mask.masked(key));
    if (bit == g->buckets.end()) continue;
    for (EntryIt it : bit->second) {
      if (expired(*it, now)) continue;
      // Buckets are (priority desc, seq asc) sorted, so the first live
      // entry is this group's best; compare it against the running best.
      if (!best || outranks(*it, false, *best, best_exact)) {
        best = &*it;
        best_exact = false;
      }
      break;
    }
  }

  if (best) {
    best->packet_count++;
    best->byte_count += packet_bytes;
    best->last_hit = now;
    ++matched_;
    return best;
  }

  if (miss_memo_version_ != version_ || miss_memo_.size() >= kMissMemoCap) {
    miss_memo_.clear();
    miss_memo_version_ = version_;
  }
  miss_memo_.insert(key);
  return nullptr;
}

std::size_t FlowTable::expire(SimTime now) {
  std::size_t evicted = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (expired(*it, now)) {
      auto next = std::next(it);
      erase_entry(it, expiry_reason(*it, now));
      ++evicted;
      it = next;
    } else {
      ++it;
    }
  }
  if (evicted) ++version_;
  return evicted;
}

void FlowTable::record_hit(FlowEntry& entry, std::size_t packet_bytes, SimTime now) {
  ++lookups_;
  entry.packet_count++;
  entry.byte_count += packet_bytes;
  entry.last_hit = now;
  ++matched_;
}

std::vector<FlowStatsEntry> FlowTable::stats(SimTime now) const {
  std::vector<FlowStatsEntry> out;
  out.reserve(size());
  for (const auto& e : entries_) {
    FlowStatsEntry s;
    s.match = e.match;
    s.priority = e.priority;
    s.cookie = e.cookie;
    s.packet_count = e.packet_count;
    s.byte_count = e.byte_count;
    s.age = now - e.installed_at;
    s.actions = e.actions;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<FlowStatsEntry> FlowTable::cookied_stats(SimTime now) const {
  std::vector<FlowStatsEntry> out;
  for (const auto& e : entries_) {
    if (e.cookie == 0 || expired(e, now)) continue;
    FlowStatsEntry s;
    s.match = e.match;
    s.priority = e.priority;
    s.cookie = e.cookie;
    s.packet_count = e.packet_count;
    s.byte_count = e.byte_count;
    s.age = now - e.installed_at;
    s.actions = e.actions;
    out.push_back(std::move(s));
  }
  return out;
}

void FlowTable::clear() {
  entries_.clear();
  groups_.clear();
  probe_order_.clear();
  probe_order_dirty_ = true;
  ++version_;
}

}  // namespace escape::openflow
