// Systematic crash-point exploration: record the fault-point trace of a
// clean scenario run, enumerate bounded fault schedules over it, replay
// each one deterministically in a fresh environment and check the global
// invariants afterwards. Failing schedules are shrunk to a minimal
// reproducer and dumped as `escape-run --faults`-compatible JSON.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "chaos/fault_point.hpp"
#include "chaos/invariants.hpp"
#include "escape/environment.hpp"

namespace escape::chaos {

/// A replayable workload: `make_env` builds and starts a fresh
/// environment, `run` drives the lifecycle under test. `run` must
/// tolerate any step failing -- with faults armed, every deploy, scale
/// or recovery step may legitimately error.
struct Scenario {
  std::string name;
  std::function<std::unique_ptr<Environment>()> make_env;
  std::function<void(Environment&)> run;
};

struct ExplorerOptions {
  /// 1 = every single fault site x kind; >= 2 adds seeded random pairs.
  int depth = 1;
  /// Seed for the bounded-pair sampler (and nothing else: the depth-1
  /// sweep is exhaustive and deterministic by construction).
  std::uint64_t seed = 1;
  /// Hard cap on schedules replayed (0 = no cap). Dropped schedules are
  /// logged -- a capped sweep must not read as full coverage.
  std::size_t max_schedules = 0;
  /// Pair schedules sampled per depth level above 1.
  std::size_t pair_samples = 64;
  /// Duration of an injected kDelay.
  SimDuration delay = 3 * timeunit::kMillisecond;
  /// When non-empty, failing (minimized) schedules are written here as
  /// fail-<n>.json, replayable via `escape-run --faults`.
  std::string artifact_dir;
};

/// Outcome of replaying one fault schedule.
struct Episode {
  FaultSchedule schedule;
  std::uint64_t digest = 0;      // scheduler order digest at quiesce
  std::size_t faults_fired = 0;  // armed specs that actually triggered
  std::vector<Violation> violations;

  bool failed() const { return !violations.empty(); }
  /// True when no armed fault fired (an earlier fault steered execution
  /// away from the site): the episode exercised nothing new.
  bool vacuous() const { return faults_fired == 0 && !schedule.empty(); }
};

struct ExploreReport {
  std::vector<TraceEntry> trace;  // clean-run fault-point trace
  std::uint64_t clean_digest = 0;
  std::vector<Violation> clean_violations;  // non-empty = scenario itself broken
  std::vector<Episode> episodes;
  std::vector<FaultSchedule> minimized;  // one per failing episode
  std::size_t schedules_dropped = 0;     // victims of max_schedules

  std::size_t failures() const;
  std::size_t vacuous() const;
  std::string summary() const;
};

class ChaosExplorer {
 public:
  ChaosExplorer(Scenario scenario, ExplorerOptions options);

  /// The full sweep: record, enumerate, replay, shrink, dump artifacts.
  ExploreReport explore();

  /// Replays one schedule in a fresh environment (used by --chaos-replay
  /// and by the shrinker).
  Episode run_schedule(const FaultSchedule& schedule);

  /// Clean run in record mode; returns the trace.
  std::vector<TraceEntry> record(std::uint64_t* digest = nullptr,
                                 std::vector<Violation>* violations = nullptr);

  /// Bounded schedule enumeration over a recorded trace: every (site,
  /// occurrence) x supported kind singleton, plus seeded pairs when
  /// depth >= 2. Deterministic for a fixed trace + seed.
  std::vector<FaultSchedule> enumerate(const std::vector<TraceEntry>& trace) const;

  /// Minimizes a failing schedule: tries singletons first, then drops
  /// one spec at a time, keeping any smaller schedule that still fails.
  FaultSchedule shrink(const FaultSchedule& failing);

 private:
  Scenario scenario_;
  ExplorerOptions options_;
  Logger log_{"chaos.explorer"};
};

/// Crash executor for FaultInjector bound to a live environment:
/// container targets are power-failed, switch targets are rebooted
/// (soft state lost, triggering the steering resync path).
std::function<void(const SiteContext&)> env_crash_executor(Environment& env);

/// Parses a `--faults`-style JSON document back into the fault-point
/// schedule it carries (non-fault-point events are ignored).
Result<FaultSchedule> schedule_from_json(std::string_view text);

}  // namespace escape::chaos
