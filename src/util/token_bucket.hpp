// Token bucket over virtual time: the rate-limiting primitive behind
// emulated link bandwidth and the Click BandwidthShaper element.
#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace escape {

/// A classic token bucket. Tokens are accounted in "units" (bytes or
/// packets); refill is computed lazily from the virtual clock supplied by
/// the caller, so the bucket itself holds no scheduler reference.
class TokenBucket {
 public:
  /// rate: units per second; burst: bucket depth in units (>= 1).
  TokenBucket(std::uint64_t rate_per_sec, std::uint64_t burst);

  /// Attempts to consume `units` at virtual time `now`. Returns true and
  /// deducts on success.
  bool try_consume(SimTime now, std::uint64_t units);

  /// Virtual time at which `units` will be available (may be `now` if
  /// already available). Used to schedule the next transmission.
  SimTime next_available(SimTime now, std::uint64_t units);

  /// Unconditionally consumes (may drive the balance negative-equivalent:
  /// the deficit delays future availability). Used by links that always
  /// serialize the head packet.
  void consume(SimTime now, std::uint64_t units);

  std::uint64_t rate_per_sec() const { return rate_; }
  std::uint64_t burst() const { return burst_; }

  /// Tokens currently available at `now` (capped at burst).
  std::uint64_t available(SimTime now);

 private:
  void refill(SimTime now);

  std::uint64_t rate_;
  std::uint64_t burst_;
  // Token balance scaled by kSecond to keep refill arithmetic exact:
  // scaled_tokens_ counts token-nanoseconds; `rate_` tokens accrue per
  // second, i.e. `rate_` scaled units per nanosecond.
  std::uint64_t scaled_tokens_;
  SimTime last_refill_ = 0;
};

}  // namespace escape
