// Experiment E7: flow-table reconciliation cost after control-plane loss.
//
// Every switch in a linear topology restarts at once (tables wiped,
// unsolicited Hello), and the steering app's cookie-based audit must
// purge/reinstall until every dpid is barrier-confirmed clean again.
// resync_virtual_ms is the virtual time from the mass restart to
// dirty_count() == 0 -- detection (unsolicited-Hello handling),
// re-handshake, flow-stats audit, reinstall burst and the trailing
// barrier, for the slowest switch. Scales with rules per switch
// (chains) and topology size (switches). The emitted BENCH_resync.json
// carries escape_of_resync_total, escape_of_rules_reinstalled_total and
// the echo RTT histograms accumulated across all iterations.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

using namespace escape;
using benchutil::build_linear;

static void BM_Resync(benchmark::State& state) {
  const int switches = static_cast<int>(state.range(0));
  const int chains = static_cast<int>(state.range(1));

  double resync_ms = 0;
  double reinstalled = 0;
  for (auto _ : state) {
    EnvironmentOptions opts;
    opts.controller_liveness.echo_interval = 5 * timeunit::kMillisecond;
    opts.controller_liveness.miss_threshold = 2;
    opts.switch_liveness.echo_interval = 5 * timeunit::kMillisecond;
    opts.switch_liveness.miss_threshold = 2;
    Environment env(opts);
    build_linear(env, switches);
    if (auto s = env.start(); !s.ok()) {
      state.SkipWithError(s.error().message.c_str());
      break;
    }

    // `chains` pure-steering chains spanning the full line: one rule per
    // switch per chain, installed straight through the steering app.
    for (int c = 0; c < chains; ++c) {
      pox::ChainPath path;
      path.chain_id = static_cast<std::uint32_t>(c + 1);
      path.match = openflow::Match()
                       .dl_type(net::ethertype::kIpv4)
                       .nw_dst(net::Ipv4Addr(10, 1, (c >> 8) & 0xff, c & 0xff));
      for (int i = 1; i <= switches; ++i) {
        const std::uint16_t in = i == 1 ? 10 : 1;
        const std::uint16_t out = i == switches ? 10 : 2;
        path.hops.push_back({static_cast<openflow::DatapathId>(i), in, out});
      }
      if (auto s = env.steering().install_chain(path); !s.ok()) {
        state.SkipWithError(s.error().message.c_str());
        return;
      }
    }
    env.run_for(10 * timeunit::kMillisecond);  // flow-mods land

    const std::uint64_t reinstalled_before = env.steering().rules_reinstalled();
    const SimTime restarted_at = env.scheduler().now();
    for (int i = 1; i <= switches; ++i) {
      env.network().switch_node("s" + std::to_string(i))->datapath().restart();
    }
    // Detection first: the unsolicited Hello must cross the control
    // channel and mark the dpids dirty before "clean" means anything.
    bool detected = false;
    for (int i = 0; i < 40'000 && !detected; ++i) {
      env.run_for(50 * timeunit::kMicrosecond);
      detected = env.steering().dirty_count() > 0;
    }
    if (!detected) {
      state.SkipWithError("controller never noticed the restart");
      break;
    }
    bool clean = false;
    for (int i = 0; i < 40'000 && !clean; ++i) {  // 2 s at 50 us resolution
      env.run_for(50 * timeunit::kMicrosecond);
      clean = env.steering().dirty_count() == 0;
    }
    if (!clean) {
      state.SkipWithError("steering did not reconverge within 2 s of virtual time");
      break;
    }
    resync_ms = static_cast<double>(env.scheduler().now() - restarted_at) /
                timeunit::kMillisecond;
    reinstalled = static_cast<double>(env.steering().rules_reinstalled() -
                                      reinstalled_before);
    benchmark::DoNotOptimize(resync_ms);
  }
  state.counters["resync_virtual_ms"] = resync_ms;
  state.counters["rules_reinstalled"] = reinstalled;
  state.counters["rules_per_switch"] = chains;
  state.counters["switches"] = switches;
}
BENCHMARK(BM_Resync)
    ->ArgsProduct({{2, 4, 8}, {4, 32, 128}})
    ->Unit(benchmark::kMillisecond);

ESCAPE_BENCH_MAIN("resync");
