// Point-to-point emulated link with bandwidth, propagation delay and a
// bounded transmit queue per direction -- the TCLink equivalent of
// Mininet.
//
// Model: each direction serializes frames at `bandwidth_bps`; a frame
// arriving while the "wire" is busy waits in the transmit queue (FIFO,
// at most `queue_frames`); excess frames are dropped. A transmitted
// frame is delivered `delay` after its serialization completes.
//
// Scheduling: instead of one scheduler event per frame, each direction
// keeps a deque of pending frames and a single armed event for the
// earliest delivery. When it fires, every frame whose delivery time has
// been reached leaves as one batch (Node::deliver_batch) and the event
// re-arms for the next frame. Per-frame delivery times are exactly
// those of the per-event model, so timing-sensitive tests see no
// difference; a burst of N queued frames holds one pending event
// instead of N.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "net/packet_batch.hpp"
#include "netemu/node.hpp"
#include "obs/metrics.hpp"
#include "util/random.hpp"
#include "util/time.hpp"

namespace escape::netemu {

struct LinkConfig {
  std::uint64_t bandwidth_bps = 1'000'000'000;  // 1 Gbit/s
  SimDuration delay = 50 * timeunit::kMicrosecond;
  std::size_t queue_frames = 100;
  double loss = 0.0;  // random loss probability per frame
};

class Link {
 public:
  /// Wires node_a[port_a] <-> node_b[port_b]. Registration with the
  /// nodes is performed by Network::add_link.
  Link(Node* node_a, std::uint16_t port_a, Node* node_b, std::uint16_t port_b,
       LinkConfig config, EventScheduler& scheduler, std::uint64_t loss_seed = 1);
  ~Link();

  /// Called by a node: transmit `packet` from the endpoint `from_endpoint`
  /// (0 = a-side, 1 = b-side) toward the other side.
  void transmit(int from_endpoint, net::Packet&& packet);

  /// Burst transmit: enqueues every frame with the same admission and
  /// serialization rules as per-packet transmit, arming the delivery
  /// event once.
  void transmit_batch(int from_endpoint, net::PacketBatch&& batch);

  const LinkConfig& config() const { return config_; }
  Node* node(int endpoint) const { return endpoint == 0 ? node_a_ : node_b_; }
  std::uint16_t port(int endpoint) const { return endpoint == 0 ? port_a_ : port_b_; }

  std::uint64_t delivered(int direction) const { return dir_[direction].delivered; }
  std::uint64_t dropped(int direction) const { return dir_[direction].dropped; }

  /// Administrative state (the fault plane's `link-down`/`link-up`).
  /// Taking the link down drops every queued frame and every frame
  /// offered while down (counted as drops); bringing it back up starts
  /// from an idle wire. State listeners fire after each transition.
  void set_up(bool up);
  bool up() const { return up_; }

  using StateListener = std::function<void(Link& link, bool up)>;
  std::uint64_t add_state_listener(StateListener fn);
  void remove_state_listener(std::uint64_t id);

  std::string to_string() const;

 private:
  struct PendingFrame {
    SimTime deliver_at = 0;
    net::Packet packet;
  };
  struct Direction {
    SimTime busy_until = 0;
    std::deque<PendingFrame> pending;  // FIFO; deliver_at is monotonic
    EventHandle event;                 // armed for pending.front()
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    // Registry mirrors of the per-instance counters above: the
    // process-wide view (escape_link_*{link=...,dir=...}). The members
    // stay authoritative for per-link accessors, so counts never
    // alias across environments sharing a link name.
    obs::Counter* m_delivered = nullptr;
    obs::Counter* m_bytes = nullptr;
    obs::Counter* m_dropped = nullptr;
    obs::Gauge* m_queue_depth = nullptr;
  };

  SimDuration tx_time(std::size_t bytes) const;

  /// Admission + serialization for one frame; returns false if dropped.
  bool enqueue_frame(Direction& dir, net::Packet&& packet);

  /// Arms the delivery event for the front frame if none is pending.
  void arm(int from_endpoint);

  /// Delivers every frame that is due, then re-arms.
  void fire(int from_endpoint);

  Node* node_a_;
  std::uint16_t port_a_;
  Node* node_b_;
  std::uint16_t port_b_;
  LinkConfig config_;
  EventScheduler* scheduler_;
  Rng loss_rng_;
  Direction dir_[2];
  bool up_ = true;
  std::uint64_t next_listener_id_ = 1;
  std::vector<std::pair<std::uint64_t, StateListener>> listeners_;
};

}  // namespace escape::netemu
