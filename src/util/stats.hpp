// Measurement helpers shared by tests and benches: an exact
// keep-all-samples histogram with true percentiles. Hot paths use the
// bounded-memory metrics in obs/metrics.hpp instead; this Histogram is
// the accuracy reference the obs::BoundedHistogram tests compare
// against. Counters (including stats::packet_clones()) moved to the
// metrics registry in obs/metrics.hpp.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace escape {

/// A histogram that keeps all samples; fine for test/bench scale.
class Histogram {
 public:
  void record(double sample);

  std::size_t count() const { return samples_.size(); }
  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;

  /// p in [0, 100]. Nearest-rank on the sorted samples; 0 for empty.
  double percentile(double p) const;

  double p50() const { return percentile(50); }
  double p95() const { return percentile(95); }
  double p99() const { return percentile(99); }

  void clear();

  /// One-line summary: "n=100 mean=1.2 p50=1.1 p95=2.0 max=3.4".
  std::string summary() const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0;
  double sum_sq_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace escape
