file(REMOVE_RECURSE
  "CMakeFiles/bench_demo_workflow.dir/bench_demo_workflow.cpp.o"
  "CMakeFiles/bench_demo_workflow.dir/bench_demo_workflow.cpp.o.d"
  "bench_demo_workflow"
  "bench_demo_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_demo_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
