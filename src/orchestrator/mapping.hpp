// Service-graph mapping: "a dedicated component maps abstract service
// graphs into available resources based on different optimization
// algorithms (which can be easily changed or customized)".
//
// A MappingAlgorithm consumes a (linear-chain) service graph and a
// resource view and produces VNF placements plus routed substrate paths
// for every SG link, respecting CPU, slot and bandwidth budgets and the
// end-to-end delay requirement. Algorithms are registered by name in the
// MappingRegistry -- the extensibility hook the paper advertises.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "sg/resource_model.hpp"
#include "sg/service_graph.hpp"
#include "util/result.hpp"

namespace escape::orchestrator {

/// The mapping of one SG link onto the substrate.
struct LinkMapping {
  std::string sg_src;  // SG node ids
  std::string sg_dst;
  sg::RoutedPath path;  // substrate route (endpoint nodes included)
  std::uint64_t bandwidth_bps = 0;
};

struct MappingResult {
  std::string algorithm;
  std::map<std::string, std::string> placements;  // vnf id -> container
  std::vector<LinkMapping> link_mappings;         // in chain order
  SimDuration total_path_delay = 0;

  std::string to_string() const;
};

class MappingAlgorithm {
 public:
  virtual ~MappingAlgorithm() = default;
  virtual std::string_view name() const = 0;

  /// Maps `graph` onto `view`. On success the reservations (CPU, slots,
  /// bandwidth) are committed to `view`; on failure `view` is unchanged.
  virtual Result<MappingResult> map(const sg::ServiceGraph& graph,
                                    sg::ResourceGraph& view) = 0;
};

/// First-fit greedy: walk the chain, place each VNF on the first
/// container (in name order) with enough CPU/slots and a routable,
/// bandwidth-feasible segment from the previous node.
class GreedyFirstFit : public MappingAlgorithm {
 public:
  std::string_view name() const override { return "greedy"; }
  Result<MappingResult> map(const sg::ServiceGraph& graph, sg::ResourceGraph& view) override;
};

/// Load-balancing best-fit: like greedy but picks the feasible container
/// with the lowest CPU utilization (ties broken by segment delay).
class LoadBalanceBestFit : public MappingAlgorithm {
 public:
  std::string_view name() const override { return "loadbalance"; }
  Result<MappingResult> map(const sg::ServiceGraph& graph, sg::ResourceGraph& view) override;
};

/// Delay-greedy (nearest neighbour): picks the feasible container with
/// the lowest added path delay from the previous chain node.
class DelayGreedy : public MappingAlgorithm {
 public:
  std::string_view name() const override { return "delaygreedy"; }
  Result<MappingResult> map(const sg::ServiceGraph& graph, sg::ResourceGraph& view) override;
};

/// Exhaustive backtracking: explores container assignments depth-first
/// and returns the feasible mapping with minimal total path delay.
/// Exponential in chain length; intended for small instances and as the
/// optimality baseline in bench_mapping.
class Backtracking : public MappingAlgorithm {
 public:
  /// `node_limit` caps explored assignments to keep runtime bounded.
  explicit Backtracking(std::size_t node_limit = 2'000'000) : node_limit_(node_limit) {}
  std::string_view name() const override { return "backtracking"; }
  Result<MappingResult> map(const sg::ServiceGraph& graph, sg::ResourceGraph& view) override;

 private:
  std::size_t node_limit_;
};

/// Name -> algorithm factory registry.
class MappingRegistry {
 public:
  using Factory = std::function<std::unique_ptr<MappingAlgorithm>()>;

  /// Global registry preloaded with the four built-ins.
  static MappingRegistry& global();

  void register_algorithm(const std::string& name, Factory factory);
  std::unique_ptr<MappingAlgorithm> create(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace escape::orchestrator
