#include "service/topologies.hpp"

#include "util/strings.hpp"

namespace escape::service::topologies {

namespace {

TopologyLinkSpec link(const std::string& a, std::uint16_t pa, const std::string& b,
                      std::uint16_t pb, std::uint64_t bw, SimDuration delay) {
  TopologyLinkSpec l;
  l.a = a;
  l.port_a = pa;
  l.b = b;
  l.port_b = pb;
  l.bandwidth_bps = bw;
  l.delay = delay;
  return l;
}

}  // namespace

TopologySpec linear(int switches, double container_cpu, std::uint64_t core_bw_bps,
                    SimDuration link_delay) {
  TopologySpec spec;
  spec.name = strings::format("linear-%d", switches);
  spec.nodes.push_back({"sap1", "host", 0, 0});
  spec.nodes.push_back({"sap2", "host", 0, 0});
  for (int i = 1; i <= switches; ++i) {
    const std::string s = "s" + std::to_string(i);
    const std::string c = "c" + std::to_string(i);
    spec.nodes.push_back({s, "switch", 0, 0});
    spec.nodes.push_back({c, "container", container_cpu, 16});
    spec.links.push_back(link(c, 0, s, 3, core_bw_bps, link_delay));
    if (i > 1) {
      spec.links.push_back(
          link("s" + std::to_string(i - 1), 2, s, 1, core_bw_bps, link_delay));
    }
  }
  spec.links.push_back(link("sap1", 0, "s1", 10, core_bw_bps, link_delay));
  spec.links.push_back(
      link("sap2", 0, "s" + std::to_string(switches), 10, core_bw_bps, link_delay));
  return spec;
}

TopologySpec star(int leaves, double container_cpu) {
  TopologySpec spec;
  spec.name = strings::format("star-%d", leaves);
  spec.nodes.push_back({"core", "switch", 0, 0});
  for (int i = 1; i <= leaves; ++i) {
    const std::string s = "edge" + std::to_string(i);
    spec.nodes.push_back({s, "switch", 0, 0});
    spec.nodes.push_back({"c" + std::to_string(i), "container", container_cpu, 16});
    spec.nodes.push_back({"sap" + std::to_string(i), "host", 0, 0});
    spec.links.push_back(link("core", static_cast<std::uint16_t>(i), s, 1, 1'000'000'000,
                              200 * timeunit::kMicrosecond));
    spec.links.push_back(link("c" + std::to_string(i), 0, s, 2, 1'000'000'000,
                              50 * timeunit::kMicrosecond));
    spec.links.push_back(link("sap" + std::to_string(i), 0, s, 3, 1'000'000'000,
                              50 * timeunit::kMicrosecond));
  }
  return spec;
}

TopologySpec ring(int switches, double container_cpu) {
  TopologySpec spec;
  spec.name = strings::format("ring-%d", switches);
  spec.nodes.push_back({"sap1", "host", 0, 0});
  spec.nodes.push_back({"sap2", "host", 0, 0});
  for (int i = 1; i <= switches; ++i) {
    spec.nodes.push_back({"s" + std::to_string(i), "switch", 0, 0});
    spec.nodes.push_back({"c" + std::to_string(i), "container", container_cpu, 16});
    spec.links.push_back(link("c" + std::to_string(i), 0, "s" + std::to_string(i), 3,
                              1'000'000'000, 50 * timeunit::kMicrosecond));
    const int next = i % switches + 1;
    spec.links.push_back(link("s" + std::to_string(i), 10, "s" + std::to_string(next), 11,
                              1'000'000'000, 500 * timeunit::kMicrosecond));
  }
  spec.links.push_back(link("sap1", 0, "s1", 1, 1'000'000'000, 50 * timeunit::kMicrosecond));
  spec.links.push_back(link("sap2", 0, "s" + std::to_string(switches / 2 + 1), 1,
                            1'000'000'000, 50 * timeunit::kMicrosecond));
  return spec;
}

std::string to_dot(const TopologySpec& spec) {
  std::string out = "graph \"" + spec.name + "\" {\n  layout=neato;\n";
  for (const auto& n : spec.nodes) {
    const char* shape = n.kind == "host" ? "ellipse" : n.kind == "switch" ? "box" : "box3d";
    out += strings::format("  \"%s\" [shape=%s];\n", n.name.c_str(), shape);
  }
  for (const auto& l : spec.links) {
    out += strings::format("  \"%s\" -- \"%s\" [label=\"%.0fM/%.1fms\"];\n", l.a.c_str(),
                           l.b.c_str(), static_cast<double>(l.bandwidth_bps) / 1e6,
                           static_cast<double>(l.delay) / timeunit::kMillisecond);
  }
  out += "}\n";
  return out;
}

std::string to_dot(const sg::ServiceGraph& graph) {
  std::string out = "digraph \"" + graph.name() + "\" {\n  rankdir=LR;\n";
  for (const auto& s : graph.saps()) {
    out += strings::format("  \"%s\" [shape=ellipse];\n", s.id.c_str());
  }
  for (const auto& v : graph.vnfs()) {
    out += strings::format("  \"%s\" [shape=box label=\"%s\\n(%s, cpu %.2f)\"];\n",
                           v.id.c_str(), v.id.c_str(), v.vnf_type.c_str(), v.cpu_demand);
  }
  for (const auto& l : graph.links()) {
    if (l.bandwidth_bps) {
      out += strings::format("  \"%s\" -> \"%s\" [label=\"%.0fM\"];\n", l.src.c_str(),
                             l.dst.c_str(), static_cast<double>(l.bandwidth_bps) / 1e6);
    } else {
      out += strings::format("  \"%s\" -> \"%s\";\n", l.src.c_str(), l.dst.c_str());
    }
  }
  out += "}\n";
  return out;
}

}  // namespace escape::service::topologies
