// The observability layer's event tracer: a fixed-capacity ring buffer
// of timestamped events with optional begin/end spans. Recording is
// O(1) and allocation-free apart from the event strings; when the ring
// is full the oldest events are overwritten (the dropped count keeps
// the loss visible). Timestamps are virtual nanoseconds supplied by the
// caller, so a span across two scheduler events measures real
// control-plane latency (e.g. packet-in -> flow-mod).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.hpp"
#include "util/time.hpp"

namespace escape::obs {

enum class TracePhase : std::uint8_t { kInstant, kBegin, kEnd };

std::string_view trace_phase_name(TracePhase phase);

struct TraceEvent {
  SimTime ts = 0;  // virtual ns
  TracePhase phase = TracePhase::kInstant;
  std::uint64_t span_id = 0;  // correlates kBegin/kEnd; 0 for instants
  std::uint32_t shard = 0;    // ring that recorded the event
  std::uint64_t seq = 0;      // per-ring record order (merge tie-break)
  std::string category;
  std::string name;
  std::string arg;
};

class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 4096);

  /// Tags every subsequent event with `shard` and folds it into issued
  /// span ids (low 8 bits) so spans stay unique across the per-shard
  /// rings without cross-ring coordination.
  void set_shard(std::uint32_t shard);
  std::uint32_t shard() const;

  /// Drops all recorded events and resizes the ring.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  /// Records a point event.
  void instant(SimTime ts, std::string_view category, std::string_view name,
               std::string arg = "");

  /// Opens a span; returns its id (never 0) for end_span.
  std::uint64_t begin_span(SimTime ts, std::string_view category, std::string_view name,
                           std::string arg = "");

  /// Closes a span opened by begin_span. Unknown/already-closed ids
  /// still record the end event (the ring may have dropped the begin).
  void end_span(std::uint64_t span_id, SimTime ts, std::string arg = "");

  /// Events currently held, oldest first.
  std::vector<TraceEvent> events() const;

  std::size_t size() const;
  std::uint64_t total_recorded() const;
  std::uint64_t dropped() const;

  void clear();

  /// {"events": [{ts, phase, span, category, name, arg}], "dropped": N}.
  json::Value to_json() const;

 private:
  void push(TraceEvent&& event);

  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;  // next write slot once the ring has wrapped
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t next_span_ = 1;
  std::uint32_t shard_ = 0;
  std::uint64_t next_seq_ = 0;
};

/// The calling shard's trace ring. Under the sharded scheduler each
/// worker thread records into the ring of the shard it is executing
/// (keyed by escape::current_shard_id()), so hot-path tracing never
/// contends across shards; outside a sharded run this is shard 0's
/// ring, i.e. the familiar process-wide tracer.
TraceRing& tracer();

/// The ring for an explicit shard index (created on first use).
TraceRing& shard_tracer(std::size_t shard);

/// Every event across all shard rings, merged into one timeline ordered
/// by (virtual time, shard, per-ring record order) -- a deterministic
/// order for a deterministic run, regardless of thread count.
std::vector<TraceEvent> merged_trace_events();

/// {"events": [...merged timeline...], "dropped": total across rings}.
json::Value merged_trace_json();

/// Clears every shard ring (test/bench isolation between runs).
void clear_all_tracers();

}  // namespace escape::obs
