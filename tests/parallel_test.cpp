// The sharded parallel event engine: window execution, cross-shard
// mailbox, partition derivation, and the bit-identical-across-thread-
// counts determinism guarantee, exercised from the raw scheduler up to
// full chaos/steering scenarios through the Environment.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "escape/environment.hpp"
#include "fault/fault_plane.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/sharded_event.hpp"

namespace escape {
namespace {

constexpr SimDuration kHop = timeunit::kMillisecond;

// --- raw engine -----------------------------------------------------------------

TEST(ShardedScheduler, SingleShardBehavesLikePlainScheduler) {
  ShardedScheduler sched;  // shards=1: the sequential special case
  EXPECT_EQ(sched.shard_count(), 1u);
  EXPECT_EQ(sched.shard(0).owner(), nullptr);  // unowned: direct driving allowed

  std::vector<int> order;
  sched.schedule(2 * kHop, [&] { order.push_back(2); });
  sched.schedule(1 * kHop, [&] { order.push_back(1); });
  sched.shard(0).schedule(3 * kHop, [&] { order.push_back(3); });
  EXPECT_EQ(sched.pending_events(), 3u);
  EXPECT_EQ(sched.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 3 * kHop);
  EXPECT_EQ(sched.executed_events(), 3u);
  EXPECT_TRUE(sched.empty());
}

TEST(ShardedScheduler, ResizeGrowsPartition) {
  ShardedScheduler sched;
  sched.schedule(kHop, [] {});
  sched.resize(3, 2);
  EXPECT_EQ(sched.shard_count(), 3u);
  EXPECT_EQ(sched.thread_count(), 2u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sched.shard(i).shard_id(), i);
    EXPECT_EQ(sched.shard(i).owner(), &sched);
  }
  // Shard 0's pre-resize event survived.
  EXPECT_EQ(sched.pending_events(), 1u);
  // Shrinking only updates the worker cap.
  sched.resize(2, 1);
  EXPECT_EQ(sched.shard_count(), 3u);
  EXPECT_EQ(sched.thread_count(), 1u);
  sched.resize(3, 2);
  sched.add_lookahead_edge(0, 1, kHop);
  sched.shard(1).schedule(kHop, [] {});
  EXPECT_EQ(sched.run(), 2u);  // parallel round: workers spawn
  // Once workers exist the partition is frozen.
  EXPECT_THROW(sched.resize(4), std::logic_error);
}

TEST(ShardedScheduler, CrossSchedulePostsThroughMailbox) {
  ShardedScheduler sched{2, 1};
  sched.add_lookahead_edge(0, 1, kHop);
  sched.add_lookahead_edge(1, 0, kHop);

  SimTime delivered_at = 0;
  std::size_t delivered_on = SIZE_MAX;
  sched.shard(0).schedule_at(5 * kHop, [&] {
    cross_schedule(sched.shard(0), sched.shard(1), kHop, [&] {
      delivered_at = sched.shard(1).now();
      delivered_on = current_shard_id();
    });
  });
  sched.run();
  EXPECT_EQ(delivered_at, 6 * kHop);
  EXPECT_EQ(delivered_on, 1u);
}

// The synthetic ring workload: shard i executes an event, counts it, and
// forwards to shard i+1 one lookahead later, until `stop`.
void ring_hop(ShardedScheduler& sched, std::vector<std::uint64_t>* counts, std::size_t shard,
              SimTime stop) {
  EventScheduler& self = sched.shard(shard);
  if (self.now() >= stop) return;
  ++(*counts)[shard];
  const std::size_t next = (shard + 1) % counts->size();
  cross_schedule(self, sched.shard(next), kHop,
                 [&sched, counts, next, stop] { ring_hop(sched, counts, next, stop); });
}

struct RingResult {
  std::uint64_t digest = 0;
  std::uint64_t executed = 0;
  SimTime final_now = 0;
  std::vector<std::uint64_t> counts;
};

RingResult run_ring(std::size_t shards, std::size_t threads) {
  ShardedScheduler sched{shards, threads};
  for (std::size_t i = 0; i < shards; ++i) {
    sched.add_lookahead_edge(i, (i + 1) % shards, kHop);
  }
  RingResult r;
  r.counts.assign(shards, 0);
  const SimTime stop = 200 * kHop;
  // Several interleaved rings starting on every shard keep all queues
  // busy inside each window.
  for (std::size_t i = 0; i < shards; ++i) {
    sched.shard(i).schedule_at(i * 10 * timeunit::kMicrosecond,
                               [&sched, c = &r.counts, i, stop] { ring_hop(sched, c, i, stop); });
  }
  sched.run();
  r.digest = sched.order_digest();
  r.executed = sched.executed_events();
  r.final_now = sched.now();
  return r;
}

TEST(ShardedScheduler, RingWorkloadBitIdenticalAcrossThreadCounts) {
  const RingResult seq = run_ring(4, 1);
  const RingResult par = run_ring(4, 4);
  EXPECT_GT(seq.executed, 100u);
  EXPECT_EQ(seq.digest, par.digest);
  EXPECT_EQ(seq.executed, par.executed);
  EXPECT_EQ(seq.final_now, par.final_now);
  EXPECT_EQ(seq.counts, par.counts);
}

TEST(ShardedScheduler, CrossShardPostInsideWindowThrows) {
  ShardedScheduler sched{2, 1};
  sched.add_lookahead_edge(0, 1, kHop);
  sched.add_lookahead_edge(1, 0, kHop);
  sched.shard(0).schedule_at(0, [&] {
    // 10us < the 1ms window bound: an unregistered cross-shard edge.
    sched.post_at(1, 10 * timeunit::kMicrosecond, [] {});
  });
  EXPECT_THROW(sched.run(), std::logic_error);
}

TEST(ShardedScheduler, ZeroLookaheadFallsBackToSequential) {
  ShardedScheduler sched{2, 2};
  sched.add_lookahead_edge(0, 1, 0);
  EXPECT_FALSE(sched.parallel_capable());
  // Cross posts at arbitrarily small delays are now legal; execution is
  // globally ordered so the relative order across shards is exact.
  std::vector<std::size_t> order;
  sched.shard(0).schedule_at(1, [&] {
    order.push_back(0);
    sched.post_at(1, sched.shard(0).now(), [&] { order.push_back(1); });
  });
  sched.shard(1).schedule_at(2, [&] { order.push_back(2); });
  sched.run();
  // The posted event lands at t=1 on shard 1, before shard 1's t=2 event.
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ShardedScheduler, PendingEventsTracksCancellation) {
  ShardedScheduler sched{2, 1};
  sched.add_lookahead_edge(0, 1, kHop);
  sched.add_lookahead_edge(1, 0, kHop);
  EventHandle a = sched.shard(0).schedule(kHop, [] {});
  EventHandle b = sched.shard(1).schedule(2 * kHop, [] {});
  EventHandle c = sched.post_at(1, 3 * kHop, [] {});
  EXPECT_EQ(sched.pending_events(), 3u);
  b.cancel();
  EXPECT_EQ(sched.pending_events(), 2u);
  b.cancel();  // idempotent: no double decrement
  EXPECT_EQ(sched.pending_events(), 2u);
  EXPECT_EQ(sched.run(), 2u);
  EXPECT_EQ(sched.pending_events(), 0u);
  a.cancel();  // after the fact: no underflow
  c.cancel();
  EXPECT_EQ(sched.pending_events(), 0u);
}

TEST(ShardedScheduler, CrossShardCancelPreventsExecution) {
  ShardedScheduler sched{2, 2};
  sched.add_lookahead_edge(0, 1, kHop);
  sched.add_lookahead_edge(1, 0, kHop);
  bool fired = false;
  // The windows guarantee shard 1 cannot reach t=5ms while shard 0
  // still executes at t=1ms, so this cancel always wins the race.
  EventHandle victim = sched.shard(1).schedule_at(5 * kHop, [&] { fired = true; });
  sched.shard(0).schedule_at(1 * kHop, [&] { victim.cancel(); });
  sched.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sched.pending_events(), 0u);
}

TEST(ShardedScheduler, StepExecutesGloballyEarliest) {
  ShardedScheduler sched{2, 1};
  sched.add_lookahead_edge(0, 1, kHop);
  std::vector<int> order;
  sched.shard(0).schedule_at(2 * kHop, [&] { order.push_back(0); });
  sched.shard(1).schedule_at(1 * kHop, [&] { order.push_back(1); });
  EXPECT_TRUE(sched.step());
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_TRUE(sched.step());
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
  EXPECT_FALSE(sched.step());
}

// --- partition derivation -------------------------------------------------------

netemu::LinkConfig test_link() {
  netemu::LinkConfig cfg;
  cfg.bandwidth_bps = 1'000'000'000;
  cfg.delay = 50 * timeunit::kMicrosecond;
  return cfg;
}

TEST(NetworkPartition, SwitchModeGroupsNodesAroundNearestSwitch) {
  ShardedScheduler sched;
  netemu::Network net{sched.shard(0)};
  net.add_host("sap1");
  net.add_host("sap2");
  net.add_switch("s1");
  net.add_switch("s2");
  net.add_container("c1", 1.0, 8);
  net.add_container("c2", 1.0, 8);
  ASSERT_TRUE(net.add_link("sap1", 0, "s1", 1, test_link()).ok());
  ASSERT_TRUE(net.add_link("sap2", 0, "s2", 1, test_link()).ok());
  ASSERT_TRUE(net.add_link("s1", 2, "s2", 2, test_link()).ok());
  ASSERT_TRUE(net.add_link("c1", 0, "s1", 3, test_link()).ok());
  ASSERT_TRUE(net.add_link("c2", 0, "s2", 3, test_link()).ok());

  EXPECT_EQ(net.partition(sched, netemu::ShardBy::kSwitch, 2), 2u);
  EXPECT_EQ(sched.shard_count(), 2u);
  // Each island sits with its switch; the two shards differ.
  EXPECT_EQ(&net.node("s1")->scheduler(), &net.node("c1")->scheduler());
  EXPECT_EQ(&net.node("s1")->scheduler(), &net.node("sap1")->scheduler());
  EXPECT_EQ(&net.node("s2")->scheduler(), &net.node("c2")->scheduler());
  EXPECT_EQ(&net.node("s2")->scheduler(), &net.node("sap2")->scheduler());
  EXPECT_NE(&net.node("s1")->scheduler(), &net.node("s2")->scheduler());
}

TEST(NetworkPartition, RegionModeSplitsOnNamePrefix) {
  ShardedScheduler sched;
  netemu::Network net{sched.shard(0)};
  net.add_switch("west_s1");
  net.add_host("west_h1");
  net.add_switch("east_s1");
  net.add_host("east_h1");
  ASSERT_TRUE(net.add_link("west_h1", 0, "west_s1", 1, test_link()).ok());
  ASSERT_TRUE(net.add_link("east_h1", 0, "east_s1", 1, test_link()).ok());
  ASSERT_TRUE(net.add_link("west_s1", 2, "east_s1", 2, test_link()).ok());

  EXPECT_EQ(net.partition(sched, netemu::ShardBy::kRegion), 2u);
  EXPECT_EQ(&net.node("west_s1")->scheduler(), &net.node("west_h1")->scheduler());
  EXPECT_EQ(&net.node("east_s1")->scheduler(), &net.node("east_h1")->scheduler());
  EXPECT_NE(&net.node("west_s1")->scheduler(), &net.node("east_s1")->scheduler());
}

TEST(NetworkPartition, ZeroDelayLinkMergesClusters) {
  ShardedScheduler sched;
  netemu::Network net{sched.shard(0)};
  net.add_switch("s1");
  net.add_switch("s2");
  netemu::LinkConfig zero = test_link();
  zero.delay = 0;
  ASSERT_TRUE(net.add_link("s1", 1, "s2", 1, zero).ok());
  // One merged cluster: no parallelism to be had, the partition is a no-op.
  EXPECT_EQ(net.partition(sched, netemu::ShardBy::kSwitch), 1u);
  EXPECT_EQ(sched.shard_count(), 1u);
  EXPECT_TRUE(sched.parallel_capable());  // the zero edge was never registered
}

// --- end-to-end determinism -----------------------------------------------------

sg::ServiceGraph monitor_chain() {
  sg::ServiceGraph g("par");
  g.add_sap("sap1").add_sap("sap2");
  g.add_vnf("mon", "monitor", {}, 0.1);
  g.add_link("sap1", "mon").add_link("mon", "sap2");
  return g;
}

struct Fingerprint {
  std::size_t shards = 0;
  std::uint64_t digest = 0;
  std::uint64_t executed = 0;
  std::uint64_t rx_packets = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t max_seq = 0;
  std::uint64_t tx_packets = 0;
  std::size_t latency_count = 0;
  double latency_mean = 0;
  std::vector<std::uint64_t> link_counts;
  int chain_state = -1;
  std::uint64_t injections = 0;
  std::string metrics;

  bool operator==(const Fingerprint& o) const {
    return shards == o.shards && digest == o.digest && executed == o.executed &&
           rx_packets == o.rx_packets && rx_bytes == o.rx_bytes && max_seq == o.max_seq &&
           tx_packets == o.tx_packets && latency_count == o.latency_count &&
           latency_mean == o.latency_mean && link_counts == o.link_counts &&
           chain_state == o.chain_state && injections == o.injections && metrics == o.metrics;
  }
};

Fingerprint finish(Environment& env, fault::FaultPlane& plane, std::uint32_t chain) {
  Fingerprint f;
  f.shards = env.scheduler().shard_count();
  f.digest = env.scheduler().order_digest();
  f.executed = env.scheduler().executed_events();
  auto* sap2 = env.host("sap2");
  f.rx_packets = sap2->rx_packets();
  f.rx_bytes = sap2->rx_bytes();
  f.max_seq = sap2->max_seq_seen();
  f.tx_packets = env.host("sap1")->tx_packets();
  f.latency_count = sap2->latency_us().count();
  f.latency_mean = sap2->latency_us().mean();
  for (const auto& link : env.network().links()) {
    for (int d = 0; d < 2; ++d) {
      f.link_counts.push_back(link->delivered(d));
      f.link_counts.push_back(link->dropped(d));
    }
  }
  if (const ChainDeployment* dep = env.deployment(chain)) {
    f.chain_state = static_cast<int>(dep->state);
  }
  f.injections = plane.injections();
  // Everything in the registry is virtual-time-deterministic except the
  // steering install latency, which measures real (wall-clock) time and
  // differs even between two identical sequential runs.
  std::istringstream exposition(obs::MetricsRegistry::global().render_text());
  std::string line;
  while (std::getline(exposition, line)) {
    if (line.find("escape_steering_install_latency_us") != std::string::npos) continue;
    f.metrics += line;
    f.metrics += '\n';
  }
  return f;
}

/// Container kill + restore and a link flap against the self-healing
/// orchestrator while traffic runs: the chaos regression scenario.
Fingerprint run_chaos_scenario(std::size_t threads) {
  obs::MetricsRegistry::global().reset_values();
  obs::clear_all_tracers();
  EnvironmentOptions opts;
  opts.threads = threads;
  opts.shard_by = netemu::ShardBy::kSwitch;
  Environment env{opts};
  auto& net = env.network();
  net.add_host("sap1");
  net.add_host("sap2");
  net.add_switch("s1");
  net.add_switch("s2");
  net.add_container("c1", 1.0, 8);
  net.add_container("c2", 1.0, 8);
  EXPECT_TRUE(net.add_link("sap1", 0, "s1", 1, test_link()).ok());
  EXPECT_TRUE(net.add_link("sap2", 0, "s2", 1, test_link()).ok());
  EXPECT_TRUE(net.add_link("s1", 2, "s2", 2, test_link()).ok());
  EXPECT_TRUE(net.add_link("c1", 0, "s1", 3, test_link()).ok());
  EXPECT_TRUE(net.add_link("c2", 0, "s2", 3, test_link()).ok());
  EXPECT_TRUE(env.start().ok());
  EXPECT_EQ(env.scheduler().shard_count(), 2u);
  EXPECT_TRUE(env.enable_self_healing().ok());

  fault::FaultPlane plane{env};
  EXPECT_TRUE(plane
                  .load_json(R"({"events": [
                    {"at_ms": 30, "action": "kill-container", "target": "c1"},
                    {"at_ms": 60, "action": "link-down", "a": "s1", "b": "s2"},
                    {"at_ms": 75, "action": "link-up", "a": "s1", "b": "s2"},
                    {"at_ms": 120, "action": "restore-container", "target": "c1"}
                  ]})")
                  .ok());

  auto chain = env.deploy(monitor_chain());
  EXPECT_TRUE(chain.ok()) << (chain.ok() ? "" : chain.error().to_string());
  auto* sap1 = env.host("sap1");
  auto* sap2 = env.host("sap2");
  sap1->start_udp_flow(sap2->mac(), sap2->ip(), 5000, 7777, 600, 2000);
  env.run_for(500 * timeunit::kMillisecond);
  return finish(env, plane, chain.ok() ? *chain : 0);
}

TEST(ParallelDeterminism, ChaosScenarioBitIdenticalAcrossThreadCounts) {
  const Fingerprint seq = run_chaos_scenario(1);
  const Fingerprint par = run_chaos_scenario(4);
  EXPECT_EQ(seq.shards, 2u);
  EXPECT_GT(seq.injections, 0u);
  EXPECT_GT(seq.rx_packets, 0u);
  EXPECT_EQ(seq, par);
}

/// Bidirectional traffic over a deployed chain + return path while the
/// OpenFlow control channel of a mid-path switch flaps and degrades:
/// the steering-resync regression scenario, on a 4-shard line topology.
Fingerprint run_steering_scenario(std::size_t threads) {
  obs::MetricsRegistry::global().reset_values();
  obs::clear_all_tracers();
  EnvironmentOptions opts;
  opts.threads = threads;
  opts.shard_by = netemu::ShardBy::kSwitch;
  Environment env{opts};
  auto& net = env.network();
  net.add_host("sap1");
  net.add_host("sap2");
  net.add_switch("s1");
  net.add_switch("s2");
  net.add_switch("s3");
  net.add_switch("s4");
  net.add_container("c1", 1.0, 8);
  net.add_container("c2", 1.0, 8);
  EXPECT_TRUE(net.add_link("sap1", 0, "s1", 1, test_link()).ok());
  EXPECT_TRUE(net.add_link("s1", 2, "s2", 1, test_link()).ok());
  EXPECT_TRUE(net.add_link("s2", 2, "s3", 1, test_link()).ok());
  EXPECT_TRUE(net.add_link("s3", 2, "s4", 1, test_link()).ok());
  EXPECT_TRUE(net.add_link("s4", 2, "sap2", 0, test_link()).ok());
  EXPECT_TRUE(net.add_link("c1", 0, "s1", 3, test_link()).ok());
  EXPECT_TRUE(net.add_link("c2", 0, "s4", 3, test_link()).ok());
  EXPECT_TRUE(env.start().ok());
  EXPECT_EQ(env.scheduler().shard_count(), 4u);
  EXPECT_TRUE(env.enable_self_healing().ok());

  fault::FaultPlane plane{env};
  EXPECT_TRUE(plane
                  .load_json(R"({"events": [
                    {"at_ms": 40, "action": "of-channel-flap", "target": "s2",
                     "down_ms": 30},
                    {"at_ms": 90, "action": "of-channel-faults", "target": "s3",
                     "drop_prob": 0.3, "extra_delay_ms": 1, "fault_seed": 11},
                    {"at_ms": 150, "action": "of-channel-faults-clear", "target": "s3"}
                  ]})")
                  .ok());

  auto chain = env.deploy(monitor_chain());
  EXPECT_TRUE(chain.ok()) << (chain.ok() ? "" : chain.error().to_string());
  std::uint32_t chain_id = chain.ok() ? *chain : 0;
  if (chain.ok()) {
    auto back = env.install_return_path(chain_id);
    EXPECT_TRUE(back.ok()) << (back.ok() ? "" : back.error().to_string());
  }
  auto* sap1 = env.host("sap1");
  auto* sap2 = env.host("sap2");
  sap1->start_udp_flow(sap2->mac(), sap2->ip(), 5000, 7777, 400, 2000);
  sap2->start_udp_flow(sap1->mac(), sap1->ip(), 6000, 8888, 400, 2000);
  env.run_for(400 * timeunit::kMillisecond);
  return finish(env, plane, chain_id);
}

TEST(ParallelDeterminism, SteeringScenarioBitIdenticalAcrossThreadCounts) {
  const Fingerprint seq = run_steering_scenario(1);
  const Fingerprint par = run_steering_scenario(4);
  EXPECT_EQ(seq.shards, 4u);
  EXPECT_EQ(seq.injections, 3u);
  EXPECT_GT(seq.rx_packets, 0u);
  EXPECT_EQ(seq, par);
}

// --- trace merge ----------------------------------------------------------------

TEST(TraceMerge, MergesShardRingsByVirtualTime) {
  obs::clear_all_tracers();
  obs::shard_tracer(1).instant(5, "t", "b");
  obs::shard_tracer(0).instant(9, "t", "d");
  obs::shard_tracer(2).instant(5, "t", "c");  // same ts as shard 1: shard breaks the tie
  obs::shard_tracer(0).instant(2, "t", "a");
  obs::shard_tracer(1).instant(9, "t", "e");

  auto merged = obs::merged_trace_events();
  ASSERT_EQ(merged.size(), 5u);
  std::vector<std::string> names;
  for (const auto& e : merged) names.push_back(e.name);
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c", "d", "e"}));
  // Tags survive the merge.
  EXPECT_EQ(merged[1].shard, 1u);
  EXPECT_EQ(merged[2].shard, 2u);
  obs::clear_all_tracers();
}

// --- registry under concurrent writers ------------------------------------------

TEST(MetricsStress, ExactCountsUnderConcurrentMultiShardWriters) {
  auto& reg = obs::MetricsRegistry::global();
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kIters = 20'000;
  reg.counter("parallel_test_shared_total").reset();
  reg.gauge("parallel_test_gauge").set(0);

  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg, &go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      // Lazy get-or-create from every thread at once exercises the
      // registry lock, the way per-shard components register mid-run.
      auto& shared = reg.counter("parallel_test_shared_total");
      auto& mine = reg.counter("parallel_test_shard_total", {{"shard", std::to_string(t)}});
      auto& gauge = reg.gauge("parallel_test_gauge");
      auto& hist = reg.histogram("parallel_test_hist_us");
      for (std::uint64_t i = 0; i < kIters; ++i) {
        shared.add(1);
        mine.add(1);
        gauge.add(1.0);
        hist.record(static_cast<double>(i % 97) + 1.0);
        if ((i & 1023) == 0) {
          (void)reg.render_text();  // exposition racing the writers
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& w : writers) w.join();

  EXPECT_EQ(reg.counter("parallel_test_shared_total").value(), kThreads * kIters);
  EXPECT_EQ(reg.gauge("parallel_test_gauge").value(),
            static_cast<double>(kThreads * kIters));
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter("parallel_test_shard_total", {{"shard", std::to_string(t)}}).value(),
              kIters);
  }
  auto& hist = reg.histogram("parallel_test_hist_us");
  EXPECT_EQ(hist.count(), kThreads * kIters);
  EXPECT_GE(hist.min(), 1.0);
  EXPECT_LE(hist.max(), 97.0);
  // Leave the registry clean for any metrics-sensitive test that follows.
  reg.reset_values();
}

}  // namespace
}  // namespace escape
