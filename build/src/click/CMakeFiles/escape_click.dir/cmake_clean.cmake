file(REMOVE_RECURSE
  "CMakeFiles/escape_click.dir/config.cpp.o"
  "CMakeFiles/escape_click.dir/config.cpp.o.d"
  "CMakeFiles/escape_click.dir/element.cpp.o"
  "CMakeFiles/escape_click.dir/element.cpp.o.d"
  "CMakeFiles/escape_click.dir/elements_basic.cpp.o"
  "CMakeFiles/escape_click.dir/elements_basic.cpp.o.d"
  "CMakeFiles/escape_click.dir/elements_ip.cpp.o"
  "CMakeFiles/escape_click.dir/elements_ip.cpp.o.d"
  "CMakeFiles/escape_click.dir/elements_queue.cpp.o"
  "CMakeFiles/escape_click.dir/elements_queue.cpp.o.d"
  "CMakeFiles/escape_click.dir/elements_shaping.cpp.o"
  "CMakeFiles/escape_click.dir/elements_shaping.cpp.o.d"
  "CMakeFiles/escape_click.dir/elements_vnf.cpp.o"
  "CMakeFiles/escape_click.dir/elements_vnf.cpp.o.d"
  "CMakeFiles/escape_click.dir/filter_expr.cpp.o"
  "CMakeFiles/escape_click.dir/filter_expr.cpp.o.d"
  "CMakeFiles/escape_click.dir/registry.cpp.o"
  "CMakeFiles/escape_click.dir/registry.cpp.o.d"
  "CMakeFiles/escape_click.dir/router.cpp.o"
  "CMakeFiles/escape_click.dir/router.cpp.o.d"
  "libescape_click.a"
  "libescape_click.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escape_click.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
