file(REMOVE_RECURSE
  "CMakeFiles/bench_netconf.dir/bench_netconf.cpp.o"
  "CMakeFiles/bench_netconf.dir/bench_netconf.cpp.o.d"
  "bench_netconf"
  "bench_netconf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_netconf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
