// OpenFlow 1.0-style flow match: a FlowKey template plus wildcard flags
// (with CIDR prefixes on the IP fields).
#pragma once

#include <cstdint>
#include <string>

#include "net/flow.hpp"

namespace escape::openflow {

/// Wildcard bits; a set bit means "field is wildcarded (ignored)".
enum Wildcard : std::uint32_t {
  kWcInPort = 1u << 0,
  kWcDlSrc = 1u << 1,
  kWcDlDst = 1u << 2,
  kWcDlType = 1u << 3,
  kWcNwProto = 1u << 4,
  kWcNwSrc = 1u << 5,   // fully wildcarded (prefix 0); partial via nw_src_prefix
  kWcNwDst = 1u << 6,
  kWcNwTos = 1u << 7,
  kWcTpSrc = 1u << 8,
  kWcTpDst = 1u << 9,
  kWcAll = (1u << 10) - 1,
};

/// A match template. Default-constructed matches everything.
class Match {
 public:
  Match() = default;

  /// Exact match on every field of `key` (the reactive L2-switch style).
  static Match exact(const net::FlowKey& key);

  // Builder-style setters clear the corresponding wildcard bit.
  Match& in_port(std::uint16_t port);
  Match& dl_src(net::MacAddr mac);
  Match& dl_dst(net::MacAddr mac);
  Match& dl_type(std::uint16_t type);
  Match& nw_proto(std::uint8_t proto);
  Match& nw_src(net::Ipv4Addr addr, int prefix_len = 32);
  Match& nw_dst(net::Ipv4Addr addr, int prefix_len = 32);
  Match& nw_tos(std::uint8_t dscp);
  Match& tp_src(std::uint16_t port);
  Match& tp_dst(std::uint16_t port);

  bool matches(const net::FlowKey& key) const;

  /// True if every field is wildcarded.
  bool is_table_miss() const { return wildcards_ == kWcAll; }

  /// True if no field is wildcarded (eligible for the exact-match fast
  /// path in the flow table).
  bool is_exact() const;

  std::uint32_t wildcards() const { return wildcards_; }
  const net::FlowKey& fields() const { return fields_; }
  int nw_src_prefix() const { return nw_src_prefix_; }
  int nw_dst_prefix() const { return nw_dst_prefix_; }

  /// Packed identity of the wildcard mask alone (wildcard bits + the two
  /// CIDR prefix lengths). Two matches with equal signatures constrain
  /// exactly the same bits, so they share one tuple-space hash table in
  /// the flow table.
  std::uint64_t mask_signature() const {
    const std::uint64_t src = (wildcards_ & kWcNwSrc) ? 0u : static_cast<std::uint64_t>(nw_src_prefix_);
    const std::uint64_t dst = (wildcards_ & kWcNwDst) ? 0u : static_cast<std::uint64_t>(nw_dst_prefix_);
    return static_cast<std::uint64_t>(wildcards_) | (src << 32) | (dst << 40);
  }

  /// Projects `key` onto this match's mask: wildcarded fields are
  /// zeroed and the IP fields are truncated to their prefixes. Two keys
  /// with equal projections are indistinguishable to this mask, and
  /// masked(key) == masked(fields()) iff matches(key).
  net::FlowKey masked(const net::FlowKey& key) const;

  /// Order-independent 64-bit digest consistent with operator==
  /// (a == b implies a.digest() == b.digest()). Used to key hash
  /// indexes over rules (steering intent store, resync audits).
  std::uint64_t digest() const;

  bool operator==(const Match& o) const;

  std::string to_string() const;

 private:
  std::uint32_t wildcards_ = kWcAll;
  net::FlowKey fields_;
  int nw_src_prefix_ = 0;
  int nw_dst_prefix_ = 0;
};

}  // namespace escape::openflow
