file(REMOVE_RECURSE
  "libescape_orchestrator.a"
)
