#include "netemu/link.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace escape::netemu {

Link::Link(Node* node_a, std::uint16_t port_a, Node* node_b, std::uint16_t port_b,
           LinkConfig config, EventScheduler& scheduler, std::uint64_t loss_seed)
    : node_a_(node_a),
      port_a_(port_a),
      node_b_(node_b),
      port_b_(port_b),
      config_(config),
      scheduler_(&scheduler),
      loss_rng_(loss_seed) {}

SimDuration Link::tx_time(std::size_t bytes) const {
  // bits / (bits per second) in nanoseconds, rounded up.
  const std::uint64_t bits = static_cast<std::uint64_t>(bytes) * 8;
  return (bits * timeunit::kSecond + config_.bandwidth_bps - 1) / config_.bandwidth_bps;
}

void Link::transmit(int from_endpoint, net::Packet&& packet) {
  Direction& dir = dir_[from_endpoint];
  const SimTime now = scheduler_->now();

  if (config_.loss > 0.0 && loss_rng_.next_bool(config_.loss)) {
    ++dir.dropped;
    return;
  }

  // Queue admission: frames in flight beyond the queue bound are dropped
  // (tail drop), emulating the interface transmit ring.
  if (dir.in_flight >= config_.queue_frames) {
    ++dir.dropped;
    return;
  }

  const SimTime start = std::max(now, dir.busy_until);
  const SimTime tx_done = start + tx_time(packet.size());
  dir.busy_until = tx_done;
  ++dir.in_flight;

  Node* dst = from_endpoint == 0 ? node_b_ : node_a_;
  const std::uint16_t dst_port = from_endpoint == 0 ? port_b_ : port_a_;

  auto shared = std::make_shared<net::Packet>(std::move(packet));
  scheduler_->schedule_at(tx_done + config_.delay, [this, from_endpoint, dst, dst_port, shared] {
    Direction& d = dir_[from_endpoint];
    --d.in_flight;
    ++d.delivered;
    dst->deliver(dst_port, std::move(*shared));
  });
}

std::string Link::to_string() const {
  return strings::format("link[%s:%u <-> %s:%u %.1fMbps %.2fms q=%zu]",
                         node_a_->name().c_str(), port_a_, node_b_->name().c_str(), port_b_,
                         static_cast<double>(config_.bandwidth_bps) / 1e6,
                         static_cast<double>(config_.delay) / 1e6, config_.queue_frames);
}

}  // namespace escape::netemu
