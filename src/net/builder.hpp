// PacketBuilder: fluent construction of Ethernet/ARP/IPv4/ICMP/UDP/TCP
// frames, used by traffic generators, tests and the controller (LLDP,
// ARP replies).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "net/headers.hpp"
#include "net/packet.hpp"

namespace escape::net {

class PacketBuilder {
 public:
  PacketBuilder& eth(MacAddr src, MacAddr dst, std::uint16_t ethertype = ethertype::kIpv4);

  /// IPv4 header; the total length and checksum are fixed up at build().
  PacketBuilder& ipv4(Ipv4Addr src, Ipv4Addr dst, std::uint8_t protocol = ipproto::kUdp,
                      std::uint8_t ttl = 64, std::uint8_t dscp = 0);

  PacketBuilder& udp(std::uint16_t src_port, std::uint16_t dst_port);
  PacketBuilder& tcp(const TcpFields& fields);
  PacketBuilder& icmp_echo(std::uint8_t type, std::uint16_t identifier, std::uint16_t sequence);
  PacketBuilder& arp(std::uint16_t opcode, MacAddr sender_mac, Ipv4Addr sender_ip,
                     MacAddr target_mac, Ipv4Addr target_ip);

  PacketBuilder& payload(std::span<const std::uint8_t> data);
  PacketBuilder& payload(std::string_view text);
  /// Pads with zero bytes until the frame reaches `frame_size` bytes.
  PacketBuilder& pad_to(std::size_t frame_size);

  /// Assembles the frame, fixing IPv4 total length / checksum and UDP
  /// length fields.
  Packet build() const;

 private:
  struct EthSpec { MacAddr src, dst; std::uint16_t ethertype; };
  struct IpSpec { Ipv4Addr src, dst; std::uint8_t protocol, ttl, dscp; };
  struct UdpSpec { std::uint16_t src_port, dst_port; };
  struct IcmpSpec { std::uint8_t type; std::uint16_t identifier, sequence; };
  struct ArpSpec {
    std::uint16_t opcode;
    MacAddr sender_mac, target_mac;
    Ipv4Addr sender_ip, target_ip;
  };

  std::optional<EthSpec> eth_;
  std::optional<IpSpec> ip_;
  std::optional<UdpSpec> udp_;
  std::optional<TcpFields> tcp_;
  std::optional<IcmpSpec> icmp_;
  std::optional<ArpSpec> arp_;
  std::vector<std::uint8_t> payload_;
  std::size_t pad_to_ = 0;
};

/// Convenience: a UDP datagram frame commonly used by tests/benches.
Packet make_udp_packet(MacAddr eth_src, MacAddr eth_dst, Ipv4Addr ip_src, Ipv4Addr ip_dst,
                       std::uint16_t sport, std::uint16_t dport, std::size_t frame_size = 98);

}  // namespace escape::net
