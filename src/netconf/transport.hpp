// Byte-stream transport for NETCONF sessions: an in-memory full-duplex
// pipe routed through the virtual-time scheduler (this is the "dedicated
// control network" of the paper -- the management agents are reachable
// with a configurable control-plane delay, independent of the data
// plane).
//
// The pipe supports two robustness features the fault plane builds on:
//   * explicit close: either end may close the pipe (a crashed agent);
//     the peer learns about it one propagation delay later through its
//     on_close callback, and frames to/from a closed end are dropped;
//   * frame faults: a per-endpoint fault profile (drop / corrupt /
//     extra delay, deterministic RNG) applied to outgoing frames, which
//     is how `escape-run --faults` emulates a flaky management network.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "util/event.hpp"
#include "util/random.hpp"

namespace escape::netconf {

/// Fault profile for one endpoint's outgoing frames.
struct TransportFaults {
  double drop_prob = 0.0;          // silently drop the frame
  double corrupt_prob = 0.0;       // flip bytes inside the frame payload
  SimDuration extra_delay_max = 0; // uniform extra delay in [0, max] per frame
  std::uint64_t seed = 0x700dULL;  // deterministic per-endpoint RNG seed
};

class TransportEndpoint {
 public:
  using OnBytes = std::function<void(std::string)>;
  using OnClose = std::function<void()>;

  /// Sends bytes to the peer; they arrive after the pipe delay (plus any
  /// injected extra delay). Dropped when either end is closed.
  void send(std::string bytes);

  /// Installs the receive callback (replaces any previous one).
  void set_on_bytes(OnBytes cb) { on_bytes_ = std::move(cb); }

  /// Fires once when the pipe is closed (locally or by the peer).
  void set_on_close(OnClose cb) { on_close_ = std::move(cb); }

  /// Closes this end: the local on_close fires immediately, callbacks
  /// are released (no delivery into freed owners), and the peer's close
  /// is scheduled one propagation delay from now. Idempotent.
  void close();

  bool closed() const { return closed_; }
  bool connected() const { return !closed_ && !peer_.expired(); }

  /// Installs / clears the outgoing-frame fault profile.
  void set_faults(const TransportFaults& faults);
  void clear_faults() { faults_active_ = false; }

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }
  std::uint64_t frames_corrupted() const { return frames_corrupted_; }

  /// Current virtual time of the scheduler driving this pipe (0 for an
  /// unwired endpoint). Lets sessions timestamp RPCs for RTT metrics.
  SimTime now() const { return scheduler_ ? scheduler_->now() : 0; }

  /// The scheduler driving this pipe (nullptr for an unwired endpoint);
  /// sessions use it for RPC timeout and retry timers.
  EventScheduler* scheduler() const { return scheduler_; }

 private:
  friend std::pair<std::shared_ptr<TransportEndpoint>, std::shared_ptr<TransportEndpoint>>
  make_pipe(EventScheduler& a_scheduler, EventScheduler& b_scheduler, SimDuration delay);

  void deliver(std::string bytes);

  EventScheduler* scheduler_ = nullptr;
  SimDuration delay_ = 0;
  std::weak_ptr<TransportEndpoint> peer_;
  OnBytes on_bytes_;
  OnClose on_close_;
  bool closed_ = false;
  bool faults_active_ = false;
  TransportFaults faults_;
  Rng fault_rng_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_corrupted_ = 0;
};

/// Creates a connected endpoint pair with symmetric one-way delay.
std::pair<std::shared_ptr<TransportEndpoint>, std::shared_ptr<TransportEndpoint>> make_pipe(
    EventScheduler& scheduler, SimDuration delay);

/// As above, but the two ends live on (possibly) different shards: `a`
/// is driven by a_scheduler, `b` by b_scheduler. When the schedulers
/// are distinct shards of one ShardedScheduler, frames and close
/// notifications cross through the mailbox and `delay` is registered as
/// the edge's conservative lookahead in both directions (a zero delay
/// across shards therefore forces the sequential fallback).
std::pair<std::shared_ptr<TransportEndpoint>, std::shared_ptr<TransportEndpoint>> make_pipe(
    EventScheduler& a_scheduler, EventScheduler& b_scheduler, SimDuration delay);

/// NETCONF 1.0 end-of-message framing (]]>]]>): splits a byte stream
/// back into messages.
class FrameReader {
 public:
  /// Feeds bytes; returns every complete message extracted.
  std::vector<std::string> feed(std::string_view bytes);

  /// Drops any buffered partial frame (session re-establishment).
  void reset() { buffer_.clear(); }

  /// Frames one message for transmission.
  static std::string frame(std::string_view message);

  static constexpr std::string_view kDelimiter = "]]>]]>";

 private:
  std::string buffer_;
};

}  // namespace escape::netconf
