file(REMOVE_RECURSE
  "libescape_netemu.a"
)
