// Discrete-event scheduler: the virtual clock driving the emulated
// environment (links, Click timers, OpenFlow timeouts, traffic sources,
// NETCONF transport).
//
// One EventScheduler is a single sequential, deterministic event queue:
// events at equal timestamps fire in scheduling order (FIFO tie-break
// via a monotonically increasing sequence number). Handles allow
// cancellation, which is how Click timers are unscheduled and
// flow-entry timeouts are refreshed.
//
// For parallel execution the network is partitioned into shards, each
// with its own EventScheduler, driven together by a ShardedScheduler
// (util/sharded_event.hpp). A standalone EventScheduler (the shards=1
// special case) behaves exactly as before; when owned by a
// ShardedScheduler it becomes one shard's queue and must only be
// advanced through the owner. Handle cancellation is cross-thread safe
// either way: the fired/cancelled flag is an atomic, and the live-event
// counter is an atomic shared with the handle, so a handle cancelled
// from a different shard than the one that scheduled it keeps the
// pending count exact and never races the firing shard.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/time.hpp"

namespace escape {

class EventScheduler;
class ShardedScheduler;

namespace detail {
/// Shared state between an EventHandle and the queue entry. `live`
/// points at the owning scheduler's live-event counter so cancellation
/// keeps the pending count exact even before the entry is reaped from
/// the heap. Both fields are atomic: a handle may be cancelled from a
/// different thread (shard) than the one draining the queue, and
/// whoever flips `done` first wins (the other side sees a no-op).
struct EventState {
  std::atomic<bool> done{false};  // fired or cancelled
  std::shared_ptr<std::atomic<std::size_t>> live;
};
}  // namespace detail

/// Cancellable handle to a scheduled event. Copies share the same
/// underlying state.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent; safe to call
  /// after the owning scheduler was destroyed, and safe to call from a
  /// different shard/thread than the one that scheduled the event.
  void cancel();

  /// True if the event is still scheduled to fire.
  bool pending() const { return state_ && !state_->done.load(std::memory_order_acquire); }

 private:
  friend class EventScheduler;
  friend class ShardedScheduler;
  explicit EventHandle(std::shared_ptr<detail::EventState> state) : state_(std::move(state)) {}
  std::shared_ptr<detail::EventState> state_;
};

/// A virtual-time event queue.
class EventScheduler {
 public:
  using Callback = std::function<void()>;

  /// Returned by next_event_time() when the queue is empty.
  static constexpr SimTime kNoEvent = ~SimTime{0};

  EventScheduler() : live_(std::make_shared<std::atomic<std::size_t>>(0)) {}
  EventScheduler(const EventScheduler&) = delete;
  EventScheduler& operator=(const EventScheduler&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `cb` to run `delay` nanoseconds from now.
  EventHandle schedule(SimDuration delay, Callback cb);

  /// Schedules `cb` at an absolute virtual time (must be >= now()).
  EventHandle schedule_at(SimTime when, Callback cb);

  /// Runs events until the queue is empty. Returns the number of events
  /// executed. `max_events` guards against runaway periodic events.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs events with timestamp <= deadline, then advances the clock to
  /// the deadline even if the queue drained earlier. Returns events run.
  std::size_t run_until(SimTime deadline, std::size_t max_events = SIZE_MAX);

  /// Runs for `duration` of virtual time from the current clock.
  std::size_t run_for(SimDuration duration, std::size_t max_events = SIZE_MAX) {
    return run_until(now_ + duration, max_events);
  }

  /// Executes the single earliest pending event, if any. Returns whether
  /// an event ran.
  bool step();

  /// Number of pending (non-cancelled, not yet fired) events.
  std::size_t pending_events() const { return live_->load(std::memory_order_acquire); }

  bool empty() const { return pending_events() == 0; }

  /// Total number of events executed since construction.
  std::uint64_t executed_events() const { return executed_; }

  /// FNV-1a digest over every executed event's (timestamp, sequence)
  /// pair, in execution order. Two runs over the same shard executed
  /// the same events in the same order iff the digests match -- the
  /// determinism regression tests compare this across thread counts.
  std::uint64_t order_digest() const { return digest_; }

  // --- sharding support ----------------------------------------------------

  /// The ShardedScheduler driving this queue as one of its shards
  /// (nullptr for a standalone scheduler).
  ShardedScheduler* owner() const { return owner_; }

  /// This queue's shard index within its owner (0 when standalone).
  std::size_t shard_id() const { return shard_id_; }

  /// Timestamp of the earliest pending event (kNoEvent when empty).
  /// Lazily reaps cancelled heap entries.
  SimTime next_event_time();

 private:
  friend class ShardedScheduler;

  struct Entry {
    SimTime when = 0;
    std::uint64_t seq = 0;
    Callback cb;
    std::shared_ptr<detail::EventState> state;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool pop_and_run();

  /// Runs events with timestamp < `bound` (exclusive). The clock only
  /// advances as events fire -- it is NOT pushed to the bound, so a
  /// drained shard's clock equals its last executed event, exactly as
  /// in a sequential run. The ShardedScheduler window loop drives this.
  std::size_t run_window(SimTime bound, std::size_t max_events);

  /// Inserts an already-created (handle'd) event, assigning the next
  /// local sequence number. Used by the owner to move mailbox events
  /// into this shard's queue at a synchronization barrier; the live
  /// counter was already bumped when the event was posted.
  void inject(SimTime when, Callback cb, std::shared_ptr<detail::EventState> state);

  /// Throws when this queue is owned by a multi-shard scheduler: shard
  /// queues may only be advanced through the owner's window protocol.
  void check_direct_run() const;

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t digest_ = 1469598103934665603ull;  // FNV-1a offset basis
  std::shared_ptr<std::atomic<std::size_t>> live_;
  std::priority_queue<Entry, std::vector<Entry>, EntryLater> queue_;
  ShardedScheduler* owner_ = nullptr;
  std::size_t shard_id_ = 0;
};

/// Index of the shard currently executing on this thread (0 when no
/// sharded run is in progress -- the main thread and standalone
/// schedulers count as shard 0). The observability layer keys its
/// per-shard trace rings off this.
std::size_t current_shard_id();

}  // namespace escape
