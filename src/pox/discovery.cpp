#include "pox/discovery.hpp"

#include "net/builder.hpp"
#include "net/headers.hpp"

namespace escape::pox {

namespace {
const net::MacAddr kLldpDst({0x01, 0x80, 0xc2, 0x00, 0x00, 0x0e});
}

net::Packet Discovery::make_probe(DatapathId dpid, std::uint16_t port_no) {
  // Probe payload: 8-byte dpid + 2-byte port, big-endian.
  std::vector<std::uint8_t> payload(10);
  for (int i = 0; i < 8; ++i) {
    payload[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(dpid >> (56 - 8 * i));
  }
  net::store_be16(&payload[8], port_no);
  return net::PacketBuilder()
      .eth(net::MacAddr::from_u64(dpid & 0xffffffffffffULL), kLldpDst,
           net::ethertype::kLldp)
      .payload(std::span<const std::uint8_t>(payload))
      .build();
}

bool Discovery::parse_probe(const net::Packet& packet, DatapathId* dpid,
                            std::uint16_t* port_no) {
  auto eth = net::EthernetView::parse(packet.bytes());
  if (!eth || eth->ethertype != net::ethertype::kLldp || eth->payload.size() < 10) return false;
  DatapathId d = 0;
  for (int i = 0; i < 8; ++i) d = (d << 8) | eth->payload[static_cast<std::size_t>(i)];
  *dpid = d;
  *port_no = net::load_be16(&eth->payload[8]);
  return true;
}

void Discovery::on_startup(Controller& controller) {
  controller_ = &controller;
  struct Prober {
    Discovery* d;
    void operator()() {
      d->send_probes();
      d->timer_ = d->controller_->scheduler().schedule(d->probe_interval_, Prober{d});
    }
  };
  timer_ = controller.scheduler().schedule(probe_interval_, Prober{this});
}

void Discovery::on_connection_up(SwitchConnection& conn) {
  // Probe the new switch right away so links appear without waiting for
  // the next periodic round.
  for (const auto& port : conn.ports()) {
    openflow::PacketOut out;
    out.packet = make_probe(conn.dpid(), port.port_no);
    out.actions = openflow::output_to(port.port_no);
    conn.send_packet_out(std::move(out));
  }
}

void Discovery::send_probes() {
  if (!controller_) return;
  for (DatapathId dpid : controller_->connected_switches()) {
    SwitchConnection* conn = controller_->connection(dpid);
    if (!conn) continue;
    for (const auto& port : conn->ports()) {
      openflow::PacketOut out;
      out.packet = make_probe(dpid, port.port_no);
      out.actions = openflow::output_to(port.port_no);
      conn->send_packet_out(std::move(out));
    }
  }
}

bool Discovery::on_packet_in(SwitchConnection& conn, const openflow::PacketIn& msg) {
  DatapathId src_dpid = 0;
  std::uint16_t src_port = 0;
  if (!parse_probe(msg.packet, &src_dpid, &src_port)) return false;

  Link link{src_dpid, src_port, conn.dpid(), msg.in_port};
  auto [it, inserted] = links_.emplace(link, true);
  if (inserted && link_cb_) link_cb_(link);
  return true;  // LLDP never reaches other apps
}

std::vector<Link> Discovery::links() const {
  std::vector<Link> out;
  out.reserve(links_.size());
  for (const auto& [l, _] : links_) out.push_back(l);
  return out;
}

bool Discovery::bidirectional(DatapathId a, std::uint16_t a_port, DatapathId b,
                              std::uint16_t b_port) const {
  return links_.count(Link{a, a_port, b, b_port}) > 0 &&
         links_.count(Link{b, b_port, a, a_port}) > 0;
}

}  // namespace escape::pox
