file(REMOVE_RECURSE
  "CMakeFiles/escape_pox.dir/core.cpp.o"
  "CMakeFiles/escape_pox.dir/core.cpp.o.d"
  "CMakeFiles/escape_pox.dir/discovery.cpp.o"
  "CMakeFiles/escape_pox.dir/discovery.cpp.o.d"
  "CMakeFiles/escape_pox.dir/l2_learning.cpp.o"
  "CMakeFiles/escape_pox.dir/l2_learning.cpp.o.d"
  "CMakeFiles/escape_pox.dir/steering.cpp.o"
  "CMakeFiles/escape_pox.dir/steering.cpp.o.d"
  "libescape_pox.a"
  "libescape_pox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escape_pox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
