#include "util/event.hpp"

#include <stdexcept>

namespace escape {

namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
}

void EventHandle::cancel() {
  if (!state_) return;
  // exchange: exactly one of {cancel, fire} flips done, so the live
  // counter is decremented exactly once even when a cross-shard cancel
  // races the firing shard.
  if (!state_->done.exchange(true, std::memory_order_acq_rel)) {
    if (state_->live) state_->live->fetch_sub(1, std::memory_order_acq_rel);
  }
}

EventHandle EventScheduler::schedule(SimDuration delay, Callback cb) {
  return schedule_at(now_ + delay, std::move(cb));
}

EventHandle EventScheduler::schedule_at(SimTime when, Callback cb) {
  if (when < now_) {
    throw std::logic_error("EventScheduler: cannot schedule into the past");
  }
  auto state = std::make_shared<detail::EventState>();
  state->live = live_;
  queue_.push(Entry{when, next_seq_++, std::move(cb), state});
  live_->fetch_add(1, std::memory_order_acq_rel);
  return EventHandle{std::move(state)};
}

void EventScheduler::inject(SimTime when, Callback cb, std::shared_ptr<detail::EventState> state) {
  // The live counter was bumped when the event was posted to the
  // mailbox; a cancel in between marked `done` and decremented it, and
  // the entry will be reaped from the heap like any cancelled event.
  queue_.push(Entry{when, next_seq_++, std::move(cb), std::move(state)});
}

bool EventScheduler::pop_and_run() {
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    // exchange so a concurrent cross-shard cancel either wins (we skip
    // the entry; the canceller adjusted the counter) or loses (we run
    // it; the cancel becomes a no-op).
    if (entry.state->done.exchange(true, std::memory_order_acq_rel)) continue;
    live_->fetch_sub(1, std::memory_order_acq_rel);
    now_ = entry.when;
    ++executed_;
    digest_ = (digest_ ^ entry.when) * kFnvPrime;
    digest_ = (digest_ ^ entry.seq) * kFnvPrime;
    entry.cb();
    return true;
  }
  return false;
}

void EventScheduler::check_direct_run() const {
  if (owner_ != nullptr) {
    throw std::logic_error(
        "EventScheduler: a shard queue owned by a ShardedScheduler must be run "
        "through its owner (use the ShardedScheduler's run methods)");
  }
}

bool EventScheduler::step() {
  check_direct_run();
  return pop_and_run();
}

std::size_t EventScheduler::run(std::size_t max_events) {
  check_direct_run();
  std::size_t ran = 0;
  while (ran < max_events && pop_and_run()) ++ran;
  return ran;
}

std::size_t EventScheduler::run_until(SimTime deadline, std::size_t max_events) {
  check_direct_run();
  std::size_t ran = 0;
  while (ran < max_events) {
    while (!queue_.empty() && queue_.top().state->done.load(std::memory_order_acquire)) {
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().when > deadline) break;
    if (pop_and_run()) ++ran;
  }
  if (now_ < deadline) now_ = deadline;
  return ran;
}

std::size_t EventScheduler::run_window(SimTime bound, std::size_t max_events) {
  std::size_t ran = 0;
  while (ran < max_events) {
    while (!queue_.empty() && queue_.top().state->done.load(std::memory_order_acquire)) {
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().when >= bound) break;
    if (pop_and_run()) ++ran;
  }
  return ran;
}

SimTime EventScheduler::next_event_time() {
  while (!queue_.empty() && queue_.top().state->done.load(std::memory_order_acquire)) {
    queue_.pop();
  }
  return queue_.empty() ? kNoEvent : queue_.top().when;
}

}  // namespace escape
