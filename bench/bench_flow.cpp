// Flow-classification substrate throughput: raw FlowStateTable churn
// (insert/lookup/sweep) at 10k/100k/1M concurrent flows, and the
// router-level FlowManager -> FlowLB push path under a packet mix.
// Flow counts and table memory are virtual-state deterministic and go
// into BENCH_flow.json for the CI regression gate; wall-clock
// throughput lives in the benchmark output.
#include "bench_common.hpp"

#include "click/elements.hpp"
#include "click/flow.hpp"
#include "net/builder.hpp"

namespace escape {
namespace {

click::FlowTuple nth_tuple(std::uint32_t n) {
  click::FlowTuple t;
  t.src_ip = 0x0a000000u + (n & 0xffffu);
  t.dst_ip = 0x0a010000u + (n >> 16);
  t.src_port = static_cast<std::uint16_t>(1024 + (n % 60000));
  t.dst_port = 80;
  t.proto = net::ipproto::kUdp;
  return t;
}

/// Insert N flows, look every one up again, then sweep them all out.
void BM_FlowTableChurn(benchmark::State& state) {
  const std::uint32_t flows = static_cast<std::uint32_t>(state.range(0));
  std::size_t memory = 0;
  std::size_t max_probe = 0;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    click::FlowStateTable table(1024, flows);
    table.reserve_scratch(16);  // a typical downstream consumer
    for (std::uint32_t i = 0; i < flows; ++i) {
      benchmark::DoNotOptimize(table.find_or_create(nth_tuple(i), /*now=*/i));
    }
    for (std::uint32_t i = 0; i < flows; ++i) {
      benchmark::DoNotOptimize(table.find(nth_tuple(i)));
    }
    memory = table.memory_bytes();
    max_probe = table.max_probe();
    ops += 2ull * flows + table.sweep(/*now=*/flows + seconds(60), seconds(30));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  state.counters["flows"] = static_cast<double>(flows);
  state.counters["mbytes"] = static_cast<double>(memory) / (1024.0 * 1024.0);
  state.counters["max_probe"] = static_cast<double>(max_probe);

  const std::string scale = std::to_string(flows);
  obs::MetricsRegistry::global()
      .gauge("bench_flow_table_bytes", {{"flows", scale}})
      .set(static_cast<double>(memory));
  obs::MetricsRegistry::global()
      .gauge("bench_flow_max_probe", {{"flows", scale}})
      .set(static_cast<double>(max_probe));
}
BENCHMARK(BM_FlowTableChurn)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Arg(1'000'000)
    ->Unit(benchmark::kMillisecond);

/// The full element path: FlowManager classification plus a sticky LB,
/// batches of 32 packets cycling through 1k concurrent flows.
void BM_FlowManagerPush(benchmark::State& state) {
  constexpr std::uint32_t kFlows = 1000;
  constexpr std::size_t kBatch = 32;
  EventScheduler sched;
  auto router = click::build_router(R"(
    from :: FromDevice(DEVNAME in0);
    fm :: FlowManager(CAPACITY 4096, TIMEOUT_MS 60000);
    lb :: FlowLB(N 2, MODE rr);
    a :: ToDevice(DEVNAME out0);
    b :: ToDevice(DEVNAME out1);
    from -> fm -> lb;
    lb[0] -> a;
    lb[1] -> b;
  )", sched);
  if (!router.ok()) {
    state.SkipWithError(router.error().to_string().c_str());
    return;
  }
  auto* from = dynamic_cast<click::FromDevice*>((*router)->element("from"));
  std::uint64_t sunk = 0;
  for (const char* dev : {"a", "b"}) {
    auto* to = dynamic_cast<click::ToDevice*>((*router)->element(dev));
    to->set_sink([&sunk](net::Packet&&) { ++sunk; });
  }

  // Pre-built frames: the bench measures classification, not building.
  std::vector<net::Packet> frames;
  frames.reserve(kFlows);
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    frames.push_back(net::make_udp_packet(
        net::MacAddr::from_u64(1), net::MacAddr::from_u64(2), net::Ipv4Addr(10, 0, 0, 1),
        net::Ipv4Addr(10, 0, 1, 1), static_cast<std::uint16_t>(1024 + i), 80, 98));
  }

  std::uint64_t pushed = 0;
  std::uint32_t next = 0;
  for (auto _ : state) {
    net::PacketBatch batch(kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) {
      batch.push_back(net::Packet(frames[next]));
      next = (next + 1) % kFlows;
    }
    from->inject_batch(std::move(batch));
    pushed += kBatch;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pushed));
  state.counters["sunk"] = static_cast<double>(sunk);

  // Steady state is virtual-time deterministic: every distinct tuple is
  // a live flow, none evicted.
  obs::MetricsRegistry::global()
      .gauge("bench_flow_active_flows", {})
      .set(std::stod((*router)->call_read("fm.flows").value()));
  obs::MetricsRegistry::global()
      .gauge("bench_flow_lb_backends", {})
      .set(2.0);
}
BENCHMARK(BM_FlowManagerPush)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace escape

ESCAPE_BENCH_MAIN("flow");
