// The flow table: priority-ordered wildcard entries with an exact-match
// fast path, per-entry counters and idle/hard timeout expiry.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "openflow/actions.hpp"
#include "openflow/match.hpp"
#include "openflow/messages.hpp"
#include "util/time.hpp"

namespace escape::openflow {

struct FlowEntry {
  Match match;
  std::uint16_t priority = 0x8000;
  std::uint64_t cookie = 0;
  SimDuration idle_timeout = 0;
  SimDuration hard_timeout = 0;
  ActionList actions;
  bool send_flow_removed = false;

  // Counters / bookkeeping.
  SimTime installed_at = 0;
  SimTime last_hit = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
};

class FlowTable {
 public:
  /// Callback fired when an entry expires or is deleted with
  /// send_flow_removed set.
  using RemovedCallback = std::function<void(const FlowEntry&, FlowRemovedReason)>;

  void set_removed_callback(RemovedCallback cb) { removed_cb_ = std::move(cb); }

  /// Applies a flow-mod at virtual time `now`.
  void apply(const FlowMod& mod, SimTime now);

  /// Looks up the highest-priority matching entry, updating its counters.
  /// Expired entries encountered on the way are evicted first.
  FlowEntry* lookup(const net::FlowKey& key, std::size_t packet_bytes, SimTime now);

  /// Replays the counter updates of a successful lookup() on an entry the
  /// caller already holds. This is the batch fast path: consecutive
  /// packets of one flow skip the table walk but the counters (lookups,
  /// matches, per-entry packet/byte/last_hit) end up exactly as if
  /// lookup() had run per packet.
  void record_hit(FlowEntry& entry, std::size_t packet_bytes, SimTime now);

  /// Monotonic generation counter, bumped whenever entries are added,
  /// removed or evicted. A cached FlowEntry* is only safe to reuse while
  /// the version is unchanged.
  std::uint64_t version() const { return version_; }

  /// Evicts every entry whose idle/hard timeout has passed at `now`.
  /// Returns the number evicted. The switch sweeps periodically.
  std::size_t expire(SimTime now);

  std::size_t size() const { return exact_.size() + wildcard_.size(); }
  std::uint64_t lookups() const { return lookups_; }
  std::uint64_t matches() const { return matched_; }

  /// Misses answered from the miss memo without re-scanning the
  /// wildcard list (see the memo comment in the private section).
  std::uint64_t miss_short_circuits() const { return miss_short_circuits_; }

  /// Snapshot for flow-stats replies.
  std::vector<FlowStatsEntry> stats(SimTime now) const;

  void clear();

 private:
  bool expired(const FlowEntry& e, SimTime now) const;
  void fire_removed(const FlowEntry& e, FlowRemovedReason reason);
  void add_entry(FlowEntry entry);
  void delete_matching(const Match& match, bool strict, std::optional<std::uint16_t> priority);

  // Exact entries: hash map keyed by the full FlowKey.
  std::unordered_map<net::FlowKey, FlowEntry> exact_;
  // Wildcard entries: kept sorted by descending priority (stable: earlier
  // installs first among equal priorities, matching OF tie behaviour).
  std::vector<FlowEntry> wildcard_;

  std::uint64_t lookups_ = 0;
  std::uint64_t matched_ = 0;
  std::uint64_t version_ = 0;

  // Miss memo: keys that scanned the whole table and matched nothing.
  // Sound because a miss can only become a hit through a flow-mod, and
  // every table mutation (add/modify/delete/expiry) bumps version_,
  // which invalidates the memo; timeout expiry only creates new misses.
  // Without it, every packet of an unmatched flow re-walks the entire
  // wildcard list before taking the packet-in path. Bounded: the memo
  // resets when it reaches kMissMemoCap (and on every version bump).
  static constexpr std::size_t kMissMemoCap = 4096;
  std::unordered_set<net::FlowKey> miss_memo_;
  std::uint64_t miss_memo_version_ = 0;
  std::uint64_t miss_short_circuits_ = 0;

  RemovedCallback removed_cb_;
};

}  // namespace escape::openflow
