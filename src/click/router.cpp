#include "click/router.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/strings.hpp"

namespace escape::click {

Router::~Router() {
  if (metrics_registry_) metrics_registry_->remove_callbacks(this);
}

void Router::export_metrics(obs::MetricsRegistry& registry, obs::Labels base_labels) {
  metrics_registry_ = &registry;
  for (const Element* e : order_) {
    for (const auto& handler : e->read_handler_names()) {
      obs::Labels labels = base_labels;
      labels.emplace_back("element", e->name());
      labels.emplace_back("handler", handler);
      registry.callback_gauge(
          "escape_click_handler_value", std::move(labels), this,
          [e, handler]() -> std::optional<double> {
            auto value = e->call_read(handler);
            if (!value.ok()) return std::nullopt;
            char* end = nullptr;
            const double parsed = std::strtod(value->c_str(), &end);
            if (end == value->c_str() || (end && *end != '\0')) return std::nullopt;
            return parsed;
          });
    }
  }
}

void Router::set_cpu_share(double share) {
  cpu_share_ = std::clamp(share, 0.001, 1.0);
}

SimDuration Router::scale_delay(SimDuration nominal) const {
  if (cpu_share_ >= 1.0) return nominal;
  return static_cast<SimDuration>(std::llround(static_cast<double>(nominal) / cpu_share_));
}

Result<Element*> Router::add_element(std::string name, std::unique_ptr<Element> element) {
  if (initialized_) {
    return make_error("click.router.frozen", "cannot add elements after initialize()");
  }
  if (elements_.count(name)) {
    return make_error("click.router.duplicate", "duplicate element name: " + name);
  }
  element->name_ = name;
  element->router_ = this;
  Element* raw = element.get();
  order_.push_back(raw);
  elements_.emplace(std::move(name), std::move(element));
  return raw;
}

Status Router::connect(const Connection& conn) {
  if (initialized_) {
    return make_error("click.router.frozen", "cannot connect after initialize()");
  }
  Element* from = element(conn.from);
  Element* to = element(conn.to);
  if (!from) return make_error("click.router.unknown-element", "unknown element: " + conn.from);
  if (!to) return make_error("click.router.unknown-element", "unknown element: " + conn.to);
  if (conn.from_port < 0 || conn.from_port >= from->n_outputs()) {
    return make_error("click.router.bad-port",
                      strings::format("%s has no output port %d", conn.from.c_str(),
                                      conn.from_port));
  }
  if (conn.to_port < 0 || conn.to_port >= to->n_inputs()) {
    return make_error("click.router.bad-port",
                      strings::format("%s has no input port %d", conn.to.c_str(), conn.to_port));
  }
  auto& out = from->outputs_[static_cast<std::size_t>(conn.from_port)];
  if (out.peer) {
    return make_error("click.router.fanout",
                      strings::format("%s[%d] already connected (use Tee for fan-out)",
                                      conn.from.c_str(), conn.from_port));
  }
  auto& in = to->inputs_[static_cast<std::size_t>(conn.to_port)];
  out.peer = to;
  out.peer_port = conn.to_port;
  // Pull inputs remember a single upstream; push inputs may have many
  // upstreams (the last one recorded is irrelevant for push dispatch).
  if (!in.peer) {
    in.peer = from;
    in.peer_port = conn.from_port;
  } else if (in.declared == PortMode::kPull || in.resolved == PortMode::kPull) {
    return make_error("click.router.fanin",
                      strings::format("pull input %s[%d] has multiple upstreams",
                                      conn.to.c_str(), conn.to_port));
  }
  connections_.push_back(conn);
  return ok_status();
}

Status Router::resolve_processing() {
  // Fixpoint propagation of concrete modes across connections; an element
  // derived from SimpleElement additionally keeps all its ports in one
  // mode (input and output resolve together).
  bool changed = true;
  int iterations = 0;
  while (changed && ++iterations < 1000) {
    changed = false;
    for (const auto& c : connections_) {
      Element* from = element(c.from);
      Element* to = element(c.to);
      auto& out = from->outputs_[static_cast<std::size_t>(c.from_port)];
      auto& in = to->inputs_[static_cast<std::size_t>(c.to_port)];
      if (out.resolved != PortMode::kAgnostic && in.resolved == PortMode::kAgnostic) {
        in.resolved = out.resolved;
        changed = true;
      } else if (in.resolved != PortMode::kAgnostic && out.resolved == PortMode::kAgnostic) {
        out.resolved = in.resolved;
        changed = true;
      }
    }
    // Propagate through agnostic pass-through elements (SimpleElement
    // semantics): if any port of an all-agnostic-declared element
    // resolved, resolve its remaining agnostic ports identically.
    for (Element* e : order_) {
      bool all_agnostic_declared = true;
      for (const auto& p : e->inputs_) {
        if (p.declared != PortMode::kAgnostic) all_agnostic_declared = false;
      }
      for (const auto& p : e->outputs_) {
        if (p.declared != PortMode::kAgnostic) all_agnostic_declared = false;
      }
      if (!all_agnostic_declared) continue;
      PortMode found = PortMode::kAgnostic;
      for (const auto& p : e->inputs_) {
        if (p.resolved != PortMode::kAgnostic) found = p.resolved;
      }
      for (const auto& p : e->outputs_) {
        if (p.resolved != PortMode::kAgnostic) found = p.resolved;
      }
      if (found == PortMode::kAgnostic) continue;
      for (auto& p : e->inputs_) {
        if (p.resolved == PortMode::kAgnostic) {
          p.resolved = found;
          changed = true;
        }
      }
      for (auto& p : e->outputs_) {
        if (p.resolved == PortMode::kAgnostic) {
          p.resolved = found;
          changed = true;
        }
      }
    }
  }
  // Anything still agnostic defaults to push (Click's default for
  // dangling agnostic ports).
  for (Element* e : order_) {
    for (auto& p : e->inputs_) {
      if (p.resolved == PortMode::kAgnostic) p.resolved = PortMode::kPush;
    }
    for (auto& p : e->outputs_) {
      if (p.resolved == PortMode::kAgnostic) p.resolved = PortMode::kPush;
    }
  }
  return ok_status();
}

Status Router::validate_connections() {
  for (const auto& c : connections_) {
    Element* from = element(c.from);
    Element* to = element(c.to);
    PortMode out_mode = from->output_mode(c.from_port);
    PortMode in_mode = to->input_mode(c.to_port);
    if (out_mode != in_mode) {
      return make_error(
          "click.router.processing",
          strings::format("%s[%d] (%s) -> [%d]%s (%s): processing conflict; insert a Queue",
                          c.from.c_str(), c.from_port,
                          std::string(port_mode_name(out_mode)).c_str(), c.to_port,
                          c.to.c_str(), std::string(port_mode_name(in_mode)).c_str()));
    }
  }
  return ok_status();
}

Status Router::initialize() {
  if (initialized_) return make_error("click.router.frozen", "already initialized");
  if (auto s = resolve_processing(); !s.ok()) return s;
  if (auto s = validate_connections(); !s.ok()) return s;
  for (Element* e : order_) {
    if (auto s = e->initialize(*this); !s.ok()) {
      return make_error(s.error().code,
                        e->name() + " (" + std::string(e->class_name()) + "): " +
                            s.error().message);
    }
  }
  initialized_ = true;
  return ok_status();
}

Element* Router::element(std::string_view name) {
  auto it = elements_.find(name);
  return it == elements_.end() ? nullptr : it->second.get();
}

const Element* Router::element(std::string_view name) const {
  auto it = elements_.find(name);
  return it == elements_.end() ? nullptr : it->second.get();
}

Result<std::string> Router::call_read(std::string_view spec) const {
  auto dot = spec.rfind('.');
  if (dot == std::string_view::npos) {
    return make_error("click.handler.bad-spec", "expected 'element.handler'");
  }
  const Element* e = element(spec.substr(0, dot));
  if (!e) {
    return make_error("click.handler.unknown-element",
                      "unknown element: " + std::string(spec.substr(0, dot)));
  }
  return e->call_read(spec.substr(dot + 1));
}

Status Router::call_write(std::string_view spec, std::string_view value) {
  auto dot = spec.rfind('.');
  if (dot == std::string_view::npos) {
    return make_error("click.handler.bad-spec", "expected 'element.handler'");
  }
  Element* e = element(spec.substr(0, dot));
  if (!e) {
    return make_error("click.handler.unknown-element",
                      "unknown element: " + std::string(spec.substr(0, dot)));
  }
  return e->call_write(spec.substr(dot + 1), value);
}

std::vector<std::string> Router::list_read_handlers() const {
  std::vector<std::string> out;
  for (const Element* e : order_) {
    for (const auto& h : e->read_handler_names()) out.push_back(e->name() + "." + h);
  }
  return out;
}

}  // namespace escape::click
