#include "sg/service_graph.hpp"

#include <set>

#include "util/strings.hpp"

namespace escape::sg {

ServiceGraph& ServiceGraph::add_sap(const std::string& id) {
  saps_.push_back(SapNode{id});
  return *this;
}

ServiceGraph& ServiceGraph::add_vnf(VnfNode vnf) {
  vnfs_.push_back(std::move(vnf));
  return *this;
}

ServiceGraph& ServiceGraph::add_vnf(const std::string& id, const std::string& vnf_type,
                                    std::map<std::string, std::string> params,
                                    double cpu_demand) {
  return add_vnf(VnfNode{id, vnf_type, std::move(params), cpu_demand});
}

ServiceGraph& ServiceGraph::add_link(SgLink link) {
  links_.push_back(std::move(link));
  return *this;
}

ServiceGraph& ServiceGraph::add_link(const std::string& src, const std::string& dst,
                                     std::uint64_t bandwidth_bps, SimDuration max_delay) {
  return add_link(SgLink{src, dst, bandwidth_bps, max_delay});
}

ServiceGraph& ServiceGraph::add_requirement(E2eRequirement req) {
  requirements_.push_back(std::move(req));
  return *this;
}

bool ServiceGraph::has_node(const std::string& id) const {
  return is_sap(id) || vnf(id) != nullptr;
}

const VnfNode* ServiceGraph::vnf(const std::string& id) const {
  for (const auto& v : vnfs_) {
    if (v.id == id) return &v;
  }
  return nullptr;
}

bool ServiceGraph::is_sap(const std::string& id) const {
  for (const auto& s : saps_) {
    if (s.id == id) return true;
  }
  return false;
}

Status ServiceGraph::validate() const {
  std::set<std::string> ids;
  for (const auto& s : saps_) {
    if (!ids.insert(s.id).second) {
      return make_error("sg.duplicate-id", "duplicate node id: " + s.id);
    }
  }
  for (const auto& v : vnfs_) {
    if (!ids.insert(v.id).second) {
      return make_error("sg.duplicate-id", "duplicate node id: " + v.id);
    }
    if (v.vnf_type.empty()) {
      return make_error("sg.missing-type", v.id + ": VNF type is empty");
    }
    if (v.cpu_demand <= 0) {
      return make_error("sg.bad-cpu", v.id + ": cpu demand must be positive");
    }
  }
  std::map<std::string, int> in_deg, out_deg;
  for (const auto& l : links_) {
    if (!ids.count(l.src)) return make_error("sg.unknown-node", "link from unknown: " + l.src);
    if (!ids.count(l.dst)) return make_error("sg.unknown-node", "link to unknown: " + l.dst);
    if (l.src == l.dst) return make_error("sg.self-loop", "self loop at " + l.src);
    out_deg[l.src]++;
    in_deg[l.dst]++;
  }
  for (const auto& v : vnfs_) {
    if (in_deg[v.id] == 0 || out_deg[v.id] == 0) {
      return make_error("sg.disconnected-vnf",
                        v.id + ": every VNF needs incoming and outgoing SG links");
    }
  }
  for (const auto& r : requirements_) {
    if (!is_sap(r.sap_a) || !is_sap(r.sap_b)) {
      return make_error("sg.bad-requirement", "requirements must reference SAPs");
    }
  }
  return ok_status();
}

std::vector<std::string> ServiceGraph::successors(const std::string& id) const {
  std::vector<std::string> out;
  for (const auto& l : links_) {
    if (l.src == id) out.push_back(l.dst);
  }
  return out;
}

Result<std::vector<std::string>> ServiceGraph::chain_order() const {
  if (auto s = validate(); !s.ok()) return s.error();
  // A linear chain starts at the SAP with out-degree 1 / in-degree 0 on
  // the directed links.
  std::map<std::string, int> in_deg;
  for (const auto& l : links_) in_deg[l.dst]++;
  std::string start;
  for (const auto& s : saps_) {
    if (in_deg[s.id] == 0) {
      if (!start.empty()) {
        return make_error("sg.not-a-chain", "multiple chain entry SAPs");
      }
      start = s.id;
    }
  }
  if (start.empty()) return make_error("sg.not-a-chain", "no entry SAP (cycle?)");

  std::vector<std::string> order{start};
  std::set<std::string> visited{start};
  std::string current = start;
  while (true) {
    auto next = successors(current);
    if (next.empty()) break;
    if (next.size() > 1) {
      return make_error("sg.not-a-chain", current + " branches; not a linear chain");
    }
    if (!visited.insert(next[0]).second) {
      return make_error("sg.not-a-chain", "cycle at " + next[0]);
    }
    order.push_back(next[0]);
    current = next[0];
  }
  if (order.size() != saps_.size() + vnfs_.size()) {
    return make_error("sg.not-a-chain", "disconnected nodes present");
  }
  if (!is_sap(order.back())) {
    return make_error("sg.not-a-chain", "chain must terminate at a SAP");
  }
  return order;
}

std::string ServiceGraph::to_string() const {
  std::string out = name_ + ": ";
  for (const auto& l : links_) {
    out += l.src + "->" + l.dst + " ";
  }
  return out;
}

}  // namespace escape::sg
