# Empty dependencies file for bench_steering.
# This may be replaced when dependencies are built.
