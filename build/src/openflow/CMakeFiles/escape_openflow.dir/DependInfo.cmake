
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/openflow/actions.cpp" "src/openflow/CMakeFiles/escape_openflow.dir/actions.cpp.o" "gcc" "src/openflow/CMakeFiles/escape_openflow.dir/actions.cpp.o.d"
  "/root/repo/src/openflow/flow_table.cpp" "src/openflow/CMakeFiles/escape_openflow.dir/flow_table.cpp.o" "gcc" "src/openflow/CMakeFiles/escape_openflow.dir/flow_table.cpp.o.d"
  "/root/repo/src/openflow/match.cpp" "src/openflow/CMakeFiles/escape_openflow.dir/match.cpp.o" "gcc" "src/openflow/CMakeFiles/escape_openflow.dir/match.cpp.o.d"
  "/root/repo/src/openflow/switch.cpp" "src/openflow/CMakeFiles/escape_openflow.dir/switch.cpp.o" "gcc" "src/openflow/CMakeFiles/escape_openflow.dir/switch.cpp.o.d"
  "/root/repo/src/openflow/wire.cpp" "src/openflow/CMakeFiles/escape_openflow.dir/wire.cpp.o" "gcc" "src/openflow/CMakeFiles/escape_openflow.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/escape_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/escape_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
