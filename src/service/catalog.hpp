// The VNF catalog: "a built-in set of useful VNFs implemented in Click".
// Each catalog entry is a Click configuration template with $parameters;
// the service layer renders a concrete configuration per VNF instance,
// which the orchestrator ships to a container through NETCONF.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace escape::service {

struct VnfTemplate {
  std::string type;         // catalog key ("firewall")
  std::string description;  // one-liner for the GUI / docs
  std::string config_template;
  double default_cpu = 0.1;
  int data_ports = 1;  // in/out device pairs (inN/outN)
  std::map<std::string, std::string> param_defaults;
  /// The VNF rewrites packet source fields (NAT-style). A chain match
  /// built for such a chain must not pin nw_src/tp_src: post-VNF hops
  /// see the rewritten header.
  bool rewrites_source = false;
};

class VnfCatalog {
 public:
  /// The built-in catalog (monitor, firewall, ratelimiter, dpi, delay,
  /// headerrewriter, napt, loadbalancer).
  static VnfCatalog with_builtins();

  void add(VnfTemplate tmpl);
  bool has(const std::string& type) const { return templates_.count(type) > 0; }
  const VnfTemplate* get(const std::string& type) const;
  std::vector<std::string> types() const;

  /// Renders the Click configuration for one instance: substitutes
  /// $param / ${param} occurrences from `params` (falling back to the
  /// template defaults). Unknown or unresolved parameters are errors.
  Result<std::string> render(const std::string& type,
                             const std::map<std::string, std::string>& params) const;

 private:
  std::map<std::string, VnfTemplate> templates_;
};

/// Renders the Click configuration of the scale-out splitter VNF: a
/// FlowManager born holding (it buffers traffic until the migrated flow
/// state is imported and the hold is released) feeding a flow-sticky
/// hash-mode FlowLB with `fanout` outputs (one per replica). Not a
/// catalog template because the output wiring varies with the fanout,
/// which $param substitution cannot express. fanout is clamped to
/// FlowLB's [2, 64] range.
std::string render_flow_splitter(std::size_t fanout);

}  // namespace escape::service
