
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pox/core.cpp" "src/pox/CMakeFiles/escape_pox.dir/core.cpp.o" "gcc" "src/pox/CMakeFiles/escape_pox.dir/core.cpp.o.d"
  "/root/repo/src/pox/discovery.cpp" "src/pox/CMakeFiles/escape_pox.dir/discovery.cpp.o" "gcc" "src/pox/CMakeFiles/escape_pox.dir/discovery.cpp.o.d"
  "/root/repo/src/pox/l2_learning.cpp" "src/pox/CMakeFiles/escape_pox.dir/l2_learning.cpp.o" "gcc" "src/pox/CMakeFiles/escape_pox.dir/l2_learning.cpp.o.d"
  "/root/repo/src/pox/steering.cpp" "src/pox/CMakeFiles/escape_pox.dir/steering.cpp.o" "gcc" "src/pox/CMakeFiles/escape_pox.dir/steering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/openflow/CMakeFiles/escape_openflow.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/escape_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/escape_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
