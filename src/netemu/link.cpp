#include "netemu/link.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace escape::netemu {

Link::Link(Node* node_a, std::uint16_t port_a, Node* node_b, std::uint16_t port_b,
           LinkConfig config, EventScheduler& scheduler, std::uint64_t loss_seed)
    : node_a_(node_a),
      port_a_(port_a),
      node_b_(node_b),
      port_b_(port_b),
      config_(config),
      scheduler_(&scheduler),
      loss_seed_(loss_seed),
      loss_rng_(loss_seed) {
  dir_[0].sched = scheduler_;
  dir_[1].sched = scheduler_;
  bind_shards();
  auto& registry = obs::MetricsRegistry::global();
  const std::string id = strings::format("%s:%u-%s:%u", node_a_->name().c_str(), port_a_,
                                         node_b_->name().c_str(), port_b_);
  const char* dir_name[2] = {"ab", "ba"};
  for (int d = 0; d < 2; ++d) {
    obs::Labels labels{{"link", id}, {"dir", dir_name[d]}};
    dir_[d].m_delivered = &registry.counter("escape_link_delivered_total", labels);
    dir_[d].m_bytes = &registry.counter("escape_link_delivered_bytes_total", labels);
    dir_[d].m_dropped = &registry.counter("escape_link_dropped_total", labels);
    dir_[d].m_queue_depth = &registry.gauge("escape_link_queue_depth", labels);
  }
}

Link::~Link() {
  dir_[0].event.cancel();
  dir_[1].event.cancel();
}

SimDuration Link::tx_time(std::size_t bytes) const {
  // bits / (bits per second) in nanoseconds, rounded up.
  const std::uint64_t bits = static_cast<std::uint64_t>(bytes) * 8;
  return (bits * timeunit::kSecond + config_.bandwidth_bps - 1) / config_.bandwidth_bps;
}

void Link::bind_shards() {
  Node* sender[2] = {node_a_, node_b_};
  Node* receiver[2] = {node_b_, node_a_};
  for (int d = 0; d < 2; ++d) {
    Direction& dir = dir_[d];
    dir.sched = sender[d] ? &sender[d]->scheduler() : scheduler_;
    EventScheduler& peer = receiver[d] ? receiver[d]->scheduler() : *scheduler_;
    dir.cross = &peer != dir.sched && dir.sched->owner() != nullptr &&
                dir.sched->owner() == peer.owner();
    if (dir.cross) {
      // An independent deterministic loss stream per cross direction
      // (two shards cannot share the link-wide RNG).
      dir.rng = Rng(loss_seed_ ^ (0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(d)));
      dir.sched->owner()->add_lookahead_edge(dir.sched->shard_id(), peer.shard_id(),
                                             config_.delay);
    }
  }
}

bool Link::can_touch(const Direction& dir) const {
  EventScheduler* cur = ShardedScheduler::current_shard();
  return cur == nullptr || dir.sched->owner() == nullptr || cur == dir.sched;
}

void Link::apply_set_up(int direction, bool up) {
  Direction& dir = dir_[direction];
  dir.up = up;
  if (!up) {
    // The wire is cut: everything in flight is lost.
    const std::uint64_t lost = dir.pending.size();
    dir.dropped += lost;
    dir.m_dropped->add(lost);
    dir.pending.clear();
    dir.event.cancel();
    dir.busy_until = 0;
    dir.m_queue_depth->set(0);
  }
}

void Link::set_up(bool up) {
  if (up == up_) return;
  up_ = up;
  for (int d = 0; d < 2; ++d) {
    if (can_touch(dir_[d])) {
      apply_set_up(d, up);
    } else {
      // Another shard owns this direction: the command propagates like a
      // management-network hop and lands one lookahead later.
      dir_[d].sched->owner()->post_admin(dir_[d].sched->shard_id(),
                                         [this, d, up] { apply_set_up(d, up); });
    }
  }
  for (auto& [_, fn] : listeners_) fn(*this, up_);
}

std::uint64_t Link::add_state_listener(StateListener fn) {
  const std::uint64_t id = next_listener_id_++;
  listeners_.emplace_back(id, std::move(fn));
  return id;
}

void Link::remove_state_listener(std::uint64_t id) {
  std::erase_if(listeners_, [id](const auto& entry) { return entry.first == id; });
}

bool Link::enqueue_frame(Direction& dir, net::Packet&& packet) {
  if (!dir.up) {
    ++dir.dropped;
    dir.m_dropped->add();
    return false;
  }
  Rng& rng = dir.cross ? dir.rng : loss_rng_;
  if (config_.loss > 0.0 && rng.next_bool(config_.loss)) {
    ++dir.dropped;
    dir.m_dropped->add();
    return false;
  }

  // Queue admission: frames in flight beyond the queue bound are dropped
  // (tail drop), emulating the interface transmit ring.
  if (dir.pending.size() >= config_.queue_frames) {
    ++dir.dropped;
    dir.m_dropped->add();
    return false;
  }

  const SimTime now = dir.sched->now();
  const SimTime start = std::max(now, dir.busy_until);
  const SimTime tx_done = start + tx_time(packet.size());
  dir.busy_until = tx_done;
  dir.pending.push_back(PendingFrame{tx_done, tx_done + config_.delay, std::move(packet)});
  dir.m_queue_depth->set(static_cast<double>(dir.pending.size()));
  return true;
}

void Link::transmit(int from_endpoint, net::Packet&& packet) {
  enqueue_frame(dir_[from_endpoint], std::move(packet));
  arm(from_endpoint);
}

void Link::transmit_batch(int from_endpoint, net::PacketBatch&& batch) {
  Direction& dir = dir_[from_endpoint];
  for (auto& p : batch) enqueue_frame(dir, std::move(p));
  arm(from_endpoint);
}

void Link::arm(int from_endpoint) {
  Direction& dir = dir_[from_endpoint];
  if (dir.pending.empty() || dir.event.pending()) return;
  // Same-shard: fire at delivery time, exactly the classic model.
  // Cross-shard: fire at serialization end on the sender's shard; the
  // batch then crosses to the receiver with the propagation delay, so
  // each frame still arrives at tx_done + delay.
  const SimTime at =
      dir.cross ? dir.pending.front().tx_done : dir.pending.front().deliver_at;
  dir.event = dir.sched->schedule_at(at, [this, from_endpoint] { fire(from_endpoint); });
}

void Link::fire(int from_endpoint) {
  Direction& dir = dir_[from_endpoint];
  const SimTime now = dir.sched->now();

  net::PacketBatch due;
  std::uint64_t due_bytes = 0;
  while (!dir.pending.empty() &&
         (dir.cross ? dir.pending.front().tx_done : dir.pending.front().deliver_at) <= now) {
    due_bytes += dir.pending.front().packet.size();
    due.push_back(std::move(dir.pending.front().packet));
    dir.pending.pop_front();
  }
  dir.delivered += due.size();
  dir.m_delivered->add(due.size());
  dir.m_bytes->add(due_bytes);
  dir.m_queue_depth->set(static_cast<double>(dir.pending.size()));

  // Re-arm for the next frame before delivering: delivery can re-enter
  // transmit() on this same direction (forwarding loops), and that path
  // only arms when no event is pending.
  arm(from_endpoint);

  if (due.empty()) return;
  Node* dst = from_endpoint == 0 ? node_b_ : node_a_;
  const std::uint16_t dst_port = from_endpoint == 0 ? port_b_ : port_a_;
  if (!dir.cross) {
    dst->deliver_batch(dst_port, std::move(due));
    return;
  }
  // shared_ptr only because EventScheduler::Callback requires a
  // copy-constructible target; the batch has exactly one consumer.
  auto batch = std::make_shared<net::PacketBatch>(std::move(due));
  cross_schedule(*dir.sched, dst->scheduler(), config_.delay,
                 [dst, dst_port, batch] { dst->deliver_batch(dst_port, std::move(*batch)); });
}

std::string Link::to_string() const {
  return strings::format("link[%s:%u <-> %s:%u %.1fMbps %.2fms q=%zu]",
                         node_a_->name().c_str(), port_a_, node_b_->name().c_str(), port_b_,
                         static_cast<double>(config_.bandwidth_bps) / 1e6,
                         static_cast<double>(config_.delay) / 1e6, config_.queue_frames);
}

}  // namespace escape::netemu
