#include "chaos/scenario.hpp"

#include "net/headers.hpp"

namespace escape::chaos {

namespace {

netemu::LinkConfig chaos_link() {
  netemu::LinkConfig cfg;
  cfg.bandwidth_bps = 1'000'000'000;
  cfg.delay = 50 * timeunit::kMicrosecond;
  return cfg;
}

std::unique_ptr<Environment> build_env(const LifecycleScenarioOptions& options) {
  EnvironmentOptions eo;
  eo.threads = options.threads;
  eo.shard_by = netemu::ShardBy::kSwitch;
  auto env = std::make_unique<Environment>(eo);
  auto& net = env->network();
  net.add_host("sap1");
  net.add_host("sap2");
  net.add_switch("s1");
  net.add_switch("s2");
  net.add_container("c1", 2.0, 8);
  net.add_container("c2", 2.0, 8);
  (void)net.add_link("sap1", 0, "s1", 1, chaos_link());
  (void)net.add_link("sap2", 0, "s2", 1, chaos_link());
  (void)net.add_link("s1", 2, "s2", 2, chaos_link());
  (void)net.add_link("c1", 0, "s1", 3, chaos_link());
  (void)net.add_link("c2", 0, "s2", 3, chaos_link());
  (void)env->start();
  RecoveryOptions recovery;
  recovery.health.probe_interval = options.probe_interval;
  recovery.health.probe_timeout = options.probe_timeout;
  recovery.health.failure_threshold = options.probe_miss;
  recovery.retry_delay = 50 * timeunit::kMillisecond;
  (void)env->enable_self_healing(recovery);
  return env;
}

void run_lifecycle(Environment& env) {
  netemu::Host* sap1 = env.host("sap1");
  netemu::Host* sap2 = env.host("sap2");
  if (sap1 == nullptr || sap2 == nullptr || !env.started()) return;

  sg::ServiceGraph graph("chaos-lifecycle");
  graph.add_sap("sap1").add_sap("sap2");
  graph.add_vnf("nat", "flow_nat",
                {{"capacity", "1024"}, {"timeout_ms", "30000"}, {"port_count", "64"}}, 0.15);
  graph.add_link("sap1", "nat").add_link("nat", "sap2");

  // A second, reverse-direction chain widens the trace with a second
  // deploy, an interleaved migration and two explicit teardowns.
  sg::ServiceGraph rgraph("chaos-lifecycle-reverse");
  rgraph.add_sap("sap2").add_sap("sap1");
  rgraph.add_vnf("rnat", "flow_nat",
                 {{"capacity", "1024"}, {"timeout_ms", "30000"}, {"port_count", "64"}},
                 0.15);
  rgraph.add_link("sap2", "rnat").add_link("rnat", "sap1");

  // The NATs rewrite nw_src mid-chain; steer on destination only.
  openflow::Match match;
  match.dl_type(net::ethertype::kIpv4).nw_dst(sap2->ip());
  openflow::Match rmatch;
  rmatch.dl_type(net::ethertype::kIpv4).nw_dst(sap1->ip());

  // Every step below may fail under an armed fault schedule -- that is
  // the point. Outcomes are ignored; the invariants judge the episode.
  auto chain = env.deploy(graph, match);
  sap1->start_udp_flow(sap2->mac(), sap2->ip(), 5000, 7777, 2000, 2000);
  env.run_for(100 * timeunit::kMillisecond);
  auto rchain = env.deploy(rgraph, rmatch);
  sap2->start_udp_flow(sap1->mac(), sap1->ip(), 5001, 8888, 2000, 2000);
  if (chain.ok()) (void)env.scale_chain(*chain, 2);
  env.run_for(50 * timeunit::kMillisecond);
  if (rchain.ok()) (void)env.scale_chain(*rchain, 2);
  (void)env.kill_container("c1");
  env.run_for(150 * timeunit::kMillisecond);
  (void)env.restore_container("c1");
  env.run_for(100 * timeunit::kMillisecond);
  if (chain.ok()) (void)env.scale_chain(*chain, 1);
  if (rchain.ok()) (void)env.undeploy(*rchain);

  // Settle: revive whatever a crash fault killed, then give recovery
  // bounded rounds to drive every chain terminal and every dpid clean.
  // (run_until_idle would never return -- health probes self-reschedule.)
  for (int round = 0; round < 12; ++round) {
    for (const std::string& name : env.network().node_names()) {
      netemu::VnfContainer* container = env.network().container(name);
      if (container != nullptr && !container->alive()) (void)env.restore_container(name);
    }
    env.run_for(200 * timeunit::kMillisecond);
    bool settled = env.steering().dirty_count() == 0;
    for (std::uint32_t id : env.deployed_chains()) {
      auto state = env.chain_state(id);
      if (state.ok() && *state != ChainState::kActive && *state != ChainState::kFailed) {
        settled = false;
      }
    }
    if (settled) break;
  }
}

}  // namespace

Scenario lifecycle_scenario(LifecycleScenarioOptions options) {
  Scenario scenario;
  scenario.name = "lifecycle";
  scenario.make_env = [options] { return build_env(options); };
  scenario.run = [](Environment& env) { run_lifecycle(env); };
  return scenario;
}

}  // namespace escape::chaos
