#include "util/workload.hpp"

#include <algorithm>
#include <cmath>

#include "util/random.hpp"
#include "util/strings.hpp"

namespace escape::workload {

namespace {

/// Pareto(min, alpha) via inverse-CDF: min * (1-u)^(-1/alpha).
std::uint64_t pareto_packets(Rng& rng, std::uint64_t min, double alpha) {
  const double u = rng.next_double();  // [0, 1)
  const double v = static_cast<double>(min) * std::pow(1.0 - u, -1.0 / alpha);
  // Clamp the tail so one elephant flow cannot dominate a whole run.
  const double capped = std::min(v, static_cast<double>(min) * 100000.0);
  return static_cast<std::uint64_t>(capped);
}

/// Precomputed Zipf CDF over n ranks; rank r has weight (r+1)^-s.
std::vector<double> zipf_cdf(std::size_t n, double s) {
  std::vector<double> cdf(n);
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    total += std::pow(static_cast<double>(r + 1), -s);
    cdf[r] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

std::size_t zipf_pick(Rng& rng, const std::vector<double>& cdf) {
  const double u = rng.next_double();
  auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return it == cdf.end() ? cdf.size() - 1 : static_cast<std::size_t>(it - cdf.begin());
}

}  // namespace

Plan generate(const Options& opts) {
  Plan plan;
  Rng rng{opts.seed};

  // --- fat-tree(k) substrate --------------------------------------------
  const std::uint32_t k = std::max<std::uint32_t>(2, opts.fattree_k + (opts.fattree_k & 1));
  const std::uint32_t half = k / 2;

  // Core switches: (k/2)^2, named c<i>.
  std::vector<std::string> cores;
  for (std::uint32_t i = 0; i < half * half; ++i) {
    cores.push_back(strings::format("c%u", i));
    plan.switches.push_back(cores.back());
  }
  for (std::uint32_t pod = 0; pod < k; ++pod) {
    std::vector<std::string> edges, aggs;
    for (std::uint32_t j = 0; j < half; ++j) {
      edges.push_back(strings::format("e%u_%u", pod, j));
      aggs.push_back(strings::format("a%u_%u", pod, j));
      plan.switches.push_back(edges.back());
      plan.switches.push_back(aggs.back());
    }
    // Edge <-> aggregation: full bipartite within the pod.
    for (const auto& e : edges)
      for (const auto& a : aggs) plan.links.push_back({e, a});
    // Aggregation j uplinks to cores [j*(k/2), (j+1)*(k/2)).
    for (std::uint32_t j = 0; j < half; ++j)
      for (std::uint32_t c = 0; c < half; ++c)
        plan.links.push_back({aggs[j], cores[j * half + c]});
    // k/2 hosts per edge switch.
    for (std::uint32_t j = 0; j < half; ++j) {
      for (std::uint32_t h = 0; h < half; ++h) {
        plan.hosts.push_back(strings::format("h%u_%u_%u", pod, j, h));
        plan.links.push_back({plan.hosts.back(), edges[j]});
      }
    }
    // One VNF container per pod, hanging off the pod's first edge switch.
    plan.containers.push_back(strings::format("ctr%u", pod));
    plan.links.push_back({plan.containers.back(), edges[0]});
  }

  // --- Poisson arrivals, Zipf destinations, Pareto sizes ----------------
  // Destination popularity ranks are a seeded permutation of the hosts so
  // the hot destinations are not always the lexicographically first ones.
  std::vector<std::size_t> rank_to_host(plan.hosts.size());
  for (std::size_t i = 0; i < rank_to_host.size(); ++i) rank_to_host[i] = i;
  rng.shuffle(rank_to_host);
  const std::vector<double> cdf = zipf_cdf(plan.hosts.size(), std::max(0.0, opts.zipf_s));

  const double mean_gap_s = opts.arrival_rate > 0.0 ? 1.0 / opts.arrival_rate : 0.001;
  double clock_s = 0.0;
  plan.arrivals.reserve(opts.flows);
  for (std::uint64_t f = 0; f < opts.flows; ++f) {
    clock_s += rng.next_exponential(mean_gap_s);
    FlowArrival fa;
    fa.at = static_cast<SimTime>(clock_s * static_cast<double>(timeunit::kSecond));
    if (opts.chains > 0 && rng.next_bool(opts.chain_traffic_fraction)) {
      // Chain-aligned: travels a churn slot's endpoint pair, matching the
      // steering rules of that slot's chain when it is deployed.
      const std::size_t slot = rng.pick_index(opts.chains);
      fa.src_host = (2 * slot) % plan.hosts.size();
      fa.dst_host = (2 * slot + 1) % plan.hosts.size();
    } else {
      fa.dst_host = rank_to_host[zipf_pick(rng, cdf)];
      // Uniform source, resampled so a host never talks to itself.
      do {
        fa.src_host = rng.pick_index(plan.hosts.size());
      } while (fa.src_host == fa.dst_host && plan.hosts.size() > 1);
    }
    fa.src_port = static_cast<std::uint16_t>(rng.next_range(10000, 60000));
    fa.dst_port = rng.next_bool(0.7) ? 80 : static_cast<std::uint16_t>(rng.next_range(1, 1024));
    fa.packets = pareto_packets(rng, std::max<std::uint64_t>(1, opts.pareto_min),
                                std::max(0.1, opts.pareto_alpha));
    plan.arrivals.push_back(fa);
  }
  // Arrivals are generated in time order already; keep the invariant
  // explicit in case the process above ever changes.
  std::stable_sort(plan.arrivals.begin(), plan.arrivals.end(),
                   [](const FlowArrival& a, const FlowArrival& b) { return a.at < b.at; });

  // --- chain deploy/teardown churn --------------------------------------
  const SimTime traffic_end = plan.arrivals.empty() ? 0 : plan.arrivals.back().at;
  if (opts.chains > 0 && opts.churn_rate > 0.0) {
    std::vector<bool> deployed(opts.chains, false);
    double churn_clock_s = 0.0;
    const double churn_gap_s = 1.0 / opts.churn_rate;
    while (true) {
      churn_clock_s += rng.next_exponential(churn_gap_s);
      const auto at = static_cast<SimTime>(churn_clock_s * static_cast<double>(timeunit::kSecond));
      if (at > traffic_end) break;
      const auto slot = static_cast<std::uint32_t>(rng.pick_index(opts.chains));
      plan.churn.push_back({at, !deployed[slot], slot});
      deployed[slot] = !deployed[slot];
    }
  }

  plan.horizon = traffic_end;
  if (!plan.churn.empty()) plan.horizon = std::max(plan.horizon, plan.churn.back().at);
  return plan;
}

}  // namespace escape::workload
