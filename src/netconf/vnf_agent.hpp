// The NETCONF VNF agent (the OpenYuma-based agent of the paper): one per
// VNF container, exposing RPCs to start/stop VNFs and connect/disconnect
// them to/from switches, plus <get> state retrieval whose payload follows
// the escape-vnf YANG module.
//
// "It is worth noting that the migration to real platforms require only
// the adaptation of the instrumentation part" -- the instrumentation here
// is the VnfContainer calls inside each handler; everything above (RPC
// parsing, schema validation, reply construction) is platform-neutral.
#pragma once

#include <memory>

#include "netconf/session.hpp"
#include "netconf/yang.hpp"
#include "netemu/vnf_container.hpp"

namespace escape::netconf {

class VnfAgent {
 public:
  /// Serves the agent on `transport` instrumenting `container` (which
  /// must outlive the agent).
  VnfAgent(std::shared_ptr<TransportEndpoint> transport, netemu::VnfContainer& container);
  ~VnfAgent();

  VnfAgent(const VnfAgent&) = delete;
  VnfAgent& operator=(const VnfAgent&) = delete;

  const NetconfServer& server() const { return *server_; }

  /// Builds the <vnfs> state tree (also used by <get>).
  std::unique_ptr<xml::Element> state_tree(bool include_handlers) const;

  bool subscribed() const { return subscribed_; }

 private:
  void register_operations();

  netemu::VnfContainer* container_;
  std::unique_ptr<NetconfServer> server_;
  std::uint64_t listener_id_ = 0;
  // RFC 5277 subscription state: set by <create-subscription>; when on,
  // VNF lifecycle transitions are pushed as <vnf-state-change> events.
  bool subscribed_ = false;
};

/// Typed client-side wrapper: the orchestrator's view of one agent.
/// Every call is asynchronous; callbacks fire when the reply arrives
/// through the (virtual-time) control network.
class VnfAgentClient {
 public:
  using StatusCallback = std::function<void(Status)>;
  using InfoCallback = std::function<void(Result<netemu::VnfInfo>)>;
  using BlobCallback = std::function<void(Result<std::string>)>;

  explicit VnfAgentClient(std::shared_ptr<TransportEndpoint> transport);

  NetconfClient& session() { return *client_; }

  /// Reliability envelope applied to every typed call below (forwards to
  /// NetconfClient::set_default_rpc_options).
  void set_rpc_options(const RpcOptions& options) {
    client_->set_default_rpc_options(options);
  }
  void set_circuit_breaker(const CircuitBreakerOptions& options) {
    client_->set_circuit_breaker(options);
  }

  void initiate_vnf(const std::string& id, const std::string& type,
                    const std::string& click_config, double cpu_share, StatusCallback cb);
  void start_vnf(const std::string& id, StatusCallback cb);
  void stop_vnf(const std::string& id, StatusCallback cb);
  void remove_vnf(const std::string& id, StatusCallback cb);
  void connect_vnf(const std::string& id, const std::string& device, std::uint16_t port,
                   StatusCallback cb);
  void disconnect_vnf(const std::string& id, const std::string& device, StatusCallback cb);
  void get_vnf_info(const std::string& id, InfoCallback cb);

  /// Flow-state migration (scale-out/in handoff): serialize the flow
  /// tables of a running VNF, restore them into a replica, and flip a
  /// Click write handler (e.g. release a FlowManager hold buffer).
  void export_flow_state(const std::string& id, BlobCallback cb);
  void import_flow_state(const std::string& id, const std::string& blob, StatusCallback cb);
  void set_vnf_handler(const std::string& id, const std::string& handler,
                       const std::string& value, StatusCallback cb);

  /// Subscribes to VNF lifecycle events (RFC 5277 create-subscription);
  /// `on_event` fires for every pushed <vnf-state-change>.
  using EventCallback =
      std::function<void(const std::string& vnf_id, netemu::VnfStatus status)>;
  void subscribe_events(EventCallback on_event, StatusCallback done);

 private:
  void simple_rpc(std::unique_ptr<xml::Element> op, StatusCallback cb);

  std::unique_ptr<NetconfClient> client_;
};

}  // namespace escape::netconf
