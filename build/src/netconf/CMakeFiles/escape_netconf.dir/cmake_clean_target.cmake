file(REMOVE_RECURSE
  "libescape_netconf.a"
)
