#include "chaos/invariants.hpp"

#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "obs/metrics.hpp"

namespace escape::chaos {

namespace {

void report(std::vector<Violation>& out, std::string invariant, std::string subject,
            std::string detail) {
  obs::MetricsRegistry::global()
      .counter("escape_chaos_violations_total", {{"invariant", invariant}})
      .add();
  out.push_back({std::move(invariant), std::move(subject), std::move(detail)});
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

/// Chains whose reservations are live contribute to the expected books.
bool counts_reservations(const ChainDeployment& dep) { return dep.reservations_held; }

void check_terminal_states(Environment& env, std::vector<Violation>& out) {
  for (std::uint32_t id : env.deployed_chains()) {
    const ChainDeployment* dep = env.deployment(id);
    if (dep == nullptr) continue;
    if (dep->state != ChainState::kActive && dep->state != ChainState::kFailed) {
      report(out, "chain.non-terminal", "chain " + std::to_string(id),
             std::string("quiesced in state ") + std::string(chain_state_name(dep->state)));
    }
  }
}

void check_resource_ledger(Environment& env, std::vector<Violation>& out) {
  const sg::ResourceGraph* view = env.resource_view();
  if (view == nullptr) return;

  // Expected per-container usage from the live deployment records.
  std::map<std::string, double> cpu;
  std::map<std::string, std::size_t> slots;
  std::map<int, std::uint64_t> bandwidth;
  for (std::uint32_t id : env.deployed_chains()) {
    const ChainDeployment* dep = env.deployment(id);
    if (dep == nullptr || !counts_reservations(*dep)) continue;
    if (!dep->cpu_ledger.empty()) {
      // Scaled chains carry their replicas' reservations explicitly.
      for (const auto& [container, share] : dep->cpu_ledger) {
        cpu[container] += share;
        slots[container] += 1;
      }
    } else {
      for (const auto& [vnf_id, container] : dep->record.mapping.placements) {
        const sg::VnfNode* vnf = dep->graph.vnf(vnf_id);
        cpu[container] += vnf != nullptr ? vnf->cpu_demand : 0.0;
        slots[container] += 1;
      }
    }
    for (const auto& lm : dep->record.mapping.link_mappings) {
      if (lm.bandwidth_bps == 0) continue;
      for (int idx : lm.path.link_indices) bandwidth[idx] += lm.bandwidth_bps;
    }
  }

  for (const auto& node : view->nodes()) {
    if (node.kind != sg::ResourceKind::kContainer) continue;
    const double want_cpu = cpu.count(node.name) ? cpu[node.name] : 0.0;
    const std::size_t want_slots = slots.count(node.name) ? slots[node.name] : 0;
    if (std::abs(node.cpu_used - want_cpu) > 1e-9) {
      std::ostringstream os;
      os << "view cpu_used=" << node.cpu_used << " but live chains reserve " << want_cpu;
      report(out, "ledger.cpu", node.name, os.str());
    }
    if (node.vnf_slots_used != want_slots) {
      std::ostringstream os;
      os << "view slots_used=" << node.vnf_slots_used << " but live chains hold "
         << want_slots;
      report(out, "ledger.slots", node.name, os.str());
    }
  }
  const auto& links = view->links();
  for (std::size_t i = 0; i < links.size(); ++i) {
    const std::uint64_t want =
        bandwidth.count(static_cast<int>(i)) ? bandwidth[static_cast<int>(i)] : 0;
    if (links[i].bandwidth_used != want) {
      std::ostringstream os;
      os << "view bandwidth_used=" << links[i].bandwidth_used << " but live chains reserve "
         << want;
      report(out, "ledger.bandwidth", links[i].a + "<->" + links[i].b, os.str());
    }
  }
}

void check_steering(Environment& env, std::vector<Violation>& out) {
  pox::TrafficSteering& steering = env.steering();
  std::set<openflow::DatapathId> up;
  for (openflow::DatapathId dpid : env.controller().connected_switches()) up.insert(dpid);

  for (const std::string& name : env.network().node_names()) {
    netemu::SwitchNode* sw = env.network().switch_node(name);
    if (sw == nullptr) continue;
    const openflow::DatapathId dpid = sw->dpid();
    if (steering.dirty(dpid)) {
      report(out, "steering.dirty", name,
             up.count(dpid) ? "dpid still marked dirty with its connection up"
                            : "dpid dirty and its connection never recovered");
      continue;
    }
    if (!up.count(dpid)) continue;  // table untrusted but not claimed clean

    // Multiset diff of rule identities (cookie, priority, match digest):
    // the intent store vs the cookied slice of the actual table. The
    // human-readable match rides along for the violation report.
    std::multiset<std::tuple<std::uint64_t, std::uint16_t, std::uint64_t>> want, have;
    std::map<std::tuple<std::uint64_t, std::uint16_t, std::uint64_t>, std::string> pretty;
    if (const auto* rules = steering.intent(dpid)) {
      for (const auto& r : *rules) {
        std::tuple<std::uint64_t, std::uint16_t, std::uint64_t> k{r.chain_id, r.priority,
                                                                  r.match.digest()};
        pretty.emplace(k, r.match.to_string());
        want.insert(k);
      }
    }
    for (const auto& e : sw->datapath().flow_table().cookied_stats(env.scheduler().now())) {
      std::tuple<std::uint64_t, std::uint16_t, std::uint64_t> k{e.cookie, e.priority,
                                                                e.match.digest()};
      pretty.emplace(k, e.match.to_string());
      have.insert(k);
    }
    if (want != have) {
      std::ostringstream os;
      os << "intent has " << want.size() << " rule(s), flow table has " << have.size();
      for (const auto& k : want) {
        if (want.count(k) > have.count(k)) {
          os << "; missing cookie=" << std::get<0>(k) << " prio=" << std::get<1>(k) << " "
             << pretty[k];
        }
      }
      for (const auto& k : have) {
        if (have.count(k) > want.count(k)) {
          os << "; stray cookie=" << std::get<0>(k) << " prio=" << std::get<1>(k) << " "
             << pretty[k];
        }
      }
      report(out, "steering.intent-mismatch", name, os.str());
    }
  }
}

void check_containers(Environment& env, std::vector<Violation>& out) {
  // Instance ids owned by some chain's live record.
  std::set<std::string> accounted;
  for (std::uint32_t id : env.deployed_chains()) {
    const ChainDeployment* dep = env.deployment(id);
    if (dep == nullptr) continue;
    for (const auto& vnf : dep->record.vnfs) accounted.insert(vnf.instance_id);
  }

  for (const std::string& name : env.network().node_names()) {
    netemu::VnfContainer* container = env.network().container(name);
    if (container == nullptr || !container->alive()) continue;
    for (const std::string& vnf_id : container->vnf_ids()) {
      if (!accounted.count(vnf_id)) {
        report(out, "vnf.orphan-instance", name,
               "instance '" + vnf_id + "' belongs to no live deployment record");
      }
      auto info = container->vnf_info(vnf_id);
      if (!info.ok() || info->status != netemu::VnfStatus::kRunning) continue;
      for (const auto& [handler, value] : info->handlers) {
        if (ends_with(handler, ".hold") && value != "0") {
          report(out, "vnf.stranded-hold", name,
                 "instance '" + vnf_id + "' handler " + handler + "=" + value +
                     " after quiesce");
        }
        if (ends_with(handler, ".held") && value != "0") {
          report(out, "vnf.stranded-buffer", name,
                 "instance '" + vnf_id + "' still buffers " + value + " packet(s) (" +
                     handler + ")");
        }
        if (ends_with(handler, ".ports_free")) {
          const std::string elem = handler.substr(0, handler.size() - sizeof("ports_free"));
          auto mappings = info->handlers.find(elem + ".mappings");
          auto total = info->handlers.find(elem + ".ports_total");
          if (mappings == info->handlers.end() || total == info->handlers.end()) continue;
          // Conservation holds for the pool's own range: migrated-in
          // mappings may carry a foreign port (the exporting replica's
          // range) that never touched this pool. Elements without the
          // native/foreign split have only local mappings.
          auto native = info->handlers.find(elem + ".mappings_native");
          const long free = std::stol(value);
          const long used =
              std::stol((native != info->handlers.end() ? native : mappings)->second);
          const long all = std::stol(total->second);
          if (free + used != all) {
            std::ostringstream os;
            os << "instance '" << vnf_id << "' element " << elem << ": ports_free=" << free
               << " + native mappings=" << used << " != ports_total=" << all;
            report(out, "nat.port-leak", name, os.str());
          }
        }
      }
    }
  }
}

}  // namespace

std::string to_string(const Violation& v) {
  return v.invariant + " [" + v.subject + "]: " + v.detail;
}

std::vector<Violation> check_invariants(Environment& env) {
  std::vector<Violation> out;
  check_terminal_states(env, out);
  check_resource_ledger(env, out);
  check_steering(env, out);
  check_containers(env, out);
  return out;
}

}  // namespace escape::chaos
