// Queueing elements: the push-to-pull converters that decouple packet
// arrival from packet processing, and the tasks that drain them.
#include "click/elements.hpp"
#include "click/router.hpp"
#include "util/strings.hpp"

namespace escape::click {

// --- Queue ---------------------------------------------------------------------

Queue::Queue() {
  declare_ports({PortMode::kPush}, {PortMode::kPull});
  add_read_handler("length", [this] { return std::to_string(queue_.size()); });
  add_read_handler("capacity", [this] { return std::to_string(capacity_); });
  add_read_handler("drops", [this] { return std::to_string(drops_); });
  add_read_handler("highwater", [this] { return std::to_string(highwater_); });
  add_write_handler("reset", [this](std::string_view) {
    queue_.clear();
    drops_ = 0;
    highwater_ = 0;
    return ok_status();
  });
}

Status Queue::configure(const ConfigArgs& args) {
  if (auto v = args.keyword_or_positional("CAPACITY", 0)) {
    auto c = strings::parse_scaled_u64(*v);
    if (!c || *c == 0) return make_error("click.config.bad-arg", "Queue capacity must be > 0");
    capacity_ = static_cast<std::size_t>(*c);
  }
  return ok_status();
}

void Queue::push(int, Packet&& p) {
  if (queue_.size() >= capacity_) {
    ++drops_;  // tail drop
    return;
  }
  const bool was_empty = queue_.empty();
  queue_.push_back(std::move(p));
  highwater_ = std::max(highwater_, queue_.size());
  if (was_empty) {
    for (auto& fn : listeners_) fn();
  }
}

std::optional<Packet> Queue::pull(int) {
  if (queue_.empty()) return std::nullopt;
  Packet p = std::move(queue_.front());
  queue_.pop_front();
  return p;
}

void Queue::push_batch(int, PacketBatch&& batch) {
  // Bulk append with the same tail-drop policy as the scalar path and a
  // single empty -> non-empty wake-up for the whole burst.
  const bool was_empty = queue_.empty();
  for (auto& p : batch) {
    if (queue_.size() >= capacity_) {
      ++drops_;
      continue;
    }
    queue_.push_back(std::move(p));
  }
  highwater_ = std::max(highwater_, queue_.size());
  if (was_empty && !queue_.empty()) {
    for (auto& fn : listeners_) fn();
  }
}

PacketBatch Queue::pull_batch(int, std::size_t max) {
  const std::size_t n = std::min(max, queue_.size());
  PacketBatch out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return out;
}


namespace {

/// Walks upstream through pull elements collecting every Queue that can
/// feed this subtree (depth-limited). Drain tasks register wake-up
/// listeners on all of them, so they sleep correctly even when a
/// scheduler or shaper sits between the Queue and the drainer.
void collect_upstream_queues(Element* element, std::vector<Queue*>& out, int depth = 0) {
  if (!element || depth > 8) return;
  if (auto* q = dynamic_cast<Queue*>(element)) {
    out.push_back(q);
    return;
  }
  for (int port = 0; port < element->n_inputs(); ++port) {
    collect_upstream_queues(element->input_peer(port), out, depth + 1);
  }
}

}  // namespace

// --- Unqueue ----------------------------------------------------------------------

Unqueue::Unqueue() {
  declare_ports({PortMode::kPull}, {PortMode::kPush});
  add_read_handler("count", [this] { return std::to_string(moved_); });
}

Status Unqueue::configure(const ConfigArgs& args) {
  if (auto v = args.keyword_or_positional("BURST", 0)) {
    auto b = strings::parse_u64(*v);
    if (!b || *b == 0) return make_error("click.config.bad-arg", "Unqueue BURST must be > 0");
    burst_ = *b;
  }
  if (auto v = args.keyword_u64("INTERVAL")) interval_ = *v;
  return ok_status();
}

Status Unqueue::initialize(Router& router) {
  task_ = std::make_unique<Task>(&router, [this] { return run_once(); });
  // Wake up when any upstream queue becomes non-empty instead of polling.
  std::vector<Queue*> queues;
  collect_upstream_queues(input_peer(0), queues);
  for (Queue* q : queues) {
    q->add_nonempty_listener([this] { task_->reschedule(0); });
  }
  task_->reschedule(0);
  return ok_status();
}

std::optional<SimDuration> Unqueue::run_once() {
  // Pull the whole burst upstream in one call and push it downstream as
  // one batch: two virtual calls per run instead of two per packet.
  PacketBatch batch = input_pull_batch(0, burst_);
  if (batch.empty()) return std::nullopt;  // idle until the queue wakes us
  moved_ += batch.size();
  output_push_batch(0, std::move(batch));
  return router()->scale_delay(interval_);
}

// --- RatedUnqueue -------------------------------------------------------------------

RatedUnqueue::RatedUnqueue() { declare_ports({PortMode::kPull}, {PortMode::kPush}); }

Status RatedUnqueue::configure(const ConfigArgs& args) {
  if (auto v = args.keyword_or_positional("RATE", 0)) {
    auto r = strings::parse_scaled_u64(*v);
    if (!r || *r == 0) return make_error("click.config.bad-arg", "RatedUnqueue RATE must be > 0");
    rate_ = *r;
  }
  return ok_status();
}

Status RatedUnqueue::initialize(Router& router) {
  bucket_.emplace(rate_, std::max<std::uint64_t>(rate_ / 100, 1));
  task_ = std::make_unique<Task>(&router, [this] { return run_once(); });
  std::vector<Queue*> queues;
  collect_upstream_queues(input_peer(0), queues);
  for (Queue* q : queues) {
    q->add_nonempty_listener([this] { task_->reschedule(0); });
  }
  task_->reschedule(0);
  return ok_status();
}

std::optional<SimDuration> RatedUnqueue::run_once() {
  const SimTime now = router()->scheduler().now();
  if (!bucket_->try_consume(now, 1)) {
    return bucket_->next_available(now, 1) - now;
  }
  auto p = input_pull(0);
  if (!p) return std::nullopt;  // empty upstream; bucket token already burned
  output_push(0, std::move(*p));
  const SimTime next = bucket_->next_available(now, 1);
  return next > now ? next - now : timeunit::kMicrosecond;
}

}  // namespace escape::click

namespace escape::click {

// --- pull schedulers -------------------------------------------------------------

RoundRobinSched::RoundRobinSched() {
  declare_ports({PortMode::kPull, PortMode::kPull}, {PortMode::kPull});
}

Status RoundRobinSched::configure(const ConfigArgs& args) {
  std::uint64_t n = 2;
  if (auto v = args.keyword_or_positional("N", 0)) {
    auto parsed = strings::parse_u64(*v);
    if (!parsed || *parsed == 0 || *parsed > 64) {
      return make_error("click.config.bad-arg", "RoundRobinSched N must be 1..64");
    }
    n = *parsed;
  }
  declare_ports(std::vector<PortMode>(n, PortMode::kPull), {PortMode::kPull});
  return ok_status();
}

std::optional<Packet> RoundRobinSched::pull(int) {
  const auto n = static_cast<std::size_t>(n_inputs());
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t port = (next_ + i) % n;
    if (auto p = input_pull(static_cast<int>(port))) {
      next_ = (port + 1) % n;  // resume after the input just served
      return p;
    }
  }
  return std::nullopt;
}

PrioSched::PrioSched() {
  declare_ports({PortMode::kPull, PortMode::kPull}, {PortMode::kPull});
  for (std::size_t i = 0; i < 2; ++i) {
    add_read_handler(strings::format("served_%zu", i),
                     [this, i] { return std::to_string(i < served_.size() ? served_[i] : 0); });
  }
  served_.assign(2, 0);
}

Status PrioSched::configure(const ConfigArgs& args) {
  std::uint64_t n = 2;
  if (auto v = args.keyword_or_positional("N", 0)) {
    auto parsed = strings::parse_u64(*v);
    if (!parsed || *parsed == 0 || *parsed > 64) {
      return make_error("click.config.bad-arg", "PrioSched N must be 1..64");
    }
    n = *parsed;
  }
  declare_ports(std::vector<PortMode>(n, PortMode::kPull), {PortMode::kPull});
  served_.assign(n, 0);
  for (std::size_t i = 2; i < n; ++i) {
    add_read_handler(strings::format("served_%zu", i),
                     [this, i] { return std::to_string(served_[i]); });
  }
  return ok_status();
}

std::optional<Packet> PrioSched::pull(int) {
  for (int port = 0; port < n_inputs(); ++port) {
    if (auto p = input_pull(port)) {
      ++served_[static_cast<std::size_t>(port)];
      return p;
    }
  }
  return std::nullopt;
}

}  // namespace escape::click
