// escape-run: the command-line front end of the framework -- the
// replacement for the paper's MiniEdit-based GUI workflow. Takes a
// topology description and a service-graph description (both JSON),
// deploys the chain, drives traffic between its SAPs and prints a
// deployment / traffic / monitoring report.
//
//   escape-run <topology.json> <service_graph.json>
//              [--algorithm greedy|loadbalance|delaygreedy|backtracking]
//              [--rate PPS] [--count N] [--duration SECONDS]
//              [--return-path] [--verbose]
//              [--metrics] [--metrics-json FILE]
//              [--monitor VNF] [--monitor-interval MS]
//              [--faults FILE] [--self-heal] [--autoscale FILE]
//              [--threads N] [--shard-by region|switch|none]
//              [--flow-capacity N] [--flow-timeout-ms MS]
//
// Synthetic-workload mode (no JSON artifacts; see src/util/workload.hpp):
//
//   escape-run --workload [--workload-seed N] [--workload-k K]
//              [--workload-flows N] [--workload-chains N]
//              [--rate PPS] [--metrics] [--metrics-json FILE] ...
//
// Chaos-exploration mode (no JSON artifacts; the built-in lifecycle
// scenario is recorded, then replayed under every enumerated fault
// schedule with global invariant checking):
//
//   escape-run --chaos-explore [--chaos-depth N] [--chaos-seed N]
//              [--chaos-max N] [--chaos-artifacts DIR] [--threads N]
//              [--probe-interval-ms MS] [--probe-miss N]
//   escape-run --chaos-replay FILE [--threads N]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "chaos/explorer.hpp"
#include "chaos/scenario.hpp"
#include "click/flow.hpp"
#include "escape/environment.hpp"
#include "fault/fault_plane.hpp"
#include "obs/metrics.hpp"
#include "util/workload.hpp"

using namespace escape;

namespace {

Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return make_error("cli.io", "cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct Options {
  std::string topology_path;
  std::string sg_path;
  std::string algorithm = "greedy";
  std::uint64_t rate = 1000;
  std::uint64_t count = 1000;
  std::uint64_t duration_s = 2;
  bool return_path = false;
  bool verbose = false;
  bool metrics = false;
  std::string metrics_json_path;
  std::string monitor_vnf;  // live per-VNF monitor (Clicky-style)
  std::uint64_t monitor_interval_ms = 500;
  std::string faults_path;  // chaos script (fault::FaultPlane JSON)
  std::string autoscale_path;  // elastic-scaling policy (AutoScaler JSON)
  bool self_heal = false;
  std::uint64_t of_echo_ms = 0;  // 0 = default OpenFlow keepalive cadence
  std::uint64_t threads = 1;     // event-engine worker threads
  netemu::ShardBy shard_by = netemu::ShardBy::kNone;
  bool workload = false;  // synthetic fat-tree workload instead of JSON inputs
  workload::Options workload_opts;
  // Health-probe tuning (satellite of the self-healing loop); 0 / -1
  // keep the compiled-in defaults.
  std::uint64_t probe_interval_ms = 0;
  std::uint64_t probe_timeout_ms = 0;
  int probe_miss = 0;
  // Chaos exploration (src/chaos).
  bool chaos_explore = false;
  int chaos_depth = 1;
  std::uint64_t chaos_seed = 1;
  std::uint64_t chaos_max = 0;
  std::string chaos_artifacts;
  std::string chaos_replay_path;
};

chaos::LifecycleScenarioOptions scenario_options(const Options& opts) {
  chaos::LifecycleScenarioOptions scenario;
  scenario.threads = opts.threads;
  if (opts.probe_interval_ms > 0) {
    scenario.probe_interval = opts.probe_interval_ms * timeunit::kMillisecond;
  }
  if (opts.probe_timeout_ms > 0) {
    scenario.probe_timeout = opts.probe_timeout_ms * timeunit::kMillisecond;
  }
  if (opts.probe_miss > 0) scenario.probe_miss = opts.probe_miss;
  return scenario;
}

/// --chaos-explore: systematic fault-schedule search over the built-in
/// lifecycle scenario. Exit code 1 when any schedule breaks an invariant.
int run_chaos_explore(const Options& opts) {
  chaos::ExplorerOptions explorer_opts;
  explorer_opts.depth = opts.chaos_depth;
  explorer_opts.seed = opts.chaos_seed;
  explorer_opts.max_schedules = opts.chaos_max;
  explorer_opts.artifact_dir = opts.chaos_artifacts;
  chaos::ChaosExplorer explorer(chaos::lifecycle_scenario(scenario_options(opts)),
                                explorer_opts);
  chaos::ExploreReport report = explorer.explore();
  std::printf("chaos-explore: %s\n", report.summary().c_str());
  if (!report.clean_violations.empty()) {
    for (const auto& v : report.clean_violations) {
      std::printf("  clean-run violation: %s\n", chaos::to_string(v).c_str());
    }
    return 1;
  }
  for (std::size_t i = 0; i < report.episodes.size(); ++i) {
    const chaos::Episode& episode = report.episodes[i];
    if (!episode.failed()) continue;
    std::printf("FAIL schedule #%zu:\n", i);
    for (const auto& spec : episode.schedule) {
      std::printf("  fault %s\n", spec.to_string().c_str());
    }
    for (const auto& v : episode.violations) {
      std::printf("  violation %s\n", chaos::to_string(v).c_str());
    }
  }
  return report.failures() == 0 ? 0 : 1;
}

/// --chaos-replay FILE: replay one (typically minimized) schedule.
int run_chaos_replay(const Options& opts) {
  auto text = read_file(opts.chaos_replay_path);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.error().to_string().c_str());
    return 1;
  }
  auto schedule = chaos::schedule_from_json(*text);
  if (!schedule.ok()) {
    std::fprintf(stderr, "chaos-replay: %s\n", schedule.error().to_string().c_str());
    return 1;
  }
  chaos::ChaosExplorer explorer(chaos::lifecycle_scenario(scenario_options(opts)), {});
  chaos::Episode episode = explorer.run_schedule(*schedule);
  std::printf("chaos-replay: %zu fault(s) armed, %zu fired, digest %llu\n",
              episode.schedule.size(), episode.faults_fired,
              static_cast<unsigned long long>(episode.digest));
  for (const auto& v : episode.violations) {
    std::printf("  violation %s\n", chaos::to_string(v).c_str());
  }
  if (episode.violations.empty()) std::printf("  all invariants hold\n");
  return episode.failed() ? 1 : 0;
}

/// Prints the registry lines that belong to one VNF (matched by its
/// vnf="..." label), prefixed with the current virtual time. This reads
/// the metrics registry directly -- it must NOT issue NETCONF monitoring
/// RPCs, because it runs inside a scheduler event.
void print_monitor_sample(const Options& opts, SimTime now) {
  const std::string needle = "vnf=\"" + opts.monitor_vnf + "\"";
  std::istringstream lines(obs::MetricsRegistry::global().render_text());
  std::printf("-- t=%.1f ms  vnf=%s --\n",
              static_cast<double>(now) / timeunit::kMillisecond, opts.monitor_vnf.c_str());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find(needle) != std::string::npos) std::printf("  %s\n", line.c_str());
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <topology.json> <service_graph.json>\n"
               "          [--algorithm NAME] [--rate PPS] [--count N]\n"
               "          [--duration SECONDS] [--return-path] [--verbose]\n"
               "          [--metrics] [--metrics-json FILE]\n"
               "          [--monitor VNF] [--monitor-interval MS]\n"
               "          [--faults FILE] [--self-heal] [--of-echo-ms MS]\n"
               "          [--autoscale FILE]\n"
               "          [--threads N] [--shard-by region|switch|none]\n"
               "          [--flow-capacity N] [--flow-timeout-ms MS]\n"
               "   or: %s --workload [--workload-seed N] [--workload-k K]\n"
               "          [--workload-flows N] [--workload-chains N] ...\n"
               "   or: %s --chaos-explore [--chaos-depth N] [--chaos-seed N]\n"
               "          [--chaos-max N] [--chaos-artifacts DIR] [--threads N]\n"
               "          [--probe-interval-ms MS] [--probe-timeout-ms MS]\n"
               "          [--probe-miss N]\n"
               "   or: %s --chaos-replay FILE [--threads N]\n",
               argv0, argv0, argv0, argv0);
  return 2;
}

/// --workload: synthesize a fat-tree substrate and a heavy-tailed
/// traffic + chain-churn schedule from a seed, then run it. This is the
/// paper's "scalability" demo without hand-authored JSON, and the same
/// generator the classification benches replay (bench E8).
int run_workload(const Options& opts) {
  const workload::Plan plan = workload::generate(opts.workload_opts);

  // Materialize the plan as a TopologySpec: auto-assigned ports (0 for
  // hosts/containers, dense from 1 for switches -- the spec only needs
  // them unique per node).
  service::TopologySpec spec;
  spec.name = "fat-tree-workload";
  for (const auto& h : plan.hosts) spec.nodes.push_back({h, "host", 1.0, 8});
  for (const auto& s : plan.switches) spec.nodes.push_back({s, "switch", 1.0, 8});
  for (const auto& c : plan.containers) spec.nodes.push_back({c, "container", 4.0, 16});
  std::map<std::string, std::uint16_t> next_port;
  for (const auto& s : plan.switches) next_port[s] = 1;
  auto port_of = [&next_port](const std::string& node) -> std::uint16_t {
    auto it = next_port.find(node);
    return it == next_port.end() ? 0 : it->second++;
  };
  for (const auto& l : plan.links) {
    service::TopologyLinkSpec link;
    link.a = l.a;
    link.port_a = port_of(l.a);
    link.b = l.b;
    link.port_b = port_of(l.b);
    spec.links.push_back(link);
  }

  EnvironmentOptions env_opts{.mapping_algorithm = opts.algorithm};
  env_opts.threads = opts.threads;
  env_opts.shard_by = opts.shard_by;
  Environment env{env_opts};
  if (auto s = env.load_topology(spec); !s.ok()) {
    std::fprintf(stderr, "build: %s\n", s.error().to_string().c_str());
    return 1;
  }
  if (auto s = env.start(); !s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.error().to_string().c_str());
    return 1;
  }
  std::printf(
      "workload: fat-tree k=%u, %zu hosts, %zu switches, %zu flows, "
      "%zu churn events (seed %llu)\n",
      opts.workload_opts.fattree_k, plan.hosts.size(), plan.switches.size(),
      plan.arrivals.size(), plan.churn.size(),
      static_cast<unsigned long long>(opts.workload_opts.seed));

  // Plan times are relative to t=0 but env.start() already advanced the
  // virtual clock (discovery, handshakes), so rebase everything on "now".
  const SimTime base = env.scheduler().now();

  // Flow arrivals: every event starts a UDP flow at its planned virtual
  // time; the per-flow packet rate comes from --rate. Each arrival goes
  // straight onto the source host's shard, so starting the flow is a
  // shard-local event even with --threads N (cross-shard hops then ride
  // the links' registered lookahead).
  std::uint64_t packets_offered = 0;
  for (const auto& fa : plan.arrivals) {
    packets_offered += fa.packets;
    netemu::Host* src = env.host(plan.hosts[fa.src_host]);
    netemu::Host* dst = env.host(plan.hosts[fa.dst_host]);
    if (!src || !dst) continue;
    src->scheduler().schedule_at(base + fa.at, [src, dst, fa, rate = opts.rate] {
      src->start_udp_flow(dst->mac(), dst->ip(), fa.src_port, fa.dst_port, fa.packets, rate);
    });
  }

  // Chain churn: each slot alternates deploy/teardown of a one-firewall
  // chain between a fixed pair of hosts. Deploys are whole-network
  // orchestration, so they run on the control thread *between* scheduler
  // segments (like the JSON workflow's deploy-then-run), not inside an
  // event. Deploy failures (e.g. substrate exhaustion) are counted, not
  // fatal -- churn keeps running.
  std::map<std::uint32_t, std::uint32_t> live;  // slot -> chain id
  std::uint64_t deploys = 0, teardowns = 0, failures = 0;
  for (const auto& ev : plan.churn) {
    env.scheduler().run_until(base + ev.at);
    if (ev.deploy) {
      const std::size_t n = plan.hosts.size();
      const std::string& a = plan.hosts[(2 * ev.slot) % n];
      const std::string& b = plan.hosts[(2 * ev.slot + 1) % n];
      sg::ServiceGraph graph("churn-" + std::to_string(ev.slot));
      const std::string fw = "fw_slot" + std::to_string(ev.slot);
      graph.add_sap(a);
      graph.add_vnf(fw, "firewall", {{"default", "allow"}}, 0.05);
      graph.add_link(a, fw);
      graph.add_link(fw, b);
      graph.add_sap(b);
      auto id = env.deploy(graph);
      if (id.ok()) {
        live[ev.slot] = *id;
        ++deploys;
      } else {
        ++failures;
      }
    } else {
      auto it = live.find(ev.slot);
      if (it == live.end()) continue;  // matching deploy failed
      if (env.undeploy(it->second).ok()) ++teardowns;
      live.erase(it);
    }
  }

  // Run to the planned horizon plus drain time for in-flight packets.
  env.scheduler().run_until(base + plan.horizon + seconds(opts.duration_s));

  std::uint64_t delivered = 0;
  for (const auto& h : plan.hosts) {
    if (netemu::Host* host = env.host(h)) delivered += host->rx_packets();
  }
  std::printf("traffic: %llu/%llu packets delivered across %zu flows\n",
              static_cast<unsigned long long>(delivered),
              static_cast<unsigned long long>(packets_offered), plan.arrivals.size());
  std::printf("churn: %llu deploys, %llu teardowns, %llu failures, %zu chains live at end\n",
              static_cast<unsigned long long>(deploys),
              static_cast<unsigned long long>(teardowns),
              static_cast<unsigned long long>(failures), live.size());

  if (opts.metrics) {
    std::printf("\n=== metrics (Prometheus text exposition) ===\n%s",
                obs::MetricsRegistry::global().render_text().c_str());
  }
  if (!opts.metrics_json_path.empty()) {
    std::ofstream out(opts.metrics_json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", opts.metrics_json_path.c_str());
      return 1;
    }
    out << obs::MetricsRegistry::global().snapshot_json().dump(2) << "\n";
    std::printf("metrics snapshot written to %s\n", opts.metrics_json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--algorithm") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.algorithm = v;
    } else if (arg == "--rate") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.rate = std::strtoull(v, nullptr, 10);
    } else if (arg == "--count") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.count = std::strtoull(v, nullptr, 10);
    } else if (arg == "--duration") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.duration_s = std::strtoull(v, nullptr, 10);
    } else if (arg == "--return-path") {
      opts.return_path = true;
    } else if (arg == "--verbose") {
      opts.verbose = true;
    } else if (arg == "--metrics") {
      opts.metrics = true;
    } else if (arg == "--metrics-json") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.metrics_json_path = v;
    } else if (arg == "--monitor") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.monitor_vnf = v;
    } else if (arg == "--monitor-interval") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.monitor_interval_ms = std::strtoull(v, nullptr, 10);
      if (opts.monitor_interval_ms == 0) opts.monitor_interval_ms = 1;
    } else if (arg == "--faults") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.faults_path = v;
    } else if (arg == "--autoscale") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.autoscale_path = v;
    } else if (arg == "--of-echo-ms") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.of_echo_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--self-heal") {
      opts.self_heal = true;
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.threads = std::strtoull(v, nullptr, 10);
      if (opts.threads == 0) opts.threads = 1;
    } else if (arg == "--shard-by") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      if (std::strcmp(v, "region") == 0) {
        opts.shard_by = netemu::ShardBy::kRegion;
      } else if (std::strcmp(v, "switch") == 0) {
        opts.shard_by = netemu::ShardBy::kSwitch;
      } else if (std::strcmp(v, "none") == 0) {
        opts.shard_by = netemu::ShardBy::kNone;
      } else {
        std::fprintf(stderr, "unknown --shard-by mode: %s\n", v);
        return usage(argv[0]);
      }
    } else if (arg == "--flow-capacity") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      // Process-wide defaults used by every FlowManager whose CAPACITY /
      // TIMEOUT_MS is "default" -- i.e. the catalog-rendered chains.
      click::FlowManager::set_default_capacity(std::strtoull(v, nullptr, 10));
    } else if (arg == "--flow-timeout-ms") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      click::FlowManager::set_default_idle_timeout(
          milliseconds(std::strtoull(v, nullptr, 10)));
    } else if (arg == "--workload") {
      opts.workload = true;
    } else if (arg == "--workload-seed") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.workload_opts.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--workload-k") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.workload_opts.fattree_k =
          static_cast<std::uint32_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--workload-flows") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.workload_opts.flows = std::strtoull(v, nullptr, 10);
    } else if (arg == "--workload-chains") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.workload_opts.chains =
          static_cast<std::uint32_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--probe-interval-ms") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.probe_interval_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--probe-timeout-ms") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.probe_timeout_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--probe-miss") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.probe_miss = static_cast<int>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--chaos-explore") {
      opts.chaos_explore = true;
    } else if (arg == "--chaos-depth") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.chaos_depth = static_cast<int>(std::strtoull(v, nullptr, 10));
      if (opts.chaos_depth < 1) opts.chaos_depth = 1;
    } else if (arg == "--chaos-seed") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.chaos_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--chaos-max") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.chaos_max = std::strtoull(v, nullptr, 10);
    } else if (arg == "--chaos-artifacts") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.chaos_artifacts = v;
    } else if (arg == "--chaos-replay") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.chaos_replay_path = v;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      positional.push_back(arg);
    }
  }
  if (opts.workload) {
    if (!positional.empty()) return usage(argv[0]);  // plan is synthesized
    Logging::set_level(opts.verbose ? LogLevel::kInfo : LogLevel::kWarn);
    return run_workload(opts);
  }
  if (opts.chaos_explore || !opts.chaos_replay_path.empty()) {
    if (!positional.empty()) return usage(argv[0]);  // scenario is built in
    Logging::set_level(opts.verbose ? LogLevel::kInfo : LogLevel::kWarn);
    return opts.chaos_explore ? run_chaos_explore(opts) : run_chaos_replay(opts);
  }
  if (positional.size() != 2) return usage(argv[0]);
  opts.topology_path = positional[0];
  opts.sg_path = positional[1];

  Logging::set_level(opts.verbose ? LogLevel::kInfo : LogLevel::kWarn);

  // --- load the two artifacts -------------------------------------------
  auto topo_text = read_file(opts.topology_path);
  if (!topo_text.ok()) {
    std::fprintf(stderr, "%s\n", topo_text.error().to_string().c_str());
    return 1;
  }
  auto spec = service::TopologySpec::from_json(*topo_text);
  if (!spec.ok()) {
    std::fprintf(stderr, "topology: %s\n", spec.error().to_string().c_str());
    return 1;
  }
  auto sg_text = read_file(opts.sg_path);
  if (!sg_text.ok()) {
    std::fprintf(stderr, "%s\n", sg_text.error().to_string().c_str());
    return 1;
  }
  auto graph = service::service_graph_from_json(*sg_text);
  if (!graph.ok()) {
    std::fprintf(stderr, "service graph: %s\n", graph.error().to_string().c_str());
    return 1;
  }

  // --- bring the environment up ------------------------------------------
  EnvironmentOptions env_opts{.mapping_algorithm = opts.algorithm};
  env_opts.threads = opts.threads;
  env_opts.shard_by = opts.shard_by;
  if (opts.of_echo_ms > 0) {
    // Faster OpenFlow keepalives so short chaos runs can actually see
    // echo-timeout detection (default cadence is one probe per second).
    env_opts.controller_liveness.echo_interval = opts.of_echo_ms * timeunit::kMillisecond;
    env_opts.switch_liveness.echo_interval = opts.of_echo_ms * timeunit::kMillisecond;
  }
  Environment env{env_opts};
  if (auto s = env.load_topology(*spec); !s.ok()) {
    std::fprintf(stderr, "build: %s\n", s.error().to_string().c_str());
    return 1;
  }
  if (auto s = env.start(); !s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.error().to_string().c_str());
    return 1;
  }
  std::printf("topology '%s': %zu switches, %zu containers, %zu hosts\n",
              spec->name.c_str(), env.network().switch_count(),
              env.network().container_count(), env.network().host_count());

  if (opts.self_heal) {
    // Probe cadence used to be compile-time only; --probe-interval-ms /
    // --probe-timeout-ms / --probe-miss now override the defaults.
    RecoveryOptions recovery;
    if (opts.probe_interval_ms > 0) {
      recovery.health.probe_interval = opts.probe_interval_ms * timeunit::kMillisecond;
    }
    if (opts.probe_timeout_ms > 0) {
      recovery.health.probe_timeout = opts.probe_timeout_ms * timeunit::kMillisecond;
    }
    if (opts.probe_miss > 0) recovery.health.failure_threshold = opts.probe_miss;
    if (auto s = env.enable_self_healing(recovery); !s.ok()) {
      std::fprintf(stderr, "self-heal: %s\n", s.error().to_string().c_str());
      return 1;
    }
    std::printf(
        "self-healing enabled (probe every %.0f ms, timeout %.0f ms, "
        "%d misses -> dead)\n",
        static_cast<double>(recovery.health.probe_interval) / timeunit::kMillisecond,
        static_cast<double>(recovery.health.probe_timeout) / timeunit::kMillisecond,
        recovery.health.failure_threshold);
  }

  // The fault plane must outlive the traffic run: repeating events stay
  // armed in the scheduler until the plane is destroyed.
  fault::FaultPlane faults{env};
  if (!opts.faults_path.empty()) {
    auto script = read_file(opts.faults_path);
    if (!script.ok()) {
      std::fprintf(stderr, "%s\n", script.error().to_string().c_str());
      return 1;
    }
    if (auto s = faults.load_json(*script); !s.ok()) {
      std::fprintf(stderr, "faults: %s\n", s.error().to_string().c_str());
      return 1;
    }
    std::printf("fault script '%s': %zu events armed\n", opts.faults_path.c_str(),
                faults.scheduled());
  }

  // --- deploy --------------------------------------------------------------
  auto chain = env.deploy(*graph);
  if (!chain.ok()) {
    std::fprintf(stderr, "deploy: %s\n", chain.error().to_string().c_str());
    return 1;
  }
  const ChainDeployment* dep = env.deployment(*chain);
  std::printf("chain %u '%s' deployed with %s\n", *chain, graph->name().c_str(),
              dep->record.mapping.to_string().c_str());
  std::printf("setup latency: %.3f ms (virtual)\n",
              static_cast<double>(dep->record.setup_latency()) / timeunit::kMillisecond);
  if (opts.return_path) {
    auto reverse = env.install_return_path(*chain);
    if (!reverse.ok()) {
      std::fprintf(stderr, "return path: %s\n", reverse.error().to_string().c_str());
      return 1;
    }
    std::printf("return path installed (chain %u)\n", *reverse);
  }

  // --- elastic scaling ----------------------------------------------------
  if (!opts.autoscale_path.empty()) {
    auto policy_text = read_file(opts.autoscale_path);
    if (!policy_text.ok()) {
      std::fprintf(stderr, "%s\n", policy_text.error().to_string().c_str());
      return 1;
    }
    auto policy = orchestrator::autoscale_options_from_json(*policy_text);
    if (!policy.ok()) {
      std::fprintf(stderr, "autoscale: %s\n", policy.error().to_string().c_str());
      return 1;
    }
    const std::size_t policies = policy->policies.size();
    if (auto s = env.enable_autoscaling(std::move(*policy)); !s.ok()) {
      std::fprintf(stderr, "autoscale: %s\n", s.error().to_string().c_str());
      return 1;
    }
    std::printf("autoscaling enabled (%zu policies from %s)\n", policies,
                opts.autoscale_path.c_str());
  }

  // --- traffic ---------------------------------------------------------------
  auto order = graph->chain_order();
  netemu::Host* src = env.host(order->front());
  netemu::Host* dst = env.host(order->back());
  src->start_udp_flow(dst->mac(), dst->ip(), 40000, 80, opts.count, opts.rate);

  // Clicky-style live monitor: a self-rescheduling virtual-time event
  // that samples the metrics registry while the traffic runs.
  struct Monitor {
    const Options* opts;
    ShardedScheduler* sched;
    SimDuration interval;
    bool active = true;
    void fire() {
      if (!active) return;
      print_monitor_sample(*opts, sched->now());
      sched->schedule(interval, [this] { fire(); });
    }
  };
  Monitor monitor{&opts, &env.scheduler(), opts.monitor_interval_ms * timeunit::kMillisecond};
  if (!opts.monitor_vnf.empty()) {
    std::printf("\nlive monitor (every %llu ms virtual):\n",
                static_cast<unsigned long long>(opts.monitor_interval_ms));
    env.scheduler().schedule(monitor.interval, [&monitor] { monitor.fire(); });
  }
  env.run_for(seconds(opts.duration_s));
  monitor.active = false;  // keep later pump_until phases quiet

  std::printf("\ntraffic %s -> %s: %llu/%llu delivered",
              order->front().c_str(), order->back().c_str(),
              static_cast<unsigned long long>(dst->rx_packets()),
              static_cast<unsigned long long>(opts.count));
  if (dst->latency_us().count()) {
    std::printf(", latency p50 %.1f us p95 %.1f us", dst->latency_us().p50(),
                dst->latency_us().p95());
  }
  std::printf("\n");

  if (!opts.faults_path.empty()) {
    std::printf("faults injected: %llu\n",
                static_cast<unsigned long long>(faults.injections()));
    for (std::uint32_t id : env.deployed_chains()) {
      auto state = env.chain_state(id);
      if (state.ok()) {
        std::printf("chain %u state: %s\n", id,
                    std::string(chain_state_name(*state)).c_str());
      }
    }
  }

  if (!opts.autoscale_path.empty()) {
    std::printf("chain %u instances at end: %zu (generation %u)\n", *chain,
                dep->scale_instances, dep->scale_generation);
  }

  auto stats = env.chain_stats(*chain);
  if (stats.ok()) {
    std::printf("chain flow stats (first hop): %llu packets, %llu bytes across %zu flows\n",
                static_cast<unsigned long long>(stats->packets),
                static_cast<unsigned long long>(stats->bytes), stats->flows);
  }

  // --- monitoring ---------------------------------------------------------------
  std::printf("\nVNF monitoring (NETCONF getVNFInfo):\n");
  for (const auto& vnf : dep->record.vnfs) {
    auto info = env.monitor_vnf(vnf.container, vnf.instance_id);
    if (!info.ok()) continue;
    std::printf("  %s (%s) @ %s [%s] cpu=%.2f\n", vnf.vnf_id.c_str(),
                info->vnf_type.c_str(), vnf.container.c_str(),
                std::string(netemu::vnf_status_name(info->status)).c_str(),
                info->cpu_share);
    for (const auto& [handler, value] : info->handlers) {
      if (opts.verbose || handler.find("count") != std::string::npos ||
          handler.find("denied") != std::string::npos ||
          handler.find("accepted") != std::string::npos) {
        std::printf("    %-26s %s\n", handler.c_str(), value.c_str());
      }
    }
  }

  // --- observability snapshot -----------------------------------------------
  if (opts.metrics) {
    std::printf("\n=== metrics (Prometheus text exposition) ===\n%s",
                obs::MetricsRegistry::global().render_text().c_str());
  }
  if (!opts.metrics_json_path.empty()) {
    std::ofstream out(opts.metrics_json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", opts.metrics_json_path.c_str());
      return 1;
    }
    out << obs::MetricsRegistry::global().snapshot_json().dump(2) << "\n";
    std::printf("\nmetrics snapshot written to %s\n", opts.metrics_json_path.c_str());
  }
  return 0;
}
