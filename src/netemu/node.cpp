#include "netemu/node.hpp"

#include <vector>

#include "netemu/link.hpp"

namespace escape::netemu {

std::string_view node_kind_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::kHost: return "host";
    case NodeKind::kSwitch: return "switch";
    case NodeKind::kVnfContainer: return "container";
  }
  return "?";
}

Status Node::attach_link(std::uint16_t port, Link* link, int endpoint) {
  if (ports_.count(port)) {
    return make_error("netemu.port-in-use",
                      name_ + ": port " + std::to_string(port) + " already has a link");
  }
  ports_[port] = Attachment{link, endpoint};
  return ok_status();
}

void Node::detach_link(std::uint16_t port) { ports_.erase(port); }

std::vector<std::uint16_t> Node::attached_ports() const {
  std::vector<std::uint16_t> out;
  out.reserve(ports_.size());
  for (const auto& [no, _] : ports_) out.push_back(no);
  return out;
}

void Node::deliver_batch(std::uint16_t port, net::PacketBatch&& batch) {
  for (auto& p : batch) deliver(port, std::move(p));
}

void Node::send_out(std::uint16_t port, net::Packet&& packet) {
  auto it = ports_.find(port);
  if (it == ports_.end()) return;  // unwired port: drop
  it->second.link->transmit(it->second.endpoint, std::move(packet));
}

void Node::send_out_batch(std::uint16_t port, net::PacketBatch&& batch) {
  auto it = ports_.find(port);
  if (it == ports_.end()) return;  // unwired port: drop
  it->second.link->transmit_batch(it->second.endpoint, std::move(batch));
}

}  // namespace escape::netemu
