// The ESCAPE traffic-steering component: programs the OpenFlow network so
// that flows matching a chain's traffic specification traverse the
// chain's VNFs in order. This is the "dedicated easy-to-configure
// controller application responsible for steering traffic between VNFs"
// of the paper.
//
// Two modes:
//   * proactive (default): install_chain() pushes all flow-mods at once;
//   * reactive: register_chain() stores the path and the rules are only
//     installed when the first matching packet-in arrives (ablation for
//     bench_steering).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "obs/metrics.hpp"
#include "pox/core.hpp"
#include "util/result.hpp"

namespace escape::pox {

/// One steering hop: at switch `dpid`, traffic of the chain entering on
/// `in_port` leaves on `out_port`.
struct SteeringHop {
  DatapathId dpid = 0;
  std::uint16_t in_port = 0;
  std::uint16_t out_port = 0;
};

/// A fully resolved chain path as produced by the orchestrator.
struct ChainPath {
  std::uint32_t chain_id = 0;
  openflow::Match match;  // traffic specification (without in_port)
  std::vector<SteeringHop> hops;
  std::uint16_t priority = 0x9000;
  SimDuration idle_timeout = 0;  // 0 = permanent
};

/// Per-chain traffic counters from the flow entries the steering app
/// installed (correlated by cookie == chain id). `packets`/`bytes` come
/// from the chain's *entry* flow (the first hop's in_port), so they
/// count each packet once even when several hops share a switch.
struct ChainStats {
  std::uint32_t chain_id = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::size_t flows = 0;  // all matching entries on the first-hop switch
};

class TrafficSteering : public App {
 public:
  std::string_view name() const override { return "traffic_steering"; }

  void on_startup(Controller& controller) override;
  bool on_packet_in(SwitchConnection& conn, const openflow::PacketIn& msg) override;
  void on_flow_removed(SwitchConnection& conn, const openflow::FlowRemoved& msg) override;
  void on_stats_reply(SwitchConnection& conn, const openflow::StatsReply& msg) override;

  /// Proactively installs every hop of the chain. Fails if a hop's switch
  /// is not connected.
  Status install_chain(const ChainPath& path);

  /// Registers a chain for reactive installation on first packet.
  void register_chain(ChainPath path);

  /// Removes a chain's flows everywhere.
  Status remove_chain(std::uint32_t chain_id);

  bool installed(std::uint32_t chain_id) const { return installed_.count(chain_id) > 0; }
  std::size_t installed_count() const { return installed_.size(); }
  std::uint64_t reactive_installs() const { return reactive_installs_; }

  /// Asynchronously queries the chain's traffic counters: sends a
  /// flow-stats request to the chain's first-hop switch and aggregates
  /// the entries whose cookie matches. `cb` fires when the reply
  /// arrives through the control channel.
  void query_chain_stats(std::uint32_t chain_id,
                         std::function<void(Result<ChainStats>)> cb);

 private:
  Status push_flow_mods(const ChainPath& path, std::optional<std::uint32_t> buffer_id,
                        DatapathId buffer_dpid);

  /// Keeps the chains-installed gauge in sync with installed_.size().
  void sync_installed_gauge();

  Controller* controller_ = nullptr;
  std::map<std::uint32_t, ChainPath> installed_;
  std::map<std::uint32_t, ChainPath> pending_;  // reactive, not yet installed
  std::uint64_t reactive_installs_ = 0;
  obs::Counter* m_flowmods_ = nullptr;
  obs::Counter* m_reactive_installs_ = nullptr;
  obs::Gauge* m_chains_installed_ = nullptr;
  obs::BoundedHistogram* m_install_latency_us_ = nullptr;
  // Outstanding stats queries, FIFO per switch (stats replies carry no
  // correlation id in OF 1.0).
  struct StatsQuery {
    std::uint32_t chain_id;
    std::uint16_t entry_in_port;
    std::function<void(Result<ChainStats>)> cb;
  };
  std::map<DatapathId, std::deque<StatsQuery>> stats_queries_;
  Logger log_{"pox.steering"};
};

}  // namespace escape::pox
