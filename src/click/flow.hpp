// Flow-aware middlebox substrate (the MiddleClick idea): a FlowManager
// element classifies packets into flows by 5-tuple and hands a per-flow
// state block down the chain, so stateful VNFs (NAT, sticky load
// balancer, TCP reassembly, stream IDS) share one classification pass
// and one table instead of each keeping its own hash map.
//
// Model:
//   * FlowManager owns a robin-hood open-addressing table mapping the
//     5-tuple to a state block. Each block starts with a FlowBlockHeader
//     (tuple, timestamps, packet/byte counters) followed by scratch
//     space that downstream elements reserve at initialize() time --
//     the per-element FCB offsets of fastclick's ctx subsystem.
//   * While FlowManager pushes a packet (or a same-flow run of a batch)
//     downstream, the flow context is published through a thread-local
//     (current_flow()). The push path is synchronous within one shard,
//     and every router is owned by exactly one shard of the PR-6
//     engine, so the context never crosses threads and flow tables
//     never need locks: thread confinement comes from shard ownership.
//   * Idle flows are evicted by a periodic sweep task driven by the
//     virtual-time scheduler, so eviction order and timing are
//     deterministic and bit-identical across worker thread counts.
//   * Elements register eviction listeners to release per-flow
//     resources they own (NAT ports, reassembly buffers). Listeners
//     fire on idle/pressure eviction and explicit clear, never during
//     destruction (each element frees its own memory in its destructor,
//     so teardown order between elements does not matter).
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <regex>
#include <string>
#include <vector>

#include "click/element.hpp"
#include "net/addr.hpp"
#include "net/packet.hpp"
#include "util/time.hpp"

namespace escape::click {

class Router;

// --- flow identity ----------------------------------------------------------

/// The classification key: IPv4 5-tuple. ICMP uses type/code as the
/// port pair so echo streams form flows too; other IP protocols use 0.
struct FlowTuple {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;

  bool operator==(const FlowTuple&) const = default;

  /// 64-bit mix of the tuple; never returns 0 (0 marks an empty slot).
  std::uint64_t hash() const;

  std::string to_string() const;

  /// Extracts the tuple from an Ethernet frame; nullopt for non-IPv4.
  static std::optional<FlowTuple> from_packet(const Packet& p);
};

/// Fixed header at offset 0 of every flow state block.
struct FlowBlockHeader {
  FlowTuple tuple;
  SimTime created = 0;
  SimTime last_seen = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

// --- the state table --------------------------------------------------------

/// Open-addressing robin-hood hash table from FlowTuple to a heap state
/// block. Insertion steals slots from richer entries (bounded probe
/// variance), deletion backward-shifts, growth doubles the slot array
/// up to the configured flow capacity.
class FlowStateTable {
 public:
  /// (header, block base) -- listeners index into the block with the
  /// scratch offset they reserved.
  using EvictListener = std::function<void(const FlowBlockHeader&, std::uint8_t*)>;

  FlowStateTable(std::size_t initial_buckets, std::size_t max_flows);

  /// Reserves `bytes` of per-flow scratch (zero-initialized) aligned to
  /// `align`; returns the offset into the block. Must be called before
  /// the first block is allocated (i.e. during element initialize()).
  std::size_t reserve_scratch(std::size_t bytes, std::size_t align = 8);

  void add_evict_listener(EvictListener fn) { listeners_.push_back(std::move(fn)); }

  /// Block for `t`, or nullptr. Does not touch header counters.
  std::uint8_t* find(const FlowTuple& t);

  struct Lookup {
    std::uint8_t* block = nullptr;  // nullptr: table at capacity
    bool created = false;
  };
  /// Finds or allocates the block for `t`. A fresh block has its header
  /// initialized (tuple, created = last_seen = now) and scratch zeroed.
  Lookup find_or_create(const FlowTuple& t, SimTime now);

  /// Evicts one flow (fires listeners). Returns whether it existed.
  bool erase(const FlowTuple& t);

  /// Evicts every flow idle for at least `idle_timeout` at `now` (fires
  /// listeners); returns the count. Scan order is slot order, so sweeps
  /// are deterministic.
  std::size_t sweep(SimTime now, SimDuration idle_timeout);

  /// Evicts everything (fires listeners).
  void clear();

  /// Visits every live flow in slot order. Slot order is a pure function
  /// of the insertion history, so exports taken at the same virtual time
  /// are bit-identical across runs and worker-thread counts.
  void for_each(
      const std::function<void(const FlowBlockHeader&, const std::uint8_t*)>& fn) const;

  std::size_t size() const { return size_; }
  std::size_t bucket_count() const { return slots_.size(); }
  std::size_t max_flows() const { return max_flows_; }
  std::size_t block_size() const { return block_size_; }
  std::uint64_t created_total() const { return created_; }
  std::uint64_t evicted_idle() const { return evicted_idle_; }
  std::uint64_t evicted_total() const { return evicted_idle_ + evicted_explicit_; }
  /// Resident bytes: slot array plus live state blocks.
  std::size_t memory_bytes() const;
  /// Largest probe sequence length seen on insert (collision telemetry).
  std::size_t max_probe() const { return max_probe_; }

  FlowBlockHeader* header_of(std::uint8_t* block) const {
    return reinterpret_cast<FlowBlockHeader*>(block);
  }

 private:
  struct Slot {
    std::uint64_t hash = 0;  // 0 = empty
    std::unique_ptr<std::uint8_t[]> block;
  };

  std::size_t find_index(const FlowTuple& t, std::uint64_t h) const;
  void insert_slot(std::uint64_t h, std::unique_ptr<std::uint8_t[]> block);
  void erase_index(std::size_t index);
  void evict_index(std::size_t index, bool idle);
  void grow();

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::size_t max_flows_;
  std::size_t block_size_ = 0;   // frozen on first allocation
  std::size_t scratch_end_ = 0;  // running reservation cursor
  bool layout_frozen_ = false;
  std::uint64_t created_ = 0;
  std::uint64_t evicted_idle_ = 0;
  std::uint64_t evicted_explicit_ = 0;
  std::size_t max_probe_ = 0;
  std::vector<EvictListener> listeners_;
};

// --- the flow context -------------------------------------------------------

class FlowManager;

/// Published by FlowManager for the duration of a downstream push: the
/// flow the current packet (or same-flow run) belongs to.
struct FlowCtx {
  FlowManager* manager = nullptr;
  std::uint8_t* block = nullptr;
  FlowBlockHeader* header() const { return reinterpret_cast<FlowBlockHeader*>(block); }
};

/// The flow context of the packet currently being pushed, or nullptr
/// outside a FlowManager push path. Thread-local: each shard thread
/// sees only its own context.
FlowCtx* current_flow();

/// RAII publication of a flow context (nesting restores the outer one,
/// so chained FlowManagers keep their contexts separate).
class FlowScope {
 public:
  explicit FlowScope(FlowCtx* ctx);
  ~FlowScope();
  FlowScope(const FlowScope&) = delete;
  FlowScope& operator=(const FlowScope&) = delete;

 private:
  FlowCtx* prev_;
};

// --- FlowManager element ----------------------------------------------------

/// FlowManager(CAPACITY 1048576, BUCKETS 1024, TIMEOUT_MS 30000,
///             SWEEP_MS 1000, HOLD false)
/// Push element: classifies each packet into a flow, updates the block
/// header, and pushes downstream with the flow context set. Non-IPv4
/// packets pass through with no context. Packets that cannot get a
/// block (table at CAPACITY) leave on output 1 if connected, else are
/// dropped and counted.
///
/// CAPACITY/TIMEOUT_MS accept the literal "default" (or may be
/// omitted) to use the process-wide defaults settable by escape-run's
/// --flow-capacity / --flow-timeout-ms flags.
///
/// Migration support (the OpenNF-style loss-free handoff): with HOLD
/// true (or after `write hold 1`) every arriving packet is buffered
/// instead of pushed, so a freshly deployed instance can receive
/// imported flow state before it processes its first packet; `write
/// hold 0` flushes the buffer FIFO through the normal push path.
/// export_state()/import_state() serialize the flow table plus the
/// per-flow scratch of every downstream element that registered a
/// FlowCodec (NAT port maps, LB stickiness, TCP reassembly buffers).
class FlowManager : public Element {
 public:
  FlowManager();
  std::string_view class_name() const override { return "FlowManager"; }
  Status configure(const ConfigArgs& args) override;
  Status initialize(Router& router) override;
  void push(int port, Packet&& p) override;
  void push_batch(int port, PacketBatch&& batch) override;

  // --- client API (downstream stateful elements) ---------------------------

  /// See FlowStateTable::reserve_scratch.
  std::size_t reserve_scratch(std::size_t bytes, std::size_t align = 8) {
    return table_.reserve_scratch(bytes, align);
  }
  void add_evict_listener(FlowStateTable::EvictListener fn) {
    table_.add_evict_listener(std::move(fn));
  }

  /// Fallback for clients processing a packet outside this manager's
  /// push path (e.g. behind a Queue): classifies and allocates on the
  /// spot. Returns nullptr for non-IPv4 or a full table.
  std::uint8_t* lookup_block(const Packet& p);

  FlowStateTable& table() { return table_; }
  SimDuration idle_timeout() const { return idle_timeout_; }

  /// Resolves the FlowManager a stateful element should attach to: the
  /// element named by `named` (from an FM keyword) or, when empty, the
  /// single FlowManager instance of the router. Returns nullptr when
  /// none exists; an error when the reference is ambiguous or dangling.
  static Result<FlowManager*> resolve(Router& router, const std::string& named);

  /// Process-wide defaults (escape-run --flow-capacity/--flow-timeout-ms).
  static void set_default_capacity(std::size_t flows);
  static void set_default_idle_timeout(SimDuration timeout);

  // --- state migration (scale-out/in flow handoff) --------------------------

  /// Per-element serializer of the scratch a stateful element keeps in
  /// this manager's flow blocks. `name` is the element's instance name
  /// (stable across replicas rendered from the same catalog template) and
  /// keys import dispatch. save() returns one line of text (no newlines)
  /// or "" to skip the flow; load() rebuilds the element's side state
  /// (port maps, stream buffers) from that line.
  struct FlowCodec {
    std::string name;
    std::function<std::string(const FlowBlockHeader&, const std::uint8_t*)> save;
    std::function<Status(const FlowBlockHeader&, std::uint8_t*, const std::string&)> load;
  };
  void register_codec(FlowCodec codec) { codecs_.push_back(std::move(codec)); }

  /// Serializes every live flow (header + registered codec lines) to the
  /// line-based handoff wire format (DESIGN.md §13).
  std::string export_state() const;
  /// Rebuilds flows from export_state() text. Existing flows with the
  /// same tuple are overwritten. Returns the number of flows imported.
  Result<std::size_t> import_state(const std::string& text);

  /// Starts/stops buffering arriving packets; stopping flushes the held
  /// packets FIFO through the normal push path.
  void set_hold(bool hold);
  bool holding() const { return holding_; }
  std::size_t held() const { return held_.size(); }

 private:
  void run_sweep();
  /// Pushes one same-flow run [i, j) of `batch` downstream on `out`.
  void emit_run(PacketBatch& batch, std::size_t i, std::size_t j, int out, FlowCtx* ctx);
  void hold_packet(Packet&& p);
  void classify_push(Packet&& p);

  FlowStateTable table_;
  SimDuration idle_timeout_;
  SimDuration sweep_interval_ = 1000 * timeunit::kMillisecond;
  std::unique_ptr<Task> sweep_task_;
  std::uint64_t lookups_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t non_ip_ = 0;
  std::uint64_t full_drops_ = 0;
  bool holding_ = false;
  std::deque<Packet> held_;
  std::size_t hold_cap_ = 65536;  // packets
  std::uint64_t hold_drops_ = 0;
  std::vector<FlowCodec> codecs_;
};

// --- stateful VNF elements --------------------------------------------------

/// Flow-table NAT. FlowNAT(EXTERNAL_IP 192.0.2.1, PORT_BASE 20000,
/// PORT_COUNT 1024, FM manager_name).
/// Ports: in0/out0 internal->external (source rewritten to
/// EXTERNAL_IP:allocated-port), in1/out1 external->internal (destination
/// translated back; unknown inbound flows dropped). Each outbound flow
/// allocates one external port from a FIFO free list; ports return to
/// the list when the flow manager evicts the flow, so idle-timeout
/// eviction is what makes port reuse possible. When the pool is
/// exhausted new flows are dropped and counted.
class FlowNAT : public Element {
 public:
  FlowNAT();
  std::string_view class_name() const override { return "FlowNAT"; }
  Status configure(const ConfigArgs& args) override;
  Status initialize(Router& router) override;
  void push(int port, Packet&& p) override;
  void push_batch(int port, PacketBatch&& batch) override;

  std::size_t active_mappings() const { return reverse_.size(); }
  std::size_t free_ports() const { return free_ports_.size(); }
  std::size_t ports_total() const { return port_count_; }

 private:
  // Per-flow scratch of outbound flows.
  struct NatSlot {
    std::uint16_t ext_port = 0;
    std::uint8_t state = 0;  // 0 new, 1 mapped, 2 blocked (pool exhausted)
  };
  struct ReverseKey {
    std::uint8_t proto;
    std::uint16_t ext_port;
    bool operator<(const ReverseKey& o) const {
      return std::tie(proto, ext_port) < std::tie(o.proto, o.ext_port);
    }
  };
  struct Internal {
    std::uint32_t ip;
    std::uint16_t port;
  };

  /// Ensures the outbound flow has a mapping; returns nullptr if the
  /// packet must be dropped (no context, no block or no free port).
  NatSlot* outbound_slot(const Packet& p);

  /// True when `port` lies in this instance's configured range (a
  /// migrated-in mapping may carry a foreign port that must never enter
  /// the local free pool).
  bool owns_port(std::uint16_t port) const {
    return port >= port_base_ && port < port_base_ + port_count_;
  }

  std::string fm_name_;
  FlowManager* fm_ = nullptr;
  std::size_t slot_off_ = 0;
  net::Ipv4Addr external_ip_{192, 0, 2, 1};
  std::uint16_t port_base_ = 20000;
  std::size_t port_count_ = 1024;
  std::deque<std::uint16_t> free_ports_;
  std::map<ReverseKey, Internal> reverse_;
  std::uint64_t translated_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t exhausted_ = 0;
};

/// Flow-sticky L4 load balancer. FlowLB(N 2, MODE rr|hash, FM name).
/// The first packet of a flow picks a backend (round-robin over flows,
/// or tuple hash); every later packet of the flow takes the same output
/// no matter how the backends' load shifts. Per-backend counters track
/// packets and currently-assigned flows (decremented on eviction).
class FlowLB : public Element {
 public:
  FlowLB();
  std::string_view class_name() const override { return "FlowLB"; }
  Status configure(const ConfigArgs& args) override;
  Status initialize(Router& router) override;
  void push(int port, Packet&& p) override;
  void push_batch(int port, PacketBatch&& batch) override;

 private:
  struct LbSlot {
    std::uint8_t assigned = 0;
    std::uint8_t backend = 0;
  };
  int backend_for(const Packet& p);

  std::string fm_name_;
  FlowManager* fm_ = nullptr;
  std::size_t slot_off_ = 0;
  bool round_robin_ = true;
  std::size_t rr_next_ = 0;
  std::uint64_t flows_assigned_ = 0;
  std::vector<std::uint64_t> out_packets_;
  std::vector<std::uint64_t> out_flows_;  // currently assigned
};

/// Per-flow TCP stream reassembly. TcpReassembler(WINDOW 65536,
/// OOO_CAP 65536, FM name). Agnostic single-port element: packets pass
/// through unmodified; in-order payload bytes are appended to a per-flow
/// pending buffer that a downstream StreamIDS consumes. Out-of-order
/// segments are buffered (bounded) and drained when the gap closes;
/// retransmitted bytes are delivered exactly once. Each direction of a
/// connection is its own flow (its own 5-tuple), exactly like a real
/// unidirectional middlebox tap.
class TcpReassembler : public SimpleElement {
 public:
  /// In-order bytes not yet consumed by a downstream stream consumer.
  struct Pending {
    const std::uint8_t* data = nullptr;
    std::size_t len = 0;
    std::uint64_t stream_offset = 0;  // offset of data[0] in the stream
  };

  TcpReassembler();
  std::string_view class_name() const override { return "TcpReassembler"; }
  Status configure(const ConfigArgs& args) override;
  Status initialize(Router& router) override;

  /// Pending bytes of the flow `block` (empty if none).
  Pending pending_of(std::uint8_t* block);
  /// Marks the flow's pending bytes consumed.
  void consume(std::uint8_t* block);

  FlowManager* flow_manager() const { return fm_; }

 protected:
  Verdict process(Packet& p) override;

 private:
  struct StreamState {
    bool have_isn = false;
    std::uint32_t next_seq = 0;
    std::uint64_t delivered = 0;  // stream offset just past `pending`
    std::vector<std::uint8_t> pending;
    std::map<std::uint32_t, std::vector<std::uint8_t>> ooo;
    std::size_t ooo_bytes = 0;
  };

  StreamState* state_of(std::uint8_t* block, bool create);
  void deliver(StreamState& st, const std::uint8_t* data, std::size_t len);
  void drain_ooo(StreamState& st);
  void release(std::uint32_t idx_plus1);

  std::string fm_name_;
  FlowManager* fm_ = nullptr;
  std::size_t slot_off_ = 0;  // scratch: uint32 index+1 into states_
  std::size_t window_cap_ = 65536;
  std::size_t ooo_cap_ = 65536;
  std::vector<std::unique_ptr<StreamState>> states_;
  std::vector<std::uint32_t> free_states_;
  std::size_t active_streams_ = 0;
  std::uint64_t reassembled_bytes_ = 0;
  std::uint64_t duplicate_bytes_ = 0;
  std::uint64_t ooo_segments_ = 0;
  std::uint64_t ooo_dropped_ = 0;
  std::uint64_t overflow_bytes_ = 0;
};

/// Stream-scanning IDS. StreamIDS(PATTERNS "a;b", REGEX "re1;re2",
/// MODE alert|drop, TAIL 256, FM name).
/// Scans the reassembled byte stream of each flow (via an upstream
/// TcpReassembler found automatically or named with REASSEMBLER) for
/// substring and std::regex patterns that may cross packet boundaries:
/// the last TAIL bytes of the previous chunk are kept per flow and
/// prepended to the scan window, and only matches ending in fresh bytes
/// count, so alert totals do not depend on how the stream was packetized
/// (for matches up to TAIL+1 bytes long). Non-TCP packets (or flows with
/// no reassembler) fall back to per-packet payload scanning. MODE drop
/// cuts the connection: every packet of a flow after its first alert
/// goes to output 1 if connected, else is dropped.
class StreamIDS : public SimpleElement {
 public:
  StreamIDS();
  std::string_view class_name() const override { return "StreamIDS"; }
  Status configure(const ConfigArgs& args) override;
  Status initialize(Router& router) override;

  std::uint64_t alerts() const { return alerts_; }

 protected:
  Verdict process(Packet& p) override;

 private:
  // Per-flow scratch: { uint16 tail_len; uint8 alerted; uint8 tail[TAIL] }.
  struct IdsSlotHeader {
    std::uint16_t tail_len = 0;
    std::uint8_t alerted = 0;
  };

  std::size_t scan(const std::uint8_t* tail, std::size_t tail_len, const std::uint8_t* fresh,
                   std::size_t fresh_len);

  std::string fm_name_;
  std::string reassembler_name_;
  FlowManager* fm_ = nullptr;
  TcpReassembler* reasm_ = nullptr;
  std::size_t slot_off_ = 0;
  std::size_t tail_cap_ = 256;
  bool drop_mode_ = false;
  std::vector<std::string> patterns_;
  std::vector<std::pair<std::string, std::regex>> regexes_;
  std::vector<std::uint64_t> pattern_hits_;
  std::vector<std::uint64_t> regex_hits_;
  std::uint64_t alerts_ = 0;
  std::uint64_t scanned_bytes_ = 0;
  std::uint64_t cut_packets_ = 0;
  std::vector<std::uint8_t> window_;  // scratch buffer reused per scan
};

class ElementRegistry;

/// Registers FlowManager and the stateful VNF elements above.
void register_flow_elements(ElementRegistry& registry);

}  // namespace escape::click
