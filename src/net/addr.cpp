#include "net/addr.hpp"

#include "util/strings.hpp"

namespace escape::net {

std::optional<MacAddr> MacAddr::parse(std::string_view s) {
  auto parts = strings::split(s, ':');
  if (parts.size() != 6) return std::nullopt;
  std::array<std::uint8_t, 6> bytes{};
  for (std::size_t i = 0; i < 6; ++i) {
    const std::string& p = parts[i];
    if (p.empty() || p.size() > 2) return std::nullopt;
    unsigned v = 0;
    for (char c : p) {
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else return std::nullopt;
    }
    bytes[i] = static_cast<std::uint8_t>(v);
  }
  return MacAddr(bytes);
}

std::string MacAddr::to_string() const {
  return strings::format("%02x:%02x:%02x:%02x:%02x:%02x", bytes_[0], bytes_[1], bytes_[2],
                         bytes_[3], bytes_[4], bytes_[5]);
}

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view s) {
  auto parts = strings::split(s, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto& p : parts) {
    auto octet = strings::parse_u64(p);
    if (!octet || *octet > 255) return std::nullopt;
    value = (value << 8) | static_cast<std::uint32_t>(*octet);
  }
  return Ipv4Addr(value);
}

bool Ipv4Addr::in_subnet(Ipv4Addr network, int prefix_len) const {
  if (prefix_len <= 0) return true;
  if (prefix_len >= 32) return value_ == network.value_;
  const std::uint32_t mask = ~((1u << (32 - prefix_len)) - 1);
  return (value_ & mask) == (network.value_ & mask);
}

std::string Ipv4Addr::to_string() const {
  return strings::format("%u.%u.%u.%u", (value_ >> 24) & 0xff, (value_ >> 16) & 0xff,
                         (value_ >> 8) & 0xff, value_ & 0xff);
}

}  // namespace escape::net
