// The OpenFlow 1.0 control-channel message set used between the switch
// datapath and the POX-style controller. Messages are typed C++ structs
// (not wire-serialized): the control channel is in-memory, but the
// message vocabulary and semantics follow ofp10.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "net/packet.hpp"
#include "openflow/actions.hpp"
#include "openflow/match.hpp"
#include "util/time.hpp"

namespace escape::openflow {

using DatapathId = std::uint64_t;

struct PortInfo {
  std::uint16_t port_no = 0;
  net::MacAddr hw_addr;
  std::string name;
  bool link_up = true;
};

// --- symmetric / handshake ---------------------------------------------------

struct Hello {};
struct EchoRequest {
  std::uint32_t payload = 0;
};
struct EchoReply {
  std::uint32_t payload = 0;
};
struct FeaturesRequest {};
struct FeaturesReply {
  DatapathId datapath_id = 0;
  std::uint32_t n_buffers = 256;
  std::uint8_t n_tables = 1;
  std::vector<PortInfo> ports;
};

// --- controller -> switch ------------------------------------------------------

enum class FlowModCommand : std::uint8_t { kAdd, kModify, kDelete, kDeleteStrict };

struct FlowMod {
  FlowModCommand command = FlowModCommand::kAdd;
  Match match;
  std::uint16_t priority = 0x8000;
  std::uint64_t cookie = 0;
  SimDuration idle_timeout = 0;  // 0 = none
  SimDuration hard_timeout = 0;  // 0 = none
  ActionList actions;
  std::optional<std::uint32_t> buffer_id;  // apply to this buffered packet too
  bool send_flow_removed = false;
};

/// A burst of flow-mods applied as one table transaction (single
/// version bump on the switch). OF 1.0 has no batch frame: on a
/// serialized channel this travels as N consecutive ofp_flow_mod
/// messages (the codec round-trips each mod individually).
struct FlowModBatch {
  std::vector<FlowMod> mods;
};

struct PacketOut {
  std::optional<std::uint32_t> buffer_id;  // either a buffer or raw data
  net::Packet packet;                      // used when buffer_id is empty
  std::uint16_t in_port = kPortNone;
  ActionList actions;
};

struct StatsRequest {
  enum class Kind : std::uint8_t { kFlow, kPort, kTable } kind = Kind::kFlow;
};

struct BarrierRequest {};

// --- switch -> controller --------------------------------------------------------

enum class PacketInReason : std::uint8_t { kNoMatch, kAction };

struct PacketIn {
  std::optional<std::uint32_t> buffer_id;
  std::uint16_t in_port = 0;
  PacketInReason reason = PacketInReason::kNoMatch;
  net::Packet packet;
};

enum class FlowRemovedReason : std::uint8_t { kIdleTimeout, kHardTimeout, kDelete };

struct FlowRemoved {
  Match match;
  std::uint16_t priority = 0;
  std::uint64_t cookie = 0;
  FlowRemovedReason reason = FlowRemovedReason::kIdleTimeout;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
};

struct PortStatus {
  enum class Reason : std::uint8_t { kAdd, kDelete, kModify } reason = Reason::kModify;
  PortInfo port;
};

struct FlowStatsEntry {
  Match match;
  std::uint16_t priority = 0;
  std::uint64_t cookie = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  SimDuration age = 0;
  ActionList actions;
};

struct PortStatsEntry {
  std::uint16_t port_no = 0;
  std::uint64_t rx_packets = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_dropped = 0;
  std::uint64_t tx_dropped = 0;
};

struct TableStats {
  std::size_t active_count = 0;
  std::uint64_t lookup_count = 0;
  std::uint64_t matched_count = 0;
};

struct StatsReply {
  std::vector<FlowStatsEntry> flows;
  std::vector<PortStatsEntry> ports;
  std::optional<TableStats> table;
};

struct BarrierReply {};

struct ErrorMsg {
  std::string type;
  std::string detail;
};

// FlowModBatch is appended last: message_type_name() indexes a
// variant-ordered table, and existing indices must stay stable.
using Message =
    std::variant<Hello, EchoRequest, EchoReply, FeaturesRequest, FeaturesReply, FlowMod,
                 PacketOut, StatsRequest, BarrierRequest, PacketIn, FlowRemoved, PortStatus,
                 StatsReply, BarrierReply, ErrorMsg, FlowModBatch>;

std::string_view message_type_name(const Message& m);

}  // namespace escape::openflow
