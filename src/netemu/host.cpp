#include "netemu/host.hpp"

#include "net/headers.hpp"
#include "net/packet_pool.hpp"

namespace escape::netemu {

Host::Host(std::string name, EventScheduler& scheduler, net::MacAddr mac, net::Ipv4Addr ip)
    : Node(std::move(name), scheduler), mac_(mac), ip_(ip) {
  auto& registry = obs::MetricsRegistry::global();
  const obs::Labels labels{{"host", this->name()}};
  m_rx_packets_ = &registry.counter("escape_host_rx_packets_total", labels);
  m_rx_bytes_ = &registry.counter("escape_host_rx_bytes_total", labels);
  m_tx_packets_ = &registry.counter("escape_host_tx_packets_total", labels);
  m_latency_us_ = &registry.histogram("escape_host_latency_us", labels);
}

void Host::deliver(std::uint16_t, net::Packet&& packet) {
  // Protocol reflexes of a "standard tools" host: answer ARP requests
  // for our IP and reply to ICMP echo requests (so ping works through a
  // chain once a return path exists).
  if (auto eth = net::EthernetView::parse(packet.bytes())) {
    if (eth->ethertype == net::ethertype::kArp) {
      if (auto arp = net::ArpView::parse(eth->payload)) {
        if (arp->opcode == net::ArpView::kRequest && arp->target_ip == ip_) {
          net::Packet reply = net::PacketBuilder()
                                  .eth(mac_, arp->sender_mac, net::ethertype::kArp)
                                  .arp(net::ArpView::kReply, mac_, ip_, arp->sender_mac,
                                       arp->sender_ip)
                                  .build();
          send(std::move(reply));
          return;
        }
      }
    } else if (eth->ethertype == net::ethertype::kIpv4) {
      if (auto ip = net::Ipv4View::parse(eth->payload)) {
        if (ip->protocol == net::ipproto::kIcmp && ip->dst == ip_) {
          if (auto icmp = net::IcmpView::parse(ip->payload)) {
            if (icmp->type == net::IcmpView::kEchoRequest) {
              ++rx_packets_;
              rx_bytes_ += packet.size();
              m_rx_packets_->add();
              m_rx_bytes_->add(packet.size());
              ++echo_requests_;
              const std::vector<std::uint8_t> echo_payload(icmp->payload.begin(),
                                                           icmp->payload.end());
              net::Packet reply =
                  net::PacketBuilder()
                      .eth(mac_, eth->src)
                      .ipv4(ip_, ip->src, net::ipproto::kIcmp)
                      .icmp_echo(net::IcmpView::kEchoReply, icmp->identifier,
                                 icmp->sequence)
                      .payload(std::span<const std::uint8_t>(echo_payload))
                      .build();
              reply.set_seq(packet.seq());
              reply.set_timestamp(packet.timestamp());  // carries the ping's t0
              send(std::move(reply));
              return;
            }
          }
        }
      }
    }
  }

  ++rx_packets_;
  rx_bytes_ += packet.size();
  m_rx_packets_->add();
  m_rx_bytes_->add(packet.size());
  if (packet.seq() + 1 > max_seq_seen_) max_seq_seen_ = packet.seq() + 1;
  if (packet.has_timestamp()) {
    const SimTime now = scheduler().now();
    if (now >= packet.timestamp()) {
      const double us =
          static_cast<double>(now - packet.timestamp()) / timeunit::kMicrosecond;
      latency_us_.record(us);
      m_latency_us_->record(us);
    }
  }
  for (auto& fn : observers_) fn(packet);
  // The host is this packet's terminal: give the buffer back for reuse.
  net::default_packet_pool().recycle(std::move(packet));
}

void Host::send(net::Packet&& packet) {
  ++tx_packets_;
  m_tx_packets_->add();
  send_out(0, std::move(packet));
}

void Host::start_udp_flow(net::MacAddr dst_mac, net::Ipv4Addr dst_ip, std::uint16_t sport,
                          std::uint16_t dport, std::uint64_t count, std::uint64_t rate_pps,
                          std::size_t frame_size) {
  FlowState flow;
  flow.dst_mac = dst_mac;
  flow.dst_ip = dst_ip;
  flow.sport = sport;
  flow.dport = dport;
  flow.remaining = count;
  flow.gap = rate_pps ? timeunit::kSecond / rate_pps : 0;
  flow.frame_size = frame_size;
  flow_ = flow;
  send_next_flow_packet();
}

void Host::send_next_flow_packet() {
  if (!flow_ || flow_->remaining == 0) {
    flow_.reset();
    return;
  }
  if (!flow_->proto) {
    flow_->proto = net::make_udp_packet(mac_, flow_->dst_mac, ip_, flow_->dst_ip, flow_->sport,
                                        flow_->dport, flow_->frame_size);
  }
  net::Packet p = net::default_packet_pool().acquire_copy(*flow_->proto);
  p.set_seq(flow_->seq++);
  p.set_timestamp(scheduler().now());
  --flow_->remaining;
  send(std::move(p));
  if (flow_->remaining > 0) {
    scheduler().schedule(flow_->gap, [this] { send_next_flow_packet(); });
  } else {
    flow_.reset();
  }
}

void Host::send_ping(net::MacAddr dst_mac, net::Ipv4Addr dst_ip, std::uint16_t sequence) {
  net::Packet p = net::PacketBuilder()
                      .eth(mac_, dst_mac)
                      .ipv4(ip_, dst_ip, net::ipproto::kIcmp)
                      .icmp_echo(net::IcmpView::kEchoRequest, /*identifier=*/0x1234, sequence)
                      .payload(std::string_view("escape-ping"))
                      .build();
  p.set_seq(sequence);
  p.set_timestamp(scheduler().now());
  send(std::move(p));
}

void Host::reset_counters() {
  rx_packets_ = rx_bytes_ = tx_packets_ = max_seq_seen_ = 0;
  latency_us_.clear();
}

}  // namespace escape::netemu
