// Small string utilities used by the config parsers (Click language,
// JSON/XML, address formats).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace escape::strings {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits `s` on `sep`, dropping empty fields and trimming whitespace.
std::vector<std::string> split_trimmed(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b);

std::string to_lower(std::string_view s);
std::string to_upper(std::string_view s);

/// Parses a decimal unsigned integer; rejects trailing garbage.
std::optional<std::uint64_t> parse_u64(std::string_view s);

/// Parses a decimal signed integer; rejects trailing garbage.
std::optional<std::int64_t> parse_i64(std::string_view s);

/// Parses a floating point number; rejects trailing garbage.
std::optional<double> parse_double(std::string_view s);

/// Parses sizes/rates with optional suffix: "10k" -> 10'000,
/// "5M" -> 5'000'000, "2G" -> 2'000'000'000. Bare numbers pass through.
std::optional<std::uint64_t> parse_scaled_u64(std::string_view s);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string s, std::string_view from, std::string_view to);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace escape::strings
