// Elastic scaling: per-VNF flow-state codecs round-trip live state, the
// FlowManager hold buffer gives loss-free cut-over, the AutoScaler
// policy engine turns sampled handler load into bounded scale
// decisions, and the environment migrates running stateful chains
// make-before-break -- zero packet loss, preserved NAT mappings,
// cross-packet IDS detection across the hand-off, exact reservation
// accounting whatever fails mid-flight.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "click/config.hpp"
#include "click/elements.hpp"
#include "click/flow.hpp"
#include "escape/environment.hpp"
#include "net/builder.hpp"
#include "net/flow.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "orchestrator/autoscaler.hpp"

namespace escape {
namespace {

using click::FlowManager;
using click::FromDevice;
using click::Router;
using click::ToDevice;
using click::build_router;
using net::Ipv4Addr;
using net::MacAddr;
using net::Packet;

Packet udp_packet(std::uint16_t sport, std::uint16_t dport = 7777,
                  Ipv4Addr src = Ipv4Addr(10, 0, 0, 5), Ipv4Addr dst = Ipv4Addr(8, 8, 8, 8)) {
  return net::make_udp_packet(MacAddr::from_u64(1), MacAddr::from_u64(2), src, dst, sport,
                              dport, 98);
}

Packet tcp_packet(std::uint32_t seq, std::uint8_t flags, std::string_view payload) {
  net::TcpFields f;
  f.src_port = 1234;
  f.dst_port = 80;
  f.seq = seq;
  f.flags = flags;
  net::PacketBuilder b;
  b.eth(MacAddr::from_u64(1), MacAddr::from_u64(2))
      .ipv4(Ipv4Addr(10, 0, 0, 5), Ipv4Addr(8, 8, 8, 8), net::ipproto::kTcp)
      .tcp(f);
  if (!payload.empty()) b.payload(payload);
  return b.build();
}

struct Collector {
  std::vector<Packet> packets;

  void attach(Router& router, const std::string& todevice_name) {
    auto* to = dynamic_cast<ToDevice*>(router.element(todevice_name));
    ASSERT_NE(to, nullptr);
    to->set_sink([this](Packet&& p) { packets.push_back(std::move(p)); });
  }
};

constexpr const char* kNatConfig = R"(
  fin :: FromDevice(DEVNAME in0);
  fext :: FromDevice(DEVNAME in1);
  fm :: FlowManager;
  nat :: FlowNAT(EXTERNAL_IP 192.0.2.1, PORT_BASE 20000, PORT_COUNT 64);
  tout :: ToDevice(DEVNAME out0);
  tin :: ToDevice(DEVNAME out1);
  fin -> fm -> [0]nat;
  fext -> [1]nat;
  nat[0] -> tout;
  nat[1] -> tin;
)";

// --- flow-state hand-off (the migration payload) -----------------------------

TEST(FlowStateHandoff, NatMappingsSurviveExportImport) {
  EventScheduler sched_a;
  auto a = build_router(kNatConfig, sched_a);
  ASSERT_TRUE(a.ok()) << a.error().to_string();
  Collector out_a;
  out_a.attach(**a, "tout");
  auto* from_a = dynamic_cast<FromDevice*>((*a)->element("fin"));
  from_a->inject(udp_packet(5000));
  from_a->inject(udp_packet(5000));
  ASSERT_EQ(out_a.packets.size(), 2u);
  const auto key_a = net::extract_flow_key(out_a.packets[0], 0);
  ASSERT_TRUE(key_a.has_value());
  EXPECT_EQ(key_a->nw_src, Ipv4Addr(192, 0, 2, 1));

  auto* fm_a = dynamic_cast<FlowManager*>((*a)->element("fm"));
  const std::string blob = fm_a->export_state();
  EXPECT_NE(blob.find("flow "), std::string::npos);
  EXPECT_NE(blob.find("state nat "), std::string::npos);

  // A freshly started replica imports the state: the same flow keeps
  // its translated port, and the mapping is a restore, not a re-alloc.
  EventScheduler sched_b;
  auto b = build_router(kNatConfig, sched_b);
  ASSERT_TRUE(b.ok()) << b.error().to_string();
  Collector out_b;
  out_b.attach(**b, "tout");
  auto* fm_b = dynamic_cast<FlowManager*>((*b)->element("fm"));
  auto imported = fm_b->import_state(blob);
  ASSERT_TRUE(imported.ok()) << imported.error().to_string();
  EXPECT_EQ(*imported, 1u);

  auto* from_b = dynamic_cast<FromDevice*>((*b)->element("fin"));
  from_b->inject(udp_packet(5000));
  ASSERT_EQ(out_b.packets.size(), 1u);
  const auto key_b = net::extract_flow_key(out_b.packets[0], 0);
  ASSERT_TRUE(key_b.has_value());
  EXPECT_EQ(key_b->tp_src, key_a->tp_src) << "translated port changed across migration";
  EXPECT_EQ((*b)->call_read("nat.mappings").value(), "1");
}

TEST(FlowStateHandoff, IdsDetectsSignatureSplitAcrossMigration) {
  constexpr const char* kIds = R"(
    from :: FromDevice(DEVNAME in0);
    fm :: FlowManager;
    ra :: TcpReassembler;
    ids :: StreamIDS(PATTERNS "attack");
    out :: ToDevice(DEVNAME out0);
    from -> fm -> ra -> ids -> out;
  )";
  EventScheduler sched_a;
  auto a = build_router(kIds, sched_a);
  ASSERT_TRUE(a.ok()) << a.error().to_string();
  auto* from_a = dynamic_cast<FromDevice*>((*a)->element("from"));
  from_a->inject(tcp_packet(1000, /*SYN*/ 0x02, ""));
  from_a->inject(tcp_packet(1001, /*ACK*/ 0x10, "some att"));
  EXPECT_EQ((*a)->call_read("ids.alerts").value(), "0");

  // Migrate the half-scanned stream to a new instance mid-signature.
  const std::string blob =
      dynamic_cast<FlowManager*>((*a)->element("fm"))->export_state();
  EventScheduler sched_b;
  auto b = build_router(kIds, sched_b);
  ASSERT_TRUE(b.ok()) << b.error().to_string();
  auto st =
      dynamic_cast<FlowManager*>((*b)->element("fm"))->import_state(blob);
  ASSERT_TRUE(st.ok()) << st.error().to_string();

  auto* from_b = dynamic_cast<FromDevice*>((*b)->element("from"));
  from_b->inject(tcp_packet(1009, 0x10, "ack here"));
  EXPECT_EQ((*b)->call_read("ids.alerts").value(), "1")
      << "cross-packet signature lost across migration";
  EXPECT_EQ((*b)->call_read("ra.resets").ok()
                ? (*b)->call_read("ra.resets").value()
                : "0",
            "0");
}

TEST(FlowStateHandoff, LbStickinessSurvivesExportImport) {
  constexpr const char* kLb = R"(
    from :: FromDevice(DEVNAME in0);
    fm :: FlowManager;
    lb :: FlowLB(N 2, MODE rr);
    a :: ToDevice(DEVNAME out0);
    b :: ToDevice(DEVNAME out1);
    from -> fm -> lb;
    lb[0] -> a;
    lb[1] -> b;
  )";
  EventScheduler sched_a;
  auto r1 = build_router(kLb, sched_a);
  ASSERT_TRUE(r1.ok()) << r1.error().to_string();
  Collector a1, b1;
  a1.attach(**r1, "a");
  b1.attach(**r1, "b");
  auto* from1 = dynamic_cast<FromDevice*>((*r1)->element("from"));
  from1->inject(udp_packet(6000));
  from1->inject(udp_packet(6001));  // round-robin: lands on the other backend
  ASSERT_EQ(a1.packets.size(), 1u);
  ASSERT_EQ(b1.packets.size(), 1u);

  const std::string blob =
      dynamic_cast<FlowManager*>((*r1)->element("fm"))->export_state();
  EventScheduler sched_b;
  auto r2 = build_router(kLb, sched_b);
  ASSERT_TRUE(r2.ok()) << r2.error().to_string();
  Collector a2, b2;
  a2.attach(**r2, "a");
  b2.attach(**r2, "b");
  auto st =
      dynamic_cast<FlowManager*>((*r2)->element("fm"))->import_state(blob);
  ASSERT_TRUE(st.ok()) << st.error().to_string();

  auto* from2 = dynamic_cast<FromDevice*>((*r2)->element("from"));
  from2->inject(udp_packet(6000));
  from2->inject(udp_packet(6001));
  // Both flows stay pinned to their pre-migration backends: with fresh
  // round-robin state both would have landed on backend 0 first.
  EXPECT_EQ(a2.packets.size(), 1u);
  EXPECT_EQ(b2.packets.size(), 1u);
}

TEST(FlowStateHandoff, HoldBuffersThenFlushesInArrivalOrder) {
  constexpr const char* kFm = R"(
    from :: FromDevice(DEVNAME in0);
    fm :: FlowManager(HOLD true);
    out :: ToDevice(DEVNAME out0);
    from -> fm -> out;
  )";
  EventScheduler sched;
  auto router = build_router(kFm, sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  Collector sink;
  sink.attach(**router, "out");
  auto* from = dynamic_cast<FromDevice*>((*router)->element("from"));
  for (std::uint16_t i = 0; i < 5; ++i) from->inject(udp_packet(7000 + i));
  EXPECT_TRUE(sink.packets.empty());
  EXPECT_EQ((*router)->call_read("fm.held").value(), "5");

  // Releasing the hold drains FIFO through normal classification.
  ASSERT_TRUE((*router)->call_write("fm.hold", "0").ok());
  ASSERT_EQ(sink.packets.size(), 5u);
  for (std::uint16_t i = 0; i < 5; ++i) {
    const auto key = net::extract_flow_key(sink.packets[i], 0);
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(key->tp_src, 7000 + i);
  }
  EXPECT_EQ((*router)->call_read("fm.held").value(), "0");
  EXPECT_EQ((*router)->call_read("fm.flows").value(), "5");
}

// --- AutoScaler policy engine (synthetic hooks) ------------------------------

orchestrator::ScalingPolicy test_policy() {
  orchestrator::ScalingPolicy p;
  p.vnf = "nat";
  p.handler = "fm.lookups";
  p.rate = true;
  p.scale_out_above = 1000;  // per-instance events/s
  p.scale_in_below = 100;
  p.sustain_ticks = 2;
  p.cooldown = 100 * timeunit::kMillisecond;
  p.min_instances = 1;
  p.max_instances = 4;
  return p;
}

struct FakeChain {
  double counter = 0;
  double per_tick = 0;  // counter increment per tick
  std::size_t instances = 1;
  bool eligible = true;
  std::vector<std::size_t> targets;  // every scale_to request
};

orchestrator::AutoScaler::Hooks fake_hooks(FakeChain& chain) {
  orchestrator::AutoScaler::Hooks hooks;
  hooks.instances = [&chain](std::uint32_t) { return chain.instances; };
  hooks.eligible = [&chain](std::uint32_t) { return chain.eligible; };
  hooks.sample = [&chain](std::uint32_t, const orchestrator::ScalingPolicy&,
                          std::function<void(Result<double>)> cb) {
    chain.counter += chain.per_tick;
    cb(chain.counter);
  };
  hooks.scale_to = [&chain](std::uint32_t, const orchestrator::ScalingPolicy&,
                            std::size_t target, std::function<void(Status)> cb) {
    chain.targets.push_back(target);
    chain.instances = target;
    cb(ok_status());
  };
  return hooks;
}

TEST(AutoScalerPolicy, SustainedHighRateScalesOutStepwiseWithCooldown) {
  EventScheduler sched;
  orchestrator::AutoScalerOptions opts;
  opts.tick = 10 * timeunit::kMillisecond;
  FakeChain chain;
  chain.per_tick = 50;  // 5000 events/s >> 1000 threshold
  orchestrator::AutoScaler scaler(sched, opts, fake_hooks(chain));
  scaler.watch_chain(7, test_policy());
  scaler.start();

  // tick 1 = rate baseline; ticks 2-3 sustain; decision on tick 3.
  sched.run_for(35 * timeunit::kMillisecond);
  ASSERT_EQ(chain.targets.size(), 1u);
  EXPECT_EQ(chain.targets[0], 2u);

  // Load still high, but the cooldown holds the next step back.
  sched.run_for(50 * timeunit::kMillisecond);
  EXPECT_EQ(chain.targets.size(), 1u);
  sched.run_for(300 * timeunit::kMillisecond);
  ASSERT_GE(chain.targets.size(), 2u);
  EXPECT_EQ(chain.targets[1], 3u);
  EXPECT_GE(scaler.scale_out_decisions(), 2u);
}

TEST(AutoScalerPolicy, IdleRateScalesInAndStopsAtMinInstances) {
  EventScheduler sched;
  orchestrator::AutoScalerOptions opts;
  opts.tick = 10 * timeunit::kMillisecond;
  FakeChain chain;
  chain.per_tick = 0;  // flat counter: 0 events/s
  chain.instances = 3;
  orchestrator::AutoScaler scaler(sched, opts, fake_hooks(chain));
  scaler.watch_chain(7, test_policy());
  scaler.start();

  sched.run_for(800 * timeunit::kMillisecond);
  ASSERT_GE(chain.targets.size(), 2u);
  EXPECT_EQ(chain.targets[0], 2u);
  EXPECT_EQ(chain.targets[1], 1u);
  EXPECT_EQ(chain.instances, 1u);  // never below min_instances
  EXPECT_EQ(scaler.scale_in_decisions(), 2u);
}

TEST(AutoScalerPolicy, IneligibleTicksResetHysteresisAndBaseline) {
  EventScheduler sched;
  orchestrator::AutoScalerOptions opts;
  opts.tick = 10 * timeunit::kMillisecond;
  FakeChain chain;
  chain.per_tick = 50;
  orchestrator::AutoScaler scaler(sched, opts, fake_hooks(chain));
  scaler.watch_chain(7, test_policy());
  scaler.start();

  // One high sample, then the chain degrades: the streak must restart
  // from scratch (baseline + sustain) once it is healthy again.
  sched.run_for(25 * timeunit::kMillisecond);  // baseline + 1 high tick
  ASSERT_TRUE(chain.targets.empty());
  chain.eligible = false;
  sched.run_for(30 * timeunit::kMillisecond);
  chain.eligible = true;
  sched.run_for(15 * timeunit::kMillisecond);  // baseline + 1 high: not yet
  EXPECT_TRUE(chain.targets.empty());
  sched.run_for(10 * timeunit::kMillisecond);  // second sustained high tick
  EXPECT_EQ(chain.targets.size(), 1u);
}

TEST(AutoScalerPolicy, PolicyJsonParsesDefaultsAndBounds) {
  auto opts = orchestrator::autoscale_options_from_json(R"({
    "tick_ms": 20, "drain_ms": 2,
    "policies": [{
      "vnf": "nat", "handler": "fm.lookups", "mode": "rate",
      "scale_out_above": 4000, "scale_in_below": 500,
      "sustain_ticks": 3, "cooldown_ms": 200,
      "min_instances": 1, "max_instances": 4
    }]
  })");
  ASSERT_TRUE(opts.ok()) << opts.error().to_string();
  EXPECT_EQ(opts->tick, 20 * timeunit::kMillisecond);
  EXPECT_EQ(opts->drain, 2 * timeunit::kMillisecond);
  ASSERT_EQ(opts->policies.size(), 1u);
  EXPECT_EQ(opts->policies[0].vnf, "nat");
  EXPECT_TRUE(opts->policies[0].rate);
  EXPECT_EQ(opts->policies[0].max_instances, 4u);
}

TEST(AutoScalerPolicy, PolicyJsonRejectsBadDocuments) {
  auto bad = [](const char* text) {
    auto r = orchestrator::autoscale_options_from_json(text);
    EXPECT_FALSE(r.ok()) << text;
    if (!r.ok()) EXPECT_EQ(r.error().code, "autoscale.bad-policy");
  };
  bad(R"({"policies": []})");
  bad(R"({"policies": [{"handler": "fm.lookups", "scale_out_above": 10, "scale_in_below": 1}]})");
  bad(R"({"policies": [{"vnf": "nat", "handler": "nodot", "scale_out_above": 10, "scale_in_below": 1}]})");
  bad(R"({"policies": [{"vnf": "nat", "scale_out_above": 1, "scale_in_below": 10}]})");
  bad(R"({"policies": [{"vnf": "nat", "scale_out_above": 10, "scale_in_below": 1, "mode": "sideways"}]})");
  bad(R"({"policies": [{"vnf": "nat", "scale_out_above": 10, "scale_in_below": 1, "min_instances": 3, "max_instances": 2}]})");
}

// --- live migration through the environment ----------------------------------

netemu::LinkConfig fast_link() {
  netemu::LinkConfig cfg;
  cfg.bandwidth_bps = 1'000'000'000;
  cfg.delay = 50 * timeunit::kMicrosecond;
  return cfg;
}

void build_scaling_topology(Environment& env, double container_cpu = 2.0) {
  auto& net = env.network();
  net.add_host("sap1");
  net.add_host("sap2");
  net.add_switch("s1");
  net.add_switch("s2");
  net.add_container("c1", container_cpu, 8);
  net.add_container("c2", container_cpu, 8);
  ASSERT_TRUE(net.add_link("sap1", 0, "s1", 1, fast_link()).ok());
  ASSERT_TRUE(net.add_link("sap2", 0, "s2", 1, fast_link()).ok());
  ASSERT_TRUE(net.add_link("s1", 2, "s2", 2, fast_link()).ok());
  ASSERT_TRUE(net.add_link("c1", 0, "s1", 3, fast_link()).ok());
  ASSERT_TRUE(net.add_link("c2", 0, "s2", 3, fast_link()).ok());
}

sg::ServiceGraph nat_graph() {
  sg::ServiceGraph g("elastic");
  g.add_sap("sap1").add_sap("sap2");
  g.add_vnf("nat", "flow_nat",
            {{"capacity", "1024"}, {"timeout_ms", "30000"}, {"port_count", "64"}}, 0.15);
  g.add_link("sap1", "nat").add_link("nat", "sap2");
  return g;
}

openflow::Match dst_match(netemu::Host* dst) {
  // The NAT rewrites nw_src mid-chain; steer on destination only.
  openflow::Match match;
  match.dl_type(net::ethertype::kIpv4).nw_dst(dst->ip());
  return match;
}

double total_container_cpu_used(const Environment& env) {
  double used = 0;
  for (const auto& node : env.resource_view()->nodes()) {
    if (node.kind == sg::ResourceKind::kContainer) used += node.cpu_used;
  }
  return used;
}

TEST(ScalingMigration, ScaleOutIsLossFreeAndKeepsNatMappings) {
  Environment env;
  build_scaling_topology(env);
  ASSERT_TRUE(env.start().ok());
  auto* sap1 = env.host("sap1");
  auto* sap2 = env.host("sap2");
  auto chain = env.deploy(nat_graph(), dst_match(sap2));
  ASSERT_TRUE(chain.ok()) << chain.error().to_string();

  // The receiver records every translated source port it sees: the NAT
  // mapping must not change when the flow migrates to a replica.
  std::set<std::uint16_t> translated;
  sap2->on_receive([&translated](const net::Packet& p) {
    if (auto key = net::extract_flow_key(p, 0); key && key->nw_proto == net::ipproto::kUdp) {
      translated.insert(key->tp_src);
    }
  });

  // 600 packets over 300 ms of virtual time; migrate mid-flow.
  sap1->start_udp_flow(sap2->mac(), sap2->ip(), 5000, 7777, 600, 2000);
  env.run_for(50 * timeunit::kMillisecond);
  ASSERT_TRUE(env.scale_chain(*chain, 2).ok());
  EXPECT_EQ(*env.chain_instances(*chain), 2u);
  EXPECT_EQ(*env.chain_state(*chain), ChainState::kActive);
  // New generation: splitter + 2 replicas carried in the live record.
  EXPECT_EQ(env.deployment(*chain)->record.vnfs.size(), 3u);

  env.run_for(seconds(1));
  EXPECT_EQ(sap2->rx_packets(), 600u) << "packets lost during scale-out";
  EXPECT_EQ(sap2->max_seq_seen(), 600u) << "sequence gap: drops during migration";
  EXPECT_EQ(translated.size(), 1u) << "NAT mapping changed across migration";
}

TEST(ScalingMigration, ScaleInMergesStateAndReleasesEverything) {
  Environment env;
  build_scaling_topology(env);
  ASSERT_TRUE(env.start().ok());
  auto* sap1 = env.host("sap1");
  auto* sap2 = env.host("sap2");
  auto chain = env.deploy(nat_graph(), dst_match(sap2));
  ASSERT_TRUE(chain.ok()) << chain.error().to_string();
  const double baseline = total_container_cpu_used(env);

  sap1->start_udp_flow(sap2->mac(), sap2->ip(), 5000, 7777, 800, 2000);
  env.run_for(50 * timeunit::kMillisecond);
  ASSERT_TRUE(env.scale_chain(*chain, 2).ok());
  env.run_for(100 * timeunit::kMillisecond);
  ASSERT_TRUE(env.scale_chain(*chain, 1).ok());
  EXPECT_EQ(*env.chain_instances(*chain), 1u);
  env.run_for(seconds(1));
  EXPECT_EQ(sap2->rx_packets(), 800u) << "packets lost during scale-in";
  EXPECT_EQ(sap2->max_seq_seen(), 800u);

  // Back at one instance the footprint equals the original deployment;
  // undeploy releases the rest (the ledger and the graph agree).
  EXPECT_NEAR(total_container_cpu_used(env), baseline, 1e-9);
  ASSERT_TRUE(env.undeploy(*chain).ok());
  EXPECT_NEAR(total_container_cpu_used(env), 0.0, 1e-9);
}

TEST(ScalingMigration, FailedScaleOutDoesNotLeakReservations) {
  Environment env;
  build_scaling_topology(env, /*container_cpu=*/0.3);
  ASSERT_TRUE(env.start().ok());
  auto* sap2 = env.host("sap2");
  auto chain = env.deploy(nat_graph(), dst_match(sap2));
  ASSERT_TRUE(chain.ok()) << chain.error().to_string();
  const double baseline = total_container_cpu_used(env);

  // 4 replicas + splitter need 0.7 CPU; only 0.45 is free. The partial
  // reservations taken before the shortfall must all come back.
  auto s = env.scale_chain(*chain, 4);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, "autoscale.no-capacity");
  EXPECT_EQ(*env.chain_state(*chain), ChainState::kActive);
  EXPECT_NEAR(total_container_cpu_used(env), baseline, 1e-9);

  // A target that fits still works afterwards -- accounting intact.
  ASSERT_TRUE(env.scale_chain(*chain, 2).ok());
  EXPECT_EQ(*env.chain_instances(*chain), 2u);
  ASSERT_TRUE(env.undeploy(*chain).ok());
  EXPECT_NEAR(total_container_cpu_used(env), 0.0, 1e-9);
}

TEST(ScalingMigration, BringUpRpcFailureUnwindsAndChainStaysActive) {
  Environment env;
  build_scaling_topology(env);
  ASSERT_TRUE(env.start().ok());
  auto* sap1 = env.host("sap1");
  auto* sap2 = env.host("sap2");
  auto chain = env.deploy(nat_graph(), dst_match(sap2));
  ASSERT_TRUE(chain.ok()) << chain.error().to_string();
  const double baseline = total_container_cpu_used(env);

  // Crash the management agent of the container that hosts the chain
  // (and would host the new generation): every bring-up RPC fails fast
  // on the closed session, after CPU and veths were already committed.
  const std::string host = env.deployment(*chain)->record.vnfs[0].container;
  ASSERT_TRUE(env.crash_agent(host).ok());
  auto s = env.scale_chain(*chain, 2);
  ASSERT_FALSE(s.ok());
  ASSERT_TRUE(env.respawn_agent(host).ok());

  // The old generation never stopped serving and nothing leaked.
  EXPECT_EQ(*env.chain_state(*chain), ChainState::kActive);
  EXPECT_EQ(*env.chain_instances(*chain), 1u);
  EXPECT_NEAR(total_container_cpu_used(env), baseline, 1e-9);
  sap1->start_udp_flow(sap2->mac(), sap2->ip(), 5000, 7777, 50, 1000);
  env.run_for(seconds(1));
  EXPECT_EQ(sap2->rx_packets(), 50u)
      << "tx=" << sap1->tx_packets() << " max_seq=" << sap2->max_seq_seen();
}

TEST(ScalingMigration, ContainerKillMidMigrationConvergesViaRecovery) {
  Environment env;
  build_scaling_topology(env);
  ASSERT_TRUE(env.start().ok());
  ASSERT_TRUE(env.enable_self_healing().ok());
  auto* sap2 = env.host("sap2");
  auto chain = env.deploy(nat_graph(), dst_match(sap2));
  ASSERT_TRUE(chain.ok()) << chain.error().to_string();
  const std::string host = env.deployment(*chain)->record.vnfs[0].container;

  // Start the migration, then power-fail the hosting container while
  // the bring-up RPCs are in flight. The fault plane owns the chain
  // from here: the migration must abort exactly once and recovery must
  // re-embed the ORIGINAL single-instance chain on the survivor.
  Status result = ok_status();
  bool finished = false;
  env.scale_chain_async(*chain, 2, [&](Status s) {
    result = s;
    finished = true;
  });
  env.run_for(200 * timeunit::kMicrosecond);  // mid-bring-up
  ASSERT_TRUE(env.kill_container(host).ok());
  env.run_for(seconds(2));

  ASSERT_TRUE(finished);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "autoscale.aborted");
  EXPECT_EQ(*env.chain_state(*chain), ChainState::kActive);
  EXPECT_EQ(*env.chain_instances(*chain), 1u);
  EXPECT_NE(env.deployment(*chain)->record.vnfs[0].container, host);

  // Reservation accounting survived the crossed fault/migration paths:
  // exactly the recovered instance's CPU is booked, nothing double
  // released, nothing leaked.
  ASSERT_TRUE(env.undeploy(*chain).ok());
  EXPECT_NEAR(total_container_cpu_used(env), 0.0, 1e-9);
}

TEST(ScalingMigration, AutoscalerClosesTheLoopOutAndBackIn) {
  Environment env;
  build_scaling_topology(env);
  ASSERT_TRUE(env.start().ok());
  auto* sap1 = env.host("sap1");
  auto* sap2 = env.host("sap2");
  auto chain = env.deploy(nat_graph(), dst_match(sap2));
  ASSERT_TRUE(chain.ok()) << chain.error().to_string();

  auto opts = orchestrator::autoscale_options_from_json(R"({
    "tick_ms": 20, "drain_ms": 2,
    "policies": [{
      "vnf": "nat", "handler": "fm.lookups", "mode": "rate",
      "scale_out_above": 800, "scale_in_below": 100,
      "sustain_ticks": 2, "cooldown_ms": 100,
      "min_instances": 1, "max_instances": 3
    }]
  })");
  ASSERT_TRUE(opts.ok()) << opts.error().to_string();
  ASSERT_TRUE(env.enable_autoscaling(*opts).ok());
  ASSERT_TRUE(env.autoscaler()->watching(*chain));

  // A 2000 pps burst: 2000 lookups/s per instance >> 800 threshold.
  sap1->start_udp_flow(sap2->mac(), sap2->ip(), 5000, 7777, 1200, 2000);
  env.run_for(600 * timeunit::kMillisecond);
  EXPECT_GE(env.autoscaler()->scale_out_decisions(), 1u);
  EXPECT_GE(*env.chain_instances(*chain), 2u);
  EXPECT_EQ(sap2->rx_packets(), 1200u) << "autoscaled migration dropped packets";

  // Silence: the rate collapses below the floor and the chain drains
  // back to one instance.
  env.run_for(seconds(2));
  EXPECT_GE(env.autoscaler()->scale_in_decisions(), 1u);
  EXPECT_EQ(*env.chain_instances(*chain), 1u);
  EXPECT_EQ(*env.chain_state(*chain), ChainState::kActive);
}

// --- determinism across thread counts ----------------------------------------

struct ScaleFingerprint {
  std::uint64_t digest = 0;
  std::uint64_t executed = 0;
  std::uint64_t rx = 0;
  std::size_t instances = 0;
  int state = -1;

  bool operator==(const ScaleFingerprint&) const = default;
};

ScaleFingerprint run_scaled_chain(std::size_t threads) {
  obs::MetricsRegistry::global().reset_values();
  obs::clear_all_tracers();
  EnvironmentOptions opts;
  opts.threads = threads;
  opts.shard_by = netemu::ShardBy::kSwitch;
  Environment env{opts};
  build_scaling_topology(env);
  EXPECT_TRUE(env.start().ok());
  auto* sap1 = env.host("sap1");
  auto* sap2 = env.host("sap2");
  auto chain = env.deploy(nat_graph(), dst_match(sap2));
  EXPECT_TRUE(chain.ok()) << (chain.ok() ? "" : chain.error().to_string());

  sap1->start_udp_flow(sap2->mac(), sap2->ip(), 5000, 7777, 600, 2000);
  env.run_for(50 * timeunit::kMillisecond);
  EXPECT_TRUE(env.scale_chain(*chain, 2).ok());
  env.run_for(100 * timeunit::kMillisecond);
  EXPECT_TRUE(env.scale_chain(*chain, 1).ok());
  env.run_for(seconds(1));

  ScaleFingerprint f;
  f.digest = env.scheduler().order_digest();
  f.executed = env.scheduler().executed_events();
  f.rx = sap2->rx_packets();
  f.instances = *env.chain_instances(*chain);
  f.state = static_cast<int>(*env.chain_state(*chain));
  return f;
}

TEST(ScalingMigration, MigrationIsBitIdenticalAcrossThreadCounts) {
  const ScaleFingerprint seq = run_scaled_chain(1);
  const ScaleFingerprint par = run_scaled_chain(4);
  EXPECT_EQ(seq.rx, 600u);
  EXPECT_EQ(seq.instances, 1u);
  EXPECT_EQ(seq, par);
}

}  // namespace
}  // namespace escape
