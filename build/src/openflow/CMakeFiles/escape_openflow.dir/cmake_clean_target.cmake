file(REMOVE_RECURSE
  "libescape_openflow.a"
)
