// The flow-aware middlebox substrate: FlowStateTable hashing/eviction,
// FlowManager classification and context publication, the stateful VNFs
// built on it (FlowNAT, FlowLB, TcpReassembler, StreamIDS), the per-flow
// classifier verdict cache, the OpenFlow miss memo, and the
// bit-identical-across-thread-counts guarantee for a stateful chain.
#include <gtest/gtest.h>

#include <sstream>

#include "click/config.hpp"
#include "click/elements.hpp"
#include "click/flow.hpp"
#include "escape/environment.hpp"
#include "net/builder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "openflow/switch.hpp"
#include "util/strings.hpp"

namespace escape {
namespace {

using click::FlowBlockHeader;
using click::FlowManager;
using click::FlowStateTable;
using click::FlowTuple;
using click::FromDevice;
using click::Router;
using click::ToDevice;
using click::build_router;
using net::Ipv4Addr;
using net::MacAddr;
using net::Packet;
using net::PacketBatch;

FlowTuple tuple(std::uint32_t n, std::uint16_t sport = 1000, std::uint16_t dport = 2000) {
  FlowTuple t;
  t.src_ip = Ipv4Addr(10, 0, 0, 1).value() + n;
  t.dst_ip = Ipv4Addr(10, 0, 1, 1).value();
  t.src_port = sport;
  t.dst_port = dport;
  t.proto = net::ipproto::kUdp;
  return t;
}

Packet udp_packet(std::uint16_t sport, std::uint16_t dport = 7777,
                  Ipv4Addr src = Ipv4Addr(10, 0, 0, 5), Ipv4Addr dst = Ipv4Addr(8, 8, 8, 8)) {
  return net::make_udp_packet(MacAddr::from_u64(1), MacAddr::from_u64(2), src, dst, sport,
                              dport, 98);
}

Packet tcp_packet(std::uint32_t seq, std::uint8_t flags, std::string_view payload,
                  std::uint16_t sport = 1234, std::uint16_t dport = 80) {
  net::TcpFields f;
  f.src_port = sport;
  f.dst_port = dport;
  f.seq = seq;
  f.flags = flags;
  net::PacketBuilder b;
  b.eth(MacAddr::from_u64(1), MacAddr::from_u64(2))
      .ipv4(Ipv4Addr(10, 0, 0, 5), Ipv4Addr(8, 8, 8, 8), net::ipproto::kTcp)
      .tcp(f);
  if (!payload.empty()) b.payload(payload);
  return b.build();
}

/// Collects packets for assertions: a ToDevice with an inspecting sink.
struct Collector {
  std::vector<Packet> packets;

  void attach(Router& router, const std::string& todevice_name) {
    auto* to = dynamic_cast<ToDevice*>(router.element(todevice_name));
    ASSERT_NE(to, nullptr);
    to->set_sink([this](Packet&& p) { packets.push_back(std::move(p)); });
  }
};

// --- FlowStateTable ---------------------------------------------------------

TEST(FlowStateTable, CollidingKeysSurviveProbingAndBackwardShiftDeletion) {
  FlowStateTable table(8, 10000);
  constexpr std::uint32_t kFlows = 500;
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    auto res = table.find_or_create(tuple(i), 0);
    ASSERT_NE(res.block, nullptr);
    EXPECT_TRUE(res.created);
  }
  EXPECT_EQ(table.size(), kFlows);
  EXPECT_EQ(table.created_total(), kFlows);
  // 500 keys in a power-of-two table guarantee hash-slot collisions; the
  // robin-hood probe telemetry must have seen displacement.
  EXPECT_GT(table.max_probe(), 0u);

  // Every key still resolves to the block holding its own tuple.
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    std::uint8_t* block = table.find(tuple(i));
    ASSERT_NE(block, nullptr) << "flow " << i << " lost";
    EXPECT_EQ(table.header_of(block)->tuple, tuple(i));
  }

  // Erase every other entry: backward-shift deletion must not strand any
  // survivor behind a hole in its probe chain.
  for (std::uint32_t i = 0; i < kFlows; i += 2) EXPECT_TRUE(table.erase(tuple(i)));
  EXPECT_EQ(table.size(), kFlows / 2);
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    std::uint8_t* block = table.find(tuple(i));
    if (i % 2 == 0) {
      EXPECT_EQ(block, nullptr);
    } else {
      ASSERT_NE(block, nullptr) << "flow " << i << " lost after deletions";
      EXPECT_EQ(table.header_of(block)->tuple, tuple(i));
    }
  }
  // Deleted keys can be re-created.
  auto res = table.find_or_create(tuple(0), 7);
  ASSERT_NE(res.block, nullptr);
  EXPECT_TRUE(res.created);
}

TEST(FlowStateTable, ScratchReservationLayoutAndZeroInit) {
  FlowStateTable table(8, 16);
  std::size_t a = table.reserve_scratch(sizeof(std::uint64_t), alignof(std::uint64_t));
  std::size_t b = table.reserve_scratch(3, 1);
  std::size_t c = table.reserve_scratch(sizeof(std::uint32_t), alignof(std::uint32_t));
  EXPECT_GE(a, sizeof(FlowBlockHeader));
  EXPECT_EQ(a % alignof(std::uint64_t), 0u);
  EXPECT_GE(b, a + sizeof(std::uint64_t));
  EXPECT_EQ(c % alignof(std::uint32_t), 0u);
  EXPECT_GE(c, b + 3);

  auto res = table.find_or_create(tuple(1), 0);
  ASSERT_NE(res.block, nullptr);
  EXPECT_GE(table.block_size(), c + sizeof(std::uint32_t));
  for (std::size_t off = a; off < table.block_size(); ++off) {
    ASSERT_EQ(res.block[off], 0u) << "scratch byte " << off << " not zeroed";
  }
  // Scratch persists across lookups of the same flow.
  res.block[a] = 0xAB;
  auto again = table.find_or_create(tuple(1), 5);
  EXPECT_FALSE(again.created);
  EXPECT_EQ(again.block, res.block);
  EXPECT_EQ(again.block[a], 0xAB);
}

TEST(FlowStateTable, CapacityCapAndEvictListeners) {
  FlowStateTable table(8, 2);
  std::vector<FlowTuple> evicted;
  table.add_evict_listener(
      [&](const FlowBlockHeader& hdr, std::uint8_t*) { evicted.push_back(hdr.tuple); });

  ASSERT_NE(table.find_or_create(tuple(1), 0).block, nullptr);
  ASSERT_NE(table.find_or_create(tuple(2), 0).block, nullptr);
  auto full = table.find_or_create(tuple(3), 0);
  EXPECT_EQ(full.block, nullptr);
  EXPECT_FALSE(full.created);
  EXPECT_EQ(table.created_total(), 2u);

  EXPECT_TRUE(table.erase(tuple(1)));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], tuple(1));
  // Capacity freed: the blocked flow fits now.
  EXPECT_NE(table.find_or_create(tuple(3), 0).block, nullptr);

  table.clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(evicted.size(), 3u);
  EXPECT_EQ(table.evicted_total(), 3u);
  EXPECT_EQ(table.evicted_idle(), 0u);
}

TEST(FlowStateTable, SweepEvictsOnlyIdleFlows) {
  FlowStateTable table(8, 100);
  ASSERT_NE(table.find_or_create(tuple(1), 0).block, nullptr);
  auto b = table.find_or_create(tuple(2), 0);
  ASSERT_NE(b.block, nullptr);
  table.header_of(b.block)->last_seen = milliseconds(50);

  EXPECT_EQ(table.sweep(milliseconds(100), milliseconds(60)), 1u);
  EXPECT_EQ(table.find(tuple(1)), nullptr);   // idle 100 ms >= 60 ms
  EXPECT_NE(table.find(tuple(2)), nullptr);   // idle 50 ms
  EXPECT_EQ(table.evicted_idle(), 1u);

  EXPECT_EQ(table.sweep(milliseconds(200), milliseconds(60)), 1u);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.evicted_idle(), 2u);
}

// --- FlowManager element ----------------------------------------------------

TEST(FlowManagerElement, ClassifiesFlowsAndCounts) {
  EventScheduler sched;
  auto router = build_router(R"(
    from :: FromDevice(DEVNAME in0);
    fm :: FlowManager(CAPACITY 100, TIMEOUT_MS 1000);
    out :: ToDevice(DEVNAME out0);
    from -> fm -> out;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  Collector sink;
  sink.attach(**router, "out");
  auto* from = dynamic_cast<FromDevice*>((*router)->element("from"));

  for (int i = 0; i < 3; ++i) from->inject(udp_packet(1111));
  for (int i = 0; i < 2; ++i) from->inject(udp_packet(2222));
  // Non-IPv4 passes through unclassified.
  net::PacketBuilder arp;
  arp.eth(MacAddr::from_u64(1), MacAddr::from_u64(2), net::ethertype::kArp);
  from->inject(arp.build());

  EXPECT_EQ(sink.packets.size(), 6u);
  EXPECT_EQ((*router)->call_read("fm.flows").value(), "2");
  EXPECT_EQ((*router)->call_read("fm.lookups").value(), "5");
  EXPECT_EQ((*router)->call_read("fm.misses").value(), "2");
  EXPECT_EQ((*router)->call_read("fm.hits").value(), "3");
  EXPECT_EQ((*router)->call_read("fm.non_ip").value(), "1");
  EXPECT_DOUBLE_EQ(std::stod((*router)->call_read("fm.hit_rate").value()), 0.6);
  EXPECT_GT(std::stoull((*router)->call_read("fm.memory_bytes").value()), 0u);
}

TEST(FlowManagerElement, BatchRunsMatchScalarCounters) {
  EventScheduler sched;
  auto router = build_router(R"(
    from :: FromDevice(DEVNAME in0);
    fm :: FlowManager;
    out :: ToDevice(DEVNAME out0);
    from -> fm -> out;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  Collector sink;
  sink.attach(**router, "out");
  auto* from = dynamic_cast<FromDevice*>((*router)->element("from"));

  // Two same-flow runs split by one packet of another flow: 3 lookups
  // into the table, but per-packet counters identical to the scalar path.
  PacketBatch batch(5);
  batch.push_back(udp_packet(1111));
  batch.push_back(udp_packet(1111));
  batch.push_back(udp_packet(2222));
  batch.push_back(udp_packet(1111));
  batch.push_back(udp_packet(1111));
  from->inject_batch(std::move(batch));

  EXPECT_EQ(sink.packets.size(), 5u);
  EXPECT_EQ((*router)->call_read("fm.flows").value(), "2");
  EXPECT_EQ((*router)->call_read("fm.lookups").value(), "5");
  EXPECT_EQ((*router)->call_read("fm.misses").value(), "2");
  EXPECT_EQ((*router)->call_read("fm.hits").value(), "3");
  // Arrival order is preserved across run splitting.
  for (std::size_t i = 0; i < 5; ++i) {
    auto t = FlowTuple::from_packet(sink.packets[i]);
    ASSERT_TRUE(t);
    EXPECT_EQ(t->src_port, i == 2 ? 2222 : 1111);
  }
}

TEST(FlowManagerElement, IdleTimeoutEvictsUnderVirtualTime) {
  EventScheduler sched;
  auto router = build_router(R"(
    from :: FromDevice(DEVNAME in0);
    fm :: FlowManager(TIMEOUT_MS 50, SWEEP_MS 10);
    out :: ToDevice(DEVNAME out0);
    from -> fm -> out;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  auto* from = dynamic_cast<FromDevice*>((*router)->element("from"));

  from->inject(udp_packet(1111));
  from->inject(udp_packet(2222));
  EXPECT_EQ((*router)->call_read("fm.flows").value(), "2");

  sched.run_until(milliseconds(30));
  from->inject(udp_packet(1111));  // refresh flow A at t=30ms

  // At the t=50ms sweep flow B is 50 ms idle and goes; A is 20 ms idle.
  sched.run_until(milliseconds(70));
  EXPECT_EQ((*router)->call_read("fm.flows").value(), "1");
  EXPECT_EQ((*router)->call_read("fm.evicted_idle").value(), "1");

  // By t=80ms flow A has been idle 50 ms too.
  sched.run_until(milliseconds(140));
  EXPECT_EQ((*router)->call_read("fm.flows").value(), "0");
  EXPECT_EQ((*router)->call_read("fm.evicted_idle").value(), "2");
}

TEST(FlowManagerElement, FullTableOverflowsToPortOne) {
  EventScheduler sched;
  auto router = build_router(R"(
    from :: FromDevice(DEVNAME in0);
    fm :: FlowManager(CAPACITY 2, TIMEOUT_MS 1000);
    out :: ToDevice(DEVNAME out0);
    ovf :: ToDevice(DEVNAME ovf0);
    from -> fm -> out;
    fm[1] -> ovf;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  Collector sink, overflow;
  sink.attach(**router, "out");
  overflow.attach(**router, "ovf");
  auto* from = dynamic_cast<FromDevice*>((*router)->element("from"));

  from->inject(udp_packet(1111));
  from->inject(udp_packet(2222));
  from->inject(udp_packet(3333));  // table full: overflow path
  from->inject(udp_packet(1111));  // established flows keep flowing

  EXPECT_EQ(sink.packets.size(), 3u);
  ASSERT_EQ(overflow.packets.size(), 1u);
  auto t = FlowTuple::from_packet(overflow.packets[0]);
  ASSERT_TRUE(t);
  EXPECT_EQ(t->src_port, 3333);
  EXPECT_EQ((*router)->call_read("fm.full_drops").value(), "1");
}

// --- FlowNAT ----------------------------------------------------------------

constexpr const char* kNatConfig = R"(
  fin :: FromDevice(DEVNAME in0);
  fext :: FromDevice(DEVNAME in1);
  fm :: FlowManager(TIMEOUT_MS 50, SWEEP_MS 10);
  nat :: FlowNAT(EXTERNAL_IP 192.0.2.1, PORT_BASE 20000, PORT_COUNT 2);
  tout :: ToDevice(DEVNAME out0);
  tin :: ToDevice(DEVNAME out1);
  fin -> fm -> [0]nat;
  fext -> [1]nat;
  nat[0] -> tout;
  nat[1] -> tin;
)";

TEST(FlowNatElement, TranslatesBidirectionally) {
  EventScheduler sched;
  auto router = build_router(kNatConfig, sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  Collector out_ext, out_int;
  out_ext.attach(**router, "tout");
  out_int.attach(**router, "tin");
  auto* fin = dynamic_cast<FromDevice*>((*router)->element("fin"));
  auto* fext = dynamic_cast<FromDevice*>((*router)->element("fext"));

  // Outbound: source rewritten to the external ip and an allocated port.
  fin->inject(udp_packet(1234, 80, Ipv4Addr(10, 0, 0, 5), Ipv4Addr(8, 8, 8, 8)));
  ASSERT_EQ(out_ext.packets.size(), 1u);
  auto t = FlowTuple::from_packet(out_ext.packets[0]);
  ASSERT_TRUE(t);
  EXPECT_EQ(t->src_ip, Ipv4Addr(192, 0, 2, 1).value());
  EXPECT_EQ(t->src_port, 20000);
  EXPECT_EQ(t->dst_port, 80);
  EXPECT_EQ((*router)->call_read("nat.mappings").value(), "1");
  EXPECT_EQ((*router)->call_read("nat.ports_free").value(), "1");

  // Return traffic to the allocated port translates back to the host.
  fext->inject(udp_packet(80, 20000, Ipv4Addr(8, 8, 8, 8), Ipv4Addr(192, 0, 2, 1)));
  ASSERT_EQ(out_int.packets.size(), 1u);
  auto r = FlowTuple::from_packet(out_int.packets[0]);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->dst_ip, Ipv4Addr(10, 0, 0, 5).value());
  EXPECT_EQ(r->dst_port, 1234);
  EXPECT_EQ((*router)->call_read("nat.translated").value(), "2");

  // Unknown inbound port: nothing to deliver to, dropped.
  fext->inject(udp_packet(80, 20001, Ipv4Addr(8, 8, 8, 8), Ipv4Addr(192, 0, 2, 1)));
  EXPECT_EQ(out_int.packets.size(), 1u);
  EXPECT_EQ((*router)->call_read("nat.dropped").value(), "1");
}

TEST(FlowNatElement, PortExhaustionThenIdleEvictionReclaimsPorts) {
  EventScheduler sched;
  auto router = build_router(kNatConfig, sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  Collector out_ext;
  out_ext.attach(**router, "tout");
  auto* fin = dynamic_cast<FromDevice*>((*router)->element("fin"));

  fin->inject(udp_packet(1111, 80));
  fin->inject(udp_packet(2222, 80));
  EXPECT_EQ((*router)->call_read("nat.ports_free").value(), "0");
  EXPECT_EQ(out_ext.packets.size(), 2u);

  // Pool exhausted: the third flow is blocked, and stays blocked on its
  // next packet without counting a second exhaustion.
  fin->inject(udp_packet(3333, 80));
  fin->inject(udp_packet(3333, 80));
  EXPECT_EQ(out_ext.packets.size(), 2u);
  EXPECT_EQ((*router)->call_read("nat.exhausted").value(), "1");
  EXPECT_EQ((*router)->call_read("nat.dropped").value(), "2");

  // Idle eviction returns the ports; mappings die with their flows.
  sched.run_until(milliseconds(120));
  EXPECT_EQ((*router)->call_read("nat.ports_free").value(), "2");
  EXPECT_EQ((*router)->call_read("nat.mappings").value(), "0");
  EXPECT_EQ((*router)->call_read("fm.flows").value(), "0");

  // A fresh flow reuses a reclaimed port.
  fin->inject(udp_packet(4444, 80));
  ASSERT_EQ(out_ext.packets.size(), 3u);
  auto t = FlowTuple::from_packet(out_ext.packets[2]);
  ASSERT_TRUE(t);
  EXPECT_TRUE(t->src_port == 20000 || t->src_port == 20001);
  EXPECT_EQ((*router)->call_read("nat.ports_free").value(), "1");
}

// --- FlowLB -----------------------------------------------------------------

TEST(FlowLbElement, FlowsStickToTheirBackend) {
  EventScheduler sched;
  auto router = build_router(R"(
    from :: FromDevice(DEVNAME in0);
    fm :: FlowManager(TIMEOUT_MS 50, SWEEP_MS 10);
    lb :: FlowLB(N 2, MODE rr);
    a :: ToDevice(DEVNAME out0);
    b :: ToDevice(DEVNAME out1);
    from -> fm -> lb;
    lb[0] -> a;
    lb[1] -> b;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  Collector a, b;
  a.attach(**router, "a");
  b.attach(**router, "b");
  auto* from = dynamic_cast<FromDevice*>((*router)->element("from"));

  // Round-robin over flows, not packets: all of flow 1 goes to backend
  // 0, all of flow 2 to backend 1, regardless of interleaving.
  from->inject(udp_packet(1111));
  from->inject(udp_packet(2222));
  from->inject(udp_packet(1111));
  from->inject(udp_packet(2222));
  from->inject(udp_packet(1111));
  EXPECT_EQ(a.packets.size(), 3u);
  EXPECT_EQ(b.packets.size(), 2u);
  for (const Packet& p : a.packets) EXPECT_EQ(FlowTuple::from_packet(p)->src_port, 1111);
  for (const Packet& p : b.packets) EXPECT_EQ(FlowTuple::from_packet(p)->src_port, 2222);
  EXPECT_EQ((*router)->call_read("lb.flows_assigned").value(), "2");
  EXPECT_EQ((*router)->call_read("lb.out0_flows").value(), "1");
  EXPECT_EQ((*router)->call_read("lb.out1_flows").value(), "1");

  // Eviction releases the assignment counters.
  sched.run_until(milliseconds(120));
  EXPECT_EQ((*router)->call_read("lb.out0_flows").value(), "0");
  EXPECT_EQ((*router)->call_read("lb.out1_flows").value(), "0");
}

// --- TcpReassembler + StreamIDS ---------------------------------------------

constexpr const char* kIdsConfig = R"(
  from :: FromDevice(DEVNAME in0);
  fm :: FlowManager;
  ra :: TcpReassembler;
  ids :: StreamIDS(PATTERNS "attack");
  out :: ToDevice(DEVNAME out0);
  from -> fm -> ra -> ids -> out;
)";

TEST(StreamIdsElement, DetectsPatternAcrossPacketBoundary) {
  EventScheduler sched;
  auto router = build_router(kIdsConfig, sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  Collector sink;
  sink.attach(**router, "out");
  auto* from = dynamic_cast<FromDevice*>((*router)->element("from"));

  from->inject(tcp_packet(1000, /*SYN*/ 0x02, ""));
  from->inject(tcp_packet(1001, /*ACK*/ 0x10, "some att"));
  EXPECT_EQ((*router)->call_read("ids.alerts").value(), "0");
  from->inject(tcp_packet(1009, 0x10, "ack here"));
  EXPECT_EQ((*router)->call_read("ids.alerts").value(), "1");
  EXPECT_EQ((*router)->call_read("ids.pattern0_hits").value(), "1");
  EXPECT_EQ((*router)->call_read("ra.reassembled_bytes").value(), "16");
  EXPECT_EQ(sink.packets.size(), 3u);  // alert mode forwards everything
}

TEST(StreamIdsElement, OutOfOrderSegmentsReassembleAndMatchOnce) {
  EventScheduler sched;
  auto router = build_router(kIdsConfig, sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  Collector sink;
  sink.attach(**router, "out");
  auto* from = dynamic_cast<FromDevice*>((*router)->element("from"));

  from->inject(tcp_packet(1000, 0x02, ""));
  from->inject(tcp_packet(1009, 0x10, "ack here"));  // future segment
  EXPECT_EQ((*router)->call_read("ra.ooo_segments").value(), "1");
  EXPECT_EQ((*router)->call_read("ids.alerts").value(), "0");
  from->inject(tcp_packet(1001, 0x10, "some att"));  // closes the gap
  EXPECT_EQ((*router)->call_read("ids.alerts").value(), "1");

  // A full retransmit delivers nothing new: no double-count, no rescan.
  from->inject(tcp_packet(1001, 0x10, "some att"));
  EXPECT_EQ((*router)->call_read("ids.alerts").value(), "1");
  EXPECT_EQ((*router)->call_read("ra.duplicate_bytes").value(), "8");
}

TEST(StreamIdsElement, DropModeCutsTheFlowAfterAlert) {
  EventScheduler sched;
  auto router = build_router(R"(
    from :: FromDevice(DEVNAME in0);
    fm :: FlowManager;
    ra :: TcpReassembler;
    ids :: StreamIDS(PATTERNS "attack", MODE drop);
    out :: ToDevice(DEVNAME out0);
    cut :: ToDevice(DEVNAME cut0);
    from -> fm -> ra -> ids -> out;
    ids[1] -> cut;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  Collector sink, cut;
  sink.attach(**router, "out");
  cut.attach(**router, "cut");
  auto* from = dynamic_cast<FromDevice*>((*router)->element("from"));

  from->inject(tcp_packet(1000, 0x02, ""));
  from->inject(tcp_packet(1001, 0x10, "some att"));
  from->inject(tcp_packet(1009, 0x10, "ack here"));  // completes the match
  from->inject(tcp_packet(1017, 0x10, "more data"));  // flow already cut
  EXPECT_EQ(sink.packets.size(), 2u);  // SYN + the innocent first segment
  EXPECT_EQ(cut.packets.size(), 2u);
  EXPECT_EQ((*router)->call_read("ids.cut_packets").value(), "2");
  EXPECT_EQ((*router)->call_read("ids.alerts").value(), "1");
}

TEST(StreamIdsElement, UdpFallsBackToPerPacketScan) {
  EventScheduler sched;
  auto router = build_router(kIdsConfig, sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  auto* from = dynamic_cast<FromDevice*>((*router)->element("from"));

  net::PacketBuilder b;
  b.eth(MacAddr::from_u64(1), MacAddr::from_u64(2))
      .ipv4(Ipv4Addr(10, 0, 0, 5), Ipv4Addr(8, 8, 8, 8))
      .udp(1111, 53)
      .payload(std::string_view("xx attack yy"));
  from->inject(b.build());
  EXPECT_EQ((*router)->call_read("ids.alerts").value(), "1");
}

// --- per-flow classifier verdict cache --------------------------------------

TEST(FlowVerdictCache, FirewallSkipsRuleWalkOnEstablishedFlows) {
  EventScheduler sched;
  auto router = build_router(R"(
    from :: FromDevice(DEVNAME in0);
    fm :: FlowManager;
    fw :: Firewall(RULES "deny udp", DEFAULT allow);
    out :: ToDevice(DEVNAME out0);
    from -> fm -> fw -> out;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  auto* from = dynamic_cast<FromDevice*>((*router)->element("from"));

  for (int i = 0; i < 4; ++i) from->inject(udp_packet(1111));
  EXPECT_EQ((*router)->call_read("fw.denied").value(), "4");
  // First packet walks the rules and stores the verdict; the other three
  // are answered from the flow's state block.
  EXPECT_EQ((*router)->call_read("fw.flow_cache_hits").value(), "3");

  from->inject(tcp_packet(1000, 0x02, ""));
  EXPECT_EQ((*router)->call_read("fw.accepted").value(), "1");
}

TEST(FlowVerdictCache, TcpFlagRulesDisableTheCache) {
  // "syn" varies within a flow, so caching its verdict would be wrong;
  // the tuple_only() gate must keep the cache off.
  EventScheduler sched;
  auto router = build_router(R"(
    from :: FromDevice(DEVNAME in0);
    fm :: FlowManager;
    fw :: Firewall(RULES "deny syn", DEFAULT allow);
    out :: ToDevice(DEVNAME out0);
    from -> fm -> fw -> out;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  auto* from = dynamic_cast<FromDevice*>((*router)->element("from"));

  from->inject(tcp_packet(1000, /*SYN*/ 0x02, ""));
  from->inject(tcp_packet(1001, /*ACK*/ 0x10, "x"));
  from->inject(tcp_packet(1002, 0x10, "y"));
  EXPECT_EQ((*router)->call_read("fw.denied").value(), "1");
  EXPECT_EQ((*router)->call_read("fw.accepted").value(), "2");
  EXPECT_EQ((*router)->call_read("fw.flow_cache_hits").value(), "0");
}

TEST(FlowVerdictCache, NoFlowManagerMeansNoCacheButSameVerdicts) {
  EventScheduler sched;
  auto router = build_router(R"(
    from :: FromDevice(DEVNAME in0);
    fw :: Firewall(RULES "deny udp", DEFAULT allow);
    out :: ToDevice(DEVNAME out0);
    from -> fw -> out;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  auto* from = dynamic_cast<FromDevice*>((*router)->element("from"));
  for (int i = 0; i < 3; ++i) from->inject(udp_packet(1111));
  EXPECT_EQ((*router)->call_read("fw.denied").value(), "3");
  EXPECT_EQ((*router)->call_read("fw.flow_cache_hits").value(), "0");
}

// --- OpenFlow miss memo -----------------------------------------------------

net::FlowKey of_key(std::uint16_t tp_dst) {
  Packet p = net::make_udp_packet(MacAddr::from_u64(1), MacAddr::from_u64(2),
                                  Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 1000, tp_dst);
  return *net::extract_flow_key(p, 1);
}

openflow::FlowMod of_add(openflow::Match match, std::uint16_t priority,
                         SimDuration idle = 0) {
  openflow::FlowMod mod;
  mod.command = openflow::FlowModCommand::kAdd;
  mod.match = match;
  mod.priority = priority;
  mod.actions = openflow::output_to(1);
  mod.idle_timeout = idle;
  return mod;
}

TEST(FlowTableMissMemo, RepeatMissesShortCircuitUntilTableChanges) {
  openflow::FlowTable table;
  table.apply(of_add(openflow::Match().tp_dst(81), 100), 0);

  EXPECT_EQ(table.lookup(of_key(80), 100, 0), nullptr);  // full scan
  EXPECT_EQ(table.lookup(of_key(80), 100, 0), nullptr);  // memoized
  EXPECT_EQ(table.lookup(of_key(80), 100, 0), nullptr);
  EXPECT_EQ(table.miss_short_circuits(), 2u);
  EXPECT_EQ(table.lookups(), 3u);
  EXPECT_EQ(table.matches(), 0u);

  // A flow-mod that makes the key match must invalidate the memo.
  table.apply(of_add(openflow::Match().tp_dst(80), 200), 0);
  openflow::FlowEntry* hit = table.lookup(of_key(80), 100, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(table.miss_short_circuits(), 2u);
}

TEST(FlowTableMissMemo, ExpiryInvalidatesMemoizedMisses) {
  openflow::FlowTable table;
  table.apply(of_add(openflow::Match().tp_dst(80), 100, /*idle=*/seconds(1)), 0);

  EXPECT_NE(table.lookup(of_key(80), 100, 0), nullptr);
  EXPECT_EQ(table.lookup(of_key(99), 100, 0), nullptr);  // memoized miss
  EXPECT_EQ(table.lookup(of_key(99), 100, 0), nullptr);
  EXPECT_EQ(table.miss_short_circuits(), 1u);

  // The idle entry expires: lookups skip it (a fresh miss, memoizable
  // because expiry only ever creates new misses); the sweep evicts it
  // and bumps the version, which clears the memo.
  EXPECT_EQ(table.lookup(of_key(80), 100, seconds(3)), nullptr);
  EXPECT_EQ(table.lookup(of_key(80), 100, seconds(3)), nullptr);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.expire(seconds(3)), 1u);
  EXPECT_EQ(table.size(), 0u);
}

// --- stateful chain determinism ---------------------------------------------

netemu::LinkConfig chain_link() {
  netemu::LinkConfig cfg;
  cfg.bandwidth_bps = 1'000'000'000;
  cfg.delay = 50 * timeunit::kMicrosecond;
  return cfg;
}

struct ChainFingerprint {
  std::size_t shards = 0;
  std::uint64_t digest = 0;
  std::uint64_t executed = 0;
  std::uint64_t rx_packets = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_packets = 0;
  int chain_state = -1;
  std::string metrics;

  bool operator==(const ChainFingerprint&) const = default;
};

/// A NAT + sticky-LB chain with short flow timeouts under UDP traffic:
/// flow creation, context-carried state updates, the periodic sweep and
/// the eviction listeners (port reclaim, flow-count decrement) must all
/// execute identically whatever the worker thread count.
ChainFingerprint run_stateful_chain(std::size_t threads) {
  obs::MetricsRegistry::global().reset_values();
  obs::clear_all_tracers();
  EnvironmentOptions opts;
  opts.threads = threads;
  opts.shard_by = netemu::ShardBy::kSwitch;
  Environment env{opts};
  auto& net = env.network();
  net.add_host("sap1");
  net.add_host("sap2");
  net.add_switch("s1");
  net.add_switch("s2");
  net.add_container("c1", 1.0, 8);
  net.add_container("c2", 1.0, 8);
  EXPECT_TRUE(net.add_link("sap1", 0, "s1", 1, chain_link()).ok());
  EXPECT_TRUE(net.add_link("sap2", 0, "s2", 1, chain_link()).ok());
  EXPECT_TRUE(net.add_link("s1", 2, "s2", 2, chain_link()).ok());
  EXPECT_TRUE(net.add_link("c1", 0, "s1", 3, chain_link()).ok());
  EXPECT_TRUE(net.add_link("c2", 0, "s2", 3, chain_link()).ok());
  EXPECT_TRUE(env.start().ok());
  EXPECT_EQ(env.scheduler().shard_count(), 2u);

  sg::ServiceGraph g("stateful");
  g.add_sap("sap1").add_sap("sap2");
  g.add_vnf("nat", "flow_nat",
            {{"capacity", "1024"}, {"timeout_ms", "200"}, {"port_count", "64"}}, 0.15);
  g.add_vnf("lb", "flow_lb", {{"capacity", "1024"}, {"timeout_ms", "200"}, {"mode", "rr"}},
            0.1);
  g.add_link("sap1", "nat").add_link("nat", "lb").add_link("lb", "sap2");

  auto* sap1 = env.host("sap1");
  auto* sap2 = env.host("sap2");
  // Steer on destination only: the NAT rewrites the source address
  // mid-chain, so the default src+dst match would stop matching at the
  // first post-NAT hop.
  openflow::Match match;
  match.dl_type(net::ethertype::kIpv4).nw_dst(sap2->ip());
  auto chain = env.deploy(g, match);
  EXPECT_TRUE(chain.ok()) << (chain.ok() ? "" : chain.error().to_string());
  sap1->start_udp_flow(sap2->mac(), sap2->ip(), 5000, 7777, 300, 2000);
  // Long enough to cover the traffic, the 1 s sweep tick and the idle
  // eviction of every flow (200 ms timeout).
  env.run_for(1500 * timeunit::kMillisecond);

  ChainFingerprint f;
  f.shards = env.scheduler().shard_count();
  f.digest = env.scheduler().order_digest();
  f.executed = env.scheduler().executed_events();
  f.rx_packets = sap2->rx_packets();
  f.rx_bytes = sap2->rx_bytes();
  f.tx_packets = sap1->tx_packets();
  if (chain.ok()) {
    if (const ChainDeployment* dep = env.deployment(*chain)) {
      f.chain_state = static_cast<int>(dep->state);
    }
  }
  // The registry snapshot covers every VNF handler, including the flow
  // table gauges (flows, evictions, NAT ports, LB assignment counts).
  // The steering install latency is wall-clock and excluded.
  std::istringstream exposition(obs::MetricsRegistry::global().render_text());
  std::string line;
  while (std::getline(exposition, line)) {
    if (line.find("escape_steering_install_latency_us") != std::string::npos) continue;
    f.metrics += line;
    f.metrics += '\n';
  }
  return f;
}

TEST(StatefulChainDeterminism, NatLbChainBitIdenticalAcrossThreadCounts) {
  const ChainFingerprint seq = run_stateful_chain(1);
  const ChainFingerprint par = run_stateful_chain(4);
  EXPECT_EQ(seq.shards, 2u);
  EXPECT_GT(seq.rx_packets, 0u);
  // The substrate actually ran: the FlowManager handler gauges of both
  // VNF routers are in the fingerprinted exposition.
  EXPECT_NE(seq.metrics.find("element=\"fm\""), std::string::npos);
  EXPECT_EQ(seq, par);
}

}  // namespace
}  // namespace escape
