// Deterministic PRNG for workload generation and randomized mapping
// heuristics. A thin wrapper over xoshiro256** so results are stable
// across standard library implementations (std::mt19937 would also be
// portable, but this keeps the dependency surface explicit and fast).
#pragma once

#include <cstdint>
#include <vector>

namespace escape {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p.
  bool next_bool(double p = 0.5);

  /// Exponentially distributed value with the given mean (> 0).
  double next_exponential(double mean);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element index. Precondition: size > 0.
  std::size_t pick_index(std::size_t size) { return static_cast<std::size_t>(next_below(size)); }

 private:
  std::uint64_t s_[4];
};

}  // namespace escape
