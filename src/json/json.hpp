// Minimal JSON value model + parser + serializer.
//
// Used for the service-layer artifacts that the original ESCAPE produced
// with its MiniEdit-based GUI: topology descriptions and service-graph
// descriptions travel as JSON documents (see service/formats.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/result.hpp"

namespace escape::json {

class Value;

using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/// A JSON value. Numbers are kept as double plus an integer flag so
/// round-tripping integers stays exact for the magnitudes we use.
class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}            // NOLINT
  Value(bool b) : data_(b) {}                          // NOLINT
  Value(double d) : data_(d) {}                        // NOLINT
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}       // NOLINT
  Value(std::int64_t i) : data_(i) {}                  // NOLINT
  Value(std::uint64_t u) : data_(static_cast<std::int64_t>(u)) {}  // NOLINT
  Value(const char* s) : data_(std::string(s)) {}      // NOLINT
  Value(std::string s) : data_(std::move(s)) {}        // NOLINT
  Value(Array a) : data_(std::move(a)) {}              // NOLINT
  Value(Object o) : data_(std::move(o)) {}             // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<Array>(data_); }
  bool is_object() const { return std::holds_alternative<Object>(data_); }

  bool as_bool(bool fallback = false) const;
  std::int64_t as_int(std::int64_t fallback = 0) const;
  double as_double(double fallback = 0) const;
  const std::string& as_string() const;  // "" if not a string
  const Array& as_array() const;         // empty if not an array
  const Object& as_object() const;       // empty if not an object

  Array& make_array();
  Object& make_object();

  /// Object member access; null Value if absent or not an object.
  const Value& operator[](std::string_view key) const;
  /// Array element access; null Value if out of range or not an array.
  const Value& operator[](std::size_t index) const;

  bool has(std::string_view key) const;

  /// Serializes. indent < 0 -> compact.
  std::string dump(int indent = -1) const;

 private:
  void serialize(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array, Object> data_;
};

/// Escapes a string for inclusion in JSON output (no surrounding quotes).
std::string escape_string(std::string_view raw);

/// Parses a JSON document.
Result<Value> parse(std::string_view input);

}  // namespace escape::json
