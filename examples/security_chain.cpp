// Security service chain: the kind of workload the paper's introduction
// motivates -- traffic from a branch office passes firewall -> DPI ->
// rate limiter before reaching the server.
//
// Demonstrates:
//   * JSON topology descriptions (the MiniEdit artifact),
//   * JSON service-graph descriptions with per-link bandwidth and an
//     end-to-end latency requirement,
//   * firewall policy effects and DPI pattern counters observed through
//     the NETCONF monitoring path,
//   * SLA checking against measured latency.
#include <cstdio>

#include "escape/environment.hpp"

using namespace escape;

namespace {

constexpr const char* kTopology = R"({
  "name": "branch-to-dc",
  "nodes": [
    {"name": "branch",  "kind": "host"},
    {"name": "server",  "kind": "host"},
    {"name": "edge",    "kind": "switch"},
    {"name": "core",    "kind": "switch"},
    {"name": "dc",      "kind": "switch"},
    {"name": "pop1",    "kind": "container", "cpu": 1.0, "slots": 8},
    {"name": "pop2",    "kind": "container", "cpu": 1.0, "slots": 8}
  ],
  "links": [
    {"a": "branch", "a_port": 0, "b": "edge", "b_port": 1, "bw_mbps": 100, "delay_us": 200},
    {"a": "edge",   "a_port": 2, "b": "core", "b_port": 1, "bw_mbps": 1000, "delay_us": 800},
    {"a": "core",   "a_port": 2, "b": "dc",   "b_port": 1, "bw_mbps": 1000, "delay_us": 800},
    {"a": "server", "a_port": 0, "b": "dc",   "b_port": 2, "bw_mbps": 1000, "delay_us": 100},
    {"a": "pop1",   "a_port": 0, "b": "edge", "b_port": 3, "bw_mbps": 1000, "delay_us": 50},
    {"a": "pop2",   "a_port": 0, "b": "dc",   "b_port": 3, "bw_mbps": 1000, "delay_us": 50}
  ]
})";

constexpr const char* kServiceGraph = R"({
  "name": "security-chain",
  "saps": ["branch", "server"],
  "vnfs": [
    {"id": "fw",  "type": "firewall", "cpu": 0.2,
     "params": {"rules": "deny udp && dst port 23; deny net 203.0.113.0/24; allow ip",
                "default": "deny"}},
    {"id": "ids", "type": "dpi", "cpu": 0.3,
     "params": {"patterns": "exploit;beacon"}},
    {"id": "rl",  "type": "ratelimiter", "cpu": 0.1,
     "params": {"rate": "2000", "queue": "256"}}
  ],
  "links": [
    {"src": "branch", "dst": "fw",  "bw_mbps": 50},
    {"src": "fw",     "dst": "ids", "bw_mbps": 50},
    {"src": "ids",    "dst": "rl",  "bw_mbps": 50},
    {"src": "rl",     "dst": "server", "bw_mbps": 50}
  ],
  "requirements": [
    {"a": "branch", "b": "server", "bw_mbps": 50, "max_delay_ms": 30}
  ]
})";

}  // namespace

int main() {
  Logging::set_level(LogLevel::kWarn);
  Environment env{EnvironmentOptions{.mapping_algorithm = "delaygreedy"}};

  auto topology = service::TopologySpec::from_json(kTopology);
  if (!topology.ok()) {
    std::fprintf(stderr, "topology: %s\n", topology.error().to_string().c_str());
    return 1;
  }
  if (auto s = env.load_topology(*topology); !s.ok()) {
    std::fprintf(stderr, "build: %s\n", s.error().to_string().c_str());
    return 1;
  }
  if (auto s = env.start(); !s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.error().to_string().c_str());
    return 1;
  }

  auto graph = service::service_graph_from_json(kServiceGraph);
  if (!graph.ok()) {
    std::fprintf(stderr, "sg: %s\n", graph.error().to_string().c_str());
    return 1;
  }

  auto chain = env.deploy(*graph);
  if (!chain.ok()) {
    std::fprintf(stderr, "deploy: %s\n", chain.error().to_string().c_str());
    return 1;
  }
  const ChainDeployment* dep = env.deployment(*chain);
  std::printf("deployed '%s': %s\n", graph->name().c_str(),
              dep->record.mapping.to_string().c_str());

  // Legitimate traffic: HTTP-ish flow at 1500 pps for two seconds.
  netemu::Host* branch = env.host("branch");
  netemu::Host* server = env.host("server");
  branch->start_udp_flow(server->mac(), server->ip(), 40000, 80, 3000, 1500);
  env.run_for(seconds(3));
  std::printf("legit flow: %llu/3000 delivered, mean latency %.2f ms\n",
              static_cast<unsigned long long>(server->rx_packets()),
              server->latency_us().mean() / 1000.0);

  // Telnet attempt: denied at the firewall.
  branch->start_udp_flow(server->mac(), server->ip(), 40001, 23, 200, 1000);
  env.run_for(seconds(1));
  std::printf("after telnet attempt: server still at %llu packets\n",
              static_cast<unsigned long long>(server->rx_packets()));

  // An "exploit" payload for the DPI to count (allowed through: DPI is
  // passive in this chain).
  net::Packet evil = net::PacketBuilder()
                         .eth(branch->mac(), server->mac())
                         .ipv4(branch->ip(), server->ip())
                         .udp(40002, 80)
                         .payload(std::string_view("GET /exploit.bin"))
                         .build();
  branch->send(std::move(evil));
  env.run_for(seconds(1));

  // Monitoring (Clicky over NETCONF).
  for (const auto& vnf : dep->record.vnfs) {
    auto info = env.monitor_vnf(vnf.container, vnf.instance_id);
    if (!info.ok()) continue;
    std::printf("-- %s @ %s\n", vnf.vnf_id.c_str(), vnf.container.c_str());
    for (const auto& [handler, value] : info->handlers) {
      if (handler.find("count") != std::string::npos ||
          handler.find("accepted") != std::string::npos ||
          handler.find("denied") != std::string::npos ||
          handler.find("matches") != std::string::npos) {
        std::printf("   %-24s %s\n", handler.c_str(), value.c_str());
      }
    }
  }

  // SLA verdict.
  auto report = service::ServiceLayer::check_delay(graph->requirements()[0],
                                                   server->latency_us().mean() / 1000.0);
  std::printf("SLA (<= %.0f ms): measured %.2f ms -> %s\n",
              static_cast<double>(report.requirement.max_delay) / timeunit::kMillisecond,
              report.measured_delay_ms, report.delay_met ? "MET" : "VIOLATED");
  return report.delay_met ? 0 : 1;
}
