// An OpenFlow switch embedded in the emulated network (the Open vSwitch
// node of Mininet): wraps openflow::OpenFlowSwitch, wiring node ports to
// datapath ports.
#pragma once

#include <memory>

#include "netemu/node.hpp"
#include "openflow/switch.hpp"

namespace escape::netemu {

class SwitchNode : public Node {
 public:
  SwitchNode(std::string name, EventScheduler& scheduler, openflow::DatapathId dpid);

  NodeKind kind() const override { return NodeKind::kSwitch; }
  openflow::OpenFlowSwitch& datapath() { return datapath_; }
  openflow::DatapathId dpid() const { return datapath_.datapath_id(); }

  void deliver(std::uint16_t port, net::Packet&& packet) override;
  void deliver_batch(std::uint16_t port, net::PacketBatch&& batch) override;

  /// Declares a datapath port backed by node port `port`. Must be called
  /// for every port before traffic flows (Network::add_link does this).
  void ensure_port(std::uint16_t port);

 protected:
  void on_rebind() override { datapath_.rebind_scheduler(scheduler()); }

 private:
  openflow::OpenFlowSwitch datapath_;
};

}  // namespace escape::netemu
