#include "click/config.hpp"

#include <cctype>
#include <set>

#include "util/strings.hpp"

namespace escape::click {

// --- ElementRegistry ----------------------------------------------------------

void register_standard_elements(ElementRegistry& registry);  // elements.cpp

ElementRegistry& ElementRegistry::global() {
  static ElementRegistry* instance = [] {
    auto* r = new ElementRegistry();
    register_standard_elements(*r);
    return r;
  }();
  return *instance;
}

void ElementRegistry::register_class(std::string class_name, Factory factory) {
  factories_[std::move(class_name)] = std::move(factory);
}

bool ElementRegistry::has(std::string_view class_name) const {
  return factories_.find(class_name) != factories_.end();
}

std::unique_ptr<Element> ElementRegistry::create(std::string_view class_name) const {
  auto it = factories_.find(class_name);
  return it == factories_.end() ? nullptr : it->second();
}

std::vector<std::string> ElementRegistry::class_names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [k, _] : factories_) names.push_back(k);
  return names;
}

// --- Lexer ---------------------------------------------------------------------

namespace {

struct Token {
  enum Kind {
    kIdent, kArrow, kColonColon, kLBracket, kRBracket, kSemicolon, kConfig, kNumber,
    kBody,  // raw "{ ... }" compound body (braces stripped)
    kEnd
  };
  Kind kind = kEnd;
  std::string text;
  std::size_t offset = 0;
};

/// Tokenizes Click configuration text. Parenthesized argument strings are
/// captured verbatim as kConfig tokens (nested parens and quotes respected).
class Lexer {
 public:
  explicit Lexer(std::string_view in) : in_(in) {}

  Result<std::vector<Token>> run() {
    std::vector<Token> tokens;
    while (true) {
      skip_ws_and_comments();
      if (pos_ >= in_.size()) break;
      const std::size_t start = pos_;
      char c = in_[pos_];
      if (c == '-' && pos_ + 1 < in_.size() && in_[pos_ + 1] == '>') {
        pos_ += 2;
        tokens.push_back({Token::kArrow, "->", start});
      } else if (c == ':' && pos_ + 1 < in_.size() && in_[pos_ + 1] == ':') {
        pos_ += 2;
        tokens.push_back({Token::kColonColon, "::", start});
      } else if (c == '[') {
        ++pos_;
        tokens.push_back({Token::kLBracket, "[", start});
      } else if (c == ']') {
        ++pos_;
        tokens.push_back({Token::kRBracket, "]", start});
      } else if (c == ';') {
        ++pos_;
        tokens.push_back({Token::kSemicolon, ";", start});
      } else if (c == '(') {
        auto cfg = read_config();
        if (!cfg.ok()) return cfg.error();
        tokens.push_back({Token::kConfig, *cfg, start});
      } else if (c == '{') {
        auto body = read_body();
        if (!body.ok()) return body.error();
        tokens.push_back({Token::kBody, *body, start});
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        std::string num;
        while (pos_ < in_.size() && std::isdigit(static_cast<unsigned char>(in_[pos_]))) {
          num += in_[pos_++];
        }
        tokens.push_back({Token::kNumber, num, start});
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '@') {
        std::string ident;
        while (pos_ < in_.size() &&
               (std::isalnum(static_cast<unsigned char>(in_[pos_])) || in_[pos_] == '_' ||
                in_[pos_] == '@' || in_[pos_] == '/')) {
          ident += in_[pos_++];
        }
        tokens.push_back({Token::kIdent, ident, start});
      } else {
        return make_error("click.config.lex",
                          strings::format("unexpected character '%c' at offset %zu", c, start));
      }
    }
    tokens.push_back({Token::kEnd, "", pos_});
    return tokens;
  }

 private:
  void skip_ws_and_comments() {
    while (pos_ < in_.size()) {
      char c = in_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < in_.size() && in_[pos_ + 1] == '/') {
        while (pos_ < in_.size() && in_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < in_.size() && in_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < in_.size() && !(in_[pos_] == '*' && in_[pos_ + 1] == '/')) ++pos_;
        pos_ = pos_ + 2 <= in_.size() ? pos_ + 2 : in_.size();
      } else {
        break;
      }
    }
  }

  Result<std::string> read_config() {
    // pos_ is at '('; capture until the matching ')'.
    const std::size_t open = pos_;
    ++pos_;
    std::string out;
    int depth = 1;
    bool in_quote = false;
    while (pos_ < in_.size()) {
      char c = in_[pos_++];
      if (in_quote) {
        if (c == '"') in_quote = false;
        out += c;
        continue;
      }
      if (c == '"') {
        in_quote = true;
        out += c;
      } else if (c == '(') {
        ++depth;
        out += c;
      } else if (c == ')') {
        if (--depth == 0) return out;
        out += c;
      } else {
        out += c;
      }
    }
    return make_error("click.config.lex",
                      strings::format("unbalanced '(' at offset %zu", open));
  }

  Result<std::string> read_body() {
    // pos_ is at '{'; capture until the matching '}' (nesting and quotes
    // respected; parens may contain braces-free config strings).
    const std::size_t open = pos_;
    ++pos_;
    std::string out;
    int depth = 1;
    bool in_quote = false;
    while (pos_ < in_.size()) {
      char c = in_[pos_++];
      if (in_quote) {
        if (c == '"') in_quote = false;
        out += c;
        continue;
      }
      if (c == '"') {
        in_quote = true;
        out += c;
      } else if (c == '{') {
        ++depth;
        out += c;
      } else if (c == '}') {
        if (--depth == 0) return out;
        out += c;
      } else {
        out += c;
      }
    }
    return make_error("click.config.lex",
                      strings::format("unbalanced '{' at offset %zu", open));
  }

  std::string_view in_;
  std::size_t pos_ = 0;
};

// --- Parser ---------------------------------------------------------------------

class ConfigParser {
 public:
  /// `compounds` collects/provides elementclass definitions (name ->
  /// body text). `allow_io_pseudo` permits references to the reserved
  /// `input` / `output` endpoints (inside compound bodies).
  ConfigParser(std::vector<Token> tokens, std::map<std::string, std::string>* compounds,
               bool allow_io_pseudo)
      : tokens_(std::move(tokens)), compounds_(compounds), allow_io_(allow_io_pseudo) {}

  Result<ParsedConfig> run() {
    while (peek().kind != Token::kEnd) {
      if (peek().kind == Token::kSemicolon) {
        advance();
        continue;
      }
      if (peek().kind == Token::kIdent && peek().text == "elementclass") {
        if (auto s = parse_elementclass(); !s.ok()) return s.error();
        continue;
      }
      if (auto s = parse_statement(); !s.ok()) return s.error();
    }
    return std::move(config_);
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() { return tokens_[pos_++]; }
  bool match(Token::Kind kind) {
    if (peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  Error fail(const std::string& msg) const {
    return make_error("click.config.parse",
                      msg + strings::format(" (near offset %zu)", peek().offset));
  }

  bool is_declared(const std::string& name) const {
    if (allow_io_ && (name == "input" || name == "output")) return true;
    return declared_.count(name) > 0;
  }

  Status parse_elementclass() {
    advance();  // "elementclass"
    if (peek().kind != Token::kIdent) return fail("expected compound class name");
    std::string name = advance().text;
    if (peek().kind != Token::kBody) return fail("expected '{' body after elementclass");
    std::string body = advance().text;
    if (!compounds_) return fail("elementclass not allowed here");
    auto it = compounds_->find(name);
    if (it != compounds_->end()) {
      // Compound bodies are re-parsed per instantiation, so an identical
      // nested definition is fine; a conflicting one is an error.
      if (it->second != body) return fail("duplicate elementclass '" + name + "'");
      return ok_status();
    }
    (*compounds_)[name] = std::move(body);
    return ok_status();
  }

  std::string fresh_anonymous_name(const std::string& class_name) {
    return strings::format("%s@%zu", class_name.c_str(), ++anon_counter_);
  }

  /// Parses `name :: Class(config)` or references/anonymous elements.
  /// Returns the instance name the endpoint refers to.
  Result<std::string> parse_endpoint_element() {
    if (peek().kind != Token::kIdent) return fail("expected element name or class");
    std::string first = advance().text;

    if (peek().kind == Token::kColonColon) {
      // Declaration: first :: Class(config)
      advance();
      if (peek().kind != Token::kIdent) return fail("expected class name after '::'");
      std::string class_name = advance().text;
      std::string config;
      if (peek().kind == Token::kConfig) config = advance().text;
      if (is_declared(first)) return fail("duplicate declaration of '" + first + "'");
      declared_.insert(first);
      config_.declarations.push_back({first, class_name, config});
      return first;
    }

    if (peek().kind == Token::kConfig) {
      // Anonymous: Class(config)
      std::string config = advance().text;
      std::string name = fresh_anonymous_name(first);
      declared_.insert(name);
      config_.declarations.push_back({name, first, config});
      return name;
    }

    if (is_declared(first)) return first;  // reference

    // Bare identifier that was never declared: treat an uppercase-leading
    // name as an anonymous class with empty config ("-> Discard;").
    if (std::isupper(static_cast<unsigned char>(first[0]))) {
      std::string name = fresh_anonymous_name(first);
      declared_.insert(name);
      config_.declarations.push_back({name, first, ""});
      return name;
    }
    return fail("reference to undeclared element '" + first + "'");
  }

  Result<int> parse_port() {
    if (!match(Token::kLBracket)) return fail("expected '['");
    if (peek().kind != Token::kNumber) return fail("expected port number");
    int port = static_cast<int>(*strings::parse_u64(advance().text));
    if (!match(Token::kRBracket)) return fail("expected ']'");
    return port;
  }

  Status parse_statement() {
    // endpoint (-> endpoint)* ;
    // where endpoint = [inport]? element [outport]?
    int pending_in_port = 0;
    bool have_pending_in = false;
    if (peek().kind == Token::kLBracket) {
      auto p = parse_port();
      if (!p.ok()) return p.error();
      pending_in_port = *p;
      have_pending_in = true;
    }

    auto first = parse_endpoint_element();
    if (!first.ok()) return first.error();
    if (have_pending_in && config_.connections.empty()) {
      return fail("input port specifier without a source");
    }

    std::string prev = *first;
    int prev_out_port = 0;
    if (peek().kind == Token::kLBracket) {
      auto p = parse_port();
      if (!p.ok()) return p.error();
      prev_out_port = *p;
    }

    while (match(Token::kArrow)) {
      int in_port = 0;
      if (peek().kind == Token::kLBracket) {
        auto p = parse_port();
        if (!p.ok()) return p.error();
        in_port = *p;
      }
      auto next = parse_endpoint_element();
      if (!next.ok()) return next.error();
      config_.connections.push_back({prev, prev_out_port, *next, in_port});
      prev = *next;
      prev_out_port = 0;
      if (peek().kind == Token::kLBracket) {
        auto p = parse_port();
        if (!p.ok()) return p.error();
        prev_out_port = *p;
      }
    }

    if (!match(Token::kSemicolon) && peek().kind != Token::kEnd) {
      return fail("expected ';' or '->'");
    }
    return ok_status();
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  ParsedConfig config_;
  std::set<std::string> declared_;
  std::size_t anon_counter_ = 0;
  std::map<std::string, std::string>* compounds_ = nullptr;
  bool allow_io_ = false;
};

Result<ParsedConfig> parse_internal(std::string_view text,
                                    std::map<std::string, std::string>* compounds,
                                    bool allow_io) {
  auto tokens = Lexer(text).run();
  if (!tokens.ok()) return tokens.error();
  return ConfigParser(std::move(*tokens), compounds, allow_io).run();
}

/// Expands compound-class instances until only primitive classes remain.
Result<ParsedConfig> expand_compounds(ParsedConfig config,
                                      std::map<std::string, std::string>& compounds) {
  for (int round = 0; round < 32; ++round) {
    bool any_compound = false;
    for (const auto& d : config.declarations) {
      if (compounds.count(d.class_name)) any_compound = true;
    }
    if (!any_compound) return config;

    ParsedConfig next;
    // Per expanded instance: where its input/output pseudo ports lead.
    struct IoMap {
      std::map<int, std::vector<std::pair<std::string, int>>> inputs;
      std::map<int, std::pair<std::string, int>> outputs;
    };
    std::map<std::string, IoMap> expanded;

    for (const auto& decl : config.declarations) {
      auto cit = compounds.find(decl.class_name);
      if (cit == compounds.end()) {
        next.declarations.push_back(decl);
        continue;
      }
      if (!decl.config.empty()) {
        return make_error("click.config.compound-args",
                          decl.name + ": compound classes take no configuration");
      }
      auto inner = parse_internal(cit->second, &compounds, /*allow_io=*/true);
      if (!inner.ok()) {
        return make_error(inner.error().code,
                          "in elementclass " + decl.class_name + ": " +
                              inner.error().message);
      }
      const std::string prefix = decl.name + "/";
      for (const auto& d : inner->declarations) {
        next.declarations.push_back({prefix + d.name, d.class_name, d.config});
      }
      IoMap io;
      for (const auto& c : inner->connections) {
        const bool from_input = c.from == "input";
        const bool to_output = c.to == "output";
        if (from_input && to_output) {
          return make_error("click.config.compound-passthrough",
                            decl.class_name + ": direct input -> output is not supported");
        }
        if (from_input) {
          io.inputs[c.from_port].emplace_back(prefix + c.to, c.to_port);
        } else if (to_output) {
          if (io.outputs.count(c.to_port)) {
            return make_error("click.config.compound-fanin",
                              decl.class_name + ": output[" + std::to_string(c.to_port) +
                                  "] has multiple sources");
          }
          io.outputs[c.to_port] = {prefix + c.from, c.from_port};
        } else {
          next.connections.push_back({prefix + c.from, c.from_port, prefix + c.to, c.to_port});
        }
      }
      expanded[decl.name] = std::move(io);
    }

    // Splice the surrounding connections through the pseudo ports.
    for (const auto& c : config.connections) {
      // Resolve the source side first.
      std::vector<std::pair<std::string, int>> sources;
      auto from_it = expanded.find(c.from);
      if (from_it != expanded.end()) {
        auto out = from_it->second.outputs.find(c.from_port);
        if (out == from_it->second.outputs.end()) {
          return make_error("click.config.compound-port",
                            c.from + " has no output[" + std::to_string(c.from_port) + "]");
        }
        sources.push_back(out->second);
      } else {
        sources.emplace_back(c.from, c.from_port);
      }
      // Then the destination side (possibly a fan-out into the compound).
      std::vector<std::pair<std::string, int>> destinations;
      auto to_it = expanded.find(c.to);
      if (to_it != expanded.end()) {
        auto in = to_it->second.inputs.find(c.to_port);
        if (in == to_it->second.inputs.end()) {
          return make_error("click.config.compound-port",
                            c.to + " has no input[" + std::to_string(c.to_port) + "]");
        }
        destinations = in->second;
      } else {
        destinations.emplace_back(c.to, c.to_port);
      }
      for (const auto& [src, src_port] : sources) {
        for (const auto& [dst, dst_port] : destinations) {
          next.connections.push_back({src, src_port, dst, dst_port});
        }
      }
    }
    config = std::move(next);
  }
  return make_error("click.config.compound-depth",
                    "elementclass expansion did not terminate (cyclic definition?)");
}

}  // namespace

Result<ParsedConfig> parse_config(std::string_view text) {
  std::map<std::string, std::string> compounds;
  auto parsed = parse_internal(text, &compounds, /*allow_io=*/false);
  if (!parsed.ok()) return parsed;
  if (compounds.empty()) return parsed;
  return expand_compounds(std::move(*parsed), compounds);
}

Result<std::unique_ptr<Router>> build_router(std::string_view text, EventScheduler& scheduler,
                                             const ElementRegistry& registry) {
  auto parsed = parse_config(text);
  if (!parsed.ok()) return parsed.error();

  auto router = std::make_unique<Router>(scheduler);
  for (const auto& decl : parsed->declarations) {
    auto element = registry.create(decl.class_name);
    if (!element) {
      return make_error("click.config.unknown-class",
                        "unknown element class: " + decl.class_name);
    }
    if (auto s = element->configure(ConfigArgs::parse(decl.config)); !s.ok()) {
      return make_error(s.error().code,
                        decl.name + " (" + decl.class_name + "): " + s.error().message);
    }
    if (auto added = router->add_element(decl.name, std::move(element)); !added.ok()) {
      return added.error();
    }
  }
  for (const auto& conn : parsed->connections) {
    if (auto s = router->connect(conn); !s.ok()) return s.error();
  }
  if (auto s = router->initialize(); !s.ok()) return s.error();
  return router;
}

}  // namespace escape::click
