// NETCONF sessions (RFC 6241 shape): hello/capability exchange, framed
// XML rpc / rpc-reply with message-id correlation, rpc-error reporting.
//
// The server is operation-agnostic: agents register handlers per RPC
// local name (get, edit-config, startVNF, ...). The client issues RPCs
// asynchronously; replies arrive through callbacks once the scheduler
// delivers them (management-plane latency is real and measurable).
//
// Robustness model (the fault plane depends on every piece of this):
//   * the client tracks an explicit session state -- kConnecting until
//     the server hello arrives, kEstablished after, kClosed once the
//     transport dies -- and fires on_closed callbacks, so a crashed
//     agent can never leave callers waiting forever;
//   * every RPC may carry RpcOptions: a per-RPC timeout plus bounded
//     exponential backoff with jitter; transport-level failures
//     (timeout, closed session) are retried with a fresh message id,
//     application-level <rpc-error>s are not (the agent is alive);
//   * rebind() re-establishes the session on a new transport (new hello
//     exchange); retries scheduled across the rebind re-send their
//     operation on the new session -- the idempotent re-send path;
//   * a circuit breaker guards each client: after N consecutive
//     transport-level failures the breaker opens and RPCs fail fast
//     until a cooldown elapses, at which point one probe is let through.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "netconf/transport.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"
#include "util/result.hpp"
#include "xml/xml.hpp"

namespace escape::netconf {

inline constexpr std::string_view kBaseCapability = "urn:ietf:params:netconf:base:1.0";
inline constexpr std::string_view kVnfCapability = "urn:escape:vnf:1.0";
inline constexpr std::string_view kNetconfNs = "urn:ietf:params:xml:ns:netconf:base:1.0";

/// Server side of one session (the agent end).
class NetconfServer {
 public:
  /// Handler: receives the operation element (e.g. <startVNF>...), returns
  /// reply content to embed in <rpc-reply> (nullptr -> <ok/>), or an Error
  /// that becomes an <rpc-error>.
  using RpcHandler =
      std::function<Result<std::unique_ptr<xml::Element>>(const xml::Element& operation)>;

  NetconfServer(std::shared_ptr<TransportEndpoint> transport,
                std::vector<std::string> capabilities = {std::string(kBaseCapability)});

  void register_rpc(const std::string& operation, RpcHandler handler);

  /// Pushes an asynchronous <notification> (RFC 5277 framing) carrying
  /// `event`; `event_time` is a free-form timestamp (virtual ns here).
  void send_notification(std::unique_ptr<xml::Element> event, const std::string& event_time);

  bool hello_received() const { return hello_received_; }
  const std::vector<std::string>& peer_capabilities() const { return peer_capabilities_; }
  std::uint64_t rpcs_handled() const { return rpcs_handled_; }
  std::uint64_t rpc_errors() const { return rpc_errors_; }

 private:
  void on_bytes(std::string bytes);
  void handle_message(const std::string& message);
  void send_reply(const std::string& message_id, Result<std::unique_ptr<xml::Element>> result);

  std::shared_ptr<TransportEndpoint> transport_;
  FrameReader reader_;
  std::map<std::string, RpcHandler> handlers_;
  bool hello_received_ = false;
  std::vector<std::string> peer_capabilities_;
  std::uint64_t rpcs_handled_ = 0;
  std::uint64_t rpc_errors_ = 0;
  obs::Counter* m_rpcs_;
  obs::Counter* m_errors_;
  Logger log_{"netconf.server"};
};

/// Reliability envelope for one RPC. The defaults preserve the seed
/// behaviour: a single attempt that waits forever (but still fails
/// immediately if the session closes underneath it).
struct RpcOptions {
  /// Per-attempt timeout; 0 waits forever (session close still aborts).
  SimDuration timeout = 0;
  /// Total send attempts (1 = no retry).
  int max_attempts = 1;
  /// First retry delay; doubled per attempt up to backoff_max.
  SimDuration backoff_base = 2 * timeunit::kMillisecond;
  SimDuration backoff_max = 100 * timeunit::kMillisecond;
  /// Fraction of the backoff randomized (+/-), decorrelating retries.
  double jitter = 0.2;
};

/// Circuit-breaker policy: after `failure_threshold` consecutive
/// transport-level RPC failures the breaker opens for `open_for`;
/// while open, RPCs fail fast with netconf.circuit-open. The first RPC
/// after the cooldown is the half-open probe. `failure_threshold` <= 0
/// disables the breaker.
struct CircuitBreakerOptions {
  int failure_threshold = 5;
  SimDuration open_for = 500 * timeunit::kMillisecond;
};

enum class SessionState : std::uint8_t { kConnecting, kEstablished, kClosed };

std::string_view session_state_name(SessionState state);

/// Client side of one session (the orchestrator end).
class NetconfClient {
 public:
  using ReplyCallback = std::function<void(Result<std::unique_ptr<xml::Element>>)>;

  explicit NetconfClient(std::shared_ptr<TransportEndpoint> transport);
  ~NetconfClient();

  SessionState state() const { return state_; }
  /// True once the server's hello arrived (and the session is not closed).
  bool established() const { return state_ == SessionState::kEstablished; }
  bool session_closed() const { return state_ == SessionState::kClosed; }
  const std::vector<std::string>& server_capabilities() const { return server_capabilities_; }

  /// Fires (immediately if already established) when the session is up.
  void on_established(std::function<void()> fn);

  /// Fires when the session dies (transport closed). Callbacks persist
  /// across rebind() and fire again on every subsequent death.
  void on_closed(std::function<void(const Error&)> fn);

  /// Re-establishes the session on a fresh transport (a respawned
  /// agent): resets framing and hello state and starts a new capability
  /// exchange. Pending retryable RPCs re-send on the new session.
  void rebind(std::shared_ptr<TransportEndpoint> transport);

  /// Sends <rpc><operation.../></rpc>; `cb` receives the rpc-reply body
  /// (the <rpc-reply> element) or an Error decoded from <rpc-error>.
  void rpc(std::unique_ptr<xml::Element> operation, ReplyCallback cb);

  /// Same, with an explicit reliability envelope.
  void rpc(std::unique_ptr<xml::Element> operation, const RpcOptions& options,
           ReplyCallback cb);

  /// Default options applied by the two-argument rpc() overload.
  void set_default_rpc_options(const RpcOptions& options) { default_options_ = options; }
  const RpcOptions& default_rpc_options() const { return default_options_; }

  /// Reconfigures the circuit breaker (threshold <= 0 disables).
  void set_circuit_breaker(const CircuitBreakerOptions& options);
  bool circuit_open() const;

  /// Receives asynchronous <notification> events (the element passed is
  /// the event payload, i.e. the first non-eventTime child).
  using NotificationCallback = std::function<void(const xml::Element& event)>;
  void on_notification(NotificationCallback cb) { notification_cb_ = std::move(cb); }

  std::uint64_t notifications_received() const { return notifications_; }

  std::uint64_t rpcs_sent() const { return next_message_id_ - 1; }
  std::size_t pending_rpcs() const { return pending_.size(); }
  std::uint64_t rpc_timeouts() const { return timeouts_; }
  std::uint64_t rpc_retries() const { return retries_; }

 private:
  /// One logical RPC, shared across its send attempts.
  struct RetryState {
    std::unique_ptr<xml::Element> operation;  // cloned per attempt
    RpcOptions options;
    int attempts_made = 0;
    ReplyCallback cb;
  };

  /// Outstanding attempt: retry state + send time/span for RTT metrics.
  struct PendingRpc {
    std::shared_ptr<RetryState> retry;
    SimTime sent_at = 0;
    std::uint64_t span_id = 0;
    EventHandle timeout;
  };

  void wire_transport();
  void on_bytes(std::string bytes);
  void handle_message(const std::string& message);
  void handle_transport_closed();
  void send_attempt(std::shared_ptr<RetryState> retry);
  void retry_or_fail(std::shared_ptr<RetryState> retry, Error error);
  SimDuration backoff_for(const RetryState& retry);
  void breaker_success();
  void breaker_failure();
  EventScheduler* scheduler() const { return transport_ ? transport_->scheduler() : nullptr; }

  std::shared_ptr<TransportEndpoint> transport_;
  FrameReader reader_;
  SessionState state_ = SessionState::kConnecting;
  std::vector<std::string> server_capabilities_;
  std::vector<std::function<void()>> established_callbacks_;
  std::vector<std::function<void(const Error&)>> closed_callbacks_;
  std::uint64_t next_message_id_ = 1;
  std::map<std::string, PendingRpc> pending_;
  NotificationCallback notification_cb_;
  std::uint64_t notifications_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t retries_ = 0;
  RpcOptions default_options_;
  CircuitBreakerOptions breaker_;
  int consecutive_failures_ = 0;
  SimTime breaker_open_until_ = 0;
  bool breaker_half_open_probe_ = false;
  /// When the in-flight half-open probe is considered lost (one cooldown
  /// window after it was sent); a wedged probe past this no longer blocks.
  SimTime breaker_probe_expires_ = 0;
  Rng jitter_rng_{0x5eedULL};
  // Liveness guard for timer callbacks: scheduled lambdas hold a weak_ptr
  // and become no-ops once the client is destroyed.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  obs::Counter* m_rpcs_;
  obs::Counter* m_timeouts_;
  obs::Counter* m_retries_;
  obs::Counter* m_closed_;
  obs::Counter* m_breaker_open_;
  obs::BoundedHistogram* m_rtt_us_;
  Logger log_{"netconf.client"};
};

/// Builds the <hello> message with the given capabilities.
std::string build_hello(const std::vector<std::string>& capabilities);

}  // namespace escape::netconf
