# Empty compiler generated dependencies file for netemu_test.
# This may be replaced when dependencies are built.
