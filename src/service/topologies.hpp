// Parametric topology generators (the canned testbeds of the MiniEdit
// workflow) and Graphviz exports for topologies and service graphs.
#pragma once

#include <string>

#include "service/formats.hpp"

namespace escape::service::topologies {

/// sap1 - s1 - s2 - ... - sN - sap2, one container per switch.
TopologySpec linear(int switches, double container_cpu = 1.0,
                    std::uint64_t core_bw_bps = 1'000'000'000,
                    SimDuration link_delay = 100 * timeunit::kMicrosecond);

/// One core switch, `leaves` edge switches each with a container and a
/// host ("sapN").
TopologySpec star(int leaves, double container_cpu = 1.0);

/// `switches` in a ring, container per switch, two SAPs on opposite
/// sides.
TopologySpec ring(int switches, double container_cpu = 1.0);

/// Graphviz dot of a topology (hosts=ellipses, switches=boxes,
/// containers=3D boxes; labels carry link bw/delay).
std::string to_dot(const TopologySpec& spec);

/// Graphviz dot of a service graph (SAPs=ellipses, VNFs=boxes; edges
/// labelled with bandwidth requirements).
std::string to_dot(const sg::ServiceGraph& graph);

}  // namespace escape::service::topologies
