// Sources, sinks, counters and classification elements.
#include <cctype>

#include "click/elements.hpp"
#include "click/router.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace escape::click {

namespace {

Logger g_log{"click.elements"};

}  // namespace

Status PacketTemplate::load(const ConfigArgs& args) {
  proto_.reset();  // header fields may change below; rebuild on next make()
  if (auto v = args.keyword("SRC_IP")) {
    auto a = net::Ipv4Addr::parse(*v);
    if (!a) return make_error("click.config.bad-arg", "invalid SRC_IP: " + *v);
    ip_src = *a;
  }
  if (auto v = args.keyword("DST_IP")) {
    auto a = net::Ipv4Addr::parse(*v);
    if (!a) return make_error("click.config.bad-arg", "invalid DST_IP: " + *v);
    ip_dst = *a;
  }
  if (auto v = args.keyword_u64("SPORT")) sport = static_cast<std::uint16_t>(*v);
  if (auto v = args.keyword_u64("DPORT")) dport = static_cast<std::uint16_t>(*v);
  if (auto v = args.keyword("SRC_ETH")) {
    auto m = net::MacAddr::parse(*v);
    if (!m) return make_error("click.config.bad-arg", "invalid SRC_ETH: " + *v);
    eth_src = *m;
  }
  if (auto v = args.keyword("DST_ETH")) {
    auto m = net::MacAddr::parse(*v);
    if (!m) return make_error("click.config.bad-arg", "invalid DST_ETH: " + *v);
    eth_dst = *m;
  }
  return ok_status();
}

Packet PacketTemplate::make(std::size_t length, std::uint64_t seq, SimTime now) const {
  if (!proto_ || proto_length_ != length) {
    proto_ = net::make_udp_packet(eth_src, eth_dst, ip_src, ip_dst, sport, dport, length);
    proto_length_ = length;
  }
  // Copy the prototype bytes into a recycled buffer instead of encoding
  // headers (and allocating) per packet.
  Packet p = net::default_packet_pool().acquire_copy(*proto_);
  p.set_seq(seq);
  p.set_timestamp(now);
  return p;
}

// --- Discard -------------------------------------------------------------------

Discard::Discard() {
  declare_ports({PortMode::kPush}, {});
  add_read_handler("count", [this] { return std::to_string(count_); });
}

void Discard::push(int, Packet&& p) {
  ++count_;
  net::default_packet_pool().recycle(std::move(p));
}

void Discard::push_batch(int, PacketBatch&& batch) {
  count_ += batch.size();
  net::default_packet_pool().recycle(std::move(batch));
}

// --- InfiniteSource -------------------------------------------------------------

InfiniteSource::InfiniteSource() {
  declare_ports({}, {PortMode::kPush});
  add_read_handler("count", [this] { return std::to_string(emitted_); });
}

Status InfiniteSource::configure(const ConfigArgs& args) {
  if (auto v = args.keyword_u64("LENGTH")) length_ = static_cast<std::size_t>(*v);
  if (auto v = args.keyword_u64("LIMIT")) limit_ = *v;
  if (auto v = args.keyword_u64("BURST")) burst_ = *v;
  if (auto v = args.keyword_u64("INTERVAL")) interval_ = *v;
  return tmpl_.load(args);
}

Status InfiniteSource::initialize(Router& router) {
  task_ = std::make_unique<Task>(&router, [this] { return run_once(); });
  task_->reschedule(0);
  return ok_status();
}

Packet InfiniteSource::make_packet() {
  return tmpl_.make(length_, emitted_, router()->scheduler().now());
}

std::optional<SimDuration> InfiniteSource::run_once() {
  for (std::uint64_t i = 0; i < burst_; ++i) {
    if (limit_ && emitted_ >= limit_) return std::nullopt;
    Packet p = make_packet();
    ++emitted_;
    output_push(0, std::move(p));
  }
  return router()->scale_delay(interval_);
}

// --- RatedSource -----------------------------------------------------------------

RatedSource::RatedSource() {
  declare_ports({}, {PortMode::kPush});
  add_read_handler("count", [this] { return std::to_string(emitted_); });
  add_read_handler("rate", [this] { return std::to_string(rate_); });
}

Status RatedSource::configure(const ConfigArgs& args) {
  if (auto v = args.keyword("RATE")) {
    auto r = strings::parse_scaled_u64(*v);
    if (!r || *r == 0) return make_error("click.config.bad-arg", "invalid RATE: " + *v);
    rate_ = *r;
  } else if (auto p = args.positional(0)) {
    auto r = strings::parse_scaled_u64(*p);
    if (!r || *r == 0) return make_error("click.config.bad-arg", "invalid rate: " + *p);
    rate_ = *r;
  }
  if (auto v = args.keyword_u64("LENGTH")) length_ = static_cast<std::size_t>(*v);
  if (auto v = args.keyword_u64("LIMIT")) limit_ = *v;
  return tmpl_.load(args);
}

Status RatedSource::initialize(Router& router) {
  task_ = std::make_unique<Task>(&router, [this] { return run_once(); });
  task_->reschedule(0);
  return ok_status();
}

std::optional<SimDuration> RatedSource::run_once() {
  if (limit_ && emitted_ >= limit_) return std::nullopt;
  Packet p = tmpl_.make(length_, emitted_, router()->scheduler().now());
  ++emitted_;
  output_push(0, std::move(p));
  // One packet per 1/rate seconds.
  return timeunit::kSecond / rate_;
}

// --- TimedSource -----------------------------------------------------------------

TimedSource::TimedSource() {
  declare_ports({}, {PortMode::kPush});
  add_read_handler("count", [this] { return std::to_string(emitted_); });
}

Status TimedSource::configure(const ConfigArgs& args) {
  if (auto v = args.keyword_u64("INTERVAL")) interval_ = *v;
  if (auto v = args.keyword_u64("LENGTH")) length_ = static_cast<std::size_t>(*v);
  if (auto v = args.keyword_u64("LIMIT")) limit_ = *v;
  return tmpl_.load(args);
}

Status TimedSource::initialize(Router& router) {
  task_ = std::make_unique<Task>(&router, [this]() -> std::optional<SimDuration> {
    if (limit_ && emitted_ >= limit_) return std::nullopt;
    Packet p = tmpl_.make(length_, emitted_, this->router()->scheduler().now());
    ++emitted_;
    output_push(0, std::move(p));
    return interval_;
  });
  task_->reschedule(interval_);
  return ok_status();
}

// --- Counter ---------------------------------------------------------------------

Counter::Counter() {
  add_read_handler("count", [this] { return std::to_string(count_); });
  add_read_handler("byte_count", [this] { return std::to_string(bytes_); });
  add_read_handler("rate", [this] { return strings::format("%.1f", last_rate_); });
  add_write_handler("reset", [this](std::string_view) {
    count_ = bytes_ = window_count_ = 0;
    last_rate_ = 0;
    return ok_status();
  });
}

Counter::Verdict Counter::process(Packet& p) {
  ++count_;
  bytes_ += p.size();
  const SimTime now = router() ? router()->scheduler().now() : 0;
  if (now - window_start_ >= timeunit::kSecond) {
    last_rate_ = static_cast<double>(window_count_) /
                 (static_cast<double>(now - window_start_) / timeunit::kSecond);
    window_start_ = now;
    window_count_ = 0;
  }
  ++window_count_;
  return {true, 0};
}

void Counter::push_batch(int, PacketBatch&& batch) {
  if (batch.empty()) return;
  // Same arithmetic as process() once per packet: every packet of a
  // batch shares one arrival instant, so at most the first packet can
  // cross the rate window boundary and the rest just increment.
  count_ += batch.size();
  bytes_ += batch.total_bytes();
  const SimTime now = router() ? router()->scheduler().now() : 0;
  if (now - window_start_ >= timeunit::kSecond) {
    last_rate_ = static_cast<double>(window_count_) /
                 (static_cast<double>(now - window_start_) / timeunit::kSecond);
    window_start_ = now;
    window_count_ = 0;
  }
  window_count_ += batch.size();
  output_push_batch(0, std::move(batch));
}

// --- Print -----------------------------------------------------------------------

Status Print::configure(const ConfigArgs& args) {
  if (auto v = args.keyword_or_positional("LABEL", 0)) label_ = *v;
  return ok_status();
}

Print::Verdict Print::process(Packet& p) {
  g_log.info(label_, ": ", p.to_string());
  return {true, 0};
}

// --- Tee -------------------------------------------------------------------------

Tee::Tee() { declare_ports({PortMode::kPush}, {PortMode::kPush, PortMode::kPush}); }

Status Tee::configure(const ConfigArgs& args) {
  std::uint64_t n = 2;
  if (auto v = args.keyword_or_positional("N", 0)) {
    auto parsed = strings::parse_u64(*v);
    if (!parsed || *parsed == 0 || *parsed > 64) {
      return make_error("click.config.bad-arg", "Tee output count must be 1..64");
    }
    n = *parsed;
  }
  declare_ports({PortMode::kPush}, std::vector<PortMode>(n, PortMode::kPush));
  return ok_status();
}

void Tee::push(int, Packet&& p) { output_push_all(std::move(p)); }

void Tee::push_batch(int, PacketBatch&& batch) { output_push_all_batch(std::move(batch)); }

// --- Switch ----------------------------------------------------------------------

Switch::Switch() {
  declare_ports({PortMode::kPush}, {PortMode::kPush, PortMode::kPush});
  add_read_handler("switch", [this] { return std::to_string(current_); });
  add_write_handler("switch", [this](std::string_view v) -> Status {
    auto n = strings::parse_i64(v);
    if (!n || *n < -1 || *n >= n_outputs()) {
      return make_error("click.handler.bad-value", "switch port out of range");
    }
    current_ = static_cast<int>(*n);
    return ok_status();
  });
}

Status Switch::configure(const ConfigArgs& args) {
  std::uint64_t n = 2;
  if (auto v = args.keyword_u64("N")) n = *v;
  if (n == 0 || n > 64) return make_error("click.config.bad-arg", "Switch N must be 1..64");
  declare_ports({PortMode::kPush}, std::vector<PortMode>(n, PortMode::kPush));
  if (auto v = args.keyword_or_positional("PORT", 0)) {
    auto p = strings::parse_i64(*v);
    if (!p || *p < -1 || *p >= static_cast<std::int64_t>(n)) {
      return make_error("click.config.bad-arg", "Switch initial port out of range");
    }
    current_ = static_cast<int>(*p);
  }
  return ok_status();
}

void Switch::push(int, Packet&& p) {
  if (current_ >= 0) output_push(current_, std::move(p));
}

void Switch::push_batch(int, PacketBatch&& batch) {
  if (current_ >= 0) output_push_batch(current_, std::move(batch));
}

// --- RoundRobinSwitch --------------------------------------------------------------

RoundRobinSwitch::RoundRobinSwitch() {
  declare_ports({PortMode::kPush}, {PortMode::kPush, PortMode::kPush});
}

Status RoundRobinSwitch::configure(const ConfigArgs& args) {
  std::uint64_t n = 2;
  if (auto v = args.keyword_or_positional("N", 0)) {
    auto parsed = strings::parse_u64(*v);
    if (!parsed || *parsed == 0 || *parsed > 64) {
      return make_error("click.config.bad-arg", "RoundRobinSwitch N must be 1..64");
    }
    n = *parsed;
  }
  declare_ports({PortMode::kPush}, std::vector<PortMode>(n, PortMode::kPush));
  return ok_status();
}

void RoundRobinSwitch::push(int, Packet&& p) {
  const int port = static_cast<int>(next_ % static_cast<std::size_t>(n_outputs()));
  ++next_;
  output_push(port, std::move(p));
}

// --- Paint / PaintSwitch / CheckPaint -----------------------------------------------

Status Paint::configure(const ConfigArgs& args) {
  if (auto v = args.keyword_or_positional("COLOR", 0)) {
    auto c = strings::parse_u64(*v);
    if (!c || *c > 255) return make_error("click.config.bad-arg", "COLOR must be 0..255");
    color_ = static_cast<std::uint8_t>(*c);
  }
  return ok_status();
}

Paint::Verdict Paint::process(Packet& p) {
  p.set_paint(color_);
  return {true, 0};
}

PaintSwitch::PaintSwitch() {
  declare_ports({PortMode::kPush}, {PortMode::kPush, PortMode::kPush});
}

Status PaintSwitch::configure(const ConfigArgs& args) {
  std::uint64_t n = 2;
  if (auto v = args.keyword_or_positional("N", 0)) {
    auto parsed = strings::parse_u64(*v);
    if (!parsed || *parsed == 0 || *parsed > 256) {
      return make_error("click.config.bad-arg", "PaintSwitch N must be 1..256");
    }
    n = *parsed;
  }
  declare_ports({PortMode::kPush}, std::vector<PortMode>(n, PortMode::kPush));
  return ok_status();
}

void PaintSwitch::push(int, Packet&& p) {
  int port = p.paint();
  if (port >= n_outputs()) port = n_outputs() - 1;
  output_push(port, std::move(p));
}

void PaintSwitch::push_batch(int, PacketBatch&& batch) {
  RunEmitter out(*this, std::move(batch));
  for (std::size_t i = 0; i < out.size(); ++i) {
    int port = out[i].paint();
    if (port >= n_outputs()) port = n_outputs() - 1;
    out.keep(i, port);
  }
}

CheckPaint::CheckPaint() {
  declare_ports({PortMode::kPush}, {PortMode::kPush, PortMode::kPush});
}

Status CheckPaint::configure(const ConfigArgs& args) {
  if (auto v = args.keyword_or_positional("COLOR", 0)) {
    auto c = strings::parse_u64(*v);
    if (!c || *c > 255) return make_error("click.config.bad-arg", "COLOR must be 0..255");
    color_ = static_cast<std::uint8_t>(*c);
  }
  return ok_status();
}

void CheckPaint::push(int, Packet&& p) {
  output_push(p.paint() == color_ ? 0 : 1, std::move(p));
}

void CheckPaint::push_batch(int, PacketBatch&& batch) {
  RunEmitter out(*this, std::move(batch));
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.keep(i, out[i].paint() == color_ ? 0 : 1);
  }
}

// --- Classifier ---------------------------------------------------------------------

Classifier::Classifier() { declare_ports({PortMode::kPush}, {PortMode::kPush}); }

Status Classifier::configure(const ConfigArgs& args) {
  patterns_.clear();
  for (const auto& [key, value] : args.all()) {
    if (!key.empty()) return make_error("click.config.bad-arg", "Classifier takes patterns only");
    std::string_view v = strings::trim(value);
    Pattern pat;
    if (v == "-") {
      pat.catch_all = true;
    } else {
      auto slash = v.find('/');
      if (slash == std::string_view::npos) {
        return make_error("click.config.bad-arg", "Classifier pattern must be off/hex or '-'");
      }
      auto off = strings::parse_u64(v.substr(0, slash));
      if (!off) return make_error("click.config.bad-arg", "bad Classifier offset");
      pat.offset = static_cast<std::size_t>(*off);
      std::string_view hex = v.substr(slash + 1);
      if (hex.empty() || hex.size() % 2 != 0) {
        return make_error("click.config.bad-arg", "Classifier hex value must be even length");
      }
      for (std::size_t i = 0; i < hex.size(); i += 2) {
        unsigned byte = 0;
        for (int j = 0; j < 2; ++j) {
          char c = hex[i + static_cast<std::size_t>(j)];
          byte <<= 4;
          if (c >= '0' && c <= '9') byte |= static_cast<unsigned>(c - '0');
          else if (c >= 'a' && c <= 'f') byte |= static_cast<unsigned>(c - 'a' + 10);
          else if (c >= 'A' && c <= 'F') byte |= static_cast<unsigned>(c - 'A' + 10);
          else return make_error("click.config.bad-arg", "bad hex digit in Classifier");
        }
        pat.value.push_back(static_cast<std::uint8_t>(byte));
      }
    }
    patterns_.push_back(std::move(pat));
  }
  if (patterns_.empty()) {
    return make_error("click.config.bad-arg", "Classifier needs at least one pattern");
  }
  declare_ports({PortMode::kPush}, std::vector<PortMode>(patterns_.size(), PortMode::kPush));
  return ok_status();
}

int Classifier::classify(const Packet& p) const {
  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    const Pattern& pat = patterns_[i];
    if (pat.catch_all) return static_cast<int>(i);
    if (pat.offset + pat.value.size() > p.size()) continue;
    if (std::equal(pat.value.begin(), pat.value.end(),
                   p.bytes().begin() + static_cast<long>(pat.offset))) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void Classifier::push(int, Packet&& p) {
  const int port = classify(p);
  if (port >= 0) output_push(port, std::move(p));
  // No match: drop (Click semantics).
}

void Classifier::push_batch(int, PacketBatch&& batch) {
  RunEmitter out(*this, std::move(batch));
  for (std::size_t i = 0; i < out.size(); ++i) {
    const int port = classify(out[i]);
    if (port >= 0) out.keep(i, port);
  }
}

// --- IPClassifier -------------------------------------------------------------------

IPClassifier::IPClassifier() {
  declare_ports({PortMode::kPush}, {PortMode::kPush});
  add_read_handler("no_match_drops", [this] { return std::to_string(no_match_drops_); });
}

Status IPClassifier::configure(const ConfigArgs& args) {
  rules_.clear();
  for (const auto& [key, value] : args.all()) {
    std::string expr_text = key.empty() ? value : key + " " + value;
    std::string_view t = strings::trim(expr_text);
    Rule rule;
    if (t == "-") {
      rule.catch_all = true;
      rules_.push_back(std::move(rule));
      continue;
    }
    auto compiled = FilterExpr::compile(t);
    if (!compiled.ok()) return compiled.error();
    rule.expr = std::move(*compiled);
    rules_.push_back(std::move(rule));
  }
  if (rules_.empty()) {
    return make_error("click.config.bad-arg", "IPClassifier needs at least one expression");
  }
  declare_ports({PortMode::kPush}, std::vector<PortMode>(rules_.size(), PortMode::kPush));
  return ok_status();
}

Status IPClassifier::initialize(Router& router) {
  bool tuple_only = true;
  for (const Rule& r : rules_) tuple_only = tuple_only && (r.catch_all || r.expr.tuple_only());
  cache_.attach(router, tuple_only);
  // Compile the rule list into the per-protocol-leaf dispatch; the
  // linear walk remains only as the pre-initialize fallback.
  std::vector<ClassifierTree::RuleSpec> specs;
  specs.reserve(rules_.size());
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    specs.push_back({static_cast<int>(i), rules_[i].catch_all ? nullptr : &rules_[i].expr});
  }
  tree_.compile(specs, /*miss_verdict=*/-1);
  add_read_handler("flow_cache_hits", [this] { return std::to_string(cache_.hits()); });
  add_read_handler("tree_residual_rules",
                   [this] { return std::to_string(tree_.residual_rules()); });
  return ok_status();
}

int IPClassifier::classify(const ClassifyCtx& ctx) const {
  if (tree_.compiled()) return tree_.classify(ctx);
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].catch_all || rules_[i].expr.matches(ctx)) return static_cast<int>(i);
  }
  return -1;
}

int IPClassifier::classify_cached(const Packet& p) {
  // Per-flow verdict first (valid for the whole flow), tree dispatch as
  // the fallback, memoized into the flow's state block.
  if (auto v = cache_.cached()) return *v;
  const int port = classify(ClassifyCtx::from_packet(p));
  cache_.store(port);
  return port;
}

void IPClassifier::push(int, Packet&& p) {
  const int port = classify_cached(p);
  if (port >= 0) {
    output_push(port, std::move(p));
    return;
  }
  ++no_match_drops_;
}

void IPClassifier::push_batch(int, PacketBatch&& batch) {
  RunEmitter out(*this, std::move(batch));
  // Flow-run verdict cache (see IPFilter::push_batch).
  const Packet* prev = nullptr;
  int prev_port = -1;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const Packet& p = out[i];
    const int port =
        (prev && classify_equivalent(*prev, p)) ? prev_port : classify_cached(p);
    prev = &p;
    prev_port = port;
    if (port >= 0) {
      out.keep(i, port);
    } else {
      ++no_match_drops_;
    }
  }
}

// --- IPFilter ------------------------------------------------------------------------

IPFilter::IPFilter() {
  declare_ports({PortMode::kPush}, {PortMode::kPush, PortMode::kPush});
  add_read_handler("matched", [this] { return std::to_string(matched_); });
  add_read_handler("rejected", [this] { return std::to_string(rejected_); });
}

Status IPFilter::configure(const ConfigArgs& args) {
  std::string text;
  for (const auto& [key, value] : args.all()) {
    if (!text.empty()) text += ", ";
    text += key.empty() ? value : key + " " + value;
  }
  auto compiled = FilterExpr::compile(text);
  if (!compiled.ok()) return compiled.error();
  expr_ = std::move(*compiled);
  return ok_status();
}

Status IPFilter::initialize(Router& router) {
  cache_.attach(router, expr_ && expr_->tuple_only());
  add_read_handler("flow_cache_hits", [this] { return std::to_string(cache_.hits()); });
  return ok_status();
}

bool IPFilter::match_cached(const Packet& p) {
  if (auto v = cache_.cached()) return *v != 0;
  const bool hit = expr_ && expr_->matches(p);
  cache_.store(hit ? 1 : 0);
  return hit;
}

void IPFilter::push(int, Packet&& p) {
  const bool hit = match_cached(p);
  if (hit) {
    ++matched_;
    output_push(0, std::move(p));
  } else {
    ++rejected_;
    output_push(1, std::move(p));  // dropped if unconnected
  }
}

void IPFilter::push_batch(int, PacketBatch&& batch) {
  RunEmitter out(*this, std::move(batch));
  // Flow-run verdict cache: byte-identical headers classify identically,
  // so a run of one flow evaluates the expression once.
  const Packet* prev = nullptr;
  bool prev_hit = false;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const Packet& p = out[i];
    const bool hit = (prev && classify_equivalent(*prev, p)) ? prev_hit : match_cached(p);
    prev = &p;
    prev_hit = hit;
    if (hit) {
      ++matched_;
      out.keep(i, 0);
    } else {
      ++rejected_;
      out.keep(i, 1);
    }
  }
}

}  // namespace escape::click
