# Empty dependencies file for escape_xml.
# This may be replaced when dependencies are built.
