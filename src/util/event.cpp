#include "util/event.hpp"

#include <stdexcept>

namespace escape {

void EventHandle::cancel() {
  if (state_ && !state_->done) {
    state_->done = true;
    if (state_->live) --*state_->live;
  }
}

EventHandle EventScheduler::schedule(SimDuration delay, Callback cb) {
  return schedule_at(now_ + delay, std::move(cb));
}

EventHandle EventScheduler::schedule_at(SimTime when, Callback cb) {
  if (when < now_) {
    throw std::logic_error("EventScheduler: cannot schedule into the past");
  }
  auto state = std::make_shared<detail::EventState>();
  state->live = live_;
  queue_.push(Entry{when, next_seq_++, std::move(cb), state});
  ++*live_;
  return EventHandle{std::move(state)};
}

bool EventScheduler::pop_and_run() {
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    if (entry.state->done) continue;  // cancelled; counter already adjusted
    entry.state->done = true;
    --*live_;
    now_ = entry.when;
    ++executed_;
    entry.cb();
    return true;
  }
  return false;
}

bool EventScheduler::step() { return pop_and_run(); }

std::size_t EventScheduler::run(std::size_t max_events) {
  std::size_t ran = 0;
  while (ran < max_events && pop_and_run()) ++ran;
  return ran;
}

std::size_t EventScheduler::run_until(SimTime deadline, std::size_t max_events) {
  std::size_t ran = 0;
  while (ran < max_events) {
    while (!queue_.empty() && queue_.top().state->done) queue_.pop();
    if (queue_.empty() || queue_.top().when > deadline) break;
    if (pop_and_run()) ++ran;
  }
  if (now_ < deadline) now_ = deadline;
  return ran;
}

}  // namespace escape
