// The OpenFlow switch datapath (the Open vSwitch stand-in): ports, flow
// table, packet buffering, and the control-channel state machine.
//
// Transport-agnostic: packets leave through per-port transmit callbacks
// installed by the network emulator, and control messages travel through
// a ControlChannel whose implementation (in-memory, delayed, ...) is
// provided by the controller platform.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "net/packet_batch.hpp"
#include "obs/metrics.hpp"
#include "openflow/flow_table.hpp"
#include "openflow/messages.hpp"
#include "util/event.hpp"
#include "util/logging.hpp"

namespace escape::openflow {

/// The switch's view of its control channel.
class ControlChannel {
 public:
  virtual ~ControlChannel() = default;
  /// Sends a message toward the controller.
  virtual void to_controller(Message message) = 0;
  virtual bool connected() const = 0;
};

/// Behaviour of the datapath while its control channel is dead.
enum class FailMode : std::uint8_t {
  kSecure,      // drop table-miss packets (installed flows keep forwarding)
  kStandalone,  // fall back to local L2 learning, like OVS fail-mode=standalone
};

std::string_view fail_mode_name(FailMode mode);

/// Switch-side control-channel liveness: periodic EchoRequest keepalives
/// with a miss threshold. When `miss_threshold` echo probes are
/// outstanding unanswered, the channel is declared dead and the switch
/// enters `fail_mode` until controller traffic is seen again.
struct SwitchLiveness {
  bool enabled = true;
  SimDuration echo_interval = timeunit::kSecond;
  int miss_threshold = 3;
  FailMode fail_mode = FailMode::kSecure;
};

class OpenFlowSwitch {
 public:
  using TxCallback = std::function<void(net::Packet&&)>;

  OpenFlowSwitch(DatapathId dpid, EventScheduler& scheduler);

  DatapathId datapath_id() const { return dpid_; }

  /// The shard queue driving this datapath's timers and timeouts.
  EventScheduler& scheduler() { return *scheduler_; }

  /// Re-points the datapath at another shard's queue
  /// (Network::partition); must happen before connect() so no echo or
  /// sweep timer is pending on the old queue.
  void rebind_scheduler(EventScheduler& scheduler) { scheduler_ = &scheduler; }

  /// Adds a port; `tx` transmits a frame out of that port.
  void add_port(std::uint16_t port_no, std::string name, net::MacAddr hw_addr, TxCallback tx);
  void remove_port(std::uint16_t port_no);
  std::vector<PortInfo> ports() const;

  /// Attaches the control channel and sends the OF handshake (Hello).
  void connect(std::shared_ptr<ControlChannel> channel);

  /// True while the channel exists AND the echo state machine considers
  /// it live. A half-open channel (object alive, peer gone) flips to
  /// disconnected once `miss_threshold` echo probes go unanswered.
  bool connected() const { return channel_ && channel_->connected() && channel_live_; }

  /// Configures the keepalive/fail-mode policy. Takes effect on the next
  /// echo tick; call before connect() for deterministic behaviour.
  void set_liveness(SwitchLiveness liveness);
  const SwitchLiveness& liveness() const { return liveness_; }

  /// The echo state machine's verdict alone (channel object ignored).
  bool channel_live() const { return channel_live_; }

  /// Simulates a switch reboot that loses all soft state: the flow
  /// table, packet buffers and standalone MAC table are wiped, and a
  /// fresh OF handshake (Hello) is initiated on the (surviving) channel
  /// so the controller can detect the restart and resync.
  void restart();

  /// Datapath entry: a frame arrives on `port_no`.
  void receive(std::uint16_t port_no, net::Packet&& packet);

  /// Burst entry: frames arriving back-to-back on one port. The table
  /// lookup runs once per flow run (consecutive packets with the same
  /// flow key reuse the previous entry and its actions, with counters
  /// updated as if looked up per packet).
  void receive_batch(std::uint16_t port_no, net::PacketBatch&& batch);

  /// Control messages arriving from the controller.
  void handle_message(const Message& message);

  FlowTable& flow_table() { return table_; }
  const FlowTable& flow_table() const { return table_; }

  /// Port counters (for port-stats replies and tests).
  PortStatsEntry port_stats(std::uint16_t port_no) const;

  /// Runs one expiry sweep; scheduled periodically once connected.
  void sweep_expired();

  std::uint64_t packet_ins_sent() const { return packet_ins_; }
  /// Table-miss packets forwarded locally while in fail-standalone mode.
  std::uint64_t standalone_forwards() const { return standalone_forwards_; }
  /// Table-miss packets dropped while in fail-secure mode.
  std::uint64_t failmode_drops() const { return failmode_drops_; }

 private:
  struct Port {
    PortInfo info;
    TxCallback tx;
    PortStatsEntry stats;
  };

  void handle_table_miss(net::Packet&& packet, std::uint16_t in_port,
                         const net::FlowKey& key);
  /// Local L2-learning forwarding used in fail-standalone mode.
  void standalone_forward(net::Packet&& packet, std::uint16_t in_port,
                          const net::FlowKey& key);
  /// One keepalive round: declare the channel dead on miss-threshold,
  /// then send the next EchoRequest probe (probing continues while dead
  /// so a restored channel is detected within one interval).
  void echo_tick();
  /// Any controller->switch message proves the channel passes traffic:
  /// clears outstanding echo misses and leaves fail mode.
  void note_controller_activity();
  void apply_actions(const ActionList& actions, net::Packet&& packet, std::uint16_t in_port,
                     bool allow_packet_in);
  void transmit(std::uint16_t port_no, net::Packet&& packet);
  /// Emits a copy per eligible port; when `consume` is set the last
  /// eligible port receives the original instead of a clone.
  void flood(net::Packet& packet, std::uint16_t in_port, bool include_in_port, bool consume);
  void send_packet_in(net::Packet&& packet, std::uint16_t in_port, PacketInReason reason);
  std::uint32_t buffer_packet(const net::Packet& packet);
  /// Closes the packet-in RTT measurement for a buffer the controller
  /// just referenced (flow-mod or packet-out).
  void record_buffer_release(std::uint32_t buffer_id);
  /// Applies a flow-mod's actions to its referenced buffered packet.
  void release_flow_mod_buffer(const FlowMod& mod);

  DatapathId dpid_;
  EventScheduler* scheduler_;
  std::map<std::uint16_t, Port> ports_;
  FlowTable table_;
  std::shared_ptr<ControlChannel> channel_;

  // OF 1.0-style packet buffering for packet-in / packet-out.
  static constexpr std::uint32_t kNumBuffers = 256;
  std::uint32_t next_buffer_id_ = 0;
  std::map<std::uint32_t, net::Packet> buffers_;
  // Virtual send time + trace span of each outstanding packet-in, so the
  // controller's reaction (flow-mod / packet-out releasing the buffer)
  // yields a measurable round-trip latency.
  std::map<std::uint32_t, std::pair<SimTime, std::uint64_t>> buffer_sent_at_;

  // Control-channel liveness (switch side of the echo state machine).
  SwitchLiveness liveness_;
  bool channel_live_ = false;  // no channel attached yet
  std::uint32_t next_echo_payload_ = 1;
  std::map<std::uint32_t, SimTime> echo_outstanding_;  // payload -> sent at
  EventHandle echo_timer_;
  // Fail-standalone soft state: locally learned MAC -> port, cleared on
  // channel revival and on restart.
  std::map<net::MacAddr, std::uint16_t> standalone_macs_;

  std::uint64_t packet_ins_ = 0;
  std::uint64_t standalone_forwards_ = 0;
  std::uint64_t failmode_drops_ = 0;
  obs::Counter* m_table_hits_;
  obs::Counter* m_table_misses_;
  obs::Counter* m_packet_ins_;
  obs::Counter* m_channel_down_;
  obs::BoundedHistogram* m_packet_in_rtt_us_;
  obs::BoundedHistogram* m_echo_rtt_ms_;
  EventHandle sweep_timer_;
  Logger log_{"openflow.switch"};
};

}  // namespace escape::openflow
