// Experiment E5: NETCONF management-plane cost.
//
// Measures the host-side processing cost of the management path: XML
// encode -> frame -> parse -> dispatch -> instrument -> reply, for each
// RPC type, plus the ablations called out in DESIGN.md (schema
// validation on the <get> path; raw XML parse/serialize baselines).
#include "bench_common.hpp"
#include <benchmark/benchmark.h>

#include "netconf/vnf_agent.hpp"

using namespace escape;
using namespace escape::netconf;

namespace {

constexpr const char* kMonitorConfig =
    "from :: FromDevice(DEVNAME in0);\n"
    "cnt :: Counter;\n"
    "to :: ToDevice(DEVNAME out0);\n"
    "from -> cnt -> to;\n";

struct Rig {
  EventScheduler sched;
  netemu::VnfContainer container{"c1", sched, 64.0, 256};
  std::unique_ptr<VnfAgent> agent;
  std::unique_ptr<VnfAgentClient> client;

  explicit Rig(int preloaded_vnfs = 0) {
    auto [s, c] = make_pipe(sched, 0);  // zero delay: measure processing only
    agent = std::make_unique<VnfAgent>(s, container);
    client = std::make_unique<VnfAgentClient>(c);
    sched.run();
    for (int i = 0; i < preloaded_vnfs; ++i) {
      (void)container.init_vnf("pre" + std::to_string(i), "monitor", kMonitorConfig, 0.05);
      (void)container.start_vnf("pre" + std::to_string(i));
    }
  }
};

}  // namespace

/// Full lifecycle RPC sequence per iteration (initiate/start/stop/remove).
static void BM_Netconf_VnfLifecycle(benchmark::State& state) {
  Rig rig;
  std::uint64_t n = 0;
  for (auto _ : state) {
    const std::string id = "v" + std::to_string(n++);
    bool done = false;
    rig.client->initiate_vnf(id, "monitor", kMonitorConfig, 0.01, [&](Status) {
      rig.client->start_vnf(id, [&](Status) {
        rig.client->stop_vnf(id, [&](Status) {
          rig.client->remove_vnf(id, [&](Status) { done = true; });
        });
      });
    });
    rig.sched.run();
    if (!done) state.SkipWithError("lifecycle did not complete");
  }
  state.SetItemsProcessed(state.iterations() * 4);  // RPCs
}
BENCHMARK(BM_Netconf_VnfLifecycle);

/// getVNFInfo against a container with N running VNFs (reply size grows).
static void BM_Netconf_GetVnfInfo(benchmark::State& state) {
  Rig rig(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    bool done = false;
    rig.client->get_vnf_info("pre0", [&](Result<netemu::VnfInfo> r) {
      benchmark::DoNotOptimize(r);
      done = true;
    });
    rig.sched.run();
    if (!done) state.SkipWithError("no reply");
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["vnfs_in_container"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Netconf_GetVnfInfo)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

/// <get>: full state tree including schema validation (the ablation pair
/// with get-config below, which skips handlers; and with the raw XML
/// baselines at the bottom).
static void BM_Netconf_GetWithValidation(benchmark::State& state) {
  Rig rig(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    bool done = false;
    rig.client->session().rpc(std::make_unique<xml::Element>("get"),
                              [&](Result<std::unique_ptr<xml::Element>> r) {
                                benchmark::DoNotOptimize(r);
                                done = true;
                              });
    rig.sched.run();
    if (!done) state.SkipWithError("no reply");
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["vnfs_in_container"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Netconf_GetWithValidation)->Arg(1)->Arg(16)->Arg(64);

static void BM_Netconf_GetConfigNoHandlers(benchmark::State& state) {
  Rig rig(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    bool done = false;
    rig.client->session().rpc(std::make_unique<xml::Element>("get-config"),
                              [&](Result<std::unique_ptr<xml::Element>> r) {
                                benchmark::DoNotOptimize(r);
                                done = true;
                              });
    rig.sched.run();
    if (!done) state.SkipWithError("no reply");
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["vnfs_in_container"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Netconf_GetConfigNoHandlers)->Arg(1)->Arg(16)->Arg(64);

// --- micro baselines: where does the time go? -------------------------------

static void BM_Xml_ParseRpc(benchmark::State& state) {
  const std::string text =
      "<rpc message-id=\"42\" xmlns=\"urn:ietf:params:xml:ns:netconf:base:1.0\">"
      "<initiateVNF xmlns=\"urn:escape:vnf\"><id>v1</id><type>monitor</type>"
      "<click-config>from :: FromDevice(DEVNAME in0); from -> Discard;</click-config>"
      "<cpu-share>0.100</cpu-share></initiateVNF></rpc>";
  for (auto _ : state) {
    auto doc = xml::parse(text);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_Xml_ParseRpc);

static void BM_Xml_SerializeStateTree(benchmark::State& state) {
  const int vnfs = static_cast<int>(state.range(0));
  xml::Element root("vnfs");
  for (int i = 0; i < vnfs; ++i) {
    auto& vnf = root.add_child("vnf");
    vnf.add_leaf("id", "v" + std::to_string(i));
    vnf.add_leaf("status", "RUNNING");
    for (int h = 0; h < 6; ++h) {
      auto& handler = vnf.add_child("handler");
      handler.add_leaf("name", "cnt.count");
      handler.add_leaf("value", "123456");
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(root.to_string());
  }
  state.counters["vnfs"] = vnfs;
}
BENCHMARK(BM_Xml_SerializeStateTree)->Arg(1)->Arg(16)->Arg(64);

static void BM_Yang_ValidateStateTree(benchmark::State& state) {
  const int vnfs = static_cast<int>(state.range(0));
  xml::Element root("vnfs");
  for (int i = 0; i < vnfs; ++i) {
    auto& vnf = root.add_child("vnf");
    vnf.add_leaf("id", "v" + std::to_string(i));
    vnf.add_leaf("status", "RUNNING");
    vnf.add_leaf("cpu-share", "0.050");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate(root, vnf_module_schema()));
  }
  state.counters["vnfs"] = vnfs;
}
BENCHMARK(BM_Yang_ValidateStateTree)->Arg(1)->Arg(16)->Arg(64);

ESCAPE_BENCH_MAIN("netconf");
