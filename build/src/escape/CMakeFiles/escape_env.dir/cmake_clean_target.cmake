file(REMOVE_RECURSE
  "libescape_env.a"
)
