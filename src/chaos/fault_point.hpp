// escape::chaos -- named fault points for systematic crash-site exploration.
//
// Control-plane code marks every injectable moment (RPC send, barrier,
// state hand-off, ledger commit, steering cut-over) with a call to
// chaos::hit("site.name", caps, ctx). When no FaultInjector is active the
// call is a pointer test and returns kNone. With an active injector:
//
//   * record mode  -- every hit is appended to a trace (site, per-site
//     occurrence, supported fault kinds, crash target), which is the
//     enumeration domain for the ChaosExplorer;
//   * inject mode  -- hits are matched against an armed FaultSchedule of
//     (site, occurrence) -> kind entries. kCrash synchronously invokes
//     the crash executor (the environment kills the site's container or
//     restarts its switch) and then lets the operation proceed so the
//     failure propagates through the real detection paths; kDrop tells
//     the site to fail the operation locally; kDelay tells it to defer
//     the operation by the spec's payload.
//
// Sites are only instrumented on the control shard (shard 0) of the
// sharded scheduler, so the process-global injector needs no locking and
// occurrence counting is deterministic for a fixed partition.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"
#include "util/time.hpp"

namespace escape::chaos {

enum class FaultKind : std::uint8_t { kNone, kCrash, kDrop, kDelay };

std::string_view fault_kind_name(FaultKind kind);
Result<FaultKind> fault_kind_from(std::string_view name);

// Capability bits a site declares at hit(): the enumerator only
// generates schedules the site can actually honor.
inline constexpr unsigned kCanCrash = 1u;
inline constexpr unsigned kCanDrop = 2u;
inline constexpr unsigned kCanDelay = 4u;

/// What a kCrash fault at this site takes down.
enum class TargetKind : std::uint8_t { kNone, kContainer, kSwitch };

struct SiteContext {
  TargetKind target_kind = TargetKind::kNone;
  std::string container;      // kContainer: the container to kill
  std::uint64_t dpid = 0;     // kSwitch: the switch to restart
  std::uint32_t chain_id = 0; // owning chain, 0 if none

  static SiteContext of_container(std::string name, std::uint32_t chain = 0) {
    SiteContext ctx;
    ctx.target_kind = name.empty() ? TargetKind::kNone : TargetKind::kContainer;
    ctx.container = std::move(name);
    ctx.chain_id = chain;
    return ctx;
  }
  static SiteContext of_switch(std::uint64_t dpid, std::uint32_t chain = 0) {
    SiteContext ctx;
    ctx.target_kind = TargetKind::kSwitch;
    ctx.dpid = dpid;
    ctx.chain_id = chain;
    return ctx;
  }
};

/// The injector's verdict for one hit.
struct Decision {
  FaultKind kind = FaultKind::kNone;
  SimDuration delay = 0;  // kDelay payload

  bool none() const { return kind == FaultKind::kNone; }
  bool drop() const { return kind == FaultKind::kDrop; }
  bool delayed() const { return kind == FaultKind::kDelay; }
};

/// One armed fault: fire `kind` at the `occurrence`-th hit of `site`
/// (0-based, counted per site across the whole episode).
struct FaultSpec {
  std::string site;
  std::uint64_t occurrence = 0;
  FaultKind kind = FaultKind::kDrop;
  SimDuration delay = 0;  // only meaningful for kDelay

  std::string to_string() const;
};

using FaultSchedule = std::vector<FaultSpec>;

/// One recorded hit from a clean (record-mode) episode.
struct TraceEntry {
  std::string site;
  std::uint64_t occurrence = 0;  // per-site index of this hit
  unsigned caps = 0;
  TargetKind target_kind = TargetKind::kNone;
  std::string container;
  std::uint64_t dpid = 0;
  std::uint32_t chain_id = 0;
};

class FaultInjector {
 public:
  enum class Mode { kRecord, kInject };

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;
  ~FaultInjector();

  /// The process-global injector consulted by chaos::hit(); nullptr when
  /// no chaos episode is running (the common case).
  static FaultInjector* active();
  /// Installs `injector` (nullptr disarms). Returns the previous one so
  /// nested scopes can restore it.
  static FaultInjector* activate(FaultInjector* injector);

  void start_recording();
  void arm(FaultSchedule schedule);
  void add_spec(FaultSpec spec);

  /// Bound by the episode driver: executes a kCrash decision against the
  /// environment (kill container / restart switch) before the site's
  /// operation proceeds.
  void set_crash_executor(std::function<void(const SiteContext&)> executor) {
    crash_ = std::move(executor);
  }

  Decision hit(std::string_view site, unsigned caps, const SiteContext& ctx);

  Mode mode() const { return mode_; }
  const std::vector<TraceEntry>& trace() const { return trace_; }
  const FaultSchedule& schedule() const { return schedule_; }
  /// Total hits observed this episode (all sites).
  std::uint64_t hits() const { return hits_; }
  /// Armed specs that actually fired.
  std::uint64_t fired() const { return fired_; }

 private:
  Mode mode_ = Mode::kRecord;
  std::map<std::string, std::uint64_t, std::less<>> counts_;
  std::vector<TraceEntry> trace_;
  FaultSchedule schedule_;
  std::vector<bool> spec_fired_;
  std::function<void(const SiteContext&)> crash_;
  std::uint64_t hits_ = 0;
  std::uint64_t fired_ = 0;
};

/// The fault-point probe. Near-zero cost when no injector is active.
Decision hit(std::string_view site, unsigned caps, const SiteContext& ctx);

/// Serializes a schedule as an `escape-run --faults` compatible script
/// (every spec becomes a {"action": "fault-point", ...} event).
std::string schedule_to_json(const FaultSchedule& schedule, std::string_view note = "");

}  // namespace escape::chaos
