file(REMOVE_RECURSE
  "CMakeFiles/escape_netemu.dir/host.cpp.o"
  "CMakeFiles/escape_netemu.dir/host.cpp.o.d"
  "CMakeFiles/escape_netemu.dir/link.cpp.o"
  "CMakeFiles/escape_netemu.dir/link.cpp.o.d"
  "CMakeFiles/escape_netemu.dir/network.cpp.o"
  "CMakeFiles/escape_netemu.dir/network.cpp.o.d"
  "CMakeFiles/escape_netemu.dir/node.cpp.o"
  "CMakeFiles/escape_netemu.dir/node.cpp.o.d"
  "CMakeFiles/escape_netemu.dir/pcap.cpp.o"
  "CMakeFiles/escape_netemu.dir/pcap.cpp.o.d"
  "CMakeFiles/escape_netemu.dir/switch_node.cpp.o"
  "CMakeFiles/escape_netemu.dir/switch_node.cpp.o.d"
  "CMakeFiles/escape_netemu.dir/vnf_container.cpp.o"
  "CMakeFiles/escape_netemu.dir/vnf_container.cpp.o.d"
  "libescape_netemu.a"
  "libescape_netemu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escape_netemu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
