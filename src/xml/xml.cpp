#include "xml/xml.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace escape::xml {

namespace {
const std::string kEmpty;
}

std::string Element::local_name() const {
  auto pos = name_.rfind(':');
  return pos == std::string::npos ? name_ : name_.substr(pos + 1);
}

const std::string& Element::attr(const std::string& key) const {
  auto it = attrs_.find(key);
  return it == attrs_.end() ? kEmpty : it->second;
}

Element& Element::add_child(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return *children_.back();
}

Element& Element::add_child(std::unique_ptr<Element> child) {
  children_.push_back(std::move(child));
  return *children_.back();
}

Element& Element::add_leaf(std::string name, std::string text) {
  Element& e = add_child(std::move(name));
  e.set_text(std::move(text));
  return e;
}

const Element* Element::child(std::string_view local) const {
  for (const auto& c : children_) {
    if (c->local_name() == local) return c.get();
  }
  return nullptr;
}

Element* Element::child(std::string_view local) {
  return const_cast<Element*>(static_cast<const Element*>(this)->child(local));
}

std::vector<const Element*> Element::children_named(std::string_view local) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c->local_name() == local) out.push_back(c.get());
  }
  return out;
}

const Element* Element::find(std::string_view path) const {
  const Element* cur = this;
  for (const auto& step : strings::split(path, '/')) {
    if (step.empty()) continue;
    cur = cur->child(step);
    if (!cur) return nullptr;
  }
  return cur;
}

const std::string& Element::child_text(std::string_view local) const {
  const Element* c = child(local);
  return c ? c->text() : kEmpty;
}

std::unique_ptr<Element> Element::clone() const {
  auto copy = std::make_unique<Element>(name_);
  copy->text_ = text_;
  copy->attrs_ = attrs_;
  for (const auto& c : children_) copy->children_.push_back(c->clone());
  return copy;
}

std::string escape_text(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

void Element::serialize(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad = pretty ? std::string(static_cast<std::size_t>(indent * depth), ' ') : "";
  out += pad;
  out += '<';
  out += name_;
  for (const auto& [k, v] : attrs_) {
    out += ' ';
    out += k;
    out += "=\"";
    out += escape_text(v);
    out += '"';
  }
  if (children_.empty() && text_.empty()) {
    out += "/>";
    if (pretty) out += '\n';
    return;
  }
  out += '>';
  out += escape_text(text_);
  if (!children_.empty()) {
    if (pretty) out += '\n';
    for (const auto& c : children_) c->serialize(out, indent, depth + 1);
    out += pad;
  }
  out += "</";
  out += name_;
  out += '>';
  if (pretty) out += '\n';
}

std::string Element::to_string(int indent) const {
  std::string out;
  serialize(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent XML parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view input) : in_(input) {}

  Result<std::unique_ptr<Element>> parse_document() {
    skip_prolog();
    auto root = parse_element();
    if (!root.ok()) return root;
    skip_misc();
    if (pos_ != in_.size()) {
      return fail("trailing content after root element");
    }
    return root;
  }

 private:
  Error fail(std::string msg) const {
    return make_error("xml.parse", msg + strings::format(" (at offset %zu)", pos_));
  }

  bool eof() const { return pos_ >= in_.size(); }
  char peek() const { return in_[pos_]; }
  bool match(std::string_view s) {
    if (in_.substr(pos_, s.size()) == s) {
      pos_ += s.size();
      return true;
    }
    return false;
  }
  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }

  void skip_prolog() {
    skip_ws();
    while (!eof()) {
      if (match("<?")) {
        auto end = in_.find("?>", pos_);
        pos_ = end == std::string_view::npos ? in_.size() : end + 2;
      } else if (match("<!--")) {
        auto end = in_.find("-->", pos_);
        pos_ = end == std::string_view::npos ? in_.size() : end + 3;
      } else {
        break;
      }
      skip_ws();
    }
  }

  void skip_misc() {
    skip_ws();
    while (!eof() && match("<!--")) {
      auto end = in_.find("-->", pos_);
      pos_ = end == std::string_view::npos ? in_.size() : end + 3;
      skip_ws();
    }
  }

  static bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == ':' || c == '_' || c == '-' ||
           c == '.';
  }

  std::string parse_name() {
    std::string name;
    while (!eof() && is_name_char(peek())) name += in_[pos_++];
    return name;
  }

  Result<std::string> parse_attr_value() {
    if (eof() || (peek() != '"' && peek() != '\'')) return fail("expected quoted attribute value");
    const char quote = in_[pos_++];
    std::string raw;
    while (!eof() && peek() != quote) raw += in_[pos_++];
    if (eof()) return fail("unterminated attribute value");
    ++pos_;  // closing quote
    return unescape(raw);
  }

  static std::string unescape(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size();) {
      if (raw[i] == '&') {
        auto semi = raw.find(';', i);
        if (semi != std::string_view::npos && semi - i <= 6) {
          std::string_view ent = raw.substr(i + 1, semi - i - 1);
          if (ent == "amp") { out += '&'; i = semi + 1; continue; }
          if (ent == "lt") { out += '<'; i = semi + 1; continue; }
          if (ent == "gt") { out += '>'; i = semi + 1; continue; }
          if (ent == "quot") { out += '"'; i = semi + 1; continue; }
          if (ent == "apos") { out += '\''; i = semi + 1; continue; }
        }
      }
      out += raw[i++];
    }
    return out;
  }

  Result<std::unique_ptr<Element>> parse_element() {
    skip_ws();
    if (eof() || peek() != '<') return fail("expected element start");
    ++pos_;
    std::string name = parse_name();
    if (name.empty()) return fail("empty element name");
    auto element = std::make_unique<Element>(name);

    // Attributes.
    while (true) {
      skip_ws();
      if (eof()) return fail("unterminated start tag");
      if (match("/>")) return element;  // empty element
      if (match(">")) break;
      std::string attr_name = parse_name();
      if (attr_name.empty()) return fail("expected attribute name");
      skip_ws();
      if (!match("=")) return fail("expected '=' after attribute name");
      skip_ws();
      auto value = parse_attr_value();
      if (!value.ok()) return value.error();
      element->set_attr(attr_name, *value);
    }

    // Content: text, children, comments until matching end tag.
    std::string text;
    while (true) {
      if (eof()) return fail("unterminated element <" + name + ">");
      if (peek() == '<') {
        if (match("<!--")) {
          auto end = in_.find("-->", pos_);
          if (end == std::string_view::npos) return fail("unterminated comment");
          pos_ = end + 3;
          continue;
        }
        if (in_.substr(pos_, 2) == "</") {
          pos_ += 2;
          std::string end_name = parse_name();
          skip_ws();
          if (!match(">")) return fail("malformed end tag");
          if (end_name != name) {
            return fail("mismatched end tag </" + end_name + "> for <" + name + ">");
          }
          element->set_text(std::string(strings::trim(unescape(text))));
          return element;
        }
        auto child = parse_element();
        if (!child.ok()) return child;
        element->add_child(std::move(*child));
      } else {
        text += in_[pos_++];
      }
    }
  }

  std::string_view in_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<Element>> parse(std::string_view input) {
  return Parser(input).parse_document();
}

}  // namespace escape::xml
