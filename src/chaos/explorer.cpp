#include "chaos/explorer.hpp"

#include <filesystem>
#include <fstream>
#include <random>
#include <set>
#include <sstream>

#include "json/json.hpp"

namespace escape::chaos {

namespace {

/// Fault kinds a recorded hit can honor, in deterministic order.
std::vector<FaultKind> kinds_for(const TraceEntry& entry) {
  std::vector<FaultKind> kinds;
  if ((entry.caps & kCanCrash) != 0 && entry.target_kind != TargetKind::kNone) {
    kinds.push_back(FaultKind::kCrash);
  }
  if ((entry.caps & kCanDrop) != 0) kinds.push_back(FaultKind::kDrop);
  if ((entry.caps & kCanDelay) != 0) kinds.push_back(FaultKind::kDelay);
  return kinds;
}

std::string schedule_key(const FaultSchedule& schedule) {
  std::ostringstream os;
  for (const auto& s : schedule) {
    os << s.site << '#' << s.occurrence << '=' << fault_kind_name(s.kind) << ';';
  }
  return os.str();
}

}  // namespace

std::size_t ExploreReport::failures() const {
  std::size_t n = 0;
  for (const auto& e : episodes) n += e.failed() ? 1 : 0;
  return n;
}

std::size_t ExploreReport::vacuous() const {
  std::size_t n = 0;
  for (const auto& e : episodes) n += e.vacuous() ? 1 : 0;
  return n;
}

std::string ExploreReport::summary() const {
  std::ostringstream os;
  os << episodes.size() << " schedule(s) explored over " << trace.size()
     << " fault-point hit(s), " << failures() << " invariant failure(s), " << vacuous()
     << " vacuous";
  if (schedules_dropped > 0) {
    os << "; WARNING: " << schedules_dropped << " schedule(s) dropped by cap -- NOT full coverage";
  }
  return os.str();
}

ChaosExplorer::ChaosExplorer(Scenario scenario, ExplorerOptions options)
    : scenario_(std::move(scenario)), options_(options) {}

std::function<void(const SiteContext&)> env_crash_executor(Environment& env) {
  return [&env](const SiteContext& ctx) {
    switch (ctx.target_kind) {
      case TargetKind::kContainer:
        env.kill_container(ctx.container);
        break;
      case TargetKind::kSwitch:
        for (const std::string& name : env.network().node_names()) {
          netemu::SwitchNode* sw = env.network().switch_node(name);
          if (sw != nullptr && sw->dpid() == ctx.dpid) {
            env.restart_switch(name);
            return;
          }
        }
        break;
      case TargetKind::kNone:
        break;
    }
  };
}

std::vector<TraceEntry> ChaosExplorer::record(std::uint64_t* digest,
                                              std::vector<Violation>* violations) {
  std::unique_ptr<Environment> env = scenario_.make_env();
  FaultInjector injector;
  injector.start_recording();
  FaultInjector* previous = FaultInjector::activate(&injector);
  scenario_.run(*env);
  FaultInjector::activate(previous);
  if (digest != nullptr) *digest = env->scheduler().order_digest();
  if (violations != nullptr) *violations = check_invariants(*env);
  return injector.trace();
}

Episode ChaosExplorer::run_schedule(const FaultSchedule& schedule) {
  Episode episode;
  episode.schedule = schedule;
  std::unique_ptr<Environment> env = scenario_.make_env();
  FaultInjector injector;
  injector.arm(schedule);
  injector.set_crash_executor(env_crash_executor(*env));
  FaultInjector* previous = FaultInjector::activate(&injector);
  // An episode that throws is itself a finding -- an injected fault drove
  // the product into an unguarded code path. Record it as a violation so
  // the sweep survives and the schedule shrinks like any other failure.
  try {
    scenario_.run(*env);
    FaultInjector::activate(previous);
    episode.digest = env->scheduler().order_digest();
    episode.faults_fired = static_cast<std::size_t>(injector.fired());
    episode.violations = check_invariants(*env);
  } catch (const std::exception& e) {
    FaultInjector::activate(previous);
    episode.faults_fired = static_cast<std::size_t>(injector.fired());
    episode.violations.push_back({"episode.exception", scenario_.name, e.what()});
  }
  return episode;
}

std::vector<FaultSchedule> ChaosExplorer::enumerate(
    const std::vector<TraceEntry>& trace) const {
  std::vector<FaultSchedule> schedules;
  std::set<std::string> seen;
  auto push = [&](FaultSchedule schedule) {
    if (seen.insert(schedule_key(schedule)).second) schedules.push_back(std::move(schedule));
  };

  // Depth 1: exhaustive -- every recorded hit x every kind it supports.
  for (const TraceEntry& entry : trace) {
    for (FaultKind kind : kinds_for(entry)) {
      FaultSpec spec{entry.site, entry.occurrence, kind,
                     kind == FaultKind::kDelay ? options_.delay : 0};
      push({std::move(spec)});
    }
  }

  // Depth >= 2: seeded bounded pairs. Exhaustive pairing is quadratic in
  // the trace; a deterministic sample keeps CI time bounded while the
  // nightly can raise pair_samples.
  if (options_.depth >= 2 && trace.size() >= 2) {
    std::mt19937_64 rng(options_.seed);
    const std::size_t want = options_.pair_samples * static_cast<std::size_t>(options_.depth - 1);
    const std::size_t base = schedules.size();
    for (std::size_t attempt = 0; attempt < want * 8 && schedules.size() < base + want;
         ++attempt) {
      std::size_t i = static_cast<std::size_t>(rng() % trace.size());
      std::size_t j = static_cast<std::size_t>(rng() % trace.size());
      if (i == j) continue;
      if (i > j) std::swap(i, j);
      const std::vector<FaultKind> ki = kinds_for(trace[i]);
      const std::vector<FaultKind> kj = kinds_for(trace[j]);
      if (ki.empty() || kj.empty()) continue;
      FaultSpec a{trace[i].site, trace[i].occurrence, ki[rng() % ki.size()], 0};
      FaultSpec b{trace[j].site, trace[j].occurrence, kj[rng() % kj.size()], 0};
      if (a.kind == FaultKind::kDelay) a.delay = options_.delay;
      if (b.kind == FaultKind::kDelay) b.delay = options_.delay;
      push({std::move(a), std::move(b)});
    }
  }
  return schedules;
}

FaultSchedule ChaosExplorer::shrink(const FaultSchedule& failing) {
  if (failing.size() <= 1) return failing;
  // Singletons first: most pair failures are really single-fault bugs.
  for (const FaultSpec& spec : failing) {
    FaultSchedule candidate{spec};
    if (run_schedule(candidate).failed()) return candidate;
  }
  // Then classic one-at-a-time removal.
  FaultSchedule current = failing;
  bool shrunk = true;
  while (shrunk && current.size() > 1) {
    shrunk = false;
    for (std::size_t i = 0; i < current.size(); ++i) {
      FaultSchedule candidate;
      for (std::size_t k = 0; k < current.size(); ++k) {
        if (k != i) candidate.push_back(current[k]);
      }
      if (run_schedule(candidate).failed()) {
        current = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  return current;
}

ExploreReport ChaosExplorer::explore() {
  ExploreReport report;
  report.trace = record(&report.clean_digest, &report.clean_violations);
  log_.info("scenario '", scenario_.name, "': clean run recorded ", report.trace.size(),
            " fault-point hit(s), digest ", report.clean_digest);
  if (!report.clean_violations.empty()) {
    log_.error("clean run violates ", report.clean_violations.size(),
               " invariant(s); not exploring");
    return report;
  }

  std::vector<FaultSchedule> schedules = enumerate(report.trace);
  if (options_.max_schedules > 0 && schedules.size() > options_.max_schedules) {
    report.schedules_dropped = schedules.size() - options_.max_schedules;
    schedules.resize(options_.max_schedules);
    log_.warn("schedule cap: replaying ", schedules.size(), ", dropping ",
              report.schedules_dropped);
  }

  std::size_t artifact_index = 0;
  for (const FaultSchedule& schedule : schedules) {
    Episode episode = run_schedule(schedule);
    if (episode.failed()) {
      log_.warn("schedule {", schedule_key(schedule), "} -> ", episode.violations.size(),
                " violation(s); shrinking");
      FaultSchedule minimal = shrink(schedule);
      report.minimized.push_back(minimal);
      if (!options_.artifact_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options_.artifact_dir, ec);
        const std::string path =
            options_.artifact_dir + "/fail-" + std::to_string(artifact_index++) + ".json";
        std::ofstream out(path);
        std::ostringstream note;
        note << "scenario " << scenario_.name << "; violations:";
        for (const auto& v : episode.violations) note << " " << to_string(v) << ";";
        out << schedule_to_json(minimal, note.str());
        log_.warn("minimized repro written to ", path);
      }
    }
    report.episodes.push_back(std::move(episode));
  }
  log_.info("scenario '", scenario_.name, "': ", report.summary());
  return report;
}

Result<FaultSchedule> schedule_from_json(std::string_view text) {
  auto doc = json::parse(text);
  if (!doc.ok()) return doc.error();
  FaultSchedule schedule;
  for (const json::Value& event : (*doc)["events"].as_array()) {
    if (event["action"].as_string() != "fault-point") continue;
    FaultSpec spec;
    spec.site = event["site"].as_string();
    if (spec.site.empty()) {
      return make_error("chaos.bad-schedule", "fault-point event without a site");
    }
    spec.occurrence = static_cast<std::uint64_t>(event["occurrence"].as_int(0));
    auto kind = fault_kind_from(event["kind"].as_string());
    if (!kind.ok()) return kind.error();
    spec.kind = *kind;
    spec.delay = static_cast<SimDuration>(event["delay_ms"].as_int(0)) *
                 timeunit::kMillisecond;
    schedule.push_back(std::move(spec));
  }
  return schedule;
}

}  // namespace escape::chaos
