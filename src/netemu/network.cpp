#include "netemu/network.hpp"

#include <stdexcept>

namespace escape::netemu {

Host& Network::add_host(const std::string& name, net::MacAddr mac, net::Ipv4Addr ip) {
  if (nodes_.count(name)) throw std::invalid_argument("duplicate node name: " + name);
  auto host = std::make_unique<Host>(name, *scheduler_, mac, ip);
  Host& ref = *host;
  nodes_[name] = std::move(host);
  return ref;
}

Host& Network::add_host(const std::string& name) {
  const std::uint64_t n = next_auto_addr_++;
  return add_host(name, net::MacAddr::from_u64(n),
                  net::Ipv4Addr(static_cast<std::uint32_t>((10u << 24) | n)));
}

SwitchNode& Network::add_switch(const std::string& name, openflow::DatapathId dpid) {
  if (nodes_.count(name)) throw std::invalid_argument("duplicate node name: " + name);
  if (dpid == 0) dpid = next_dpid_++;
  else next_dpid_ = std::max(next_dpid_, dpid + 1);
  auto sw = std::make_unique<SwitchNode>(name, *scheduler_, dpid);
  SwitchNode& ref = *sw;
  nodes_[name] = std::move(sw);
  return ref;
}

VnfContainer& Network::add_container(const std::string& name, double cpu_capacity,
                                     std::size_t max_vnfs) {
  if (nodes_.count(name)) throw std::invalid_argument("duplicate node name: " + name);
  auto c = std::make_unique<VnfContainer>(name, *scheduler_, cpu_capacity, max_vnfs);
  VnfContainer& ref = *c;
  nodes_[name] = std::move(c);
  return ref;
}

Status Network::add_link(const std::string& a, std::uint16_t port_a, const std::string& b,
                         std::uint16_t port_b, LinkConfig config) {
  Node* node_a = node(a);
  Node* node_b = node(b);
  if (!node_a) return make_error("netemu.unknown-node", "unknown node: " + a);
  if (!node_b) return make_error("netemu.unknown-node", "unknown node: " + b);

  auto link = std::make_unique<Link>(node_a, port_a, node_b, port_b, config, *scheduler_,
                                     links_.size() + 1);
  if (auto s = node_a->attach_link(port_a, link.get(), 0); !s.ok()) return s;
  if (auto s = node_b->attach_link(port_b, link.get(), 1); !s.ok()) {
    node_a->detach_link(port_a);
    return s;
  }
  if (auto* sw = dynamic_cast<SwitchNode*>(node_a)) sw->ensure_port(port_a);
  if (auto* sw = dynamic_cast<SwitchNode*>(node_b)) sw->ensure_port(port_b);
  links_.push_back(std::move(link));
  return ok_status();
}

Link* Network::find_link(const std::string& a, const std::string& b) {
  for (auto& link : links_) {
    const std::string& na = link->node(0)->name();
    const std::string& nb = link->node(1)->name();
    if ((na == a && nb == b) || (na == b && nb == a)) return link.get();
  }
  return nullptr;
}

Status Network::set_link_state(const std::string& a, const std::string& b, bool up) {
  Link* link = find_link(a, b);
  if (!link) {
    return make_error("netemu.unknown-link", "no link between " + a + " and " + b);
  }
  link->set_up(up);
  return ok_status();
}

Node* Network::node(const std::string& name) {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : it->second.get();
}

template <typename T>
T* Network::typed_node(const std::string& name) {
  return dynamic_cast<T*>(node(name));
}

Host* Network::host(const std::string& name) { return typed_node<Host>(name); }
SwitchNode* Network::switch_node(const std::string& name) {
  return typed_node<SwitchNode>(name);
}
VnfContainer* Network::container(const std::string& name) {
  return typed_node<VnfContainer>(name);
}

std::vector<std::string> Network::node_names() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [name, _] : nodes_) out.push_back(name);
  return out;
}

void Network::attach_controller(pox::Controller& controller) {
  for (auto& [_, node] : nodes_) {
    if (auto* sw = dynamic_cast<SwitchNode*>(node.get())) {
      controller.attach_switch(sw->datapath());
    }
  }
}

std::size_t Network::switch_count() const {
  std::size_t n = 0;
  for (const auto& [_, node] : nodes_) n += node->kind() == NodeKind::kSwitch;
  return n;
}
std::size_t Network::host_count() const {
  std::size_t n = 0;
  for (const auto& [_, node] : nodes_) n += node->kind() == NodeKind::kHost;
  return n;
}
std::size_t Network::container_count() const {
  std::size_t n = 0;
  for (const auto& [_, node] : nodes_) n += node->kind() == NodeKind::kVnfContainer;
  return n;
}

}  // namespace escape::netemu
