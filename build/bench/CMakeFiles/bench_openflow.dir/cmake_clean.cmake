file(REMOVE_RECURSE
  "CMakeFiles/bench_openflow.dir/bench_openflow.cpp.o"
  "CMakeFiles/bench_openflow.dir/bench_openflow.cpp.o.d"
  "bench_openflow"
  "bench_openflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_openflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
