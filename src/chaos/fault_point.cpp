#include "chaos/fault_point.hpp"

#include <sstream>

#include "util/logging.hpp"

namespace escape::chaos {

namespace {
FaultInjector* g_active = nullptr;
Logger& injector_log() {
  static Logger log{"chaos.inject"};
  return log;
}
}  // namespace

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDelay: return "delay";
  }
  return "?";
}

Result<FaultKind> fault_kind_from(std::string_view name) {
  if (name == "crash") return FaultKind::kCrash;
  if (name == "drop") return FaultKind::kDrop;
  if (name == "delay") return FaultKind::kDelay;
  return make_error("chaos.bad-kind", "unknown fault kind: " + std::string(name));
}

std::string FaultSpec::to_string() const {
  std::ostringstream out;
  out << site << "#" << occurrence << ":" << fault_kind_name(kind);
  if (kind == FaultKind::kDelay) {
    out << "+" << static_cast<double>(delay) / timeunit::kMillisecond << "ms";
  }
  return out.str();
}

FaultInjector::~FaultInjector() {
  if (g_active == this) g_active = nullptr;
}

FaultInjector* FaultInjector::active() { return g_active; }

FaultInjector* FaultInjector::activate(FaultInjector* injector) {
  FaultInjector* previous = g_active;
  g_active = injector;
  return previous;
}

void FaultInjector::start_recording() {
  mode_ = Mode::kRecord;
  counts_.clear();
  trace_.clear();
  schedule_.clear();
  spec_fired_.clear();
  hits_ = 0;
  fired_ = 0;
}

void FaultInjector::arm(FaultSchedule schedule) {
  mode_ = Mode::kInject;
  counts_.clear();
  trace_.clear();
  schedule_ = std::move(schedule);
  spec_fired_.assign(schedule_.size(), false);
  hits_ = 0;
  fired_ = 0;
}

void FaultInjector::add_spec(FaultSpec spec) {
  mode_ = Mode::kInject;
  schedule_.push_back(std::move(spec));
  spec_fired_.push_back(false);
}

Decision FaultInjector::hit(std::string_view site, unsigned caps, const SiteContext& ctx) {
  ++hits_;
  auto cit = counts_.find(site);
  if (cit == counts_.end()) cit = counts_.emplace(std::string(site), 0).first;
  const std::uint64_t occurrence = cit->second++;

  if (mode_ == Mode::kRecord) {
    TraceEntry entry;
    entry.site = site;
    entry.occurrence = occurrence;
    entry.caps = caps;
    entry.target_kind = ctx.target_kind;
    entry.container = ctx.container;
    entry.dpid = ctx.dpid;
    entry.chain_id = ctx.chain_id;
    trace_.push_back(std::move(entry));
    return {};
  }

  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    const FaultSpec& spec = schedule_[i];
    if (spec_fired_[i] || spec.occurrence != occurrence || spec.site != site) continue;
    // The site declares what it can honor; a mismatched spec (possible
    // when an earlier fault changed the control flow) stays un-fired.
    const unsigned needed = spec.kind == FaultKind::kCrash  ? kCanCrash
                            : spec.kind == FaultKind::kDrop ? kCanDrop
                                                            : kCanDelay;
    if ((caps & needed) == 0) continue;
    if (spec.kind == FaultKind::kCrash && ctx.target_kind == TargetKind::kNone) continue;
    spec_fired_[i] = true;
    ++fired_;
    injector_log().warn("firing ", spec.to_string(), ctx.chain_id != 0
                            ? " (chain " + std::to_string(ctx.chain_id) + ")"
                            : std::string());
    if (spec.kind == FaultKind::kCrash) {
      if (crash_) crash_(ctx);
      return {};  // the operation proceeds against the now-dead target
    }
    return {spec.kind, spec.delay};
  }
  return {};
}

Decision hit(std::string_view site, unsigned caps, const SiteContext& ctx) {
  if (g_active == nullptr) return {};
  return g_active->hit(site, caps, ctx);
}

namespace {
// Minimal JSON string escape (this core layer must not link the json
// library; the serializer here is hand-rolled on purpose).
std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
      continue;
    }
    out.push_back(c);
  }
  return out;
}
}  // namespace

std::string schedule_to_json(const FaultSchedule& schedule, std::string_view note) {
  std::ostringstream out;
  out << "{\n";
  if (!note.empty()) out << "  \"note\": \"" << json_escape(note) << "\",\n";
  out << "  \"events\": [";
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const FaultSpec& spec = schedule[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"at_ms\": 0, \"action\": \"fault-point\", \"site\": \"" << spec.site
        << "\", \"occurrence\": " << spec.occurrence << ", \"kind\": \""
        << fault_kind_name(spec.kind) << "\"";
    if (spec.kind == FaultKind::kDelay) {
      out << ", \"delay_ms\": " << static_cast<double>(spec.delay) / timeunit::kMillisecond;
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

}  // namespace escape::chaos
