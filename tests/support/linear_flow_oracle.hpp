// LinearFlowTableOracle: the reference implementation the tuple-space
// FlowTable is differentially tested against (tests/classify_test.cpp).
//
// It implements the exact semantics documented in
// src/openflow/flow_table.hpp -- OF 1.0 overwrite/modify/delete rules,
// priority/exact/seq winner selection, skip-expired lookups, install-
// order expiry sweeps and flow-removed callbacks -- with the dumbest
// possible data structure: one install-ordered list scanned end to end.
// No mask index, no probe order, no miss memo, no early exit. Anything
// the real table gets wrong shows up as a divergence from this file;
// anything this file gets wrong is a plain linear scan that a reviewer
// can check against the OpenFlow 1.0 spec in one sitting.
#pragma once

#include <algorithm>
#include <list>
#include <optional>
#include <vector>

#include "openflow/flow_table.hpp"

namespace escape::openflow::testing {

class LinearFlowTableOracle {
 public:
  using RemovedCallback = FlowTable::RemovedCallback;

  void set_removed_callback(RemovedCallback cb) { removed_cb_ = std::move(cb); }

  void apply(const FlowMod& mod, SimTime now) { apply_one(mod, now); }

  void apply_batch(const std::vector<FlowMod>& mods, SimTime now) {
    for (const auto& mod : mods) apply_one(mod, now);
  }

  FlowEntry* lookup(const net::FlowKey& key, std::size_t packet_bytes, SimTime now) {
    ++lookups_;
    FlowEntry* best = nullptr;
    for (auto& e : entries_) {
      if (expired(e, now)) continue;  // invisible, never evicted here
      if (!e.match.matches(key)) continue;
      if (!best || outranks(e, *best)) best = &e;
    }
    if (!best) return nullptr;
    best->packet_count++;
    best->byte_count += packet_bytes;
    best->last_hit = now;
    ++matched_;
    return best;
  }

  void record_hit(FlowEntry& entry, std::size_t packet_bytes, SimTime now) {
    ++lookups_;
    entry.packet_count++;
    entry.byte_count += packet_bytes;
    entry.last_hit = now;
    ++matched_;
  }

  std::size_t expire(SimTime now) {
    std::size_t evicted = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (expired(*it, now)) {
        fire_removed(*it, expiry_reason(*it, now));
        it = entries_.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
    return evicted;
  }

  std::size_t size() const { return entries_.size(); }
  std::uint64_t lookups() const { return lookups_; }
  std::uint64_t matches() const { return matched_; }

  std::vector<FlowStatsEntry> stats(SimTime now) const {
    std::vector<FlowStatsEntry> out;
    out.reserve(entries_.size());
    for (const auto& e : entries_) {
      FlowStatsEntry s;
      s.match = e.match;
      s.priority = e.priority;
      s.cookie = e.cookie;
      s.packet_count = e.packet_count;
      s.byte_count = e.byte_count;
      s.age = now - e.installed_at;
      s.actions = e.actions;
      out.push_back(std::move(s));
    }
    return out;
  }

  void clear() { entries_.clear(); }

 private:
  using EntryIt = std::list<FlowEntry>::iterator;

  bool expired(const FlowEntry& e, SimTime now) const {
    if (e.hard_timeout && now >= e.installed_at + e.hard_timeout) return true;
    if (e.idle_timeout && now >= e.last_hit + e.idle_timeout) return true;
    return false;
  }

  FlowRemovedReason expiry_reason(const FlowEntry& e, SimTime now) const {
    return e.hard_timeout && now >= e.installed_at + e.hard_timeout
               ? FlowRemovedReason::kHardTimeout
               : FlowRemovedReason::kIdleTimeout;
  }

  void fire_removed(const FlowEntry& e, FlowRemovedReason reason) {
    if (e.send_flow_removed && removed_cb_) removed_cb_(e, reason);
  }

  /// Winner rule: priority desc, exact beats wildcard at a tie, then
  /// earlier install. Mirrors FlowTable::outranks.
  static bool outranks(const FlowEntry& a, const FlowEntry& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    const bool a_exact = a.match.is_exact();
    const bool b_exact = b.match.is_exact();
    if (a_exact != b_exact) return a_exact;
    return a.seq < b.seq;
  }

  void erase_victims(std::vector<EntryIt>& victims) {
    // entries_ is install-ordered, so victims collected by a front-to-
    // back scan already fire flow-removed in canonical order.
    for (EntryIt it : victims) {
      fire_removed(*it, FlowRemovedReason::kDelete);
      entries_.erase(it);
    }
  }

  void apply_one(const FlowMod& mod, SimTime now) {
    switch (mod.command) {
      case FlowModCommand::kAdd: {
        // OF 1.0 overwrite: an exact add displaces any entry with the
        // identical match (any priority); a wildcard add displaces only
        // equal-priority identical-match entries.
        std::vector<EntryIt> victims;
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
          if (it->match == mod.match &&
              (mod.match.is_exact() || it->priority == mod.priority)) {
            victims.push_back(it);
          }
        }
        erase_victims(victims);
        FlowEntry e;
        e.match = mod.match;
        e.priority = mod.priority;
        e.cookie = mod.cookie;
        e.idle_timeout = mod.idle_timeout;
        e.hard_timeout = mod.hard_timeout;
        e.actions = mod.actions;
        e.send_flow_removed = mod.send_flow_removed;
        e.installed_at = now;
        e.last_hit = now;
        e.seq = next_seq_++;
        entries_.push_back(std::move(e));
        break;
      }
      case FlowModCommand::kModify: {
        bool any = false;
        for (auto& e : entries_) {
          if (e.match == mod.match) {
            e.actions = mod.actions;
            e.cookie = mod.cookie;
            any = true;
          }
        }
        if (!any) {
          FlowMod add = mod;
          add.command = FlowModCommand::kAdd;
          apply_one(add, now);
        }
        break;
      }
      case FlowModCommand::kDelete: {
        std::vector<EntryIt> victims;
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
          const bool covered =
              mod.match.is_table_miss() || it->match == mod.match ||
              (it->match.is_exact() && mod.match.matches(it->match.fields()));
          if (covered) victims.push_back(it);
        }
        erase_victims(victims);
        break;
      }
      case FlowModCommand::kDeleteStrict: {
        std::vector<EntryIt> victims;
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
          if (it->match == mod.match && it->priority == mod.priority) victims.push_back(it);
        }
        erase_victims(victims);
        break;
      }
    }
  }

  std::list<FlowEntry> entries_;  // install order
  std::uint64_t next_seq_ = 0;
  std::uint64_t lookups_ = 0;
  std::uint64_t matched_ = 0;
  RemovedCallback removed_cb_;
};

}  // namespace escape::openflow::testing
