# Empty compiler generated dependencies file for bench_chain_setup.
# This may be replaced when dependencies are built.
