file(REMOVE_RECURSE
  "CMakeFiles/escape_json.dir/json.cpp.o"
  "CMakeFiles/escape_json.dir/json.cpp.o.d"
  "libescape_json.a"
  "libescape_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escape_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
