// The deployment engine: turns a MappingResult into a running service
// chain. It performs, in order:
//
//   1. veth allocation -- for every placed VNF, two dynamic links
//      (in/out) are created between its container and the switch(es) the
//      mapped path uses, with fresh port numbers on both sides (Mininet's
//      dynamically added interfaces);
//   2. VNF bring-up over NETCONF -- initiateVNF / startVNF / connectVNF
//      RPCs against the container's management agent, strictly
//      sequential per the management protocol;
//   3. traffic steering -- converts the mapped substrate paths plus the
//      allocated switch ports into one pox::ChainPath and installs it.
//
// Everything is asynchronous over the shared virtual-time scheduler;
// completion (or the first error) is reported through a callback. The
// elapsed virtual time between start and completion is the chain setup
// latency measured by bench_chain_setup.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "netconf/vnf_agent.hpp"
#include "netemu/network.hpp"
#include "orchestrator/mapping.hpp"
#include "pox/steering.hpp"
#include "service/layer.hpp"

namespace escape::orchestrator {

/// Everything the engine records about one deployed VNF instance.
struct VnfDeployment {
  std::string vnf_id;       // the SG node id ("fw1")
  std::string instance_id;  // container-unique id ("chain3.fw1") used in RPCs
  std::string container;
  std::string in_switch;         // switch the in-link attaches to
  std::string out_switch;        // switch the out-link attaches to
  std::uint16_t container_in_port = 0;
  std::uint16_t container_out_port = 0;
  std::uint16_t switch_in_port = 0;   // packets leave the network here
  std::uint16_t switch_out_port = 0;  // packets re-enter the network here
};

struct DeploymentRecord {
  std::uint32_t chain_id = 0;
  MappingResult mapping;
  std::vector<VnfDeployment> vnfs;
  pox::ChainPath chain_path;
  SimTime started_at = 0;
  SimTime completed_at = 0;

  SimDuration setup_latency() const { return completed_at - started_at; }
};

class DeploymentEngine {
 public:
  using CompletionCallback = std::function<void(Result<DeploymentRecord>)>;

  /// `agents` maps container name -> its management client. All
  /// references must outlive the engine.
  DeploymentEngine(netemu::Network& network, pox::TrafficSteering& steering,
                   std::map<std::string, netconf::VnfAgentClient*> agents);

  /// Deploys a mapped chain. `view` must be the resource graph the
  /// mapping was computed against (its link indices resolve the ports);
  /// `match` is the chain's traffic specification (without in_port);
  /// `rendered` supplies per-VNF Click configs.
  void deploy(std::uint32_t chain_id, const MappingResult& mapping,
              const sg::ResourceGraph& view,
              const std::vector<service::RenderedVnf>& rendered, openflow::Match match,
              CompletionCallback done);

  /// Tears a chain down: removes steering flows and stops its VNFs.
  /// Idempotent: benign "already gone" outcomes (flows already removed,
  /// VNF already stopped or unknown, container crashed, agent session
  /// dead) are skipped over instead of aborting, so tearing down a
  /// half-dead chain -- or the same chain twice -- succeeds.
  void teardown(const DeploymentRecord& record, std::function<void(Status)> done);

  /// Teardown that tolerates *every* per-step error and always reports
  /// ok. Used for rollback of failed deploys and for recovery-triggered
  /// cleanup of stale remnants, where only best effort is possible.
  void teardown_best_effort(const DeploymentRecord& record, std::function<void(Status)> done);

  /// Teardown that stops the record's VNF instances but leaves steering
  /// alone. For retiring an old scale generation whose steering id has
  /// since been reclaimed by a live install (recovery re-embeds under
  /// the original id): removing the rules would strip the live chain.
  void teardown_instances(const DeploymentRecord& record, std::function<void(Status)> done);

  /// Link configuration used for dynamically created container<->switch
  /// links (the veth pairs).
  static netemu::LinkConfig veth_config();

 private:
  struct Job;

  void teardown_impl(const DeploymentRecord& record, bool best_effort, bool remove_steering,
                     std::function<void(Status)> done);
  std::uint16_t next_free_port(netemu::Node* node) const;
  Result<std::vector<VnfDeployment>> allocate_veths(std::uint32_t chain_id,
                                                    const MappingResult& mapping);
  Result<pox::ChainPath> compute_chain_path(std::uint32_t chain_id,
                                            const MappingResult& mapping,
                                            const sg::ResourceGraph& view,
                                            const std::vector<VnfDeployment>& vnfs,
                                            openflow::Match match) const;

  netemu::Network* network_;
  pox::TrafficSteering* steering_;
  std::map<std::string, netconf::VnfAgentClient*> agents_;
  Logger log_{"orchestrator.deploy"};
};

}  // namespace escape::orchestrator
