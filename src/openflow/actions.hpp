// OpenFlow 1.0 action list: output and header-rewrite actions applied by
// the switch datapath after a flow-table hit.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "net/addr.hpp"
#include "net/packet.hpp"

namespace escape::openflow {

/// Reserved output "ports" (OF 1.0 ofp_port special values).
enum SpecialPort : std::uint16_t {
  kPortInPort = 0xfff8,     // send back out the ingress port
  kPortFlood = 0xfffb,      // all ports except ingress
  kPortAll = 0xfffc,        // all ports including ingress
  kPortController = 0xfffd, // encapsulate as packet-in
  kPortNone = 0xffff,
};

struct ActionOutput {
  std::uint16_t port = kPortNone;
  std::uint16_t max_len = 0xffff;  // bytes of a packet-in sent to controller
  bool operator==(const ActionOutput&) const = default;
};
struct ActionSetDlSrc {
  net::MacAddr mac;
  bool operator==(const ActionSetDlSrc&) const = default;
};
struct ActionSetDlDst {
  net::MacAddr mac;
  bool operator==(const ActionSetDlDst&) const = default;
};
struct ActionSetNwSrc {
  net::Ipv4Addr addr;
  bool operator==(const ActionSetNwSrc&) const = default;
};
struct ActionSetNwDst {
  net::Ipv4Addr addr;
  bool operator==(const ActionSetNwDst&) const = default;
};
struct ActionSetNwTos {
  std::uint8_t dscp = 0;
  bool operator==(const ActionSetNwTos&) const = default;
};
struct ActionSetTpSrc {
  std::uint16_t port = 0;
  bool operator==(const ActionSetTpSrc&) const = default;
};
struct ActionSetTpDst {
  std::uint16_t port = 0;
  bool operator==(const ActionSetTpDst&) const = default;
};

using Action = std::variant<ActionOutput, ActionSetDlSrc, ActionSetDlDst, ActionSetNwSrc,
                            ActionSetNwDst, ActionSetNwTos, ActionSetTpSrc, ActionSetTpDst>;

using ActionList = std::vector<Action>;

/// Applies a header-rewrite action in place; output actions are handled
/// by the switch and ignored here.
void apply_rewrite(const Action& action, net::Packet& packet);

std::string action_to_string(const Action& action);
std::string actions_to_string(const ActionList& actions);

/// Convenience factory for the common single-output action list.
ActionList output_to(std::uint16_t port);

}  // namespace escape::openflow
