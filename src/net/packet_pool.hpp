// PacketPool: a bounded free-list of recycled packet buffers. The
// steady-state hot path of the data plane (traffic sources building
// frames, sinks destroying them) allocates each frame's byte vector on
// the heap; at millions of packets per emulated second that is one
// new/delete pair per packet. The pool breaks the cycle: sinks recycle
// the buffer of a dead packet, sources take it back and overwrite the
// bytes, and the vector's capacity is reused without touching the
// allocator.
//
// Recycled packets are handed out with all annotations reset (paint,
// in_port, timestamp, seq, chain_tag), so a reused buffer is
// indistinguishable from a freshly constructed Packet.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "net/packet_batch.hpp"

namespace escape::net {

class PacketPool {
 public:
  /// `max_free` bounds the free list; recycling beyond it frees the
  /// buffer normally (so a burst does not pin memory forever).
  explicit PacketPool(std::size_t max_free = 4096) : max_free_(max_free) {}

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// A packet of `size` bytes (contents unspecified), annotations reset.
  Packet acquire(std::size_t size);

  /// A packet whose bytes are copied from `proto`, annotations reset.
  /// The copy reuses a recycled buffer's capacity when one is available.
  Packet acquire_copy(const Packet& proto);

  /// Returns the packet's buffer to the free list (drops it if full).
  void recycle(Packet&& p);
  void recycle(PacketBatch&& batch);

  std::size_t free_buffers() const { return free_.size(); }
  /// Packets served from a recycled buffer.
  std::uint64_t reuses() const { return reuses_; }
  /// Packets that needed a fresh allocation.
  std::uint64_t fresh_allocs() const { return fresh_allocs_; }
  /// Buffers accepted back into the free list.
  std::uint64_t recycled() const { return recycled_; }

  void clear();

 private:
  std::vector<std::uint8_t> take_buffer();

  std::size_t max_free_;
  std::vector<std::vector<std::uint8_t>> free_;
  std::uint64_t reuses_ = 0;
  std::uint64_t fresh_allocs_ = 0;
  std::uint64_t recycled_ = 0;
};

/// The pool shared by sources and sinks of the emulated data plane.
/// One instance per thread: under the sharded scheduler each worker
/// recycles into and acquires from its own free list, so the pool needs
/// no locks and a buffer never migrates between threads mid-flight.
/// Pool *statistics* are therefore also per-thread; the contents of an
/// acquired packet never depend on which pool served it, so thread
/// placement cannot affect simulation results.
PacketPool& default_packet_pool();

}  // namespace escape::net
