#include "netemu/link.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace escape::netemu {

Link::Link(Node* node_a, std::uint16_t port_a, Node* node_b, std::uint16_t port_b,
           LinkConfig config, EventScheduler& scheduler, std::uint64_t loss_seed)
    : node_a_(node_a),
      port_a_(port_a),
      node_b_(node_b),
      port_b_(port_b),
      config_(config),
      scheduler_(&scheduler),
      loss_rng_(loss_seed) {
  auto& registry = obs::MetricsRegistry::global();
  const std::string id = strings::format("%s:%u-%s:%u", node_a_->name().c_str(), port_a_,
                                         node_b_->name().c_str(), port_b_);
  const char* dir_name[2] = {"ab", "ba"};
  for (int d = 0; d < 2; ++d) {
    obs::Labels labels{{"link", id}, {"dir", dir_name[d]}};
    dir_[d].m_delivered = &registry.counter("escape_link_delivered_total", labels);
    dir_[d].m_bytes = &registry.counter("escape_link_delivered_bytes_total", labels);
    dir_[d].m_dropped = &registry.counter("escape_link_dropped_total", labels);
    dir_[d].m_queue_depth = &registry.gauge("escape_link_queue_depth", labels);
  }
}

Link::~Link() {
  dir_[0].event.cancel();
  dir_[1].event.cancel();
}

SimDuration Link::tx_time(std::size_t bytes) const {
  // bits / (bits per second) in nanoseconds, rounded up.
  const std::uint64_t bits = static_cast<std::uint64_t>(bytes) * 8;
  return (bits * timeunit::kSecond + config_.bandwidth_bps - 1) / config_.bandwidth_bps;
}

void Link::set_up(bool up) {
  if (up == up_) return;
  up_ = up;
  if (!up_) {
    // The wire is cut: everything in flight is lost.
    for (auto& dir : dir_) {
      const std::uint64_t lost = dir.pending.size();
      dir.dropped += lost;
      dir.m_dropped->add(lost);
      dir.pending.clear();
      dir.event.cancel();
      dir.busy_until = 0;
      dir.m_queue_depth->set(0);
    }
  }
  for (auto& [_, fn] : listeners_) fn(*this, up_);
}

std::uint64_t Link::add_state_listener(StateListener fn) {
  const std::uint64_t id = next_listener_id_++;
  listeners_.emplace_back(id, std::move(fn));
  return id;
}

void Link::remove_state_listener(std::uint64_t id) {
  std::erase_if(listeners_, [id](const auto& entry) { return entry.first == id; });
}

bool Link::enqueue_frame(Direction& dir, net::Packet&& packet) {
  if (!up_) {
    ++dir.dropped;
    dir.m_dropped->add();
    return false;
  }
  if (config_.loss > 0.0 && loss_rng_.next_bool(config_.loss)) {
    ++dir.dropped;
    dir.m_dropped->add();
    return false;
  }

  // Queue admission: frames in flight beyond the queue bound are dropped
  // (tail drop), emulating the interface transmit ring.
  if (dir.pending.size() >= config_.queue_frames) {
    ++dir.dropped;
    dir.m_dropped->add();
    return false;
  }

  const SimTime now = scheduler_->now();
  const SimTime start = std::max(now, dir.busy_until);
  const SimTime tx_done = start + tx_time(packet.size());
  dir.busy_until = tx_done;
  dir.pending.push_back(PendingFrame{tx_done + config_.delay, std::move(packet)});
  dir.m_queue_depth->set(static_cast<double>(dir.pending.size()));
  return true;
}

void Link::transmit(int from_endpoint, net::Packet&& packet) {
  enqueue_frame(dir_[from_endpoint], std::move(packet));
  arm(from_endpoint);
}

void Link::transmit_batch(int from_endpoint, net::PacketBatch&& batch) {
  Direction& dir = dir_[from_endpoint];
  for (auto& p : batch) enqueue_frame(dir, std::move(p));
  arm(from_endpoint);
}

void Link::arm(int from_endpoint) {
  Direction& dir = dir_[from_endpoint];
  if (dir.pending.empty() || dir.event.pending()) return;
  dir.event = scheduler_->schedule_at(dir.pending.front().deliver_at,
                                      [this, from_endpoint] { fire(from_endpoint); });
}

void Link::fire(int from_endpoint) {
  Direction& dir = dir_[from_endpoint];
  const SimTime now = scheduler_->now();

  net::PacketBatch due;
  std::uint64_t due_bytes = 0;
  while (!dir.pending.empty() && dir.pending.front().deliver_at <= now) {
    due_bytes += dir.pending.front().packet.size();
    due.push_back(std::move(dir.pending.front().packet));
    dir.pending.pop_front();
  }
  dir.delivered += due.size();
  dir.m_delivered->add(due.size());
  dir.m_bytes->add(due_bytes);
  dir.m_queue_depth->set(static_cast<double>(dir.pending.size()));

  // Re-arm for the next frame before delivering: delivery can re-enter
  // transmit() on this same direction (forwarding loops), and that path
  // only arms when no event is pending.
  arm(from_endpoint);

  if (due.empty()) return;
  Node* dst = from_endpoint == 0 ? node_b_ : node_a_;
  const std::uint16_t dst_port = from_endpoint == 0 ? port_b_ : port_a_;
  dst->deliver_batch(dst_port, std::move(due));
}

std::string Link::to_string() const {
  return strings::format("link[%s:%u <-> %s:%u %.1fMbps %.2fms q=%zu]",
                         node_a_->name().c_str(), port_a_, node_b_->name().c_str(), port_b_,
                         static_cast<double>(config_.bandwidth_bps) / 1e6,
                         static_cast<double>(config_.delay) / 1e6, config_.queue_frames);
}

}  // namespace escape::netemu
