// Compiled first-match dispatch over a FilterExpr rule list, shared by
// IPClassifier and Firewall. The rule list is partially evaluated once
// per protocol leaf -- (dl_type, nw_proto) combinations: ip/tcp, ip/udp,
// ip/icmp, ip/other, arp, non-ip -- folding every protocol predicate to
// a constant under that leaf. Rules that fold to false vanish from the
// leaf; a rule that folds to true terminates the leaf's list (it always
// wins first-match there), so classification costs one two-level
// dispatch plus only the residual field tests (hosts/nets/ports/dscp/
// tcp-flags) that actually discriminate within the leaf.
//
// Equivalence contract: for any ClassifyCtx produced by
// ClassifyCtx::from_packet, classify(ctx) equals the linear first-match
// walk of the same rules (tcp_flags are only ever set on ip/tcp
// contexts, which is what lets flag tests fold to false elsewhere).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "click/filter_expr.hpp"

namespace escape::click {

class ClassifierTree {
 public:
  /// One rule of the list: `verdict` is returned on match. A catch-all
  /// rule (expr == nullptr) matches everything.
  struct RuleSpec {
    int verdict = -1;
    const FilterExpr* expr = nullptr;
  };

  /// (Re)compiles the dispatch for `rules` in first-match order;
  /// `miss_verdict` is returned when no rule matches.
  void compile(const std::vector<RuleSpec>& rules, int miss_verdict);

  int classify(const ClassifyCtx& ctx) const;

  bool compiled() const { return compiled_; }
  /// Residual (non-folded) rule tests across all leaves -- the work the
  /// protocol dispatch could not eliminate. Exposed via element handlers
  /// so tests/benches can assert the folding actually happened.
  std::size_t residual_rules() const;

 private:
  /// Protocol leaves of the dispatch; kNumLeaves-sized arrays index by this.
  enum Leaf : std::uint8_t { kIpTcp, kIpUdp, kIpIcmp, kIpOther, kArp, kNonIp, kNumLeaves };
  static Leaf leaf_of(const net::FlowKey& key);

  struct Residual {
    int verdict = -1;
    FilterExpr expr;  // already specialized for the leaf
  };
  struct LeafPlan {
    std::vector<Residual> rules;
    int terminal_verdict = -1;  // when no residual rule matches
  };

  /// Copies the subtree at `node` of `src` into `dst`, folding protocol
  /// predicates under `leaf`. Returns the new root index, or kConstFalse
  /// / kConstTrue when the subtree folds to a constant.
  static constexpr int kConstFalse = -1;
  static constexpr int kConstTrue = -2;
  static int specialize(const FilterExpr& src, int node, Leaf leaf, FilterExpr& dst);

  std::array<LeafPlan, kNumLeaves> leaves_;
  bool compiled_ = false;
};

}  // namespace escape::click
