// Link-layer and network-layer address types.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace escape::net {

/// A 48-bit Ethernet MAC address.
class MacAddr {
 public:
  constexpr MacAddr() : bytes_{} {}
  constexpr explicit MacAddr(std::array<std::uint8_t, 6> bytes) : bytes_(bytes) {}

  /// Constructs from the low 48 bits of `value` (host order), so
  /// MacAddr::from_u64(1) == 00:00:00:00:00:01.
  static constexpr MacAddr from_u64(std::uint64_t value) {
    std::array<std::uint8_t, 6> b{};
    for (int i = 5; i >= 0; --i) {
      b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(value & 0xff);
      value >>= 8;
    }
    return MacAddr(b);
  }

  /// Parses "aa:bb:cc:dd:ee:ff".
  static std::optional<MacAddr> parse(std::string_view s);

  static constexpr MacAddr broadcast() {
    return MacAddr({0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
  }

  const std::array<std::uint8_t, 6>& bytes() const { return bytes_; }

  std::uint64_t to_u64() const {
    std::uint64_t v = 0;
    for (auto b : bytes_) v = (v << 8) | b;
    return v;
  }

  bool is_broadcast() const { return *this == broadcast(); }
  bool is_multicast() const { return (bytes_[0] & 0x01) != 0; }

  std::string to_string() const;

  auto operator<=>(const MacAddr&) const = default;

 private:
  std::array<std::uint8_t, 6> bytes_;
};

/// An IPv4 address, stored in host byte order.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() : value_(0) {}
  constexpr explicit Ipv4Addr(std::uint32_t host_order) : value_(host_order) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) | d) {}

  /// Parses dotted-quad "10.0.0.1".
  static std::optional<Ipv4Addr> parse(std::string_view s);

  std::uint32_t value() const { return value_; }

  bool is_broadcast() const { return value_ == 0xffffffff; }
  bool is_multicast() const { return (value_ >> 28) == 0xe; }

  /// True if this address is inside `network`/`prefix_len`.
  bool in_subnet(Ipv4Addr network, int prefix_len) const;

  std::string to_string() const;

  auto operator<=>(const Ipv4Addr&) const = default;

 private:
  std::uint32_t value_;
};

}  // namespace escape::net

template <>
struct std::hash<escape::net::MacAddr> {
  std::size_t operator()(const escape::net::MacAddr& m) const noexcept {
    return std::hash<std::uint64_t>{}(m.to_u64());
  }
};

template <>
struct std::hash<escape::net::Ipv4Addr> {
  std::size_t operator()(const escape::net::Ipv4Addr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
