# Empty compiler generated dependencies file for escape_json.
# This may be replaced when dependencies are built.
