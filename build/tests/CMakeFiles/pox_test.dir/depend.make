# Empty dependencies file for pox_test.
# This may be replaced when dependencies are built.
