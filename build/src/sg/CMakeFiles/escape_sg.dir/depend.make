# Empty dependencies file for escape_sg.
# This may be replaced when dependencies are built.
