// Unit tests for the observability layer: metric registry semantics
// (get-or-create identity, kind mismatch, label formatting), the
// bounded histogram's accuracy against the exact util/stats Histogram,
// the text/JSON exposition formats, and the trace ring.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <thread>

#include "json/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/stats.hpp"

namespace escape::obs {
namespace {

// Each test uses its own registry instance; the process-wide global()
// accumulates across tests in this binary and is only probed where the
// test is insensitive to pre-existing entries.

TEST(Labels, FormatSortsEscapesAndBraces) {
  EXPECT_EQ(format_labels({}), "");
  EXPECT_EQ(format_labels({{"b", "2"}, {"a", "1"}}), "{a=\"1\",b=\"2\"}");
  EXPECT_EQ(format_labels({{"k", "a\"b"}}), "{k=\"a\\\"b\"}");
  EXPECT_EQ(format_labels({{"k", "a\\b"}}), "{k=\"a\\\\b\"}");
  EXPECT_EQ(format_labels({{"k", "a\nb"}}), "{k=\"a\\nb\"}");
}

TEST(Registry, GetOrCreateReturnsSameInstance) {
  MetricsRegistry registry;
  Counter& a = registry.counter("escape_test_total", {{"x", "1"}});
  Counter& b = registry.counter("escape_test_total", {{"x", "1"}});
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Registry, LabelOrderDoesNotChangeIdentity) {
  MetricsRegistry registry;
  Counter& a = registry.counter("escape_test_total", {{"a", "1"}, {"b", "2"}});
  Counter& b = registry.counter("escape_test_total", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Registry, DifferentLabelsAreDifferentMetrics) {
  MetricsRegistry registry;
  Counter& a = registry.counter("escape_test_total", {{"x", "1"}});
  Counter& b = registry.counter("escape_test_total", {{"x", "2"}});
  EXPECT_NE(&a, &b);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(Registry, KindMismatchReturnsDetachedMetric) {
  MetricsRegistry registry;
  Counter& c = registry.counter("escape_test_metric");
  c.add(7);
  // Same identity, wrong kind: the caller still gets a safe object...
  Gauge& g = registry.gauge("escape_test_metric");
  g.set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  // ...but it is never exported and the original is untouched.
  EXPECT_EQ(c.value(), 7u);
  EXPECT_EQ(registry.size(), 1u);
  const std::string text = registry.render_text();
  EXPECT_NE(text.find("escape_test_metric 7"), std::string::npos);
  EXPECT_EQ(text.find("1.5"), std::string::npos);
}

TEST(Registry, HasAndSize) {
  MetricsRegistry registry;
  EXPECT_FALSE(registry.has("escape_test_total"));
  registry.counter("escape_test_total");
  registry.gauge("escape_test_gauge", {{"x", "1"}});
  EXPECT_TRUE(registry.has("escape_test_total"));
  EXPECT_TRUE(registry.has("escape_test_gauge", {{"x", "1"}}));
  EXPECT_FALSE(registry.has("escape_test_gauge", {{"x", "2"}}));
  EXPECT_EQ(registry.size(), 2u);
}

TEST(Registry, CallbackGaugeExportsAndRemoves) {
  MetricsRegistry registry;
  int owner = 0;
  registry.callback_gauge("escape_test_cb", {{"id", "a"}}, &owner,
                          [] { return std::optional<double>(42.0); });
  registry.callback_gauge("escape_test_cb", {{"id", "b"}}, &owner,
                          [] { return std::optional<double>(std::nullopt); });
  std::string text = registry.render_text();
  EXPECT_NE(text.find("escape_test_cb{id=\"a\"} 42"), std::string::npos);
  // nullopt callbacks are skipped, not rendered as zero.
  EXPECT_EQ(text.find("id=\"b\""), std::string::npos);

  registry.remove_callbacks(&owner);
  EXPECT_EQ(registry.render_text().find("escape_test_cb"), std::string::npos);
}

TEST(Registry, CounterIsThreadSafe) {
  MetricsRegistry registry;
  Counter& c = registry.counter("escape_test_total");
  constexpr int kThreads = 4;
  constexpr int kAdds = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(Registry, ResetValuesKeepsMetricSet) {
  MetricsRegistry registry;
  registry.counter("escape_test_total").add(5);
  registry.gauge("escape_test_gauge").set(2.5);
  registry.histogram("escape_test_hist").record(10);
  registry.reset_values();
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_EQ(registry.counter("escape_test_total").value(), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge("escape_test_gauge").value(), 0.0);
  EXPECT_EQ(registry.histogram("escape_test_hist").count(), 0u);
}

TEST(RenderText, TypeLinesAndSortedSeries) {
  MetricsRegistry registry;
  registry.counter("escape_b_total", {{"x", "1"}}).add(1);
  registry.counter("escape_b_total", {{"x", "2"}}).add(2);
  registry.gauge("escape_a_gauge").set(3);
  const std::string text = registry.render_text();

  const auto type_a = text.find("# TYPE escape_a_gauge gauge");
  const auto type_b = text.find("# TYPE escape_b_total counter");
  ASSERT_NE(type_a, std::string::npos);
  ASSERT_NE(type_b, std::string::npos);
  EXPECT_LT(type_a, type_b);  // sorted by name
  // One TYPE line covers both label sets.
  EXPECT_EQ(text.find("# TYPE escape_b_total", type_b + 1), std::string::npos);
  EXPECT_NE(text.find("escape_b_total{x=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("escape_b_total{x=\"2\"} 2"), std::string::npos);
}

TEST(RenderText, HistogramSeries) {
  MetricsRegistry registry;
  auto& h = registry.histogram("escape_test_us", {{"k", "v"}});
  for (int i = 1; i <= 100; ++i) h.record(i);
  const std::string text = registry.render_text();
  EXPECT_NE(text.find("# TYPE escape_test_us histogram"), std::string::npos);
  EXPECT_NE(text.find("escape_test_us_count{k=\"v\"} 100"), std::string::npos);
  EXPECT_NE(text.find("escape_test_us_sum{k=\"v\"} 5050"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.50\""), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.95\""), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
}

TEST(SnapshotJson, ParsesAndCarriesValues) {
  MetricsRegistry registry;
  registry.counter("escape_test_total", {{"x", "1"}}).add(9);
  registry.histogram("escape_test_us").record(5);
  auto doc = json::parse(registry.snapshot_json().dump(2));
  ASSERT_TRUE(doc.ok());
  const auto& metrics = (*doc)["metrics"];
  ASSERT_EQ(metrics.as_array().size(), 2u);
  bool saw_counter = false, saw_hist = false;
  for (std::size_t i = 0; i < metrics.as_array().size(); ++i) {
    const auto& m = metrics[i];
    if (m["kind"].as_string() == "counter") {
      saw_counter = true;
      EXPECT_EQ(m["name"].as_string(), "escape_test_total");
      EXPECT_DOUBLE_EQ(m["value"].as_double(), 9.0);
      EXPECT_EQ(m["labels"]["x"].as_string(), "1");
    } else if (m["kind"].as_string() == "histogram") {
      saw_hist = true;
      EXPECT_DOUBLE_EQ(m["count"].as_double(), 1.0);
      EXPECT_DOUBLE_EQ(m["sum"].as_double(), 5.0);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_hist);
}

// --- BoundedHistogram ---------------------------------------------------------

TEST(BoundedHistogram, ExactStatsMatchReference) {
  BoundedHistogram bounded;
  Histogram exact;
  std::mt19937 rng(42);
  std::lognormal_distribution<double> dist(3.0, 1.0);
  for (int i = 0; i < 10'000; ++i) {
    const double s = dist(rng);
    bounded.record(s);
    exact.record(s);
  }
  EXPECT_EQ(bounded.count(), exact.count());
  EXPECT_DOUBLE_EQ(bounded.min(), exact.min());
  EXPECT_DOUBLE_EQ(bounded.max(), exact.max());
  EXPECT_NEAR(bounded.mean(), exact.mean(), exact.mean() * 1e-9);
}

TEST(BoundedHistogram, PercentilesWithinBucketError) {
  BoundedHistogram bounded;
  Histogram exact;
  std::mt19937 rng(7);
  std::lognormal_distribution<double> dist(4.0, 1.5);
  for (int i = 0; i < 20'000; ++i) {
    const double s = dist(rng);
    bounded.record(s);
    exact.record(s);
  }
  // 2^(1/4) buckets bound the estimate to ~9% of the true value; allow
  // 15% for nearest-rank wobble near bucket edges.
  for (double p : {50.0, 90.0, 95.0, 99.0}) {
    const double truth = exact.percentile(p);
    const double estimate = bounded.percentile(p);
    EXPECT_NEAR(estimate, truth, truth * 0.15) << "p" << p;
  }
}

TEST(BoundedHistogram, DegenerateDistributionIsExact) {
  BoundedHistogram h;
  for (int i = 0; i < 100; ++i) h.record(720.8);
  EXPECT_DOUBLE_EQ(h.p50(), 720.8);
  EXPECT_DOUBLE_EQ(h.p99(), 720.8);
  EXPECT_DOUBLE_EQ(h.min(), 720.8);
  EXPECT_DOUBLE_EQ(h.max(), 720.8);
}

TEST(BoundedHistogram, EmptyAndClear) {
  BoundedHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
  h.record(10);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(BoundedHistogram, MemoryIsBounded) {
  BoundedHistogram h;
  const std::size_t buckets = h.bucket_count();
  for (int i = 0; i < 100'000; ++i) h.record(static_cast<double>(i % 5000) + 1);
  EXPECT_EQ(h.bucket_count(), buckets);  // no growth with samples
  EXPECT_EQ(h.count(), 100'000u);
}

TEST(BoundedHistogram, OutOfRangeSamplesClampToEdgeBuckets) {
  BoundedHistogram h(HistogramOptions{.min_bound = 1.0, .growth = 2.0, .buckets = 4});
  h.record(0.001);  // below min_bound -> bucket 0
  h.record(1e12);   // beyond the last bucket -> clamped
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 1e12);
  // Percentiles stay clamped into [min, max].
  EXPECT_GE(h.p50(), h.min());
  EXPECT_LE(h.p99(), h.max());
}

// --- stats::packet_clones bridge ---------------------------------------------

TEST(PacketClones, LivesInGlobalRegistry) {
  Counter& c = stats::packet_clones();
  EXPECT_EQ(&c, &stats::packet_clones());
  const std::uint64_t before = c.value();
  c.add(2);
  EXPECT_EQ(c.value(), before + 2);
  EXPECT_TRUE(MetricsRegistry::global().has("escape_packet_clones_total"));
}

// --- TraceRing ----------------------------------------------------------------

TEST(Trace, InstantAndSpanEvents) {
  TraceRing ring(16);
  ring.instant(100, "test", "tick", "n=1");
  const std::uint64_t span = ring.begin_span(200, "test", "work");
  EXPECT_NE(span, 0u);
  ring.end_span(span, 500);
  auto events = ring.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].phase, TracePhase::kInstant);
  EXPECT_EQ(events[0].ts, 100u);
  EXPECT_EQ(events[0].arg, "n=1");
  EXPECT_EQ(events[1].phase, TracePhase::kBegin);
  EXPECT_EQ(events[2].phase, TracePhase::kEnd);
  EXPECT_EQ(events[1].span_id, events[2].span_id);
  EXPECT_EQ(events[2].ts - events[1].ts, 300u);
}

TEST(Trace, RingWrapsOldestFirstAndCountsDrops) {
  TraceRing ring(4);
  for (int i = 0; i < 10; ++i) {
    ring.instant(static_cast<SimTime>(i), "test", "e" + std::to_string(i));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first order of the surviving tail.
  EXPECT_EQ(events.front().name, "e6");
  EXPECT_EQ(events.back().name, "e9");
}

TEST(Trace, ToJsonRoundTrips) {
  TraceRing ring(8);
  ring.instant(42, "cat", "name", "arg");
  auto doc = json::parse(ring.to_json().dump());
  ASSERT_TRUE(doc.ok());
  EXPECT_DOUBLE_EQ((*doc)["dropped"].as_double(), 0.0);
  ASSERT_EQ((*doc)["events"].as_array().size(), 1u);
  EXPECT_EQ((*doc)["events"][std::size_t{0}]["category"].as_string(), "cat");
}

TEST(Trace, ClearAndSetCapacity) {
  TraceRing ring(4);
  for (int i = 0; i < 6; ++i) ring.instant(0, "t", "e");
  ring.set_capacity(8);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 8; ++i) ring.instant(0, "t", "e");
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.dropped(), 0u);
}

}  // namespace
}  // namespace escape::obs
