# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/click_test[1]_include.cmake")
include("/root/repo/build/tests/filter_test[1]_include.cmake")
include("/root/repo/build/tests/openflow_test[1]_include.cmake")
include("/root/repo/build/tests/pox_test[1]_include.cmake")
include("/root/repo/build/tests/netemu_test[1]_include.cmake")
include("/root/repo/build/tests/netconf_test[1]_include.cmake")
include("/root/repo/build/tests/sg_test[1]_include.cmake")
include("/root/repo/build/tests/service_test[1]_include.cmake")
include("/root/repo/build/tests/orchestrator_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
