// Discrete-event scheduler: the single virtual clock driving the whole
// emulated environment (links, Click timers, OpenFlow timeouts, traffic
// sources, NETCONF transport).
//
// The scheduler is deliberately single-threaded and deterministic: events
// at equal timestamps fire in scheduling order (FIFO tie-break via a
// monotonically increasing sequence number). Handles allow cancellation,
// which is how Click timers are unscheduled and flow-entry timeouts are
// refreshed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/time.hpp"

namespace escape {

class EventScheduler;

namespace detail {
/// Shared state between an EventHandle and the queue entry. `live` points
/// at the owning scheduler's live-event counter so cancellation keeps the
/// pending count exact even before the entry is reaped from the heap.
struct EventState {
  bool done = false;  // fired or cancelled
  std::shared_ptr<std::size_t> live;
};
}  // namespace detail

/// Cancellable handle to a scheduled event. Copies share the same
/// underlying state.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent; safe to call
  /// after the owning scheduler was destroyed.
  void cancel();

  /// True if the event is still scheduled to fire.
  bool pending() const { return state_ && !state_->done; }

 private:
  friend class EventScheduler;
  explicit EventHandle(std::shared_ptr<detail::EventState> state) : state_(std::move(state)) {}
  std::shared_ptr<detail::EventState> state_;
};

/// A virtual-time event queue.
class EventScheduler {
 public:
  using Callback = std::function<void()>;

  EventScheduler() : live_(std::make_shared<std::size_t>(0)) {}
  EventScheduler(const EventScheduler&) = delete;
  EventScheduler& operator=(const EventScheduler&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `cb` to run `delay` nanoseconds from now.
  EventHandle schedule(SimDuration delay, Callback cb);

  /// Schedules `cb` at an absolute virtual time (must be >= now()).
  EventHandle schedule_at(SimTime when, Callback cb);

  /// Runs events until the queue is empty. Returns the number of events
  /// executed. `max_events` guards against runaway periodic events.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs events with timestamp <= deadline, then advances the clock to
  /// the deadline even if the queue drained earlier. Returns events run.
  std::size_t run_until(SimTime deadline, std::size_t max_events = SIZE_MAX);

  /// Runs for `duration` of virtual time from the current clock.
  std::size_t run_for(SimDuration duration, std::size_t max_events = SIZE_MAX) {
    return run_until(now_ + duration, max_events);
  }

  /// Executes the single earliest pending event, if any. Returns whether
  /// an event ran.
  bool step();

  /// Number of pending (non-cancelled, not yet fired) events.
  std::size_t pending_events() const { return *live_; }

  bool empty() const { return *live_ == 0; }

  /// Total number of events executed since construction.
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    SimTime when = 0;
    std::uint64_t seq = 0;
    Callback cb;
    std::shared_ptr<detail::EventState> state;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool pop_and_run();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::shared_ptr<std::size_t> live_;
  std::priority_queue<Entry, std::vector<Entry>, EntryLater> queue_;
};

}  // namespace escape
