// Tests for the controller platform and its applications: handshake,
// L2 learning, LLDP discovery and chain steering.
#include <gtest/gtest.h>

#include "net/builder.hpp"
#include "netemu/network.hpp"
#include "pox/discovery.hpp"
#include "pox/l2_learning.hpp"
#include "pox/steering.hpp"

namespace escape::pox {
namespace {

using net::Ipv4Addr;
using net::MacAddr;

/// Two hosts, one switch -- the minimal learning-switch scenario.
struct OneSwitchFixture : ::testing::Test {
  EventScheduler sched;
  netemu::Network net{sched};
  Controller controller{sched, 10 * timeunit::kMicrosecond};

  netemu::Host* h1 = nullptr;
  netemu::Host* h2 = nullptr;

  void SetUp() override {
    h1 = &net.add_host("h1", MacAddr::from_u64(0xa1), Ipv4Addr(10, 0, 0, 1));
    h2 = &net.add_host("h2", MacAddr::from_u64(0xa2), Ipv4Addr(10, 0, 0, 2));
    net.add_switch("s1", 1);
    ASSERT_TRUE(net.add_link("h1", 0, "s1", 1).ok());
    ASSERT_TRUE(net.add_link("h2", 0, "s1", 2).ok());
  }

  void connect() {
    net.attach_controller(controller);
    sched.run_for(milliseconds(1));
  }
};

TEST_F(OneSwitchFixture, HandshakeBringsConnectionUp) {
  connect();
  auto dpids = controller.connected_switches();
  ASSERT_EQ(dpids.size(), 1u);
  EXPECT_EQ(dpids[0], 1u);
  SwitchConnection* conn = controller.connection(1);
  ASSERT_NE(conn, nullptr);
  EXPECT_TRUE(conn->up());
  EXPECT_EQ(conn->ports().size(), 2u);
}

TEST_F(OneSwitchFixture, L2LearningEstablishesBidirectionalFlow) {
  auto l2 = std::make_shared<L2Learning>();
  controller.add_app(l2);
  connect();

  // First packet floods (dst unknown), reply installs both directions.
  h1->send(net::make_udp_packet(h1->mac(), h2->mac(), h1->ip(), h2->ip(), 1000, 2000));
  sched.run_for(milliseconds(5));
  EXPECT_EQ(h2->rx_packets(), 1u);
  EXPECT_GE(l2->floods(), 1u);

  h2->send(net::make_udp_packet(h2->mac(), h1->mac(), h2->ip(), h1->ip(), 2000, 1000));
  sched.run_for(milliseconds(5));
  EXPECT_EQ(h1->rx_packets(), 1u);
  EXPECT_GE(l2->installs(), 1u);

  // The third h1->h2 packet still misses (only the h2->h1 flow was
  // installed so far) and installs the forward flow; after that the
  // datapath switches without controller involvement.
  h1->send(net::make_udp_packet(h1->mac(), h2->mac(), h1->ip(), h2->ip(), 1000, 2000));
  sched.run_for(milliseconds(5));
  EXPECT_EQ(h2->rx_packets(), 2u);
  const auto packet_ins_before = controller.packet_ins_handled();
  h1->send(net::make_udp_packet(h1->mac(), h2->mac(), h1->ip(), h2->ip(), 1000, 2000));
  sched.run_for(milliseconds(5));
  EXPECT_EQ(h2->rx_packets(), 3u);
  EXPECT_EQ(controller.packet_ins_handled(), packet_ins_before);

  // Learned table is inspectable.
  const auto* table = l2->table(1);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->at(h1->mac()), 1);
  EXPECT_EQ(table->at(h2->mac()), 2);
}

TEST_F(OneSwitchFixture, BroadcastAlwaysFloods) {
  auto l2 = std::make_shared<L2Learning>();
  controller.add_app(l2);
  connect();
  h1->send(net::PacketBuilder()
               .eth(h1->mac(), MacAddr::broadcast(), net::ethertype::kArp)
               .arp(net::ArpView::kRequest, h1->mac(), h1->ip(), MacAddr(), h2->ip())
               .build());
  sched.run_for(milliseconds(5));
  // h2 answers the ARP request (broadcast reached it).
  EXPECT_GE(h1->rx_packets() + h2->rx_packets(), 1u);
  EXPECT_GE(l2->floods(), 1u);
}

/// Three switches in a line for discovery and steering.
struct LineFixture : ::testing::Test {
  EventScheduler sched;
  netemu::Network net{sched};
  Controller controller{sched, 10 * timeunit::kMicrosecond};

  void SetUp() override {
    net.add_switch("s1", 1);
    net.add_switch("s2", 2);
    net.add_switch("s3", 3);
    net.add_host("h1", MacAddr::from_u64(0xa1), Ipv4Addr(10, 0, 0, 1));
    net.add_host("h2", MacAddr::from_u64(0xa2), Ipv4Addr(10, 0, 0, 2));
    ASSERT_TRUE(net.add_link("h1", 0, "s1", 1).ok());
    ASSERT_TRUE(net.add_link("s1", 2, "s2", 1).ok());
    ASSERT_TRUE(net.add_link("s2", 2, "s3", 1).ok());
    ASSERT_TRUE(net.add_link("h2", 0, "s3", 2).ok());
  }
};

TEST_F(LineFixture, DiscoveryFindsAllAdjacencies) {
  auto discovery = std::make_shared<Discovery>(milliseconds(100));
  controller.add_app(discovery);
  int callbacks = 0;
  discovery->set_link_callback([&](const Link&) { ++callbacks; });
  net.attach_controller(controller);
  sched.run_for(milliseconds(500));

  auto links = discovery->links();
  // 2 inter-switch adjacencies, both directions. (Host links carry no
  // LLDP speaker, so they are not discovered.)
  EXPECT_EQ(links.size(), 4u);
  EXPECT_EQ(callbacks, 4);
  EXPECT_TRUE(discovery->bidirectional(1, 2, 2, 1));
  EXPECT_TRUE(discovery->bidirectional(2, 2, 3, 1));
  EXPECT_FALSE(discovery->bidirectional(1, 2, 3, 1));
}

TEST_F(LineFixture, ProactiveChainInstallForwardsEndToEnd) {
  auto steering = std::make_shared<TrafficSteering>();
  controller.add_app(steering);
  net.attach_controller(controller);
  sched.run_for(milliseconds(1));

  ChainPath path;
  path.chain_id = 7;
  path.match = openflow::Match().dl_type(net::ethertype::kIpv4).nw_dst(Ipv4Addr(10, 0, 0, 2));
  path.hops = {{1, 1, 2}, {2, 1, 2}, {3, 1, 2}};
  ASSERT_TRUE(steering->install_chain(path).ok());
  EXPECT_TRUE(steering->installed(7));
  sched.run_for(milliseconds(1));  // flow-mods propagate

  auto* h1 = net.host("h1");
  auto* h2 = net.host("h2");
  h1->send(net::make_udp_packet(h1->mac(), h2->mac(), h1->ip(), h2->ip(), 1, 2));
  sched.run_for(milliseconds(10));
  EXPECT_EQ(h2->rx_packets(), 1u);

  // Removal stops forwarding.
  ASSERT_TRUE(steering->remove_chain(7).ok());
  sched.run_for(milliseconds(1));
  h1->send(net::make_udp_packet(h1->mac(), h2->mac(), h1->ip(), h2->ip(), 1, 2));
  sched.run_for(milliseconds(10));
  EXPECT_EQ(h2->rx_packets(), 1u);
  EXPECT_FALSE(steering->installed(7));
}

TEST_F(LineFixture, ReactiveChainInstallsOnFirstPacket) {
  auto steering = std::make_shared<TrafficSteering>();
  controller.add_app(steering);
  net.attach_controller(controller);
  sched.run_for(milliseconds(1));
  auto& rtt = obs::MetricsRegistry::global().histogram("escape_of_packet_in_rtt_us",
                                                       {{"dpid", "1"}});
  const std::size_t rtt_before = rtt.count();

  ChainPath path;
  path.chain_id = 9;
  path.match = openflow::Match().dl_type(net::ethertype::kIpv4).nw_dst(Ipv4Addr(10, 0, 0, 2));
  path.hops = {{1, 1, 2}, {2, 1, 2}, {3, 1, 2}};
  steering->register_chain(path);
  EXPECT_FALSE(steering->installed(9));

  auto* h1 = net.host("h1");
  auto* h2 = net.host("h2");
  h1->send(net::make_udp_packet(h1->mac(), h2->mac(), h1->ip(), h2->ip(), 1, 2));
  sched.run_for(milliseconds(20));
  EXPECT_TRUE(steering->installed(9));
  EXPECT_EQ(steering->reactive_installs(), 1u);
  // The triggering (buffered) packet itself is released through the chain.
  EXPECT_EQ(h2->rx_packets(), 1u);
  // The flow-mod releasing the buffer closed the packet-in RTT span:
  // one round trip of the 10 us control channel, so >= 20 us.
  ASSERT_GT(rtt.count(), rtt_before);
  EXPECT_GE(rtt.max(), 20.0);

  // Follow-up traffic uses the installed flows.
  h1->send(net::make_udp_packet(h1->mac(), h2->mac(), h1->ip(), h2->ip(), 1, 2));
  sched.run_for(milliseconds(10));
  EXPECT_EQ(h2->rx_packets(), 2u);
}

TEST_F(LineFixture, InstallFailsForUnknownSwitch) {
  auto steering = std::make_shared<TrafficSteering>();
  controller.add_app(steering);
  net.attach_controller(controller);
  sched.run_for(milliseconds(1));

  ChainPath path;
  path.chain_id = 1;
  path.hops = {{99, 0, 1}};
  auto s = steering->install_chain(path);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, "pox.steering.switch-down");
  EXPECT_FALSE(steering->installed(1));
}

TEST_F(LineFixture, RemoveUnknownChainErrors) {
  auto steering = std::make_shared<TrafficSteering>();
  controller.add_app(steering);
  EXPECT_FALSE(steering->remove_chain(12345).ok());
}

TEST_F(LineFixture, IdleTimeoutChainFallsBackToPending) {
  auto steering = std::make_shared<TrafficSteering>();
  controller.add_app(steering);
  net.attach_controller(controller);
  sched.run_for(milliseconds(1));

  ChainPath path;
  path.chain_id = 3;
  path.match = openflow::Match().dl_type(net::ethertype::kIpv4).nw_dst(Ipv4Addr(10, 0, 0, 2));
  path.hops = {{1, 1, 2}, {2, 1, 2}, {3, 1, 2}};
  path.idle_timeout = milliseconds(50);
  ASSERT_TRUE(steering->install_chain(path).ok());
  sched.run_for(milliseconds(1));

  auto* h1 = net.host("h1");
  auto* h2 = net.host("h2");
  h1->send(net::make_udp_packet(h1->mac(), h2->mac(), h1->ip(), h2->ip(), 1, 2));
  sched.run_for(milliseconds(10));
  EXPECT_EQ(h2->rx_packets(), 1u);

  // Let the flows idle out; the chain reverts to pending and reinstalls
  // reactively on the next packet.
  sched.run_for(seconds(3));
  EXPECT_FALSE(steering->installed(3));
  h1->send(net::make_udp_packet(h1->mac(), h2->mac(), h1->ip(), h2->ip(), 1, 2));
  sched.run_for(milliseconds(20));
  EXPECT_TRUE(steering->installed(3));
  EXPECT_EQ(h2->rx_packets(), 2u);
}

TEST(ControllerApps, AppLookupByName) {
  EventScheduler sched;
  Controller controller(sched);
  controller.add_app(std::make_shared<TrafficSteering>());
  EXPECT_NE(controller.app("traffic_steering"), nullptr);
  EXPECT_EQ(controller.app("nope"), nullptr);
}

}  // namespace
}  // namespace escape::pox
