#include "orchestrator/health_monitor.hpp"

namespace escape::orchestrator {

HealthMonitor::HealthMonitor(EventScheduler& scheduler, HealthMonitorOptions options)
    : scheduler_(&scheduler), options_(options) {
  auto& registry = obs::MetricsRegistry::global();
  m_probe_ok_ = &registry.counter("escape_health_probes_total", {{"result", "ok"}});
  m_probe_fail_ = &registry.counter("escape_health_probes_total", {{"result", "fail"}});
  m_agents_down_ = &registry.gauge("escape_health_agents_down");
  m_dpids_diverged_ = &registry.gauge("escape_health_dpids_diverged");
}

HealthMonitor::~HealthMonitor() {
  stop();
  for (auto& [link, id] : link_listeners_) link->remove_state_listener(id);
}

void HealthMonitor::watch_agent(const std::string& container,
                                netconf::VnfAgentClient* client) {
  Watch watch;
  watch.client = client;
  watches_[container] = watch;
  // A dying transport is authoritative: no need to wait for probes.
  std::weak_ptr<bool> alive = alive_;
  client->session().on_closed([this, alive, container](const Error& error) {
    if (alive.expired()) return;
    auto it = watches_.find(container);
    if (it != watches_.end()) mark_down(container, it->second, error);
  });
}

void HealthMonitor::watch_links(netemu::Network& network) {
  std::weak_ptr<bool> alive = alive_;
  for (const auto& link : network.links()) {
    const std::uint64_t id =
        link->add_state_listener([this, alive](netemu::Link& l, bool up) {
          if (alive.expired()) return;
          log_.info("link ", l.node(0)->name(), " <-> ", l.node(1)->name(), " is now ",
                    up ? "up" : "down");
          if (link_state_) link_state_(l.node(0)->name(), l.node(1)->name(), up);
        });
    link_listeners_.emplace_back(link.get(), id);
  }
}

void HealthMonitor::watch_steering(pox::TrafficSteering& steering) {
  std::weak_ptr<bool> alive = alive_;
  steering.set_divergence_callbacks(
      [this, alive](openflow::DatapathId dpid) {
        if (alive.expired()) return;
        if (!diverged_.insert(dpid).second) return;
        m_dpids_diverged_->set(static_cast<double>(diverged_.size()));
        log_.warn("steering state diverged on dpid=", dpid);
        if (dpid_diverged_) dpid_diverged_(dpid);
      },
      [this, alive](openflow::DatapathId dpid, std::size_t repaired) {
        if (alive.expired()) return;
        diverged_.erase(dpid);
        m_dpids_diverged_->set(static_cast<double>(diverged_.size()));
        if (repaired > 0) log_.info("steering resynced dpid=", dpid, ", repaired ", repaired, " rule(s)");
        if (dpid_resynced_) dpid_resynced_(dpid, repaired);
      });
}

void HealthMonitor::start() {
  if (running_) return;
  running_ = true;
  probe_all();
}

void HealthMonitor::stop() {
  running_ = false;
  tick_.cancel();
}

bool HealthMonitor::agent_healthy(const std::string& container) const {
  auto it = watches_.find(container);
  return it != watches_.end() && !it->second.down;
}

std::size_t HealthMonitor::agents_down() const {
  std::size_t n = 0;
  for (const auto& [_, watch] : watches_) n += watch.down;
  return n;
}

void HealthMonitor::probe_all() {
  if (!running_) return;
  for (auto& [container, watch] : watches_) probe(container, watch);
  std::weak_ptr<bool> alive = alive_;
  tick_ = scheduler_->schedule(options_.probe_interval, [this, alive] {
    if (alive.expired()) return;
    probe_all();
  });
}

void HealthMonitor::probe(const std::string& container, Watch& watch) {
  if (watch.probe_outstanding) return;  // previous probe still in flight
  watch.probe_outstanding = true;

  auto op = std::make_unique<xml::Element>("get-config");
  op->add_child("source").add_child("running");
  netconf::RpcOptions options;
  options.timeout = options_.probe_timeout;
  options.max_attempts = 1;  // the failure counter is the retry policy here

  std::weak_ptr<bool> alive = alive_;
  watch.client->session().rpc(
      std::move(op), options,
      [this, alive, container](Result<std::unique_ptr<xml::Element>> reply) {
        if (alive.expired()) return;
        auto it = watches_.find(container);
        if (it == watches_.end()) return;
        Watch& watch = it->second;
        watch.probe_outstanding = false;
        if (reply.ok()) {
          m_probe_ok_->add();
          mark_up(container, watch);
        } else {
          m_probe_fail_->add();
          ++watch.consecutive_failures;
          if (watch.consecutive_failures >= options_.failure_threshold) {
            mark_down(container, watch, reply.error());
          }
        }
      });
}

void HealthMonitor::mark_down(const std::string& container, Watch& watch,
                              const Error& error) {
  watch.consecutive_failures = std::max(watch.consecutive_failures,
                                        options_.failure_threshold);
  if (watch.down) return;
  watch.down = true;
  m_agents_down_->set(static_cast<double>(agents_down()));
  log_.warn("agent for ", container, " is DOWN (", error.code, ": ", error.message, ")");
  if (agent_down_) agent_down_(container);
}

void HealthMonitor::mark_up(const std::string& container, Watch& watch) {
  watch.consecutive_failures = 0;
  if (!watch.down) return;
  watch.down = false;
  m_agents_down_->set(static_cast<double>(agents_down()));
  log_.info("agent for ", container, " is UP again");
  if (agent_up_) agent_up_(container);
}

}  // namespace escape::orchestrator
