// OpenFlow 1.0 wire codec: binary serialization of the control-channel
// message set, following the ofp10 structures (ofp_header, ofp_match,
// ofp_flow_mod, ofp_packet_in/out, ofp_flow_removed, ofp_phy_port,
// stats). The controller platform can run its channels through this
// codec (EnvironmentOptions::serialize_control_channel), making the
// bytes on the emulated control network the same bytes a real OF 1.0
// switch would exchange.
//
// Known lossy corners (documented, covered by tests):
//   * timeouts travel as whole seconds (uint16), as on the wire;
//   * ErrorMsg carries free text in the error data field with type/code
//     zeroed (our errors are structured strings, not ofp error enums).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "openflow/messages.hpp"
#include "util/result.hpp"

namespace escape::openflow::wire {

/// OF 1.0 message type codes (ofp_type).
enum class MsgType : std::uint8_t {
  kHello = 0,
  kError = 1,
  kEchoRequest = 2,
  kEchoReply = 3,
  kFeaturesRequest = 5,
  kFeaturesReply = 6,
  kPacketIn = 10,
  kFlowRemoved = 11,
  kPortStatus = 12,
  kPacketOut = 13,
  kFlowMod = 14,
  kStatsRequest = 16,
  kStatsReply = 17,
  kBarrierRequest = 18,
  kBarrierReply = 19,
};

inline constexpr std::uint8_t kVersion = 0x01;
inline constexpr std::size_t kHeaderSize = 8;
inline constexpr std::size_t kMatchSize = 40;
inline constexpr std::size_t kPhyPortSize = 48;
inline constexpr std::uint32_t kBufferNone = 0xffffffff;

/// Serializes `message` with transaction id `xid` into OF 1.0 bytes.
std::vector<std::uint8_t> encode(const Message& message, std::uint32_t xid = 0);

struct Decoded {
  Message message;
  std::uint32_t xid = 0;
};

/// Parses one complete OF 1.0 message. Errors on truncated/malformed
/// input, unknown types, or wrong version.
Result<Decoded> decode(std::span<const std::uint8_t> bytes);

/// Frame splitter for a byte stream of concatenated OF messages: returns
/// how many bytes at the front form complete messages (0 if the first is
/// incomplete).
std::size_t complete_prefix(std::span<const std::uint8_t> bytes);

// Exposed for tests: ofp_match <-> Match.
void encode_match(const Match& match, std::uint8_t* out);
Match decode_match(const std::uint8_t* in);

}  // namespace escape::openflow::wire
