# CMake generated Testfile for 
# Source directory: /root/repo/src/escape
# Build directory: /root/repo/build/src/escape
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
