// Deterministic workload generator: heavy-tailed flow arrivals and
// service-chain deploy/teardown churn over fat-tree topologies.
//
// This is the synthetic-load side of the million-flow classification
// work (bench E8 and `escape-run --workload`): instead of hand-written
// topology + service-graph JSON, a seeded plan describes a fat-tree(k)
// substrate, a Poisson flow-arrival process with Pareto-distributed flow
// sizes and Zipf-skewed destination popularity, and a background churn
// process that deploys and tears down service chains while traffic runs.
//
// Layering: this file emits only plain data (names, index pairs,
// timestamped events). Materializing the plan into a live Environment /
// TopologySpec is the caller's job (tools/escape_run.cpp, bench) so the
// util layer stays dependency-free. Everything is derived from
// `escape::Rng`; the same Options always produce the same Plan.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace escape::workload {

struct Options {
  std::uint64_t seed = 1;

  /// Fat-tree arity: k pods, k/2 edge + k/2 aggregation switches per
  /// pod, (k/2)^2 core switches, k/2 hosts per edge switch (k^3/4 hosts
  /// total). Must be even and >= 2; odd values are rounded up.
  std::uint32_t fattree_k = 4;

  /// Number of flow arrivals to generate.
  std::uint64_t flows = 1000;

  /// Poisson arrival rate, flows per virtual second.
  double arrival_rate = 200.0;

  /// Pareto flow-size tail index (smaller = heavier tail) and minimum
  /// packets per flow.
  double pareto_alpha = 1.3;
  std::uint64_t pareto_min = 4;

  /// Zipf exponent for destination-host popularity (0 = uniform).
  double zipf_s = 1.1;

  /// Number of service-chain slots cycled by the churn process, and the
  /// rate (events per virtual second) at which slots flip between
  /// deployed and torn down. chains == 0 disables churn.
  std::uint32_t chains = 4;
  double churn_rate = 2.0;

  /// Fraction of arrivals routed between a chain slot's endpoint pair
  /// (hosts 2s and 2s+1 for slot s). Those flows are deliverable while
  /// the slot's chain is up; the remainder are arbitrary host pairs that
  /// exercise the table-miss / packet-in path.
  double chain_traffic_fraction = 0.25;
};

/// An undirected substrate link between two named nodes.
struct LinkSpec {
  std::string a;
  std::string b;
};

/// One flow: at virtual time `at`, host `src_host` starts a UDP flow of
/// `packets` packets towards host `dst_host`.
struct FlowArrival {
  SimTime at = 0;
  std::size_t src_host = 0;
  std::size_t dst_host = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint64_t packets = 0;
};

/// One churn event: deploy (or tear down) the chain occupying `slot`.
/// Events for a slot strictly alternate starting with a deploy, so a
/// consumer can map slot -> live chain id.
struct ChurnEvent {
  SimTime at = 0;
  bool deploy = true;
  std::uint32_t slot = 0;
};

struct Plan {
  std::vector<std::string> hosts;
  std::vector<std::string> switches;
  /// VNF containers, one per pod, attached to that pod's first edge
  /// switch -- substrate capacity for the churn process's chains.
  std::vector<std::string> containers;
  std::vector<LinkSpec> links;
  std::vector<FlowArrival> arrivals;  // sorted by .at
  std::vector<ChurnEvent> churn;      // sorted by .at
  /// Virtual time of the last generated event.
  SimTime horizon = 0;
};

/// Generates the deterministic plan for `opts`. Same Options (including
/// seed) => byte-identical Plan on every platform.
Plan generate(const Options& opts);

}  // namespace escape::workload
