// The emulated network: owns nodes and links, provides Mininet-style
// topology construction ("define VNF containers and the rest of the
// topology" -- demo step 1).
#pragma once

#include <memory>
#include <vector>

#include "netemu/host.hpp"
#include "netemu/link.hpp"
#include "netemu/switch_node.hpp"
#include "netemu/vnf_container.hpp"
#include "pox/core.hpp"

namespace escape::netemu {

/// How Network::partition groups nodes into shards.
enum class ShardBy {
  kNone,    // everything on shard 0 (sequential; the default)
  kSwitch,  // one shard per switch cluster; hosts/containers join the
            // nearest switch (hop-count BFS, ties to the smaller shard id)
  kRegion,  // one shard per region = node-name prefix before the first '_'
            // ("edge_s1" and "edge_h1" share the "edge" shard)
};

class Network {
 public:
  explicit Network(EventScheduler& scheduler) : scheduler_(&scheduler) {}

  EventScheduler& scheduler() { return *scheduler_; }

  /// Adds a host with explicit addresses.
  Host& add_host(const std::string& name, net::MacAddr mac, net::Ipv4Addr ip);

  /// Adds a host with auto-assigned addresses (10.0.0.N, MAC ...:N).
  Host& add_host(const std::string& name);

  /// Adds an OpenFlow switch; dpid defaults to a running counter.
  SwitchNode& add_switch(const std::string& name, openflow::DatapathId dpid = 0);

  /// Adds a VNF container (execution environment).
  VnfContainer& add_container(const std::string& name, double cpu_capacity = 1.0,
                              std::size_t max_vnfs = 16);

  /// Wires a[port_a] <-> b[port_b]. Switch datapath ports are declared
  /// automatically.
  Status add_link(const std::string& a, std::uint16_t port_a, const std::string& b,
                  std::uint16_t port_b, LinkConfig config = {});

  Node* node(const std::string& name);
  Host* host(const std::string& name);
  SwitchNode* switch_node(const std::string& name);
  VnfContainer* container(const std::string& name);

  std::vector<std::string> node_names() const;
  const std::vector<std::unique_ptr<Link>>& links() const { return links_; }

  /// First link between the named nodes, either orientation (nullptr if
  /// none). With parallel links, returns the earliest-added one.
  Link* find_link(const std::string& a, const std::string& b);

  /// Administratively raises/lowers the first link between `a` and `b`
  /// (the fault plane's link-down / link-up).
  Status set_link_state(const std::string& a, const std::string& b, bool up);

  /// Attaches every switch to the controller (OF handshake begins; run
  /// the scheduler to complete it).
  void attach_controller(pox::Controller& controller);

  /// Splits the topology into shards and rebinds every node and link.
  /// Clusters joined by a zero-delay link are merged (zero lookahead
  /// would force sequential execution anyway), and the cluster count is
  /// capped at 64 (round-robin fold). Grows `sched` to the resulting
  /// width with `threads` workers and returns the shard count. Must run
  /// before the controller is attached and before any event is queued
  /// on a node that moves off shard 0; kNone leaves everything in place.
  std::size_t partition(ShardedScheduler& sched, ShardBy mode, std::size_t threads = 0);

  std::size_t switch_count() const;
  std::size_t host_count() const;
  std::size_t container_count() const;

 private:
  template <typename T>
  T* typed_node(const std::string& name);

  EventScheduler* scheduler_;
  std::map<std::string, std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::uint64_t next_auto_addr_ = 1;
  openflow::DatapathId next_dpid_ = 1;
};

}  // namespace escape::netemu
