
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/service/catalog.cpp" "src/service/CMakeFiles/escape_service.dir/catalog.cpp.o" "gcc" "src/service/CMakeFiles/escape_service.dir/catalog.cpp.o.d"
  "/root/repo/src/service/formats.cpp" "src/service/CMakeFiles/escape_service.dir/formats.cpp.o" "gcc" "src/service/CMakeFiles/escape_service.dir/formats.cpp.o.d"
  "/root/repo/src/service/layer.cpp" "src/service/CMakeFiles/escape_service.dir/layer.cpp.o" "gcc" "src/service/CMakeFiles/escape_service.dir/layer.cpp.o.d"
  "/root/repo/src/service/topologies.cpp" "src/service/CMakeFiles/escape_service.dir/topologies.cpp.o" "gcc" "src/service/CMakeFiles/escape_service.dir/topologies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sg/CMakeFiles/escape_sg.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/escape_json.dir/DependInfo.cmake"
  "/root/repo/build/src/netemu/CMakeFiles/escape_netemu.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/escape_util.dir/DependInfo.cmake"
  "/root/repo/build/src/click/CMakeFiles/escape_click.dir/DependInfo.cmake"
  "/root/repo/build/src/pox/CMakeFiles/escape_pox.dir/DependInfo.cmake"
  "/root/repo/build/src/openflow/CMakeFiles/escape_openflow.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/escape_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
