// Protocol header views and codecs: Ethernet, ARP, IPv4, ICMP, UDP, TCP.
//
// Each header type offers a non-owning view over packet bytes with typed
// accessors, a `parse` that validates bounds, and a writer used by
// PacketBuilder. All multi-byte fields are big-endian on the wire.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "net/addr.hpp"
#include "net/packet.hpp"

namespace escape::net {

// EtherTypes and IP protocol numbers used by the framework.
namespace ethertype {
inline constexpr std::uint16_t kIpv4 = 0x0800;
inline constexpr std::uint16_t kArp = 0x0806;
inline constexpr std::uint16_t kLldp = 0x88cc;  // used by topology discovery
}  // namespace ethertype

namespace ipproto {
inline constexpr std::uint8_t kIcmp = 1;
inline constexpr std::uint8_t kTcp = 6;
inline constexpr std::uint8_t kUdp = 17;
}  // namespace ipproto

/// Internet checksum (RFC 1071) over `data`.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

// --- Ethernet -------------------------------------------------------------

struct EthernetView {
  static constexpr std::size_t kSize = 14;

  MacAddr dst;
  MacAddr src;
  std::uint16_t ethertype = 0;
  std::span<const std::uint8_t> payload;

  static std::optional<EthernetView> parse(std::span<const std::uint8_t> frame);
};

/// Writes an Ethernet header into `out[0..14)`. Precondition: out.size() >= 14.
void write_ethernet(std::span<std::uint8_t> out, MacAddr dst, MacAddr src,
                    std::uint16_t ethertype);

/// In-place rewrite helpers for a full frame (used by OpenFlow actions).
void set_eth_dst(Packet& p, MacAddr dst);
void set_eth_src(Packet& p, MacAddr src);

// --- ARP (Ethernet/IPv4 only) ----------------------------------------------

struct ArpView {
  static constexpr std::size_t kSize = 28;
  static constexpr std::uint16_t kRequest = 1;
  static constexpr std::uint16_t kReply = 2;

  std::uint16_t opcode = 0;
  MacAddr sender_mac;
  Ipv4Addr sender_ip;
  MacAddr target_mac;
  Ipv4Addr target_ip;

  static std::optional<ArpView> parse(std::span<const std::uint8_t> l3);
};

void write_arp(std::span<std::uint8_t> out, std::uint16_t opcode, MacAddr sender_mac,
               Ipv4Addr sender_ip, MacAddr target_mac, Ipv4Addr target_ip);

// --- IPv4 -------------------------------------------------------------------

struct Ipv4View {
  static constexpr std::size_t kMinSize = 20;

  std::uint8_t ihl = 5;  // header length in 32-bit words
  std::uint8_t dscp = 0;
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;
  std::uint8_t ttl = 0;
  std::uint8_t protocol = 0;
  std::uint16_t checksum = 0;
  Ipv4Addr src;
  Ipv4Addr dst;
  std::span<const std::uint8_t> payload;

  std::size_t header_len() const { return std::size_t{ihl} * 4; }

  static std::optional<Ipv4View> parse(std::span<const std::uint8_t> l3);

  /// Recomputes the header checksum over `l3` and returns whether the
  /// stored checksum was valid.
  static bool verify_checksum(std::span<const std::uint8_t> l3);
};

struct Ipv4Fields {
  std::uint8_t dscp = 0;
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = ipproto::kUdp;
  Ipv4Addr src;
  Ipv4Addr dst;
  std::uint16_t total_length = 0;  // header + payload
};

/// Writes a 20-byte IPv4 header with correct checksum into out[0..20).
void write_ipv4(std::span<std::uint8_t> out, const Ipv4Fields& fields);

// In-place mutators over a full Ethernet frame carrying IPv4; they fix the
// header checksum. No-ops (returning false) if the frame is not IPv4.
bool set_ipv4_src(Packet& p, Ipv4Addr addr);
bool set_ipv4_dst(Packet& p, Ipv4Addr addr);
bool set_ipv4_dscp(Packet& p, std::uint8_t dscp);
bool dec_ipv4_ttl(Packet& p);  // false if not IPv4 or TTL already 0

// --- ICMP (echo subset) -----------------------------------------------------

struct IcmpView {
  static constexpr std::size_t kMinSize = 8;
  static constexpr std::uint8_t kEchoReply = 0;
  static constexpr std::uint8_t kEchoRequest = 8;

  std::uint8_t type = 0;
  std::uint8_t code = 0;
  std::uint16_t identifier = 0;
  std::uint16_t sequence = 0;
  std::span<const std::uint8_t> payload;

  static std::optional<IcmpView> parse(std::span<const std::uint8_t> l4);
};

void write_icmp_echo(std::span<std::uint8_t> out, std::uint8_t type, std::uint16_t identifier,
                     std::uint16_t sequence, std::span<const std::uint8_t> payload);

// --- UDP --------------------------------------------------------------------

struct UdpView {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;
  std::span<const std::uint8_t> payload;

  static std::optional<UdpView> parse(std::span<const std::uint8_t> l4);
};

void write_udp(std::span<std::uint8_t> out, std::uint16_t src_port, std::uint16_t dst_port,
               std::uint16_t length);

// In-place port rewrites over a full frame (IPv4/UDP or IPv4/TCP).
bool set_l4_src_port(Packet& p, std::uint16_t port);
bool set_l4_dst_port(Packet& p, std::uint16_t port);

// --- TCP (header only; no state machine) -------------------------------------

struct TcpView {
  static constexpr std::size_t kMinSize = 20;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_offset = 5;  // words
  std::uint8_t flags = 0;        // FIN=1 SYN=2 RST=4 PSH=8 ACK=16
  std::uint16_t window = 0;
  std::span<const std::uint8_t> payload;

  bool syn() const { return flags & 0x02; }
  bool ack_flag() const { return flags & 0x10; }
  bool fin() const { return flags & 0x01; }
  bool rst() const { return flags & 0x04; }

  static std::optional<TcpView> parse(std::span<const std::uint8_t> l4);
};

struct TcpFields {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
};

void write_tcp(std::span<std::uint8_t> out, const TcpFields& fields);

}  // namespace escape::net
