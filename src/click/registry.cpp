// Registration of the standard element library.
#include "click/elements.hpp"
#include "click/flow.hpp"

namespace escape::click {

namespace {
template <typename T>
void reg(ElementRegistry& r, const char* name) {
  r.register_class(name, [] { return std::make_unique<T>(); });
}
}  // namespace

void register_standard_elements(ElementRegistry& registry) {
  reg<Discard>(registry, "Discard");
  reg<InfiniteSource>(registry, "InfiniteSource");
  reg<RatedSource>(registry, "RatedSource");
  reg<TimedSource>(registry, "TimedSource");
  reg<Counter>(registry, "Counter");
  reg<Print>(registry, "Print");
  reg<Tee>(registry, "Tee");
  reg<Switch>(registry, "Switch");
  reg<RoundRobinSwitch>(registry, "RoundRobinSwitch");
  reg<Paint>(registry, "Paint");
  reg<PaintSwitch>(registry, "PaintSwitch");
  reg<CheckPaint>(registry, "CheckPaint");
  reg<Classifier>(registry, "Classifier");
  reg<IPClassifier>(registry, "IPClassifier");
  reg<IPFilter>(registry, "IPFilter");
  reg<Queue>(registry, "Queue");
  reg<Unqueue>(registry, "Unqueue");
  reg<RatedUnqueue>(registry, "RatedUnqueue");
  reg<RoundRobinSched>(registry, "RoundRobinSched");
  reg<PrioSched>(registry, "PrioSched");
  reg<CheckIPHeader>(registry, "CheckIPHeader");
  reg<DecIPTTL>(registry, "DecIPTTL");
  reg<SetIPDSCP>(registry, "SetIPDSCP");
  reg<IPRewriter>(registry, "IPRewriter");
  reg<BandwidthShaper>(registry, "BandwidthShaper");
  reg<Delay>(registry, "Delay");
  reg<RandomSample>(registry, "RandomSample");
  reg<Meter>(registry, "Meter");
  reg<Firewall>(registry, "Firewall");
  reg<NAPT>(registry, "NAPT");
  reg<LoadBalancer>(registry, "LoadBalancer");
  reg<DpiCounter>(registry, "DpiCounter");
  reg<FromDevice>(registry, "FromDevice");
  reg<ToDevice>(registry, "ToDevice");
  register_flow_elements(registry);
}

void register_flow_elements(ElementRegistry& registry) {
  reg<FlowManager>(registry, "FlowManager");
  reg<FlowNAT>(registry, "FlowNAT");
  reg<FlowLB>(registry, "FlowLB");
  reg<TcpReassembler>(registry, "TcpReassembler");
  reg<StreamIDS>(registry, "StreamIDS");
}

}  // namespace escape::click
