// Emulated end host: the Service Access Point (SAP) of a service chain.
// Hosts answer ARP, source measurable UDP traffic flows and sink
// everything addressed to them, recording loss and latency.
#pragma once

#include <functional>
#include <vector>

#include "net/builder.hpp"
#include "netemu/node.hpp"
#include "obs/metrics.hpp"

namespace escape::netemu {

class Host : public Node {
 public:
  Host(std::string name, EventScheduler& scheduler, net::MacAddr mac, net::Ipv4Addr ip);

  NodeKind kind() const override { return NodeKind::kHost; }
  net::MacAddr mac() const { return mac_; }
  net::Ipv4Addr ip() const { return ip_; }

  void deliver(std::uint16_t port, net::Packet&& packet) override;

  /// Sends a raw frame out of port 0 (hosts are single-homed).
  void send(net::Packet&& packet);

  /// Starts a UDP flow toward `dst`: `count` frames of `frame_size`
  /// bytes at `rate_pps`. Frames carry sequence numbers and timestamps.
  void start_udp_flow(net::MacAddr dst_mac, net::Ipv4Addr dst_ip, std::uint16_t sport,
                      std::uint16_t dport, std::uint64_t count, std::uint64_t rate_pps,
                      std::size_t frame_size = 98);

  /// Sends one ICMP echo request ("ping"). The peer's reply carries the
  /// request timestamp back, so latency_us() of the replies measures
  /// round-trip time.
  void send_ping(net::MacAddr dst_mac, net::Ipv4Addr dst_ip, std::uint16_t sequence);

  /// Echo requests this host answered.
  std::uint64_t echo_requests_served() const { return echo_requests_; }

  /// Registers an observer for every delivered frame (after internal
  /// accounting). Multiple observers allowed.
  void on_receive(std::function<void(const net::Packet&)> fn) {
    observers_.push_back(std::move(fn));
  }

  // --- measurement (the "standard tools to send and inspect live
  // traffic" of demo step 4) ------------------------------------------------

  std::uint64_t rx_packets() const { return rx_packets_; }
  std::uint64_t rx_bytes() const { return rx_bytes_; }
  std::uint64_t tx_packets() const { return tx_packets_; }

  /// One-way latency of received timestamped frames, in microseconds.
  /// Bounded-memory histogram: count/mean/min/max exact, percentiles
  /// bucket estimates (see obs/metrics.hpp).
  const obs::BoundedHistogram& latency_us() const { return latency_us_; }

  /// Highest sequence number seen + 1 (0 when none), for loss estimation.
  std::uint64_t max_seq_seen() const { return max_seq_seen_; }

  void reset_counters();

 private:
  void send_next_flow_packet();

  net::MacAddr mac_;
  net::Ipv4Addr ip_;

  // Active generator state (one flow at a time; enough for the demo).
  struct FlowState {
    net::MacAddr dst_mac;
    net::Ipv4Addr dst_ip;
    std::uint16_t sport = 0, dport = 0;
    std::uint64_t remaining = 0;
    std::uint64_t seq = 0;
    SimDuration gap = 0;
    std::size_t frame_size = 98;
    // Prototype frame: headers encoded once, copied into pooled buffers.
    std::optional<net::Packet> proto;
  };
  std::optional<FlowState> flow_;

  std::uint64_t rx_packets_ = 0;
  std::uint64_t rx_bytes_ = 0;
  std::uint64_t tx_packets_ = 0;
  std::uint64_t max_seq_seen_ = 0;
  std::uint64_t echo_requests_ = 0;
  // Per-instance histogram (authoritative for tests/benches); the
  // registry mirrors below feed the process-wide view.
  obs::BoundedHistogram latency_us_;
  obs::Counter* m_rx_packets_;
  obs::Counter* m_rx_bytes_;
  obs::Counter* m_tx_packets_;
  obs::BoundedHistogram* m_latency_us_;
  std::vector<std::function<void(const net::Packet&)>> observers_;
};

}  // namespace escape::netemu
