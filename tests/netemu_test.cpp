// Tests for the emulated infrastructure: link bandwidth/delay/queue
// semantics, hosts, and the VNF container lifecycle (the cgroup-style
// CPU share model included).
#include <gtest/gtest.h>

#include "net/builder.hpp"
#include "netemu/network.hpp"
#include "netemu/pcap.hpp"

#include <cstring>

namespace escape::netemu {
namespace {

using net::Ipv4Addr;
using net::MacAddr;

TEST(Link, PropagationDelayIsApplied) {
  EventScheduler sched;
  Network net(sched);
  auto& a = net.add_host("a", MacAddr::from_u64(1), Ipv4Addr(10, 0, 0, 1));
  auto& b = net.add_host("b", MacAddr::from_u64(2), Ipv4Addr(10, 0, 0, 2));
  LinkConfig cfg;
  cfg.bandwidth_bps = 1'000'000'000;
  cfg.delay = milliseconds(2);
  ASSERT_TRUE(net.add_link("a", 0, "b", 0, cfg).ok());

  net::Packet p = net::make_udp_packet(a.mac(), b.mac(), a.ip(), b.ip(), 1, 2, 1000);
  p.set_timestamp(sched.now());
  a.send(std::move(p));
  sched.run_for(milliseconds(1));
  EXPECT_EQ(b.rx_packets(), 0u);  // still propagating
  sched.run_for(milliseconds(2));
  EXPECT_EQ(b.rx_packets(), 1u);
  // Latency = serialization (8 us for 1000 B at 1 Gb/s) + 2 ms propagation.
  EXPECT_NEAR(b.latency_us().mean(), 2008.0, 1.0);
}

TEST(Link, BandwidthSerializesBackToBack) {
  EventScheduler sched;
  Network net(sched);
  auto& a = net.add_host("a", MacAddr::from_u64(1), Ipv4Addr(10, 0, 0, 1));
  auto& b = net.add_host("b", MacAddr::from_u64(2), Ipv4Addr(10, 0, 0, 2));
  LinkConfig cfg;
  cfg.bandwidth_bps = 8'000'000;  // 1000-byte frame = 1 ms serialization
  cfg.delay = 0;
  ASSERT_TRUE(net.add_link("a", 0, "b", 0, cfg).ok());

  for (int i = 0; i < 10; ++i) {
    net::Packet p = net::make_udp_packet(a.mac(), b.mac(), a.ip(), b.ip(), 1, 2, 1000);
    p.set_timestamp(sched.now());
    a.send(std::move(p));
  }
  sched.run_for(milliseconds(5));
  EXPECT_EQ(b.rx_packets(), 5u);  // one per millisecond
  sched.run_for(milliseconds(5));
  EXPECT_EQ(b.rx_packets(), 10u);
}

TEST(Link, QueueBoundDropsExcess) {
  EventScheduler sched;
  Network net(sched);
  auto& a = net.add_host("a", MacAddr::from_u64(1), Ipv4Addr(10, 0, 0, 1));
  auto& b = net.add_host("b", MacAddr::from_u64(2), Ipv4Addr(10, 0, 0, 2));
  LinkConfig cfg;
  cfg.bandwidth_bps = 8'000'000;
  cfg.queue_frames = 3;
  ASSERT_TRUE(net.add_link("a", 0, "b", 0, cfg).ok());

  for (int i = 0; i < 10; ++i) {
    a.send(net::make_udp_packet(a.mac(), b.mac(), a.ip(), b.ip(), 1, 2, 1000));
  }
  sched.run();
  EXPECT_EQ(b.rx_packets(), 3u);
  EXPECT_EQ(net.links()[0]->dropped(0), 7u);
  EXPECT_EQ(net.links()[0]->delivered(0), 3u);
}

TEST(Link, RandomLossDropsApproximately) {
  EventScheduler sched;
  Network net(sched);
  auto& a = net.add_host("a", MacAddr::from_u64(1), Ipv4Addr(10, 0, 0, 1));
  auto& b = net.add_host("b", MacAddr::from_u64(2), Ipv4Addr(10, 0, 0, 2));
  LinkConfig cfg;
  cfg.loss = 0.2;
  cfg.queue_frames = 100000;
  ASSERT_TRUE(net.add_link("a", 0, "b", 0, cfg).ok());

  for (int i = 0; i < 2000; ++i) {
    a.send(net::make_udp_packet(a.mac(), b.mac(), a.ip(), b.ip(), 1, 2, 100));
    sched.run_for(microseconds(10));
  }
  sched.run();
  EXPECT_NEAR(static_cast<double>(b.rx_packets()) / 2000.0, 0.8, 0.05);
}

TEST(Host, ArpResponder) {
  EventScheduler sched;
  Network net(sched);
  auto& a = net.add_host("a", MacAddr::from_u64(1), Ipv4Addr(10, 0, 0, 1));
  auto& b = net.add_host("b", MacAddr::from_u64(2), Ipv4Addr(10, 0, 0, 2));
  ASSERT_TRUE(net.add_link("a", 0, "b", 0).ok());

  bool got_reply = false;
  a.on_receive([&](const net::Packet& p) {
    auto eth = net::EthernetView::parse(p.bytes());
    if (eth && eth->ethertype == net::ethertype::kArp) {
      auto arp = net::ArpView::parse(eth->payload);
      if (arp && arp->opcode == net::ArpView::kReply) {
        got_reply = arp->sender_ip == Ipv4Addr(10, 0, 0, 2) &&
                    arp->sender_mac == MacAddr::from_u64(2);
      }
    }
  });
  a.send(net::PacketBuilder()
             .eth(a.mac(), MacAddr::broadcast(), net::ethertype::kArp)
             .arp(net::ArpView::kRequest, a.mac(), a.ip(), MacAddr(), b.ip())
             .build());
  sched.run();
  EXPECT_TRUE(got_reply);
  // ARP requests for other addresses are ignored.
  a.send(net::PacketBuilder()
             .eth(a.mac(), MacAddr::broadcast(), net::ethertype::kArp)
             .arp(net::ArpView::kRequest, a.mac(), a.ip(), MacAddr(), Ipv4Addr(9, 9, 9, 9))
             .build());
  std::uint64_t before = a.rx_packets();
  sched.run();
  EXPECT_EQ(a.rx_packets(), before);
}

TEST(Host, UdpFlowPacingAndSequencing) {
  EventScheduler sched;
  Network net(sched);
  auto& a = net.add_host("a", MacAddr::from_u64(1), Ipv4Addr(10, 0, 0, 1));
  auto& b = net.add_host("b", MacAddr::from_u64(2), Ipv4Addr(10, 0, 0, 2));
  ASSERT_TRUE(net.add_link("a", 0, "b", 0).ok());

  a.start_udp_flow(b.mac(), b.ip(), 1000, 2000, /*count=*/100, /*rate_pps=*/1000);
  sched.run_for(milliseconds(50));
  // Packets sent at t=0..49ms have arrived (the 50 ms one is still on
  // the wire: ~50 us link delay).
  EXPECT_EQ(b.rx_packets(), 50u);
  sched.run();
  EXPECT_EQ(b.rx_packets(), 100u);
  EXPECT_EQ(b.max_seq_seen(), 100u);
  EXPECT_EQ(a.tx_packets(), 100u);
  b.reset_counters();
  EXPECT_EQ(b.rx_packets(), 0u);
}

TEST(Network, NodeManagement) {
  EventScheduler sched;
  Network net(sched);
  net.add_host("h1");
  net.add_switch("s1");
  net.add_container("c1");
  EXPECT_EQ(net.host_count(), 1u);
  EXPECT_EQ(net.switch_count(), 1u);
  EXPECT_EQ(net.container_count(), 1u);
  EXPECT_NE(net.node("h1"), nullptr);
  EXPECT_EQ(net.node("zzz"), nullptr);
  EXPECT_NE(net.host("h1"), nullptr);
  EXPECT_EQ(net.host("s1"), nullptr);  // wrong type
  EXPECT_THROW(net.add_host("h1"), std::invalid_argument);
}

TEST(Network, AutoAddressesAreUnique) {
  EventScheduler sched;
  Network net(sched);
  auto& h1 = net.add_host("h1");
  auto& h2 = net.add_host("h2");
  EXPECT_NE(h1.mac(), h2.mac());
  EXPECT_NE(h1.ip(), h2.ip());
}

TEST(Network, PortConflictRejected) {
  EventScheduler sched;
  Network net(sched);
  net.add_host("a");
  net.add_host("b");
  net.add_host("c");
  ASSERT_TRUE(net.add_link("a", 0, "b", 0).ok());
  auto s = net.add_link("a", 0, "c", 0);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, "netemu.port-in-use");
}

// --- VnfContainer -------------------------------------------------------------------

constexpr const char* kMonitorConfig =
    "from :: FromDevice(DEVNAME in0);\n"
    "cnt :: Counter;\n"
    "to :: ToDevice(DEVNAME out0);\n"
    "from -> cnt -> to;\n";

struct ContainerFixture : ::testing::Test {
  EventScheduler sched;
  VnfContainer c{"c1", sched, /*cpu=*/1.0, /*max_vnfs=*/4};
};

TEST_F(ContainerFixture, LifecycleInitStartStopRemove) {
  ASSERT_TRUE(c.init_vnf("v1", "monitor", kMonitorConfig, 0.5).ok());
  auto info = c.vnf_info("v1");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->status, VnfStatus::kInitialized);
  EXPECT_DOUBLE_EQ(c.cpu_in_use(), 0.0);  // not running yet

  ASSERT_TRUE(c.start_vnf("v1").ok());
  EXPECT_DOUBLE_EQ(c.cpu_in_use(), 0.5);
  EXPECT_EQ(c.vnf_info("v1")->status, VnfStatus::kRunning);

  ASSERT_TRUE(c.stop_vnf("v1").ok());
  EXPECT_DOUBLE_EQ(c.cpu_in_use(), 0.0);
  EXPECT_EQ(c.vnf_info("v1")->status, VnfStatus::kStopped);

  ASSERT_TRUE(c.remove_vnf("v1").ok());
  EXPECT_FALSE(c.vnf_info("v1").ok());
}

TEST_F(ContainerFixture, LifecycleErrors) {
  EXPECT_FALSE(c.start_vnf("ghost").ok());
  ASSERT_TRUE(c.init_vnf("v1", "monitor", kMonitorConfig, 0.5).ok());
  EXPECT_FALSE(c.init_vnf("v1", "monitor", kMonitorConfig, 0.5).ok());  // dup
  EXPECT_FALSE(c.stop_vnf("v1").ok());    // not running
  EXPECT_FALSE(c.init_vnf("v2", "x", kMonitorConfig, 0.0).ok());   // bad share
  EXPECT_FALSE(c.init_vnf("v2", "x", kMonitorConfig, 1.5).ok());   // share > capacity
  ASSERT_TRUE(c.start_vnf("v1").ok());
  EXPECT_FALSE(c.start_vnf("v1").ok());   // already running
  EXPECT_FALSE(c.remove_vnf("v1").ok());  // must stop first
}

TEST_F(ContainerFixture, CpuBudgetEnforced) {
  ASSERT_TRUE(c.init_vnf("v1", "m", kMonitorConfig, 0.6).ok());
  ASSERT_TRUE(c.init_vnf("v2", "m", kMonitorConfig, 0.6).ok());
  ASSERT_TRUE(c.start_vnf("v1").ok());
  auto s = c.start_vnf("v2");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, "container.cpu-exhausted");
  // Stopping v1 frees budget.
  ASSERT_TRUE(c.stop_vnf("v1").ok());
  EXPECT_TRUE(c.start_vnf("v2").ok());
}

TEST_F(ContainerFixture, SlotLimitEnforced) {
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(c.init_vnf("v" + std::to_string(i), "m", kMonitorConfig, 0.1).ok());
  }
  auto s = c.init_vnf("v4", "m", kMonitorConfig, 0.1);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, "container.full");
}

TEST_F(ContainerFixture, BadClickConfigRejectedAtStart) {
  ASSERT_TRUE(c.init_vnf("v1", "m", "zzz ->;", 0.1).ok());
  EXPECT_FALSE(c.start_vnf("v1").ok());
  EXPECT_EQ(c.vnf_info("v1")->status, VnfStatus::kInitialized);
}

TEST_F(ContainerFixture, PacketPathThroughVnf) {
  // c1 wired to a peer host through port 0 (in) and port 1 (out).
  Network net(sched);
  auto& container = net.add_container("cx", 1.0, 4);
  auto& hin = net.add_host("hin", MacAddr::from_u64(1), Ipv4Addr(10, 0, 0, 1));
  auto& hout = net.add_host("hout", MacAddr::from_u64(2), Ipv4Addr(10, 0, 0, 2));
  ASSERT_TRUE(net.add_link("hin", 0, "cx", 0).ok());
  ASSERT_TRUE(net.add_link("cx", 1, "hout", 0).ok());

  ASSERT_TRUE(container.init_vnf("mon", "monitor", kMonitorConfig, 0.2).ok());
  ASSERT_TRUE(container.start_vnf("mon").ok());
  ASSERT_TRUE(container.connect_vnf("mon", "in0", 0).ok());
  ASSERT_TRUE(container.connect_vnf("mon", "out0", 1).ok());

  hin.send(net::make_udp_packet(hin.mac(), hout.mac(), hin.ip(), hout.ip(), 1, 2));
  sched.run();
  EXPECT_EQ(hout.rx_packets(), 1u);
  EXPECT_EQ(container.read_handler("mon", "cnt.count").value(), "1");

  // Disconnect: traffic stops flowing.
  ASSERT_TRUE(container.disconnect_vnf("mon", "in0").ok());
  hin.send(net::make_udp_packet(hin.mac(), hout.mac(), hin.ip(), hout.ip(), 1, 2));
  sched.run();
  EXPECT_EQ(hout.rx_packets(), 1u);
}

TEST_F(ContainerFixture, ConnectConflictsAndErrors) {
  ASSERT_TRUE(c.init_vnf("v1", "m", kMonitorConfig, 0.1).ok());
  ASSERT_TRUE(c.init_vnf("v2", "m", kMonitorConfig, 0.1).ok());
  ASSERT_TRUE(c.connect_vnf("v1", "in0", 0).ok());
  auto s = c.connect_vnf("v2", "in0", 0);  // port taken by v1
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, "container.port-in-use");
  // Re-connecting the same device to the same port is fine (idempotent).
  EXPECT_TRUE(c.connect_vnf("v1", "in0", 0).ok());
  EXPECT_FALSE(c.disconnect_vnf("v1", "bogus").ok());
  EXPECT_FALSE(c.connect_vnf("ghost", "in0", 3).ok());
}

TEST_F(ContainerFixture, StoppedVnfKeepsFinalHandlerSnapshot) {
  Network net(sched);
  auto& container = net.add_container("cy", 1.0, 4);
  auto& hin = net.add_host("hy", MacAddr::from_u64(1), Ipv4Addr(10, 0, 0, 1));
  ASSERT_TRUE(net.add_link("hy", 0, "cy", 0).ok());
  ASSERT_TRUE(container.init_vnf("mon", "monitor", kMonitorConfig, 0.2).ok());
  ASSERT_TRUE(container.start_vnf("mon").ok());
  ASSERT_TRUE(container.connect_vnf("mon", "in0", 0).ok());
  hin.send(net::make_udp_packet(hin.mac(), MacAddr::from_u64(9), hin.ip(),
                                Ipv4Addr(10, 0, 0, 9), 1, 2));
  sched.run();
  ASSERT_TRUE(container.stop_vnf("mon").ok());
  auto info = container.vnf_info("mon");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->handlers.at("cnt.count"), "1");
  // Live handler reads are rejected once stopped.
  EXPECT_FALSE(container.read_handler("mon", "cnt.count").ok());
}

TEST_F(ContainerFixture, WriteHandlerThroughContainer) {
  ASSERT_TRUE(c.init_vnf("v1", "m", kMonitorConfig, 0.1).ok());
  ASSERT_TRUE(c.start_vnf("v1").ok());
  ASSERT_TRUE(c.write_handler("v1", "cnt.reset", "").ok());
  EXPECT_FALSE(c.write_handler("v1", "cnt.bogus", "").ok());
}


// --- pcap capture -----------------------------------------------------------------

TEST(Pcap, WritesParseableFile) {
  EventScheduler sched;
  PcapWriter writer;
  const std::string path = ::testing::TempDir() + "/escape_test.pcap";
  ASSERT_TRUE(writer.open(path).ok());

  net::Packet p1 = net::make_udp_packet(MacAddr::from_u64(1), MacAddr::from_u64(2),
                                        Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 1, 2, 98);
  net::Packet p2 = net::make_udp_packet(MacAddr::from_u64(3), MacAddr::from_u64(4),
                                        Ipv4Addr(10, 0, 0, 3), Ipv4Addr(10, 0, 0, 4), 3, 4, 60);
  ASSERT_TRUE(writer.write(p1, seconds(1) + microseconds(500)).ok());
  ASSERT_TRUE(writer.write(p2, seconds(2)).ok());
  EXPECT_EQ(writer.frames_written(), 2u);
  writer.close();

  // Re-read and verify the structure byte by byte.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::uint8_t header[24];
  ASSERT_EQ(std::fread(header, 1, 24, f), 24u);
  std::uint32_t magic, linktype;
  std::memcpy(&magic, &header[0], 4);
  std::memcpy(&linktype, &header[20], 4);
  EXPECT_EQ(magic, 0xa1b2c3d4u);
  EXPECT_EQ(linktype, 1u);  // Ethernet

  std::uint8_t record[16];
  ASSERT_EQ(std::fread(record, 1, 16, f), 16u);
  std::uint32_t ts_sec, ts_usec, caplen, origlen;
  std::memcpy(&ts_sec, &record[0], 4);
  std::memcpy(&ts_usec, &record[4], 4);
  std::memcpy(&caplen, &record[8], 4);
  std::memcpy(&origlen, &record[12], 4);
  EXPECT_EQ(ts_sec, 1u);
  EXPECT_EQ(ts_usec, 500u);
  EXPECT_EQ(caplen, 98u);
  EXPECT_EQ(origlen, 98u);
  std::vector<std::uint8_t> frame(caplen);
  ASSERT_EQ(std::fread(frame.data(), 1, caplen, f), caplen);
  EXPECT_TRUE(std::equal(frame.begin(), frame.end(), p1.data().begin()));
  std::fclose(f);
}

TEST(Pcap, SnaplenTruncatesCapturedBytesOnly) {
  PcapWriter writer;
  const std::string path = ::testing::TempDir() + "/escape_snap.pcap";
  ASSERT_TRUE(writer.open(path, /*snaplen=*/32).ok());
  net::Packet big = net::make_udp_packet(MacAddr::from_u64(1), MacAddr::from_u64(2),
                                         Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), 1, 2, 1500);
  ASSERT_TRUE(writer.write(big, 0).ok());
  writer.close();

  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 24, SEEK_SET);
  std::uint8_t record[16];
  ASSERT_EQ(std::fread(record, 1, 16, f), 16u);
  std::uint32_t caplen, origlen;
  std::memcpy(&caplen, &record[8], 4);
  std::memcpy(&origlen, &record[12], 4);
  EXPECT_EQ(caplen, 32u);
  EXPECT_EQ(origlen, 1500u);
  std::fclose(f);
}

TEST(Pcap, CaptureFromHostObserver) {
  EventScheduler sched;
  Network net(sched);
  auto& a = net.add_host("a", MacAddr::from_u64(1), Ipv4Addr(10, 0, 0, 1));
  auto& b = net.add_host("b", MacAddr::from_u64(2), Ipv4Addr(10, 0, 0, 2));
  ASSERT_TRUE(net.add_link("a", 0, "b", 0).ok());

  PcapWriter writer;
  const std::string path = ::testing::TempDir() + "/escape_host.pcap";
  ASSERT_TRUE(writer.open(path).ok());
  b.on_receive([&](const net::Packet& p) { (void)writer.write(p, sched.now()); });

  a.start_udp_flow(b.mac(), b.ip(), 1, 2, 10, 1000);
  sched.run();
  EXPECT_EQ(writer.frames_written(), 10u);
}

TEST(Pcap, ErrorsOnClosedWriterAndBadPath) {
  PcapWriter writer;
  net::Packet p = net::make_udp_packet(MacAddr::from_u64(1), MacAddr::from_u64(2),
                                       Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), 1, 2);
  EXPECT_FALSE(writer.write(p, 0).ok());
  EXPECT_FALSE(writer.open("/nonexistent-dir-zzz/x.pcap").ok());
}

}  // namespace
}  // namespace escape::netemu
