file(REMOVE_RECURSE
  "CMakeFiles/escape_sg.dir/resource_model.cpp.o"
  "CMakeFiles/escape_sg.dir/resource_model.cpp.o.d"
  "CMakeFiles/escape_sg.dir/service_graph.cpp.o"
  "CMakeFiles/escape_sg.dir/service_graph.cpp.o.d"
  "libescape_sg.a"
  "libescape_sg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escape_sg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
