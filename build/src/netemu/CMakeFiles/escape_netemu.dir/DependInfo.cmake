
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netemu/host.cpp" "src/netemu/CMakeFiles/escape_netemu.dir/host.cpp.o" "gcc" "src/netemu/CMakeFiles/escape_netemu.dir/host.cpp.o.d"
  "/root/repo/src/netemu/link.cpp" "src/netemu/CMakeFiles/escape_netemu.dir/link.cpp.o" "gcc" "src/netemu/CMakeFiles/escape_netemu.dir/link.cpp.o.d"
  "/root/repo/src/netemu/network.cpp" "src/netemu/CMakeFiles/escape_netemu.dir/network.cpp.o" "gcc" "src/netemu/CMakeFiles/escape_netemu.dir/network.cpp.o.d"
  "/root/repo/src/netemu/node.cpp" "src/netemu/CMakeFiles/escape_netemu.dir/node.cpp.o" "gcc" "src/netemu/CMakeFiles/escape_netemu.dir/node.cpp.o.d"
  "/root/repo/src/netemu/pcap.cpp" "src/netemu/CMakeFiles/escape_netemu.dir/pcap.cpp.o" "gcc" "src/netemu/CMakeFiles/escape_netemu.dir/pcap.cpp.o.d"
  "/root/repo/src/netemu/switch_node.cpp" "src/netemu/CMakeFiles/escape_netemu.dir/switch_node.cpp.o" "gcc" "src/netemu/CMakeFiles/escape_netemu.dir/switch_node.cpp.o.d"
  "/root/repo/src/netemu/vnf_container.cpp" "src/netemu/CMakeFiles/escape_netemu.dir/vnf_container.cpp.o" "gcc" "src/netemu/CMakeFiles/escape_netemu.dir/vnf_container.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/click/CMakeFiles/escape_click.dir/DependInfo.cmake"
  "/root/repo/build/src/openflow/CMakeFiles/escape_openflow.dir/DependInfo.cmake"
  "/root/repo/build/src/pox/CMakeFiles/escape_pox.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/escape_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/escape_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
