#include "service/layer.hpp"

namespace escape::service {

Result<std::vector<RenderedVnf>> ServiceLayer::prepare(const sg::ServiceGraph& graph) const {
  if (auto s = graph.validate(); !s.ok()) return s.error();

  std::vector<RenderedVnf> out;
  out.reserve(graph.vnfs().size());
  for (const auto& vnf : graph.vnfs()) {
    const VnfTemplate* tmpl = catalog_.get(vnf.vnf_type);
    if (!tmpl) {
      return make_error("service.unknown-vnf-type",
                        vnf.id + ": '" + vnf.vnf_type + "' is not in the catalog");
    }
    auto config = catalog_.render(vnf.vnf_type, vnf.params);
    if (!config.ok()) return config.error();
    RenderedVnf rendered;
    rendered.id = vnf.id;
    rendered.vnf_type = vnf.vnf_type;
    rendered.click_config = std::move(*config);
    rendered.cpu_demand = vnf.cpu_demand > 0 ? vnf.cpu_demand : tmpl->default_cpu;
    rendered.data_ports = tmpl->data_ports;
    out.push_back(std::move(rendered));
  }
  return out;
}

SlaReport ServiceLayer::check_delay(const sg::E2eRequirement& req, double measured_delay_ms) {
  SlaReport report;
  report.requirement = req;
  report.measured_delay_ms = measured_delay_ms;
  if (req.max_delay > 0) {
    report.delay_met =
        measured_delay_ms <= static_cast<double>(req.max_delay) / timeunit::kMillisecond;
  }
  return report;
}

}  // namespace escape::service
