file(REMOVE_RECURSE
  "CMakeFiles/netconf_test.dir/netconf_test.cpp.o"
  "CMakeFiles/netconf_test.dir/netconf_test.cpp.o.d"
  "netconf_test"
  "netconf_test.pdb"
  "netconf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netconf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
