#include "openflow/match.hpp"

#include "util/strings.hpp"

namespace escape::openflow {

namespace {

std::uint32_t prefix_mask(int prefix_len) {
  if (prefix_len <= 0) return 0;
  if (prefix_len >= 32) return 0xffffffffu;
  return ~((1u << (32 - prefix_len)) - 1);
}

}  // namespace

Match Match::exact(const net::FlowKey& key) {
  Match m;
  m.wildcards_ = 0;
  m.fields_ = key;
  m.nw_src_prefix_ = 32;
  m.nw_dst_prefix_ = 32;
  return m;
}

Match& Match::in_port(std::uint16_t port) {
  fields_.in_port = port;
  wildcards_ &= ~kWcInPort;
  return *this;
}
Match& Match::dl_src(net::MacAddr mac) {
  fields_.dl_src = mac;
  wildcards_ &= ~kWcDlSrc;
  return *this;
}
Match& Match::dl_dst(net::MacAddr mac) {
  fields_.dl_dst = mac;
  wildcards_ &= ~kWcDlDst;
  return *this;
}
Match& Match::dl_type(std::uint16_t type) {
  fields_.dl_type = type;
  wildcards_ &= ~kWcDlType;
  return *this;
}
Match& Match::nw_proto(std::uint8_t proto) {
  fields_.nw_proto = proto;
  wildcards_ &= ~kWcNwProto;
  return *this;
}
// The CIDR setters store the canonical (masked) base address, so two
// templates that constrain the same bits compare equal regardless of
// what the caller left in the host part — and every entry of a tuple
// space hashes into the bucket of its own effective value instead of
// piling semantically-distinct rules into one bucket.
Match& Match::nw_src(net::Ipv4Addr addr, int prefix_len) {
  fields_.nw_src = net::Ipv4Addr(addr.value() & prefix_mask(prefix_len));
  nw_src_prefix_ = prefix_len;
  wildcards_ &= ~kWcNwSrc;
  return *this;
}
Match& Match::nw_dst(net::Ipv4Addr addr, int prefix_len) {
  fields_.nw_dst = net::Ipv4Addr(addr.value() & prefix_mask(prefix_len));
  nw_dst_prefix_ = prefix_len;
  wildcards_ &= ~kWcNwDst;
  return *this;
}
Match& Match::nw_tos(std::uint8_t dscp) {
  fields_.nw_tos = dscp;
  wildcards_ &= ~kWcNwTos;
  return *this;
}
Match& Match::tp_src(std::uint16_t port) {
  fields_.tp_src = port;
  wildcards_ &= ~kWcTpSrc;
  return *this;
}
Match& Match::tp_dst(std::uint16_t port) {
  fields_.tp_dst = port;
  wildcards_ &= ~kWcTpDst;
  return *this;
}

bool Match::matches(const net::FlowKey& key) const {
  if (!(wildcards_ & kWcInPort) && key.in_port != fields_.in_port) return false;
  if (!(wildcards_ & kWcDlSrc) && key.dl_src != fields_.dl_src) return false;
  if (!(wildcards_ & kWcDlDst) && key.dl_dst != fields_.dl_dst) return false;
  if (!(wildcards_ & kWcDlType) && key.dl_type != fields_.dl_type) return false;
  if (!(wildcards_ & kWcNwProto) && key.nw_proto != fields_.nw_proto) return false;
  if (!(wildcards_ & kWcNwSrc) && !key.nw_src.in_subnet(fields_.nw_src, nw_src_prefix_)) {
    return false;
  }
  if (!(wildcards_ & kWcNwDst) && !key.nw_dst.in_subnet(fields_.nw_dst, nw_dst_prefix_)) {
    return false;
  }
  if (!(wildcards_ & kWcNwTos) && key.nw_tos != fields_.nw_tos) return false;
  if (!(wildcards_ & kWcTpSrc) && key.tp_src != fields_.tp_src) return false;
  if (!(wildcards_ & kWcTpDst) && key.tp_dst != fields_.tp_dst) return false;
  return true;
}

net::FlowKey Match::masked(const net::FlowKey& key) const {
  net::FlowKey out;
  if (!(wildcards_ & kWcInPort)) out.in_port = key.in_port;
  if (!(wildcards_ & kWcDlSrc)) out.dl_src = key.dl_src;
  if (!(wildcards_ & kWcDlDst)) out.dl_dst = key.dl_dst;
  if (!(wildcards_ & kWcDlType)) out.dl_type = key.dl_type;
  if (!(wildcards_ & kWcNwProto)) out.nw_proto = key.nw_proto;
  if (!(wildcards_ & kWcNwSrc)) {
    out.nw_src = net::Ipv4Addr(key.nw_src.value() & prefix_mask(nw_src_prefix_));
  }
  if (!(wildcards_ & kWcNwDst)) {
    out.nw_dst = net::Ipv4Addr(key.nw_dst.value() & prefix_mask(nw_dst_prefix_));
  }
  if (!(wildcards_ & kWcNwTos)) out.nw_tos = key.nw_tos;
  if (!(wildcards_ & kWcTpSrc)) out.tp_src = key.tp_src;
  if (!(wildcards_ & kWcTpDst)) out.tp_dst = key.tp_dst;
  return out;
}

std::uint64_t Match::digest() const {
  // FNV-1a over the wildcard mask and the raw non-wildcarded fields
  // (plus prefixes), mirroring operator==: equal matches hash equal.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(wildcards_);
  if (!(wildcards_ & kWcInPort)) mix(fields_.in_port);
  if (!(wildcards_ & kWcDlSrc)) mix(fields_.dl_src.to_u64());
  if (!(wildcards_ & kWcDlDst)) mix(fields_.dl_dst.to_u64());
  if (!(wildcards_ & kWcDlType)) mix(fields_.dl_type);
  if (!(wildcards_ & kWcNwProto)) mix(fields_.nw_proto);
  if (!(wildcards_ & kWcNwSrc)) {
    mix(fields_.nw_src.value());
    mix(static_cast<std::uint64_t>(nw_src_prefix_) + 1);
  }
  if (!(wildcards_ & kWcNwDst)) {
    mix(fields_.nw_dst.value());
    mix(static_cast<std::uint64_t>(nw_dst_prefix_) + 1);
  }
  if (!(wildcards_ & kWcNwTos)) mix(fields_.nw_tos);
  if (!(wildcards_ & kWcTpSrc)) mix(fields_.tp_src);
  if (!(wildcards_ & kWcTpDst)) mix(fields_.tp_dst);
  return h;
}

bool Match::is_exact() const {
  return wildcards_ == 0 && nw_src_prefix_ == 32 && nw_dst_prefix_ == 32;
}

bool Match::operator==(const Match& o) const {
  if (wildcards_ != o.wildcards_) return false;
  // Compare only the non-wildcarded fields.
  auto wc = [this](Wildcard w) { return (wildcards_ & w) != 0; };
  if (!wc(kWcInPort) && fields_.in_port != o.fields_.in_port) return false;
  if (!wc(kWcDlSrc) && fields_.dl_src != o.fields_.dl_src) return false;
  if (!wc(kWcDlDst) && fields_.dl_dst != o.fields_.dl_dst) return false;
  if (!wc(kWcDlType) && fields_.dl_type != o.fields_.dl_type) return false;
  if (!wc(kWcNwProto) && fields_.nw_proto != o.fields_.nw_proto) return false;
  if (!wc(kWcNwSrc) &&
      (fields_.nw_src != o.fields_.nw_src || nw_src_prefix_ != o.nw_src_prefix_)) {
    return false;
  }
  if (!wc(kWcNwDst) &&
      (fields_.nw_dst != o.fields_.nw_dst || nw_dst_prefix_ != o.nw_dst_prefix_)) {
    return false;
  }
  if (!wc(kWcNwTos) && fields_.nw_tos != o.fields_.nw_tos) return false;
  if (!wc(kWcTpSrc) && fields_.tp_src != o.fields_.tp_src) return false;
  if (!wc(kWcTpDst) && fields_.tp_dst != o.fields_.tp_dst) return false;
  return true;
}

std::string Match::to_string() const {
  if (wildcards_ == kWcAll) return "match[*]";
  std::string out = "match[";
  auto add = [&out](const std::string& s) {
    if (out.size() > 6) out += ' ';
    out += s;
  };
  if (!(wildcards_ & kWcInPort)) add("in_port=" + std::to_string(fields_.in_port));
  if (!(wildcards_ & kWcDlSrc)) add("dl_src=" + fields_.dl_src.to_string());
  if (!(wildcards_ & kWcDlDst)) add("dl_dst=" + fields_.dl_dst.to_string());
  if (!(wildcards_ & kWcDlType)) add(strings::format("dl_type=0x%04x", fields_.dl_type));
  if (!(wildcards_ & kWcNwProto)) add("nw_proto=" + std::to_string(fields_.nw_proto));
  if (!(wildcards_ & kWcNwSrc)) {
    add("nw_src=" + fields_.nw_src.to_string() + "/" + std::to_string(nw_src_prefix_));
  }
  if (!(wildcards_ & kWcNwDst)) {
    add("nw_dst=" + fields_.nw_dst.to_string() + "/" + std::to_string(nw_dst_prefix_));
  }
  if (!(wildcards_ & kWcNwTos)) add("nw_tos=" + std::to_string(fields_.nw_tos));
  if (!(wildcards_ & kWcTpSrc)) add("tp_src=" + std::to_string(fields_.tp_src));
  if (!(wildcards_ & kWcTpDst)) add("tp_dst=" + std::to_string(fields_.tp_dst));
  out += ']';
  return out;
}

}  // namespace escape::openflow
