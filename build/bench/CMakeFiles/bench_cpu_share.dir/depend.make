# Empty dependencies file for bench_cpu_share.
# This may be replaced when dependencies are built.
