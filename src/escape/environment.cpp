#include "escape/environment.hpp"

#include "obs/trace.hpp"

namespace escape {

std::string_view chain_state_name(ChainState state) {
  switch (state) {
    case ChainState::kActive: return "ACTIVE";
    case ChainState::kDegraded: return "DEGRADED";
    case ChainState::kRecovering: return "RECOVERING";
    case ChainState::kFailed: return "FAILED";
  }
  return "?";
}

Environment::Environment(EnvironmentOptions options)
    : options_(std::move(options)), network_(scheduler_.shard(0)) {
  controller_ = std::make_unique<pox::Controller>(scheduler_.shard(0), options_.control_delay);
  controller_->set_wire_serialization(options_.serialize_control_channel);
  controller_->set_liveness(options_.controller_liveness);
  steering_ = std::make_shared<pox::TrafficSteering>();
  controller_->add_app(steering_);
  if (options_.enable_l2_learning) {
    l2_ = std::make_shared<pox::L2Learning>();
    controller_->add_app(l2_);
  }
}

Status Environment::load_topology(const service::TopologySpec& spec) {
  return spec.build(network_);
}

Status Environment::start() {
  // Partition the topology into shards before anything is wired across
  // it: controller channels and management pipes then register their
  // delays as cross-shard lookahead edges. Done once -- a re-start after
  // adding nodes keeps the existing partition (new nodes stay on shard
  // 0, which is always correct, just not load-balanced).
  if (!partitioned_) {
    partitioned_ = true;
    netemu::ShardBy mode = options_.shard_by;
    if (mode == netemu::ShardBy::kNone && options_.threads > 1) mode = netemu::ShardBy::kSwitch;
    const std::size_t shards = network_.partition(scheduler_, mode, options_.threads);
    if (shards > 1) {
      log_.info("partitioned network into ", shards, " shards, ",
                scheduler_.thread_count(), " worker threads");
    }
  }
  // Attach any unattached switches (Controller::attach_switch is
  // idempotent per dpid map insert, but avoid duplicate channels).
  for (const auto& name : network_.node_names()) {
    if (auto* sw = network_.switch_node(name)) {
      if (!controller_->connection(sw->dpid())) {
        sw->datapath().set_liveness(options_.switch_liveness);
        controller_->attach_switch(sw->datapath());
      }
    }
  }
  // One NETCONF agent/client pair per container over the control network.
  for (const auto& name : network_.node_names()) {
    if (auto* c = network_.container(name)) {
      if (mgmt_.count(name)) continue;
      // Agent end on the container's shard, client end on the control
      // shard; the pipe registers its delay as the edge lookahead.
      auto [server_end, client_end] =
          netconf::make_pipe(c->scheduler(), scheduler_.shard(0), options_.netconf_delay);
      ContainerMgmt m;
      m.slot = std::make_shared<AgentSlot>();
      m.slot->agent = std::make_unique<netconf::VnfAgent>(server_end, *c);
      m.client = std::make_unique<netconf::VnfAgentClient>(client_end);
      m.server_end = server_end;
      m.client_end = client_end;
      if (health_) {
        m.client->set_rpc_options(recovery_.rpc);
        m.client->set_circuit_breaker(recovery_.breaker);
        health_->watch_agent(name, m.client.get());
      }
      mgmt_[name] = std::move(m);
    }
  }
  // Complete the handshakes in virtual time.
  scheduler_.run_for(10 * std::max(options_.control_delay, options_.netconf_delay));

  for (const auto& name : network_.node_names()) {
    if (auto* sw = network_.switch_node(name)) {
      pox::SwitchConnection* conn = controller_->connection(sw->dpid());
      if (!conn || !conn->up()) {
        return make_error("escape.start.switch-down",
                          name + ": OpenFlow handshake did not complete");
      }
    }
  }
  for (auto& [name, m] : mgmt_) {
    if (!m.client->session().established()) {
      return make_error("escape.start.agent-down",
                        name + ": NETCONF session did not establish");
    }
  }

  // (Re)build the deployment engine with the current agent set.
  std::map<std::string, netconf::VnfAgentClient*> agents;
  for (auto& [name, m] : mgmt_) agents[name] = m.client.get();
  engine_ = std::make_unique<orchestrator::DeploymentEngine>(network_, *steering_,
                                                             std::move(agents));
  // Snapshot the substrate into the persistent orchestration view. A
  // re-start after adding nodes rebuilds it: container CPU in use is
  // already reflected by the live containers; link bandwidth reserved by
  // existing chains is re-applied from their mapping records (network
  // links are append-only, so recorded link indices stay valid).
  view_ = orchestrator::resource_view_from(network_);
  for (const auto& [id, dep] : deployments_) {
    if (!dep.reservations_held) continue;
    for (const auto& lm : dep.record.mapping.link_mappings) {
      view_->reserve_path(lm.path, lm.bandwidth_bps);
    }
  }
  for (const auto& name : unavailable_containers_) view_->set_node_available(name, false);
  started_ = true;
  log_.info("environment up: ", network_.switch_count(), " switches, ",
            network_.container_count(), " containers, ", network_.host_count(), " hosts");
  return ok_status();
}

void Environment::on_shard_of(netemu::Node* node, std::function<void()> fn) {
  EventScheduler& target = node->scheduler();
  EventScheduler* cur = ShardedScheduler::current_shard();
  if (cur == nullptr || target.owner() == nullptr || cur == &target) {
    fn();
  } else {
    target.owner()->post_admin(target.shard_id(), std::move(fn));
  }
}

Status Environment::pump_until(const bool& flag, std::string_view what) {
  std::size_t guard = 0;
  while (!flag && scheduler_.step()) {
    if (++guard > 50'000'000) break;
  }
  if (!flag) {
    return make_error("escape.stalled",
                      std::string(what) + ": virtual time quiesced without completion");
  }
  return ok_status();
}

Result<openflow::Match> Environment::default_match(const sg::ServiceGraph& graph) {
  auto order = graph.chain_order();
  if (!order.ok()) return order.error();
  netemu::Host* src = network_.host(order->front());
  netemu::Host* dst = network_.host(order->back());
  if (!src || !dst) {
    return make_error("escape.no-sap-host",
                      "chain SAPs must correspond to hosts in the network");
  }
  openflow::Match match;
  match.dl_type(net::ethertype::kIpv4).nw_src(src->ip()).nw_dst(dst->ip());
  return match;
}

Result<std::uint32_t> Environment::deploy(const sg::ServiceGraph& graph) {
  if (!started_) return make_error("escape.not-started", "call start() before deploy()");
  auto match = default_match(graph);
  if (!match.ok()) return match.error();
  return deploy(graph, *match);
}

Result<std::uint32_t> Environment::deploy(const sg::ServiceGraph& graph,
                                          openflow::Match match) {
  if (!started_) return make_error("escape.not-started", "call start() before deploy()");

  // Service layer: validate + render Click configs.
  auto rendered = service_layer_.prepare(graph);
  if (!rendered.ok()) return rendered.error();

  // Orchestration layer: map against the persistent view so earlier
  // chains' CPU/slot/bandwidth reservations are respected. On success
  // the algorithm commits this chain's reservations into the view.
  sg::ResourceGraph& view = *view_;
  auto algorithm = orchestrator::MappingRegistry::global().create(options_.mapping_algorithm);
  if (!algorithm) {
    return make_error("escape.unknown-algorithm",
                      "no mapping algorithm named '" + options_.mapping_algorithm + "'");
  }
  auto mapping = algorithm->map(graph, view);
  if (!mapping.ok()) return mapping.error();
  log_.info("mapping: ", mapping->to_string());

  // Deployment: NETCONF bring-up + steering, pumped to completion.
  const std::uint32_t chain_id = next_chain_id_++;
  bool done = false;
  Result<orchestrator::DeploymentRecord> outcome =
      make_error("escape.deploy.pending", "in flight");
  engine_->deploy(chain_id, *mapping, view, *rendered, match,
                  [&done, &outcome](Result<orchestrator::DeploymentRecord> r) {
                    outcome = std::move(r);
                    done = true;
                  });
  auto release_reservations = [this, &mapping, &graph] {
    for (const auto& lm : mapping->link_mappings) {
      view_->release_path(lm.path, lm.bandwidth_bps);
    }
    for (const auto& [vnf, container] : mapping->placements) {
      if (const sg::VnfNode* node = graph.vnf(vnf)) {
        view_->release_vnf(container, node->cpu_demand);
      }
    }
  };
  if (auto s = pump_until(done, "deploy"); !s.ok()) {
    release_reservations();
    return s.error();
  }
  if (!outcome.ok()) {
    release_reservations();
    return outcome.error();
  }

  ChainDeployment dep;
  dep.id = chain_id;
  dep.graph = graph;
  dep.record = std::move(*outcome);
  deployments_[chain_id] = std::move(dep);
  log_.info("chain ", chain_id, " deployed in ",
            static_cast<double>(deployments_[chain_id].record.setup_latency()) /
                timeunit::kMillisecond,
            " ms (virtual)");
  return chain_id;
}

Result<std::uint32_t> Environment::install_return_path(std::uint32_t chain_id) {
  const ChainDeployment* dep = deployment(chain_id);
  if (!dep) {
    return make_error("escape.unknown-chain",
                      "chain not deployed: " + std::to_string(chain_id));
  }
  auto order = dep->graph.chain_order();
  if (!order.ok()) return order.error();
  const std::string& entry = order->front();
  const std::string& exit = order->back();
  netemu::Host* entry_host = network_.host(entry);
  netemu::Host* exit_host = network_.host(exit);
  if (!entry_host || !exit_host) {
    return make_error("escape.no-sap-host", "chain SAPs must be hosts");
  }

  // Route the reverse direction on the current substrate (switches only;
  // the mapped VNFs are not traversed).
  sg::ResourceGraph view = orchestrator::resource_view_from(network_);
  auto path = view.shortest_path(exit, entry);
  if (!path || path->nodes.size() < 3) {
    return make_error("escape.no-return-route", "no switched route " + exit + " -> " + entry);
  }

  pox::ChainPath reverse;
  reverse.chain_id = next_chain_id_++;
  reverse.match = openflow::Match()
                      .dl_type(net::ethertype::kIpv4)
                      .nw_src(exit_host->ip())
                      .nw_dst(entry_host->ip());
  for (std::size_t j = 1; j + 1 < path->nodes.size(); ++j) {
    netemu::SwitchNode* sw = network_.switch_node(path->nodes[j]);
    if (!sw) {
      return make_error("escape.no-return-route",
                        "return path transits non-switch " + path->nodes[j]);
    }
    reverse.hops.push_back(
        {sw->dpid(), view.port_on(path->link_indices[j - 1], path->nodes[j]),
         view.port_on(path->link_indices[j], path->nodes[j])});
  }
  if (auto s = steering_->install_chain(reverse); !s.ok()) return s.error();
  // Let the flow-mods land before reporting the path usable.
  scheduler_.run_for(4 * options_.control_delay + timeunit::kMillisecond);

  ChainDeployment record;
  record.id = reverse.chain_id;
  record.graph = sg::ServiceGraph("return-of-" + std::to_string(chain_id));
  record.record.chain_id = reverse.chain_id;
  record.record.chain_path = reverse;
  record.reservations_held = false;  // pure steering, nothing reserved
  deployments_[reverse.chain_id] = std::move(record);
  return reverse.chain_id;
}

const ChainDeployment* Environment::deployment(std::uint32_t chain_id) const {
  auto it = deployments_.find(chain_id);
  return it == deployments_.end() ? nullptr : &it->second;
}

std::vector<std::uint32_t> Environment::deployed_chains() const {
  std::vector<std::uint32_t> out;
  for (const auto& [id, _] : deployments_) out.push_back(id);
  return out;
}

Status Environment::undeploy(std::uint32_t chain_id) {
  auto it = deployments_.find(chain_id);
  if (it == deployments_.end()) {
    return make_error("escape.unknown-chain", "chain not deployed: " + std::to_string(chain_id));
  }
  bool done = false;
  Status outcome = ok_status();
  engine_->teardown(it->second.record, [&done, &outcome](Status s) {
    outcome = std::move(s);
    done = true;
  });
  if (auto s = pump_until(done, "undeploy"); !s.ok()) return s;
  if (!outcome.ok()) return outcome;
  // Give the chain's substrate reservations back to the view.
  release_chain_reservations(it->second);
  deployments_.erase(it);
  return ok_status();
}

void Environment::release_chain_reservations(ChainDeployment& dep) {
  if (!dep.reservations_held) return;
  dep.reservations_held = false;
  if (!view_) return;
  for (const auto& lm : dep.record.mapping.link_mappings) {
    view_->release_path(lm.path, lm.bandwidth_bps);
  }
  for (const auto& [vnf, container] : dep.record.mapping.placements) {
    if (const sg::VnfNode* node = dep.graph.vnf(vnf)) {
      view_->release_vnf(container, node->cpu_demand);
    }
  }
}

netconf::VnfAgentClient* Environment::agent_client(const std::string& container_name) {
  auto it = mgmt_.find(container_name);
  return it == mgmt_.end() ? nullptr : it->second.client.get();
}

Result<pox::ChainStats> Environment::chain_stats(std::uint32_t chain_id) {
  bool done = false;
  Result<pox::ChainStats> outcome = make_error("escape.stats.pending", "in flight");
  steering_->query_chain_stats(chain_id, [&done, &outcome](Result<pox::ChainStats> r) {
    outcome = std::move(r);
    done = true;
  });
  if (auto s = pump_until(done, "chain_stats"); !s.ok()) return s.error();
  return outcome;
}

Status Environment::watch_vnf_events(
    std::function<void(const std::string&, const std::string&, netemu::VnfStatus)> cb) {
  auto shared = std::make_shared<decltype(cb)>(std::move(cb));
  for (auto& [name, m] : mgmt_) {
    bool done = false;
    Status outcome = ok_status();
    m.client->subscribe_events(
        [shared, container = name](const std::string& vnf_id, netemu::VnfStatus status) {
          (*shared)(container, vnf_id, status);
        },
        [&done, &outcome](Status s) {
          outcome = std::move(s);
          done = true;
        });
    if (auto s = pump_until(done, "watch_vnf_events"); !s.ok()) return s;
    if (!outcome.ok()) return outcome;
  }
  return ok_status();
}

// --- fault injection hooks -----------------------------------------------------

Status Environment::kill_container(const std::string& name) {
  netemu::VnfContainer* c = network_.container(name);
  auto it = mgmt_.find(name);
  if (!c || it == mgmt_.end()) {
    return make_error("escape.unknown-container", "no managed container named " + name);
  }
  log_.warn("fault: killing container ", name);
  // The agent dies with its container: close the transport first so the
  // client (and the health monitor) learn within one control delay. Both
  // operations belong to the container's shard.
  on_shard_of(c, [server = it->second.server_end, c] {
    server->close();
    c->crash();
  });
  dead_containers_.insert(name);
  unavailable_containers_.insert(name);
  if (view_) view_->set_node_available(name, false);
  return ok_status();
}

Status Environment::restore_container(const std::string& name) {
  netemu::VnfContainer* c = network_.container(name);
  if (!c || !mgmt_.count(name)) {
    return make_error("escape.unknown-container", "no managed container named " + name);
  }
  on_shard_of(c, [c] { c->restore(); });
  dead_containers_.erase(name);
  return respawn_agent(name);
}

Status Environment::crash_agent(const std::string& name) {
  auto it = mgmt_.find(name);
  if (it == mgmt_.end()) {
    return make_error("escape.unknown-container", "no managed container named " + name);
  }
  log_.warn("fault: crashing NETCONF agent of ", name);
  netemu::VnfContainer* c = network_.container(name);
  on_shard_of(c, [server = it->second.server_end] { server->close(); });
  // Unmanageable == unusable for new placements until the agent returns.
  unavailable_containers_.insert(name);
  if (view_) view_->set_node_available(name, false);
  return ok_status();
}

Status Environment::respawn_agent(const std::string& name) {
  netemu::VnfContainer* c = network_.container(name);
  auto it = mgmt_.find(name);
  if (!c || it == mgmt_.end()) {
    return make_error("escape.unknown-container", "no managed container named " + name);
  }
  ContainerMgmt& m = it->second;
  auto old_server = m.server_end;
  auto [server_end, client_end] =
      netconf::make_pipe(c->scheduler(), scheduler_.shard(0), options_.netconf_delay);
  m.server_end = server_end;
  m.client_end = client_end;
  // Old-agent teardown (unregisters its container state listener) and
  // the new agent's construction touch container-shard state; the slot
  // keeps the handover ordered on that shard. Posted before the client
  // rebind below so the fresh hello finds the new agent listening.
  on_shard_of(c, [slot = m.slot, old_server, server_end, c] {
    if (old_server && !old_server->closed()) old_server->close();
    slot->agent.reset();
    slot->agent = std::make_unique<netconf::VnfAgent>(server_end, *c);
  });
  m.client->session().rebind(client_end);
  if (!dead_containers_.count(name)) {
    unavailable_containers_.erase(name);
    if (view_) view_->set_node_available(name, true);
  }
  log_.info("fault: respawned agent for ", name, " (session re-establishing)");
  return ok_status();
}

Status Environment::set_link_state(const std::string& a, const std::string& b, bool up) {
  if (auto s = network_.set_link_state(a, b, up); !s.ok()) return s;
  // Keep the orchestration view in sync even without a health monitor.
  if (view_) view_->set_link_available(a, b, up);
  return ok_status();
}

Status Environment::set_netconf_faults(const std::string& name,
                                       const netconf::TransportFaults& faults) {
  auto it = mgmt_.find(name);
  if (it == mgmt_.end()) {
    return make_error("escape.unknown-container", "no managed container named " + name);
  }
  netconf::TransportFaults f = faults;
  it->second.client_end->set_faults(f);
  f.seed = faults.seed + 1;  // decorrelate the two directions
  on_shard_of(network_.container(name), [server = it->second.server_end, f] {
    server->set_faults(f);
  });
  return ok_status();
}

Status Environment::clear_netconf_faults(const std::string& name) {
  auto it = mgmt_.find(name);
  if (it == mgmt_.end()) {
    return make_error("escape.unknown-container", "no managed container named " + name);
  }
  it->second.client_end->clear_faults();
  on_shard_of(network_.container(name),
              [server = it->second.server_end] { server->clear_faults(); });
  return ok_status();
}

Status Environment::set_of_channel_state(const std::string& switch_name, bool up) {
  auto* sw = network_.switch_node(switch_name);
  if (!sw) return make_error("escape.unknown-switch", "no switch named " + switch_name);
  return controller_->set_channel_admin(sw->dpid(), up);
}

Status Environment::flap_of_channel(const std::string& switch_name, SimDuration down_for) {
  if (auto s = set_of_channel_state(switch_name, false); !s.ok()) return s;
  std::weak_ptr<bool> alive = alive_;
  scheduler_.schedule(down_for, [this, alive, name = switch_name] {
    if (alive.expired()) return;
    if (auto s = set_of_channel_state(name, true); !s.ok()) {
      log_.warn("of-channel flap restore failed for ", name, ": ", s.error().to_string());
    }
  });
  return ok_status();
}

Status Environment::set_of_channel_faults(const std::string& switch_name, double drop_prob,
                                          SimDuration extra_delay, std::uint64_t seed) {
  auto* sw = network_.switch_node(switch_name);
  if (!sw) return make_error("escape.unknown-switch", "no switch named " + switch_name);
  return controller_->set_channel_faults(sw->dpid(), drop_prob, extra_delay, seed);
}

Status Environment::clear_of_channel_faults(const std::string& switch_name) {
  auto* sw = network_.switch_node(switch_name);
  if (!sw) return make_error("escape.unknown-switch", "no switch named " + switch_name);
  return controller_->clear_channel_faults(sw->dpid());
}

Status Environment::restart_switch(const std::string& switch_name) {
  auto* sw = network_.switch_node(switch_name);
  if (!sw) return make_error("escape.unknown-switch", "no switch named " + switch_name);
  on_shard_of(sw, [sw] { sw->datapath().restart(); });
  return ok_status();
}

// --- self-healing ---------------------------------------------------------------

Status Environment::enable_self_healing(RecoveryOptions options) {
  if (!started_) {
    return make_error("escape.not-started", "call start() before enable_self_healing()");
  }
  recovery_ = options;
  health_ = std::make_unique<orchestrator::HealthMonitor>(scheduler_.shard(0), options.health);
  for (auto& [name, m] : mgmt_) {
    m.client->set_rpc_options(options.rpc);
    m.client->set_circuit_breaker(options.breaker);
    health_->watch_agent(name, m.client.get());
  }
  health_->watch_links(network_);

  std::weak_ptr<bool> alive = alive_;
  health_->on_agent_down([this, alive](const std::string& container) {
    if (alive.expired()) return;
    unavailable_containers_.insert(container);
    if (view_) view_->set_node_available(container, false);
    degrade_chains_on_container(container);
  });
  health_->on_agent_up([this, alive](const std::string& container) {
    if (alive.expired()) return;
    netemu::VnfContainer* node = network_.container(container);
    if (node && node->alive()) {
      unavailable_containers_.erase(container);
      if (view_) view_->set_node_available(container, true);
    }
    // Fresh capacity may unblock chains that could not be re-embedded.
    for (auto& [id, dep] : deployments_) {
      if (dep.state != ChainState::kDegraded && dep.state != ChainState::kFailed) continue;
      dep.recovery_attempts = 0;
      dep.state = ChainState::kDegraded;
      const std::uint32_t chain_id = id;
      scheduler_.schedule(0, [this, alive, chain_id] {
        if (!alive.expired()) recover_chain(chain_id);
      });
    }
  });
  health_->on_link_state([this, alive](const std::string& a, const std::string& b, bool up) {
    if (alive.expired()) return;
    if (view_) view_->set_link_available(a, b, up);
    if (!up) degrade_chains_on_link(a, b);
  });
  // Steering divergence feed: chains whose rules sit on a diverged dpid
  // degrade, and the resync (not a re-embed) brings them back.
  health_->watch_steering(*steering_);
  health_->on_dpid_diverged([this, alive](openflow::DatapathId dpid) {
    if (alive.expired()) return;
    degrade_chains_on_dpid(dpid);
  });
  health_->on_dpid_resynced([this, alive](openflow::DatapathId dpid, std::size_t) {
    if (alive.expired()) return;
    handle_dpid_resynced(dpid);
  });
  health_->start();
  log_.info("self-healing enabled: probing ", mgmt_.size(), " agents every ",
            static_cast<double>(options.health.probe_interval) / timeunit::kMillisecond,
            " ms");
  return ok_status();
}

void Environment::disable_self_healing() { health_.reset(); }

Result<ChainState> Environment::chain_state(std::uint32_t chain_id) const {
  const ChainDeployment* dep = deployment(chain_id);
  if (!dep) {
    return make_error("escape.unknown-chain",
                      "chain not deployed: " + std::to_string(chain_id));
  }
  return dep->state;
}

void Environment::update_degraded_gauge() {
  std::size_t n = 0;
  for (const auto& [_, dep] : deployments_) n += dep.state != ChainState::kActive;
  obs::MetricsRegistry::global().gauge("escape_chains_degraded").set(static_cast<double>(n));
}

void Environment::degrade_chains_on_container(const std::string& container) {
  for (auto& [id, dep] : deployments_) {
    if (dep.state == ChainState::kRecovering) continue;
    bool uses = false;
    for (const auto& [vnf, placed_on] : dep.record.mapping.placements) {
      uses = uses || placed_on == container;
    }
    if (!uses) continue;
    queue_recovery(id);
  }
}

void Environment::degrade_chains_on_link(const std::string& a, const std::string& b) {
  for (auto& [id, dep] : deployments_) {
    if (dep.state == ChainState::kRecovering) continue;
    bool uses = false;
    // Substrate segments of the mapping...
    for (const auto& lm : dep.record.mapping.link_mappings) {
      const auto& nodes = lm.path.nodes;
      for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
        uses = uses || (nodes[i] == a && nodes[i + 1] == b) ||
               (nodes[i] == b && nodes[i + 1] == a);
      }
    }
    // ...and the dynamically created veths.
    for (const auto& v : dep.record.vnfs) {
      const bool veth_a = v.container == a && (v.in_switch == b || v.out_switch == b);
      const bool veth_b = v.container == b && (v.in_switch == a || v.out_switch == a);
      uses = uses || veth_a || veth_b;
    }
    if (!uses) continue;
    queue_recovery(id);
  }
}

void Environment::degrade_chains_on_dpid(openflow::DatapathId dpid) {
  for (const std::uint32_t chain_id : steering_->chains_on(dpid)) {
    auto it = deployments_.find(chain_id);
    if (it == deployments_.end()) continue;
    ChainDeployment& dep = it->second;
    dep.dirty_dpids.insert(dpid);
    if (dep.state == ChainState::kActive) {
      // Steering-only degradation: the chain's VNFs are untouched, only
      // the switch rules are untrusted. The post-reconnect resync
      // repairs them in place, so no recovery (re-embed) is queued.
      dep.state = ChainState::kDegraded;
      dep.steering_degraded = true;
      update_degraded_gauge();
      log_.warn("chain ", chain_id, " DEGRADED: steering diverged on dpid=", dpid);
    }
  }
}

void Environment::handle_dpid_resynced(openflow::DatapathId dpid) {
  for (auto& [id, dep] : deployments_) {
    if (dep.dirty_dpids.erase(dpid) == 0) continue;
    if (dep.steering_degraded && dep.dirty_dpids.empty() &&
        dep.state == ChainState::kDegraded) {
      dep.state = ChainState::kActive;
      dep.steering_degraded = false;
      update_degraded_gauge();
      log_.info("chain ", id, " ACTIVE again: steering rules resynced");
    }
  }
}

void Environment::queue_recovery(std::uint32_t chain_id) {
  auto it = deployments_.find(chain_id);
  if (it == deployments_.end() || it->second.state == ChainState::kRecovering) return;
  it->second.state = ChainState::kDegraded;
  // A queued re-embed supersedes any steering-only degradation: the
  // recovery path reinstalls the chain's rules itself.
  it->second.steering_degraded = false;
  update_degraded_gauge();
  log_.warn("chain ", chain_id, " marked DEGRADED");
  std::weak_ptr<bool> alive = alive_;
  scheduler_.schedule(0, [this, alive, chain_id] {
    if (!alive.expired()) recover_chain(chain_id);
  });
}

void Environment::recover_chain(std::uint32_t chain_id) {
  auto it = deployments_.find(chain_id);
  if (it == deployments_.end()) return;
  ChainDeployment& dep = it->second;
  if (dep.state != ChainState::kDegraded || !engine_ || !view_) return;
  if (dep.recovery_attempts >= recovery_.max_recovery_attempts) {
    dep.state = ChainState::kFailed;
    update_degraded_gauge();
    log_.error("chain ", chain_id, " FAILED: recovery attempts exhausted");
    return;
  }
  ++dep.recovery_attempts;
  dep.state = ChainState::kRecovering;
  update_degraded_gauge();
  const SimTime started = scheduler_.now();
  const std::uint64_t span = obs::tracer().begin_span(
      started, "recovery", "re-embed",
      "chain " + std::to_string(chain_id) + " attempt " +
          std::to_string(dep.recovery_attempts));
  log_.warn("recovering chain ", chain_id, " (attempt ", dep.recovery_attempts, "/",
            recovery_.max_recovery_attempts, ")");

  std::weak_ptr<bool> alive = alive_;
  // Step 1: best-effort teardown of the stale remnants (dead agents and
  // already-gone VNFs are fine -- that is the point).
  engine_->teardown_best_effort(dep.record, [this, alive, chain_id, started, span](Status) {
    if (alive.expired()) return;
    auto it = deployments_.find(chain_id);
    if (it == deployments_.end()) return;
    ChainDeployment& dep = it->second;
    release_chain_reservations(dep);

    // Step 2: re-map against the surviving resource view.
    auto rendered = service_layer_.prepare(dep.graph);
    if (!rendered.ok()) {
      finish_recovery(chain_id, started, span, rendered.error());
      return;
    }
    auto algorithm =
        orchestrator::MappingRegistry::global().create(options_.mapping_algorithm);
    if (!algorithm) {
      finish_recovery(chain_id, started, span,
                      make_error("escape.unknown-algorithm",
                                 "no mapping algorithm named '" +
                                     options_.mapping_algorithm + "'"));
      return;
    }
    auto mapping = algorithm->map(dep.graph, *view_);
    if (!mapping.ok()) {
      finish_recovery(chain_id, started, span, mapping.error());
      return;
    }
    dep.reservations_held = true;  // map() committed the new reservations
    // The redeploy-failure path below releases via dep.record.mapping, so
    // the record must describe the reservations map() just committed --
    // releasing the stale pre-recovery mapping would double-release it and
    // leak the new one on every failed attempt.
    dep.record.mapping = *mapping;
    log_.info("chain ", chain_id, " re-mapped: ", mapping->to_string());

    // Step 3: redeploy under the same chain id (fresh veths + steering).
    const openflow::Match match = dep.record.chain_path.match;
    engine_->deploy(
        chain_id, *mapping, *view_, *rendered, match,
        [this, alive, chain_id, started, span](Result<orchestrator::DeploymentRecord> r) {
          if (alive.expired()) return;
          auto it = deployments_.find(chain_id);
          if (it == deployments_.end()) return;
          if (r.ok()) {
            it->second.record = std::move(*r);
            finish_recovery(chain_id, started, span, ok_status());
          } else {
            release_chain_reservations(it->second);
            finish_recovery(chain_id, started, span, r.error());
          }
        });
  });
}

void Environment::finish_recovery(std::uint32_t chain_id, SimTime started,
                                  std::uint64_t span, Status outcome) {
  auto& registry = obs::MetricsRegistry::global();
  obs::tracer().end_span(span, scheduler_.now(),
                         outcome.ok() ? "ok" : outcome.error().code);
  auto it = deployments_.find(chain_id);
  if (it == deployments_.end()) return;
  ChainDeployment& dep = it->second;
  if (outcome.ok()) {
    dep.state = ChainState::kActive;
    dep.recovery_attempts = 0;
    const double latency_ms =
        static_cast<double>(scheduler_.now() - started) / timeunit::kMillisecond;
    registry.counter("escape_recovery_total", {{"result", "ok"}}).add();
    registry.histogram("escape_recovery_latency_ms").record(latency_ms);
    log_.info("chain ", chain_id, " recovered in ", latency_ms, " ms (virtual)");
  } else {
    registry.counter("escape_recovery_total", {{"result", "failed"}}).add();
    log_.warn("chain ", chain_id, " recovery attempt failed: ",
              outcome.error().to_string());
    if (dep.recovery_attempts >= recovery_.max_recovery_attempts) {
      dep.state = ChainState::kFailed;
      log_.error("chain ", chain_id, " FAILED: recovery attempts exhausted");
    } else {
      dep.state = ChainState::kDegraded;
      std::weak_ptr<bool> alive = alive_;
      scheduler_.schedule(recovery_.retry_delay, [this, alive, chain_id] {
        if (!alive.expired()) recover_chain(chain_id);
      });
    }
  }
  update_degraded_gauge();
}

Result<netemu::VnfInfo> Environment::monitor_vnf(const std::string& container_name,
                                                 const std::string& vnf_id) {
  netconf::VnfAgentClient* client = agent_client(container_name);
  if (!client) {
    return make_error("escape.unknown-container", "no agent for " + container_name);
  }
  bool done = false;
  Result<netemu::VnfInfo> outcome = make_error("escape.monitor.pending", "in flight");
  client->get_vnf_info(vnf_id, [&done, &outcome](Result<netemu::VnfInfo> r) {
    outcome = std::move(r);
    done = true;
  });
  if (auto s = pump_until(done, "monitor_vnf"); !s.ok()) return s.error();
  return outcome;
}

}  // namespace escape
