file(REMOVE_RECURSE
  "CMakeFiles/escape_openflow.dir/actions.cpp.o"
  "CMakeFiles/escape_openflow.dir/actions.cpp.o.d"
  "CMakeFiles/escape_openflow.dir/flow_table.cpp.o"
  "CMakeFiles/escape_openflow.dir/flow_table.cpp.o.d"
  "CMakeFiles/escape_openflow.dir/match.cpp.o"
  "CMakeFiles/escape_openflow.dir/match.cpp.o.d"
  "CMakeFiles/escape_openflow.dir/switch.cpp.o"
  "CMakeFiles/escape_openflow.dir/switch.cpp.o.d"
  "CMakeFiles/escape_openflow.dir/wire.cpp.o"
  "CMakeFiles/escape_openflow.dir/wire.cpp.o.d"
  "libescape_openflow.a"
  "libescape_openflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escape_openflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
