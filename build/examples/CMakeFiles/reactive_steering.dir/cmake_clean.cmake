file(REMOVE_RECURSE
  "CMakeFiles/reactive_steering.dir/reactive_steering.cpp.o"
  "CMakeFiles/reactive_steering.dir/reactive_steering.cpp.o.d"
  "reactive_steering"
  "reactive_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reactive_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
