// Experiment E3: Click data-plane throughput.
//
// Measures host packets/second through element chains of varying depth
// (throughput degrades ~1/depth -- each element touches the packet) and
// through each catalog VNF configuration.
#include "bench_common.hpp"
#include <benchmark/benchmark.h>

#include "click/config.hpp"
#include "click/elements.hpp"
#include "net/builder.hpp"
#include "service/catalog.hpp"

using namespace escape;
using namespace escape::click;

namespace {

Packet bench_packet(std::size_t size) {
  return net::make_udp_packet(net::MacAddr::from_u64(1), net::MacAddr::from_u64(2),
                              net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(10, 0, 0, 2), 1000,
                              2000, size);
}

}  // namespace

/// Push-path chain of `depth` Counter elements.
static void BM_Click_ElementChainDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const auto size = static_cast<std::size_t>(state.range(1));

  std::string config;
  std::string prev = "e0";
  config += "e0 :: Counter;\n";
  for (int i = 1; i < depth; ++i) {
    config += "e" + std::to_string(i) + " :: Counter;\n";
  }
  config += "sink :: Discard;\n";
  for (int i = 1; i < depth; ++i) {
    config += "e" + std::to_string(i - 1) + " -> e" + std::to_string(i) + ";\n";
  }
  config += "e" + std::to_string(depth - 1) + " -> sink;\n";

  EventScheduler sched;
  auto router = build_router(config, sched);
  if (!router.ok()) {
    state.SkipWithError(router.error().message.c_str());
    return;
  }
  Element* head = (*router)->element("e0");
  const Packet tmpl = bench_packet(size);

  for (auto _ : state) {
    Packet p = tmpl;
    head->push(0, std::move(p));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
  state.counters["depth"] = depth;
}
BENCHMARK(BM_Click_ElementChainDepth)
    ->ArgsProduct({{1, 2, 4, 8, 16, 32}, {64, 1500}});

/// Classification costs: IPClassifier with N rules, miss on all but last.
static void BM_Click_IPClassifierRules(benchmark::State& state) {
  const int rules = static_cast<int>(state.range(0));
  std::string args;
  for (int i = 0; i < rules - 1; ++i) {
    args += "udp && dst port " + std::to_string(10000 + i) + ", ";
  }
  args += "-";
  std::string config = "cl :: IPClassifier(" + args + ");\n";
  for (int i = 0; i < rules; ++i) {
    config += "cl[" + std::to_string(i) + "] -> Discard;\n";
  }
  EventScheduler sched;
  auto router = build_router(config, sched);
  if (!router.ok()) {
    state.SkipWithError(router.error().message.c_str());
    return;
  }
  Element* cl = (*router)->element("cl");
  const Packet tmpl = bench_packet(98);  // dst port 2000: misses every rule
  for (auto _ : state) {
    Packet p = tmpl;
    cl->push(0, std::move(p));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["rules"] = rules;
}
BENCHMARK(BM_Click_IPClassifierRules)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

/// Each catalog VNF: packets/second through FromDevice -> ... -> ToDevice.
static void BM_Click_CatalogVnf(benchmark::State& state,
                                const std::string& type,
                                const std::map<std::string, std::string>& params) {
  auto catalog = service::VnfCatalog::with_builtins();
  auto config = catalog.render(type, params);
  if (!config.ok()) {
    state.SkipWithError(config.error().message.c_str());
    return;
  }
  EventScheduler sched;
  auto router = build_router(*config, sched);
  if (!router.ok()) {
    state.SkipWithError(router.error().message.c_str());
    return;
  }
  FromDevice* in = nullptr;
  for (Element* e : (*router)->elements_in_order()) {
    if (auto* from = dynamic_cast<FromDevice*>(e)) {
      if (from->devname() == "in0") in = from;
    } else if (auto* to = dynamic_cast<ToDevice*>(e)) {
      to->set_sink([](Packet&&) {});
    }
  }
  if (!in) {
    state.SkipWithError("no in0 FromDevice");
    return;
  }
  const Packet tmpl = bench_packet(98);
  std::uint64_t injected = 0;
  for (auto _ : state) {
    Packet p = tmpl;
    in->inject(std::move(p));
    // Drain any scheduled work (ratelimiter queues etc.) in bulk.
    if (++injected % 1024 == 0) sched.run_for(timeunit::kMillisecond);
  }
  sched.run_for(timeunit::kSecond);
  state.SetItemsProcessed(state.iterations());
}

#define CATALOG_BENCH(NAME, TYPE, ...)                                        \
  static void NAME(benchmark::State& state) {                                 \
    BM_Click_CatalogVnf(state, TYPE, __VA_ARGS__);                            \
  }                                                                           \
  BENCHMARK(NAME)

CATALOG_BENCH(BM_Vnf_Monitor, "monitor", {});
CATALOG_BENCH(BM_Vnf_Firewall, "firewall",
              {{"rules", "deny udp && dst port 23; deny tcp && syn; allow ip"},
               {"default", "deny"}});
CATALOG_BENCH(BM_Vnf_Dpi, "dpi", {{"patterns", "exploit;beacon;malware"}});
CATALOG_BENCH(BM_Vnf_HeaderRewriter, "headerrewriter",
              {{"spec", "SRC_IP 192.0.2.7, DST_PORT 8080"}});
CATALOG_BENCH(BM_Vnf_Delay, "delay", {{"ns", "1000"}});

ESCAPE_BENCH_MAIN("click");
