// The chaos exploration machinery: fault-point recording and injection,
// the lifecycle explorer (determinism across thread counts, capped
// sweeps), pinned regression schedules for bugs the explorer found, and
// robustness corners the explorer exercises (idempotent teardown over a
// dead container, circuit-breaker half-open probe expiry).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "chaos/explorer.hpp"
#include "chaos/scenario.hpp"
#include "net/headers.hpp"
#include "netconf/session.hpp"
#include "util/sharded_event.hpp"

namespace escape {
namespace {

using chaos::ChaosExplorer;
using chaos::Episode;
using chaos::ExplorerOptions;
using chaos::FaultInjector;
using chaos::FaultKind;
using chaos::FaultSchedule;
using chaos::FaultSpec;
using chaos::LifecycleScenarioOptions;
using chaos::SiteContext;
using chaos::TraceEntry;

// --- fault points ---------------------------------------------------------------

TEST(FaultPoint, NoActiveInjectorIsANoOp) {
  ASSERT_EQ(FaultInjector::active(), nullptr);
  const chaos::Decision d = chaos::hit("any.site", chaos::kCanDrop, {});
  EXPECT_TRUE(d.none());
}

TEST(FaultPoint, RecordModeCountsPerSiteOccurrences) {
  FaultInjector rec;
  rec.start_recording();
  FaultInjector* prev = FaultInjector::activate(&rec);
  chaos::hit("alpha", chaos::kCanDrop, {});
  chaos::hit("alpha", chaos::kCanDrop | chaos::kCanDelay, {});
  chaos::hit("beta", chaos::kCanCrash, SiteContext::of_container("c1", 7));
  FaultInjector::activate(prev);

  const std::vector<TraceEntry>& trace = rec.trace();
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].site, "alpha");
  EXPECT_EQ(trace[0].occurrence, 0u);
  EXPECT_EQ(trace[1].site, "alpha");
  EXPECT_EQ(trace[1].occurrence, 1u);
  EXPECT_EQ(trace[1].caps, chaos::kCanDrop | chaos::kCanDelay);
  EXPECT_EQ(trace[2].site, "beta");
  EXPECT_EQ(trace[2].occurrence, 0u);
  EXPECT_EQ(trace[2].container, "c1");
  EXPECT_EQ(trace[2].chain_id, 7u);
  EXPECT_EQ(rec.hits(), 3u);
}

TEST(FaultPoint, ArmedSpecFiresOnceAtItsOccurrence) {
  FaultInjector inj;
  inj.arm({FaultSpec{"alpha", 1, FaultKind::kDrop, 0}});
  FaultInjector* prev = FaultInjector::activate(&inj);
  EXPECT_TRUE(chaos::hit("alpha", chaos::kCanDrop, {}).none());
  EXPECT_TRUE(chaos::hit("alpha", chaos::kCanDrop, {}).drop());
  EXPECT_TRUE(chaos::hit("alpha", chaos::kCanDrop, {}).none());  // one-shot
  FaultInjector::activate(prev);
  EXPECT_EQ(inj.fired(), 1u);
}

TEST(FaultPoint, ScheduleJsonRoundTrips) {
  FaultSchedule schedule;
  schedule.push_back({"deploy.rpc", 3, FaultKind::kCrash, 0});
  schedule.push_back({"steering.install", 0, FaultKind::kDelay, 3 * timeunit::kMillisecond});
  const std::string json = chaos::schedule_to_json(schedule, "note with \"quotes\"");
  auto parsed = chaos::schedule_from_json(json);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].site, "deploy.rpc");
  EXPECT_EQ((*parsed)[0].occurrence, 3u);
  EXPECT_EQ((*parsed)[0].kind, FaultKind::kCrash);
  EXPECT_EQ((*parsed)[1].site, "steering.install");
  EXPECT_EQ((*parsed)[1].kind, FaultKind::kDelay);
  EXPECT_EQ((*parsed)[1].delay, 3 * timeunit::kMillisecond);
}

// --- pinned regression schedules ------------------------------------------------

std::string read_data_file(const std::string& name) {
  std::ifstream in(std::string(CHAOS_DATA_DIR) + "/" + name);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Schedules under tests/data/chaos/ are minimized reproducers of real
/// bugs the explorer found (and this PR fixed): a reservation leak when
/// a crash interrupts the recovery re-embed, a scheduler clock-drift
/// abort on post-crash re-deploys, and steering rules stranded by a
/// dropped old-generation teardown whose id a recovery later reclaims,
/// and a NAT pool polluted by a migrated-in foreign-range port (a
/// depth-2 pair find). Each must replay with zero invariant violations
/// forever after.
TEST(ChaosRegression, PinnedSchedulesReplayClean) {
  const char* pinned[] = {
      "nat-foreign-port-pool-pair.json",
      "recovery-ledger-leak-deploy-crash.json",
      "scheduler-clamp-deploy-crash.json",
      "steering-strand-teardown-drop.json",
  };
  ChaosExplorer explorer(chaos::lifecycle_scenario(), ExplorerOptions{});
  for (const char* name : pinned) {
    const std::string text = read_data_file(name);
    ASSERT_FALSE(text.empty()) << name;
    auto schedule = chaos::schedule_from_json(text);
    ASSERT_TRUE(schedule.ok()) << name << ": " << schedule.error().to_string();
    Episode episode = explorer.run_schedule(*schedule);
    EXPECT_GE(episode.faults_fired, 1u) << name << " no longer reaches its fault site";
    for (const auto& v : episode.violations) {
      ADD_FAILURE() << name << ": " << chaos::to_string(v);
    }
  }
}

// --- explorer -------------------------------------------------------------------

TEST(ChaosExplorerTest, CappedDepthOneSweepIsCleanAndReportsDrops) {
  ExplorerOptions options;
  options.max_schedules = 12;
  ChaosExplorer explorer(chaos::lifecycle_scenario(), options);
  chaos::ExploreReport report = explorer.explore();
  EXPECT_TRUE(report.clean_violations.empty());
  EXPECT_FALSE(report.trace.empty());
  EXPECT_EQ(report.episodes.size(), 12u);
  EXPECT_GT(report.schedules_dropped, 0u);  // the cap must be visible, not silent
  for (const auto& episode : report.episodes) {
    for (const auto& v : episode.violations) {
      ADD_FAILURE() << chaos::to_string(v);
    }
  }
}

/// The acceptance-criterion determinism check: the same seed yields the
/// same schedule set, and each schedule replays to the same order digest
/// whether the engine runs on 1 worker thread or 4 (the scenario pins
/// shard_by = kSwitch, so the partition fixes ordering).
TEST(ChaosExplorerTest, SameSeedSameSchedulesSameDigestsAcrossThreadCounts) {
  ExplorerOptions options;
  options.seed = 42;
  LifecycleScenarioOptions seq;
  seq.threads = 1;
  LifecycleScenarioOptions par;
  par.threads = 4;
  ChaosExplorer e1(chaos::lifecycle_scenario(seq), options);
  ChaosExplorer e4(chaos::lifecycle_scenario(par), options);

  std::uint64_t digest1 = 0, digest4 = 0;
  const std::vector<TraceEntry> t1 = e1.record(&digest1);
  const std::vector<TraceEntry> t4 = e4.record(&digest4);
  EXPECT_EQ(digest1, digest4);
  ASSERT_EQ(t1.size(), t4.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].site, t4[i].site) << "trace diverges at hit " << i;
    EXPECT_EQ(t1[i].occurrence, t4[i].occurrence) << "trace diverges at hit " << i;
  }

  const std::vector<FaultSchedule> s1 = e1.enumerate(t1);
  const std::vector<FaultSchedule> s4 = e4.enumerate(t4);
  ASSERT_EQ(s1.size(), s4.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    ASSERT_EQ(s1[i].size(), s4[i].size()) << "schedule " << i;
    for (std::size_t j = 0; j < s1[i].size(); ++j) {
      EXPECT_EQ(s1[i][j].site, s4[i][j].site);
      EXPECT_EQ(s1[i][j].occurrence, s4[i][j].occurrence);
      EXPECT_EQ(s1[i][j].kind, s4[i][j].kind);
    }
  }

  // Replaying a slice of the sweep must agree episode by episode.
  const std::size_t episodes = std::min<std::size_t>(6, s1.size());
  for (std::size_t i = 0; i < episodes; ++i) {
    Episode ep1 = e1.run_schedule(s1[i]);
    Episode ep4 = e4.run_schedule(s4[i]);
    EXPECT_EQ(ep1.digest, ep4.digest) << "schedule " << i;
    EXPECT_EQ(ep1.faults_fired, ep4.faults_fired) << "schedule " << i;
    EXPECT_EQ(ep1.failed(), ep4.failed()) << "schedule " << i;
  }
}

// --- idempotent teardown under explorer-induced errors (satellite) --------------

sg::ServiceGraph nat_graph(const std::string& name) {
  sg::ServiceGraph g(name);
  g.add_sap("sap1").add_sap("sap2");
  g.add_vnf("nat", "flow_nat",
            {{"capacity", "64"}, {"timeout_ms", "30000"}, {"port_count", "16"}}, 0.1);
  g.add_link("sap1", "nat").add_link("nat", "sap2");
  return g;
}

std::unique_ptr<Environment> small_env() {
  auto env = std::make_unique<Environment>();
  auto& net = env->network();
  net.add_host("sap1");
  net.add_host("sap2");
  net.add_switch("s1");
  net.add_switch("s2");
  net.add_container("c1", 2.0, 8);
  net.add_container("c2", 2.0, 8);
  netemu::LinkConfig link;
  link.bandwidth_bps = 1'000'000'000;
  link.delay = 50 * timeunit::kMicrosecond;
  (void)net.add_link("sap1", 0, "s1", 1, link);
  (void)net.add_link("sap2", 0, "s2", 1, link);
  (void)net.add_link("s1", 2, "s2", 2, link);
  (void)net.add_link("c1", 0, "s1", 3, link);
  (void)net.add_link("c2", 0, "s2", 3, link);
  return env;
}

/// The benign-error set of the idempotent teardown, audited against what
/// the explorer induces: killing the VNF's container mid-flight makes
/// every teardown RPC fail with container death / session loss, and the
/// teardown must still succeed (the instances are gone with the
/// container; only the steering flows and bookkeeping remain to clean).
TEST(TeardownIdempotence, UndeploySucceedsAfterContainerDeath) {
  auto env = small_env();
  ASSERT_TRUE(env->start().ok());
  openflow::Match match;
  match.dl_type(net::ethertype::kIpv4).nw_dst(env->host("sap2")->ip());
  auto chain = env->deploy(nat_graph("benign"), match);
  ASSERT_TRUE(chain.ok()) << chain.error().to_string();
  ASSERT_EQ(*env->chain_state(*chain), ChainState::kActive);

  const ChainDeployment* dep = env->deployment(*chain);
  ASSERT_NE(dep, nullptr);
  ASSERT_FALSE(dep->record.vnfs.empty());
  const std::string host = dep->record.vnfs.front().container;
  ASSERT_TRUE(env->kill_container(host).ok());
  env->run_for(10 * timeunit::kMillisecond);

  // Every per-VNF RPC now fails (netconf.session.closed / container
  // dead) -- all benign: the chain must still come down cleanly.
  EXPECT_TRUE(env->undeploy(*chain).ok());
  EXPECT_TRUE(env->deployed_chains().empty());
  EXPECT_EQ(env->steering().installed_count(), 0u);
}

// --- circuit breaker half-open probe expiry under shards (satellite) ------------

/// A wedged half-open probe (sent into a lossy transport with no
/// per-attempt timeout) must not hold the breaker shut forever: after a
/// full cooldown window a fresh probe is allowed. Runs on a 4-thread
/// sharded scheduler with the client and server on different shards, so
/// the breaker's clock reads cross-shard virtual time.
TEST(CircuitBreaker, HalfOpenProbeExpiryUnderShardedScheduler) {
  ShardedScheduler sched{4, 4};
  const SimDuration hop = 100 * timeunit::kMicrosecond;
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = 0; b < 4; ++b) {
      if (a != b) sched.add_lookahead_edge(a, b, hop);
    }
  }
  auto [server_end, client_end] = netconf::make_pipe(sched.shard(1), sched.shard(0), hop);
  auto server = std::make_unique<netconf::NetconfServer>(server_end);
  auto client = std::make_unique<netconf::NetconfClient>(client_end);
  server->register_rpc("echo",
                       [](const xml::Element&) -> Result<std::unique_ptr<xml::Element>> {
                         return std::make_unique<xml::Element>("echoed");
                       });
  sched.run();  // hello exchange
  ASSERT_TRUE(client->established());

  client->set_circuit_breaker(
      {.failure_threshold = 3, .open_for = 50 * timeunit::kMillisecond});
  client_end->set_faults({.drop_prob = 1.0});
  netconf::RpcOptions opts;
  opts.timeout = 2 * timeunit::kMillisecond;
  int failures = 0;
  for (int i = 0; i < 3; ++i) {
    client->rpc(std::make_unique<xml::Element>("echo"), opts,
                [&](Result<std::unique_ptr<xml::Element>> r) { failures += !r.ok(); });
    sched.run();
  }
  ASSERT_EQ(failures, 3);
  ASSERT_TRUE(client->circuit_open());

  // Cooldown elapses; the half-open probe goes out with no timeout and
  // its frame is silently dropped: it can never resolve.
  sched.run_for(60 * timeunit::kMillisecond);
  netconf::RpcOptions forever;  // timeout = 0: waits for a reply indefinitely
  bool probe_resolved = false;
  client->rpc(std::make_unique<xml::Element>("echo"), forever,
              [&](Result<std::unique_ptr<xml::Element>>) { probe_resolved = true; });
  sched.run();
  EXPECT_FALSE(probe_resolved);

  // While the wedged probe is within its expiry window, everything else
  // fails fast -- exactly one probe may be outstanding.
  Error fast{"", ""};
  client->rpc(std::make_unique<xml::Element>("echo"), opts,
              [&](Result<std::unique_ptr<xml::Element>> r) { fast = r.error(); });
  EXPECT_EQ(fast.code, "netconf.circuit-open");

  // One full cooldown later the wedged probe is considered lost; with
  // the transport healed the fresh probe closes the breaker.
  client_end->clear_faults();
  sched.run_for(60 * timeunit::kMillisecond);
  bool probed = false;
  client->rpc(std::make_unique<xml::Element>("echo"), opts,
              [&](Result<std::unique_ptr<xml::Element>> r) { probed = r.ok(); });
  sched.run();
  EXPECT_TRUE(probed);
  EXPECT_FALSE(client->circuit_open());
}

}  // namespace
}  // namespace escape
