# Empty compiler generated dependencies file for bench_demo_workflow.
# This may be replaced when dependencies are built.
