#include "pox/core.hpp"

#include "openflow/wire.hpp"

namespace escape::pox {

std::optional<Message> Controller::through_wire(Message message) {
  if (!serialize_) return message;
  // A FlowModBatch has no OF 1.0 frame of its own: on the wire it is N
  // consecutive ofp_flow_mod messages, so round-trip each mod through
  // the codec and drop only the malformed ones.
  if (auto* batch = std::get_if<openflow::FlowModBatch>(&message)) {
    openflow::FlowModBatch wired;
    wired.mods.reserve(batch->mods.size());
    for (auto& mod : batch->mods) {
      auto bytes = openflow::wire::encode(mod);
      wire_bytes_.fetch_add(bytes.size(), std::memory_order_relaxed);
      auto decoded = openflow::wire::decode(bytes);
      if (!decoded.ok()) {
        log_.warn("wire codec dropped a flow_mod of a batch: ", decoded.error().to_string());
        continue;
      }
      wired.mods.push_back(std::get<openflow::FlowMod>(std::move(decoded->message)));
    }
    return Message{std::move(wired)};
  }
  auto bytes = openflow::wire::encode(message);
  wire_bytes_.fetch_add(bytes.size(), std::memory_order_relaxed);
  auto decoded = openflow::wire::decode(bytes);
  if (!decoded.ok()) {
    log_.warn("wire codec dropped a ", openflow::message_type_name(message),
              ": ", decoded.error().to_string());
    return std::nullopt;
  }
  return std::move(decoded->message);
}

/// Switch-side channel endpoint: forwards switch->controller messages
/// through the scheduler with the configured delay. When the switch
/// lives on another shard, the hop is evaluated against this endpoint's
/// mirrored fault state (confined to the switch's shard) and crosses
/// through the mailbox -- the controller-side SwitchConnection state is
/// never touched from the switch's thread.
class Channel : public openflow::ControlChannel {
 public:
  Channel(Controller* controller, DatapathId dpid, openflow::OpenFlowSwitch* sw)
      : controller_(controller), dpid_(dpid), sw_(sw) {}

  void to_controller(Message message) override {
    auto* c = controller_;
    auto dpid = dpid_;
    EventScheduler& sw_sched = sw_->scheduler();
    if (&sw_sched == c->scheduler_) {
      // Same scheduler: the classic single-shard path, bit-identical to
      // the pre-sharding implementation (shared fault RNG and all).
      auto it = c->connections_.find(dpid);
      if (it == c->connections_.end()) return;
      auto delay = c->channel_hop_delay(*it->second);
      if (!delay) return;  // channel fault dropped the message
      auto wired = c->through_wire(std::move(message));
      if (!wired) return;
      c->scheduler_->schedule(*delay, [c, dpid, msg = std::move(*wired)]() mutable {
        c->deliver_from_switch(dpid, std::move(msg));
      });
      return;
    }
    // Cross-shard: switch-side fault mirror, then over the mailbox.
    if (!admin_up_) return;
    if (drop_prob_ > 0.0 && rng_.next_bool(drop_prob_)) return;
    auto wired = c->through_wire(std::move(message));
    if (!wired) return;
    cross_schedule(sw_sched, *c->scheduler_, c->channel_delay_ + extra_delay_,
                   [c, dpid, msg = std::move(*wired)]() mutable {
                     c->deliver_from_switch(dpid, std::move(msg));
                   });
  }

  bool connected() const override { return true; }

  /// Fault-plane mirror setters; must run on the switch's shard (the
  /// controller routes them through Controller::on_switch_shard).
  void set_admin(bool up) { admin_up_ = up; }
  void set_faults(double drop_prob, SimDuration extra_delay, std::uint64_t seed) {
    drop_prob_ = drop_prob;
    extra_delay_ = extra_delay;
    // Decorrelated from the controller-side stream: the two hops of a
    // cross-shard channel draw independently.
    rng_ = Rng{seed ^ 0x5bd1e9955bd1e995ull};
  }

 private:
  Controller* controller_;
  DatapathId dpid_;
  openflow::OpenFlowSwitch* sw_;
  // Switch-shard-confined mirror of the connection fault model.
  bool admin_up_ = true;
  double drop_prob_ = 0.0;
  SimDuration extra_delay_ = 0;
  Rng rng_{0x5bd1e9955bd1e995ull};
};

Controller::Controller(EventScheduler& scheduler, SimDuration channel_delay)
    : scheduler_(&scheduler), channel_delay_(channel_delay) {}

void Controller::add_app(std::shared_ptr<App> app) {
  apps_.push_back(app);
  app->on_startup(*this);
}

App* Controller::app(std::string_view name) {
  for (auto& a : apps_) {
    if (a->name() == name) return a.get();
  }
  return nullptr;
}

void Controller::attach_switch(openflow::OpenFlowSwitch& sw) {
  const DatapathId dpid = sw.datapath_id();
  auto conn = std::make_unique<SwitchConnection>(this, dpid);
  conn->deliver_to_switch_ = [&sw](Message msg) { sw.handle_message(msg); };
  conn->sw_ = &sw;
  SwitchConnection* raw = conn.get();
  connections_[dpid] = std::move(conn);
  auto& registry = obs::MetricsRegistry::global();
  obs::Labels labels{{"dpid", std::to_string(dpid)}, {"side", "controller"}};
  raw->m_channel_down_ = &registry.counter("escape_of_channel_down_total", labels);
  raw->m_echo_rtt_ms_ = &registry.histogram("escape_of_echo_rtt_ms", labels);
  auto channel = std::make_shared<Channel>(this, dpid, &sw);
  raw->channel_ = channel.get();
  // A switch on another shard turns the control channel into a pair of
  // cross-shard edges with the base one-way delay as lookahead.
  EventScheduler& ss = sw.scheduler();
  if (&ss != scheduler_ && scheduler_->owner() != nullptr &&
      scheduler_->owner() == ss.owner()) {
    auto* owner = scheduler_->owner();
    owner->add_lookahead_edge(scheduler_->shard_id(), ss.shard_id(), channel_delay_);
    owner->add_lookahead_edge(ss.shard_id(), scheduler_->shard_id(), channel_delay_);
  }
  sw.connect(std::move(channel));
  // Controller side of the handshake: Hello prompts the switch to
  // announce its features, which flips the connection up.
  raw->send(openflow::Hello{});
  if (liveness_.enabled) start_echo_loop(dpid);
}

SwitchConnection* Controller::connection(DatapathId dpid) {
  auto it = connections_.find(dpid);
  return it == connections_.end() ? nullptr : it->second.get();
}

std::vector<DatapathId> Controller::connected_switches() const {
  std::vector<DatapathId> out;
  for (const auto& [dpid, conn] : connections_) {
    if (conn->up()) out.push_back(dpid);
  }
  return out;
}

void SwitchConnection::send(Message message) {
  ++sent_;
  auto* c = controller_;
  auto delay = c->channel_hop_delay(*this);
  if (!delay) return;  // channel fault dropped the message
  auto wired = c->through_wire(std::move(message));
  if (!wired) return;
  // Deliver through the scheduler to model the channel delay; capture the
  // delivery function by value so a torn-down connection cannot dangle.
  auto deliver = deliver_to_switch_;
  EventScheduler* sw_sched = sw_ ? &sw_->scheduler() : c->scheduler_;
  if (sw_sched == c->scheduler_) {
    c->scheduler_->schedule(*delay, [deliver, msg = std::move(*wired)]() mutable {
      if (deliver) deliver(std::move(msg));
    });
    return;
  }
  // The switch lives on another shard: the message crosses through the
  // mailbox and executes the delivery function on the switch's shard.
  cross_schedule(*c->scheduler_, *sw_sched, *delay,
                 [deliver, msg = std::move(*wired)]() mutable {
                   if (deliver) deliver(std::move(msg));
                 });
}

std::optional<SimDuration> Controller::channel_hop_delay(SwitchConnection& conn) {
  if (!conn.admin_up_) return std::nullopt;
  if (conn.drop_prob_ > 0.0 && conn.fault_rng_.next_bool(conn.drop_prob_)) return std::nullopt;
  return channel_delay_ + conn.extra_delay_;
}

void Controller::on_switch_shard(SwitchConnection& conn, std::function<void()> fn) {
  EventScheduler* ss = conn.sw_ ? &conn.sw_->scheduler() : scheduler_;
  EventScheduler* cur = ShardedScheduler::current_shard();
  if (cur == nullptr || ss->owner() == nullptr || cur == ss) {
    fn();
  } else {
    ss->owner()->post_admin(ss->shard_id(), std::move(fn));
  }
}

Status Controller::set_channel_admin(DatapathId dpid, bool up) {
  auto it = connections_.find(dpid);
  if (it == connections_.end()) {
    return make_error("pox.channel.unknown-dpid", "no connection to dpid " + std::to_string(dpid));
  }
  it->second->admin_up_ = up;
  if (Channel* ch = it->second->channel_) {
    on_switch_shard(*it->second, [ch, up] { ch->set_admin(up); });
  }
  log_.warn("control channel to dpid=", dpid, " administratively ", up ? "restored" : "severed");
  return ok_status();
}

Status Controller::set_channel_faults(DatapathId dpid, double drop_prob, SimDuration extra_delay,
                                      std::uint64_t seed) {
  auto it = connections_.find(dpid);
  if (it == connections_.end()) {
    return make_error("pox.channel.unknown-dpid", "no connection to dpid " + std::to_string(dpid));
  }
  it->second->drop_prob_ = drop_prob;
  it->second->extra_delay_ = extra_delay;
  it->second->fault_rng_ = Rng{seed};
  if (Channel* ch = it->second->channel_) {
    on_switch_shard(*it->second,
                    [ch, drop_prob, extra_delay, seed] { ch->set_faults(drop_prob, extra_delay, seed); });
  }
  return ok_status();
}

Status Controller::clear_channel_faults(DatapathId dpid) {
  return set_channel_faults(dpid, 0.0, 0, 1);
}

bool Controller::channel_admin_up(DatapathId dpid) const {
  auto it = connections_.find(dpid);
  return it != connections_.end() && it->second->admin_up_;
}

void Controller::start_echo_loop(DatapathId dpid) {
  auto it = connections_.find(dpid);
  if (it == connections_.end()) return;
  struct Prober {
    Controller* c;
    DatapathId dpid;
    void operator()() {
      c->echo_tick(dpid);
      auto it = c->connections_.find(dpid);
      if (it != c->connections_.end()) {
        it->second->echo_timer_ =
            c->scheduler_->schedule(c->liveness_.echo_interval, Prober{c, dpid});
      }
    }
  };
  it->second->echo_timer_.cancel();
  it->second->echo_timer_ = scheduler_->schedule(liveness_.echo_interval, Prober{this, dpid});
}

void Controller::echo_tick(DatapathId dpid) {
  auto it = connections_.find(dpid);
  if (it == connections_.end()) return;
  SwitchConnection& conn = *it->second;
  if (conn.up_ &&
      conn.echo_outstanding_.size() >= static_cast<std::size_t>(liveness_.miss_threshold)) {
    mark_connection_down(conn, "echo timeout");
  }
  // Bound the probe backlog while the channel stays dead.
  while (conn.echo_outstanding_.size() > static_cast<std::size_t>(liveness_.miss_threshold)) {
    conn.echo_outstanding_.erase(conn.echo_outstanding_.begin());
  }
  const std::uint32_t payload = conn.next_echo_payload_++;
  conn.echo_outstanding_[payload] = scheduler_->now();
  conn.send(openflow::EchoRequest{payload});
}

void Controller::mark_connection_down(SwitchConnection& conn, std::string_view reason) {
  if (!conn.up_) return;
  conn.up_ = false;
  conn.echo_outstanding_.clear();
  if (conn.m_channel_down_) conn.m_channel_down_->add();
  log_.warn("connection down: dpid=", conn.dpid(), " (", reason, ")");
  for (auto& app : apps_) app->on_connection_down(conn);
}

void Controller::raise_packet_in(SwitchConnection& conn, const openflow::PacketIn& msg) {
  ++packet_ins_;
  for (auto& app : apps_) {
    if (app->on_packet_in(conn, msg)) return;
  }
}

void Controller::deliver_from_switch(DatapathId dpid, Message message) {
  auto it = connections_.find(dpid);
  if (it == connections_.end()) return;
  SwitchConnection& conn = *it->second;

  // Sample the echo RTT before the activity note clears the probe map.
  if (const auto* reply = std::get_if<openflow::EchoReply>(&message)) {
    auto oit = conn.echo_outstanding_.find(reply->payload);
    if (oit != conn.echo_outstanding_.end() && scheduler_->now() >= oit->second) {
      if (conn.m_echo_rtt_ms_) {
        conn.m_echo_rtt_ms_->record(static_cast<double>(scheduler_->now() - oit->second) /
                                    timeunit::kMillisecond);
      }
    }
  }
  // Any message from the switch proves the channel passes traffic.
  conn.echo_outstanding_.clear();

  std::visit(
      [this, &conn](auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, openflow::Hello>) {
          // The initial handshake Hello arrives while the connection is
          // still down and needs no reply (attach_switch sends ours).
          // An unsolicited Hello on an up connection means the switch
          // restarted and lost its soft state: tear the connection down
          // and re-handshake so apps resync on the ConnectionUp that
          // follows the fresh FeaturesReply.
          if (conn.up_) {
            mark_connection_down(conn, "switch restart (unsolicited hello)");
            conn.send(openflow::Hello{});
          }
        } else if constexpr (std::is_same_v<T, openflow::EchoReply>) {
          // A live channel while the connection is marked down: the
          // fault that killed it has cleared, so re-handshake.
          if (!conn.up_) conn.send(openflow::Hello{});
        } else if constexpr (std::is_same_v<T, openflow::FeaturesReply>) {
          conn.ports_ = msg.ports;
          const bool was_up = conn.up_;
          conn.up_ = true;
          if (!was_up) {
            log_.info("connection up: dpid=", conn.dpid());
            for (auto& app : apps_) app->on_connection_up(conn);
          }
        } else if constexpr (std::is_same_v<T, openflow::PacketIn>) {
          raise_packet_in(conn, msg);
        } else if constexpr (std::is_same_v<T, openflow::FlowRemoved>) {
          for (auto& app : apps_) app->on_flow_removed(conn, msg);
        } else if constexpr (std::is_same_v<T, openflow::PortStatus>) {
          // Keep the cached port list fresh.
          if (msg.reason == openflow::PortStatus::Reason::kDelete) {
            std::erase_if(conn.ports_,
                          [&](const auto& p) { return p.port_no == msg.port.port_no; });
          } else {
            bool found = false;
            for (auto& p : conn.ports_) {
              if (p.port_no == msg.port.port_no) {
                p = msg.port;
                found = true;
              }
            }
            if (!found) conn.ports_.push_back(msg.port);
          }
          for (auto& app : apps_) app->on_port_status(conn, msg);
        } else if constexpr (std::is_same_v<T, openflow::StatsReply>) {
          for (auto& app : apps_) app->on_stats_reply(conn, msg);
        } else if constexpr (std::is_same_v<T, openflow::BarrierReply>) {
          for (auto& app : apps_) app->on_barrier_reply(conn);
        } else if constexpr (std::is_same_v<T, openflow::EchoRequest>) {
          conn.send(openflow::EchoReply{msg.payload});
        }
      },
      message);
}

}  // namespace escape::pox
