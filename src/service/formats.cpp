#include "service/formats.hpp"

namespace escape::service {

// --- TopologySpec --------------------------------------------------------------

Result<TopologySpec> TopologySpec::from_json(std::string_view text) {
  auto doc = json::parse(text);
  if (!doc.ok()) return doc.error();
  const json::Value& root = *doc;
  if (!root.is_object()) return make_error("format.topology", "document must be an object");

  TopologySpec spec;
  if (root.has("name")) spec.name = root["name"].as_string();

  for (const auto& n : root["nodes"].as_array()) {
    TopologyNodeSpec node;
    node.name = n["name"].as_string();
    node.kind = n["kind"].as_string();
    if (node.name.empty()) return make_error("format.topology", "node without name");
    if (node.kind != "host" && node.kind != "switch" && node.kind != "container") {
      return make_error("format.topology",
                        node.name + ": kind must be host/switch/container");
    }
    if (n.has("cpu")) node.cpu = n["cpu"].as_double(1.0);
    if (n.has("slots")) node.vnf_slots = static_cast<std::size_t>(n["slots"].as_int(8));
    spec.nodes.push_back(std::move(node));
  }

  for (const auto& l : root["links"].as_array()) {
    TopologyLinkSpec link;
    link.a = l["a"].as_string();
    link.b = l["b"].as_string();
    link.port_a = static_cast<std::uint16_t>(l["a_port"].as_int(0));
    link.port_b = static_cast<std::uint16_t>(l["b_port"].as_int(0));
    if (l.has("bw_mbps")) {
      link.bandwidth_bps = static_cast<std::uint64_t>(l["bw_mbps"].as_double() * 1e6);
    }
    if (l.has("delay_us")) {
      link.delay = static_cast<SimDuration>(l["delay_us"].as_double() *
                                            timeunit::kMicrosecond);
    }
    if (l.has("queue")) link.queue_frames = static_cast<std::size_t>(l["queue"].as_int(100));
    if (link.a.empty() || link.b.empty()) {
      return make_error("format.topology", "link endpoints must be named");
    }
    spec.links.push_back(std::move(link));
  }
  return spec;
}

json::Value TopologySpec::to_json() const {
  json::Object root;
  root["name"] = name;
  json::Array nodes_json;
  for (const auto& n : nodes) {
    json::Object o;
    o["name"] = n.name;
    o["kind"] = n.kind;
    if (n.kind == "container") {
      o["cpu"] = n.cpu;
      o["slots"] = static_cast<std::int64_t>(n.vnf_slots);
    }
    nodes_json.push_back(std::move(o));
  }
  root["nodes"] = std::move(nodes_json);
  json::Array links_json;
  for (const auto& l : links) {
    json::Object o;
    o["a"] = l.a;
    o["a_port"] = static_cast<std::int64_t>(l.port_a);
    o["b"] = l.b;
    o["b_port"] = static_cast<std::int64_t>(l.port_b);
    o["bw_mbps"] = static_cast<double>(l.bandwidth_bps) / 1e6;
    o["delay_us"] = static_cast<double>(l.delay) / timeunit::kMicrosecond;
    o["queue"] = static_cast<std::int64_t>(l.queue_frames);
    links_json.push_back(std::move(o));
  }
  root["links"] = std::move(links_json);
  return json::Value(std::move(root));
}

Status TopologySpec::build(netemu::Network& network) const {
  for (const auto& n : nodes) {
    if (n.kind == "host") {
      network.add_host(n.name);
    } else if (n.kind == "switch") {
      network.add_switch(n.name);
    } else {
      network.add_container(n.name, n.cpu, n.vnf_slots);
    }
  }
  for (const auto& l : links) {
    netemu::LinkConfig cfg;
    cfg.bandwidth_bps = l.bandwidth_bps;
    cfg.delay = l.delay;
    cfg.queue_frames = l.queue_frames;
    if (auto s = network.add_link(l.a, l.port_a, l.b, l.port_b, cfg); !s.ok()) return s;
  }
  return ok_status();
}

sg::ResourceGraph TopologySpec::to_resource_graph() const {
  sg::ResourceGraph graph;
  for (const auto& n : nodes) {
    if (n.kind == "host") {
      graph.add_sap(n.name);
    } else if (n.kind == "switch") {
      graph.add_switch(n.name);
    } else {
      graph.add_container(n.name, n.cpu, n.vnf_slots);
    }
  }
  for (const auto& l : links) {
    graph.add_link(l.a, l.port_a, l.b, l.port_b, l.bandwidth_bps, l.delay);
  }
  return graph;
}

// --- ServiceGraph JSON ----------------------------------------------------------

Result<sg::ServiceGraph> service_graph_from_json(std::string_view text) {
  auto doc = json::parse(text);
  if (!doc.ok()) return doc.error();
  const json::Value& root = *doc;
  if (!root.is_object()) return make_error("format.sg", "document must be an object");

  sg::ServiceGraph graph(root.has("name") ? root["name"].as_string() : "sg");

  for (const auto& s : root["saps"].as_array()) {
    graph.add_sap(s.as_string());
  }
  for (const auto& v : root["vnfs"].as_array()) {
    sg::VnfNode vnf;
    vnf.id = v["id"].as_string();
    vnf.vnf_type = v["type"].as_string();
    if (v.has("cpu")) vnf.cpu_demand = v["cpu"].as_double(0.1);
    for (const auto& [key, value] : v["params"].as_object()) {
      vnf.params[key] = value.as_string();
    }
    if (vnf.id.empty() || vnf.vnf_type.empty()) {
      return make_error("format.sg", "VNF entries need id and type");
    }
    graph.add_vnf(std::move(vnf));
  }
  for (const auto& l : root["links"].as_array()) {
    sg::SgLink link;
    link.src = l["src"].as_string();
    link.dst = l["dst"].as_string();
    if (l.has("bw_mbps")) {
      link.bandwidth_bps = static_cast<std::uint64_t>(l["bw_mbps"].as_double() * 1e6);
    }
    if (l.has("max_delay_ms")) {
      link.max_delay = static_cast<SimDuration>(l["max_delay_ms"].as_double() *
                                                timeunit::kMillisecond);
    }
    graph.add_link(std::move(link));
  }
  for (const auto& r : root["requirements"].as_array()) {
    sg::E2eRequirement req;
    req.sap_a = r["a"].as_string();
    req.sap_b = r["b"].as_string();
    if (r.has("bw_mbps")) {
      req.bandwidth_bps = static_cast<std::uint64_t>(r["bw_mbps"].as_double() * 1e6);
    }
    if (r.has("max_delay_ms")) {
      req.max_delay = static_cast<SimDuration>(r["max_delay_ms"].as_double() *
                                               timeunit::kMillisecond);
    }
    graph.add_requirement(std::move(req));
  }
  if (auto s = graph.validate(); !s.ok()) return s.error();
  return graph;
}

json::Value service_graph_to_json(const sg::ServiceGraph& graph) {
  json::Object root;
  root["name"] = graph.name();
  json::Array saps;
  for (const auto& s : graph.saps()) saps.push_back(s.id);
  root["saps"] = std::move(saps);
  json::Array vnfs;
  for (const auto& v : graph.vnfs()) {
    json::Object o;
    o["id"] = v.id;
    o["type"] = v.vnf_type;
    o["cpu"] = v.cpu_demand;
    json::Object params;
    for (const auto& [k, val] : v.params) params[k] = val;
    o["params"] = std::move(params);
    vnfs.push_back(std::move(o));
  }
  root["vnfs"] = std::move(vnfs);
  json::Array links;
  for (const auto& l : graph.links()) {
    json::Object o;
    o["src"] = l.src;
    o["dst"] = l.dst;
    if (l.bandwidth_bps) o["bw_mbps"] = static_cast<double>(l.bandwidth_bps) / 1e6;
    if (l.max_delay) {
      o["max_delay_ms"] = static_cast<double>(l.max_delay) / timeunit::kMillisecond;
    }
    links.push_back(std::move(o));
  }
  root["links"] = std::move(links);
  json::Array reqs;
  for (const auto& r : graph.requirements()) {
    json::Object o;
    o["a"] = r.sap_a;
    o["b"] = r.sap_b;
    if (r.bandwidth_bps) o["bw_mbps"] = static_cast<double>(r.bandwidth_bps) / 1e6;
    if (r.max_delay) {
      o["max_delay_ms"] = static_cast<double>(r.max_delay) / timeunit::kMillisecond;
    }
    reqs.push_back(std::move(o));
  }
  root["requirements"] = std::move(reqs);
  return json::Value(std::move(root));
}

}  // namespace escape::service
