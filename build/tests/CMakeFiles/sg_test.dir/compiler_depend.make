# Empty compiler generated dependencies file for sg_test.
# This may be replaced when dependencies are built.
