# Empty dependencies file for netconf_test.
# This may be replaced when dependencies are built.
