#include "netemu/pcap.hpp"

#include <algorithm>
#include <cstring>

namespace escape::netemu {

namespace {

void put_u32(std::uint8_t* p, std::uint32_t v) {
  // Host-endian, as pcap readers detect byte order from the magic.
  std::memcpy(p, &v, 4);
}
void put_u16(std::uint8_t* p, std::uint16_t v) { std::memcpy(p, &v, 2); }

}  // namespace

PcapWriter::~PcapWriter() { close(); }

Status PcapWriter::open(const std::string& path, std::uint32_t snaplen) {
  close();
  file_ = std::fopen(path.c_str(), "wb");
  if (!file_) return make_error("pcap.open", "cannot open " + path);
  snaplen_ = snaplen;

  std::uint8_t header[24];
  put_u32(&header[0], 0xa1b2c3d4);  // magic (microsecond timestamps)
  put_u16(&header[4], 2);           // version major
  put_u16(&header[6], 4);           // version minor
  put_u32(&header[8], 0);           // thiszone
  put_u32(&header[12], 0);          // sigfigs
  put_u32(&header[16], snaplen);
  put_u32(&header[20], 1);          // linktype: LINKTYPE_ETHERNET
  if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header)) {
    close();
    return make_error("pcap.write", "short write of global header");
  }
  return ok_status();
}

Status PcapWriter::write(const net::Packet& packet, SimTime when) {
  if (!file_) return make_error("pcap.closed", "writer not open");
  const std::uint32_t caplen =
      static_cast<std::uint32_t>(std::min<std::size_t>(packet.size(), snaplen_));

  std::uint8_t record[16];
  put_u32(&record[0], static_cast<std::uint32_t>(when / timeunit::kSecond));
  put_u32(&record[4], static_cast<std::uint32_t>((when % timeunit::kSecond) /
                                                 timeunit::kMicrosecond));
  put_u32(&record[8], caplen);
  put_u32(&record[12], static_cast<std::uint32_t>(packet.size()));
  if (std::fwrite(record, 1, sizeof(record), file_) != sizeof(record) ||
      std::fwrite(packet.data().data(), 1, caplen, file_) != caplen) {
    return make_error("pcap.write", "short write of record");
  }
  ++frames_;
  return ok_status();
}

void PcapWriter::close() {
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace escape::netemu
