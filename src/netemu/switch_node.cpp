#include "netemu/switch_node.hpp"

#include "util/strings.hpp"

namespace escape::netemu {

SwitchNode::SwitchNode(std::string name, EventScheduler& scheduler, openflow::DatapathId dpid)
    : Node(std::move(name), scheduler), datapath_(dpid, scheduler) {}

void SwitchNode::ensure_port(std::uint16_t port) {
  for (const auto& p : datapath_.ports()) {
    if (p.port_no == port) return;
  }
  const net::MacAddr hw = net::MacAddr::from_u64((dpid() << 8) | port);
  datapath_.add_port(port, strings::format("%s-eth%u", name().c_str(), port), hw,
                     [this, port](net::Packet&& packet) { send_out(port, std::move(packet)); });
}

void SwitchNode::deliver(std::uint16_t port, net::Packet&& packet) {
  datapath_.receive(port, std::move(packet));
}

void SwitchNode::deliver_batch(std::uint16_t port, net::PacketBatch&& batch) {
  datapath_.receive_batch(port, std::move(batch));
}

}  // namespace escape::netemu
