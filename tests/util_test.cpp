// Unit tests for the util substrate: strings, event scheduler, token
// bucket, RNG and histogram.
#include <gtest/gtest.h>

#include <cmath>

#include "util/event.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/token_bucket.hpp"

namespace escape {
namespace {

using strings::parse_i64;
using strings::parse_scaled_u64;
using strings::parse_u64;

// --- strings -----------------------------------------------------------------

TEST(Strings, SplitKeepsEmptyFields) {
  auto parts = strings::split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitTrimmedDropsEmptiesAndTrims) {
  auto parts = strings::split_trimmed("  a ; ;b; ", ';');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(Strings, Trim) {
  EXPECT_EQ(strings::trim("  x  "), "x");
  EXPECT_EQ(strings::trim("\t\n"), "");
  EXPECT_EQ(strings::trim(""), "");
  EXPECT_EQ(strings::trim("no-ws"), "no-ws");
}

TEST(Strings, Join) {
  EXPECT_EQ(strings::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(strings::join({}, ","), "");
  EXPECT_EQ(strings::join({"solo"}, ","), "solo");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(strings::starts_with("openflow", "open"));
  EXPECT_FALSE(strings::starts_with("open", "openflow"));
  EXPECT_TRUE(strings::ends_with("vnf_agent", "agent"));
  EXPECT_FALSE(strings::ends_with("agent", "vnf_agent"));
}

TEST(Strings, CaseHelpers) {
  EXPECT_TRUE(strings::iequals("NETCONF", "netconf"));
  EXPECT_FALSE(strings::iequals("click", "clack"));
  EXPECT_EQ(strings::to_lower("MiXeD"), "mixed");
  EXPECT_EQ(strings::to_upper("MiXeD"), "MIXED");
}

TEST(Strings, ParseU64) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("18446744073709551615"), UINT64_MAX);
  EXPECT_FALSE(parse_u64("18446744073709551616"));  // overflow
  EXPECT_FALSE(parse_u64("12x"));
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("-1"));
  EXPECT_EQ(parse_u64("  42  "), 42u);  // trimmed
}

TEST(Strings, ParseI64) {
  EXPECT_EQ(parse_i64("-5"), -5);
  EXPECT_EQ(parse_i64("+5"), 5);
  EXPECT_EQ(parse_i64("-9223372036854775808"), INT64_MIN);
  EXPECT_EQ(parse_i64("9223372036854775807"), INT64_MAX);
  EXPECT_FALSE(parse_i64("9223372036854775808"));
  EXPECT_FALSE(parse_i64("--3"));
}

TEST(Strings, ParseScaled) {
  EXPECT_EQ(parse_scaled_u64("10"), 10u);
  EXPECT_EQ(parse_scaled_u64("10k"), 10'000u);
  EXPECT_EQ(parse_scaled_u64("5M"), 5'000'000u);
  EXPECT_EQ(parse_scaled_u64("2G"), 2'000'000'000u);
  EXPECT_FALSE(parse_scaled_u64("k"));
  EXPECT_FALSE(parse_scaled_u64("10T"));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(strings::replace_all("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(strings::replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(strings::replace_all("x", "", "y"), "x");  // empty pattern = no-op
}

TEST(Strings, Format) {
  EXPECT_EQ(strings::format("%d/%s", 7, "up"), "7/up");
  EXPECT_EQ(strings::format("%05.1f", 2.25), "002.2");
}

// --- EventScheduler -------------------------------------------------------------

TEST(EventScheduler, RunsInTimestampOrder) {
  EventScheduler sched;
  std::vector<int> order;
  sched.schedule(30, [&] { order.push_back(3); });
  sched.schedule(10, [&] { order.push_back(1); });
  sched.schedule(20, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 30u);
}

TEST(EventScheduler, FifoTieBreakAtEqualTime) {
  EventScheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.schedule(100, [&order, i] { order.push_back(i); });
  }
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventScheduler, FifoTieBreakSurvivesNestedSchedulingAndCancellation) {
  // The batched link model relies on insertion order being preserved at
  // equal timestamps even when handlers schedule more work *at the
  // current time* and other same-time events are cancelled in between.
  EventScheduler sched;
  std::vector<int> order;
  sched.schedule(50, [&] {
    order.push_back(0);
    // Scheduled from inside a handler at the already-reached timestamp:
    // must run after everything previously queued for t=50.
    sched.schedule_at(50, [&] { order.push_back(3); });
  });
  auto cancelled = sched.schedule(50, [&] { order.push_back(99); });
  sched.schedule(50, [&] { order.push_back(1); });
  sched.schedule(50, [&] { order.push_back(2); });
  cancelled.cancel();
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sched.now(), 50u);
}

TEST(EventScheduler, CancelPreventsExecutionAndUpdatesCount) {
  EventScheduler sched;
  bool ran = false;
  auto handle = sched.schedule(10, [&] { ran = true; });
  EXPECT_EQ(sched.pending_events(), 1u);
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  EXPECT_EQ(sched.pending_events(), 0u);
  sched.run();
  EXPECT_FALSE(ran);
}

TEST(EventScheduler, CancelIsIdempotent) {
  EventScheduler sched;
  auto handle = sched.schedule(10, [] {});
  handle.cancel();
  handle.cancel();
  EXPECT_EQ(sched.pending_events(), 0u);
}

TEST(EventScheduler, HandleReportsNotPendingAfterFire) {
  EventScheduler sched;
  auto handle = sched.schedule(5, [] {});
  sched.run();
  EXPECT_FALSE(handle.pending());
}

TEST(EventScheduler, RunUntilAdvancesClockToDeadline) {
  EventScheduler sched;
  int fired = 0;
  sched.schedule(50, [&] { ++fired; });
  sched.schedule(150, [&] { ++fired; });
  sched.run_until(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), 100u);
  sched.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sched.now(), 150u);
}

TEST(EventScheduler, EventsScheduledDuringRunExecute) {
  EventScheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sched.schedule(1, recurse);
  };
  sched.schedule(0, recurse);
  sched.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sched.now(), 4u);
}

TEST(EventScheduler, SchedulingIntoThePastThrows) {
  EventScheduler sched;
  sched.schedule(100, [] {});
  sched.run();
  EXPECT_THROW(sched.schedule_at(50, [] {}), std::logic_error);
}

TEST(EventScheduler, MaxEventsGuard) {
  EventScheduler sched;
  std::function<void()> forever = [&] { sched.schedule(1, forever); };
  sched.schedule(0, forever);
  std::size_t ran = sched.run(1000);
  EXPECT_EQ(ran, 1000u);
  EXPECT_EQ(sched.executed_events(), 1000u);
}

// --- TokenBucket ------------------------------------------------------------------

TEST(TokenBucket, StartsFullAndRefills) {
  TokenBucket bucket(1000, 10);  // 1000/s, burst 10
  EXPECT_TRUE(bucket.try_consume(0, 10));
  EXPECT_FALSE(bucket.try_consume(0, 1));
  // After 1 ms, one token accrued.
  EXPECT_TRUE(bucket.try_consume(timeunit::kMillisecond, 1));
  EXPECT_FALSE(bucket.try_consume(timeunit::kMillisecond, 1));
}

TEST(TokenBucket, NextAvailableComputesExactWait) {
  TokenBucket bucket(1000, 1);
  EXPECT_TRUE(bucket.try_consume(0, 1));
  // 1 token needs 1/1000 s = 1 ms.
  EXPECT_EQ(bucket.next_available(0, 1), timeunit::kMillisecond);
}

TEST(TokenBucket, BurstCapsAccumulation) {
  TokenBucket bucket(1000, 5);
  // Wait far longer than needed; only burst tokens available.
  EXPECT_EQ(bucket.available(10 * timeunit::kSecond), 5u);
}

TEST(TokenBucket, ConsumeRecordsDeficit) {
  TokenBucket bucket(1000, 1);
  bucket.consume(0, 3);  // 2 token deficit at 1000/s -> 2 ms to recover
  EXPECT_FALSE(bucket.try_consume(timeunit::kMillisecond, 1));
  EXPECT_TRUE(bucket.try_consume(3 * timeunit::kMillisecond, 1));
}

// --- Rng ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.next_range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.next_exponential(5.0);
  EXPECT_NEAR(sum / 20000.0, 5.0, 0.3);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// --- Histogram ----------------------------------------------------------------------

TEST(Histogram, BasicStatistics) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.p50(), 3.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
}

TEST(Histogram, EmptyIsSafe) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.p95(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.record(10);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  h.record(1);
  EXPECT_DOUBLE_EQ(h.mean(), 1.0);
}

TEST(Histogram, StddevOfConstantIsZero) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.record(4.0);
  EXPECT_NEAR(h.stddev(), 0.0, 1e-9);
}

/// Property sweep: nearest-rank percentile of 1..N.
class PercentileSweep : public ::testing::TestWithParam<int> {};

TEST_P(PercentileSweep, NearestRankMatchesFormula) {
  const int n = GetParam();
  Histogram h;
  for (int i = 1; i <= n; ++i) h.record(i);
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    const auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
    const double expected = static_cast<double>(rank == 0 ? 1 : rank);
    EXPECT_DOUBLE_EQ(h.percentile(p), expected) << "n=" << n << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PercentileSweep, ::testing::Values(1, 2, 3, 10, 100, 1000));

}  // namespace
}  // namespace escape
