// Point-to-point emulated link with bandwidth, propagation delay and a
// bounded transmit queue per direction -- the TCLink equivalent of
// Mininet.
//
// Model: each direction serializes frames at `bandwidth_bps`; a frame
// arriving while the "wire" is busy waits in the transmit queue (FIFO,
// at most `queue_frames`); excess frames are dropped. A transmitted
// frame is delivered `delay` after its serialization completes.
#pragma once

#include <cstdint>
#include <string>

#include "netemu/node.hpp"
#include "util/random.hpp"
#include "util/time.hpp"

namespace escape::netemu {

struct LinkConfig {
  std::uint64_t bandwidth_bps = 1'000'000'000;  // 1 Gbit/s
  SimDuration delay = 50 * timeunit::kMicrosecond;
  std::size_t queue_frames = 100;
  double loss = 0.0;  // random loss probability per frame
};

class Link {
 public:
  /// Wires node_a[port_a] <-> node_b[port_b]. Registration with the
  /// nodes is performed by Network::add_link.
  Link(Node* node_a, std::uint16_t port_a, Node* node_b, std::uint16_t port_b,
       LinkConfig config, EventScheduler& scheduler, std::uint64_t loss_seed = 1);

  /// Called by a node: transmit `packet` from the endpoint `from_endpoint`
  /// (0 = a-side, 1 = b-side) toward the other side.
  void transmit(int from_endpoint, net::Packet&& packet);

  const LinkConfig& config() const { return config_; }
  Node* node(int endpoint) const { return endpoint == 0 ? node_a_ : node_b_; }
  std::uint16_t port(int endpoint) const { return endpoint == 0 ? port_a_ : port_b_; }

  std::uint64_t delivered(int direction) const { return dir_[direction].delivered; }
  std::uint64_t dropped(int direction) const { return dir_[direction].dropped; }

  std::string to_string() const;

 private:
  struct Direction {
    SimTime busy_until = 0;
    std::size_t in_flight = 0;  // frames queued or serializing
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
  };

  SimDuration tx_time(std::size_t bytes) const;

  Node* node_a_;
  std::uint16_t port_a_;
  Node* node_b_;
  std::uint16_t port_b_;
  LinkConfig config_;
  EventScheduler* scheduler_;
  Rng loss_rng_;
  Direction dir_[2];
};

}  // namespace escape::netemu
