file(REMOVE_RECURSE
  "CMakeFiles/bench_cpu_share.dir/bench_cpu_share.cpp.o"
  "CMakeFiles/bench_cpu_share.dir/bench_cpu_share.cpp.o.d"
  "bench_cpu_share"
  "bench_cpu_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cpu_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
