// Result<T>: a lightweight expected-like type for recoverable errors.
//
// The framework reserves exceptions for programming errors (violated
// preconditions); anything a caller is expected to handle -- parse
// failures, mapping rejections, RPC errors -- travels as a Result.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace escape {

/// A recoverable error: a short machine-readable code plus a
/// human-readable message. Codes are dotted lowercase paths, e.g.
/// "netconf.rpc.unknown-operation" or "orchestrator.no-capacity".
struct Error {
  std::string code;
  std::string message;

  std::string to_string() const { return code + ": " + message; }
};

inline Error make_error(std::string code, std::string message) {
  return Error{std::move(code), std::move(message)};
}

/// Result of an operation that yields a T or an Error.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}         // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}     // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  /// Precondition: ok().
  T& value() {
    assert(ok());
    return std::get<T>(data_);
  }
  const T& value() const {
    assert(ok());
    return std::get<T>(data_);
  }

  /// Precondition: !ok().
  const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

  /// Returns the value or a fallback.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

 private:
  std::variant<T, Error> data_;
};

/// Result specialization for operations with no payload.
template <>
class Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)) {}    // NOLINT(google-explicit-constructor)

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

using Status = Result<void>;

inline Status ok_status() { return Status{}; }

}  // namespace escape
