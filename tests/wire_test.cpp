// Tests for the OpenFlow 1.0 wire codec: byte-level layout of the
// common messages, full round trips for every message type, framing,
// and the serialized control channel inside the live environment.
#include <gtest/gtest.h>

#include "escape/environment.hpp"
#include "net/builder.hpp"
#include "openflow/wire.hpp"

namespace escape::openflow::wire {
namespace {

using net::Ipv4Addr;
using net::MacAddr;

template <typename T>
T roundtrip(const T& msg, std::uint32_t xid = 7) {
  auto bytes = encode(Message{msg}, xid);
  auto decoded = decode(bytes);
  EXPECT_TRUE(decoded.ok()) << (decoded.ok() ? "" : decoded.error().to_string());
  EXPECT_EQ(decoded->xid, xid);
  EXPECT_TRUE(std::holds_alternative<T>(decoded->message));
  return std::get<T>(decoded->message);
}

TEST(Wire, HeaderLayout) {
  auto bytes = encode(Message{Hello{}}, 0x11223344);
  ASSERT_EQ(bytes.size(), kHeaderSize);
  EXPECT_EQ(bytes[0], kVersion);
  EXPECT_EQ(bytes[1], static_cast<std::uint8_t>(MsgType::kHello));
  EXPECT_EQ(net::load_be16(&bytes[2]), 8);           // length
  EXPECT_EQ(net::load_be32(&bytes[4]), 0x11223344u);  // xid
}

TEST(Wire, EchoRoundTrip) {
  EXPECT_EQ(roundtrip(EchoRequest{42}).payload, 42u);
  EXPECT_EQ(roundtrip(EchoReply{77}).payload, 77u);
}

TEST(Wire, MatchEncodingLayout) {
  Match m = Match()
                .in_port(3)
                .dl_type(net::ethertype::kIpv4)
                .nw_proto(net::ipproto::kUdp)
                .nw_src(Ipv4Addr(10, 0, 0, 0), 8)
                .tp_dst(80);
  std::uint8_t buf[kMatchSize];
  encode_match(m, buf);
  EXPECT_EQ(net::load_be16(&buf[4]), 3);       // in_port
  EXPECT_EQ(net::load_be16(&buf[22]), 0x0800); // dl_type
  EXPECT_EQ(buf[25], 17);                      // nw_proto
  EXPECT_EQ(net::load_be32(&buf[28]), Ipv4Addr(10, 0, 0, 0).value());
  EXPECT_EQ(net::load_be16(&buf[38]), 80);     // tp_dst
  // nw_src wildcard bits = 32 - prefix = 24.
  const std::uint32_t ofpfw = net::load_be32(&buf[0]);
  EXPECT_EQ((ofpfw >> 8) & 0x3f, 24u);

  Match back = decode_match(buf);
  EXPECT_EQ(back, m);
  EXPECT_TRUE(back.matches(*net::extract_flow_key(
      net::make_udp_packet(MacAddr::from_u64(1), MacAddr::from_u64(2), Ipv4Addr(10, 1, 2, 3),
                           Ipv4Addr(1, 1, 1, 1), 9, 80),
      3)));
}

TEST(Wire, MatchAllRoundTrip) {
  std::uint8_t buf[kMatchSize];
  encode_match(Match(), buf);
  EXPECT_TRUE(decode_match(buf).is_table_miss());
  Match exact = Match::exact(*net::extract_flow_key(
      net::make_udp_packet(MacAddr::from_u64(1), MacAddr::from_u64(2), Ipv4Addr(10, 0, 0, 1),
                           Ipv4Addr(10, 0, 0, 2), 1000, 2000),
      4));
  encode_match(exact, buf);
  EXPECT_EQ(decode_match(buf), exact);
  EXPECT_TRUE(decode_match(buf).is_exact());
}

TEST(Wire, FlowModRoundTrip) {
  FlowMod mod;
  mod.command = FlowModCommand::kAdd;
  mod.match = Match().in_port(2).dl_type(net::ethertype::kIpv4).tp_dst(443);
  mod.priority = 0x9000;
  mod.cookie = 0xdeadbeefcafeULL;
  mod.idle_timeout = seconds(10);
  mod.hard_timeout = seconds(60);
  mod.send_flow_removed = true;
  mod.buffer_id = 123;
  mod.actions = {ActionSetNwDst{Ipv4Addr(192, 0, 2, 1)}, ActionSetTpDst{8443},
                 ActionOutput{7, 0xffff}};

  FlowMod back = roundtrip(mod);
  EXPECT_EQ(back.command, FlowModCommand::kAdd);
  EXPECT_EQ(back.match, mod.match);
  EXPECT_EQ(back.priority, mod.priority);
  EXPECT_EQ(back.cookie, mod.cookie);
  EXPECT_EQ(back.idle_timeout, seconds(10));
  EXPECT_EQ(back.hard_timeout, seconds(60));
  EXPECT_TRUE(back.send_flow_removed);
  ASSERT_TRUE(back.buffer_id.has_value());
  EXPECT_EQ(*back.buffer_id, 123u);
  ASSERT_EQ(back.actions.size(), 3u);
  EXPECT_EQ(std::get<ActionSetNwDst>(back.actions[0]).addr, Ipv4Addr(192, 0, 2, 1));
  EXPECT_EQ(std::get<ActionSetTpDst>(back.actions[1]).port, 8443);
  EXPECT_EQ(std::get<ActionOutput>(back.actions[2]).port, 7);
}

TEST(Wire, FlowModCommandsAndNoBuffer) {
  for (auto cmd : {FlowModCommand::kModify, FlowModCommand::kDelete,
                   FlowModCommand::kDeleteStrict}) {
    FlowMod mod;
    mod.command = cmd;
    FlowMod back = roundtrip(mod);
    EXPECT_EQ(back.command, cmd);
    EXPECT_FALSE(back.buffer_id.has_value());
  }
}

TEST(Wire, SubSecondTimeoutRoundsUpNotDown) {
  FlowMod mod;
  mod.idle_timeout = milliseconds(300);
  FlowMod back = roundtrip(mod);
  EXPECT_EQ(back.idle_timeout, seconds(1));  // never silently permanent
}

TEST(Wire, AllMacActionsRoundTrip) {
  FlowMod mod;
  mod.actions = {ActionSetDlSrc{MacAddr::from_u64(0xaabbccddee01)},
                 ActionSetDlDst{MacAddr::from_u64(0xaabbccddee02)},
                 ActionSetNwTos{46}, ActionSetTpSrc{1234}};
  FlowMod back = roundtrip(mod);
  ASSERT_EQ(back.actions.size(), 4u);
  EXPECT_EQ(std::get<ActionSetDlSrc>(back.actions[0]).mac.to_u64(), 0xaabbccddee01u);
  EXPECT_EQ(std::get<ActionSetDlDst>(back.actions[1]).mac.to_u64(), 0xaabbccddee02u);
  EXPECT_EQ(std::get<ActionSetNwTos>(back.actions[2]).dscp, 46);
  EXPECT_EQ(std::get<ActionSetTpSrc>(back.actions[3]).port, 1234);
}

TEST(Wire, PacketInRoundTripCarriesFrame) {
  PacketIn in;
  in.buffer_id = 9;
  in.in_port = 4;
  in.reason = PacketInReason::kAction;
  in.packet = net::make_udp_packet(MacAddr::from_u64(1), MacAddr::from_u64(2),
                                   Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), 5, 6, 120);
  PacketIn back = roundtrip(in);
  EXPECT_EQ(back.in_port, 4);
  EXPECT_EQ(back.reason, PacketInReason::kAction);
  ASSERT_TRUE(back.buffer_id.has_value());
  EXPECT_EQ(*back.buffer_id, 9u);
  EXPECT_EQ(back.packet.data(), in.packet.data());
}

TEST(Wire, PacketOutRoundTrip) {
  PacketOut out;
  out.in_port = 2;
  out.actions = output_to(kPortFlood);
  out.packet = net::make_udp_packet(MacAddr::from_u64(1), MacAddr::from_u64(2),
                                    Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), 5, 6);
  PacketOut back = roundtrip(out);
  EXPECT_EQ(back.in_port, 2);
  EXPECT_FALSE(back.buffer_id.has_value());
  EXPECT_EQ(back.packet.data(), out.packet.data());
  ASSERT_EQ(back.actions.size(), 1u);
  EXPECT_EQ(std::get<ActionOutput>(back.actions[0]).port, kPortFlood);

  PacketOut buffered;
  buffered.buffer_id = 55;
  buffered.actions = output_to(3);
  PacketOut back2 = roundtrip(buffered);
  ASSERT_TRUE(back2.buffer_id.has_value());
  EXPECT_EQ(*back2.buffer_id, 55u);
  EXPECT_TRUE(back2.packet.empty());
}

TEST(Wire, FeaturesReplyWithPorts) {
  FeaturesReply reply;
  reply.datapath_id = 0x123456789abcULL;
  reply.n_buffers = 256;
  reply.n_tables = 1;
  reply.ports = {PortInfo{1, MacAddr::from_u64(0x0a01), "s1-eth1", true},
                 PortInfo{2, MacAddr::from_u64(0x0a02), "s1-eth2", false}};
  FeaturesReply back = roundtrip(reply);
  EXPECT_EQ(back.datapath_id, reply.datapath_id);
  EXPECT_EQ(back.n_buffers, 256u);
  ASSERT_EQ(back.ports.size(), 2u);
  EXPECT_EQ(back.ports[0].name, "s1-eth1");
  EXPECT_EQ(back.ports[0].hw_addr.to_u64(), 0x0a01u);
  EXPECT_TRUE(back.ports[0].link_up);
  EXPECT_FALSE(back.ports[1].link_up);
}

TEST(Wire, FlowRemovedRoundTrip) {
  FlowRemoved removed;
  removed.match = Match().tp_dst(80);
  removed.priority = 5;
  removed.cookie = 99;
  removed.reason = FlowRemovedReason::kHardTimeout;
  removed.packet_count = 1000;
  removed.byte_count = 98000;
  FlowRemoved back = roundtrip(removed);
  EXPECT_EQ(back.match, removed.match);
  EXPECT_EQ(back.cookie, 99u);
  EXPECT_EQ(back.reason, FlowRemovedReason::kHardTimeout);
  EXPECT_EQ(back.packet_count, 1000u);
  EXPECT_EQ(back.byte_count, 98000u);
}

TEST(Wire, PortStatusRoundTrip) {
  PortStatus status;
  status.reason = PortStatus::Reason::kAdd;
  status.port = PortInfo{7, MacAddr::from_u64(0x0777), "c1-veth7", true};
  PortStatus back = roundtrip(status);
  EXPECT_EQ(back.reason, PortStatus::Reason::kAdd);
  EXPECT_EQ(back.port.port_no, 7);
  EXPECT_EQ(back.port.name, "c1-veth7");
}

TEST(Wire, StatsRequestKinds) {
  for (auto kind : {StatsRequest::Kind::kFlow, StatsRequest::Kind::kPort,
                    StatsRequest::Kind::kTable}) {
    StatsRequest req;
    req.kind = kind;
    EXPECT_EQ(roundtrip(req).kind, kind);
  }
}

TEST(Wire, FlowStatsReplyRoundTrip) {
  StatsReply reply;
  FlowStatsEntry e1;
  e1.match = Match().in_port(1).tp_dst(80);
  e1.priority = 0x9000;
  e1.cookie = 3;
  e1.packet_count = 120;
  e1.byte_count = 11760;
  e1.age = seconds(2) + 500;
  e1.actions = output_to(2);
  FlowStatsEntry e2;
  e2.match = Match();
  e2.cookie = 4;
  reply.flows = {e1, e2};

  StatsReply back = roundtrip(reply);
  ASSERT_EQ(back.flows.size(), 2u);
  EXPECT_EQ(back.flows[0].match, e1.match);
  EXPECT_EQ(back.flows[0].cookie, 3u);
  EXPECT_EQ(back.flows[0].packet_count, 120u);
  EXPECT_EQ(back.flows[0].byte_count, 11760u);
  EXPECT_EQ(back.flows[0].age, seconds(2) + 500);
  ASSERT_EQ(back.flows[0].actions.size(), 1u);
  EXPECT_TRUE(back.flows[1].match.is_table_miss());
}

TEST(Wire, PortAndTableStatsReplyRoundTrip) {
  StatsReply ports;
  ports.ports = {PortStatsEntry{1, 10, 20, 1000, 2000, 1, 2},
                 PortStatsEntry{2, 0, 5, 0, 500, 0, 0}};
  StatsReply back = roundtrip(ports);
  ASSERT_EQ(back.ports.size(), 2u);
  EXPECT_EQ(back.ports[0].rx_packets, 10u);
  EXPECT_EQ(back.ports[1].tx_bytes, 500u);

  StatsReply table;
  table.table = TableStats{12, 3456, 3000};
  StatsReply back2 = roundtrip(table);
  ASSERT_TRUE(back2.table.has_value());
  EXPECT_EQ(back2.table->active_count, 12u);
  EXPECT_EQ(back2.table->lookup_count, 3456u);
  EXPECT_EQ(back2.table->matched_count, 3000u);
}

TEST(Wire, BarrierAndErrorRoundTrip) {
  roundtrip(BarrierRequest{});
  roundtrip(BarrierReply{});
  ErrorMsg err;
  err.type = "bad-request";
  err.detail = "no such table";
  ErrorMsg back = roundtrip(err);
  EXPECT_EQ(back.type, "bad-request");
  EXPECT_EQ(back.detail, "no such table");
}

TEST(Wire, DecodeRejectsGarbage) {
  EXPECT_FALSE(decode(std::vector<std::uint8_t>{}).ok());
  EXPECT_FALSE(decode(std::vector<std::uint8_t>{1, 2, 3}).ok());
  // Wrong version.
  std::vector<std::uint8_t> v4 = encode(Message{Hello{}});
  v4[0] = 0x04;
  EXPECT_FALSE(decode(v4).ok());
  // Declared length beyond the buffer.
  std::vector<std::uint8_t> trunc = encode(Message{EchoRequest{1}});
  trunc[3] = 60;
  EXPECT_FALSE(decode(trunc).ok());
  // Unknown message type.
  std::vector<std::uint8_t> unknown = encode(Message{Hello{}});
  unknown[1] = 99;
  EXPECT_FALSE(decode(unknown).ok());
}

TEST(Wire, CompletePrefixFraming) {
  auto a = encode(Message{Hello{}}, 1);
  auto b = encode(Message{EchoRequest{5}}, 2);
  std::vector<std::uint8_t> stream = a;
  stream.insert(stream.end(), b.begin(), b.end());
  EXPECT_EQ(complete_prefix(stream), a.size() + b.size());
  // Truncated second message: only the first is complete.
  stream.pop_back();
  EXPECT_EQ(complete_prefix(stream), a.size());
  // Tiny fragment: nothing complete yet.
  std::vector<std::uint8_t> frag{0x01, 0x00};
  EXPECT_EQ(complete_prefix(frag), 0u);
}

/// The acid test: the whole environment with the control channel
/// carrying real ofp10 bytes behaves identically.
TEST(Wire, SerializedControlChannelEndToEnd) {
  Environment env{EnvironmentOptions{.serialize_control_channel = true}};
  auto& net_ = env.network();
  net_.add_host("sap1");
  net_.add_host("sap2");
  net_.add_switch("s1");
  net_.add_switch("s2");
  net_.add_container("c1", 1.0, 8);
  netemu::LinkConfig cfg;
  cfg.bandwidth_bps = 1'000'000'000;
  cfg.delay = 100 * timeunit::kMicrosecond;
  ASSERT_TRUE(net_.add_link("sap1", 0, "s1", 1, cfg).ok());
  ASSERT_TRUE(net_.add_link("sap2", 0, "s2", 1, cfg).ok());
  ASSERT_TRUE(net_.add_link("s1", 2, "s2", 2, cfg).ok());
  ASSERT_TRUE(net_.add_link("c1", 0, "s1", 3, cfg).ok());
  ASSERT_TRUE(env.start().ok());

  sg::ServiceGraph g("wire-chain");
  g.add_sap("sap1").add_sap("sap2");
  g.add_vnf("mon", "monitor", {}, 0.1);
  g.add_link("sap1", "mon").add_link("mon", "sap2");
  auto chain = env.deploy(g);
  ASSERT_TRUE(chain.ok()) << chain.error().to_string();

  auto* src = env.host("sap1");
  auto* dst = env.host("sap2");
  src->start_udp_flow(dst->mac(), dst->ip(), 1, 80, 50, 1000);
  env.run_for(seconds(1));
  EXPECT_EQ(dst->rx_packets(), 50u);

  // Chain stats travel as real flow-stats frames too.
  auto stats = env.chain_stats(*chain);
  ASSERT_TRUE(stats.ok()) << stats.error().to_string();
  EXPECT_EQ(stats->packets, 50u);

  // And bytes actually moved through the codec.
  EXPECT_GT(env.controller().wire_bytes(), 500u);
}

}  // namespace
}  // namespace escape::openflow::wire
