# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("xml")
subdirs("json")
subdirs("net")
subdirs("click")
subdirs("openflow")
subdirs("pox")
subdirs("netemu")
subdirs("netconf")
subdirs("sg")
subdirs("service")
subdirs("orchestrator")
subdirs("escape")
