// ShardedScheduler: parallel discrete-event execution over a partition
// of the emulated network.
//
// The network is split into shards (netemu::Network::partition decides
// the mapping -- per switch-cluster by default, per region on request).
// Each shard owns one EventScheduler (its queue + virtual clock) and
// all the component state assigned to it; events scheduled by a
// component always land on that component's shard, so a shard's state
// is only ever touched by the thread currently executing the shard.
//
// Synchronization is conservative, window-based (YAWNS-style): links,
// OpenFlow control channels and NETCONF pipes are the only cross-shard
// edges, and each carries a known minimum latency registered via
// add_lookahead_edge(). With L = min over those latencies, every shard
// may safely execute all events with timestamp < min(next event time
// over all shards) + L in parallel: any event generated for another
// shard during the window carries timestamp >= sender_now + L >= the
// window bound, so it cannot land in the past. Cross-shard handoff goes
// through a mailbox: the sending shard appends to a per-(src,dst)
// outbox it exclusively owns (no locks on the hot path); at the window
// barrier the coordinator moves mail into the destination queues in a
// canonical order -- sorted by (timestamp, source shard, source post
// sequence) -- so insertion order (and therefore the FIFO tie-break)
// does not depend on thread interleaving.
//
// Determinism: for a fixed partition, a run with N worker threads
// executes, per shard, exactly the same events in exactly the same
// order as a run with 1 thread -- the window bounds are derived from
// virtual time only, and mailbox drains are canonically ordered. The
// regression tests compare per-shard order digests, final clocks and
// metrics snapshots across thread counts. Equal-timestamp events in
// *different* shards have no defined relative order; they may only
// touch shard-confined state (plus commutative atomics such as
// obs::Counter), which is what the partition guarantees.
//
// shards=1 is the sequential special case: the single shard is left
// unowned and every call delegates to it directly, so existing
// single-threaded code (all pre-sharding tests) behaves bit-identically.
//
// A registered lookahead of zero (e.g. a zero-delay control pipe
// crossing shards) disables parallel windows: the scheduler falls back
// to globally-ordered sequential stepping, which is always safe.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/event.hpp"

namespace escape {

class ShardedScheduler {
 public:
  using Callback = EventScheduler::Callback;

  /// `shards` fixes the partition width; `threads` caps the worker pool
  /// (0 = one thread per shard). threads is clamped to [1, shards];
  /// thread count never affects results, only wall-clock time.
  explicit ShardedScheduler(std::size_t shards = 1, std::size_t threads = 0);
  ~ShardedScheduler();
  ShardedScheduler(const ShardedScheduler&) = delete;
  ShardedScheduler& operator=(const ShardedScheduler&) = delete;

  /// Grows a 1-shard scheduler to `shards` shards with `threads`
  /// workers (Environment::start learns the partition width from the
  /// topology, after construction). Shard 0 and everything queued on it
  /// survive; the new shards start empty at time 0. Throws once a
  /// parallel run has begun. `shards` <= the current count only updates
  /// the worker cap.
  void resize(std::size_t shards, std::size_t threads = 0);

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t thread_count() const { return threads_; }
  EventScheduler& shard(std::size_t i) { return *shards_[i]; }
  const EventScheduler& shard(std::size_t i) const { return *shards_[i]; }

  /// Declares a cross-shard edge whose events always arrive at least
  /// `min_delay` after they are sent (a link's propagation delay, a
  /// control channel's one-way delay). The global window size is the
  /// minimum over all registered edges. A zero min_delay permanently
  /// switches execution to the sequential fallback.
  void add_lookahead_edge(std::size_t from, std::size_t to, SimDuration min_delay);

  /// Current conservative lookahead (kNoLookahead when no cross-shard
  /// edge was registered -- shards then run windows unbounded).
  static constexpr SimDuration kNoLookahead = ~SimDuration{0};
  SimDuration lookahead() const { return lookahead_; }

  /// True when parallel windows are enabled (no zero-lookahead edge).
  bool parallel_capable() const { return !sequential_only_; }

  // --- EventScheduler-compatible facade ------------------------------------

  /// Completed virtual time. Inside an executing event this is the
  /// executing shard's clock; outside a run it is the maximum over the
  /// shard clocks (== the sequential clock once the queues drained).
  SimTime now() const;

  /// Schedules onto the current shard when called from inside an
  /// executing event, else onto shard 0 (the control shard).
  EventHandle schedule(SimDuration delay, Callback cb);
  EventHandle schedule_at(SimTime when, Callback cb);

  /// Runs events until every queue and mailbox is empty. `max_events`
  /// bounds the events executed *per shard* (runaway-event guard).
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs events with timestamp <= deadline, then advances every shard
  /// clock to the deadline.
  std::size_t run_until(SimTime deadline, std::size_t max_events = SIZE_MAX);

  std::size_t run_for(SimDuration duration, std::size_t max_events = SIZE_MAX) {
    return run_until(now() + duration, max_events);
  }

  /// Executes the single globally-earliest pending event (ties broken
  /// by shard id). Always sequential; safe to interleave with run*().
  bool step();

  bool empty() const { return pending_events() == 0; }
  std::size_t pending_events() const;
  std::uint64_t executed_events() const;

  /// Combined order digest: per-shard digests folded in shard order.
  /// Identical across thread counts for a fixed partition.
  std::uint64_t order_digest() const;

  // --- cross-shard mailbox -------------------------------------------------

  /// Schedules `cb` on shard `dst` at absolute virtual time `when`.
  /// From inside an executing event this goes through the mailbox and
  /// `when` must respect the lookahead (when >= current window bound);
  /// violating it throws, because it means a cross-shard edge failed to
  /// register its latency. Outside a run it inserts directly.
  EventHandle post_at(std::size_t dst, SimTime when, Callback cb);

  /// Schedules `cb` on shard `dst` at the earliest provably-safe time:
  /// the current window bound when running, the caller's now otherwise.
  /// This is how administrative operations (link up/down, channel
  /// faults) reach state owned by another shard -- the command takes
  /// one lookahead to propagate, like a management-network hop.
  EventHandle post_admin(std::size_t dst, Callback cb);

  /// The shard queue executing on this thread (nullptr when no sharded
  /// run is in progress on it).
  static EventScheduler* current_shard();

 private:
  struct Mail {
    SimTime when = 0;
    std::uint32_t src = 0;
    std::uint64_t seq = 0;  // per-source post counter
    Callback cb;
    std::shared_ptr<detail::EventState> state;
  };

  EventHandle inject_now(std::size_t dst, SimTime when, Callback cb);
  void drain_mailboxes();
  /// One synchronization window: every shard runs events < bound.
  void execute_round(SimTime bound);
  void run_shard_slice(std::size_t worker);
  void worker_loop(std::size_t worker);
  std::size_t run_loop(SimTime deadline_inclusive, std::size_t max_events);
  std::size_t run_sequential(SimTime deadline_inclusive, std::size_t max_events);
  bool step_one();
  SimTime global_next();

  std::vector<std::unique_ptr<EventScheduler>> shards_;
  std::size_t threads_ = 1;

  SimDuration lookahead_ = kNoLookahead;
  bool sequential_only_ = false;

  // Mailbox: outbox_[src][dst] is written only by the worker executing
  // shard src during a round, and drained only by the coordinator at
  // the barrier.
  std::vector<std::vector<std::vector<Mail>>> outbox_;
  std::vector<std::uint64_t> post_seq_;
  std::vector<Mail> drain_scratch_;

  // Per-shard budget/executed slots for the current run call; slot i is
  // only touched by the worker running shard i during a round.
  std::vector<std::size_t> budget_;
  std::vector<std::size_t> round_ran_;

  // Round protocol (threads_ > 1 only): the coordinator publishes a
  // bound, every worker runs its shard slice, the last one releases the
  // coordinator. Workers are lazily spawned on the first parallel run.
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::thread> workers_;
  SimTime round_bound_ = 0;
  std::uint64_t rounds_started_ = 0;
  std::size_t workers_done_ = 0;
  bool stop_ = false;

  // Bound of the window currently executing (coordinator-written before
  // the round, read by workers via the round protocol's ordering).
  SimTime window_bound_ = 0;
  bool running_ = false;
};

/// Schedules `cb` to run `delay` after src.now() on dst's shard. When
/// src and dst are the same scheduler, different standalone schedulers,
/// or shards of different owners, this is dst.schedule_at(src.now() +
/// delay, cb) -- today's behaviour. When they are distinct shards of
/// one ShardedScheduler the event goes through the cross-shard mailbox.
/// Every caller crossing shards must have registered the edge's minimum
/// delay with add_lookahead_edge().
EventHandle cross_schedule(EventScheduler& src, EventScheduler& dst, SimDuration delay,
                           EventScheduler::Callback cb);

}  // namespace escape
