#include "netemu/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/logging.hpp"

namespace escape::netemu {

namespace {

// Plain union-find over cluster ids, used to merge clusters that a
// zero-delay link would otherwise connect with zero lookahead.
std::size_t uf_find(std::vector<std::size_t>& parent, std::size_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

void uf_union(std::vector<std::size_t>& parent, std::size_t a, std::size_t b) {
  a = uf_find(parent, a);
  b = uf_find(parent, b);
  if (a == b) return;
  // Smaller root wins so merged clusters keep deterministic ids.
  if (b < a) std::swap(a, b);
  parent[b] = a;
}

// Whether the calling context may mutate state on `target`'s shard
// synchronously (main thread, unsharded, or already executing there).
bool may_touch(EventScheduler& target) {
  EventScheduler* cur = ShardedScheduler::current_shard();
  return cur == nullptr || target.owner() == nullptr || cur == &target;
}

}  // namespace

Host& Network::add_host(const std::string& name, net::MacAddr mac, net::Ipv4Addr ip) {
  if (nodes_.count(name)) throw std::invalid_argument("duplicate node name: " + name);
  auto host = std::make_unique<Host>(name, *scheduler_, mac, ip);
  Host& ref = *host;
  nodes_[name] = std::move(host);
  return ref;
}

Host& Network::add_host(const std::string& name) {
  const std::uint64_t n = next_auto_addr_++;
  return add_host(name, net::MacAddr::from_u64(n),
                  net::Ipv4Addr(static_cast<std::uint32_t>((10u << 24) | n)));
}

SwitchNode& Network::add_switch(const std::string& name, openflow::DatapathId dpid) {
  if (nodes_.count(name)) throw std::invalid_argument("duplicate node name: " + name);
  if (dpid == 0) dpid = next_dpid_++;
  else next_dpid_ = std::max(next_dpid_, dpid + 1);
  auto sw = std::make_unique<SwitchNode>(name, *scheduler_, dpid);
  SwitchNode& ref = *sw;
  nodes_[name] = std::move(sw);
  return ref;
}

VnfContainer& Network::add_container(const std::string& name, double cpu_capacity,
                                     std::size_t max_vnfs) {
  if (nodes_.count(name)) throw std::invalid_argument("duplicate node name: " + name);
  auto c = std::make_unique<VnfContainer>(name, *scheduler_, cpu_capacity, max_vnfs);
  VnfContainer& ref = *c;
  nodes_[name] = std::move(c);
  return ref;
}

Status Network::add_link(const std::string& a, std::uint16_t port_a, const std::string& b,
                         std::uint16_t port_b, LinkConfig config) {
  Node* node_a = node(a);
  Node* node_b = node(b);
  if (!node_a) return make_error("netemu.unknown-node", "unknown node: " + a);
  if (!node_b) return make_error("netemu.unknown-node", "unknown node: " + b);

  auto link = std::make_unique<Link>(node_a, port_a, node_b, port_b, config, *scheduler_,
                                     links_.size() + 1);
  if (may_touch(node_a->scheduler()) && may_touch(node_b->scheduler())) {
    if (auto s = node_a->attach_link(port_a, link.get(), 0); !s.ok()) return s;
    if (auto s = node_b->attach_link(port_b, link.get(), 1); !s.ok()) {
      node_a->detach_link(port_a);
      return s;
    }
    if (auto* sw = dynamic_cast<SwitchNode*>(node_a)) sw->ensure_port(port_a);
    if (auto* sw = dynamic_cast<SwitchNode*>(node_b)) sw->ensure_port(port_b);
  } else {
    // A link wired mid-run from another shard (the deployment engine's
    // dynamic veths): each endpoint attaches on its own shard through
    // the admin mailbox. The caller picked fresh ports, so attach
    // failures are logged rather than returned -- the link is not
    // usable before the next synchronization window anyway (traffic
    // reaches it only after a management RPC round-trip).
    Link* raw = link.get();
    Node* ends[2] = {node_a, node_b};
    std::uint16_t ports[2] = {port_a, port_b};
    for (int e = 0; e < 2; ++e) {
      Node* n = ends[e];
      const std::uint16_t port = ports[e];
      auto attach = [n, port, raw, e] {
        if (auto s = n->attach_link(port, raw, e); !s.ok()) {
          Logger("netemu.network")
              .error("deferred attach failed: ", n->name(), ":", port, ": ",
                     s.error().to_string());
          return;
        }
        if (auto* sw = dynamic_cast<SwitchNode*>(n)) sw->ensure_port(port);
      };
      if (may_touch(n->scheduler())) {
        attach();
      } else {
        n->scheduler().owner()->post_admin(n->scheduler().shard_id(), std::move(attach));
      }
    }
  }
  links_.push_back(std::move(link));
  return ok_status();
}

Link* Network::find_link(const std::string& a, const std::string& b) {
  for (auto& link : links_) {
    const std::string& na = link->node(0)->name();
    const std::string& nb = link->node(1)->name();
    if ((na == a && nb == b) || (na == b && nb == a)) return link.get();
  }
  return nullptr;
}

Status Network::set_link_state(const std::string& a, const std::string& b, bool up) {
  Link* link = find_link(a, b);
  if (!link) {
    return make_error("netemu.unknown-link", "no link between " + a + " and " + b);
  }
  link->set_up(up);
  return ok_status();
}

Node* Network::node(const std::string& name) {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : it->second.get();
}

template <typename T>
T* Network::typed_node(const std::string& name) {
  return dynamic_cast<T*>(node(name));
}

Host* Network::host(const std::string& name) { return typed_node<Host>(name); }
SwitchNode* Network::switch_node(const std::string& name) {
  return typed_node<SwitchNode>(name);
}
VnfContainer* Network::container(const std::string& name) {
  return typed_node<VnfContainer>(name);
}

std::vector<std::string> Network::node_names() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [name, _] : nodes_) out.push_back(name);
  return out;
}

void Network::attach_controller(pox::Controller& controller) {
  for (auto& [_, node] : nodes_) {
    if (auto* sw = dynamic_cast<SwitchNode*>(node.get())) {
      controller.attach_switch(sw->datapath());
    }
  }
}

std::size_t Network::partition(ShardedScheduler& sched, ShardBy mode, std::size_t threads) {
  if (mode == ShardBy::kNone || nodes_.empty()) return sched.shard_count();

  // Index nodes in map (name) order so every derived id is
  // deterministic for a given topology.
  std::vector<Node*> nodes;
  nodes.reserve(nodes_.size());
  for (auto& [_, node] : nodes_) nodes.push_back(node.get());
  std::map<Node*, std::size_t> index;
  for (std::size_t i = 0; i < nodes.size(); ++i) index[nodes[i]] = i;

  constexpr std::size_t kUnassigned = SIZE_MAX;
  std::vector<std::size_t> cluster(nodes.size(), kUnassigned);

  if (mode == ShardBy::kRegion) {
    std::map<std::string, std::size_t> region_id;  // prefix -> cluster
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const std::string& name = nodes[i]->name();
      const std::string region = name.substr(0, name.find('_'));
      cluster[i] = region_id.emplace(region, region_id.size()).first->second;
    }
  } else {  // ShardBy::kSwitch
    // Seed one cluster per switch, then multi-source BFS over the links
    // so every host/container joins its nearest switch; equidistant
    // nodes join the smaller cluster id.
    std::vector<std::vector<std::size_t>> adj(nodes.size());
    for (auto& link : links_) {
      adj[index[link->node(0)]].push_back(index[link->node(1)]);
      adj[index[link->node(1)]].push_back(index[link->node(0)]);
    }
    std::vector<std::size_t> frontier;
    std::size_t next_cluster = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i]->kind() == NodeKind::kSwitch) {
        cluster[i] = next_cluster++;
        frontier.push_back(i);
      }
    }
    while (!frontier.empty()) {
      std::map<std::size_t, std::size_t> claim;  // node -> min cluster this level
      for (std::size_t u : frontier) {
        for (std::size_t v : adj[u]) {
          if (cluster[v] != kUnassigned) continue;
          auto [it, fresh] = claim.emplace(v, cluster[u]);
          if (!fresh) it->second = std::min(it->second, cluster[u]);
        }
      }
      frontier.clear();
      for (auto [v, c] : claim) {
        cluster[v] = c;
        frontier.push_back(v);
      }
    }
    // No switch at all, or islands with none reachable: shard 0.
    std::size_t fallback = next_cluster == 0 ? next_cluster++ : 0;
    for (auto& c : cluster) {
      if (c == kUnassigned) c = fallback;
    }
  }

  // A zero-delay link between clusters would register zero lookahead and
  // force sequential execution; merge such clusters instead.
  std::size_t num_clusters = *std::max_element(cluster.begin(), cluster.end()) + 1;
  std::vector<std::size_t> parent(num_clusters);
  for (std::size_t i = 0; i < num_clusters; ++i) parent[i] = i;
  for (auto& link : links_) {
    if (link->config().delay == 0) {
      uf_union(parent, cluster[index[link->node(0)]], cluster[index[link->node(1)]]);
    }
  }

  // Compact cluster roots to 0..K-1 (first-appearance order over nodes),
  // folding round-robin above the shard cap.
  constexpr std::size_t kMaxShards = 64;
  std::map<std::size_t, std::size_t> compact;
  std::vector<std::size_t> shard_of(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const std::size_t root = uf_find(parent, cluster[i]);
    auto [it, _] = compact.emplace(root, compact.size());
    shard_of[i] = it->second % kMaxShards;
  }
  const std::size_t shards = std::min(compact.size(), kMaxShards);
  if (shards <= 1) return sched.shard_count();

  sched.resize(shards, threads);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i]->rebind_scheduler(sched.shard(shard_of[i]));
  }
  for (auto& link : links_) link->bind_shards();
  return shards;
}

std::size_t Network::switch_count() const {
  std::size_t n = 0;
  for (const auto& [_, node] : nodes_) n += node->kind() == NodeKind::kSwitch;
  return n;
}
std::size_t Network::host_count() const {
  std::size_t n = 0;
  for (const auto& [_, node] : nodes_) n += node->kind() == NodeKind::kHost;
  return n;
}
std::size_t Network::container_count() const {
  std::size_t n = 0;
  for (const auto& [_, node] : nodes_) n += node->kind() == NodeKind::kVnfContainer;
  return n;
}

}  // namespace escape::netemu
