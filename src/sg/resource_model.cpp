#include "sg/resource_model.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace escape::sg {

ResourceGraph& ResourceGraph::add_node(ResourceNode node) {
  if (index_.count(node.name)) {
    throw std::invalid_argument("duplicate resource node: " + node.name);
  }
  index_[node.name] = nodes_.size();
  nodes_.push_back(std::move(node));
  return *this;
}

ResourceGraph& ResourceGraph::add_sap(const std::string& name) {
  return add_node(ResourceNode{name, ResourceKind::kSap, 0, 0, 0, 0});
}

ResourceGraph& ResourceGraph::add_switch(const std::string& name) {
  return add_node(ResourceNode{name, ResourceKind::kSwitch, 0, 0, 0, 0});
}

ResourceGraph& ResourceGraph::add_container(const std::string& name, double cpu_capacity,
                                            std::size_t vnf_slots) {
  return add_node(ResourceNode{name, ResourceKind::kContainer, cpu_capacity, 0, vnf_slots, 0});
}

ResourceGraph& ResourceGraph::add_link(const std::string& a, std::uint16_t port_a,
                                       const std::string& b, std::uint16_t port_b,
                                       std::uint64_t bandwidth_bps, SimDuration delay) {
  if (!index_.count(a)) throw std::invalid_argument("unknown resource node: " + a);
  if (!index_.count(b)) throw std::invalid_argument("unknown resource node: " + b);
  const int idx = static_cast<int>(links_.size());
  links_.push_back(ResourceLink{a, b, port_a, port_b, bandwidth_bps, 0, delay});
  adjacency_[a].emplace_back(idx, b);
  adjacency_[b].emplace_back(idx, a);
  return *this;
}

ResourceNode* ResourceGraph::node(const std::string& name) {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &nodes_[it->second];
}

const ResourceNode* ResourceGraph::node(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &nodes_[it->second];
}

std::vector<std::string> ResourceGraph::containers() const {
  std::vector<std::string> out;
  for (const auto& n : nodes_) {
    if (n.kind == ResourceKind::kContainer) out.push_back(n.name);
  }
  return out;
}

std::vector<std::pair<int, std::string>> ResourceGraph::neighbors(
    const std::string& name) const {
  auto it = adjacency_.find(name);
  return it == adjacency_.end() ? std::vector<std::pair<int, std::string>>{} : it->second;
}

std::optional<RoutedPath> ResourceGraph::shortest_path(const std::string& from,
                                                       const std::string& to,
                                                       std::uint64_t min_bw) const {
  if (!index_.count(from) || !index_.count(to)) return std::nullopt;
  constexpr SimDuration kInf = std::numeric_limits<SimDuration>::max();

  std::map<std::string, SimDuration> dist;
  std::map<std::string, std::pair<std::string, int>> prev;  // node -> (pred, link)
  for (const auto& n : nodes_) dist[n.name] = kInf;
  dist[from] = 0;

  using QEntry = std::pair<SimDuration, std::string>;
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> queue;
  queue.push({0, from});

  while (!queue.empty()) {
    auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    if (u == to) break;
    // Only switches forward transit traffic; SAPs and containers are
    // valid endpoints but never intermediate hops.
    if (u != from && node(u)->kind != ResourceKind::kSwitch) continue;
    for (const auto& [link_idx, v] : neighbors(u)) {
      const ResourceLink& l = links_[static_cast<std::size_t>(link_idx)];
      if (!l.available) continue;
      if (l.bandwidth_free() < min_bw) continue;
      const SimDuration nd = d + l.delay;
      if (nd < dist[v]) {
        dist[v] = nd;
        prev[v] = {u, link_idx};
        queue.push({nd, v});
      }
    }
  }
  if (dist[to] == kInf) return std::nullopt;

  RoutedPath path;
  path.total_delay = dist[to];
  std::string cur = to;
  while (cur != from) {
    auto [pred, link_idx] = prev[cur];
    path.nodes.push_back(cur);
    path.link_indices.push_back(link_idx);
    cur = pred;
  }
  path.nodes.push_back(from);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.link_indices.begin(), path.link_indices.end());
  return path;
}

void ResourceGraph::reserve_path(const RoutedPath& path, std::uint64_t bw) {
  for (int idx : path.link_indices) {
    links_[static_cast<std::size_t>(idx)].bandwidth_used += bw;
  }
}

void ResourceGraph::release_path(const RoutedPath& path, std::uint64_t bw) {
  for (int idx : path.link_indices) {
    auto& l = links_[static_cast<std::size_t>(idx)];
    l.bandwidth_used = l.bandwidth_used >= bw ? l.bandwidth_used - bw : 0;
  }
}

Status ResourceGraph::reserve_vnf(const std::string& container, double cpu) {
  ResourceNode* n = node(container);
  if (!n || n->kind != ResourceKind::kContainer) {
    return make_error("resource.not-a-container", container + " is not a container");
  }
  if (n->cpu_free() + 1e-9 < cpu) {
    return make_error("resource.cpu-exhausted", container + ": insufficient CPU");
  }
  if (n->slots_free() == 0) {
    return make_error("resource.slots-exhausted", container + ": no free VNF slots");
  }
  n->cpu_used += cpu;
  n->vnf_slots_used += 1;
  return ok_status();
}

void ResourceGraph::release_vnf(const std::string& container, double cpu) {
  ResourceNode* n = node(container);
  if (!n) return;
  n->cpu_used = std::max(0.0, n->cpu_used - cpu);
  if (n->vnf_slots_used > 0) n->vnf_slots_used -= 1;
}

void ResourceGraph::set_node_available(const std::string& name, bool available) {
  if (ResourceNode* n = node(name)) n->available = available;
}

void ResourceGraph::set_link_available(const std::string& a, const std::string& b,
                                       bool available) {
  for (auto& l : links_) {
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) l.available = available;
  }
}

std::uint16_t ResourceGraph::port_on(int link_index, const std::string& node_name) const {
  const ResourceLink& l = links_[static_cast<std::size_t>(link_index)];
  return l.a == node_name ? l.port_a : l.port_b;
}

const std::string& ResourceGraph::peer_of(int link_index, const std::string& node_name) const {
  const ResourceLink& l = links_[static_cast<std::size_t>(link_index)];
  return l.a == node_name ? l.b : l.a;
}

}  // namespace escape::sg
