#include "orchestrator/view.hpp"

namespace escape::orchestrator {

sg::ResourceGraph resource_view_from(netemu::Network& network) {
  sg::ResourceGraph view;
  for (const auto& name : network.node_names()) {
    netemu::Node* node = network.node(name);
    switch (node->kind()) {
      case netemu::NodeKind::kHost:
        view.add_sap(name);
        break;
      case netemu::NodeKind::kSwitch:
        view.add_switch(name);
        break;
      case netemu::NodeKind::kVnfContainer: {
        auto* c = static_cast<netemu::VnfContainer*>(node);
        view.add_container(name, c->cpu_capacity() - c->cpu_in_use(), c->max_vnfs());
        break;
      }
    }
  }
  for (const auto& link : network.links()) {
    view.add_link(link->node(0)->name(), link->port(0), link->node(1)->name(), link->port(1),
                  link->config().bandwidth_bps, link->config().delay);
  }
  return view;
}

}  // namespace escape::orchestrator
