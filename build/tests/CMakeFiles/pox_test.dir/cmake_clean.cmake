file(REMOVE_RECURSE
  "CMakeFiles/pox_test.dir/pox_test.cpp.o"
  "CMakeFiles/pox_test.dir/pox_test.cpp.o.d"
  "pox_test"
  "pox_test.pdb"
  "pox_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
