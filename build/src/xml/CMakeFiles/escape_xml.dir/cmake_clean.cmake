file(REMOVE_RECURSE
  "CMakeFiles/escape_xml.dir/xml.cpp.o"
  "CMakeFiles/escape_xml.dir/xml.cpp.o.d"
  "libescape_xml.a"
  "libescape_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escape_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
