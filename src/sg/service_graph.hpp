// The abstract service graph (SG): "an abstraction to describe high
// level services in a generic way and to assemble processing flows for
// given traffic". Nodes are SAPs (service access points, the traffic
// endpoints) and VNF instances picked from the catalog; links carry
// bandwidth/delay requirements; end-to-end requirements can be attached
// to SAP pairs (the "delay or bandwidth requirement on a sub-graph" of
// the MiniEdit GUI).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/result.hpp"
#include "util/time.hpp"

namespace escape::sg {

struct SapNode {
  std::string id;
};

struct VnfNode {
  std::string id;
  std::string vnf_type;                        // catalog type ("firewall")
  std::map<std::string, std::string> params;   // template parameters
  double cpu_demand = 0.1;                     // CPU share required
};

struct SgLink {
  std::string src;  // SAP or VNF id
  std::string dst;
  std::uint64_t bandwidth_bps = 0;  // 0 = no requirement
  SimDuration max_delay = 0;        // 0 = no requirement
};

/// End-to-end requirement over the chain between two SAPs.
struct E2eRequirement {
  std::string sap_a;
  std::string sap_b;
  std::uint64_t bandwidth_bps = 0;
  SimDuration max_delay = 0;
};

class ServiceGraph {
 public:
  explicit ServiceGraph(std::string name = "sg") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  ServiceGraph& add_sap(const std::string& id);
  ServiceGraph& add_vnf(VnfNode vnf);
  ServiceGraph& add_vnf(const std::string& id, const std::string& vnf_type,
                        std::map<std::string, std::string> params = {},
                        double cpu_demand = 0.1);
  ServiceGraph& add_link(SgLink link);
  ServiceGraph& add_link(const std::string& src, const std::string& dst,
                         std::uint64_t bandwidth_bps = 0, SimDuration max_delay = 0);
  ServiceGraph& add_requirement(E2eRequirement req);

  const std::vector<SapNode>& saps() const { return saps_; }
  const std::vector<VnfNode>& vnfs() const { return vnfs_; }
  const std::vector<SgLink>& links() const { return links_; }
  const std::vector<E2eRequirement>& requirements() const { return requirements_; }

  bool has_node(const std::string& id) const;
  const VnfNode* vnf(const std::string& id) const;
  bool is_sap(const std::string& id) const;

  /// Structural validation: node references resolve, ids unique, every
  /// VNF has in- and out-degree >= 1 (traffic can traverse it).
  Status validate() const;

  /// For a *linear chain* (sap -> vnf -> ... -> sap with no branching):
  /// returns the node ids in traversal order. Errors for non-chains.
  Result<std::vector<std::string>> chain_order() const;

  /// Successors of `id` along SG links.
  std::vector<std::string> successors(const std::string& id) const;

  std::string to_string() const;

 private:
  std::string name_;
  std::vector<SapNode> saps_;
  std::vector<VnfNode> vnfs_;
  std::vector<SgLink> links_;
  std::vector<E2eRequirement> requirements_;
};

}  // namespace escape::sg
