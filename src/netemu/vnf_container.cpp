#include "netemu/vnf_container.hpp"

#include <algorithm>
#include <sstream>

#include "click/flow.hpp"

namespace escape::netemu {

std::string_view vnf_status_name(VnfStatus status) {
  switch (status) {
    case VnfStatus::kInitialized: return "INITIALIZED";
    case VnfStatus::kRunning: return "RUNNING";
    case VnfStatus::kStopped: return "STOPPED";
  }
  return "?";
}

VnfContainer::VnfContainer(std::string name, EventScheduler& scheduler, double cpu_capacity,
                           std::size_t max_vnfs)
    : Node(std::move(name), scheduler), cpu_capacity_(cpu_capacity), max_vnfs_(max_vnfs) {}

double VnfContainer::cpu_in_use() const {
  double used = 0;
  for (const auto& [_, inst] : vnfs_) {
    if (inst.status == VnfStatus::kRunning) used += inst.cpu_share;
  }
  return used;
}

void VnfContainer::remove_state_listener(std::uint64_t id) {
  std::erase_if(listeners_, [id](const auto& entry) { return entry.first == id; });
}

void VnfContainer::crash() {
  if (!alive_) return;
  alive_ = false;
  log_.warn(name(), ": container crashed (", vnfs_.size(), " VNFs lost)");
  port_rx_.clear();
  vnfs_.clear();
}

void VnfContainer::restore() {
  if (alive_) return;
  alive_ = true;
  log_.info(name(), ": container restored (empty)");
}

VnfContainer::Instance* VnfContainer::find(const std::string& vnf_id) {
  auto it = vnfs_.find(vnf_id);
  return it == vnfs_.end() ? nullptr : &it->second;
}

const VnfContainer::Instance* VnfContainer::find(const std::string& vnf_id) const {
  auto it = vnfs_.find(vnf_id);
  return it == vnfs_.end() ? nullptr : &it->second;
}

Status VnfContainer::init_vnf(const std::string& vnf_id, const std::string& vnf_type,
                              const std::string& click_config, double cpu_share) {
  if (!alive_) return make_error("container.dead", name() + " is crashed");
  if (vnfs_.count(vnf_id)) {
    return make_error("container.vnf-exists", name() + ": VNF already defined: " + vnf_id);
  }
  if (vnfs_.size() >= max_vnfs_) {
    return make_error("container.full", name() + ": VNF slots exhausted");
  }
  if (cpu_share <= 0 || cpu_share > cpu_capacity_) {
    return make_error("container.bad-share",
                      name() + ": cpu share must be in (0, capacity]");
  }
  Instance inst;
  inst.id = vnf_id;
  inst.vnf_type = vnf_type;
  inst.click_config = click_config;
  inst.cpu_share = cpu_share;
  vnfs_.emplace(vnf_id, std::move(inst));
  log_.info(name(), ": initiated VNF ", vnf_id, " (", vnf_type, ")");
  notify(vnf_id, VnfStatus::kInitialized);
  return ok_status();
}

void VnfContainer::wire_devices(Instance& inst) {
  if (!inst.router) return;
  for (click::Element* e : inst.router->elements_in_order()) {
    if (auto* from = dynamic_cast<click::FromDevice*>(e)) {
      auto it = inst.device_to_port.find(from->devname());
      if (it != inst.device_to_port.end()) {
        port_rx_[it->second] = {&inst, from};
      }
    } else if (auto* to = dynamic_cast<click::ToDevice*>(e)) {
      auto it = inst.device_to_port.find(to->devname());
      if (it != inst.device_to_port.end()) {
        const std::uint16_t port = it->second;
        to->set_sink([this, port](net::Packet&& p) { send_out(port, std::move(p)); });
      } else {
        to->set_sink(nullptr);
      }
    }
  }
}

Status VnfContainer::start_vnf(const std::string& vnf_id) {
  if (!alive_) return make_error("container.dead", name() + " is crashed");
  Instance* inst = find(vnf_id);
  if (!inst) return make_error("container.unknown-vnf", name() + ": no such VNF: " + vnf_id);
  if (inst->status == VnfStatus::kRunning) {
    return make_error("container.already-running", vnf_id + " is already running");
  }
  if (cpu_in_use() + inst->cpu_share > cpu_capacity_ + 1e-9) {
    return make_error("container.cpu-exhausted",
                      name() + ": starting " + vnf_id + " would exceed CPU capacity");
  }
  auto router = click::build_router(inst->click_config, scheduler());
  if (!router.ok()) {
    return make_error(router.error().code,
                      vnf_id + ": click configuration rejected: " + router.error().message);
  }
  inst->router = std::move(*router);
  inst->router->set_cpu_share(inst->cpu_share);
  inst->status = VnfStatus::kRunning;
  wire_devices(*inst);
  // Clicky surface -> registry: every read handler of the running VNF
  // becomes a scrapeable gauge, labelled by container and VNF id. The
  // export dies with the router (stop_vnf resets it).
  inst->router->export_metrics(obs::MetricsRegistry::global(),
                               {{"container", name()}, {"vnf", vnf_id}});
  log_.info(name(), ": started VNF ", vnf_id);
  notify(vnf_id, VnfStatus::kRunning);
  return ok_status();
}

std::map<std::string, std::string> VnfContainer::snapshot_handlers(const Instance& inst) const {
  std::map<std::string, std::string> out;
  if (!inst.router) return out;
  for (const auto& spec : inst.router->list_read_handlers()) {
    auto value = inst.router->call_read(spec);
    if (value.ok()) out[spec] = *value;
  }
  return out;
}

Status VnfContainer::stop_vnf(const std::string& vnf_id) {
  Instance* inst = find(vnf_id);
  if (!inst) return make_error("container.unknown-vnf", name() + ": no such VNF: " + vnf_id);
  if (inst->status != VnfStatus::kRunning) {
    return make_error("container.not-running", vnf_id + " is not running");
  }
  inst->final_handlers = snapshot_handlers(*inst);
  // Unwire delivery paths that point into this router.
  for (auto it = port_rx_.begin(); it != port_rx_.end();) {
    if (it->second.first == inst) {
      it = port_rx_.erase(it);
    } else {
      ++it;
    }
  }
  inst->router.reset();
  inst->status = VnfStatus::kStopped;
  log_.info(name(), ": stopped VNF ", vnf_id);
  notify(vnf_id, VnfStatus::kStopped);
  return ok_status();
}

Status VnfContainer::remove_vnf(const std::string& vnf_id) {
  Instance* inst = find(vnf_id);
  if (!inst) return make_error("container.unknown-vnf", name() + ": no such VNF: " + vnf_id);
  if (inst->status == VnfStatus::kRunning) {
    return make_error("container.still-running", vnf_id + " must be stopped first");
  }
  vnfs_.erase(vnf_id);
  return ok_status();
}

Status VnfContainer::connect_vnf(const std::string& vnf_id, const std::string& devname,
                                 std::uint16_t port) {
  if (!alive_) return make_error("container.dead", name() + " is crashed");
  Instance* inst = find(vnf_id);
  if (!inst) return make_error("container.unknown-vnf", name() + ": no such VNF: " + vnf_id);
  // The port must not be claimed by a different VNF device already.
  for (const auto& [id, other] : vnfs_) {
    for (const auto& [dev, p] : other.device_to_port) {
      if (p == port && !(id == vnf_id && dev == devname)) {
        return make_error("container.port-in-use",
                          name() + ": port " + std::to_string(port) + " already connected");
      }
    }
  }
  inst->device_to_port[devname] = port;
  if (inst->status == VnfStatus::kRunning) wire_devices(*inst);
  log_.info(name(), ": connected ", vnf_id, "/", devname, " to port ", port);
  return ok_status();
}

Status VnfContainer::disconnect_vnf(const std::string& vnf_id, const std::string& devname) {
  Instance* inst = find(vnf_id);
  if (!inst) return make_error("container.unknown-vnf", name() + ": no such VNF: " + vnf_id);
  auto it = inst->device_to_port.find(devname);
  if (it == inst->device_to_port.end()) {
    return make_error("container.unknown-device", vnf_id + " has no device " + devname);
  }
  port_rx_.erase(it->second);
  inst->device_to_port.erase(it);
  if (inst->status == VnfStatus::kRunning) wire_devices(*inst);
  return ok_status();
}

void VnfContainer::deliver(std::uint16_t port, net::Packet&& packet) {
  if (!alive_) return;  // crashed containers eat frames
  auto it = port_rx_.find(port);
  if (it == port_rx_.end()) return;  // no running VNF on this port
  packet.set_in_port(port);
  it->second.second->inject(std::move(packet));
}

void VnfContainer::deliver_batch(std::uint16_t port, net::PacketBatch&& batch) {
  if (!alive_) return;  // crashed containers eat frames
  auto it = port_rx_.find(port);
  if (it == port_rx_.end()) return;  // no running VNF on this port
  for (auto& p : batch) p.set_in_port(port);
  it->second.second->inject_batch(std::move(batch));
}

Result<VnfInfo> VnfContainer::vnf_info(const std::string& vnf_id) const {
  const Instance* inst = find(vnf_id);
  if (!inst) return make_error("container.unknown-vnf", name() + ": no such VNF: " + vnf_id);
  VnfInfo info;
  info.id = inst->id;
  info.vnf_type = inst->vnf_type;
  info.status = inst->status;
  info.cpu_share = inst->cpu_share;
  info.handlers =
      inst->status == VnfStatus::kRunning ? snapshot_handlers(*inst) : inst->final_handlers;
  for (const auto& [dev, _] : inst->device_to_port) info.devices.push_back(dev);
  return info;
}

Result<std::string> VnfContainer::read_handler(const std::string& vnf_id,
                                               std::string_view spec) const {
  const Instance* inst = find(vnf_id);
  if (!inst) return make_error("container.unknown-vnf", name() + ": no such VNF: " + vnf_id);
  if (inst->status != VnfStatus::kRunning || !inst->router) {
    return make_error("container.not-running", vnf_id + " is not running");
  }
  return inst->router->call_read(spec);
}

Status VnfContainer::write_handler(const std::string& vnf_id, std::string_view spec,
                                   std::string_view value) {
  Instance* inst = find(vnf_id);
  if (!inst) return make_error("container.unknown-vnf", name() + ": no such VNF: " + vnf_id);
  if (inst->status != VnfStatus::kRunning || !inst->router) {
    return make_error("container.not-running", vnf_id + " is not running");
  }
  return inst->router->call_write(spec, value);
}

Result<std::string> VnfContainer::export_flow_state(const std::string& vnf_id) const {
  const Instance* inst = find(vnf_id);
  if (!inst) return make_error("container.unknown-vnf", name() + ": no such VNF: " + vnf_id);
  if (inst->status != VnfStatus::kRunning || !inst->router) {
    return make_error("container.not-running", vnf_id + " is not running");
  }
  // Sections in element declaration order; one per FlowManager so a VNF
  // with several managers round-trips each table to its counterpart.
  std::ostringstream os;
  for (click::Element* e : inst->router->elements_in_order()) {
    if (std::string_view(e->class_name()) != "FlowManager") continue;
    auto* fm = static_cast<click::FlowManager*>(e);
    os << "manager " << fm->name() << '\n' << fm->export_state() << "endmanager\n";
  }
  return os.str();
}

Status VnfContainer::import_flow_state(const std::string& vnf_id, const std::string& blob) {
  Instance* inst = find(vnf_id);
  if (!inst) return make_error("container.unknown-vnf", name() + ": no such VNF: " + vnf_id);
  if (inst->status != VnfStatus::kRunning || !inst->router) {
    return make_error("container.not-running", vnf_id + " is not running");
  }
  std::istringstream lines(blob);
  std::string line;
  click::FlowManager* fm = nullptr;
  std::string section;
  auto flush = [&]() -> Status {
    if (fm == nullptr) return ok_status();
    auto imported = fm->import_state(section);
    section.clear();
    fm = nullptr;
    return imported.ok() ? ok_status() : imported.error();
  };
  while (std::getline(lines, line)) {
    if (line.rfind("manager ", 0) == 0) {
      if (auto s = flush(); !s.ok()) return s;
      const std::string elem_name = line.substr(8);
      click::Element* e = inst->router->element(elem_name);
      if (e == nullptr || std::string_view(e->class_name()) != "FlowManager") {
        return make_error("container.flow-import",
                          vnf_id + " has no FlowManager named '" + elem_name + "'");
      }
      fm = static_cast<click::FlowManager*>(e);
    } else if (line == "endmanager") {
      if (auto s = flush(); !s.ok()) return s;
    } else if (!line.empty()) {
      if (fm == nullptr) {
        return make_error("container.flow-import", "flow state outside a manager section");
      }
      section += line;
      section += '\n';
    }
  }
  return flush();
}

std::vector<std::string> VnfContainer::vnf_ids() const {
  std::vector<std::string> out;
  out.reserve(vnfs_.size());
  for (const auto& [id, _] : vnfs_) out.push_back(id);
  return out;
}

}  // namespace escape::netemu
