#include "orchestrator/mapping.hpp"

#include <algorithm>
#include <limits>

#include "util/strings.hpp"

namespace escape::orchestrator {

std::string MappingResult::to_string() const {
  std::string out = algorithm + ": ";
  for (const auto& [vnf, container] : placements) {
    out += vnf + "@" + container + " ";
  }
  out += strings::format("(path delay %.3f ms)",
                         static_cast<double>(total_path_delay) / timeunit::kMillisecond);
  return out;
}

namespace {

/// Pre-flight data shared by all algorithms: chain order, per-segment
/// bandwidth requirements and the end-to-end delay budget.
struct ChainSpec {
  std::vector<std::string> order;                 // sap, vnf..., sap
  std::vector<std::uint64_t> segment_bw;          // order.size()-1 entries
  SimDuration delay_budget = 0;                   // 0 = unconstrained
};

Result<ChainSpec> analyze(const sg::ServiceGraph& graph, const sg::ResourceGraph& view) {
  auto order = graph.chain_order();
  if (!order.ok()) return order.error();

  ChainSpec spec;
  spec.order = std::move(*order);

  for (std::size_t i = 0; i + 1 < spec.order.size(); ++i) {
    std::uint64_t bw = 0;
    for (const auto& l : graph.links()) {
      if (l.src == spec.order[i] && l.dst == spec.order[i + 1]) bw = l.bandwidth_bps;
    }
    spec.segment_bw.push_back(bw);
  }

  const std::string& entry = spec.order.front();
  const std::string& exit = spec.order.back();
  for (const auto& r : graph.requirements()) {
    if ((r.sap_a == entry && r.sap_b == exit) || (r.sap_a == exit && r.sap_b == entry)) {
      spec.delay_budget = r.max_delay;
    }
  }

  // The SAPs must exist in the substrate under the same names.
  for (const std::string* sap : {&entry, &exit}) {
    const sg::ResourceNode* n = view.node(*sap);
    if (!n || n->kind != sg::ResourceKind::kSap) {
      return make_error("mapping.unknown-sap",
                        "SAP '" + *sap + "' not present in the resource view");
    }
  }
  return spec;
}

struct Candidate {
  std::string container;
  sg::RoutedPath path;       // prev substrate node -> container
  double cpu_utilization;    // after placement
};

/// Enumerates feasible containers for placing `vnf` reachable from
/// `prev` with `bw` free bandwidth.
std::vector<Candidate> feasible_containers(const sg::ResourceGraph& view,
                                           const std::string& prev, const sg::VnfNode& vnf,
                                           std::uint64_t bw) {
  std::vector<Candidate> out;
  for (const auto& name : view.containers()) {
    const sg::ResourceNode* node = view.node(name);
    if (!node->available) continue;  // crashed / quarantined container
    if (node->cpu_free() + 1e-9 < vnf.cpu_demand || node->slots_free() == 0) continue;
    auto path = view.shortest_path(prev, name, bw);
    if (!path) continue;
    Candidate c;
    c.container = name;
    c.path = std::move(*path);
    c.cpu_utilization =
        node->cpu_capacity > 0 ? (node->cpu_used + vnf.cpu_demand) / node->cpu_capacity : 1.0;
    out.push_back(std::move(c));
  }
  return out;
}

/// Shared greedy-family driver: `choose` picks among feasible candidates.
Result<MappingResult> map_greedy(const sg::ServiceGraph& graph, sg::ResourceGraph& view,
                                 std::string_view algo_name,
                                 const std::function<std::size_t(const std::vector<Candidate>&)>&
                                     choose) {
  auto spec = analyze(graph, view);
  if (!spec.ok()) return spec.error();

  sg::ResourceGraph work = view;  // rollback = discard the copy
  MappingResult result;
  result.algorithm = std::string(algo_name);

  // `prev_sg` names the SG node the running segment starts at; `prev_sub`
  // is where that node lives in the substrate (equal for SAPs).
  std::string prev_sg = spec->order.front();
  std::string prev_sub = spec->order.front();
  for (std::size_t i = 1; i < spec->order.size(); ++i) {
    const std::string& node_id = spec->order[i];
    const std::uint64_t bw = spec->segment_bw[i - 1];

    if (graph.is_sap(node_id)) {
      // Final segment to the exit SAP.
      auto path = work.shortest_path(prev_sub, node_id, bw);
      if (!path) {
        return make_error("mapping.no-route",
                          "no feasible route " + prev_sub + " -> " + node_id);
      }
      work.reserve_path(*path, bw);
      result.total_path_delay += path->total_delay;
      result.link_mappings.push_back(LinkMapping{prev_sg, node_id, std::move(*path), bw});
      prev_sg = prev_sub = node_id;
      continue;
    }

    const sg::VnfNode* vnf = graph.vnf(node_id);
    auto candidates = feasible_containers(work, prev_sub, *vnf, bw);
    if (candidates.empty()) {
      return make_error("mapping.no-capacity",
                        "no feasible container for VNF '" + node_id + "'");
    }
    const Candidate& chosen = candidates[choose(candidates)];
    if (auto s = work.reserve_vnf(chosen.container, vnf->cpu_demand); !s.ok()) {
      return s.error();
    }
    work.reserve_path(chosen.path, bw);
    result.total_path_delay += chosen.path.total_delay;
    result.placements[node_id] = chosen.container;
    result.link_mappings.push_back(LinkMapping{prev_sg, node_id, chosen.path, bw});
    prev_sg = node_id;
    prev_sub = chosen.container;
  }

  if (spec->delay_budget > 0 && result.total_path_delay > spec->delay_budget) {
    return make_error("mapping.delay-violated",
                      strings::format("mapped path delay %.3f ms exceeds budget %.3f ms",
                                      static_cast<double>(result.total_path_delay) /
                                          timeunit::kMillisecond,
                                      static_cast<double>(spec->delay_budget) /
                                          timeunit::kMillisecond));
  }
  view = std::move(work);  // commit
  return result;
}

}  // namespace

Result<MappingResult> GreedyFirstFit::map(const sg::ServiceGraph& graph,
                                          sg::ResourceGraph& view) {
  // Candidates are generated in container-name order; first fit = index 0.
  return map_greedy(graph, view, name(), [](const std::vector<Candidate>&) { return 0u; });
}

Result<MappingResult> LoadBalanceBestFit::map(const sg::ServiceGraph& graph,
                                              sg::ResourceGraph& view) {
  return map_greedy(graph, view, name(), [](const std::vector<Candidate>& c) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < c.size(); ++i) {
      if (c[i].cpu_utilization < c[best].cpu_utilization ||
          (c[i].cpu_utilization == c[best].cpu_utilization &&
           c[i].path.total_delay < c[best].path.total_delay)) {
        best = i;
      }
    }
    return best;
  });
}

Result<MappingResult> DelayGreedy::map(const sg::ServiceGraph& graph,
                                       sg::ResourceGraph& view) {
  return map_greedy(graph, view, name(), [](const std::vector<Candidate>& c) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < c.size(); ++i) {
      if (c[i].path.total_delay < c[best].path.total_delay) best = i;
    }
    return best;
  });
}

Result<MappingResult> Backtracking::map(const sg::ServiceGraph& graph,
                                        sg::ResourceGraph& view) {
  auto spec = analyze(graph, view);
  if (!spec.ok()) return spec.error();

  // Collect the VNFs in chain order.
  std::vector<const sg::VnfNode*> vnfs;
  for (std::size_t i = 1; i + 1 < spec->order.size(); ++i) {
    if (const auto* v = graph.vnf(spec->order[i])) vnfs.push_back(v);
  }

  struct Best {
    bool found = false;
    SimDuration delay = std::numeric_limits<SimDuration>::max();
    MappingResult result;
    sg::ResourceGraph view;
  } best;

  std::size_t explored = 0;
  sg::ResourceGraph work = view;
  MappingResult current;
  current.algorithm = std::string(name());

  // Depth-first over container assignments, committing reservations on
  // the way down and undoing them on the way back up.
  std::function<void(std::size_t, const std::string&, SimDuration)> dfs =
      [&](std::size_t depth, const std::string& prev, SimDuration delay_so_far) {
        if (explored >= node_limit_) return;
        if (best.found && delay_so_far >= best.delay) return;  // prune
        if (spec->delay_budget > 0 && delay_so_far > spec->delay_budget) return;

        const std::string prev_sg =
            depth == 0 ? spec->order.front() : vnfs[depth - 1]->id;

        if (depth == vnfs.size()) {
          // Route the final segment to the exit SAP.
          const std::uint64_t bw = spec->segment_bw.back();
          auto path = work.shortest_path(prev, spec->order.back(), bw);
          if (!path) return;
          const SimDuration total = delay_so_far + path->total_delay;
          if (best.found && total >= best.delay) return;
          if (spec->delay_budget > 0 && total > spec->delay_budget) return;
          ++explored;
          best.found = true;
          best.delay = total;
          best.result = current;
          best.result.total_path_delay = total;
          best.result.link_mappings.push_back(
              LinkMapping{prev_sg, spec->order.back(), *path, bw});
          best.view = work;
          best.view.reserve_path(*path, bw);
          return;
        }

        const sg::VnfNode* vnf = vnfs[depth];
        const std::uint64_t bw = spec->segment_bw[depth];
        for (auto& cand : feasible_containers(work, prev, *vnf, bw)) {
          ++explored;
          if (!work.reserve_vnf(cand.container, vnf->cpu_demand).ok()) continue;
          work.reserve_path(cand.path, bw);
          current.placements[vnf->id] = cand.container;
          current.link_mappings.push_back(LinkMapping{prev_sg, vnf->id, cand.path, bw});

          dfs(depth + 1, cand.container, delay_so_far + cand.path.total_delay);

          current.link_mappings.pop_back();
          current.placements.erase(vnf->id);
          work.release_path(cand.path, bw);
          work.release_vnf(cand.container, vnf->cpu_demand);
        }
      };

  dfs(0, spec->order.front(), 0);

  if (!best.found) {
    return make_error("mapping.no-solution",
                      "backtracking found no feasible mapping (explored " +
                          std::to_string(explored) + " states)");
  }
  view = std::move(best.view);
  return best.result;
}

// --- MappingRegistry -------------------------------------------------------------

MappingRegistry& MappingRegistry::global() {
  static MappingRegistry* instance = [] {
    auto* r = new MappingRegistry();
    r->register_algorithm("greedy", [] { return std::make_unique<GreedyFirstFit>(); });
    r->register_algorithm("loadbalance",
                          [] { return std::make_unique<LoadBalanceBestFit>(); });
    r->register_algorithm("delaygreedy", [] { return std::make_unique<DelayGreedy>(); });
    r->register_algorithm("backtracking", [] { return std::make_unique<Backtracking>(); });
    return r;
  }();
  return *instance;
}

void MappingRegistry::register_algorithm(const std::string& name, Factory factory) {
  factories_[name] = std::move(factory);
}

std::unique_ptr<MappingAlgorithm> MappingRegistry::create(const std::string& name) const {
  auto it = factories_.find(name);
  return it == factories_.end() ? nullptr : it->second();
}

std::vector<std::string> MappingRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [k, _] : factories_) out.push_back(k);
  return out;
}

}  // namespace escape::orchestrator
