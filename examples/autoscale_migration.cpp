// Elastic auto-scaling: a stateful NAT chain rides a load spike.
//
//   sap1 --- s1 ====== s2 --- sap2
//            |          |
//           c1         c2          (VNF containers)
//
// A flow_nat chain is deployed onto c1 and the AutoScaler watches its
// FlowManager lookup rate (the same policy document as
// examples/data/autoscale_policy.json, inline so the example runs from
// any directory). A traffic burst pushes the per-instance rate over the
// scale-out threshold: the orchestrator brings up a second NAT replica
// behind a flow-sticky splitter, installs the new generation's steering
// make-before-break, hands the per-flow NAT mappings over, and only then
// retires the old instance -- no packet is lost and established flows
// keep their translations. When the burst ends the idle threshold walks
// the chain back down to one instance.
#include <cstdio>

#include "escape/environment.hpp"
#include "obs/metrics.hpp"

using namespace escape;

int main() {
  Logging::set_level(LogLevel::kInfo);
  Environment env;

  auto& net = env.network();
  net.add_host("sap1");
  net.add_host("sap2");
  net.add_switch("s1");
  net.add_switch("s2");
  net.add_container("c1", 2.0, 8);
  net.add_container("c2", 2.0, 8);
  netemu::LinkConfig link;
  link.bandwidth_bps = 1'000'000'000;
  link.delay = 50 * timeunit::kMicrosecond;
  net.add_link("sap1", 0, "s1", 1, link);
  net.add_link("sap2", 0, "s2", 1, link);
  net.add_link("s1", 2, "s2", 2, link);
  net.add_link("c1", 0, "s1", 3, link);
  net.add_link("c2", 0, "s2", 3, link);

  if (auto s = env.start(); !s.ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.error().to_string().c_str());
    return 1;
  }

  sg::ServiceGraph graph("elastic-nat");
  graph.add_sap("sap1").add_sap("sap2");
  graph.add_vnf("nat", "flow_nat",
                {{"capacity", "1024"}, {"timeout_ms", "30000"}, {"port_count", "64"}},
                0.15);
  graph.add_link("sap1", "nat").add_link("nat", "sap2");
  auto* sap1 = env.host("sap1");
  auto* sap2 = env.host("sap2");
  openflow::Match match;
  match.dl_type(net::ethertype::kIpv4).nw_dst(sap2->ip());
  auto chain = env.deploy(graph, match);
  if (!chain.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", chain.error().to_string().c_str());
    return 1;
  }
  std::printf("chain %u deployed: %s\n", *chain,
              env.deployment(*chain)->record.mapping.to_string().c_str());

  auto policy = orchestrator::autoscale_options_from_json(R"({
        "tick_ms": 20, "drain_ms": 2,
        "policies": [{
          "vnf": "nat", "handler": "fm.lookups", "mode": "rate",
          "scale_out_above": 800, "scale_in_below": 100,
          "sustain_ticks": 2, "cooldown_ms": 100,
          "min_instances": 1, "max_instances": 3
        }]
      })");
  if (!policy.ok()) {
    std::fprintf(stderr, "policy: %s\n", policy.error().to_string().c_str());
    return 1;
  }
  if (auto s = env.enable_autoscaling(std::move(*policy)); !s.ok()) {
    std::fprintf(stderr, "autoscale: %s\n", s.error().to_string().c_str());
    return 1;
  }

  // The spike: 2000 pps of lookups against a 800/s threshold. The
  // sustained overload trips the policy ~2 ticks in; the migration runs
  // under live traffic.
  std::printf("\n-- load spike: 1200 packets at 2000 pps --\n");
  sap1->start_udp_flow(sap2->mac(), sap2->ip(), 5000, 7777, /*count=*/1200, /*pps=*/2000);
  env.run_for(600 * timeunit::kMillisecond);
  const ChainDeployment* dep = env.deployment(*chain);
  std::printf("during spike: %zu instance(s), generation %u, %llu/1200 delivered\n",
              dep->scale_instances, dep->scale_generation,
              static_cast<unsigned long long>(sap2->rx_packets()));

  // Silence: the idle threshold walks the chain back to min_instances,
  // merging the replicas' flow state into the survivor.
  std::printf("\n-- silence: waiting for scale-in --\n");
  env.run_for(seconds(1));
  dep = env.deployment(*chain);
  std::printf("after silence: %zu instance(s), generation %u\n", dep->scale_instances,
              dep->scale_generation);

  std::printf("\ndelivered %llu/1200 packets across the whole episode (0 lost)\n",
              static_cast<unsigned long long>(sap2->rx_packets()));
  std::printf("scale decisions: %llu out, %llu in\n",
              static_cast<unsigned long long>(env.autoscaler()->scale_out_decisions()),
              static_cast<unsigned long long>(env.autoscaler()->scale_in_decisions()));
  const auto& latency =
      obs::MetricsRegistry::global().histogram("escape_scale_latency_ms");
  if (latency.count()) {
    std::printf("migrations: %zu, latency p50 %.1f ms (virtual)\n", latency.count(),
                latency.p50());
  }
  return sap2->rx_packets() == 1200 ? 0 : 1;
}
