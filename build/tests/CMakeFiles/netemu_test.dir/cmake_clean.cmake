file(REMOVE_RECURSE
  "CMakeFiles/netemu_test.dir/netemu_test.cpp.o"
  "CMakeFiles/netemu_test.dir/netemu_test.cpp.o.d"
  "netemu_test"
  "netemu_test.pdb"
  "netemu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netemu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
