// Virtual time representation used across the whole framework.
//
// ESCAPE-cpp is driven by a single discrete-event scheduler (see
// event.hpp); every component -- emulated links, Click timers, OpenFlow
// flow-entry timeouts, traffic generators -- observes the same virtual
// clock. Virtual time is an unsigned nanosecond count since the start of
// the simulation, which keeps arithmetic exact and runs deterministic.
#pragma once

#include <cstdint>

namespace escape {

/// Virtual simulation time in nanoseconds since simulation start.
using SimTime = std::uint64_t;

/// A duration in virtual nanoseconds.
using SimDuration = std::uint64_t;

namespace timeunit {
inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;
}  // namespace timeunit

/// Convenience literals-style helpers (plain functions; no UDLs to keep
/// call sites explicit).
constexpr SimDuration nanoseconds(std::uint64_t n) { return n; }
constexpr SimDuration microseconds(std::uint64_t n) { return n * timeunit::kMicrosecond; }
constexpr SimDuration milliseconds(std::uint64_t n) { return n * timeunit::kMillisecond; }
constexpr SimDuration seconds(std::uint64_t n) { return n * timeunit::kSecond; }

/// Converts virtual nanoseconds to (double) seconds, for reporting.
constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(timeunit::kSecond);
}

}  // namespace escape
