// IPv4 processing elements.
#include "click/elements.hpp"
#include "click/router.hpp"
#include "net/headers.hpp"
#include "util/strings.hpp"

namespace escape::click {

// --- CheckIPHeader ------------------------------------------------------------

CheckIPHeader::CheckIPHeader() {
  declare_ports({PortMode::kPush}, {PortMode::kPush, PortMode::kPush});
  add_read_handler("drops", [this] { return std::to_string(drops_); });
}

void CheckIPHeader::push(int, Packet&& p) {
  auto eth = net::EthernetView::parse(p.bytes());
  bool ok = false;
  if (eth && eth->ethertype == net::ethertype::kIpv4) {
    if (auto ip = net::Ipv4View::parse(eth->payload)) {
      ok = net::Ipv4View::verify_checksum(eth->payload) &&
           ip->total_length >= ip->header_len() && ip->total_length <= eth->payload.size();
    }
  }
  if (ok) {
    output_push(0, std::move(p));
  } else {
    ++drops_;
    if (output_connected(1)) output_push(1, std::move(p));
  }
}

// --- DecIPTTL ------------------------------------------------------------------

DecIPTTL::DecIPTTL() {
  declare_ports({PortMode::kPush}, {PortMode::kPush, PortMode::kPush});
  add_read_handler("expired", [this] { return std::to_string(expired_); });
}

void DecIPTTL::push(int, Packet&& p) {
  if (net::dec_ipv4_ttl(p)) {
    output_push(0, std::move(p));
  } else {
    ++expired_;
    if (output_connected(1)) output_push(1, std::move(p));
  }
}

// --- SetIPDSCP -------------------------------------------------------------------

Status SetIPDSCP::configure(const ConfigArgs& args) {
  if (auto v = args.keyword_or_positional("DSCP", 0)) {
    auto d = strings::parse_u64(*v);
    if (!d || *d > 63) return make_error("click.config.bad-arg", "DSCP must be 0..63");
    dscp_ = static_cast<std::uint8_t>(*d);
  }
  return ok_status();
}

SetIPDSCP::Verdict SetIPDSCP::process(Packet& p) {
  net::set_ipv4_dscp(p, dscp_);
  return {true, 0};
}

// --- IPRewriter ------------------------------------------------------------------

Status IPRewriter::configure(const ConfigArgs& args) {
  if (auto v = args.keyword("SRC_IP")) {
    auto a = net::Ipv4Addr::parse(*v);
    if (!a) return make_error("click.config.bad-arg", "invalid SRC_IP: " + *v);
    src_ip_ = *a;
  }
  if (auto v = args.keyword("DST_IP")) {
    auto a = net::Ipv4Addr::parse(*v);
    if (!a) return make_error("click.config.bad-arg", "invalid DST_IP: " + *v);
    dst_ip_ = *a;
  }
  if (auto v = args.keyword_u64("SRC_PORT")) src_port_ = static_cast<std::uint16_t>(*v);
  if (auto v = args.keyword_u64("DST_PORT")) dst_port_ = static_cast<std::uint16_t>(*v);
  if (auto v = args.keyword("SRC_ETH")) {
    auto m = net::MacAddr::parse(*v);
    if (!m) return make_error("click.config.bad-arg", "invalid SRC_ETH: " + *v);
    src_eth_ = *m;
  }
  if (auto v = args.keyword("DST_ETH")) {
    auto m = net::MacAddr::parse(*v);
    if (!m) return make_error("click.config.bad-arg", "invalid DST_ETH: " + *v);
    dst_eth_ = *m;
  }
  return ok_status();
}

IPRewriter::Verdict IPRewriter::process(Packet& p) {
  if (src_ip_) net::set_ipv4_src(p, *src_ip_);
  if (dst_ip_) net::set_ipv4_dst(p, *dst_ip_);
  if (src_port_) net::set_l4_src_port(p, *src_port_);
  if (dst_port_) net::set_l4_dst_port(p, *dst_port_);
  if (src_eth_) net::set_eth_src(p, *src_eth_);
  if (dst_eth_) net::set_eth_dst(p, *dst_eth_);
  return {true, 0};
}

}  // namespace escape::click
