file(REMOVE_RECURSE
  "CMakeFiles/escape_util.dir/event.cpp.o"
  "CMakeFiles/escape_util.dir/event.cpp.o.d"
  "CMakeFiles/escape_util.dir/logging.cpp.o"
  "CMakeFiles/escape_util.dir/logging.cpp.o.d"
  "CMakeFiles/escape_util.dir/random.cpp.o"
  "CMakeFiles/escape_util.dir/random.cpp.o.d"
  "CMakeFiles/escape_util.dir/stats.cpp.o"
  "CMakeFiles/escape_util.dir/stats.cpp.o.d"
  "CMakeFiles/escape_util.dir/strings.cpp.o"
  "CMakeFiles/escape_util.dir/strings.cpp.o.d"
  "CMakeFiles/escape_util.dir/token_bucket.cpp.o"
  "CMakeFiles/escape_util.dir/token_bucket.cpp.o.d"
  "libescape_util.a"
  "libescape_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escape_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
