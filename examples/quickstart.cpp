// Quickstart: the five demo steps of the paper on a minimal topology.
//
//   sap1 --- s1 ====== s2 --- sap2
//            |          |
//           c1         c2          (VNF containers)
//
// A 2-VNF chain (monitor -> firewall) is mapped, deployed over NETCONF,
// traffic is steered through it by the POX-style controller, and the
// VNFs are monitored through their management agents.
#include <cstdio>

#include "escape/environment.hpp"

using namespace escape;

int main() {
  Logging::set_level(LogLevel::kInfo);
  Environment env;

  // --- step 1: define VNF containers and the rest of the topology -------
  auto& net = env.network();
  net.add_host("sap1");
  net.add_host("sap2");
  net.add_switch("s1");
  net.add_switch("s2");
  net.add_container("c1", /*cpu=*/1.0, /*max_vnfs=*/8);
  net.add_container("c2", 1.0, 8);

  netemu::LinkConfig access;  // 100 Mbit/s access links
  access.bandwidth_bps = 100'000'000;
  access.delay = 100 * timeunit::kMicrosecond;
  netemu::LinkConfig core;  // 1 Gbit/s core
  core.bandwidth_bps = 1'000'000'000;
  core.delay = 500 * timeunit::kMicrosecond;

  net.add_link("sap1", 0, "s1", 1, access);
  net.add_link("sap2", 0, "s2", 1, access);
  net.add_link("s1", 2, "s2", 2, core);
  net.add_link("c1", 0, "s1", 3, core);
  net.add_link("c2", 0, "s2", 3, core);

  if (auto s = env.start(); !s.ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.error().to_string().c_str());
    return 1;
  }

  // --- step 2: create an abstract service graph from the catalog --------
  sg::ServiceGraph graph("quickstart-chain");
  graph.add_sap("sap1")
      .add_sap("sap2")
      .add_vnf("mon1", "monitor", {}, 0.1)
      .add_vnf("fw1", "firewall",
               {{"rules", "deny udp && dst port 9999; allow ip"}, {"default", "allow"}}, 0.2)
      .add_link("sap1", "mon1", /*bw=*/10'000'000)
      .add_link("mon1", "fw1", 10'000'000)
      .add_link("fw1", "sap2", 10'000'000)
      .add_requirement({"sap1", "sap2", 10'000'000, 50 * timeunit::kMillisecond});

  // --- step 3: initiate the SG mapping and the deployment ---------------
  auto chain = env.deploy(graph);
  if (!chain.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", chain.error().to_string().c_str());
    return 1;
  }
  const ChainDeployment* dep = env.deployment(*chain);
  std::printf("chain %u deployed: %s\n", *chain, dep->record.mapping.to_string().c_str());
  std::printf("setup latency: %.3f ms (virtual)\n",
              static_cast<double>(dep->record.setup_latency()) / timeunit::kMillisecond);

  // --- step 4: send and inspect live traffic ----------------------------
  netemu::Host* src = env.host("sap1");
  netemu::Host* dst = env.host("sap2");
  src->start_udp_flow(dst->mac(), dst->ip(), 5000, 7777, /*count=*/500, /*rate_pps=*/1000);
  env.run_for(seconds(2));

  std::printf("sap2 received %llu/%llu packets, latency p50=%.1f us p95=%.1f us\n",
              static_cast<unsigned long long>(dst->rx_packets()),
              static_cast<unsigned long long>(src->tx_packets()),
              dst->latency_us().p50(), dst->latency_us().p95());

  // Traffic to the denied port is dropped by the firewall VNF.
  src->start_udp_flow(dst->mac(), dst->ip(), 5000, 9999, 100, 1000);
  env.run_for(seconds(1));
  std::printf("after denied-port flow: sap2 still at %llu packets\n",
              static_cast<unsigned long long>(dst->rx_packets()));

  // --- step 5: monitor the VNFs (Clicky over NETCONF) -------------------
  for (const auto& vnf : dep->record.vnfs) {
    auto info = env.monitor_vnf(vnf.container, vnf.instance_id);
    if (!info.ok()) {
      std::fprintf(stderr, "monitor failed: %s\n", info.error().to_string().c_str());
      return 1;
    }
    std::printf("%s @ %s [%s]:\n", info->id.c_str(), vnf.container.c_str(),
                std::string(netemu::vnf_status_name(info->status)).c_str());
    for (const auto& [handler, value] : info->handlers) {
      std::printf("  %-28s %s\n", handler.c_str(), value.c_str());
    }
  }
  return 0;
}
