#include "netconf/transport.hpp"

#include <vector>

#include "util/sharded_event.hpp"

namespace escape::netconf {

namespace {

obs::Counter& fault_counter(const char* kind) {
  return obs::MetricsRegistry::global().counter("escape_netconf_transport_faults_total",
                                                {{"kind", kind}});
}

}  // namespace

void TransportEndpoint::set_faults(const TransportFaults& faults) {
  faults_ = faults;
  faults_active_ = true;
  fault_rng_ = Rng(faults.seed);
}

void TransportEndpoint::send(std::string bytes) {
  if (closed_) return;
  bytes_sent_ += bytes.size();
  auto peer = peer_.lock();
  if (!peer) return;

  SimDuration delay = delay_;
  if (faults_active_) {
    if (faults_.drop_prob > 0.0 && fault_rng_.next_bool(faults_.drop_prob)) {
      ++frames_dropped_;
      fault_counter("drop").add();
      return;
    }
    if (faults_.corrupt_prob > 0.0 && fault_rng_.next_bool(faults_.corrupt_prob) &&
        bytes.size() > FrameReader::kDelimiter.size() + 2) {
      // Mangle the message's opening byte: framing survives, but the XML
      // no longer parses (a mid-payload flip could land in an attribute
      // value and slip through).
      bytes[0] = '\x01';
      ++frames_corrupted_;
      fault_counter("corrupt").add();
    }
    if (faults_.extra_delay_max > 0) {
      delay += static_cast<SimDuration>(
          fault_rng_.next_below(static_cast<std::uint64_t>(faults_.extra_delay_max) + 1));
      fault_counter("delay").add();
    }
  }

  // Same scheduler object on both ends -> identical to the classic
  // single-queue behaviour; distinct shards -> mailbox crossing.
  cross_schedule(*scheduler_, *peer->scheduler_, delay,
                 [peer, data = std::move(bytes)]() mutable { peer->deliver(std::move(data)); });
}

void TransportEndpoint::close() {
  if (closed_) return;
  closed_ = true;
  on_bytes_ = nullptr;
  if (on_close_) {
    OnClose cb = std::move(on_close_);
    on_close_ = nullptr;
    cb();
  }
  // The peer learns about the close one propagation delay later, like a
  // TCP RST travelling the control network. The capture keeps the peer
  // endpoint alive until the event fires.
  auto peer = peer_.lock();
  if (peer && !peer->closed_ && scheduler_) {
    cross_schedule(*scheduler_, *peer->scheduler_, delay_, [peer] { peer->close(); });
  }
}

void TransportEndpoint::deliver(std::string bytes) {
  if (closed_) return;
  bytes_received_ += bytes.size();
  if (on_bytes_) on_bytes_(std::move(bytes));
}

std::pair<std::shared_ptr<TransportEndpoint>, std::shared_ptr<TransportEndpoint>> make_pipe(
    EventScheduler& scheduler, SimDuration delay) {
  return make_pipe(scheduler, scheduler, delay);
}

std::pair<std::shared_ptr<TransportEndpoint>, std::shared_ptr<TransportEndpoint>> make_pipe(
    EventScheduler& a_scheduler, EventScheduler& b_scheduler, SimDuration delay) {
  auto a = std::make_shared<TransportEndpoint>();
  auto b = std::make_shared<TransportEndpoint>();
  a->scheduler_ = &a_scheduler;
  b->scheduler_ = &b_scheduler;
  a->delay_ = delay;
  b->delay_ = delay;
  a->peer_ = b;
  b->peer_ = a;
  if (&a_scheduler != &b_scheduler && a_scheduler.owner() != nullptr &&
      a_scheduler.owner() == b_scheduler.owner()) {
    auto* owner = a_scheduler.owner();
    owner->add_lookahead_edge(a_scheduler.shard_id(), b_scheduler.shard_id(), delay);
    owner->add_lookahead_edge(b_scheduler.shard_id(), a_scheduler.shard_id(), delay);
  }
  return {a, b};
}

std::vector<std::string> FrameReader::feed(std::string_view bytes) {
  buffer_.append(bytes);
  std::vector<std::string> messages;
  std::size_t pos;
  while ((pos = buffer_.find(kDelimiter)) != std::string::npos) {
    messages.push_back(buffer_.substr(0, pos));
    buffer_.erase(0, pos + kDelimiter.size());
  }
  return messages;
}

std::string FrameReader::frame(std::string_view message) {
  std::string out;
  out.reserve(message.size() + kDelimiter.size());
  out.append(message);
  out.append(kDelimiter);
  return out;
}

}  // namespace escape::netconf
