# Empty dependencies file for bench_netconf.
# This may be replaced when dependencies are built.
