// Tests for the service graph model and the resource graph (routing,
// reservations).
#include <gtest/gtest.h>

#include "sg/resource_model.hpp"
#include "sg/service_graph.hpp"

namespace escape::sg {
namespace {

ServiceGraph simple_chain() {
  ServiceGraph g("chain");
  g.add_sap("sap1")
      .add_sap("sap2")
      .add_vnf("fw", "firewall", {}, 0.2)
      .add_vnf("mon", "monitor", {}, 0.1)
      .add_link("sap1", "fw")
      .add_link("fw", "mon")
      .add_link("mon", "sap2");
  return g;
}

TEST(ServiceGraph, ValidChainValidates) {
  EXPECT_TRUE(simple_chain().validate().ok());
}

TEST(ServiceGraph, ChainOrderTraversal) {
  auto order = simple_chain().chain_order();
  ASSERT_TRUE(order.ok()) << order.error().to_string();
  EXPECT_EQ(*order, (std::vector<std::string>{"sap1", "fw", "mon", "sap2"}));
}

TEST(ServiceGraph, DuplicateIdsRejected) {
  ServiceGraph g;
  g.add_sap("x").add_vnf("x", "monitor");
  EXPECT_EQ(g.validate().error().code, "sg.duplicate-id");
}

TEST(ServiceGraph, UnknownLinkEndpointRejected) {
  ServiceGraph g;
  g.add_sap("a").add_sap("b").add_link("a", "ghost");
  EXPECT_EQ(g.validate().error().code, "sg.unknown-node");
}

TEST(ServiceGraph, DisconnectedVnfRejected) {
  ServiceGraph g;
  g.add_sap("a").add_sap("b").add_vnf("v", "monitor").add_link("a", "b");
  EXPECT_EQ(g.validate().error().code, "sg.disconnected-vnf");
}

TEST(ServiceGraph, SelfLoopRejected) {
  ServiceGraph g;
  g.add_sap("a").add_link("a", "a");
  EXPECT_EQ(g.validate().error().code, "sg.self-loop");
}

TEST(ServiceGraph, BadCpuRejected) {
  ServiceGraph g;
  g.add_sap("a").add_sap("b").add_vnf("v", "m", {}, -1.0).add_link("a", "v").add_link("v", "b");
  EXPECT_EQ(g.validate().error().code, "sg.bad-cpu");
}

TEST(ServiceGraph, RequirementMustReferenceSaps) {
  ServiceGraph g = simple_chain();
  g.add_requirement({"fw", "sap2", 0, 0});
  EXPECT_EQ(g.validate().error().code, "sg.bad-requirement");
}

TEST(ServiceGraph, BranchingIsNotAChain) {
  ServiceGraph g;
  g.add_sap("a").add_sap("b").add_sap("c");
  g.add_vnf("v", "monitor");
  g.add_link("a", "v").add_link("v", "b").add_link("v", "c");
  EXPECT_FALSE(g.chain_order().ok());
}

TEST(ServiceGraph, VnfLookupAndSuccessors) {
  ServiceGraph g = simple_chain();
  EXPECT_NE(g.vnf("fw"), nullptr);
  EXPECT_EQ(g.vnf("nope"), nullptr);
  EXPECT_TRUE(g.is_sap("sap1"));
  EXPECT_FALSE(g.is_sap("fw"));
  EXPECT_EQ(g.successors("fw"), std::vector<std::string>{"mon"});
}

// --- ResourceGraph ------------------------------------------------------------------

/// sap1 -- s1 -- s2 -- sap2 with containers off s1 and s2; the s1-s2
/// link is slower than the alternative s1-s3-s2 detour.
ResourceGraph diamond() {
  ResourceGraph g;
  g.add_sap("sap1").add_sap("sap2");
  g.add_switch("s1").add_switch("s2").add_switch("s3");
  g.add_container("c1", 1.0, 4).add_container("c2", 1.0, 4);
  g.add_link("sap1", 0, "s1", 1, 1'000'000'000, milliseconds(1));
  g.add_link("sap2", 0, "s2", 1, 1'000'000'000, milliseconds(1));
  g.add_link("s1", 2, "s2", 2, 100'000'000, milliseconds(10));  // slow direct
  g.add_link("s1", 3, "s3", 1, 1'000'000'000, milliseconds(2));
  g.add_link("s3", 2, "s2", 3, 1'000'000'000, milliseconds(2));
  g.add_link("c1", 0, "s1", 4, 1'000'000'000, milliseconds(1));
  g.add_link("c2", 0, "s2", 4, 1'000'000'000, milliseconds(1));
  return g;
}

TEST(ResourceGraph, ShortestPathPrefersLowDelay) {
  ResourceGraph g = diamond();
  auto path = g.shortest_path("sap1", "sap2");
  ASSERT_TRUE(path);
  // Via s3: 1 + 2 + 2 + 1 = 6 ms beats 1 + 10 + 1 = 12 ms.
  EXPECT_EQ(path->total_delay, milliseconds(6));
  EXPECT_EQ(path->nodes,
            (std::vector<std::string>{"sap1", "s1", "s3", "s2", "sap2"}));
  EXPECT_EQ(path->link_indices.size(), 4u);
}

TEST(ResourceGraph, BandwidthConstraintReroutes) {
  ResourceGraph g = diamond();
  // Saturate the fast s1-s3-s2 detour only (not the access links).
  auto middle = g.shortest_path("s1", "s2", 950'000'000);
  ASSERT_TRUE(middle);
  EXPECT_EQ(middle->total_delay, milliseconds(4));  // via s3
  g.reserve_path(*middle, 950'000'000);
  // 80 Mb/s no longer fits the detour (50 Mb/s free) but the slow direct
  // link (100 Mb/s) carries it -- Dijkstra falls back to the 12 ms path.
  auto rerouted = g.shortest_path("sap1", "sap2", 80'000'000);
  ASSERT_TRUE(rerouted);
  EXPECT_EQ(rerouted->total_delay, milliseconds(12));
  // 200 Mb/s fits neither the drained detour nor the 100 Mb/s direct.
  EXPECT_FALSE(g.shortest_path("sap1", "sap2", 200'000'000));
  // Small flows still prefer the lowest-delay feasible route.
  auto small = g.shortest_path("sap1", "sap2", 50'000'000);
  ASSERT_TRUE(small);
  EXPECT_EQ(small->total_delay, milliseconds(6));
}

TEST(ResourceGraph, ReleaseRestoresCapacity) {
  ResourceGraph g = diamond();
  auto path = g.shortest_path("sap1", "sap2", 600'000'000);
  ASSERT_TRUE(path);
  g.reserve_path(*path, 600'000'000);
  EXPECT_FALSE(g.shortest_path("sap1", "sap2", 600'000'000));
  g.release_path(*path, 600'000'000);
  EXPECT_TRUE(g.shortest_path("sap1", "sap2", 600'000'000));
}

TEST(ResourceGraph, NoTransitThroughContainersOrSaps) {
  ResourceGraph g;
  g.add_sap("a").add_sap("b");
  g.add_container("c", 1.0, 4);
  // a -- c -- b: the only "path" transits the container; must not route.
  g.add_link("a", 0, "c", 0, 1'000'000'000, milliseconds(1));
  g.add_link("c", 1, "b", 0, 1'000'000'000, milliseconds(1));
  EXPECT_FALSE(g.shortest_path("a", "b"));
  // But the container itself is reachable as an endpoint.
  EXPECT_TRUE(g.shortest_path("a", "c"));
}

TEST(ResourceGraph, SelfPathIsEmpty) {
  ResourceGraph g = diamond();
  auto path = g.shortest_path("c1", "c1");
  ASSERT_TRUE(path);
  EXPECT_EQ(path->total_delay, 0u);
  EXPECT_TRUE(path->link_indices.empty());
  EXPECT_EQ(path->nodes, std::vector<std::string>{"c1"});
}

TEST(ResourceGraph, UnknownEndpointsRejected) {
  ResourceGraph g = diamond();
  EXPECT_FALSE(g.shortest_path("sap1", "nope"));
  EXPECT_FALSE(g.shortest_path("nope", "sap1"));
}

TEST(ResourceGraph, VnfReservationAccounting) {
  ResourceGraph g = diamond();
  EXPECT_TRUE(g.reserve_vnf("c1", 0.6).ok());
  EXPECT_DOUBLE_EQ(g.node("c1")->cpu_free(), 0.4);
  EXPECT_EQ(g.node("c1")->slots_free(), 3u);
  auto s = g.reserve_vnf("c1", 0.6);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, "resource.cpu-exhausted");
  g.release_vnf("c1", 0.6);
  EXPECT_TRUE(g.reserve_vnf("c1", 0.6).ok());
}

TEST(ResourceGraph, SlotExhaustion) {
  ResourceGraph g;
  g.add_container("c", 10.0, 2);
  EXPECT_TRUE(g.reserve_vnf("c", 0.1).ok());
  EXPECT_TRUE(g.reserve_vnf("c", 0.1).ok());
  auto s = g.reserve_vnf("c", 0.1);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, "resource.slots-exhausted");
}

TEST(ResourceGraph, ReserveOnNonContainerRejected) {
  ResourceGraph g = diamond();
  EXPECT_EQ(g.reserve_vnf("s1", 0.1).error().code, "resource.not-a-container");
  EXPECT_EQ(g.reserve_vnf("nope", 0.1).error().code, "resource.not-a-container");
}

TEST(ResourceGraph, PortAndPeerLookup) {
  ResourceGraph g = diamond();
  auto path = g.shortest_path("sap1", "s1");
  ASSERT_TRUE(path);
  int link = path->link_indices[0];
  EXPECT_EQ(g.port_on(link, "sap1"), 0);
  EXPECT_EQ(g.port_on(link, "s1"), 1);
  EXPECT_EQ(g.peer_of(link, "sap1"), "s1");
  EXPECT_EQ(g.peer_of(link, "s1"), "sap1");
}

TEST(ResourceGraph, ContainersListed) {
  ResourceGraph g = diamond();
  auto containers = g.containers();
  EXPECT_EQ(containers, (std::vector<std::string>{"c1", "c2"}));
}

TEST(ResourceGraph, DuplicateNodeThrows) {
  ResourceGraph g;
  g.add_switch("s");
  EXPECT_THROW(g.add_switch("s"), std::invalid_argument);
  EXPECT_THROW(g.add_link("s", 0, "ghost", 0, 1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace escape::sg
