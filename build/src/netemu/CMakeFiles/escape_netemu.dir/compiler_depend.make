# Empty compiler generated dependencies file for escape_netemu.
# This may be replaced when dependencies are built.
