#include "net/flow.hpp"

#include "net/headers.hpp"
#include "util/strings.hpp"

namespace escape::net {

std::optional<FlowKey> extract_flow_key(const Packet& packet, std::uint16_t in_port) {
  auto eth = EthernetView::parse(packet.bytes());
  if (!eth) return std::nullopt;

  FlowKey key;
  key.in_port = in_port;
  key.dl_src = eth->src;
  key.dl_dst = eth->dst;
  key.dl_type = eth->ethertype;

  if (eth->ethertype == ethertype::kIpv4) {
    if (auto ip = Ipv4View::parse(eth->payload)) {
      key.nw_proto = ip->protocol;
      key.nw_src = ip->src;
      key.nw_dst = ip->dst;
      key.nw_tos = ip->dscp;
      if (ip->protocol == ipproto::kUdp) {
        if (auto udp = UdpView::parse(ip->payload)) {
          key.tp_src = udp->src_port;
          key.tp_dst = udp->dst_port;
        }
      } else if (ip->protocol == ipproto::kTcp) {
        if (auto tcp = TcpView::parse(ip->payload)) {
          key.tp_src = tcp->src_port;
          key.tp_dst = tcp->dst_port;
        }
      } else if (ip->protocol == ipproto::kIcmp) {
        if (auto icmp = IcmpView::parse(ip->payload)) {
          key.tp_src = icmp->type;
          key.tp_dst = icmp->code;
        }
      }
    }
  } else if (eth->ethertype == ethertype::kArp) {
    if (auto arp = ArpView::parse(eth->payload)) {
      key.nw_proto = static_cast<std::uint8_t>(arp->opcode);
      key.nw_src = arp->sender_ip;
      key.nw_dst = arp->target_ip;
    }
  }
  return key;
}

std::string FlowKey::to_string() const {
  return strings::format(
      "flow[in=%u %s->%s type=0x%04x proto=%u %s:%u->%s:%u tos=%u]", in_port,
      dl_src.to_string().c_str(), dl_dst.to_string().c_str(), dl_type, nw_proto,
      nw_src.to_string().c_str(), tp_src, nw_dst.to_string().c_str(), tp_dst, nw_tos);
}

}  // namespace escape::net
