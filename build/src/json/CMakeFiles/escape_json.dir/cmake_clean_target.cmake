file(REMOVE_RECURSE
  "libescape_json.a"
)
