// The flow table: priority-ordered wildcard entries behind a
// tuple-space-search index (one hash table per distinct wildcard mask,
// probed in descending max-priority order with priority early exit),
// per-entry counters and idle/hard timeout expiry.
//
// Lookup semantics (shared with tests/support/linear_flow_oracle.hpp,
// the linear reference implementation the property tests diff against):
//   * the winner is the matching entry with the highest priority;
//     priority ties prefer the exact (fully-specified) entry, then the
//     earlier install (stable OF 1.0 tie behaviour);
//   * expired entries are invisible to lookup -- they are skipped, not
//     lazily evicted. Eviction happens in expire() sweeps (and delete
//     flow-mods), always in install order, so the flow-removed stream
//     is canonical and independent of the lookup access pattern.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "openflow/actions.hpp"
#include "openflow/match.hpp"
#include "openflow/messages.hpp"
#include "util/time.hpp"

namespace escape::openflow {

struct FlowEntry {
  Match match;
  std::uint16_t priority = 0x8000;
  std::uint64_t cookie = 0;
  SimDuration idle_timeout = 0;
  SimDuration hard_timeout = 0;
  ActionList actions;
  bool send_flow_removed = false;

  // Counters / bookkeeping.
  SimTime installed_at = 0;
  SimTime last_hit = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  /// Monotonic install sequence; breaks priority ties (earlier wins)
  /// and fixes the canonical eviction / stats order.
  std::uint64_t seq = 0;
};

class FlowTable {
 public:
  /// Callback fired when an entry expires or is deleted with
  /// send_flow_removed set.
  using RemovedCallback = std::function<void(const FlowEntry&, FlowRemovedReason)>;

  void set_removed_callback(RemovedCallback cb) { removed_cb_ = std::move(cb); }

  /// Applies a flow-mod at virtual time `now`.
  void apply(const FlowMod& mod, SimTime now);

  /// Applies a burst of flow-mods as one table transaction: identical
  /// end state to N sequential apply() calls, but a single version bump
  /// and one miss-memo invalidation for the whole batch. This is the
  /// resync / chain-install fast path past ~100k rules per switch.
  void apply_batch(const std::vector<FlowMod>& mods, SimTime now);

  /// Looks up the highest-priority matching entry, updating its
  /// counters. Expired entries are skipped (see header comment).
  FlowEntry* lookup(const net::FlowKey& key, std::size_t packet_bytes, SimTime now);

  /// Replays the counter updates of a successful lookup() on an entry the
  /// caller already holds. This is the batch fast path: consecutive
  /// packets of one flow skip the table walk but the counters (lookups,
  /// matches, per-entry packet/byte/last_hit) end up exactly as if
  /// lookup() had run per packet.
  void record_hit(FlowEntry& entry, std::size_t packet_bytes, SimTime now);

  /// Monotonic generation counter, bumped whenever entries are added,
  /// removed or evicted. A cached FlowEntry* is only safe to reuse while
  /// the version is unchanged.
  std::uint64_t version() const { return version_; }

  /// Evicts every entry whose idle/hard timeout has passed at `now`, in
  /// install order. Returns the number evicted. The switch sweeps
  /// periodically.
  std::size_t expire(SimTime now);

  std::size_t size() const { return entries_.size(); }
  std::uint64_t lookups() const { return lookups_; }
  std::uint64_t matches() const { return matched_; }

  /// Misses answered from the miss memo without re-probing the mask
  /// groups (see the memo comment in the private section).
  std::uint64_t miss_short_circuits() const { return miss_short_circuits_; }

  /// Number of distinct wildcard masks currently indexed (tuple-space
  /// hash tables; the per-lookup probe bound).
  std::size_t mask_group_count() const { return groups_.size(); }

  /// Entries examined by the most recent delete_matching() call
  /// (regression guard: a mask-indexed purge must not rescan the table).
  std::size_t last_delete_examined() const { return last_delete_examined_; }

  /// Snapshot for flow-stats replies, in install order.
  std::vector<FlowStatsEntry> stats(SimTime now) const;

  /// The cookie-owned (cookie != 0) live entries only: the slice a
  /// controller app's intent store can be diffed against, with cookie-0
  /// (l2_learning) entries and already-expired rows excluded.
  std::vector<FlowStatsEntry> cookied_stats(SimTime now) const;

  void clear();

 private:
  using EntryList = std::list<FlowEntry>;
  using EntryIt = EntryList::iterator;

  /// One tuple space: all entries sharing a wildcard mask, hashed by
  /// their masked fields. A bucket holds the entries whose masks AND
  /// masked fields coincide, sorted by (priority desc, seq asc).
  struct MaskGroup {
    Match mask;  // any representative match of this mask (fields unused)
    bool exact = false;
    // Live priorities with their entry counts; the max (first key) gives
    // the probe order and the early-exit bound.
    std::map<std::uint16_t, std::size_t, std::greater<std::uint16_t>> prio_counts;
    std::unordered_map<net::FlowKey, std::vector<EntryIt>> buckets;
    std::size_t size = 0;

    std::uint16_t max_priority() const {
      return prio_counts.empty() ? 0 : prio_counts.begin()->first;
    }
  };

  bool expired(const FlowEntry& e, SimTime now) const;
  FlowRemovedReason expiry_reason(const FlowEntry& e, SimTime now) const;
  void fire_removed(const FlowEntry& e, FlowRemovedReason reason);
  MaskGroup& group_for(const Match& match);
  void link_entry(EntryIt it);
  /// Unlinks + erases one entry, firing `reason` first when set.
  void erase_entry(EntryIt it, std::optional<FlowRemovedReason> reason);
  void apply_one(const FlowMod& mod, SimTime now);
  void delete_matching(const Match& match, bool strict, std::optional<std::uint16_t> priority);
  const std::vector<MaskGroup*>& probe_order() const;
  /// True when `a` outranks `b`: higher priority, then exact-over-
  /// wildcard, then earlier install.
  static bool outranks(const FlowEntry& a, bool a_exact, const FlowEntry& b, bool b_exact);

  // All entries in install order (stable addresses: lookup() hands out
  // FlowEntry* that stay valid until the entry is erased).
  EntryList entries_;
  // Tuple spaces keyed by Match::mask_signature().
  std::unordered_map<std::uint64_t, MaskGroup> groups_;
  // Groups sorted by descending max priority, rebuilt lazily when a
  // group appears/vanishes or a group's max priority moves.
  mutable std::vector<MaskGroup*> probe_order_;
  mutable bool probe_order_dirty_ = true;

  std::uint64_t next_seq_ = 0;
  std::uint64_t lookups_ = 0;
  std::uint64_t matched_ = 0;
  std::uint64_t version_ = 0;
  std::size_t last_delete_examined_ = 0;

  // Miss memo: keys that probed every eligible mask group and matched
  // nothing. Sound because a miss can only become a hit through a
  // flow-mod, and every table mutation (add/modify/delete/expiry sweep)
  // bumps version_, which invalidates the memo; timeout expiry only
  // creates new misses. Without it, every packet of an unmatched flow
  // re-probes all mask groups before taking the packet-in path.
  // Bounded: the memo resets when it reaches kMissMemoCap (and on every
  // version bump).
  static constexpr std::size_t kMissMemoCap = 4096;
  std::unordered_set<net::FlowKey> miss_memo_;
  std::uint64_t miss_memo_version_ = 0;
  std::uint64_t miss_short_circuits_ = 0;

  RemovedCallback removed_cb_;
};

}  // namespace escape::openflow
