# Empty dependencies file for escape_env.
# This may be replaced when dependencies are built.
