// NETCONF sessions (RFC 6241 shape): hello/capability exchange, framed
// XML rpc / rpc-reply with message-id correlation, rpc-error reporting.
//
// The server is operation-agnostic: agents register handlers per RPC
// local name (get, edit-config, startVNF, ...). The client issues RPCs
// asynchronously; replies arrive through callbacks once the scheduler
// delivers them (management-plane latency is real and measurable).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "netconf/transport.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"
#include "util/result.hpp"
#include "xml/xml.hpp"

namespace escape::netconf {

inline constexpr std::string_view kBaseCapability = "urn:ietf:params:netconf:base:1.0";
inline constexpr std::string_view kVnfCapability = "urn:escape:vnf:1.0";
inline constexpr std::string_view kNetconfNs = "urn:ietf:params:xml:ns:netconf:base:1.0";

/// Server side of one session (the agent end).
class NetconfServer {
 public:
  /// Handler: receives the operation element (e.g. <startVNF>...), returns
  /// reply content to embed in <rpc-reply> (nullptr -> <ok/>), or an Error
  /// that becomes an <rpc-error>.
  using RpcHandler =
      std::function<Result<std::unique_ptr<xml::Element>>(const xml::Element& operation)>;

  NetconfServer(std::shared_ptr<TransportEndpoint> transport,
                std::vector<std::string> capabilities = {std::string(kBaseCapability)});

  void register_rpc(const std::string& operation, RpcHandler handler);

  /// Pushes an asynchronous <notification> (RFC 5277 framing) carrying
  /// `event`; `event_time` is a free-form timestamp (virtual ns here).
  void send_notification(std::unique_ptr<xml::Element> event, const std::string& event_time);

  bool hello_received() const { return hello_received_; }
  const std::vector<std::string>& peer_capabilities() const { return peer_capabilities_; }
  std::uint64_t rpcs_handled() const { return rpcs_handled_; }
  std::uint64_t rpc_errors() const { return rpc_errors_; }

 private:
  void on_bytes(std::string bytes);
  void handle_message(const std::string& message);
  void send_reply(const std::string& message_id, Result<std::unique_ptr<xml::Element>> result);

  std::shared_ptr<TransportEndpoint> transport_;
  FrameReader reader_;
  std::map<std::string, RpcHandler> handlers_;
  bool hello_received_ = false;
  std::vector<std::string> peer_capabilities_;
  std::uint64_t rpcs_handled_ = 0;
  std::uint64_t rpc_errors_ = 0;
  obs::Counter* m_rpcs_;
  obs::Counter* m_errors_;
  Logger log_{"netconf.server"};
};

/// Client side of one session (the orchestrator end).
class NetconfClient {
 public:
  using ReplyCallback = std::function<void(Result<std::unique_ptr<xml::Element>>)>;

  explicit NetconfClient(std::shared_ptr<TransportEndpoint> transport);

  /// True once the server's hello arrived.
  bool established() const { return established_; }
  const std::vector<std::string>& server_capabilities() const { return server_capabilities_; }

  /// Fires (immediately if already established) when the session is up.
  void on_established(std::function<void()> fn);

  /// Sends <rpc><operation.../></rpc>; `cb` receives the rpc-reply body
  /// (the <rpc-reply> element) or an Error decoded from <rpc-error>.
  void rpc(std::unique_ptr<xml::Element> operation, ReplyCallback cb);

  /// Receives asynchronous <notification> events (the element passed is
  /// the event payload, i.e. the first non-eventTime child).
  using NotificationCallback = std::function<void(const xml::Element& event)>;
  void on_notification(NotificationCallback cb) { notification_cb_ = std::move(cb); }

  std::uint64_t notifications_received() const { return notifications_; }

  std::uint64_t rpcs_sent() const { return next_message_id_ - 1; }
  std::size_t pending_rpcs() const { return pending_.size(); }

 private:
  void on_bytes(std::string bytes);
  void handle_message(const std::string& message);

  /// Outstanding RPC: reply callback + send time/span for RTT metrics.
  struct PendingRpc {
    ReplyCallback cb;
    SimTime sent_at = 0;
    std::uint64_t span_id = 0;
  };

  std::shared_ptr<TransportEndpoint> transport_;
  FrameReader reader_;
  bool established_ = false;
  std::vector<std::string> server_capabilities_;
  std::vector<std::function<void()>> established_callbacks_;
  std::uint64_t next_message_id_ = 1;
  std::map<std::string, PendingRpc> pending_;
  NotificationCallback notification_cb_;
  std::uint64_t notifications_ = 0;
  obs::Counter* m_rpcs_;
  obs::BoundedHistogram* m_rtt_us_;
  Logger log_{"netconf.client"};
};

/// Builds the <hello> message with the given capabilities.
std::string build_hello(const std::vector<std::string>& capabilities);

}  // namespace escape::netconf
