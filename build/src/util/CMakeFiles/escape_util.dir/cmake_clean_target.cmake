file(REMOVE_RECURSE
  "libescape_util.a"
)
