# Empty dependencies file for escape_util.
# This may be replaced when dependencies are built.
