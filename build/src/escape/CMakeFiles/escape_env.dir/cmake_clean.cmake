file(REMOVE_RECURSE
  "CMakeFiles/escape_env.dir/environment.cpp.o"
  "CMakeFiles/escape_env.dir/environment.cpp.o.d"
  "libescape_env.a"
  "libescape_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escape_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
