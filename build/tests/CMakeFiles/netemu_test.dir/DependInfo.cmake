
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/netemu_test.cpp" "tests/CMakeFiles/netemu_test.dir/netemu_test.cpp.o" "gcc" "tests/CMakeFiles/netemu_test.dir/netemu_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/escape/CMakeFiles/escape_env.dir/DependInfo.cmake"
  "/root/repo/build/src/orchestrator/CMakeFiles/escape_orchestrator.dir/DependInfo.cmake"
  "/root/repo/build/src/service/CMakeFiles/escape_service.dir/DependInfo.cmake"
  "/root/repo/build/src/sg/CMakeFiles/escape_sg.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/escape_json.dir/DependInfo.cmake"
  "/root/repo/build/src/netconf/CMakeFiles/escape_netconf.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/escape_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/netemu/CMakeFiles/escape_netemu.dir/DependInfo.cmake"
  "/root/repo/build/src/click/CMakeFiles/escape_click.dir/DependInfo.cmake"
  "/root/repo/build/src/pox/CMakeFiles/escape_pox.dir/DependInfo.cmake"
  "/root/repo/build/src/openflow/CMakeFiles/escape_openflow.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/escape_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/escape_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
