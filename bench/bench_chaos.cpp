// Chaos exploration cost: what one replayed lifecycle episode costs in
// wall time, and the throughput of a (capped) depth-1 sweep. The episode
// is the explorer's unit of work -- a full deploy/scale/kill/restore
// lifecycle in a fresh environment -- so episode cost x schedule count
// bounds the CI sweep budget.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "chaos/explorer.hpp"
#include "chaos/scenario.hpp"

using namespace escape;

static void BM_ChaosEpisode(benchmark::State& state) {
  chaos::LifecycleScenarioOptions scenario;
  scenario.threads = static_cast<std::size_t>(state.range(0));
  chaos::ChaosExplorer explorer(chaos::lifecycle_scenario(scenario),
                                chaos::ExplorerOptions{});
  double hits = 0;
  for (auto _ : state) {
    chaos::Episode episode = explorer.run_schedule({});
    if (!episode.violations.empty()) {
      state.SkipWithError("clean episode violated invariants");
      break;
    }
    benchmark::DoNotOptimize(episode.digest);
  }
  std::uint64_t digest = 0;
  hits = static_cast<double>(explorer.record(&digest).size());
  state.counters["trace_hits"] = hits;
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ChaosEpisode)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

static void BM_ChaosSweepCapped(benchmark::State& state) {
  const std::size_t cap = static_cast<std::size_t>(state.range(0));
  double explored = 0;
  double failures = 0;
  double vacuous = 0;
  for (auto _ : state) {
    chaos::ExplorerOptions options;
    options.max_schedules = cap;
    chaos::ChaosExplorer explorer(chaos::lifecycle_scenario(), options);
    chaos::ExploreReport report = explorer.explore();
    explored = static_cast<double>(report.episodes.size());
    failures = static_cast<double>(report.failures());
    vacuous = static_cast<double>(report.vacuous());
    if (!report.clean_violations.empty()) {
      state.SkipWithError("clean run violated invariants");
      break;
    }
  }
  state.counters["schedules_explored"] = explored;
  state.counters["failures"] = failures;
  state.counters["vacuous"] = vacuous;
}
BENCHMARK(BM_ChaosSweepCapped)->Arg(8)->Unit(benchmark::kMillisecond);

ESCAPE_BENCH_MAIN("chaos");
