# Empty compiler generated dependencies file for escape_orchestrator.
# This may be replaced when dependencies are built.
