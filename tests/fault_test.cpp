// The fault plane and the robustness machinery it exercises: flaky
// NETCONF transports, RPC timeouts/retries, circuit breaking, session
// close/rebind, scripted fault injection and health monitoring.
#include <gtest/gtest.h>

#include "fault/fault_plane.hpp"
#include "netconf/vnf_agent.hpp"
#include "obs/metrics.hpp"

namespace escape {
namespace {

using netconf::CircuitBreakerOptions;
using netconf::NetconfClient;
using netconf::NetconfServer;
using netconf::RpcOptions;
using netconf::TransportFaults;
using netconf::make_pipe;

// --- raw client/server robustness -----------------------------------------------

struct RobustSessionFixture : ::testing::Test {
  EventScheduler sched;
  std::shared_ptr<netconf::TransportEndpoint> server_end, client_end;
  std::unique_ptr<NetconfServer> server;
  std::unique_ptr<NetconfClient> client;

  void SetUp() override {
    auto [s, c] = make_pipe(sched, 100 * timeunit::kMicrosecond);
    server_end = s;
    client_end = c;
    server = std::make_unique<NetconfServer>(server_end);
    client = std::make_unique<NetconfClient>(client_end);
    server->register_rpc("echo",
                         [](const xml::Element& op) -> Result<std::unique_ptr<xml::Element>> {
                           auto reply = std::make_unique<xml::Element>("echoed");
                           reply->set_text(op.child_text("value"));
                           return reply;
                         });
    sched.run();  // hello exchange
    ASSERT_TRUE(client->established());
  }
};

TEST_F(RobustSessionFixture, RpcTimeoutNeverHangs) {
  // Outgoing frames vanish: the RPC can only end via its timeout.
  client_end->set_faults({.drop_prob = 1.0});
  Error got{"", ""};
  RpcOptions opts;
  opts.timeout = 5 * timeunit::kMillisecond;
  auto op = std::make_unique<xml::Element>("echo");
  client->rpc(std::move(op), opts, [&](Result<std::unique_ptr<xml::Element>> r) {
    ASSERT_FALSE(r.ok());
    got = r.error();
  });
  const SimTime before = sched.now();
  sched.run();
  EXPECT_EQ(got.code, "netconf.rpc.timeout");
  EXPECT_EQ(client->rpc_timeouts(), 1u);
  EXPECT_EQ(client->pending_rpcs(), 0u);
  // The failure arrived exactly at the timeout, not "eventually".
  EXPECT_LE(sched.now() - before, 6 * timeunit::kMillisecond);
}

TEST_F(RobustSessionFixture, FlakyTransportRetriesUntilSuccess) {
  // 40% loss in both directions: with 6 attempts per RPC, all of them
  // should still complete -- this is the retry/backoff envelope working.
  client_end->set_faults({.drop_prob = 0.4, .seed = 11});
  server_end->set_faults({.drop_prob = 0.4, .seed = 12});
  RpcOptions opts;
  opts.timeout = 5 * timeunit::kMillisecond;
  opts.max_attempts = 6;
  opts.backoff_base = timeunit::kMillisecond;

  int ok = 0;
  constexpr int kRpcs = 20;
  for (int i = 0; i < kRpcs; ++i) {
    auto op = std::make_unique<xml::Element>("echo");
    op->add_leaf("value", std::to_string(i));
    client->rpc(std::move(op), opts, [&ok, i](Result<std::unique_ptr<xml::Element>> r) {
      ASSERT_TRUE(r.ok()) << "rpc " << i << ": " << r.error().to_string();
      EXPECT_EQ((*r)->child("echoed")->text(), std::to_string(i));
      ++ok;
    });
  }
  sched.run();
  EXPECT_EQ(ok, kRpcs);
  EXPECT_GT(client->rpc_retries(), 0u);  // the loss rate guarantees some
  EXPECT_GT(client_end->frames_dropped() + server_end->frames_dropped(), 0u);
  EXPECT_EQ(client->pending_rpcs(), 0u);
}

TEST_F(RobustSessionFixture, CorruptedFramesAreRetried) {
  client_end->set_faults({.corrupt_prob = 1.0});
  RpcOptions opts;
  opts.timeout = 2 * timeunit::kMillisecond;
  opts.max_attempts = 3;
  opts.backoff_base = timeunit::kMillisecond;
  Error got{"", ""};
  client->rpc(std::make_unique<xml::Element>("echo"), opts,
              [&](Result<std::unique_ptr<xml::Element>> r) {
                if (!r.ok()) got = r.error();
              });
  sched.run();
  // Every attempt was mangled in flight; the client gave up cleanly
  // after its attempt budget instead of hanging.
  EXPECT_EQ(got.code, "netconf.rpc.timeout");
  EXPECT_GE(client_end->frames_corrupted(), 3u);
  EXPECT_EQ(client->rpc_retries(), 2u);
}

TEST_F(RobustSessionFixture, SessionCloseFailsPendingAndFiresCallback) {
  int closed_events = 0;
  client->on_closed([&](const Error&) { ++closed_events; });
  // Park an RPC the server will never answer (agent "hangs" then dies).
  server->register_rpc("hang", [](const xml::Element&) -> Result<std::unique_ptr<xml::Element>> {
    return make_error("unreachable", "never sent");
  });
  server_end->set_faults({.drop_prob = 1.0});  // swallow the reply
  Error got{"", ""};
  client->rpc(std::make_unique<xml::Element>("hang"),
              [&](Result<std::unique_ptr<xml::Element>> r) {
                ASSERT_FALSE(r.ok());
                got = r.error();
              });
  sched.run_for(timeunit::kMillisecond);
  ASSERT_EQ(client->pending_rpcs(), 1u);

  server_end->close();  // the agent process dies
  sched.run();
  EXPECT_EQ(got.code, "netconf.session.closed");
  EXPECT_TRUE(client->session_closed());
  EXPECT_EQ(client->state(), netconf::SessionState::kClosed);
  EXPECT_EQ(closed_events, 1);
  EXPECT_EQ(client->pending_rpcs(), 0u);
}

TEST_F(RobustSessionFixture, RetryingRpcResendsAcrossRebind) {
  RpcOptions opts;
  opts.max_attempts = 10;
  opts.backoff_base = 5 * timeunit::kMillisecond;
  opts.jitter = 0.0;
  server_end->set_faults({.drop_prob = 1.0});
  opts.timeout = 2 * timeunit::kMillisecond;
  std::string got;
  auto op = std::make_unique<xml::Element>("echo");
  op->add_leaf("value", "survivor");
  client->rpc(std::move(op), opts, [&](Result<std::unique_ptr<xml::Element>> r) {
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    got = (*r)->child("echoed")->text();
  });
  sched.run_for(3 * timeunit::kMillisecond);  // first attempt times out

  // Agent crashes; a replacement comes up on a fresh pipe and the client
  // rebinds -- the pending RPC must re-send on the new session.
  server_end->close();
  auto [s2, c2] = make_pipe(sched, 100 * timeunit::kMicrosecond);
  auto server2 = std::make_unique<NetconfServer>(s2);
  server2->register_rpc("echo",
                        [](const xml::Element& op) -> Result<std::unique_ptr<xml::Element>> {
                          auto reply = std::make_unique<xml::Element>("echoed");
                          reply->set_text(op.child_text("value"));
                          return reply;
                        });
  client->rebind(c2);
  sched.run();
  EXPECT_TRUE(client->established());
  EXPECT_EQ(got, "survivor");
}

TEST_F(RobustSessionFixture, CircuitBreakerOpensThenRecovers) {
  client->set_circuit_breaker({.failure_threshold = 3, .open_for = 50 * timeunit::kMillisecond});
  client_end->set_faults({.drop_prob = 1.0});
  RpcOptions opts;
  opts.timeout = 2 * timeunit::kMillisecond;

  int failures = 0;
  for (int i = 0; i < 3; ++i) {
    client->rpc(std::make_unique<xml::Element>("echo"), opts,
                [&](Result<std::unique_ptr<xml::Element>> r) { failures += !r.ok(); });
    sched.run();
  }
  EXPECT_EQ(failures, 3);
  EXPECT_TRUE(client->circuit_open());

  // While open: immediate fail-fast, no frame even attempted.
  const std::uint64_t sent_before = client_end->bytes_sent();
  Error fast{"", ""};
  client->rpc(std::make_unique<xml::Element>("echo"), opts,
              [&](Result<std::unique_ptr<xml::Element>> r) { fast = r.error(); });
  EXPECT_EQ(fast.code, "netconf.circuit-open");
  EXPECT_EQ(client_end->bytes_sent(), sent_before);

  // After the cooldown the transport is healthy again: the half-open
  // probe goes through and closes the breaker.
  client_end->clear_faults();
  sched.run_for(60 * timeunit::kMillisecond);
  bool probed = false;
  client->rpc(std::make_unique<xml::Element>("echo"), opts,
              [&](Result<std::unique_ptr<xml::Element>> r) { probed = r.ok(); });
  sched.run();
  EXPECT_TRUE(probed);
  EXPECT_FALSE(client->circuit_open());
}

// --- environment fixture for plane-level tests ----------------------------------

fault::FaultEvent simple_event(std::string action, std::string target) {
  fault::FaultEvent e;
  e.action = std::move(action);
  e.target = std::move(target);
  return e;
}

sg::ServiceGraph monitor_graph() {
  sg::ServiceGraph g("mon");
  g.add_sap("sap1").add_sap("sap2");
  g.add_vnf("mon", "monitor", {}, 0.1);
  g.add_link("sap1", "mon").add_link("mon", "sap2");
  return g;
}

/// sap1 - s1 - s2 - sap2 with containers c1@s1 and c2@s2: a topology
/// with a spare container the recovery loop can re-embed onto.
void build_dual_topology(Environment& env) {
  auto& net = env.network();
  net.add_host("sap1");
  net.add_host("sap2");
  net.add_switch("s1");
  net.add_switch("s2");
  net.add_container("c1", 1.0, 8);
  net.add_container("c2", 1.0, 8);
  netemu::LinkConfig link;
  link.bandwidth_bps = 1'000'000'000;
  link.delay = 50 * timeunit::kMicrosecond;
  ASSERT_TRUE(net.add_link("sap1", 0, "s1", 1, link).ok());
  ASSERT_TRUE(net.add_link("sap2", 0, "s2", 1, link).ok());
  ASSERT_TRUE(net.add_link("s1", 2, "s2", 2, link).ok());
  ASSERT_TRUE(net.add_link("c1", 0, "s1", 3, link).ok());
  ASSERT_TRUE(net.add_link("c2", 0, "s2", 3, link).ok());
}

// --- FaultPlane -----------------------------------------------------------------

TEST(FaultPlane, RejectsMalformedScripts) {
  Environment env;
  fault::FaultPlane plane{env};
  EXPECT_EQ(plane.load_json("[]").error().code, "fault.bad-script");
  EXPECT_EQ(plane.load_json(R"({"events": 3})").error().code, "fault.bad-script");
  EXPECT_EQ(
      plane.load_json(R"({"events": [{"at_ms": 1, "action": "explode", "target": "c1"}]})")
          .error()
          .code,
      "fault.unknown-action");
  EXPECT_EQ(
      plane.load_json(R"({"events": [{"at_ms": 1, "action": "link-down", "a": "s1"}]})")
          .error()
          .code,
      "fault.bad-event");
  EXPECT_EQ(plane.load_json(R"({"events": [{"at_ms": 1, "action": "kill-container",
                                            "target": "c1", "prob": 1.5}]})")
                .error()
                .code,
            "fault.bad-event");
  EXPECT_EQ(plane
                .load_json(
                    R"({"events": [{"at_ms": 1, "action": "of-channel-flap", "target": "s1"}]})")
                .error()
                .code,
            "fault.bad-event");  // flap needs down_ms > 0
  EXPECT_EQ(plane.load_json(R"({"events": [{"at_ms": 1, "action": "of-channel-down"}]})")
                .error()
                .code,
            "fault.bad-event");  // of-channel-* needs a target
  // A bad event anywhere rejects the whole script: nothing was armed.
  EXPECT_EQ(plane.scheduled(), 0u);
  EXPECT_EQ(plane.injections(), 0u);
}

TEST(FaultPlane, OfChannelActionsRejectUnknownSwitch) {
  Environment env;
  build_dual_topology(env);
  ASSERT_TRUE(env.start().ok());
  fault::FaultPlane plane{env};
  fault::FaultEvent event;
  event.action = "of-channel-down";
  event.target = "nope";
  auto s = plane.apply(event);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, "escape.unknown-switch");
  EXPECT_EQ(plane.injections(), 0u);
}

TEST(FaultPlane, ScriptedOfChannelActionsDriveControlPlane) {
  Environment env;
  build_dual_topology(env);
  ASSERT_TRUE(env.start().ok());
  const auto dpid1 = env.network().switch_node("s1")->dpid();
  const auto dpid2 = env.network().switch_node("s2")->dpid();
  fault::FaultPlane plane{env};
  ASSERT_TRUE(plane
                  .load_json(R"({"events": [
                    {"at_ms": 5, "action": "of-channel-down", "target": "s1"},
                    {"at_ms": 10, "action": "of-channel-up", "target": "s1"},
                    {"at_ms": 15, "action": "of-channel-flap", "target": "s2",
                     "down_ms": 10},
                    {"at_ms": 20, "action": "of-channel-faults", "target": "s1",
                     "drop_prob": 0.5, "extra_delay_ms": 1, "fault_seed": 7},
                    {"at_ms": 30, "action": "of-channel-faults-clear", "target": "s1"},
                    {"at_ms": 35, "action": "switch-restart", "target": "s2"}
                  ]})")
                  .ok());

  env.run_for(7 * timeunit::kMillisecond);  // t = 7 ms
  EXPECT_FALSE(env.controller().channel_admin_up(dpid1));
  EXPECT_TRUE(env.controller().channel_admin_up(dpid2));

  env.run_for(5 * timeunit::kMillisecond);  // t = 12 ms
  EXPECT_TRUE(env.controller().channel_admin_up(dpid1));

  env.run_for(8 * timeunit::kMillisecond);  // t = 20 ms: mid-flap on s2
  EXPECT_FALSE(env.controller().channel_admin_up(dpid2));

  env.run_for(10 * timeunit::kMillisecond);  // t = 30 ms: flap restored
  EXPECT_TRUE(env.controller().channel_admin_up(dpid2));

  env.run_for(10 * timeunit::kMillisecond);  // t = 40 ms: restart fired
  EXPECT_EQ(plane.injections(), 6u);
}

TEST(FaultPlane, ScriptedKillAndLinkFlapFireAtVirtualTime) {
  Environment env;
  build_dual_topology(env);
  ASSERT_TRUE(env.start().ok());
  fault::FaultPlane plane{env};
  ASSERT_TRUE(plane
                  .load_json(R"({"events": [
                    {"at_ms": 10, "action": "kill-container", "target": "c1"},
                    {"at_ms": 15, "action": "link-down", "a": "s1", "b": "s2"},
                    {"at_ms": 25, "action": "link-up", "a": "s1", "b": "s2"}
                  ]})")
                  .ok());
  env.run_for(5 * timeunit::kMillisecond);
  EXPECT_TRUE(env.container("c1")->alive());  // not yet

  env.run_for(7 * timeunit::kMillisecond);  // t = 12 ms
  EXPECT_FALSE(env.container("c1")->alive());
  EXPECT_TRUE(env.network().find_link("s1", "s2")->up());

  env.run_for(8 * timeunit::kMillisecond);  // t = 20 ms
  EXPECT_FALSE(env.network().find_link("s1", "s2")->up());

  env.run_for(10 * timeunit::kMillisecond);  // t = 30 ms
  EXPECT_TRUE(env.network().find_link("s1", "s2")->up());
  EXPECT_EQ(plane.injections(), 3u);
}

TEST(FaultPlane, ProbabilityGateIsDeterministic) {
  Environment env;
  build_dual_topology(env);
  ASSERT_TRUE(env.start().ok());
  fault::FaultPlane plane{env, /*seed=*/7};
  fault::FaultEvent flap;
  flap.at = timeunit::kMillisecond;
  flap.action = "link-down";
  flap.a = "s1";
  flap.b = "s2";
  flap.prob = 0.5;
  flap.repeat = timeunit::kMillisecond;
  flap.count = 16;
  ASSERT_TRUE(plane.schedule(flap).ok());
  env.run_for(20 * timeunit::kMillisecond);
  // With p=0.5 over 16 occurrences, some fire and some are gated; the
  // seeded RNG makes the exact count stable run to run.
  EXPECT_GT(plane.injections(), 0u);
  EXPECT_LT(plane.injections(), 16u);
}

TEST(FaultPlane, RestoreContainerRespawnsAgentAndSession) {
  Environment env;
  build_dual_topology(env);
  ASSERT_TRUE(env.start().ok());
  fault::FaultPlane plane{env};
  ASSERT_TRUE(plane.apply(simple_event("kill-container", "c1")).ok());
  env.run_for(timeunit::kMillisecond);
  EXPECT_FALSE(env.container("c1")->alive());
  EXPECT_TRUE(env.agent_client("c1")->session().session_closed());

  ASSERT_TRUE(plane.apply(simple_event("restore-container", "c1")).ok());
  env.run_for(timeunit::kMillisecond);
  EXPECT_TRUE(env.container("c1")->alive());
  EXPECT_TRUE(env.agent_client("c1")->session().established());
  // The restored (empty) container is manageable again end to end.
  bool ok = false;
  env.agent_client("c1")->initiate_vnf("v", "monitor", "cnt :: Counter;", 0.1,
                                       [&](Status s) { ok = s.ok(); });
  env.run_for(timeunit::kMillisecond);
  EXPECT_TRUE(ok);
}

TEST(FaultPlane, NetconfFaultProfileCountsFrames) {
  Environment env;
  build_dual_topology(env);
  ASSERT_TRUE(env.start().ok());
  fault::FaultPlane plane{env};
  fault::FaultEvent ev;
  ev.action = "netconf-faults";
  ev.target = "c1";
  ev.faults.drop_prob = 1.0;
  ASSERT_TRUE(plane.apply(ev).ok());

  // Probing the faulted agent with a timeout fails instead of hanging.
  auto* client = env.agent_client("c1");
  netconf::RpcOptions opts;
  opts.timeout = 5 * timeunit::kMillisecond;
  Error got{"", ""};
  client->session().rpc(std::make_unique<xml::Element>("get"), opts,
                        [&](Result<std::unique_ptr<xml::Element>> r) {
                          if (!r.ok()) got = r.error();
                        });
  env.run_for(10 * timeunit::kMillisecond);
  EXPECT_EQ(got.code, "netconf.rpc.timeout");

  ASSERT_TRUE(plane.apply(simple_event("netconf-faults-clear", "c1")).ok());
  bool ok = false;
  client->session().rpc(std::make_unique<xml::Element>("get"), opts,
                        [&](Result<std::unique_ptr<xml::Element>> r) { ok = r.ok(); });
  env.run_for(10 * timeunit::kMillisecond);
  EXPECT_TRUE(ok);
}

// --- health monitor + self-healing ----------------------------------------------

TEST(SelfHealing, HealthMonitorMarksCrashedAgentDownThenUp) {
  Environment env;
  build_dual_topology(env);
  ASSERT_TRUE(env.start().ok());
  ASSERT_TRUE(env.enable_self_healing().ok());
  auto* health = env.health_monitor();
  ASSERT_NE(health, nullptr);
  EXPECT_TRUE(health->agent_healthy("c1"));

  ASSERT_TRUE(env.crash_agent("c1").ok());
  env.run_for(5 * timeunit::kMillisecond);  // session close propagates
  EXPECT_FALSE(health->agent_healthy("c1"));
  EXPECT_EQ(health->agents_down(), 1u);

  ASSERT_TRUE(env.respawn_agent("c1").ok());
  env.run_for(200 * timeunit::kMillisecond);  // next probe succeeds
  EXPECT_TRUE(health->agent_healthy("c1"));
  EXPECT_EQ(health->agents_down(), 0u);
}

TEST(SelfHealing, KilledContainerChainIsReembedded) {
  Environment env;
  build_dual_topology(env);
  ASSERT_TRUE(env.start().ok());
  ASSERT_TRUE(env.enable_self_healing().ok());
  auto chain = env.deploy(monitor_graph());
  ASSERT_TRUE(chain.ok()) << chain.error().to_string();
  ASSERT_EQ(env.deployment(*chain)->record.mapping.placements.at("mon"), "c1");

  auto& histogram = obs::MetricsRegistry::global().histogram("escape_recovery_latency_ms");
  const std::size_t recoveries_before = histogram.count();

  const SimTime killed_at = env.scheduler().now();
  ASSERT_TRUE(env.kill_container("c1").ok());
  env.run_for(500 * timeunit::kMillisecond);

  // The chain went DEGRADED -> RECOVERING -> ACTIVE on the survivor.
  ASSERT_TRUE(env.chain_state(*chain).ok());
  EXPECT_EQ(*env.chain_state(*chain), ChainState::kActive);
  EXPECT_EQ(env.deployment(*chain)->record.mapping.placements.at("mon"), "c2");

  // Recovery latency is observable and bounded (well under the window).
  ASSERT_EQ(histogram.count(), recoveries_before + 1);
  EXPECT_GT(histogram.max(), 0.0);
  EXPECT_LT(histogram.max(),
            static_cast<double>(env.scheduler().now() - killed_at) / timeunit::kMillisecond);
  EXPECT_LT(histogram.max(), 200.0);
  EXPECT_GE(
      obs::MetricsRegistry::global().counter("escape_recovery_total", {{"result", "ok"}}).value(),
      1u);
}

// Regression: a multi-VNF chain re-embeds cleanly. The recovery path
// hands the engine a temporary rendered-config vector; the second VNF's
// bring-up runs from a scheduler callback after that temporary is gone,
// which once dereferenced a dangling pointer (caught by ASan).
TEST(SelfHealing, KilledContainerMultiVnfChainIsReembedded) {
  Environment env;
  build_dual_topology(env);
  ASSERT_TRUE(env.start().ok());
  ASSERT_TRUE(env.enable_self_healing().ok());

  sg::ServiceGraph g("mon-fw");
  g.add_sap("sap1").add_sap("sap2");
  g.add_vnf("mon", "monitor", {}, 0.1);
  g.add_vnf("fw", "firewall", {}, 0.2);
  g.add_link("sap1", "mon").add_link("mon", "fw").add_link("fw", "sap2");
  auto chain = env.deploy(g);
  ASSERT_TRUE(chain.ok()) << chain.error().to_string();
  const auto& placements = env.deployment(*chain)->record.mapping.placements;
  ASSERT_EQ(placements.at("mon"), "c1");
  ASSERT_EQ(placements.at("fw"), "c1");

  ASSERT_TRUE(env.kill_container("c1").ok());
  env.run_for(500 * timeunit::kMillisecond);

  ASSERT_TRUE(env.chain_state(*chain).ok());
  EXPECT_EQ(*env.chain_state(*chain), ChainState::kActive);
  const auto& moved = env.deployment(*chain)->record.mapping.placements;
  EXPECT_EQ(moved.at("mon"), "c2");
  EXPECT_EQ(moved.at("fw"), "c2");
}

TEST(SelfHealing, RecoveryFailsCleanlyWithNoSpareCapacity) {
  Environment env;
  auto& net = env.network();
  net.add_host("sap1");
  net.add_host("sap2");
  net.add_switch("s1");
  net.add_container("c1", 1.0, 8);
  netemu::LinkConfig link;
  link.bandwidth_bps = 1'000'000'000;
  link.delay = 50 * timeunit::kMicrosecond;
  ASSERT_TRUE(net.add_link("sap1", 0, "s1", 1, link).ok());
  ASSERT_TRUE(net.add_link("sap2", 0, "s1", 2, link).ok());
  ASSERT_TRUE(net.add_link("c1", 0, "s1", 3, link).ok());
  ASSERT_TRUE(env.start().ok());
  RecoveryOptions recovery;
  recovery.max_recovery_attempts = 2;
  recovery.retry_delay = 20 * timeunit::kMillisecond;
  ASSERT_TRUE(env.enable_self_healing(recovery).ok());
  auto chain = env.deploy(monitor_graph());
  ASSERT_TRUE(chain.ok()) << chain.error().to_string();

  ASSERT_TRUE(env.kill_container("c1").ok());
  env.run_for(timeunit::kSecond);
  // Nowhere to go: the chain ends FAILED after its attempt budget, and
  // the environment is still responsive (no hang, no crash).
  EXPECT_EQ(*env.chain_state(*chain), ChainState::kFailed);
  EXPECT_GE(obs::MetricsRegistry::global()
                .counter("escape_recovery_total", {{"result", "failed"}})
                .value(),
            1u);

  // Restoring the container brings fresh capacity: the failed chain is
  // re-queued and comes back without operator intervention.
  ASSERT_TRUE(env.restore_container("c1").ok());
  env.run_for(timeunit::kSecond);
  EXPECT_EQ(*env.chain_state(*chain), ChainState::kActive);
}

}  // namespace
}  // namespace escape
