// Unit tests for the Click element framework: configuration parsing,
// router validation, element semantics and the handler surface.
#include <gtest/gtest.h>

#include <algorithm>

#include "click/config.hpp"
#include "click/elements.hpp"
#include "net/builder.hpp"
#include "util/strings.hpp"

namespace escape::click {
namespace {

using net::Ipv4Addr;
using net::MacAddr;

Packet test_packet(std::uint16_t dport = 2000, std::size_t size = 98) {
  return net::make_udp_packet(MacAddr::from_u64(1), MacAddr::from_u64(2),
                              Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 1000, dport, size);
}

// --- ConfigArgs -----------------------------------------------------------------

TEST(ConfigArgs, KeywordAndPositional) {
  auto args = ConfigArgs::parse("RATE 1000, BURST 20, extra");
  EXPECT_EQ(args.keyword("RATE"), "1000");
  EXPECT_EQ(args.keyword("rate"), "1000");  // case-insensitive
  EXPECT_EQ(args.keyword("BURST"), "20");
  EXPECT_EQ(args.positional(0), "extra");
  EXPECT_FALSE(args.keyword("MISSING"));
}

TEST(ConfigArgs, NestedParensAndQuotesStayIntact) {
  auto args = ConfigArgs::parse(R"(RULES "deny udp, allow ip", DEFAULT allow)");
  EXPECT_EQ(args.keyword("RULES"), "\"deny udp, allow ip\"");
  EXPECT_EQ(args.keyword("DEFAULT"), "allow");
}

TEST(ConfigArgs, NumericHelpers) {
  auto args = ConfigArgs::parse("RATE 10k, P 0.5");
  EXPECT_EQ(args.keyword_u64("RATE"), 10'000u);
  EXPECT_DOUBLE_EQ(*args.keyword_double("P"), 0.5);
}

TEST(ConfigArgs, KeywordOrPositionalFallback) {
  auto a = ConfigArgs::parse("100");
  EXPECT_EQ(a.keyword_or_positional("CAPACITY", 0), "100");
  auto b = ConfigArgs::parse("CAPACITY 200");
  EXPECT_EQ(b.keyword_or_positional("CAPACITY", 0), "200");
}

TEST(ConfigArgs, EmptyString) {
  auto args = ConfigArgs::parse("");
  EXPECT_TRUE(args.empty());
}

// --- config language parser -------------------------------------------------------

TEST(ConfigParser, DeclarationsAndChains) {
  auto parsed = parse_config(R"(
    src :: RatedSource(RATE 100);
    q :: Queue(50);
    src -> q;
    q -> Unqueue -> Discard;
  )");
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed->declarations.size(), 4u);  // src, q, anon Unqueue, anon Discard
  EXPECT_EQ(parsed->connections.size(), 3u);
  EXPECT_EQ(parsed->declarations[0].name, "src");
  EXPECT_EQ(parsed->declarations[0].class_name, "RatedSource");
  EXPECT_EQ(parsed->declarations[0].config, "RATE 100");
}

TEST(ConfigParser, PortSpecifiers) {
  auto parsed = parse_config(R"(
    cl :: Classifier(12/0800, -);
    a :: Counter; b :: Counter;
    cl[0] -> a; cl [1] -> b;
  )");
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  ASSERT_EQ(parsed->connections.size(), 2u);
  EXPECT_EQ(parsed->connections[0].from_port, 0);
  EXPECT_EQ(parsed->connections[1].from_port, 1);
}

TEST(ConfigParser, InputPortSpecifier) {
  auto parsed = parse_config(R"(
    n :: NAPT;
    src :: InfiniteSource(LIMIT 1);
    src -> [1]n;
  )");
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed->connections[0].to_port, 1);
}

TEST(ConfigParser, CommentsIgnored) {
  auto parsed = parse_config(
      "// line comment\n"
      "c :: Counter; /* block\ncomment */ c -> Discard;\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed->declarations.size(), 2u);
}

TEST(ConfigParser, InlineDeclarationInChain) {
  auto parsed = parse_config("src :: InfiniteSource -> mid :: Counter -> Discard;");
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed->declarations.size(), 3u);
  EXPECT_EQ(parsed->connections.size(), 2u);
  EXPECT_EQ(parsed->connections[0].from, "src");
  EXPECT_EQ(parsed->connections[0].to, "mid");
}

TEST(ConfigParser, Errors) {
  EXPECT_FALSE(parse_config("x -> y;").ok());              // undeclared lowercase refs
  EXPECT_FALSE(parse_config("a :: Counter; a :: Queue;").ok());  // duplicate
  EXPECT_FALSE(parse_config("a :: Counter(").ok());        // unbalanced paren
  EXPECT_FALSE(parse_config("a :: ;").ok());               // missing class
}

TEST(BuildRouter, UnknownClassRejected) {
  EventScheduler sched;
  auto r = build_router("x :: NoSuchElement;", sched);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "click.config.unknown-class");
}

TEST(BuildRouter, ProcessingConflictRejected) {
  EventScheduler sched;
  // Pushing straight into a pull-input element (Unqueue) is illegal.
  auto r = build_router("InfiniteSource -> Unqueue -> Discard;", sched);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "click.router.processing");
}

TEST(BuildRouter, FanOutWithoutTeeRejected) {
  EventScheduler sched;
  auto r = build_router(R"(
    s :: InfiniteSource(LIMIT 1);
    a :: Counter; b :: Counter;
    s -> a; s -> b;
  )", sched);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "click.router.fanout");
}

TEST(BuildRouter, BadElementConfigSurfacesName) {
  EventScheduler sched;
  auto r = build_router("p :: Paint(COLOR 999);", sched);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("p (Paint)"), std::string::npos);
}

// --- element semantics ---------------------------------------------------------------

/// Collects packets for assertions: a ToDevice with an inspecting sink.
struct Collector {
  std::vector<Packet> packets;

  void attach(Router& router, const std::string& todevice_name) {
    auto* to = dynamic_cast<ToDevice*>(router.element(todevice_name));
    ASSERT_NE(to, nullptr);
    to->set_sink([this](Packet&& p) { packets.push_back(std::move(p)); });
  }
};

TEST(Elements, SourceQueueUnqueueSinkPipeline) {
  EventScheduler sched;
  auto router = build_router(R"(
    src :: InfiniteSource(LIMIT 100, BURST 10, INTERVAL 1000);
    q :: Queue(1000);
    u :: Unqueue(BURST 4, INTERVAL 500);
    cnt :: Counter;
    out :: ToDevice(DEVNAME out0);
    src -> q; q -> u -> cnt -> out;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  Collector sink;
  sink.attach(**router, "out");
  sched.run();
  EXPECT_EQ(sink.packets.size(), 100u);
  EXPECT_EQ((*router)->call_read("cnt.count").value(), "100");
  EXPECT_EQ((*router)->call_read("src.count").value(), "100");
}

TEST(Elements, QueueTailDropsAndHandlers) {
  EventScheduler sched;
  auto router = build_router("q :: Queue(CAPACITY 5);", sched);
  ASSERT_TRUE(router.ok());
  auto* q = dynamic_cast<Queue*>((*router)->element("q"));
  for (int i = 0; i < 8; ++i) q->push(0, test_packet());
  EXPECT_EQ(q->length(), 5u);
  EXPECT_EQ(q->drops(), 3u);
  EXPECT_EQ((*router)->call_read("q.length").value(), "5");
  EXPECT_EQ((*router)->call_read("q.drops").value(), "3");
  EXPECT_EQ((*router)->call_read("q.highwater").value(), "5");
  // Pull drains FIFO.
  auto p = q->pull(0);
  ASSERT_TRUE(p);
  EXPECT_EQ(q->length(), 4u);
}

TEST(Elements, RatedSourcePacesPackets) {
  EventScheduler sched;
  auto router = build_router(R"(
    src :: RatedSource(RATE 1000, LIMIT 0);
    cnt :: Counter;
    src -> cnt -> Discard;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  sched.run_until(seconds(1));
  auto count = strings::parse_u64((*router)->call_read("cnt.count").value());
  // 1000 pps for 1 virtual second: 1000 or 1001 depending on edge.
  EXPECT_GE(*count, 1000u);
  EXPECT_LE(*count, 1001u);
}

TEST(Elements, RatedUnqueueEnforcesRate) {
  EventScheduler sched;
  auto router = build_router(R"(
    src :: InfiniteSource(LIMIT 5000, BURST 5000, INTERVAL 1);
    q :: Queue(10000);
    ru :: RatedUnqueue(RATE 100);
    cnt :: Counter;
    src -> q; q -> ru -> cnt -> Discard;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  sched.run_until(seconds(1));
  auto count = strings::parse_u64((*router)->call_read("cnt.count").value());
  EXPECT_GE(*count, 95u);
  EXPECT_LE(*count, 105u);
}

TEST(Elements, TeeDuplicates) {
  EventScheduler sched;
  auto router = build_router(R"(
    t :: Tee(3);
    a :: Counter; b :: Counter; c :: Counter;
    t[0] -> a -> Discard; t[1] -> b -> Discard; t[2] -> c -> Discard;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  (*router)->element("t")->push(0, test_packet());
  for (const char* name : {"a.count", "b.count", "c.count"}) {
    EXPECT_EQ((*router)->call_read(name).value(), "1");
  }
}

TEST(Elements, SwitchRoutesAndRetargets) {
  EventScheduler sched;
  auto router = build_router(R"(
    s :: Switch(N 2, PORT 0);
    a :: Counter; b :: Counter;
    s[0] -> a -> Discard; s[1] -> b -> Discard;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  Element* sw = (*router)->element("s");
  sw->push(0, test_packet());
  ASSERT_TRUE((*router)->call_write("s.switch", "1").ok());
  sw->push(0, test_packet());
  sw->push(0, test_packet());
  EXPECT_EQ((*router)->call_read("a.count").value(), "1");
  EXPECT_EQ((*router)->call_read("b.count").value(), "2");
  // -1 drops.
  ASSERT_TRUE((*router)->call_write("s.switch", "-1").ok());
  sw->push(0, test_packet());
  EXPECT_EQ((*router)->call_read("b.count").value(), "2");
  // Out-of-range rejected.
  EXPECT_FALSE((*router)->call_write("s.switch", "7").ok());
}

TEST(Elements, RoundRobinSwitchBalances) {
  EventScheduler sched;
  auto router = build_router(R"(
    rr :: RoundRobinSwitch(2);
    a :: Counter; b :: Counter;
    rr[0] -> a -> Discard; rr[1] -> b -> Discard;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  for (int i = 0; i < 10; ++i) (*router)->element("rr")->push(0, test_packet());
  EXPECT_EQ((*router)->call_read("a.count").value(), "5");
  EXPECT_EQ((*router)->call_read("b.count").value(), "5");
}

TEST(Elements, PaintAndPaintSwitchAndCheckPaint) {
  EventScheduler sched;
  auto router = build_router(R"(
    p :: Paint(COLOR 2);
    ps :: PaintSwitch(N 3);
    z :: Counter; one :: Counter; two :: Counter;
    p -> ps;
    ps[0] -> z -> Discard; ps[1] -> one -> Discard; ps[2] -> two -> Discard;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  (*router)->element("p")->push(0, test_packet());
  EXPECT_EQ((*router)->call_read("two.count").value(), "1");
  EXPECT_EQ((*router)->call_read("z.count").value(), "0");
}

TEST(Elements, ClassifierByEthertype) {
  EventScheduler sched;
  auto router = build_router(R"(
    cl :: Classifier(12/0800, 12/0806, -);
    ip :: Counter; arp :: Counter; other :: Counter;
    cl[0] -> ip -> Discard; cl[1] -> arp -> Discard; cl[2] -> other -> Discard;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  Element* cl = (*router)->element("cl");
  cl->push(0, test_packet());  // IPv4
  Packet arp_packet = net::PacketBuilder()
                          .eth(MacAddr::from_u64(1), MacAddr::broadcast(), net::ethertype::kArp)
                          .arp(net::ArpView::kRequest, MacAddr::from_u64(1),
                               Ipv4Addr(10, 0, 0, 1), MacAddr(), Ipv4Addr(10, 0, 0, 2))
                          .build();
  cl->push(0, std::move(arp_packet));
  Packet weird = net::PacketBuilder()
                     .eth(MacAddr::from_u64(1), MacAddr::from_u64(2), 0x1234)
                     .payload(std::string_view("x"))
                     .build();
  cl->push(0, std::move(weird));
  EXPECT_EQ((*router)->call_read("ip.count").value(), "1");
  EXPECT_EQ((*router)->call_read("arp.count").value(), "1");
  EXPECT_EQ((*router)->call_read("other.count").value(), "1");
}

TEST(Elements, IPClassifierFirstMatchWins) {
  EventScheduler sched;
  auto router = build_router(R"(
    cl :: IPClassifier(udp && dst port 53, udp, -);
    dns :: Counter; udp :: Counter; rest :: Counter;
    cl[0] -> dns -> Discard; cl[1] -> udp -> Discard; cl[2] -> rest -> Discard;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  Element* cl = (*router)->element("cl");
  cl->push(0, test_packet(53));
  cl->push(0, test_packet(99));
  EXPECT_EQ((*router)->call_read("dns.count").value(), "1");
  EXPECT_EQ((*router)->call_read("udp.count").value(), "1");
  EXPECT_EQ((*router)->call_read("rest.count").value(), "0");
}

TEST(Elements, CheckIPHeaderSplitsGoodAndBad) {
  EventScheduler sched;
  auto router = build_router(R"(
    chk :: CheckIPHeader;
    good :: Counter; bad :: Counter;
    chk[0] -> good -> Discard; chk[1] -> bad -> Discard;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  Element* chk = (*router)->element("chk");
  chk->push(0, test_packet());
  Packet corrupted = test_packet();
  corrupted.mutable_bytes()[net::EthernetView::kSize + 10] ^= 0xff;  // break checksum
  chk->push(0, std::move(corrupted));
  EXPECT_EQ((*router)->call_read("good.count").value(), "1");
  EXPECT_EQ((*router)->call_read("bad.count").value(), "1");
  EXPECT_EQ((*router)->call_read("chk.drops").value(), "1");
}

TEST(Elements, DecIPTTLExpiry) {
  EventScheduler sched;
  auto router = build_router(R"(
    dec :: DecIPTTL;
    ok :: Counter; exp :: Counter;
    dec[0] -> ok -> Discard; dec[1] -> exp -> Discard;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  Packet p = net::PacketBuilder()
                 .eth(MacAddr::from_u64(1), MacAddr::from_u64(2))
                 .ipv4(Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), net::ipproto::kUdp,
                       /*ttl=*/1)
                 .udp(1, 2)
                 .build();
  (*router)->element("dec")->push(0, std::move(p));  // ttl 1 -> 0, ok
  Packet dead = net::PacketBuilder()
                    .eth(MacAddr::from_u64(1), MacAddr::from_u64(2))
                    .ipv4(Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), net::ipproto::kUdp, 0)
                    .udp(1, 2)
                    .build();
  (*router)->element("dec")->push(0, std::move(dead));
  EXPECT_EQ((*router)->call_read("ok.count").value(), "1");
  EXPECT_EQ((*router)->call_read("exp.count").value(), "1");
}

TEST(Elements, IPRewriterRewrites) {
  EventScheduler sched;
  auto router = build_router(R"(
    rw :: IPRewriter(SRC_IP 192.168.1.1, DST_PORT 8080);
    out :: ToDevice(DEVNAME out0);
    rw -> out;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  Collector sink;
  sink.attach(**router, "out");
  (*router)->element("rw")->push(0, test_packet());
  ASSERT_EQ(sink.packets.size(), 1u);
  auto key = net::extract_flow_key(sink.packets[0], 0);
  EXPECT_EQ(key->nw_src, Ipv4Addr(192, 168, 1, 1));
  EXPECT_EQ(key->tp_dst, 8080);
  EXPECT_EQ(key->tp_src, 1000);  // untouched
}

TEST(Elements, DelayDefersDelivery) {
  EventScheduler sched;
  auto router = build_router(R"(
    d :: Delay(DELAY 5000000);
    cnt :: Counter;
    d -> cnt -> Discard;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  (*router)->element("d")->push(0, test_packet());
  sched.run_until(milliseconds(4));
  EXPECT_EQ((*router)->call_read("cnt.count").value(), "0");
  sched.run_until(milliseconds(6));
  EXPECT_EQ((*router)->call_read("cnt.count").value(), "1");
}

TEST(Elements, MeterSplitsConformingAndExcess) {
  EventScheduler sched;
  auto router = build_router(R"(
    m :: Meter(RATE 10);
    ok :: Counter; over :: Counter;
    m[0] -> ok -> Discard; m[1] -> over -> Discard;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  for (int i = 0; i < 100; ++i) (*router)->element("m")->push(0, test_packet());
  auto ok = *strings::parse_u64((*router)->call_read("ok.count").value());
  auto over = *strings::parse_u64((*router)->call_read("over.count").value());
  EXPECT_EQ(ok + over, 100u);
  EXPECT_LE(ok, 10u);  // burst-limited
  EXPECT_GE(over, 90u);
}

TEST(Elements, RandomSampleDropRateCalibrated) {
  EventScheduler sched;
  auto router = build_router(R"(
    rs :: RandomSample(P 0.25, SEED 7);
    kept :: Counter;
    rs -> kept -> Discard;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  for (int i = 0; i < 4000; ++i) (*router)->element("rs")->push(0, test_packet());
  auto kept = *strings::parse_u64((*router)->call_read("kept.count").value());
  EXPECT_NEAR(static_cast<double>(kept) / 4000.0, 0.25, 0.03);
}

TEST(Elements, FirewallRulesFirstMatchAndHandlers) {
  EventScheduler sched;
  auto router = build_router(R"(
    fw :: Firewall(RULES "deny udp && dst port 53; allow udp", DEFAULT deny);
    ok :: Counter; no :: Counter;
    fw[0] -> ok -> Discard; fw[1] -> no -> Discard;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  Element* fw = (*router)->element("fw");
  fw->push(0, test_packet(53));   // denied by rule 1
  fw->push(0, test_packet(100));  // allowed by rule 2
  Packet arp = net::PacketBuilder()
                   .eth(MacAddr::from_u64(1), MacAddr::broadcast(), net::ethertype::kArp)
                   .arp(net::ArpView::kRequest, MacAddr::from_u64(1), Ipv4Addr(1, 1, 1, 1),
                        MacAddr(), Ipv4Addr(2, 2, 2, 2))
                   .build();
  fw->push(0, std::move(arp));  // default deny
  EXPECT_EQ((*router)->call_read("fw.accepted").value(), "1");
  EXPECT_EQ((*router)->call_read("fw.denied").value(), "2");

  // Runtime rule addition through the write handler.
  ASSERT_TRUE((*router)->call_write("fw.add_rule", "allow arp").ok());
  // New rule is appended, but first match (default deny comes last) --
  // the deny rules above don't match ARP, so ARP is now allowed.
  Packet arp2 = net::PacketBuilder()
                    .eth(MacAddr::from_u64(1), MacAddr::broadcast(), net::ethertype::kArp)
                    .arp(net::ArpView::kRequest, MacAddr::from_u64(1), Ipv4Addr(1, 1, 1, 1),
                         MacAddr(), Ipv4Addr(2, 2, 2, 2))
                    .build();
  fw->push(0, std::move(arp2));
  EXPECT_EQ((*router)->call_read("fw.accepted").value(), "2");
}

TEST(Elements, NaptTranslatesAndReverses) {
  EventScheduler sched;
  auto router = build_router(R"(
    n :: NAPT(EXTERNAL_IP 203.0.113.1, PORT_BASE 40000);
    oext :: ToDevice(DEVNAME out0);
    oint :: ToDevice(DEVNAME out1);
    n[0] -> oext; n[1] -> oint;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  Collector ext, internal;
  ext.attach(**router, "oext");
  internal.attach(**router, "oint");
  Element* n = (*router)->element("n");

  // Outbound: 10.0.0.1:1000 -> rewritten to 203.0.113.1:40000.
  n->push(0, test_packet());
  ASSERT_EQ(ext.packets.size(), 1u);
  auto out_key = net::extract_flow_key(ext.packets[0], 0);
  EXPECT_EQ(out_key->nw_src, Ipv4Addr(203, 0, 113, 1));
  EXPECT_EQ(out_key->tp_src, 40000);

  // Return traffic to the mapped port translates back.
  Packet back = net::make_udp_packet(MacAddr::from_u64(2), MacAddr::from_u64(1),
                                     Ipv4Addr(10, 0, 0, 2), Ipv4Addr(203, 0, 113, 1), 2000,
                                     40000);
  n->push(1, std::move(back));
  ASSERT_EQ(internal.packets.size(), 1u);
  auto in_key = net::extract_flow_key(internal.packets[0], 0);
  EXPECT_EQ(in_key->nw_dst, Ipv4Addr(10, 0, 0, 1));
  EXPECT_EQ(in_key->tp_dst, 1000);

  // Unknown inbound flow dropped.
  Packet stray = net::make_udp_packet(MacAddr::from_u64(2), MacAddr::from_u64(1),
                                      Ipv4Addr(10, 0, 0, 2), Ipv4Addr(203, 0, 113, 1), 2000,
                                      49999);
  n->push(1, std::move(stray));
  EXPECT_EQ(internal.packets.size(), 1u);
  EXPECT_EQ((*router)->call_read("n.dropped").value(), "1");
  EXPECT_EQ((*router)->call_read("n.mappings").value(), "1");

  // Same internal flow reuses its mapping.
  n->push(0, test_packet());
  EXPECT_EQ((*router)->call_read("n.mappings").value(), "1");
}

TEST(Elements, LoadBalancerFlowAffinity) {
  EventScheduler sched;
  auto router = build_router(R"(
    lb :: LoadBalancer(N 2, MODE flow);
    a :: Counter; b :: Counter;
    lb[0] -> a -> Discard; lb[1] -> b -> Discard;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  Element* lb = (*router)->element("lb");
  // Same flow -> same output every time.
  for (int i = 0; i < 10; ++i) lb->push(0, test_packet(1111));
  auto a = *strings::parse_u64((*router)->call_read("a.count").value());
  auto b = *strings::parse_u64((*router)->call_read("b.count").value());
  EXPECT_TRUE((a == 10 && b == 0) || (a == 0 && b == 10));
  // Many flows spread across outputs.
  for (std::uint16_t port = 1; port <= 200; ++port) lb->push(0, test_packet(port));
  a = *strings::parse_u64((*router)->call_read("a.count").value());
  b = *strings::parse_u64((*router)->call_read("b.count").value());
  EXPECT_GT(a, 50u);
  EXPECT_GT(b, 50u);
}

TEST(Elements, DpiCounterFindsPatterns) {
  EventScheduler sched;
  auto router = build_router(R"(
    dpi :: DpiCounter(PATTERNS "attack;beacon");
    dpi -> Discard;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  Element* dpi = (*router)->element("dpi");
  Packet evil = net::PacketBuilder()
                    .eth(MacAddr::from_u64(1), MacAddr::from_u64(2))
                    .ipv4(Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2))
                    .udp(1, 2)
                    .payload(std::string_view("launch attack now"))
                    .build();
  dpi->push(0, std::move(evil));
  dpi->push(0, test_packet());
  EXPECT_EQ((*router)->call_read("dpi.matches_0").value(), "1");
  EXPECT_EQ((*router)->call_read("dpi.matches_1").value(), "0");
  EXPECT_EQ((*router)->call_read("dpi.total").value(), "2");
}

TEST(Elements, FromDeviceToDeviceBridge) {
  EventScheduler sched;
  auto router = build_router(R"(
    from :: FromDevice(DEVNAME in0);
    to :: ToDevice(DEVNAME out0);
    from -> to;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  auto* from = dynamic_cast<FromDevice*>((*router)->element("from"));
  auto* to = dynamic_cast<ToDevice*>((*router)->element("to"));
  EXPECT_EQ(from->devname(), "in0");
  EXPECT_EQ(to->devname(), "out0");
  // Without a sink, packets are counted as drops.
  from->inject(test_packet());
  EXPECT_EQ((*router)->call_read("to.no_sink_drops").value(), "1");
  int delivered = 0;
  to->set_sink([&](Packet&&) { ++delivered; });
  from->inject(test_packet());
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ((*router)->call_read("from.count").value(), "2");
}

TEST(Router, CpuShareScalesDelays) {
  EventScheduler sched;
  Router router(sched);
  router.set_cpu_share(0.5);
  EXPECT_EQ(router.scale_delay(1000), 2000u);
  router.set_cpu_share(1.0);
  EXPECT_EQ(router.scale_delay(1000), 1000u);
  router.set_cpu_share(2.0);  // clamped to 1.0
  EXPECT_DOUBLE_EQ(router.cpu_share(), 1.0);
}

TEST(Router, HandlerDispatchErrors) {
  EventScheduler sched;
  auto router = build_router("c :: Counter; c -> Discard;", sched);
  ASSERT_TRUE(router.ok());
  EXPECT_FALSE((*router)->call_read("nope.count").ok());
  EXPECT_FALSE((*router)->call_read("c.nope").ok());
  EXPECT_FALSE((*router)->call_read("no-dot").ok());
  EXPECT_TRUE((*router)->call_write("c.reset", "").ok());
}

TEST(Router, ListReadHandlersCoversElements) {
  EventScheduler sched;
  auto router = build_router("c :: Counter; q :: Queue; c -> q;", sched);
  ASSERT_TRUE(router.ok());
  auto names = (*router)->list_read_handlers();
  EXPECT_NE(std::find(names.begin(), names.end(), "c.count"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "q.length"), names.end());
}


// --- elementclass compounds -----------------------------------------------------

TEST(Compounds, BasicExpansion) {
  auto parsed = parse_config(R"(
    elementclass CountedPath {
      input -> c :: Counter -> output;
    }
    src :: InfiniteSource(LIMIT 5);
    cp :: CountedPath;
    src -> cp -> Discard;
  )");
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  // The compound instance disappears; its inner Counter is prefixed.
  bool found_inner = false;
  for (const auto& d : parsed->declarations) {
    EXPECT_NE(d.class_name, "CountedPath");
    if (d.name == "cp/c") {
      EXPECT_EQ(d.class_name, "Counter");
      found_inner = true;
    }
  }
  EXPECT_TRUE(found_inner);
}

TEST(Compounds, RunsEndToEnd) {
  EventScheduler sched;
  auto router = build_router(R"(
    elementclass CountedQueue {
      input -> q :: Queue(100);
      q -> u :: Unqueue -> cnt :: Counter -> output;
    }
    src :: InfiniteSource(LIMIT 50, BURST 10);
    cq :: CountedQueue;
    sink :: Counter;
    src -> cq -> sink -> Discard;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  sched.run();
  EXPECT_EQ((*router)->call_read("cq/cnt.count").value(), "50");
  EXPECT_EQ((*router)->call_read("sink.count").value(), "50");
}

TEST(Compounds, MultiplePortsAndInstances) {
  EventScheduler sched;
  auto router = build_router(R"(
    elementclass Splitter {
      input -> cl :: IPClassifier(udp && dst port 53, -);
      cl[0] -> output;
      cl[1] -> [1]output;
    }
    a :: Splitter;
    dns :: Counter; rest :: Counter;
    a[0] -> dns -> Discard;
    a[1] -> rest -> Discard;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  Element* in = (*router)->element("a/cl");
  ASSERT_NE(in, nullptr);
  in->push(0, test_packet(53));
  in->push(0, test_packet(99));
  EXPECT_EQ((*router)->call_read("dns.count").value(), "1");
  EXPECT_EQ((*router)->call_read("rest.count").value(), "1");
}

TEST(Compounds, TwoInstancesOfSameClass) {
  EventScheduler sched;
  auto router = build_router(R"(
    elementclass M { input -> c :: Counter -> output; }
    s1 :: InfiniteSource(LIMIT 3);
    s2 :: InfiniteSource(LIMIT 7);
    m1 :: M; m2 :: M;
    s1 -> m1 -> Discard;
    s2 -> m2 -> Discard;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  sched.run();
  EXPECT_EQ((*router)->call_read("m1/c.count").value(), "3");
  EXPECT_EQ((*router)->call_read("m2/c.count").value(), "7");
}

TEST(Compounds, NestedCompounds) {
  EventScheduler sched;
  auto router = build_router(R"(
    elementclass Inner { input -> c :: Counter -> output; }
    elementclass Outer { input -> i :: Inner -> output; }
    src :: InfiniteSource(LIMIT 4);
    o :: Outer;
    src -> o -> Discard;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  sched.run();
  EXPECT_EQ((*router)->call_read("o/i/c.count").value(), "4");
}

TEST(Compounds, Errors) {
  // Unterminated body.
  EXPECT_FALSE(parse_config("elementclass X { input -> Discard;").ok());
  // input -> output passthrough unsupported.
  EXPECT_FALSE(parse_config(R"(
    elementclass P { input -> output; }
    a :: P;
  )").ok());
  // Referencing a port the compound does not expose.
  auto r = parse_config(R"(
    elementclass O { input -> c :: Counter -> output; }
    s :: InfiniteSource; o :: O;
    s -> [1]o;
  )");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "click.config.compound-port");
  // Compounds take no configuration.
  EXPECT_FALSE(parse_config(R"(
    elementclass O { input -> c :: Counter -> output; }
    o :: O(42);
  )").ok());
  // Conflicting redefinition.
  EXPECT_FALSE(parse_config(R"(
    elementclass O { input -> c :: Counter -> output; }
    elementclass O { input -> q :: Queue -> output; }
  )").ok());
  // input/output outside a compound body are plain undeclared names.
  EXPECT_FALSE(parse_config("input -> Discard;").ok());
}


// --- pull schedulers --------------------------------------------------------------

TEST(Elements, RoundRobinSchedInterleavesQueues) {
  EventScheduler sched;
  auto router = build_router(R"(
    qa :: Queue(100); qb :: Queue(100);
    rr :: RoundRobinSched(2);
    u :: Unqueue(BURST 1, INTERVAL 100);
    out :: ToDevice(DEVNAME out0);
    qa -> [0]rr; qb -> [1]rr;
    rr -> u -> out;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  Collector sink;
  sink.attach(**router, "out");
  auto* qa = dynamic_cast<Queue*>((*router)->element("qa"));
  auto* qb = dynamic_cast<Queue*>((*router)->element("qb"));
  for (int i = 0; i < 4; ++i) {
    Packet a = test_packet();
    a.set_paint(1);
    qa->push(0, std::move(a));
    Packet b = test_packet();
    b.set_paint(2);
    qb->push(0, std::move(b));
  }
  sched.run();
  ASSERT_EQ(sink.packets.size(), 8u);
  // Strict alternation between the two queues.
  for (std::size_t i = 0; i + 1 < sink.packets.size(); ++i) {
    EXPECT_NE(sink.packets[i].paint(), sink.packets[i + 1].paint()) << i;
  }
}

TEST(Elements, RoundRobinSchedSkipsEmptyInputs) {
  EventScheduler sched;
  auto router = build_router(R"(
    qa :: Queue(100); qb :: Queue(100);
    rr :: RoundRobinSched(2);
    u :: Unqueue(BURST 1, INTERVAL 100);
    cnt :: Counter;
    qa -> [0]rr; qb -> [1]rr;
    rr -> u -> cnt -> Discard;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  auto* qb = dynamic_cast<Queue*>((*router)->element("qb"));
  for (int i = 0; i < 5; ++i) qb->push(0, test_packet());
  sched.run();
  EXPECT_EQ((*router)->call_read("cnt.count").value(), "5");
}

TEST(Elements, PrioSchedStrictPriority) {
  EventScheduler sched;
  auto router = build_router(R"(
    hi :: Queue(100); lo :: Queue(100);
    prio :: PrioSched(2);
    u :: Unqueue(BURST 1, INTERVAL 100);
    out :: ToDevice(DEVNAME out0);
    hi -> [0]prio; lo -> [1]prio;
    prio -> u -> out;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  Collector sink;
  sink.attach(**router, "out");
  auto* hi = dynamic_cast<Queue*>((*router)->element("hi"));
  auto* lo = dynamic_cast<Queue*>((*router)->element("lo"));
  for (int i = 0; i < 3; ++i) {
    Packet h = test_packet();
    h.set_paint(1);
    hi->push(0, std::move(h));
    Packet l = test_packet();
    l.set_paint(2);
    lo->push(0, std::move(l));
  }
  sched.run();
  ASSERT_EQ(sink.packets.size(), 6u);
  // All high-priority packets drain before any low-priority one.
  for (int i = 0; i < 3; ++i) EXPECT_EQ(sink.packets[static_cast<std::size_t>(i)].paint(), 1);
  for (int i = 3; i < 6; ++i) EXPECT_EQ(sink.packets[static_cast<std::size_t>(i)].paint(), 2);
  EXPECT_EQ((*router)->call_read("prio.served_0").value(), "3");
  EXPECT_EQ((*router)->call_read("prio.served_1").value(), "3");
}

TEST(Elements, DrainTaskWakesThroughScheduler) {
  // The Unqueue sits behind a scheduler, not directly behind a Queue:
  // wake-up registration must walk the pull graph.
  EventScheduler sched;
  auto router = build_router(R"(
    q :: Queue(100);
    rr :: RoundRobinSched(1);
    u :: Unqueue(BURST 1, INTERVAL 100);
    cnt :: Counter;
    q -> [0]rr; rr -> u -> cnt -> Discard;
  )", sched);
  ASSERT_TRUE(router.ok()) << router.error().to_string();
  sched.run();  // drain task goes idle (everything empty)
  auto* q = dynamic_cast<Queue*>((*router)->element("q"));
  q->push(0, test_packet());  // must wake the task through the scheduler
  sched.run();
  EXPECT_EQ((*router)->call_read("cnt.count").value(), "1");
}

}  // namespace
}  // namespace escape::click
