// Experiment E1: chain setup latency vs. chain length and topology size.
//
// setup_virtual_ms is the virtual time from deploy() start to the chain
// forwarding (veth creation + sequential NETCONF RPCs + steering
// flow-mods + settle); it grows linearly in chain length because the
// management-plane RPCs dominate and are serialized per VNF -- exactly
// the behaviour a real ESCAPE deployment shows against OpenYuma agents.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

using namespace escape;
using benchutil::build_linear;
using benchutil::monitor_chain;

static void BM_ChainSetup(benchmark::State& state) {
  const int chain_len = static_cast<int>(state.range(0));
  const int switches = static_cast<int>(state.range(1));

  double setup_ms = 0;
  double rpcs = 0;
  for (auto _ : state) {
    Environment env;
    build_linear(env, switches);
    if (auto s = env.start(); !s.ok()) {
      state.SkipWithError(s.error().message.c_str());
      break;
    }
    auto chain = env.deploy(monitor_chain(chain_len));
    if (!chain.ok()) {
      state.SkipWithError(chain.error().message.c_str());
      break;
    }
    setup_ms = static_cast<double>(env.deployment(*chain)->record.setup_latency()) /
               timeunit::kMillisecond;
    rpcs = static_cast<double>(chain_len) * 4;  // initiate+start+2x connect
  }
  state.counters["setup_virtual_ms"] = setup_ms;
  state.counters["netconf_rpcs"] = rpcs;
  state.counters["chain_len"] = chain_len;
  state.counters["switches"] = switches;
}
BENCHMARK(BM_ChainSetup)
    ->ArgsProduct({{1, 2, 3, 4, 6, 8}, {2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

/// Ablation: how much of the setup latency is the management plane?
/// Sweep the NETCONF control-network delay at fixed chain length.
static void BM_ChainSetup_NetconfDelay(benchmark::State& state) {
  const auto delay_us = static_cast<std::uint64_t>(state.range(0));
  double setup_ms = 0;
  for (auto _ : state) {
    Environment env{EnvironmentOptions{.netconf_delay = delay_us * timeunit::kMicrosecond}};
    build_linear(env, 4);
    if (auto s = env.start(); !s.ok()) {
      state.SkipWithError(s.error().message.c_str());
      break;
    }
    auto chain = env.deploy(monitor_chain(4));
    if (!chain.ok()) {
      state.SkipWithError(chain.error().message.c_str());
      break;
    }
    setup_ms = static_cast<double>(env.deployment(*chain)->record.setup_latency()) /
               timeunit::kMillisecond;
  }
  state.counters["setup_virtual_ms"] = setup_ms;
  state.counters["netconf_delay_us"] = static_cast<double>(delay_us);
}
BENCHMARK(BM_ChainSetup_NetconfDelay)
    ->Arg(50)->Arg(200)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

ESCAPE_BENCH_MAIN("chain_setup");
