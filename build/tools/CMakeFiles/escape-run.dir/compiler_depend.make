# Empty compiler generated dependencies file for escape-run.
# This may be replaced when dependencies are built.
