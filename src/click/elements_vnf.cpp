// VNF-level elements: the building blocks of the ESCAPE VNF catalog
// (firewall, NAPT, load balancer, DPI).
#include "click/elements.hpp"
#include "click/router.hpp"
#include "net/headers.hpp"
#include "util/strings.hpp"

namespace escape::click {

// --- Firewall -------------------------------------------------------------------

Firewall::Firewall() {
  declare_ports({PortMode::kPush}, {PortMode::kPush, PortMode::kPush});
  add_read_handler("accepted", [this] { return std::to_string(accepted_); });
  add_read_handler("denied", [this] { return std::to_string(denied_); });
  add_read_handler("rules", [this] {
    std::string out;
    for (const auto& r : rules_) {
      out += r.allow ? "allow " : "deny ";
      out += r.expr.source();
      out += '\n';
    }
    return out;
  });
  add_write_handler("add_rule", [this](std::string_view line) { return add_rule_line(line); });
}

Status Firewall::add_rule_line(std::string_view line) {
  line = strings::trim(line);
  bool allow;
  if (strings::starts_with(line, "allow ")) {
    allow = true;
    line.remove_prefix(6);
  } else if (strings::starts_with(line, "deny ")) {
    allow = false;
    line.remove_prefix(5);
  } else {
    return make_error("click.config.bad-arg",
                      "firewall rule must start with 'allow' or 'deny'");
  }
  auto expr = FilterExpr::compile(line);
  if (!expr.ok()) return expr.error();
  rules_.push_back({allow, std::move(*expr)});
  // Runtime rule additions (the add_rule handler) must reach the
  // compiled dispatch too; before initialize() the tree is rebuilt there.
  if (tree_.compiled()) recompile_tree();
  return ok_status();
}

void Firewall::recompile_tree() {
  std::vector<ClassifierTree::RuleSpec> specs;
  specs.reserve(rules_.size());
  for (const Rule& r : rules_) specs.push_back({r.allow ? 1 : 0, &r.expr});
  tree_.compile(specs, /*miss_verdict=*/default_allow_ ? 1 : 0);
}

Status Firewall::configure(const ConfigArgs& args) {
  rules_.clear();
  if (auto v = args.keyword("RULES")) {
    std::string_view rules = strings::trim(*v);
    // Rules may be quoted as one string; strip the quotes.
    if (rules.size() >= 2 && rules.front() == '"' && rules.back() == '"') {
      rules = rules.substr(1, rules.size() - 2);
    }
    for (const auto& line : strings::split_trimmed(rules, ';')) {
      if (auto s = add_rule_line(line); !s.ok()) return s;
    }
  }
  if (auto v = args.keyword("DEFAULT")) {
    if (strings::iequals(*v, "allow")) default_allow_ = true;
    else if (strings::iequals(*v, "deny")) default_allow_ = false;
    else return make_error("click.config.bad-arg", "DEFAULT must be allow or deny");
  }
  return ok_status();
}

Status Firewall::initialize(Router& router) {
  bool tuple_only = true;
  for (const Rule& r : rules_) tuple_only = tuple_only && r.expr.tuple_only();
  cache_.attach(router, tuple_only);
  recompile_tree();
  add_read_handler("flow_cache_hits", [this] { return std::to_string(cache_.hits()); });
  add_read_handler("tree_residual_rules",
                   [this] { return std::to_string(tree_.residual_rules()); });
  return ok_status();
}

bool Firewall::allow_cached(const Packet& p) {
  // Per-flow verdict first: an established flow skips the rule walk.
  if (auto v = cache_.cached()) return *v != 0;
  const ClassifyCtx ctx = ClassifyCtx::from_packet(p);
  bool allow;
  if (tree_.compiled()) {
    allow = tree_.classify(ctx) != 0;
  } else {
    allow = default_allow_;
    for (const auto& rule : rules_) {
      if (rule.expr.matches(ctx)) {
        allow = rule.allow;
        break;  // first match wins
      }
    }
  }
  cache_.store(allow ? 1 : 0);
  return allow;
}

void Firewall::push(int, Packet&& p) {
  const bool allow = allow_cached(p);
  if (allow) {
    ++accepted_;
    output_push(0, std::move(p));
  } else {
    ++denied_;
    if (output_connected(1)) output_push(1, std::move(p));
  }
}

void Firewall::push_batch(int, PacketBatch&& batch) {
  RunEmitter out(*this, std::move(batch));
  // Flow-run verdict cache: byte-identical headers hit the same rule,
  // so a run of one flow walks the rule list once.
  const Packet* prev = nullptr;
  bool prev_allow = false;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const Packet& p = out[i];
    const bool allow = (prev && classify_equivalent(*prev, p)) ? prev_allow : allow_cached(p);
    prev = &p;
    prev_allow = allow;
    if (allow) {
      ++accepted_;
      out.keep(i, 0);
    } else {
      ++denied_;
      if (output_connected(1)) out.keep(i, 1);
    }
  }
}

// --- NAPT ------------------------------------------------------------------------

NAPT::NAPT() {
  declare_ports({PortMode::kPush, PortMode::kPush}, {PortMode::kPush, PortMode::kPush});
  add_read_handler("mappings", [this] { return std::to_string(by_internal_.size()); });
  add_read_handler("translated", [this] { return std::to_string(translated_); });
  add_read_handler("dropped", [this] { return std::to_string(dropped_); });
}

Status NAPT::configure(const ConfigArgs& args) {
  if (auto v = args.keyword("EXTERNAL_IP")) {
    auto a = net::Ipv4Addr::parse(*v);
    if (!a) return make_error("click.config.bad-arg", "invalid EXTERNAL_IP: " + *v);
    external_ip_ = *a;
  }
  if (auto v = args.keyword_u64("PORT_BASE")) {
    if (*v == 0 || *v > 65535) {
      return make_error("click.config.bad-arg", "PORT_BASE must be 1..65535");
    }
    next_port_ = static_cast<std::uint16_t>(*v);
  }
  return ok_status();
}

void NAPT::push(int port, Packet&& p) {
  auto key = net::extract_flow_key(p, 0);
  const bool is_l4 = key && key->dl_type == net::ethertype::kIpv4 &&
                     (key->nw_proto == net::ipproto::kTcp ||
                      key->nw_proto == net::ipproto::kUdp);
  if (!is_l4) {
    ++dropped_;
    return;
  }

  if (port == 0) {
    // Internal -> external: allocate (or reuse) a mapping, rewrite source.
    InternalKey ik{key->nw_src.value(), key->tp_src, key->nw_proto};
    auto it = by_internal_.find(ik);
    std::uint16_t ext_port;
    if (it != by_internal_.end()) {
      ext_port = it->second;
    } else {
      ext_port = next_port_++;
      by_internal_[ik] = ext_port;
      by_external_[ext_port] = ik;
    }
    net::set_ipv4_src(p, external_ip_);
    net::set_l4_src_port(p, ext_port);
    ++translated_;
    output_push(0, std::move(p));
  } else {
    // External -> internal: translate destination back, or drop.
    auto it = by_external_.find(key->tp_dst);
    if (it == by_external_.end() || key->nw_dst != external_ip_) {
      ++dropped_;
      return;
    }
    net::set_ipv4_dst(p, net::Ipv4Addr(it->second.ip));
    net::set_l4_dst_port(p, it->second.port);
    ++translated_;
    output_push(1, std::move(p));
  }
}

// --- LoadBalancer ---------------------------------------------------------------

LoadBalancer::LoadBalancer() {
  declare_ports({PortMode::kPush}, {PortMode::kPush, PortMode::kPush});
}

Status LoadBalancer::configure(const ConfigArgs& args) {
  std::uint64_t n = 2;
  if (auto v = args.keyword_or_positional("N", 0)) {
    auto parsed = strings::parse_u64(*v);
    if (!parsed || *parsed == 0 || *parsed > 64) {
      return make_error("click.config.bad-arg", "LoadBalancer N must be 1..64");
    }
    n = *parsed;
  }
  if (auto v = args.keyword("MODE")) {
    if (strings::iequals(*v, "flow")) per_flow_ = true;
    else if (strings::iequals(*v, "packet")) per_flow_ = false;
    else return make_error("click.config.bad-arg", "MODE must be flow or packet");
  }
  declare_ports({PortMode::kPush}, std::vector<PortMode>(n, PortMode::kPush));
  out_counts_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    add_read_handler(strings::format("out%zu_count", i),
                     [this, i] { return std::to_string(out_counts_[i]); });
  }
  return ok_status();
}

void LoadBalancer::push(int, Packet&& p) {
  std::size_t port;
  const auto n = static_cast<std::size_t>(n_outputs());
  if (per_flow_) {
    auto key = net::extract_flow_key(p, 0);
    port = key ? std::hash<net::FlowKey>{}(*key) % n : 0;
  } else {
    port = rr_next_++ % n;
  }
  ++out_counts_[port];
  output_push(static_cast<int>(port), std::move(p));
}

// --- DpiCounter -------------------------------------------------------------------

DpiCounter::DpiCounter() {
  add_read_handler("total", [this] { return std::to_string(total_); });
}

Status DpiCounter::configure(const ConfigArgs& args) {
  patterns_.clear();
  if (auto v = args.keyword_or_positional("PATTERNS", 0)) {
    std::string_view raw = strings::trim(*v);
    if (raw.size() >= 2 && raw.front() == '"' && raw.back() == '"') {
      raw = raw.substr(1, raw.size() - 2);
    }
    for (const auto& pat : strings::split_trimmed(raw, ';')) patterns_.push_back(pat);
  }
  hits_.assign(patterns_.size(), 0);
  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    add_read_handler(strings::format("matches_%zu", i),
                     [this, i] { return std::to_string(hits_[i]); });
  }
  return ok_status();
}

DpiCounter::Verdict DpiCounter::process(Packet& p) {
  ++total_;
  if (!patterns_.empty()) {
    // Inspect the payload bytes after the Ethernet header.
    std::string_view haystack(reinterpret_cast<const char*>(p.data().data()), p.size());
    for (std::size_t i = 0; i < patterns_.size(); ++i) {
      if (haystack.find(patterns_[i]) != std::string_view::npos) ++hits_[i];
    }
  }
  return {true, 0};
}

// --- FromDevice / ToDevice -----------------------------------------------------------

FromDevice::FromDevice() {
  declare_ports({}, {PortMode::kPush});
  add_read_handler("count", [this] { return std::to_string(received_); });
  add_read_handler("devname", [this] { return devname_; });
}

Status FromDevice::configure(const ConfigArgs& args) {
  if (auto v = args.keyword_or_positional("DEVNAME", 0)) devname_ = *v;
  return ok_status();
}

void FromDevice::inject(Packet&& p) {
  ++received_;
  output_push(0, std::move(p));
}

void FromDevice::inject_batch(PacketBatch&& batch) {
  received_ += batch.size();
  output_push_batch(0, std::move(batch));
}

ToDevice::ToDevice() {
  declare_ports({PortMode::kPush}, {});
  add_read_handler("count", [this] { return std::to_string(sent_); });
  add_read_handler("devname", [this] { return devname_; });
  add_read_handler("no_sink_drops", [this] { return std::to_string(no_sink_drops_); });
}

Status ToDevice::configure(const ConfigArgs& args) {
  if (auto v = args.keyword_or_positional("DEVNAME", 0)) devname_ = *v;
  return ok_status();
}

void ToDevice::push(int, Packet&& p) {
  if (!sink_) {
    ++no_sink_drops_;
    return;
  }
  ++sent_;
  sink_(std::move(p));
}

}  // namespace escape::click
