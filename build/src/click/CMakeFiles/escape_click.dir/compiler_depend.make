# Empty compiler generated dependencies file for escape_click.
# This may be replaced when dependencies are built.
