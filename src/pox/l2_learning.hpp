// POX's classic l2_learning component: MAC learning switch used for the
// parts of the network that are not steered by service chains (e.g. the
// management / control network).
#pragma once

#include <map>
#include <unordered_map>

#include "pox/core.hpp"

namespace escape::pox {

class L2Learning : public App {
 public:
  /// idle_timeout for installed exact-match flows (0 = permanent).
  explicit L2Learning(SimDuration idle_timeout = 10 * timeunit::kSecond)
      : idle_timeout_(idle_timeout) {}

  std::string_view name() const override { return "l2_learning"; }

  bool on_packet_in(SwitchConnection& conn, const openflow::PacketIn& msg) override;
  // Learned MACs are port-bindings on one datapath incarnation: a dead
  // channel or a restarted/reconnected switch invalidates them (ports
  // may renumber, the network may have reconverged), so both edges drop
  // the dpid's table instead of steering traffic by stale mappings.
  void on_connection_down(SwitchConnection& conn) override;
  void on_connection_up(SwitchConnection& conn) override;

  /// Learned MAC -> port table of one switch (for tests).
  const std::unordered_map<net::MacAddr, std::uint16_t>* table(DatapathId dpid) const;

  std::uint64_t floods() const { return floods_; }
  std::uint64_t installs() const { return installs_; }

 private:
  SimDuration idle_timeout_;
  std::map<DatapathId, std::unordered_map<net::MacAddr, std::uint16_t>> tables_;
  std::uint64_t floods_ = 0;
  std::uint64_t installs_ = 0;
};

}  // namespace escape::pox
