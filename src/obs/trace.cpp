#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>

#include "util/event.hpp"

namespace escape::obs {

std::string_view trace_phase_name(TracePhase phase) {
  switch (phase) {
    case TracePhase::kInstant: return "instant";
    case TracePhase::kBegin: return "begin";
    case TracePhase::kEnd: return "end";
  }
  return "unknown";
}

TraceRing::TraceRing(std::size_t capacity) : capacity_(capacity ? capacity : 1) {
  ring_.reserve(capacity_);
}

void TraceRing::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity ? capacity : 1;
  ring_.clear();
  ring_.reserve(capacity_);
  head_ = size_ = 0;
  total_ = 0;  // the old events are discarded, not "dropped"
}

std::size_t TraceRing::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void TraceRing::set_shard(std::uint32_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  shard_ = shard;
}

std::uint32_t TraceRing::shard() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shard_;
}

void TraceRing::push(TraceEvent&& event) {
  std::lock_guard<std::mutex> lock(mu_);
  event.shard = shard_;
  event.seq = next_seq_++;
  ++total_;
  if (size_ < capacity_) {
    ring_.push_back(std::move(event));
    ++size_;
    return;
  }
  ring_[head_] = std::move(event);
  head_ = (head_ + 1) % capacity_;
}

void TraceRing::instant(SimTime ts, std::string_view category, std::string_view name,
                        std::string arg) {
  push(TraceEvent{ts, TracePhase::kInstant, 0, 0, 0, std::string(category),
                  std::string(name), std::move(arg)});
}

std::uint64_t TraceRing::begin_span(SimTime ts, std::string_view category,
                                    std::string_view name, std::string arg) {
  std::uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Shard index in the low byte keeps ids unique across the per-shard
    // rings without any cross-ring coordination; never 0.
    id = (next_span_++ << 8) | (shard_ & 0xffu);
  }
  push(TraceEvent{ts, TracePhase::kBegin, id, 0, 0, std::string(category),
                  std::string(name), std::move(arg)});
  return id;
}

void TraceRing::end_span(std::uint64_t span_id, SimTime ts, std::string arg) {
  push(TraceEvent{ts, TracePhase::kEnd, span_id, 0, 0, "", "", std::move(arg)});
}

std::vector<TraceEvent> TraceRing::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(head_ + i) % size_]);
  }
  return out;
}

std::size_t TraceRing::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

std::uint64_t TraceRing::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t TraceRing::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - size_;
}

void TraceRing::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = size_ = 0;
  total_ = 0;
}

json::Value TraceRing::to_json() const {
  json::Array events;
  for (const auto& e : this->events()) {
    json::Object o;
    o["ts"] = e.ts;
    o["phase"] = std::string(trace_phase_name(e.phase));
    if (e.shard) o["shard"] = static_cast<std::uint64_t>(e.shard);
    if (e.span_id) o["span"] = e.span_id;
    if (!e.category.empty()) o["category"] = e.category;
    if (!e.name.empty()) o["name"] = e.name;
    if (!e.arg.empty()) o["arg"] = e.arg;
    events.push_back(std::move(o));
  }
  json::Object doc;
  doc["events"] = std::move(events);
  doc["dropped"] = dropped();
  return doc;
}

namespace {
// Per-shard rings, created on first use and intentionally leaked (the
// usual singleton pattern, immune to static destruction order). Lazy
// creation keeps the common single-shard case at one ring.
constexpr std::size_t kMaxShardRings = 256;
std::atomic<TraceRing*> g_rings[kMaxShardRings];
}  // namespace

TraceRing& shard_tracer(std::size_t shard) {
  shard %= kMaxShardRings;
  TraceRing* ring = g_rings[shard].load(std::memory_order_acquire);
  if (ring == nullptr) {
    auto* fresh = new TraceRing();
    fresh->set_shard(static_cast<std::uint32_t>(shard));
    TraceRing* expected = nullptr;
    if (g_rings[shard].compare_exchange_strong(expected, fresh, std::memory_order_acq_rel)) {
      ring = fresh;
    } else {
      delete fresh;  // another shard's worker won the race
      ring = expected;
    }
  }
  return *ring;
}

TraceRing& tracer() { return shard_tracer(current_shard_id()); }

std::vector<TraceEvent> merged_trace_events() {
  std::vector<TraceEvent> all;
  for (std::size_t i = 0; i < kMaxShardRings; ++i) {
    TraceRing* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    auto events = ring->events();
    all.insert(all.end(), std::make_move_iterator(events.begin()),
               std::make_move_iterator(events.end()));
  }
  std::sort(all.begin(), all.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.seq < b.seq;
  });
  return all;
}

json::Value merged_trace_json() {
  json::Array events;
  std::uint64_t dropped = 0;
  for (std::size_t i = 0; i < kMaxShardRings; ++i) {
    TraceRing* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring != nullptr) dropped += ring->dropped();
  }
  for (const auto& e : merged_trace_events()) {
    json::Object o;
    o["ts"] = e.ts;
    o["phase"] = std::string(trace_phase_name(e.phase));
    if (e.shard) o["shard"] = static_cast<std::uint64_t>(e.shard);
    if (e.span_id) o["span"] = e.span_id;
    if (!e.category.empty()) o["category"] = e.category;
    if (!e.name.empty()) o["name"] = e.name;
    if (!e.arg.empty()) o["arg"] = e.arg;
    events.push_back(std::move(o));
  }
  json::Object doc;
  doc["events"] = std::move(events);
  doc["dropped"] = dropped;
  return doc;
}

void clear_all_tracers() {
  for (std::size_t i = 0; i < kMaxShardRings; ++i) {
    TraceRing* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring != nullptr) ring->clear();
  }
}

}  // namespace escape::obs
