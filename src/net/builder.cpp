#include "net/builder.hpp"

#include <algorithm>
#include <cassert>

namespace escape::net {

PacketBuilder& PacketBuilder::eth(MacAddr src, MacAddr dst, std::uint16_t ethertype) {
  eth_ = EthSpec{src, dst, ethertype};
  return *this;
}

PacketBuilder& PacketBuilder::ipv4(Ipv4Addr src, Ipv4Addr dst, std::uint8_t protocol,
                                   std::uint8_t ttl, std::uint8_t dscp) {
  ip_ = IpSpec{src, dst, protocol, ttl, dscp};
  if (eth_) eth_->ethertype = ethertype::kIpv4;
  return *this;
}

PacketBuilder& PacketBuilder::udp(std::uint16_t src_port, std::uint16_t dst_port) {
  udp_ = UdpSpec{src_port, dst_port};
  if (ip_) ip_->protocol = ipproto::kUdp;
  return *this;
}

PacketBuilder& PacketBuilder::tcp(const TcpFields& fields) {
  tcp_ = fields;
  if (ip_) ip_->protocol = ipproto::kTcp;
  return *this;
}

PacketBuilder& PacketBuilder::icmp_echo(std::uint8_t type, std::uint16_t identifier,
                                        std::uint16_t sequence) {
  icmp_ = IcmpSpec{type, identifier, sequence};
  if (ip_) ip_->protocol = ipproto::kIcmp;
  return *this;
}

PacketBuilder& PacketBuilder::arp(std::uint16_t opcode, MacAddr sender_mac, Ipv4Addr sender_ip,
                                  MacAddr target_mac, Ipv4Addr target_ip) {
  arp_ = ArpSpec{opcode, sender_mac, target_mac, sender_ip, target_ip};
  if (eth_) eth_->ethertype = ethertype::kArp;
  return *this;
}

PacketBuilder& PacketBuilder::payload(std::span<const std::uint8_t> data) {
  payload_.assign(data.begin(), data.end());
  return *this;
}

PacketBuilder& PacketBuilder::payload(std::string_view text) {
  payload_.assign(text.begin(), text.end());
  return *this;
}

PacketBuilder& PacketBuilder::pad_to(std::size_t frame_size) {
  pad_to_ = frame_size;
  return *this;
}

Packet PacketBuilder::build() const {
  assert(eth_ && "PacketBuilder: Ethernet header is mandatory");

  // Compute layer sizes first.
  std::size_t l4_size = 0;
  if (udp_) l4_size = UdpView::kSize + payload_.size();
  else if (tcp_) l4_size = TcpView::kMinSize + payload_.size();
  else if (icmp_) l4_size = IcmpView::kMinSize + payload_.size();
  else if (!arp_) l4_size = payload_.size();  // raw payload directly over IP/Ethernet

  std::size_t l3_size = 0;
  if (arp_) l3_size = ArpView::kSize;
  else if (ip_) l3_size = Ipv4View::kMinSize + l4_size;
  else l3_size = l4_size;

  std::size_t frame_size = EthernetView::kSize + l3_size;
  frame_size = std::max(frame_size, pad_to_);

  std::vector<std::uint8_t> buf(frame_size, 0);
  std::span<std::uint8_t> out(buf);

  write_ethernet(out, eth_->dst, eth_->src, eth_->ethertype);
  auto l3 = out.subspan(EthernetView::kSize);

  if (arp_) {
    write_arp(l3, arp_->opcode, arp_->sender_mac, arp_->sender_ip, arp_->target_mac,
              arp_->target_ip);
    return Packet(std::move(buf));
  }

  std::span<std::uint8_t> l4 = l3;
  if (ip_) {
    // Include padding inside the IP payload so length fields stay
    // consistent with the wire size.
    const std::size_t ip_total = frame_size - EthernetView::kSize;
    Ipv4Fields f;
    f.src = ip_->src;
    f.dst = ip_->dst;
    f.protocol = ip_->protocol;
    f.ttl = ip_->ttl;
    f.dscp = ip_->dscp;
    f.total_length = static_cast<std::uint16_t>(ip_total);
    write_ipv4(l3, f);
    l4 = l3.subspan(Ipv4View::kMinSize);
  }

  if (udp_) {
    write_udp(l4, udp_->src_port, udp_->dst_port, static_cast<std::uint16_t>(l4.size()));
    std::copy(payload_.begin(), payload_.end(), l4.begin() + UdpView::kSize);
  } else if (tcp_) {
    write_tcp(l4, *tcp_);
    std::copy(payload_.begin(), payload_.end(), l4.begin() + TcpView::kMinSize);
  } else if (icmp_) {
    write_icmp_echo(l4, icmp_->type, icmp_->identifier, icmp_->sequence, payload_);
  } else {
    std::copy(payload_.begin(), payload_.end(), l4.begin());
  }

  return Packet(std::move(buf));
}

Packet make_udp_packet(MacAddr eth_src, MacAddr eth_dst, Ipv4Addr ip_src, Ipv4Addr ip_dst,
                       std::uint16_t sport, std::uint16_t dport, std::size_t frame_size) {
  return PacketBuilder()
      .eth(eth_src, eth_dst)
      .ipv4(ip_src, ip_dst)
      .udp(sport, dport)
      .pad_to(frame_size)
      .build();
}

}  // namespace escape::net
