#include "pox/l2_learning.hpp"

#include "net/flow.hpp"

namespace escape::pox {

bool L2Learning::on_packet_in(SwitchConnection& conn, const openflow::PacketIn& msg) {
  auto key = net::extract_flow_key(msg.packet, msg.in_port);
  if (!key) return false;

  auto& table = tables_[conn.dpid()];
  table[key->dl_src] = msg.in_port;

  // Multicast/broadcast or unknown destination: flood.
  auto it = table.find(key->dl_dst);
  if (key->dl_dst.is_multicast() || it == table.end()) {
    openflow::PacketOut out;
    out.buffer_id = msg.buffer_id;
    if (!msg.buffer_id) out.packet = msg.packet;
    out.in_port = msg.in_port;
    out.actions = openflow::output_to(openflow::kPortFlood);
    conn.send_packet_out(std::move(out));
    ++floods_;
    return true;
  }

  // Known destination: install an exact-match flow and release the
  // buffered packet along it.
  openflow::FlowMod mod;
  mod.command = openflow::FlowModCommand::kAdd;
  mod.match = openflow::Match::exact(*key);
  mod.idle_timeout = idle_timeout_;
  mod.actions = openflow::output_to(it->second);
  mod.buffer_id = msg.buffer_id;
  conn.send_flow_mod(mod);
  if (!msg.buffer_id) {
    openflow::PacketOut out;
    out.packet = msg.packet;
    out.in_port = msg.in_port;
    out.actions = openflow::output_to(it->second);
    conn.send_packet_out(std::move(out));
  }
  ++installs_;
  return true;
}

void L2Learning::on_connection_down(SwitchConnection& conn) { tables_.erase(conn.dpid()); }

void L2Learning::on_connection_up(SwitchConnection& conn) { tables_.erase(conn.dpid()); }

const std::unordered_map<net::MacAddr, std::uint16_t>* L2Learning::table(DatapathId dpid) const {
  auto it = tables_.find(dpid);
  return it == tables_.end() ? nullptr : &it->second;
}

}  // namespace escape::pox
