file(REMOVE_RECURSE
  "libescape_sg.a"
)
