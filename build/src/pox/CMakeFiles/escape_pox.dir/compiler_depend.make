# Empty compiler generated dependencies file for escape_pox.
# This may be replaced when dependencies are built.
