// Experiment E4: OpenFlow flow-table performance.
//
// Lookup cost: exact-match entries hit a hash table (O(1)-ish, flat in
// table size); wildcard entries are scanned in priority order (linear).
// Install rate: flow-mods per second into a growing table.
#include "bench_common.hpp"
#include <benchmark/benchmark.h>

#include "net/builder.hpp"
#include "openflow/flow_table.hpp"

using namespace escape;
using namespace escape::openflow;

namespace {

net::FlowKey key_for_port(std::uint16_t dport) {
  net::Packet p = net::make_udp_packet(net::MacAddr::from_u64(1), net::MacAddr::from_u64(2),
                                       net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(10, 0, 0, 2),
                                       1000, dport);
  return *net::extract_flow_key(p, 1);
}

FlowMod exact_mod(const net::FlowKey& key, std::uint16_t out) {
  FlowMod mod;
  mod.match = Match::exact(key);
  mod.actions = output_to(out);
  return mod;
}

FlowMod wildcard_mod(std::uint16_t dport, std::uint16_t out) {
  FlowMod mod;
  mod.match = Match().dl_type(net::ethertype::kIpv4).tp_dst(dport);
  mod.priority = 0x8000;
  mod.actions = output_to(out);
  return mod;
}

}  // namespace

static void BM_FlowTable_ExactLookup(benchmark::State& state) {
  const int table_size = static_cast<int>(state.range(0));
  FlowTable table;
  for (int i = 0; i < table_size; ++i) {
    table.apply(exact_mod(key_for_port(static_cast<std::uint16_t>(i + 1)), 2), 0);
  }
  const net::FlowKey key = key_for_port(static_cast<std::uint16_t>(table_size / 2 + 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(key, 100, 0));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["table_size"] = table_size;
}
BENCHMARK(BM_FlowTable_ExactLookup)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

static void BM_FlowTable_WildcardLookup(benchmark::State& state) {
  const int table_size = static_cast<int>(state.range(0));
  FlowTable table;
  for (int i = 0; i < table_size; ++i) {
    table.apply(wildcard_mod(static_cast<std::uint16_t>(10000 + i), 2), 0);
  }
  // Worst case: the matching entry is the last scanned (same priority,
  // installed last).
  table.apply(wildcard_mod(2000, 3), 0);
  const net::FlowKey key = key_for_port(2000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(key, 100, 0));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["table_size"] = table_size;
}
BENCHMARK(BM_FlowTable_WildcardLookup)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

static void BM_FlowTable_MissWithWildcards(benchmark::State& state) {
  const int table_size = static_cast<int>(state.range(0));
  FlowTable table;
  for (int i = 0; i < table_size; ++i) {
    table.apply(wildcard_mod(static_cast<std::uint16_t>(10000 + i), 2), 0);
  }
  const net::FlowKey key = key_for_port(1);  // matches nothing
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(key, 100, 0));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["table_size"] = table_size;
}
BENCHMARK(BM_FlowTable_MissWithWildcards)->Arg(10)->Arg(100)->Arg(1000);

static void BM_FlowTable_InstallRate(benchmark::State& state) {
  const bool exact = state.range(0) == 1;
  FlowTable table;
  std::uint16_t port = 1;
  for (auto _ : state) {
    if (exact) {
      table.apply(exact_mod(key_for_port(port), 2), 0);
    } else {
      table.apply(wildcard_mod(port, 2), 0);
    }
    ++port;
    if (port == 0) port = 1;
    if (table.size() > 50000) {  // keep memory bounded
      state.PauseTiming();
      table.clear();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(exact ? "exact" : "wildcard");
}
BENCHMARK(BM_FlowTable_InstallRate)->Arg(1)->Arg(0);

static void BM_FlowTable_ExpirySweep(benchmark::State& state) {
  const int table_size = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    FlowTable table;
    for (int i = 0; i < table_size; ++i) {
      FlowMod mod = wildcard_mod(static_cast<std::uint16_t>(i + 1), 2);
      mod.hard_timeout = timeunit::kMillisecond;
      table.apply(mod, 0);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(table.expire(seconds(1)));
  }
  state.counters["table_size"] = table_size;
}
BENCHMARK(BM_FlowTable_ExpirySweep)->Arg(100)->Arg(1000)->Arg(10000)->Iterations(20);


// --- wire codec (ofp10 binary serialization) -----------------------------------

#include "openflow/wire.hpp"

static void BM_Wire_EncodeFlowMod(benchmark::State& state) {
  FlowMod mod;
  mod.match = Match().in_port(1).dl_type(net::ethertype::kIpv4).tp_dst(80);
  mod.priority = 0x9000;
  mod.idle_timeout = seconds(10);
  mod.actions = {ActionSetNwDst{net::Ipv4Addr(192, 0, 2, 1)}, ActionOutput{7, 0xffff}};
  const Message msg{mod};
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::encode(msg, 42));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Wire_EncodeFlowMod);

static void BM_Wire_DecodeFlowMod(benchmark::State& state) {
  FlowMod mod;
  mod.match = Match().in_port(1).dl_type(net::ethertype::kIpv4).tp_dst(80);
  mod.actions = {ActionSetNwDst{net::Ipv4Addr(192, 0, 2, 1)}, ActionOutput{7, 0xffff}};
  const auto bytes = wire::encode(Message{mod}, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::decode(bytes));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_Wire_DecodeFlowMod);

static void BM_Wire_RoundTripPacketIn(benchmark::State& state) {
  PacketIn in;
  in.buffer_id = 9;
  in.in_port = 4;
  in.packet = net::make_udp_packet(net::MacAddr::from_u64(1), net::MacAddr::from_u64(2),
                                   net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2), 5, 6,
                                   static_cast<std::size_t>(state.range(0)));
  const Message msg{in};
  for (auto _ : state) {
    auto bytes = wire::encode(msg, 1);
    benchmark::DoNotOptimize(wire::decode(bytes));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["frame_bytes"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Wire_RoundTripPacketIn)->Arg(64)->Arg(1500);

ESCAPE_BENCH_MAIN("openflow");
