// PacketBatch: a small contiguous run of packets moved through the data
// plane as one unit. Batching amortizes the per-packet virtual dispatch
// and scheduler cost of every hop (Click elements, emulated links,
// OpenFlow switches) without changing what each packet experiences: a
// batch is only ever a *window* onto the same packet sequence the scalar
// path would produce, so delivery order, annotations and timestamps are
// identical in both modes (the determinism guarantee documented in
// DESIGN.md "Batched data plane").
//
// Batches are move-only; duplicating the packets of a batch (Tee-style
// fan-out) must go through clone(), which counts every deep copy in
// stats::packet_clones() so fan-out cost stays observable.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "net/packet.hpp"

namespace escape::net {

class PacketBatch {
 public:
  /// Default burst size used by batch-mode drivers (FastClick uses 32).
  static constexpr std::size_t kDefaultBurst = 32;

  PacketBatch() = default;
  explicit PacketBatch(std::size_t reserve_hint) { packets_.reserve(reserve_hint); }

  PacketBatch(PacketBatch&&) = default;
  PacketBatch& operator=(PacketBatch&&) = default;
  PacketBatch(const PacketBatch&) = delete;
  PacketBatch& operator=(const PacketBatch&) = delete;

  /// A batch of one (bridges scalar call sites into batch APIs).
  static PacketBatch of(Packet&& p) {
    PacketBatch b(1);
    b.push_back(std::move(p));
    return b;
  }

  void push_back(Packet&& p) { packets_.push_back(std::move(p)); }

  std::size_t size() const { return packets_.size(); }
  bool empty() const { return packets_.empty(); }
  void clear() { packets_.clear(); }
  void reserve(std::size_t n) { packets_.reserve(n); }

  Packet& operator[](std::size_t i) { return packets_[i]; }
  const Packet& operator[](std::size_t i) const { return packets_[i]; }
  Packet& front() { return packets_.front(); }
  Packet& back() { return packets_.back(); }

  std::vector<Packet>::iterator begin() { return packets_.begin(); }
  std::vector<Packet>::iterator end() { return packets_.end(); }
  std::vector<Packet>::const_iterator begin() const { return packets_.begin(); }
  std::vector<Packet>::const_iterator end() const { return packets_.end(); }

  /// Sum of the frame sizes, for byte counters.
  std::size_t total_bytes() const {
    std::size_t n = 0;
    for (const auto& p : packets_) n += p.size();
    return n;
  }

  /// Deep-copies every packet; each copy is counted in
  /// stats::packet_clones(). Defined in packet_batch.cpp.
  PacketBatch clone() const;

 private:
  std::vector<Packet> packets_;
};

}  // namespace escape::net
