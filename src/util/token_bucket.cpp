#include "util/token_bucket.hpp"

#include <algorithm>
#include <cassert>

namespace escape {

namespace {
constexpr std::uint64_t kScale = timeunit::kSecond;  // 1e9
}

TokenBucket::TokenBucket(std::uint64_t rate_per_sec, std::uint64_t burst)
    : rate_(rate_per_sec), burst_(std::max<std::uint64_t>(burst, 1)) {
  assert(rate_per_sec > 0);
  scaled_tokens_ = burst_ * kScale;  // start full
}

void TokenBucket::refill(SimTime now) {
  if (now <= last_refill_) return;
  const std::uint64_t elapsed = now - last_refill_;
  last_refill_ = now;
  const std::uint64_t cap = burst_ * kScale;
  // rate_ tokens per second == rate_ scaled-units per nanosecond.
  const std::uint64_t gained = elapsed * rate_;
  scaled_tokens_ = std::min(cap, scaled_tokens_ + gained);
}

bool TokenBucket::try_consume(SimTime now, std::uint64_t units) {
  refill(now);
  const std::uint64_t need = units * kScale;
  if (scaled_tokens_ >= need) {
    scaled_tokens_ -= need;
    return true;
  }
  return false;
}

SimTime TokenBucket::next_available(SimTime now, std::uint64_t units) {
  refill(now);
  const std::uint64_t need = units * kScale;
  if (scaled_tokens_ >= need) return now;
  const std::uint64_t deficit = need - scaled_tokens_;
  // ceil(deficit / rate_) nanoseconds until enough tokens accrue.
  const std::uint64_t wait = (deficit + rate_ - 1) / rate_;
  return now + wait;
}

void TokenBucket::consume(SimTime now, std::uint64_t units) {
  refill(now);
  const std::uint64_t need = units * kScale;
  if (scaled_tokens_ >= need) {
    scaled_tokens_ -= need;
  } else {
    // Record the deficit by moving last_refill_ into the future: future
    // refills first pay off the debt.
    const std::uint64_t deficit = need - scaled_tokens_;
    scaled_tokens_ = 0;
    last_refill_ = now + (deficit + rate_ - 1) / rate_;
  }
}

std::uint64_t TokenBucket::available(SimTime now) {
  refill(now);
  return scaled_tokens_ / kScale;
}

}  // namespace escape
