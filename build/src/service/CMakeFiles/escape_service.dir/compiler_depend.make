# Empty compiler generated dependencies file for escape_service.
# This may be replaced when dependencies are built.
