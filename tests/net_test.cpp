// Unit tests for addresses, headers, checksums, flow keys and the packet
// builder.
#include <gtest/gtest.h>

#include <algorithm>

#include "net/builder.hpp"
#include "net/flow.hpp"
#include "net/headers.hpp"
#include "net/packet_pool.hpp"

namespace escape::net {
namespace {

// --- addresses ------------------------------------------------------------------

TEST(MacAddr, ParseAndFormat) {
  auto mac = MacAddr::parse("0a:1b:2c:3d:4e:5f");
  ASSERT_TRUE(mac);
  EXPECT_EQ(mac->to_string(), "0a:1b:2c:3d:4e:5f");
  EXPECT_EQ(mac->to_u64(), 0x0a1b2c3d4e5fULL);
}

TEST(MacAddr, ParseRejectsGarbage) {
  EXPECT_FALSE(MacAddr::parse("no"));
  EXPECT_FALSE(MacAddr::parse("0a:1b:2c:3d:4e"));
  EXPECT_FALSE(MacAddr::parse("0a:1b:2c:3d:4e:zz"));
  EXPECT_FALSE(MacAddr::parse("0a:1b:2c:3d:4e:5f:00"));
}

TEST(MacAddr, SpecialAddresses) {
  EXPECT_TRUE(MacAddr::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddr::broadcast().is_multicast());
  EXPECT_TRUE(MacAddr({0x01, 0, 0x5e, 0, 0, 1}).is_multicast());
  EXPECT_FALSE(MacAddr::from_u64(0x020000000001).is_multicast());
}

TEST(MacAddr, FromU64RoundTrip) {
  auto mac = MacAddr::from_u64(0x112233445566ULL);
  EXPECT_EQ(mac.to_string(), "11:22:33:44:55:66");
}

TEST(Ipv4Addr, ParseAndFormat) {
  auto a = Ipv4Addr::parse("10.0.0.1");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->to_string(), "10.0.0.1");
  EXPECT_EQ(a->value(), 0x0a000001u);
}

TEST(Ipv4Addr, ParseRejectsGarbage) {
  EXPECT_FALSE(Ipv4Addr::parse("10.0.0"));
  EXPECT_FALSE(Ipv4Addr::parse("10.0.0.256"));
  EXPECT_FALSE(Ipv4Addr::parse("10.0.0.1.2"));
  EXPECT_FALSE(Ipv4Addr::parse("a.b.c.d"));
}

TEST(Ipv4Addr, Subnets) {
  Ipv4Addr addr(10, 1, 2, 3);
  EXPECT_TRUE(addr.in_subnet(Ipv4Addr(10, 0, 0, 0), 8));
  EXPECT_FALSE(addr.in_subnet(Ipv4Addr(10, 2, 0, 0), 16));
  EXPECT_TRUE(addr.in_subnet(Ipv4Addr(10, 1, 2, 3), 32));
  EXPECT_FALSE(addr.in_subnet(Ipv4Addr(10, 1, 2, 4), 32));
  EXPECT_TRUE(addr.in_subnet(Ipv4Addr(0, 0, 0, 0), 0));  // /0 matches all
}

// --- checksum --------------------------------------------------------------------

TEST(Checksum, KnownVector) {
  // RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> checksum 0x220d.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, OddLengthHandled) {
  const std::uint8_t data[] = {0x01, 0x02, 0x03};
  // Verify: sum = 0x0102 + 0x0300 = 0x0402 -> ~ = 0xfbfd.
  EXPECT_EQ(internet_checksum(data), 0xfbfd);
}

// --- builder / parser round trips ---------------------------------------------------

TEST(Builder, UdpPacketRoundTrip) {
  Packet p = make_udp_packet(MacAddr::from_u64(1), MacAddr::from_u64(2), Ipv4Addr(10, 0, 0, 1),
                             Ipv4Addr(10, 0, 0, 2), 1234, 5678, 120);
  EXPECT_EQ(p.size(), 120u);

  auto eth = EthernetView::parse(p.bytes());
  ASSERT_TRUE(eth);
  EXPECT_EQ(eth->src.to_u64(), 1u);
  EXPECT_EQ(eth->dst.to_u64(), 2u);
  EXPECT_EQ(eth->ethertype, ethertype::kIpv4);

  auto ip = Ipv4View::parse(eth->payload);
  ASSERT_TRUE(ip);
  EXPECT_EQ(ip->src, Ipv4Addr(10, 0, 0, 1));
  EXPECT_EQ(ip->dst, Ipv4Addr(10, 0, 0, 2));
  EXPECT_EQ(ip->protocol, ipproto::kUdp);
  EXPECT_EQ(ip->total_length, 120 - EthernetView::kSize);
  EXPECT_TRUE(Ipv4View::verify_checksum(eth->payload));

  auto udp = UdpView::parse(ip->payload);
  ASSERT_TRUE(udp);
  EXPECT_EQ(udp->src_port, 1234);
  EXPECT_EQ(udp->dst_port, 5678);
}

TEST(Builder, TcpPacketRoundTrip) {
  TcpFields tcp;
  tcp.src_port = 80;
  tcp.dst_port = 4000;
  tcp.seq = 1000;
  tcp.ack = 2000;
  tcp.flags = 0x12;  // SYN|ACK
  Packet p = PacketBuilder()
                 .eth(MacAddr::from_u64(1), MacAddr::from_u64(2))
                 .ipv4(Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2))
                 .tcp(tcp)
                 .payload(std::string_view("hello"))
                 .build();
  auto eth = EthernetView::parse(p.bytes());
  auto ip = Ipv4View::parse(eth->payload);
  ASSERT_TRUE(ip);
  EXPECT_EQ(ip->protocol, ipproto::kTcp);
  auto view = TcpView::parse(ip->payload);
  ASSERT_TRUE(view);
  EXPECT_EQ(view->src_port, 80);
  EXPECT_TRUE(view->syn());
  EXPECT_TRUE(view->ack_flag());
  EXPECT_FALSE(view->fin());
  EXPECT_EQ(std::string(view->payload.begin(), view->payload.end()), "hello");
}

TEST(Builder, ArpRoundTrip) {
  Packet p = PacketBuilder()
                 .eth(MacAddr::from_u64(3), MacAddr::broadcast(), ethertype::kArp)
                 .arp(ArpView::kRequest, MacAddr::from_u64(3), Ipv4Addr(10, 0, 0, 3),
                      MacAddr(), Ipv4Addr(10, 0, 0, 9))
                 .build();
  auto eth = EthernetView::parse(p.bytes());
  ASSERT_TRUE(eth);
  EXPECT_EQ(eth->ethertype, ethertype::kArp);
  auto arp = ArpView::parse(eth->payload);
  ASSERT_TRUE(arp);
  EXPECT_EQ(arp->opcode, ArpView::kRequest);
  EXPECT_EQ(arp->sender_ip, Ipv4Addr(10, 0, 0, 3));
  EXPECT_EQ(arp->target_ip, Ipv4Addr(10, 0, 0, 9));
}

TEST(Builder, IcmpEchoRoundTrip) {
  Packet p = PacketBuilder()
                 .eth(MacAddr::from_u64(1), MacAddr::from_u64(2))
                 .ipv4(Ipv4Addr(1, 0, 0, 1), Ipv4Addr(1, 0, 0, 2), ipproto::kIcmp)
                 .icmp_echo(IcmpView::kEchoRequest, 7, 3)
                 .build();
  auto eth = EthernetView::parse(p.bytes());
  auto ip = Ipv4View::parse(eth->payload);
  ASSERT_TRUE(ip);
  auto icmp = IcmpView::parse(ip->payload);
  ASSERT_TRUE(icmp);
  EXPECT_EQ(icmp->type, IcmpView::kEchoRequest);
  EXPECT_EQ(icmp->identifier, 7);
  EXPECT_EQ(icmp->sequence, 3);
  // ICMP checksum over the message must verify.
  EXPECT_EQ(internet_checksum(ip->payload), 0);
}

TEST(Parser, TruncatedFramesRejected) {
  std::vector<std::uint8_t> tiny(10, 0);
  EXPECT_FALSE(EthernetView::parse(tiny));
  std::vector<std::uint8_t> no_ip(EthernetView::kSize + 10, 0);
  store_be16(&no_ip[12], ethertype::kIpv4);
  auto eth = EthernetView::parse(no_ip);
  ASSERT_TRUE(eth);
  EXPECT_FALSE(Ipv4View::parse(eth->payload));
}

TEST(Parser, BadIpVersionOrIhlRejected) {
  Packet p = make_udp_packet(MacAddr::from_u64(1), MacAddr::from_u64(2), Ipv4Addr(1, 1, 1, 1),
                             Ipv4Addr(2, 2, 2, 2), 1, 2);
  auto bytes = p.mutable_bytes();
  bytes[EthernetView::kSize] = 0x65;  // version 6
  auto eth = EthernetView::parse(p.bytes());
  EXPECT_FALSE(Ipv4View::parse(eth->payload));
  bytes[EthernetView::kSize] = 0x44;  // ihl 4 < 5
  eth = EthernetView::parse(p.bytes());
  EXPECT_FALSE(Ipv4View::parse(eth->payload));
}

// --- in-place mutators ---------------------------------------------------------------

TEST(Mutators, RewritesKeepChecksumValid) {
  Packet p = make_udp_packet(MacAddr::from_u64(1), MacAddr::from_u64(2), Ipv4Addr(10, 0, 0, 1),
                             Ipv4Addr(10, 0, 0, 2), 1000, 2000);
  EXPECT_TRUE(set_ipv4_src(p, Ipv4Addr(192, 168, 0, 1)));
  EXPECT_TRUE(set_ipv4_dst(p, Ipv4Addr(192, 168, 0, 2)));
  EXPECT_TRUE(set_ipv4_dscp(p, 46));
  EXPECT_TRUE(set_l4_src_port(p, 1111));
  EXPECT_TRUE(set_l4_dst_port(p, 2222));
  set_eth_src(p, MacAddr::from_u64(9));
  set_eth_dst(p, MacAddr::from_u64(8));

  auto eth = EthernetView::parse(p.bytes());
  EXPECT_EQ(eth->src.to_u64(), 9u);
  EXPECT_EQ(eth->dst.to_u64(), 8u);
  auto ip = Ipv4View::parse(eth->payload);
  EXPECT_EQ(ip->src, Ipv4Addr(192, 168, 0, 1));
  EXPECT_EQ(ip->dst, Ipv4Addr(192, 168, 0, 2));
  EXPECT_EQ(ip->dscp, 46);
  EXPECT_TRUE(Ipv4View::verify_checksum(eth->payload));
  auto udp = UdpView::parse(ip->payload);
  EXPECT_EQ(udp->src_port, 1111);
  EXPECT_EQ(udp->dst_port, 2222);
}

TEST(Mutators, TtlDecrement) {
  Packet p = PacketBuilder()
                 .eth(MacAddr::from_u64(1), MacAddr::from_u64(2))
                 .ipv4(Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), ipproto::kUdp, /*ttl=*/2)
                 .udp(1, 2)
                 .build();
  EXPECT_TRUE(dec_ipv4_ttl(p));
  EXPECT_TRUE(dec_ipv4_ttl(p));
  EXPECT_FALSE(dec_ipv4_ttl(p));  // TTL now 0
  auto eth = EthernetView::parse(p.bytes());
  EXPECT_TRUE(Ipv4View::verify_checksum(eth->payload));
}

TEST(Mutators, NonIpFramesUntouched) {
  Packet p = PacketBuilder()
                 .eth(MacAddr::from_u64(1), MacAddr::from_u64(2), ethertype::kArp)
                 .arp(ArpView::kRequest, MacAddr::from_u64(1), Ipv4Addr(1, 1, 1, 1), MacAddr(),
                      Ipv4Addr(2, 2, 2, 2))
                 .build();
  EXPECT_FALSE(set_ipv4_src(p, Ipv4Addr(9, 9, 9, 9)));
  EXPECT_FALSE(set_l4_dst_port(p, 99));
  EXPECT_FALSE(dec_ipv4_ttl(p));
}

// --- flow key ---------------------------------------------------------------------------

TEST(FlowKey, UdpExtraction) {
  Packet p = make_udp_packet(MacAddr::from_u64(1), MacAddr::from_u64(2), Ipv4Addr(10, 0, 0, 1),
                             Ipv4Addr(10, 0, 0, 2), 1000, 2000);
  auto key = extract_flow_key(p, 7);
  ASSERT_TRUE(key);
  EXPECT_EQ(key->in_port, 7);
  EXPECT_EQ(key->dl_type, ethertype::kIpv4);
  EXPECT_EQ(key->nw_proto, ipproto::kUdp);
  EXPECT_EQ(key->nw_src, Ipv4Addr(10, 0, 0, 1));
  EXPECT_EQ(key->tp_src, 1000);
  EXPECT_EQ(key->tp_dst, 2000);
}

TEST(FlowKey, ArpExtraction) {
  Packet p = PacketBuilder()
                 .eth(MacAddr::from_u64(1), MacAddr::broadcast(), ethertype::kArp)
                 .arp(ArpView::kReply, MacAddr::from_u64(1), Ipv4Addr(1, 1, 1, 1),
                      MacAddr::from_u64(2), Ipv4Addr(2, 2, 2, 2))
                 .build();
  auto key = extract_flow_key(p, 0);
  ASSERT_TRUE(key);
  EXPECT_EQ(key->dl_type, ethertype::kArp);
  EXPECT_EQ(key->nw_proto, ArpView::kReply);
  EXPECT_EQ(key->nw_src, Ipv4Addr(1, 1, 1, 1));
}

TEST(FlowKey, IcmpUsesTypeCodeAsPorts) {
  Packet p = PacketBuilder()
                 .eth(MacAddr::from_u64(1), MacAddr::from_u64(2))
                 .ipv4(Ipv4Addr(1, 0, 0, 1), Ipv4Addr(1, 0, 0, 2), ipproto::kIcmp)
                 .icmp_echo(IcmpView::kEchoRequest, 1, 1)
                 .build();
  auto key = extract_flow_key(p, 0);
  ASSERT_TRUE(key);
  EXPECT_EQ(key->tp_src, IcmpView::kEchoRequest);
  EXPECT_EQ(key->tp_dst, 0);
}

TEST(FlowKey, EqualityAndHashConsistency) {
  Packet p1 = make_udp_packet(MacAddr::from_u64(1), MacAddr::from_u64(2),
                              Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 1, 2);
  Packet p2 = make_udp_packet(MacAddr::from_u64(1), MacAddr::from_u64(2),
                              Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 1, 2);
  auto k1 = extract_flow_key(p1, 4);
  auto k2 = extract_flow_key(p2, 4);
  EXPECT_EQ(*k1, *k2);
  EXPECT_EQ(std::hash<FlowKey>{}(*k1), std::hash<FlowKey>{}(*k2));
  auto k3 = extract_flow_key(p2, 5);
  EXPECT_NE(*k1, *k3);
}

TEST(PacketAnnotations, Defaults) {
  Packet p;
  EXPECT_EQ(p.paint(), 0);
  EXPECT_EQ(p.in_port(), -1);
  EXPECT_EQ(p.seq(), 0u);
  p.set_paint(3);
  p.set_seq(99);
  p.set_chain_tag(5);
  EXPECT_EQ(p.paint(), 3);
  EXPECT_EQ(p.seq(), 99u);
  EXPECT_EQ(p.chain_tag(), 5u);
}

/// Frame-size sweep: IP total length always consistent with frame size.
class FrameSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FrameSizeSweep, LengthsConsistent) {
  Packet p = make_udp_packet(MacAddr::from_u64(1), MacAddr::from_u64(2), Ipv4Addr(1, 1, 1, 1),
                             Ipv4Addr(2, 2, 2, 2), 1, 2, GetParam());
  EXPECT_EQ(p.size(), GetParam());
  auto eth = EthernetView::parse(p.bytes());
  auto ip = Ipv4View::parse(eth->payload);
  ASSERT_TRUE(ip);
  EXPECT_EQ(ip->total_length, GetParam() - EthernetView::kSize);
  EXPECT_TRUE(Ipv4View::verify_checksum(eth->payload));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FrameSizeSweep,
                         ::testing::Values(64, 98, 128, 512, 1024, 1500));

// --- PacketPool ----------------------------------------------------------------------

TEST(PacketPool, RecycledBufferIsHandedOutAgain) {
  PacketPool pool;
  Packet p = pool.acquire(128);
  EXPECT_EQ(pool.fresh_allocs(), 1u);
  const std::uint8_t* buffer = p.bytes().data();

  pool.recycle(std::move(p));
  EXPECT_EQ(pool.free_buffers(), 1u);
  EXPECT_EQ(pool.recycled(), 1u);

  Packet q = pool.acquire(64);
  EXPECT_EQ(q.bytes().data(), buffer);  // same storage, no fresh allocation
  EXPECT_EQ(q.size(), 64u);
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_EQ(pool.fresh_allocs(), 1u);
  EXPECT_EQ(pool.free_buffers(), 0u);
}

TEST(PacketPool, ReusedPacketHasAnnotationsReset) {
  PacketPool pool;
  Packet p = pool.acquire(100);
  p.set_paint(7);
  p.set_in_port(3);
  p.set_seq(42);
  p.set_timestamp(123456);
  p.set_chain_tag(9);
  pool.recycle(std::move(p));

  Packet q = pool.acquire(100);
  EXPECT_EQ(q.paint(), 0);
  EXPECT_EQ(q.in_port(), -1);
  EXPECT_EQ(q.seq(), 0u);
  EXPECT_FALSE(q.has_timestamp());
  EXPECT_EQ(q.chain_tag(), 0u);
}

TEST(PacketPool, AcquireCopyReplicatesBytesFromRecycledBuffer) {
  PacketPool pool;
  Packet proto = make_udp_packet(MacAddr::from_u64(1), MacAddr::from_u64(2),
                                 Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 1, 2, 200);
  pool.recycle(pool.acquire(1500));  // seed the free list with a big buffer
  Packet copy = pool.acquire_copy(proto);
  EXPECT_EQ(pool.reuses(), 1u);
  ASSERT_EQ(copy.size(), proto.size());
  EXPECT_TRUE(std::equal(copy.bytes().begin(), copy.bytes().end(), proto.bytes().begin()));
}

TEST(PacketPool, MaxFreeBoundsTheFreeList) {
  PacketPool pool(/*max_free=*/2);
  std::vector<Packet> live;
  for (int i = 0; i < 5; ++i) live.push_back(pool.acquire(64));
  for (auto& p : live) pool.recycle(std::move(p));
  EXPECT_EQ(pool.free_buffers(), 2u);  // excess buffers freed normally
  EXPECT_EQ(pool.recycled(), 2u);
}

TEST(PacketPool, RecyclesWholeBatches) {
  PacketPool pool;
  PacketBatch batch(4);
  for (int i = 0; i < 4; ++i) batch.push_back(pool.acquire(64));
  pool.recycle(std::move(batch));
  EXPECT_EQ(pool.free_buffers(), 4u);
}

}  // namespace
}  // namespace escape::net
