# Empty compiler generated dependencies file for reactive_steering.
# This may be replaced when dependencies are built.
