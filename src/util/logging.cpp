#include "util/logging.hpp"

#include <cstdio>

namespace escape {

namespace {

LogLevel g_level = LogLevel::kWarn;
Logging::Sink g_sink;  // empty -> default stderr sink

void default_sink(LogLevel level, std::string_view component, std::string_view msg) {
  std::fprintf(stderr, "[%.*s] %.*s: %.*s\n",
               static_cast<int>(log_level_name(level).size()), log_level_name(level).data(),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogLevel Logging::level() { return g_level; }

void Logging::set_level(LogLevel level) { g_level = level; }

void Logging::set_sink(Sink sink) { g_sink = std::move(sink); }

void Logging::write(LogLevel level, std::string_view component, std::string_view msg) {
  if (level < g_level) return;
  if (g_sink) {
    g_sink(level, component, msg);
  } else {
    default_sink(level, component, msg);
  }
}

}  // namespace escape
