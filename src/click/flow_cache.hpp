// Per-flow verdict memo for classify-style elements, backed by the
// FlowManager state block (see flow.hpp). A classifier whose rules
// depend only on the 5-tuple walks its rule list once per flow: the
// verdict is stored in the flow's scratch area and every later packet
// of the flow short-circuits the walk. Split from flow.hpp so the
// standard element headers stay light.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

namespace escape::click {

class FlowManager;
class Router;

class FlowVerdictCache {
 public:
  /// Attaches to the router's FlowManager. The cache stays disabled --
  /// and every call below a no-op -- when `eligible` is false (the
  /// element's rules read more than the 5-tuple) or when the router has
  /// no unambiguous FlowManager; classification then runs as before.
  /// Call from the element's initialize().
  void attach(Router& router, bool eligible);

  bool enabled() const { return fm_ != nullptr; }

  /// The verdict cached for the current flow context, or nullopt
  /// (disabled, no context, or first packet of the flow).
  std::optional<int> cached();

  /// Stores the verdict for the current flow context (no-op without one).
  void store(int verdict);

  std::uint64_t hits() const { return hits_; }

 private:
  struct Slot {
    std::int16_t verdict = 0;
    std::uint8_t valid = 0;
  };
  Slot* slot() const;

  FlowManager* fm_ = nullptr;
  std::size_t off_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace escape::click
