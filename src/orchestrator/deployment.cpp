#include "orchestrator/deployment.hpp"

#include <algorithm>

#include "chaos/fault_point.hpp"

namespace escape::orchestrator {

namespace {
// Bring-up steps queued per VNF in deploy() (initiate, start, connect in,
// connect out). Rollback sizing derives the owning VNF from the failing
// step index via this constant -- keep it in sync with the push_backs.
constexpr std::size_t kStepsPerVnf = 4;

/// Runs one NETCONF operation through a named fault point: an injected
/// drop fails it locally (deferred one event, like a real reply), an
/// injected delay defers the send, an injected crash (handled inside
/// hit()) kills the target first and lets the RPC fail naturally.
void run_rpc_step(EventScheduler& scheduler, const char* site,
                  const chaos::SiteContext& ctx,
                  std::function<void(netconf::VnfAgentClient::StatusCallback)> op,
                  netconf::VnfAgentClient::StatusCallback cb) {
  const chaos::Decision fp =
      chaos::hit(site, chaos::kCanCrash | chaos::kCanDrop | chaos::kCanDelay, ctx);
  if (fp.drop()) {
    scheduler.schedule(0, [cb = std::move(cb), site]() mutable {
      cb(make_error("chaos.injected-drop", std::string("injected rpc drop at ") + site));
    });
    return;
  }
  if (fp.delayed()) {
    scheduler.schedule(fp.delay, [op = std::move(op), cb = std::move(cb)]() mutable {
      op(std::move(cb));
    });
    return;
  }
  op(std::move(cb));
}
}  // namespace

DeploymentEngine::DeploymentEngine(netemu::Network& network, pox::TrafficSteering& steering,
                                   std::map<std::string, netconf::VnfAgentClient*> agents)
    : network_(&network), steering_(&steering), agents_(std::move(agents)) {}

netemu::LinkConfig DeploymentEngine::veth_config() {
  netemu::LinkConfig cfg;
  cfg.bandwidth_bps = 10'000'000'000ULL;  // 10 Gbit/s veth
  cfg.delay = timeunit::kMicrosecond;
  cfg.queue_frames = 1000;
  return cfg;
}

std::uint16_t DeploymentEngine::next_free_port(netemu::Node* node) const {
  // Derived from the network's link list, not node->attached_ports():
  // the node may live on another shard, where a just-added veth attaches
  // asynchronously (Network::add_link defers it through the admin
  // mailbox). The link list is updated synchronously on the
  // orchestrator's shard, so it is the authoritative allocation record.
  std::uint16_t next = 0;
  for (const auto& link : network_->links()) {
    for (int e = 0; e < 2; ++e) {
      if (link->node(e) == node) {
        next = std::max<std::uint16_t>(next, static_cast<std::uint16_t>(link->port(e) + 1));
      }
    }
  }
  return next;
}

namespace {

/// The default attachment switch of a container: the switch on the other
/// end of its first (topology) link.
Result<std::string> default_adjacent_switch(netemu::Network& network,
                                            const std::string& container) {
  for (const auto& link : network.links()) {
    for (int endpoint = 0; endpoint < 2; ++endpoint) {
      if (link->node(endpoint)->name() == container &&
          link->node(1 - endpoint)->kind() == netemu::NodeKind::kSwitch) {
        return link->node(1 - endpoint)->name();
      }
    }
  }
  return make_error("deploy.no-adjacent-switch",
                    container + " has no switch neighbour to attach veths to");
}

}  // namespace

Result<std::vector<VnfDeployment>> DeploymentEngine::allocate_veths(
    std::uint32_t chain_id, const MappingResult& mapping) {
  std::vector<VnfDeployment> out;

  for (std::size_t i = 0; i < mapping.link_mappings.size(); ++i) {
    const LinkMapping& entering = mapping.link_mappings[i];
    auto placement = mapping.placements.find(entering.sg_dst);
    if (placement == mapping.placements.end()) continue;  // segment to a SAP

    const std::string& vnf_id = entering.sg_dst;
    const std::string& container_name = placement->second;
    netemu::VnfContainer* container = network_->container(container_name);
    if (!container) {
      return make_error("deploy.unknown-container", "not in network: " + container_name);
    }

    VnfDeployment d;
    d.vnf_id = vnf_id;
    // Container-unique instance id: several chains may place same-named
    // VNFs on one container.
    d.instance_id = "chain" + std::to_string(chain_id) + "." + vnf_id;
    d.container = container_name;

    // Attachment switch on the ingress side: the last switch of the
    // entering segment, or the container's default neighbour when the
    // segment is degenerate (previous VNF in the same container).
    if (entering.path.nodes.size() >= 2) {
      d.in_switch = entering.path.nodes[entering.path.nodes.size() - 2];
    } else {
      auto s = default_adjacent_switch(*network_, container_name);
      if (!s.ok()) return s.error();
      d.in_switch = *s;
    }

    // Egress side: first switch of the segment leaving this VNF.
    if (i + 1 >= mapping.link_mappings.size()) {
      return make_error("deploy.bad-mapping", vnf_id + " has no outgoing segment");
    }
    const LinkMapping& leaving = mapping.link_mappings[i + 1];
    if (leaving.path.nodes.size() >= 2) {
      d.out_switch = leaving.path.nodes[1];
    } else {
      auto s = default_adjacent_switch(*network_, container_name);
      if (!s.ok()) return s.error();
      d.out_switch = *s;
    }

    netemu::SwitchNode* in_sw = network_->switch_node(d.in_switch);
    netemu::SwitchNode* out_sw = network_->switch_node(d.out_switch);
    if (!in_sw || !out_sw) {
      return make_error("deploy.no-switch",
                        vnf_id + ": mapped path does not traverse an OpenFlow switch "
                                 "next to the container");
    }

    // Fresh ports, then the two veth links.
    d.container_in_port = next_free_port(container);
    d.switch_in_port = next_free_port(in_sw);
    if (auto s = network_->add_link(container_name, d.container_in_port, d.in_switch,
                                    d.switch_in_port, veth_config());
        !s.ok()) {
      return s.error();
    }
    d.container_out_port = next_free_port(container);
    d.switch_out_port = next_free_port(out_sw);
    if (auto s = network_->add_link(container_name, d.container_out_port, d.out_switch,
                                    d.switch_out_port, veth_config());
        !s.ok()) {
      return s.error();
    }
    out.push_back(std::move(d));
  }
  return out;
}

Result<pox::ChainPath> DeploymentEngine::compute_chain_path(
    std::uint32_t chain_id, const MappingResult& mapping, const sg::ResourceGraph& view,
    const std::vector<VnfDeployment>& vnfs, openflow::Match match) const {
  pox::ChainPath chain;
  chain.chain_id = chain_id;
  chain.match = match;

  auto vnf_record = [&vnfs](const std::string& vnf_id) -> const VnfDeployment* {
    for (const auto& v : vnfs) {
      if (v.vnf_id == vnf_id) return &v;
    }
    return nullptr;
  };
  auto dpid_of = [this](const std::string& name) -> Result<openflow::DatapathId> {
    netemu::SwitchNode* sw = network_->switch_node(name);
    if (!sw) return make_error("deploy.no-switch", "not a switch: " + name);
    return sw->dpid();
  };

  for (std::size_t k = 0; k < mapping.link_mappings.size(); ++k) {
    const LinkMapping& seg = mapping.link_mappings[k];
    const VnfDeployment* src_vnf = vnf_record(seg.sg_src);
    const VnfDeployment* dst_vnf = vnf_record(seg.sg_dst);
    const auto& nodes = seg.path.nodes;
    const std::size_t n = nodes.size();

    if (n <= 1) {
      // Degenerate segment: both endpoints in the same container. One
      // hairpin hop at the shared attachment switch.
      if (!src_vnf || !dst_vnf) {
        return make_error("deploy.bad-segment", "degenerate segment without VNF endpoints");
      }
      if (src_vnf->out_switch != dst_vnf->in_switch) {
        return make_error("deploy.bad-segment", "hairpin endpoints on different switches");
      }
      auto dpid = dpid_of(src_vnf->out_switch);
      if (!dpid.ok()) return dpid.error();
      chain.hops.push_back({*dpid, src_vnf->switch_out_port, dst_vnf->switch_in_port});
      continue;
    }

    // Regular segment: switches occupy positions 1 .. n-2.
    if (n < 3 && !(src_vnf || dst_vnf)) {
      return make_error("deploy.bad-segment",
                        "segment " + seg.sg_src + "->" + seg.sg_dst +
                            " traverses no OpenFlow switch");
    }
    for (std::size_t j = 1; j + 1 < n; ++j) {
      netemu::SwitchNode* sw = network_->switch_node(nodes[j]);
      if (!sw) continue;  // defensive: containers never appear mid-path
      auto dpid = dpid_of(nodes[j]);
      if (!dpid.ok()) return dpid.error();

      std::uint16_t in_port;
      if (j == 1 && src_vnf) {
        in_port = src_vnf->switch_out_port;  // traffic re-enters from the VNF
      } else {
        in_port = view.port_on(seg.path.link_indices[j - 1], nodes[j]);
      }
      std::uint16_t out_port;
      if (j + 2 == n && dst_vnf) {
        out_port = dst_vnf->switch_in_port;  // traffic leaves toward the VNF
      } else {
        out_port = view.port_on(seg.path.link_indices[j], nodes[j]);
      }
      chain.hops.push_back({*dpid, in_port, out_port});
    }
  }

  if (chain.hops.empty()) {
    return make_error("deploy.empty-chain", "no steering hops computed");
  }
  return chain;
}

void DeploymentEngine::deploy(std::uint32_t chain_id, const MappingResult& mapping,
                              const sg::ResourceGraph& view,
                              const std::vector<service::RenderedVnf>& rendered,
                              openflow::Match match, CompletionCallback done) {
  auto record = std::make_shared<DeploymentRecord>();
  record->chain_id = chain_id;
  record->mapping = mapping;
  record->started_at = network_->scheduler().now();

  // Phase 1 (synchronous): veth allocation.
  auto veths = allocate_veths(chain_id, mapping);
  if (!veths.ok()) {
    done(veths.error());
    return;
  }
  record->vnfs = std::move(*veths);

  // Phase 3 input is computed now so errors surface before any RPC.
  auto chain = compute_chain_path(chain_id, mapping, view, record->vnfs, match);
  if (!chain.ok()) {
    done(chain.error());
    return;
  }
  record->chain_path = std::move(*chain);

  // Phase 2: sequential NETCONF bring-up of every VNF.
  struct Step {
    std::function<void(netconf::VnfAgentClient::StatusCallback)> run;
    std::string container;  // fault-point crash target
  };
  auto steps = std::make_shared<std::vector<Step>>();

  for (const auto& d : record->vnfs) {
    auto agent_it = agents_.find(d.container);
    if (agent_it == agents_.end()) {
      done(make_error("deploy.no-agent", "no management agent for " + d.container));
      return;
    }
    netconf::VnfAgentClient* agent = agent_it->second;

    const service::RenderedVnf* vnf = nullptr;
    for (const auto& r : rendered) {
      if (r.id == d.vnf_id) vnf = &r;
    }
    if (!vnf) {
      done(make_error("deploy.missing-config", "no rendered config for " + d.vnf_id));
      return;
    }

    // Copied, not pointed-to: the caller's `rendered` vector may be a
    // temporary (the recovery path's is), and this step runs from a
    // scheduler callback long after deploy() returned.
    steps->push_back({[agent, v = *vnf, id = d.instance_id](auto cb) {
                        agent->initiate_vnf(id, v.vnf_type, v.click_config, v.cpu_demand,
                                            std::move(cb));
                      },
                      d.container});
    steps->push_back(
        {[agent, id = d.instance_id](auto cb) { agent->start_vnf(id, std::move(cb)); },
         d.container});
    steps->push_back({[agent, id = d.instance_id, port = d.container_in_port](auto cb) {
                        agent->connect_vnf(id, "in0", port, std::move(cb));
                      },
                      d.container});
    steps->push_back({[agent, id = d.instance_id, port = d.container_out_port](auto cb) {
                        agent->connect_vnf(id, "out0", port, std::move(cb));
                      },
                      d.container});
    static_assert(kStepsPerVnf == 4, "step pushes above must match kStepsPerVnf");
  }

  auto* engine = this;
  auto run_all = std::make_shared<std::function<void(std::size_t)>>();
  // The stored function must only hold a weak self-reference: capturing
  // run_all by value would form a shared_ptr cycle (function -> itself)
  // that leaks the record and every capture. The pending step callback
  // takes a strong ref, which is what keeps the loop alive between
  // scheduler events.
  std::weak_ptr<std::function<void(std::size_t)>> weak_run = run_all;
  *run_all = [engine, steps, record, done, weak_run](std::size_t index) {
    if (index == steps->size()) {
      // Injectable: the hand-off from NETCONF bring-up to steering. A
      // drop fails the install (partial bring-up rolls back); a crash
      // restarts the chain's entry switch under the install.
      const chaos::Decision fp =
          chaos::hit("deploy.steering.install", chaos::kCanDrop | chaos::kCanCrash,
                     chaos::SiteContext::of_switch(record->chain_path.hops.front().dpid,
                                                   record->chain_id));
      if (fp.drop()) {
        Error error = make_error("chaos.injected-drop", "steering install dropped");
        engine->teardown_best_effort(*record, [done, error](Status) { done(error); });
        return;
      }
      // Phase 3: steering. Barrier-confirmed: the completion only fires
      // once every touched switch has committed the chain's rules, so a
      // chain cannot report deployed while its flow-mods are in flight
      // (the old fixed settle delay just hoped they had landed).
      engine->steering_->install_chain_confirmed(
          record->chain_path, [engine, record, done](Status s) {
            if (!s.ok()) {
              Error error = s.error();
              engine->teardown_best_effort(*record, [done, error](Status) { done(error); });
              return;
            }
            record->completed_at = engine->network_->scheduler().now();
            done(*record);
          });
      return;
    }
    auto self = weak_run.lock();
    auto continue_with = [engine, steps, record, done, self, index](Status s) {
      if (!s.ok()) {
        // Partial-result reporting: annotate how far bring-up got, then
        // roll back the VNFs already touched (best effort -- some of them
        // may live on an agent that just died).
        DeploymentRecord partial = *record;
        partial.vnfs.resize(std::min(partial.vnfs.size(), index / kStepsPerVnf + 1));
        Error error = make_error(
            s.error().code,
            "chain " + std::to_string(record->chain_id) + " failed at bring-up step " +
                std::to_string(index + 1) + "/" + std::to_string(steps->size()) + ": " +
                s.error().message + " (partial bring-up rolled back)");
        engine->teardown_best_effort(partial, [done, error](Status) { done(error); });
        return;
      }
      (*self)(index + 1);
    };
    run_rpc_step(engine->network_->scheduler(), "deploy.rpc",
                 chaos::SiteContext::of_container((*steps)[index].container,
                                                  record->chain_id),
                 (*steps)[index].run, std::move(continue_with));
  };
  (*run_all)(0);
}

namespace {

/// "Already gone" outcomes an idempotent teardown steps over: the flow /
/// VNF / agent the step wanted to remove no longer exists, which is the
/// desired end state anyway.
bool benign_teardown_error(const Error& error) {
  return error.code == "pox.steering.unknown-chain" ||
         error.code == "container.unknown-vnf" ||
         error.code == "container.not-running" || error.code == "container.dead" ||
         error.code == "netconf.session.closed" || error.code == "netconf.circuit-open";
}

}  // namespace

void DeploymentEngine::teardown(const DeploymentRecord& record,
                                std::function<void(Status)> done) {
  teardown_impl(record, /*best_effort=*/false, /*remove_steering=*/true, std::move(done));
}

void DeploymentEngine::teardown_best_effort(const DeploymentRecord& record,
                                            std::function<void(Status)> done) {
  teardown_impl(record, /*best_effort=*/true, /*remove_steering=*/true, std::move(done));
}

void DeploymentEngine::teardown_instances(const DeploymentRecord& record,
                                          std::function<void(Status)> done) {
  teardown_impl(record, /*best_effort=*/false, /*remove_steering=*/false, std::move(done));
}

void DeploymentEngine::teardown_impl(const DeploymentRecord& record, bool best_effort,
                                     bool remove_steering, std::function<void(Status)> done) {
  // Steering rules live under the path's id, which diverges from the
  // logical chain id once the chain has been scaled (each migration
  // generation installs under a fresh steering id so make-before-break
  // can hold both rule sets at once).
  const std::uint32_t steering_id =
      record.chain_path.chain_id != 0 ? record.chain_path.chain_id : record.chain_id;
  if (remove_steering) {
    // Injectable: the steering removal that opens every teardown. A drop
    // leaves the rules installed (callers must converge later anyway); a
    // crash restarts the entry switch under the removal.
    const chaos::Decision fp = chaos::hit(
        "teardown.steering", chaos::kCanDrop | chaos::kCanCrash,
        record.chain_path.hops.empty()
            ? chaos::SiteContext::of_container("", record.chain_id)
            : chaos::SiteContext::of_switch(record.chain_path.hops.front().dpid,
                                            record.chain_id));
    Status removed =
        fp.drop() ? Status(make_error("chaos.injected-drop", "steering removal dropped"))
                  : steering_->remove_chain(steering_id);
    if (auto s = std::move(removed);
        !s.ok() && !best_effort && !benign_teardown_error(s.error())) {
      done(s);
      return;
    }
  }
  auto vnfs = std::make_shared<std::vector<VnfDeployment>>(record.vnfs);
  auto* engine = this;
  auto run = std::make_shared<std::function<void(std::size_t)>>();
  // Weak self-reference for the same reason as in deploy(): the pending
  // RPC callbacks hold the strong refs that keep the loop alive.
  std::weak_ptr<std::function<void(std::size_t)>> weak_run = run;
  *run = [engine, vnfs, done, weak_run, best_effort](std::size_t index) {
    if (index == vnfs->size()) {
      done(ok_status());
      return;
    }
    auto tolerated = [best_effort](const Error& error) {
      return best_effort || benign_teardown_error(error);
    };
    const VnfDeployment d = (*vnfs)[index];
    auto self = weak_run.lock();
    auto it = engine->agents_.find(d.container);
    if (it == engine->agents_.end()) {
      if (best_effort) {
        (*self)(index + 1);
      } else {
        done(make_error("deploy.no-agent", "no management agent for " + d.container));
      }
      return;
    }
    netconf::VnfAgentClient* agent = it->second;
    run_rpc_step(
        engine->network_->scheduler(), "teardown.rpc.stop",
        chaos::SiteContext::of_container(d.container),
        [agent, id = d.instance_id](auto cb) { agent->stop_vnf(id, std::move(cb)); },
        [engine, agent, d, done, self, index, tolerated](Status s) {
          if (!s.ok() && !tolerated(s.error())) {
            done(s);
            return;
          }
          run_rpc_step(
              engine->network_->scheduler(), "teardown.rpc.remove",
              chaos::SiteContext::of_container(d.container),
              [agent, id = d.instance_id](auto cb) { agent->remove_vnf(id, std::move(cb)); },
              [self, index, done, tolerated](Status s2) {
                if (!s2.ok() && !tolerated(s2.error())) {
                  done(s2);
                  return;
                }
                (*self)(index + 1);
              });
        });
  };
  (*run)(0);
}

}  // namespace escape::orchestrator
