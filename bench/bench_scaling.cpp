// Bench E9 -- elastic scaling: packet loss and delivery latency through
// a live make-before-break migration of a stateful flow_nat chain. The
// flow runs at 2000 pps while the chain scales 1 -> 2 (state hand-off
// included) and back 2 -> 1. Lost packets and the virtual-time latency
// percentiles are deterministic and go into BENCH_scaling.json for the
// CI regression gate (the loss gate is exact zero -- that is the whole
// point of the migration engine); wall-clock setup cost lives in the
// benchmark output.
#include "bench_common.hpp"

#include "net/headers.hpp"

namespace escape {
namespace {

void build_elastic(Environment& env) {
  auto& net = env.network();
  netemu::LinkConfig cfg;
  cfg.bandwidth_bps = 1'000'000'000;
  cfg.delay = 50 * timeunit::kMicrosecond;
  net.add_host("sap1");
  net.add_host("sap2");
  net.add_switch("s1");
  net.add_switch("s2");
  net.add_container("c1", 2.0, 8);
  net.add_container("c2", 2.0, 8);
  (void)net.add_link("sap1", 0, "s1", 1, cfg);
  (void)net.add_link("sap2", 0, "s2", 1, cfg);
  (void)net.add_link("s1", 2, "s2", 2, cfg);
  (void)net.add_link("c1", 0, "s1", 3, cfg);
  (void)net.add_link("c2", 0, "s2", 3, cfg);
}

sg::ServiceGraph nat_chain() {
  sg::ServiceGraph g("elastic");
  g.add_sap("sap1").add_sap("sap2");
  g.add_vnf("nat", "flow_nat",
            {{"capacity", "1024"}, {"timeout_ms", "30000"}, {"port_count", "64"}}, 0.15);
  g.add_link("sap1", "nat").add_link("nat", "sap2");
  return g;
}

/// One full scale-out + scale-in episode under a 2000 pps flow. Reports
/// packets lost (gated exact zero), delivered-packet latency p50/p99 in
/// virtual microseconds (gated 25%), and the virtual migration latency.
void BM_ScaleEpisodeUnderTraffic(benchmark::State& state) {
  std::uint64_t lost = 0;
  double p50 = 0, p99 = 0, migrate_ms = 0;
  for (auto _ : state) {
    Environment env;
    build_elastic(env);
    if (!env.start().ok()) {
      state.SkipWithError("env start failed");
      return;
    }
    auto* sap1 = env.host("sap1");
    auto* sap2 = env.host("sap2");
    openflow::Match match;
    match.dl_type(net::ethertype::kIpv4).nw_dst(sap2->ip());
    auto chain = env.deploy(nat_chain(), match);
    if (!chain.ok()) {
      state.SkipWithError("deploy failed");
      return;
    }

    constexpr std::uint64_t kPackets = 1200;
    sap1->start_udp_flow(sap2->mac(), sap2->ip(), 5000, 7777, kPackets, /*pps=*/2000);
    env.run_for(100 * timeunit::kMillisecond);

    const SimTime out_begin = env.scheduler().now();
    if (!env.scale_chain(*chain, 2).ok()) {
      state.SkipWithError("scale out failed");
      return;
    }
    const double out_ms = static_cast<double>(env.scheduler().now() - out_begin) /
                          timeunit::kMillisecond;
    env.run_for(200 * timeunit::kMillisecond);
    if (!env.scale_chain(*chain, 1).ok()) {
      state.SkipWithError("scale in failed");
      return;
    }
    env.run_for(seconds(1));  // flow tail + drain

    lost = kPackets - sap2->rx_packets();
    p50 = sap2->latency_us().p50();
    p99 = sap2->latency_us().p99();
    migrate_ms = out_ms;
  }
  state.counters["lost"] = static_cast<double>(lost);
  state.counters["p99_us"] = p99;
  state.counters["migrate_ms"] = migrate_ms;

  obs::MetricsRegistry::global().gauge("bench_scaling_lost_packets", {}).set(
      static_cast<double>(lost));
  obs::MetricsRegistry::global().gauge("bench_scaling_p50_us", {}).set(p50);
  obs::MetricsRegistry::global().gauge("bench_scaling_p99_us", {}).set(p99);
  obs::MetricsRegistry::global().gauge("bench_scaling_migrate_ms", {}).set(migrate_ms);
}
BENCHMARK(BM_ScaleEpisodeUnderTraffic)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace escape

ESCAPE_BENCH_MAIN("scaling");
