// The observability layer's event tracer: a fixed-capacity ring buffer
// of timestamped events with optional begin/end spans. Recording is
// O(1) and allocation-free apart from the event strings; when the ring
// is full the oldest events are overwritten (the dropped count keeps
// the loss visible). Timestamps are virtual nanoseconds supplied by the
// caller, so a span across two scheduler events measures real
// control-plane latency (e.g. packet-in -> flow-mod).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.hpp"
#include "util/time.hpp"

namespace escape::obs {

enum class TracePhase : std::uint8_t { kInstant, kBegin, kEnd };

std::string_view trace_phase_name(TracePhase phase);

struct TraceEvent {
  SimTime ts = 0;  // virtual ns
  TracePhase phase = TracePhase::kInstant;
  std::uint64_t span_id = 0;  // correlates kBegin/kEnd; 0 for instants
  std::string category;
  std::string name;
  std::string arg;
};

class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 4096);

  /// Drops all recorded events and resizes the ring.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  /// Records a point event.
  void instant(SimTime ts, std::string_view category, std::string_view name,
               std::string arg = "");

  /// Opens a span; returns its id (never 0) for end_span.
  std::uint64_t begin_span(SimTime ts, std::string_view category, std::string_view name,
                           std::string arg = "");

  /// Closes a span opened by begin_span. Unknown/already-closed ids
  /// still record the end event (the ring may have dropped the begin).
  void end_span(std::uint64_t span_id, SimTime ts, std::string arg = "");

  /// Events currently held, oldest first.
  std::vector<TraceEvent> events() const;

  std::size_t size() const;
  std::uint64_t total_recorded() const;
  std::uint64_t dropped() const;

  void clear();

  /// {"events": [{ts, phase, span, category, name, arg}], "dropped": N}.
  json::Value to_json() const;

 private:
  void push(TraceEvent&& event);

  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;  // next write slot once the ring has wrapped
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t next_span_ = 1;
};

/// The process-wide trace ring every layer records into.
TraceRing& tracer();

}  // namespace escape::obs
