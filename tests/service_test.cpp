// Tests for the service layer: catalog template rendering, declarative
// topology / SG formats, and request preparation.
#include <gtest/gtest.h>

#include "click/config.hpp"
#include "service/formats.hpp"
#include "service/topologies.hpp"
#include "service/layer.hpp"

namespace escape::service {
namespace {

// --- catalog --------------------------------------------------------------------

TEST(Catalog, BuiltinsPresent) {
  auto catalog = VnfCatalog::with_builtins();
  for (const char* type :
       {"monitor", "firewall", "ratelimiter", "dpi", "delay", "headerrewriter", "napt",
        "loadbalancer"}) {
    EXPECT_TRUE(catalog.has(type)) << type;
  }
  EXPECT_FALSE(catalog.has("quantum-router"));
  EXPECT_GE(catalog.types().size(), 8u);
}

TEST(Catalog, EveryBuiltinRendersToValidClick) {
  auto catalog = VnfCatalog::with_builtins();
  EventScheduler sched;
  for (const auto& type : catalog.types()) {
    auto config = catalog.render(type, {});
    ASSERT_TRUE(config.ok()) << type << ": " << config.error().to_string();
    auto router = click::build_router(*config, sched);
    EXPECT_TRUE(router.ok()) << type << ": "
                             << (router.ok() ? "" : router.error().to_string());
  }
}

TEST(Catalog, ParameterSubstitution) {
  auto catalog = VnfCatalog::with_builtins();
  auto config = catalog.render("ratelimiter", {{"rate", "5000"}, {"queue", "64"}});
  ASSERT_TRUE(config.ok());
  EXPECT_NE(config->find("RATE 5000"), std::string::npos);
  EXPECT_NE(config->find("Queue(64)"), std::string::npos);
}

TEST(Catalog, DefaultsUsedWhenParamOmitted) {
  auto catalog = VnfCatalog::with_builtins();
  auto config = catalog.render("ratelimiter", {});
  ASSERT_TRUE(config.ok());
  EXPECT_NE(config->find("RATE 1000"), std::string::npos);
}

TEST(Catalog, UnknownParamRejected) {
  auto catalog = VnfCatalog::with_builtins();
  auto config = catalog.render("monitor", {{"bogus", "1"}});
  ASSERT_FALSE(config.ok());
  EXPECT_EQ(config.error().code, "catalog.unknown-param");
}

TEST(Catalog, UnknownTypeRejected) {
  auto catalog = VnfCatalog::with_builtins();
  EXPECT_EQ(catalog.render("nope", {}).error().code, "catalog.unknown-type");
}

TEST(Catalog, CustomTemplateRegistration) {
  auto catalog = VnfCatalog::with_builtins();
  catalog.add(VnfTemplate{"mybox",
                          "custom",
                          "from :: FromDevice(DEVNAME in0);\n"
                          "p :: Paint(COLOR ${color});\n"
                          "to :: ToDevice(DEVNAME out0);\n"
                          "from -> p -> to;\n",
                          0.1,
                          1,
                          {{"color", "1"}}});
  auto config = catalog.render("mybox", {{"color", "7"}});
  ASSERT_TRUE(config.ok());
  EXPECT_NE(config->find("COLOR 7"), std::string::npos);
  // Braced and unbraced forms both substitute; missing closing brace errors.
  catalog.add(VnfTemplate{"broken", "", "x :: Paint(COLOR ${color);", 0.1, 1, {{"color", "1"}}});
  EXPECT_EQ(catalog.render("broken", {}).error().code, "catalog.bad-template");
}

// --- topology format ----------------------------------------------------------------

constexpr const char* kTopologyJson = R"({
  "name": "demo",
  "nodes": [
    {"name": "sap1", "kind": "host"},
    {"name": "s1", "kind": "switch"},
    {"name": "c1", "kind": "container", "cpu": 2.0, "slots": 4}
  ],
  "links": [
    {"a": "sap1", "a_port": 0, "b": "s1", "b_port": 1,
     "bw_mbps": 100, "delay_us": 500, "queue": 64},
    {"a": "c1", "a_port": 0, "b": "s1", "b_port": 2, "bw_mbps": 1000}
  ]
})";

TEST(TopologyFormat, ParseFields) {
  auto spec = TopologySpec::from_json(kTopologyJson);
  ASSERT_TRUE(spec.ok()) << spec.error().to_string();
  EXPECT_EQ(spec->name, "demo");
  ASSERT_EQ(spec->nodes.size(), 3u);
  EXPECT_EQ(spec->nodes[2].kind, "container");
  EXPECT_DOUBLE_EQ(spec->nodes[2].cpu, 2.0);
  EXPECT_EQ(spec->nodes[2].vnf_slots, 4u);
  ASSERT_EQ(spec->links.size(), 2u);
  EXPECT_EQ(spec->links[0].bandwidth_bps, 100'000'000u);
  EXPECT_EQ(spec->links[0].delay, 500 * timeunit::kMicrosecond);
  EXPECT_EQ(spec->links[0].queue_frames, 64u);
}

TEST(TopologyFormat, RoundTripThroughJson) {
  auto spec = TopologySpec::from_json(kTopologyJson);
  ASSERT_TRUE(spec.ok());
  auto again = TopologySpec::from_json(spec->to_json().dump());
  ASSERT_TRUE(again.ok()) << again.error().to_string();
  EXPECT_EQ(again->nodes.size(), spec->nodes.size());
  EXPECT_EQ(again->links.size(), spec->links.size());
  EXPECT_EQ(again->links[0].bandwidth_bps, spec->links[0].bandwidth_bps);
}

TEST(TopologyFormat, BuildsLiveNetwork) {
  auto spec = TopologySpec::from_json(kTopologyJson);
  ASSERT_TRUE(spec.ok());
  EventScheduler sched;
  netemu::Network net(sched);
  ASSERT_TRUE(spec->build(net).ok());
  EXPECT_NE(net.host("sap1"), nullptr);
  EXPECT_NE(net.switch_node("s1"), nullptr);
  EXPECT_NE(net.container("c1"), nullptr);
  EXPECT_EQ(net.links().size(), 2u);
}

TEST(TopologyFormat, ToResourceGraph) {
  auto spec = TopologySpec::from_json(kTopologyJson);
  ASSERT_TRUE(spec.ok());
  auto view = spec->to_resource_graph();
  EXPECT_EQ(view.node("sap1")->kind, sg::ResourceKind::kSap);
  EXPECT_EQ(view.node("c1")->kind, sg::ResourceKind::kContainer);
  EXPECT_DOUBLE_EQ(view.node("c1")->cpu_capacity, 2.0);
  EXPECT_EQ(view.links().size(), 2u);
}

TEST(TopologyFormat, Errors) {
  EXPECT_FALSE(TopologySpec::from_json("[1,2]").ok());
  EXPECT_FALSE(TopologySpec::from_json(R"({"nodes":[{"name":"x","kind":"blimp"}]})").ok());
  EXPECT_FALSE(TopologySpec::from_json(R"({"nodes":[{"kind":"host"}]})").ok());
  EXPECT_FALSE(TopologySpec::from_json(R"({"links":[{"a":"x"}]})").ok());
}

// --- service graph format --------------------------------------------------------------

constexpr const char* kSgJson = R"({
  "name": "web-chain",
  "saps": ["sap1", "sap2"],
  "vnfs": [
    {"id": "fw", "type": "firewall", "cpu": 0.2,
     "params": {"rules": "allow ip", "default": "deny"}},
    {"id": "mon", "type": "monitor"}
  ],
  "links": [
    {"src": "sap1", "dst": "fw", "bw_mbps": 10},
    {"src": "fw", "dst": "mon", "bw_mbps": 10},
    {"src": "mon", "dst": "sap2", "bw_mbps": 10, "max_delay_ms": 5}
  ],
  "requirements": [
    {"a": "sap1", "b": "sap2", "bw_mbps": 10, "max_delay_ms": 40}
  ]
})";

TEST(SgFormat, ParseAndValidate) {
  auto graph = service_graph_from_json(kSgJson);
  ASSERT_TRUE(graph.ok()) << graph.error().to_string();
  EXPECT_EQ(graph->name(), "web-chain");
  EXPECT_EQ(graph->saps().size(), 2u);
  ASSERT_EQ(graph->vnfs().size(), 2u);
  EXPECT_EQ(graph->vnfs()[0].params.at("default"), "deny");
  EXPECT_DOUBLE_EQ(graph->vnfs()[0].cpu_demand, 0.2);
  ASSERT_EQ(graph->requirements().size(), 1u);
  EXPECT_EQ(graph->requirements()[0].max_delay, 40 * timeunit::kMillisecond);
  auto order = graph->chain_order();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(*order, (std::vector<std::string>{"sap1", "fw", "mon", "sap2"}));
}

TEST(SgFormat, RoundTrip) {
  auto graph = service_graph_from_json(kSgJson);
  ASSERT_TRUE(graph.ok());
  auto again = service_graph_from_json(service_graph_to_json(*graph).dump());
  ASSERT_TRUE(again.ok()) << again.error().to_string();
  EXPECT_EQ(again->vnfs().size(), 2u);
  EXPECT_EQ(again->links().size(), 3u);
  EXPECT_EQ(again->requirements().size(), 1u);
}

TEST(SgFormat, InvalidGraphRejected) {
  // VNF without links fails SG validation inside the parser.
  EXPECT_FALSE(service_graph_from_json(
                   R"({"saps":["a"],"vnfs":[{"id":"v","type":"monitor"}],"links":[]})")
                   .ok());
  EXPECT_FALSE(service_graph_from_json(R"({"vnfs":[{"id":"v"}]})").ok());
}

// --- service layer -----------------------------------------------------------------------

TEST(ServiceLayer, PrepareRendersEveryVnf) {
  ServiceLayer layer;
  auto graph = service_graph_from_json(kSgJson);
  ASSERT_TRUE(graph.ok());
  auto rendered = layer.prepare(*graph);
  ASSERT_TRUE(rendered.ok()) << rendered.error().to_string();
  ASSERT_EQ(rendered->size(), 2u);
  EXPECT_EQ((*rendered)[0].id, "fw");
  EXPECT_NE((*rendered)[0].click_config.find("DEFAULT deny"), std::string::npos);
  EXPECT_EQ((*rendered)[1].vnf_type, "monitor");
  // Monitor had no explicit cpu: graph default (0.1) applies.
  EXPECT_DOUBLE_EQ((*rendered)[1].cpu_demand, 0.1);
}

TEST(ServiceLayer, UnknownVnfTypeRejected) {
  ServiceLayer layer;
  sg::ServiceGraph g;
  g.add_sap("a").add_sap("b").add_vnf("v", "hologram").add_link("a", "v").add_link("v", "b");
  auto rendered = layer.prepare(g);
  ASSERT_FALSE(rendered.ok());
  EXPECT_EQ(rendered.error().code, "service.unknown-vnf-type");
}

TEST(ServiceLayer, SlaDelayCheck) {
  sg::E2eRequirement req{"a", "b", 0, 10 * timeunit::kMillisecond};
  auto ok = ServiceLayer::check_delay(req, 8.0);
  EXPECT_TRUE(ok.delay_met);
  auto bad = ServiceLayer::check_delay(req, 12.0);
  EXPECT_FALSE(bad.delay_met);
  sg::E2eRequirement unconstrained{"a", "b", 0, 0};
  EXPECT_TRUE(ServiceLayer::check_delay(unconstrained, 1e9).delay_met);
}


// --- topology generators + dot export -----------------------------------------

TEST(Topologies, LinearGeneratesDeployableTopology) {
  auto spec = topologies::linear(4);
  EventScheduler sched;
  netemu::Network net(sched);
  ASSERT_TRUE(spec.build(net).ok());
  EXPECT_EQ(net.switch_count(), 4u);
  EXPECT_EQ(net.container_count(), 4u);
  EXPECT_EQ(net.host_count(), 2u);
  // Every generated topology routes sap1 -> sap2.
  auto view = spec.to_resource_graph();
  EXPECT_TRUE(view.shortest_path("sap1", "sap2"));
}

TEST(Topologies, StarAndRingAreWellFormed) {
  for (auto spec : {topologies::star(3), topologies::ring(6)}) {
    EventScheduler sched;
    netemu::Network net(sched);
    ASSERT_TRUE(spec.build(net).ok()) << spec.name;
    auto view = spec.to_resource_graph();
    EXPECT_FALSE(view.containers().empty()) << spec.name;
  }
  // Ring: both directions around the ring exist.
  auto ring = topologies::ring(6).to_resource_graph();
  auto path = ring.shortest_path("s1", "s4");
  ASSERT_TRUE(path);
  EXPECT_LE(path->link_indices.size(), 3u);
}

TEST(Topologies, DotExports) {
  auto spec = topologies::linear(2);
  std::string dot = topologies::to_dot(spec);
  EXPECT_NE(dot.find("graph \"linear-2\""), std::string::npos);
  EXPECT_NE(dot.find("\"sap1\" [shape=ellipse]"), std::string::npos);
  EXPECT_NE(dot.find("shape=box3d"), std::string::npos);  // containers
  EXPECT_NE(dot.find("--"), std::string::npos);

  sg::ServiceGraph g("sgdot");
  g.add_sap("a").add_sap("b").add_vnf("fw", "firewall", {}, 0.25);
  g.add_link("a", "fw", 10'000'000).add_link("fw", "b");
  std::string sgdot = topologies::to_dot(g);
  EXPECT_NE(sgdot.find("digraph \"sgdot\""), std::string::npos);
  EXPECT_NE(sgdot.find("(firewall, cpu 0.25)"), std::string::npos);
  EXPECT_NE(sgdot.find("\"a\" -> \"fw\" [label=\"10M\"]"), std::string::npos);
}

}  // namespace
}  // namespace escape::service
