// Unit tests for the JSON value model, parser and serializer.
#include <gtest/gtest.h>

#include "json/json.hpp"

namespace escape::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null")->is_null());
  EXPECT_EQ(parse("true")->as_bool(), true);
  EXPECT_EQ(parse("false")->as_bool(true), false);
  EXPECT_EQ(parse("42")->as_int(), 42);
  EXPECT_EQ(parse("-7")->as_int(), -7);
  EXPECT_DOUBLE_EQ(parse("2.5")->as_double(), 2.5);
  EXPECT_DOUBLE_EQ(parse("1e3")->as_double(), 1000.0);
  EXPECT_EQ(parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonParse, IntegerVsDoubleDistinction) {
  EXPECT_TRUE(parse("42")->is_int());
  EXPECT_TRUE(parse("42.0")->is_double());
  EXPECT_TRUE(parse("42")->is_number());
}

TEST(JsonParse, NestedStructure) {
  auto doc = parse(R"({"nodes":[{"name":"s1","kind":"switch"}],"count":1})");
  ASSERT_TRUE(doc.ok()) << doc.error().to_string();
  const Value& root = *doc;
  EXPECT_EQ(root["count"].as_int(), 1);
  EXPECT_EQ(root["nodes"][0]["name"].as_string(), "s1");
  EXPECT_EQ(root["nodes"][0]["kind"].as_string(), "switch");
}

TEST(JsonParse, MissingKeysYieldNull) {
  auto doc = parse(R"({"a":1})");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE((*doc)["b"].is_null());
  EXPECT_TRUE((*doc)["a"]["nested"].is_null());
  EXPECT_TRUE((*doc)["a"][static_cast<std::size_t>(3)].is_null());
  EXPECT_FALSE((*doc).has("b"));
  EXPECT_TRUE((*doc).has("a"));
}

TEST(JsonParse, StringEscapes) {
  auto doc = parse(R"("a\"b\\c\nd\teA")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->as_string(), "a\"b\\c\nd\teA");
}

TEST(JsonParse, UnicodeEscapeToUtf8) {
  EXPECT_EQ(parse(R"("é")")->as_string(), "\xc3\xa9");      // é
  EXPECT_EQ(parse(R"("€")")->as_string(), "\xe2\x82\xac");  // €
}

TEST(JsonParse, Whitespace) {
  auto doc = parse(" {\n\t\"a\" : [ 1 , 2 ] } ");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)["a"].as_array().size(), 2u);
}

TEST(JsonParse, Errors) {
  EXPECT_FALSE(parse("").ok());
  EXPECT_FALSE(parse("{").ok());
  EXPECT_FALSE(parse("{\"a\":}").ok());
  EXPECT_FALSE(parse("[1,]").ok());
  EXPECT_FALSE(parse("{\"a\":1,}").ok());
  EXPECT_FALSE(parse("\"unterminated").ok());
  EXPECT_FALSE(parse("tru").ok());
  EXPECT_FALSE(parse("1 2").ok());
  EXPECT_FALSE(parse("{'a':1}").ok());  // single quotes are not JSON
}

TEST(JsonDump, CompactRoundTrip) {
  const char* text = R"({"a":[1,2.5,"x",true,null],"b":{"c":-3}})";
  auto doc = parse(text);
  ASSERT_TRUE(doc.ok());
  auto again = parse(doc->dump());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)["a"][1].as_double(), 2.5);
  EXPECT_EQ((*again)["b"]["c"].as_int(), -3);
  EXPECT_TRUE((*again)["a"][4].is_null());
}

TEST(JsonDump, EscapesControlCharacters) {
  Value v(std::string("a\nb\x01"));
  std::string out = v.dump();
  EXPECT_NE(out.find("\\n"), std::string::npos);
  EXPECT_NE(out.find("\\u0001"), std::string::npos);
  auto back = parse(out);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->as_string(), "a\nb\x01");
}

TEST(JsonDump, PrettyPrintingParsesBack) {
  Object obj;
  obj["list"] = Array{Value(1), Value(2)};
  obj["name"] = "pretty";
  Value v(std::move(obj));
  auto doc = parse(v.dump(2));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)["name"].as_string(), "pretty");
}

TEST(JsonBuild, MakeHelpers) {
  Value v;
  v.make_object()["x"] = 1;
  EXPECT_TRUE(v.is_object());
  Value arr;
  arr.make_array().push_back("e");
  EXPECT_EQ(arr[static_cast<std::size_t>(0)].as_string(), "e");
}

TEST(JsonBuild, TypeCoercionFallbacks) {
  Value s("str");
  EXPECT_EQ(s.as_int(5), 5);
  EXPECT_EQ(s.as_bool(true), true);
  Value i(7);
  EXPECT_DOUBLE_EQ(i.as_double(), 7.0);
  Value d(2.9);
  EXPECT_EQ(d.as_int(), 2);
}

class JsonNumberRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(JsonNumberRoundTrip, IntegersExact) {
  Value v(GetParam());
  auto doc = parse(v.dump());
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->is_int());
  EXPECT_EQ(doc->as_int(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Values, JsonNumberRoundTrip,
                         ::testing::Values(0, 1, -1, 1'000'000'007LL, -987654321LL,
                                           INT64_MAX, INT64_MIN + 1));

}  // namespace
}  // namespace escape::json
