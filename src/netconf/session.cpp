#include "netconf/session.hpp"

#include "obs/trace.hpp"

namespace escape::netconf {

std::string build_hello(const std::vector<std::string>& capabilities) {
  xml::Element hello("hello");
  hello.set_attr("xmlns", std::string(kNetconfNs));
  auto& caps = hello.add_child("capabilities");
  for (const auto& c : capabilities) caps.add_leaf("capability", c);
  return hello.to_string();
}

namespace {

std::vector<std::string> parse_capabilities(const xml::Element& hello) {
  std::vector<std::string> out;
  if (const auto* caps = hello.child("capabilities")) {
    for (const auto* cap : caps->children_named("capability")) out.push_back(cap->text());
  }
  return out;
}

}  // namespace

// --- NetconfServer -------------------------------------------------------------

NetconfServer::NetconfServer(std::shared_ptr<TransportEndpoint> transport,
                             std::vector<std::string> capabilities)
    : transport_(std::move(transport)) {
  auto& registry = obs::MetricsRegistry::global();
  m_rpcs_ = &registry.counter("escape_netconf_rpcs_total", {{"side", "server"}});
  m_errors_ = &registry.counter("escape_netconf_rpc_errors_total", {{"side", "server"}});
  transport_->set_on_bytes([this](std::string bytes) { on_bytes(std::move(bytes)); });
  transport_->send(FrameReader::frame(build_hello(capabilities)));
}

void NetconfServer::register_rpc(const std::string& operation, RpcHandler handler) {
  handlers_[operation] = std::move(handler);
}

void NetconfServer::on_bytes(std::string bytes) {
  for (auto& message : reader_.feed(bytes)) handle_message(message);
}

void NetconfServer::send_notification(std::unique_ptr<xml::Element> event,
                                      const std::string& event_time) {
  xml::Element notif("notification");
  notif.set_attr("xmlns", "urn:ietf:params:xml:ns:netconf:notification:1.0");
  notif.add_leaf("eventTime", event_time);
  notif.add_child(std::move(event));
  transport_->send(FrameReader::frame(notif.to_string()));
}

void NetconfServer::send_reply(const std::string& message_id,
                               Result<std::unique_ptr<xml::Element>> result) {
  xml::Element reply("rpc-reply");
  reply.set_attr("xmlns", std::string(kNetconfNs));
  reply.set_attr("message-id", message_id);
  if (result.ok()) {
    if (*result) {
      reply.add_child(std::move(*result));
    } else {
      reply.add_child("ok");
    }
  } else {
    ++rpc_errors_;
    m_errors_->add();
    auto& err = reply.add_child("rpc-error");
    err.add_leaf("error-type", "application");
    err.add_leaf("error-tag", result.error().code);
    err.add_leaf("error-severity", "error");
    err.add_leaf("error-message", result.error().message);
  }
  transport_->send(FrameReader::frame(reply.to_string()));
}

void NetconfServer::handle_message(const std::string& message) {
  auto doc = xml::parse(message);
  if (!doc.ok()) {
    log_.warn("dropping malformed message: ", doc.error().to_string());
    return;
  }
  const xml::Element& root = **doc;

  if (root.local_name() == "hello") {
    hello_received_ = true;
    peer_capabilities_ = parse_capabilities(root);
    return;
  }
  if (root.local_name() != "rpc") {
    log_.warn("unexpected message <", root.local_name(), ">");
    return;
  }
  const std::string message_id = root.attr("message-id");
  if (root.children().empty()) {
    send_reply(message_id, make_error("netconf.rpc.malformed", "empty <rpc>"));
    return;
  }
  const xml::Element& operation = *root.children().front();
  auto it = handlers_.find(operation.local_name());
  if (it == handlers_.end()) {
    send_reply(message_id, make_error("operation-not-supported",
                                      "unknown operation: " + operation.local_name()));
    return;
  }
  ++rpcs_handled_;
  m_rpcs_->add();
  send_reply(message_id, it->second(operation));
}

// --- NetconfClient -------------------------------------------------------------

NetconfClient::NetconfClient(std::shared_ptr<TransportEndpoint> transport)
    : transport_(std::move(transport)) {
  auto& registry = obs::MetricsRegistry::global();
  m_rpcs_ = &registry.counter("escape_netconf_rpcs_total", {{"side", "client"}});
  m_rtt_us_ = &registry.histogram("escape_netconf_rpc_rtt_us");
  transport_->set_on_bytes([this](std::string bytes) { on_bytes(std::move(bytes)); });
  transport_->send(FrameReader::frame(
      build_hello({std::string(kBaseCapability), std::string(kVnfCapability)})));
}

void NetconfClient::on_established(std::function<void()> fn) {
  if (established_) {
    fn();
  } else {
    established_callbacks_.push_back(std::move(fn));
  }
}

void NetconfClient::rpc(std::unique_ptr<xml::Element> operation, ReplyCallback cb) {
  const std::string id = std::to_string(next_message_id_++);
  const std::string op_name = operation->local_name();
  xml::Element rpc("rpc");
  rpc.set_attr("xmlns", std::string(kNetconfNs));
  rpc.set_attr("message-id", id);
  rpc.add_child(std::move(operation));
  const SimTime now = transport_->now();
  const std::uint64_t span =
      obs::tracer().begin_span(now, "netconf", "rpc", op_name + " id=" + id);
  pending_[id] = PendingRpc{std::move(cb), now, span};
  m_rpcs_->add();
  transport_->send(FrameReader::frame(rpc.to_string()));
}

void NetconfClient::on_bytes(std::string bytes) {
  for (auto& message : reader_.feed(bytes)) handle_message(message);
}

void NetconfClient::handle_message(const std::string& message) {
  auto doc = xml::parse(message);
  if (!doc.ok()) {
    log_.warn("dropping malformed message: ", doc.error().to_string());
    return;
  }
  xml::Element& root = **doc;

  if (root.local_name() == "hello") {
    established_ = true;
    server_capabilities_ = parse_capabilities(root);
    for (auto& fn : established_callbacks_) fn();
    established_callbacks_.clear();
    return;
  }
  if (root.local_name() == "notification") {
    ++notifications_;
    if (notification_cb_) {
      for (const auto& child : root.children()) {
        if (child->local_name() != "eventTime") {
          notification_cb_(*child);
          break;
        }
      }
    }
    return;
  }
  if (root.local_name() != "rpc-reply") {
    log_.warn("unexpected message <", root.local_name(), ">");
    return;
  }
  auto it = pending_.find(root.attr("message-id"));
  if (it == pending_.end()) {
    log_.warn("rpc-reply with unknown message-id ", root.attr("message-id"));
    return;
  }
  PendingRpc pending = std::move(it->second);
  pending_.erase(it);
  const SimTime now = transport_->now();
  if (now >= pending.sent_at) {
    m_rtt_us_->record(static_cast<double>(now - pending.sent_at) / timeunit::kMicrosecond);
  }
  obs::tracer().end_span(pending.span_id, now);
  ReplyCallback cb = std::move(pending.cb);

  if (const xml::Element* error = root.child("rpc-error")) {
    cb(make_error(error->child_text("error-tag"), error->child_text("error-message")));
    return;
  }
  cb(std::move(*doc));  // hand the whole <rpc-reply> element to the caller
}

}  // namespace escape::netconf
