#include "json/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/strings.hpp"

namespace escape::json {

namespace {
const std::string kEmptyString;
const Array kEmptyArray;
const Object kEmptyObject;
const Value kNullValue;
}  // namespace

bool Value::as_bool(bool fallback) const {
  if (auto* b = std::get_if<bool>(&data_)) return *b;
  return fallback;
}

std::int64_t Value::as_int(std::int64_t fallback) const {
  if (auto* i = std::get_if<std::int64_t>(&data_)) return *i;
  if (auto* d = std::get_if<double>(&data_)) return static_cast<std::int64_t>(*d);
  return fallback;
}

double Value::as_double(double fallback) const {
  if (auto* d = std::get_if<double>(&data_)) return *d;
  if (auto* i = std::get_if<std::int64_t>(&data_)) return static_cast<double>(*i);
  return fallback;
}

const std::string& Value::as_string() const {
  if (auto* s = std::get_if<std::string>(&data_)) return *s;
  return kEmptyString;
}

const Array& Value::as_array() const {
  if (auto* a = std::get_if<Array>(&data_)) return *a;
  return kEmptyArray;
}

const Object& Value::as_object() const {
  if (auto* o = std::get_if<Object>(&data_)) return *o;
  return kEmptyObject;
}

Array& Value::make_array() {
  if (!is_array()) data_ = Array{};
  return std::get<Array>(data_);
}

Object& Value::make_object() {
  if (!is_object()) data_ = Object{};
  return std::get<Object>(data_);
}

const Value& Value::operator[](std::string_view key) const {
  if (auto* o = std::get_if<Object>(&data_)) {
    auto it = o->find(std::string(key));
    if (it != o->end()) return it->second;
  }
  return kNullValue;
}

const Value& Value::operator[](std::size_t index) const {
  if (auto* a = std::get_if<Array>(&data_)) {
    if (index < a->size()) return (*a)[index];
  }
  return kNullValue;
}

bool Value::has(std::string_view key) const {
  if (auto* o = std::get_if<Object>(&data_)) return o->count(std::string(key)) > 0;
  return false;
}

std::string escape_string(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strings::format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Value::serialize(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  auto pad = [&](int d) {
    if (pretty) out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  auto newline = [&] {
    if (pretty) out += '\n';
  };

  if (is_null()) {
    out += "null";
  } else if (auto* b = std::get_if<bool>(&data_)) {
    out += *b ? "true" : "false";
  } else if (auto* i = std::get_if<std::int64_t>(&data_)) {
    out += std::to_string(*i);
  } else if (auto* d = std::get_if<double>(&data_)) {
    if (std::isfinite(*d)) {
      std::string num = strings::format("%.17g", *d);
      out += num;
    } else {
      out += "null";  // JSON has no Inf/NaN
    }
  } else if (auto* s = std::get_if<std::string>(&data_)) {
    out += '"';
    out += escape_string(*s);
    out += '"';
  } else if (auto* a = std::get_if<Array>(&data_)) {
    if (a->empty()) {
      out += "[]";
      return;
    }
    out += '[';
    newline();
    for (std::size_t i = 0; i < a->size(); ++i) {
      pad(depth + 1);
      (*a)[i].serialize(out, indent, depth + 1);
      if (i + 1 < a->size()) out += ',';
      newline();
    }
    pad(depth);
    out += ']';
  } else if (auto* o = std::get_if<Object>(&data_)) {
    if (o->empty()) {
      out += "{}";
      return;
    }
    out += '{';
    newline();
    std::size_t i = 0;
    for (const auto& [k, v] : *o) {
      pad(depth + 1);
      out += '"';
      out += escape_string(k);
      out += "\":";
      if (pretty) out += ' ';
      v.serialize(out, indent, depth + 1);
      if (++i < o->size()) out += ',';
      newline();
    }
    pad(depth);
    out += '}';
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  serialize(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : in_(input) {}

  Result<Value> parse_document() {
    auto v = parse_value();
    if (!v.ok()) return v;
    skip_ws();
    if (pos_ != in_.size()) return fail("trailing content after JSON value");
    return v;
  }

 private:
  Error fail(std::string msg) const {
    return make_error("json.parse", msg + strings::format(" (at offset %zu)", pos_));
  }

  bool eof() const { return pos_ >= in_.size(); }
  char peek() const { return in_[pos_]; }
  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }
  bool match(char c) {
    if (!eof() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool match_word(std::string_view w) {
    if (in_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Result<Value> parse_value() {
    skip_ws();
    if (eof()) return fail("unexpected end of input");
    char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto s = parse_string();
      if (!s.ok()) return s.error();
      return Value(std::move(*s));
    }
    if (match_word("true")) return Value(true);
    if (match_word("false")) return Value(false);
    if (match_word("null")) return Value(nullptr);
    return parse_number();
  }

  Result<Value> parse_object() {
    ++pos_;  // '{'
    Object obj;
    skip_ws();
    if (match('}')) return Value(std::move(obj));
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key.ok()) return key.error();
      skip_ws();
      if (!match(':')) return fail("expected ':' in object");
      auto val = parse_value();
      if (!val.ok()) return val;
      obj[std::move(*key)] = std::move(*val);
      skip_ws();
      if (match(',')) continue;
      if (match('}')) return Value(std::move(obj));
      return fail("expected ',' or '}' in object");
    }
  }

  Result<Value> parse_array() {
    ++pos_;  // '['
    Array arr;
    skip_ws();
    if (match(']')) return Value(std::move(arr));
    while (true) {
      auto val = parse_value();
      if (!val.ok()) return val;
      arr.push_back(std::move(*val));
      skip_ws();
      if (match(',')) continue;
      if (match(']')) return Value(std::move(arr));
      return fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> parse_string() {
    if (eof() || peek() != '"') return fail("expected string");
    ++pos_;
    std::string out;
    while (!eof()) {
      char c = in_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (eof()) break;
        char esc = in_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > in_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = in_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("invalid \\u escape");
            }
            // UTF-8 encode (BMP only; surrogate pairs unsupported).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return fail("invalid escape character");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  Result<Value> parse_number() {
    std::size_t start = pos_;
    if (!eof() && (peek() == '-' || peek() == '+')) ++pos_;
    bool is_float = false;
    while (!eof()) {
      char c = peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_float = true;
        ++pos_;
      } else {
        break;
      }
    }
    std::string_view token = in_.substr(start, pos_ - start);
    if (token.empty()) return fail("expected value");
    if (!is_float) {
      if (auto i = strings::parse_i64(token)) return Value(*i);
    }
    if (auto d = strings::parse_double(token)) return Value(*d);
    return fail("invalid number");
  }

  std::string_view in_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Value> parse(std::string_view input) { return Parser(input).parse_document(); }

}  // namespace escape::json
