file(REMOVE_RECURSE
  "CMakeFiles/orchestrator_test.dir/orchestrator_test.cpp.o"
  "CMakeFiles/orchestrator_test.dir/orchestrator_test.cpp.o.d"
  "orchestrator_test"
  "orchestrator_test.pdb"
  "orchestrator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orchestrator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
