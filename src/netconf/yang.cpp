#include "netconf/yang.hpp"

#include <set>

#include "util/strings.hpp"

namespace escape::netconf {

SchemaNode SchemaNode::container(std::string name, std::vector<SchemaNode> children) {
  SchemaNode n;
  n.name = std::move(name);
  n.kind = Kind::kContainer;
  n.children = std::move(children);
  return n;
}

SchemaNode SchemaNode::list(std::string name, std::string key,
                            std::vector<SchemaNode> children) {
  SchemaNode n;
  n.name = std::move(name);
  n.kind = Kind::kList;
  n.list_key = std::move(key);
  n.children = std::move(children);
  return n;
}

SchemaNode SchemaNode::leaf(std::string name, LeafType type, bool mandatory) {
  SchemaNode n;
  n.name = std::move(name);
  n.kind = Kind::kLeaf;
  n.leaf_type = type;
  n.mandatory = mandatory;
  return n;
}

SchemaNode SchemaNode::enumeration(std::string name, std::vector<std::string> values,
                                   bool mandatory) {
  SchemaNode n;
  n.name = std::move(name);
  n.kind = Kind::kLeaf;
  n.leaf_type = LeafType::kEnum;
  n.enum_values = std::move(values);
  n.mandatory = mandatory;
  return n;
}

const SchemaNode* SchemaNode::child(std::string_view child_name) const {
  for (const auto& c : children) {
    if (c.name == child_name) return &c;
  }
  return nullptr;
}

namespace {

Status validate_leaf_value(const std::string& value, const SchemaNode& schema,
                           const std::string& path) {
  switch (schema.leaf_type) {
    case LeafType::kString:
      return ok_status();
    case LeafType::kUint:
      if (!strings::parse_u64(value)) {
        return make_error("yang.bad-value", path + ": expected unsigned integer, got '" +
                                                value + "'");
      }
      return ok_status();
    case LeafType::kDecimal:
      if (!strings::parse_double(value)) {
        return make_error("yang.bad-value", path + ": expected decimal, got '" + value + "'");
      }
      return ok_status();
    case LeafType::kBoolean:
      if (value != "true" && value != "false") {
        return make_error("yang.bad-value", path + ": expected true/false, got '" + value + "'");
      }
      return ok_status();
    case LeafType::kEnum:
      for (const auto& e : schema.enum_values) {
        if (e == value) return ok_status();
      }
      return make_error("yang.bad-value",
                        path + ": '" + value + "' not in enumeration");
  }
  return ok_status();
}

Status validate_node(const xml::Element& element, const SchemaNode& schema,
                     const std::string& path) {
  if (schema.kind == SchemaNode::Kind::kLeaf) {
    if (!element.children().empty()) {
      return make_error("yang.structure", path + ": leaf must not have child elements");
    }
    return validate_leaf_value(element.text(), schema, path);
  }

  // Container or list entry: check children against the schema.
  std::set<std::string> seen;
  for (const auto& child : element.children()) {
    const std::string child_name = child->local_name();
    const std::string child_path = path + "/" + child_name;
    const SchemaNode* child_schema = schema.child(child_name);
    if (!child_schema) {
      return make_error("yang.unknown-element", child_path + ": not in the data model");
    }
    if (child_schema->kind != SchemaNode::Kind::kList && seen.count(child_name)) {
      return make_error("yang.duplicate", child_path + ": may appear at most once");
    }
    seen.insert(child_name);
    if (auto s = validate_node(*child, *child_schema, child_path); !s.ok()) return s;
  }
  // Mandatory children present?
  for (const auto& child_schema : schema.children) {
    if (child_schema.mandatory && !seen.count(child_schema.name)) {
      return make_error("yang.missing-element",
                        path + "/" + child_schema.name + ": mandatory element missing");
    }
  }
  // List entries must carry their key.
  if (schema.kind == SchemaNode::Kind::kList && !schema.list_key.empty()) {
    if (!element.child(schema.list_key)) {
      return make_error("yang.missing-key",
                        path + ": list entry missing key '" + schema.list_key + "'");
    }
  }
  return ok_status();
}

}  // namespace

Status validate(const xml::Element& element, const SchemaNode& schema) {
  if (element.local_name() != schema.name) {
    return make_error("yang.wrong-root", "expected <" + schema.name + ">, got <" +
                                             element.local_name() + ">");
  }
  return validate_node(element, schema, "/" + schema.name);
}

const SchemaNode& vnf_module_schema() {
  static const SchemaNode* schema = [] {
    using S = SchemaNode;
    auto* root = new SchemaNode(S::container(
        "vnfs",
        {S::list("vnf", "id",
                 {
                     S::leaf("id", LeafType::kString, /*mandatory=*/true),
                     S::leaf("type", LeafType::kString),
                     S::leaf("click-config", LeafType::kString),
                     S::leaf("cpu-share", LeafType::kDecimal),
                     S::enumeration("status", {"INITIALIZED", "RUNNING", "STOPPED"}),
                     S::list("connection", "device",
                             {
                                 S::leaf("device", LeafType::kString, /*mandatory=*/true),
                                 S::leaf("port", LeafType::kUint, /*mandatory=*/true),
                             }),
                     S::list("handler", "name",
                             {
                                 S::leaf("name", LeafType::kString, /*mandatory=*/true),
                                 S::leaf("value", LeafType::kString),
                             }),
                 })}));
    return root;
  }();
  return *schema;
}

std::string_view vnf_yang_source() {
  return R"(module escape-vnf {
  namespace "urn:escape:vnf";
  prefix ev;

  container vnfs {
    list vnf {
      key "id";
      leaf id           { type string; mandatory true; }
      leaf type         { type string; }
      leaf click-config { type string; }
      leaf cpu-share    { type decimal64 { fraction-digits 3; } }
      leaf status       { type enumeration {
                            enum INITIALIZED; enum RUNNING; enum STOPPED; } }
      list connection {
        key "device";
        leaf device { type string; mandatory true; }
        leaf port   { type uint16; mandatory true; }
      }
      list handler {
        key "name";
        leaf name  { type string; mandatory true; }
        leaf value { type string; }
      }
    }
  }

  rpc initiateVNF {
    input {
      leaf id           { type string; mandatory true; }
      leaf type         { type string; }
      leaf click-config { type string; mandatory true; }
      leaf cpu-share    { type decimal64 { fraction-digits 3; } }
    }
  }
  rpc startVNF     { input { leaf id { type string; mandatory true; } } }
  rpc stopVNF      { input { leaf id { type string; mandatory true; } } }
  rpc removeVNF    { input { leaf id { type string; mandatory true; } } }
  rpc connectVNF {
    input {
      leaf id     { type string; mandatory true; }
      leaf device { type string; mandatory true; }
      leaf port   { type uint16; mandatory true; }
    }
  }
  rpc disconnectVNF {
    input {
      leaf id     { type string; mandatory true; }
      leaf device { type string; mandatory true; }
    }
  }
  rpc getVNFInfo   { input { leaf id { type string; } } }
})";
}

}  // namespace escape::netconf
