// Liveness monitoring for the management plane: periodic NETCONF probes
// against every watched agent plus administrative link up/down events
// from netemu, feeding the orchestrator's self-healing loop.
//
// Detection is two-pronged: a closed session marks the agent down
// immediately (the transport told us), while a hung-but-open agent is
// caught by probe timeouts -- `failure_threshold` consecutive probe
// failures flip the agent to down. A succeeding probe flips it back up
// (a respawned agent reports healthy on its first reply after rebind).
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>

#include "netconf/vnf_agent.hpp"
#include "netemu/network.hpp"
#include "obs/metrics.hpp"
#include "pox/steering.hpp"
#include "util/event.hpp"
#include "util/logging.hpp"

namespace escape::orchestrator {

struct HealthMonitorOptions {
  SimDuration probe_interval = 50 * timeunit::kMillisecond;
  SimDuration probe_timeout = 20 * timeunit::kMillisecond;
  /// Consecutive failed probes before an agent is declared down.
  int failure_threshold = 2;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(EventScheduler& scheduler, HealthMonitorOptions options = {});
  ~HealthMonitor();

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Watches the agent managing `container`. The client must outlive the
  /// monitor (or be unwatched first); rebinds are transparent -- the
  /// monitor keeps probing the same client object.
  void watch_agent(const std::string& container, netconf::VnfAgentClient* client);

  /// Subscribes to administrative state changes of every current link in
  /// `network` (links added later are not covered).
  void watch_links(netemu::Network& network);

  /// Subscribes to the steering app's divergence signal: a dpid whose
  /// OpenFlow connection dropped counts as diverged (its flow table can
  /// no longer be trusted) until a post-reconnect audit barrier-confirms
  /// it clean again.
  void watch_steering(pox::TrafficSteering& steering);

  using AgentCallback = std::function<void(const std::string& container)>;
  using LinkCallback = std::function<void(const std::string& a, const std::string& b, bool up)>;
  using DpidCallback = std::function<void(openflow::DatapathId)>;
  using DpidResyncCallback = std::function<void(openflow::DatapathId, std::size_t repaired)>;
  void on_agent_down(AgentCallback fn) { agent_down_ = std::move(fn); }
  void on_agent_up(AgentCallback fn) { agent_up_ = std::move(fn); }
  void on_link_state(LinkCallback fn) { link_state_ = std::move(fn); }
  void on_dpid_diverged(DpidCallback fn) { dpid_diverged_ = std::move(fn); }
  void on_dpid_resynced(DpidResyncCallback fn) { dpid_resynced_ = std::move(fn); }

  std::size_t dpids_diverged() const { return diverged_.size(); }

  /// Starts / stops the periodic probe loop. Idle when no agents are
  /// watched. start() probes immediately, then every probe_interval.
  void start();
  void stop();
  bool running() const { return running_; }

  bool agent_healthy(const std::string& container) const;
  std::size_t agents_down() const;

 private:
  struct Watch {
    netconf::VnfAgentClient* client = nullptr;
    int consecutive_failures = 0;
    bool down = false;
    bool probe_outstanding = false;
  };

  void probe_all();
  void probe(const std::string& container, Watch& watch);
  void mark_down(const std::string& container, Watch& watch, const Error& error);
  void mark_up(const std::string& container, Watch& watch);

  EventScheduler* scheduler_;
  HealthMonitorOptions options_;
  bool running_ = false;
  EventHandle tick_;
  std::map<std::string, Watch> watches_;
  std::vector<std::pair<netemu::Link*, std::uint64_t>> link_listeners_;
  std::set<openflow::DatapathId> diverged_;
  AgentCallback agent_down_;
  AgentCallback agent_up_;
  LinkCallback link_state_;
  DpidCallback dpid_diverged_;
  DpidResyncCallback dpid_resynced_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  obs::Counter* m_probe_ok_;
  obs::Counter* m_probe_fail_;
  obs::Gauge* m_agents_down_;
  obs::Gauge* m_dpids_diverged_;
  Logger log_{"orchestrator.health"};
};

}  // namespace escape::orchestrator
