// Pcap capture writer: the "inspect live traffic with standard tools"
// half of demo step 4. Frames observed anywhere in the emulation (host
// receive hooks, Click Tee branches, ...) can be written to a classic
// libpcap file and opened in Wireshark/tcpdump; virtual-time timestamps
// are preserved with microsecond resolution.
#pragma once

#include <cstdio>
#include <string>

#include "net/packet.hpp"
#include "util/result.hpp"
#include "util/time.hpp"

namespace escape::netemu {

class PcapWriter {
 public:
  PcapWriter() = default;
  ~PcapWriter();
  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  /// Opens `path` and writes the global header (linktype Ethernet).
  Status open(const std::string& path, std::uint32_t snaplen = 65535);

  bool is_open() const { return file_ != nullptr; }

  /// Appends one frame with capture time `when` (virtual nanoseconds).
  Status write(const net::Packet& packet, SimTime when);

  std::uint64_t frames_written() const { return frames_; }

  void close();

 private:
  std::FILE* file_ = nullptr;
  std::uint32_t snaplen_ = 65535;
  std::uint64_t frames_ = 0;
};

}  // namespace escape::netemu
