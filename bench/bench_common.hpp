// Shared topology builders for the benchmark suite, plus the
// ESCAPE_BENCH_MAIN entry point that dumps the metrics registry to
// BENCH_<name>.json after the run (CI uploads these as artifacts).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>

#include "escape/environment.hpp"
#include "obs/metrics.hpp"

namespace escape::benchutil {

/// Writes the process-wide metrics snapshot to BENCH_<name>.json in the
/// working directory. Returns false (with a note on stderr) on I/O error
/// so benches still exit 0 -- the artifact is best-effort.
inline bool write_bench_json(const std::string& name) {
  const std::string path = "BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return false;
  }
  out << obs::MetricsRegistry::global().snapshot_json().dump(2) << "\n";
  std::fprintf(stderr, "bench: metrics snapshot -> %s\n", path.c_str());
  return true;
}

/// Linear topology: sap1 - s1 - s2 - ... - sN - sap2, one container per
/// switch. Every link 1 Gb/s, 100 us.
inline void build_linear(Environment& env, int n_switches) {
  auto& net = env.network();
  netemu::LinkConfig cfg;
  cfg.bandwidth_bps = 1'000'000'000;
  cfg.delay = 100 * timeunit::kMicrosecond;
  net.add_host("sap1");
  net.add_host("sap2");
  for (int i = 1; i <= n_switches; ++i) {
    net.add_switch("s" + std::to_string(i));
    net.add_container("c" + std::to_string(i), 4.0, 32);
    (void)net.add_link("c" + std::to_string(i), 0, "s" + std::to_string(i), 3, cfg);
    if (i > 1) {
      (void)net.add_link("s" + std::to_string(i - 1), 2, "s" + std::to_string(i), 1, cfg);
    }
  }
  (void)net.add_link("sap1", 0, "s1", 10, cfg);
  (void)net.add_link("sap2", 0, "s" + std::to_string(n_switches), 10, cfg);
}

/// A k-VNF monitor chain between sap1 and sap2.
inline sg::ServiceGraph monitor_chain(int k, double cpu = 0.05,
                                      std::uint64_t bw = 1'000'000) {
  sg::ServiceGraph g("bench-chain");
  g.add_sap("sap1").add_sap("sap2");
  std::string prev = "sap1";
  for (int i = 0; i < k; ++i) {
    std::string id = "v" + std::to_string(i);
    g.add_vnf(id, "monitor", {}, cpu);
    g.add_link(prev, id, bw);
    prev = id;
  }
  g.add_link(prev, "sap2", bw);
  return g;
}

}  // namespace escape::benchutil

/// Drop-in replacement for BENCHMARK_MAIN() that also emits the
/// BENCH_<name>.json metrics artifact after the benchmarks ran.
#define ESCAPE_BENCH_MAIN(name)                                      \
  int main(int argc, char** argv) {                                  \
    ::benchmark::Initialize(&argc, argv);                            \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {      \
      return 1;                                                      \
    }                                                                \
    ::benchmark::RunSpecifiedBenchmarks();                           \
    ::benchmark::Shutdown();                                         \
    ::escape::benchutil::write_bench_json(name);                     \
    return 0;                                                        \
  }                                                                  \
  static_assert(true, "require a trailing semicolon")
