file(REMOVE_RECURSE
  "CMakeFiles/escape_netconf.dir/session.cpp.o"
  "CMakeFiles/escape_netconf.dir/session.cpp.o.d"
  "CMakeFiles/escape_netconf.dir/transport.cpp.o"
  "CMakeFiles/escape_netconf.dir/transport.cpp.o.d"
  "CMakeFiles/escape_netconf.dir/vnf_agent.cpp.o"
  "CMakeFiles/escape_netconf.dir/vnf_agent.cpp.o.d"
  "CMakeFiles/escape_netconf.dir/yang.cpp.o"
  "CMakeFiles/escape_netconf.dir/yang.cpp.o.d"
  "libescape_netconf.a"
  "libescape_netconf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escape_netconf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
