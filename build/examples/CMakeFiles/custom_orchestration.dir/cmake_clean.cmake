file(REMOVE_RECURSE
  "CMakeFiles/custom_orchestration.dir/custom_orchestration.cpp.o"
  "CMakeFiles/custom_orchestration.dir/custom_orchestration.cpp.o.d"
  "custom_orchestration"
  "custom_orchestration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_orchestration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
