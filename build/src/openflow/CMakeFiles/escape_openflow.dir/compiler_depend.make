# Empty compiler generated dependencies file for escape_openflow.
# This may be replaced when dependencies are built.
