// Batched data plane vs scalar: packets/second through the same
// 4-element Click chain (Counter -> IPFilter -> Counter -> Discard),
// once pushed packet-by-packet the pre-batching way and once pushed as
// PacketBatch bursts built from pooled buffers. Compare items_per_second
// between BM_Batching_ScalarChain and BM_Batching_BatchChain; the batch
// path amortizes virtual dispatch per hop and recycles buffers through
// the Discard sink, so it should win comfortably (the PR's acceptance
// bar is >= 1.3x).
#include "bench_common.hpp"
#include <benchmark/benchmark.h>

#include "click/config.hpp"
#include "click/elements.hpp"
#include "net/builder.hpp"
#include "net/packet_batch.hpp"
#include "net/packet_pool.hpp"

using namespace escape;
using namespace escape::click;

namespace {

constexpr const char* kChainConfig = R"(
  c0 :: Counter;
  f :: IPFilter(udp);
  c1 :: Counter;
  sink :: Discard;
  c0 -> f;
  f[0] -> c1;
  c1 -> sink;
)";

Packet bench_packet(std::size_t size) {
  return net::make_udp_packet(net::MacAddr::from_u64(1), net::MacAddr::from_u64(2),
                              net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(10, 0, 0, 2), 1000,
                              2000, size);
}

}  // namespace

/// Baseline: one fresh copy + one virtual push per packet per element.
static void BM_Batching_ScalarChain(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  EventScheduler sched;
  auto router = build_router(kChainConfig, sched);
  if (!router.ok()) {
    state.SkipWithError(router.error().message.c_str());
    return;
  }
  Element* head = (*router)->element("c0");
  const Packet tmpl = bench_packet(size);

  for (auto _ : state) {
    Packet p = tmpl;
    head->push(0, std::move(p));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Batching_ScalarChain)->Arg(64)->Arg(1500);

/// Batched: bursts of pooled packets, one push_batch per hop per burst.
/// The Discard sink recycles every buffer, so steady state allocates
/// nothing on the packet path.
static void BM_Batching_BatchChain(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto burst = static_cast<std::size_t>(state.range(1));
  EventScheduler sched;
  auto router = build_router(kChainConfig, sched);
  if (!router.ok()) {
    state.SkipWithError(router.error().message.c_str());
    return;
  }
  Element* head = (*router)->element("c0");
  const Packet tmpl = bench_packet(size);
  auto& pool = net::default_packet_pool();

  for (auto _ : state) {
    net::PacketBatch batch(burst);
    for (std::size_t i = 0; i < burst; ++i) {
      batch.push_back(pool.acquire_copy(tmpl));
    }
    head->push_batch(0, std::move(batch));
  }
  const auto packets = static_cast<std::int64_t>(state.iterations()) *
                       static_cast<std::int64_t>(burst);
  state.SetItemsProcessed(packets);
  state.SetBytesProcessed(packets * static_cast<std::int64_t>(size));
  state.counters["burst"] = static_cast<double>(burst);
}
BENCHMARK(BM_Batching_BatchChain)
    ->ArgsProduct({{64, 1500}, {8, 32, 128}});

/// Micro: buffer sourcing cost in isolation -- a fresh deep copy per
/// packet vs acquire_copy from the recycling pool.
static void BM_Batching_FreshCopy(benchmark::State& state) {
  const Packet tmpl = bench_packet(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Packet p = tmpl;
    benchmark::DoNotOptimize(p.bytes().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Batching_FreshCopy)->Arg(64)->Arg(1500);

static void BM_Batching_PooledCopy(benchmark::State& state) {
  const Packet tmpl = bench_packet(static_cast<std::size_t>(state.range(0)));
  auto& pool = net::default_packet_pool();
  for (auto _ : state) {
    Packet p = pool.acquire_copy(tmpl);
    benchmark::DoNotOptimize(p.bytes().data());
    pool.recycle(std::move(p));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Batching_PooledCopy)->Arg(64)->Arg(1500);

ESCAPE_BENCH_MAIN("batching");
