// Differential-oracle tests for million-flow classification: the
// tuple-space-search FlowTable against the linear reference oracle
// (tests/support/linear_flow_oracle.hpp), and the compiled
// ClassifierTree against first-match linear rule evaluation.
//
// The generators draw fields from deliberately tiny domains so rule
// overlap, priority ties, shadowing and bucket collisions -- the cases
// where an index can silently disagree with the spec -- happen all the
// time instead of almost never.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "click/classifier_tree.hpp"
#include "click/filter_expr.hpp"
#include "escape/environment.hpp"
#include "net/headers.hpp"
#include "obs/metrics.hpp"
#include "openflow/flow_table.hpp"
#include "service/formats.hpp"
#include "support/linear_flow_oracle.hpp"
#include "util/random.hpp"
#include "util/workload.hpp"

namespace escape::openflow {
namespace {

using testing_oracle = testing::LinearFlowTableOracle;

// --- seeded generators -----------------------------------------------------

/// Flow keys from a tiny universe: 4 ports, 6 hosts, 3 protocols.
net::FlowKey random_key(Rng& rng) {
  net::FlowKey k;
  k.in_port = static_cast<std::uint16_t>(rng.next_range(1, 4));
  k.dl_src = net::MacAddr::from_u64(rng.next_range(1, 6));
  k.dl_dst = net::MacAddr::from_u64(rng.next_range(1, 6));
  k.dl_type = rng.next_bool(0.85) ? net::ethertype::kIpv4 : net::ethertype::kArp;
  if (k.dl_type == net::ethertype::kIpv4) {
    const std::uint8_t protos[] = {net::ipproto::kTcp, net::ipproto::kUdp,
                                   net::ipproto::kIcmp};
    k.nw_proto = protos[rng.pick_index(3)];
    k.nw_src = net::Ipv4Addr(0x0a000000u | (rng.next_range(0, 3) << 8) | rng.next_range(1, 6));
    k.nw_dst = net::Ipv4Addr(0x0a000000u | (rng.next_range(0, 3) << 8) | rng.next_range(1, 6));
    k.nw_tos = static_cast<std::uint8_t>(rng.next_range(0, 3) << 2);
    if (k.nw_proto != net::ipproto::kIcmp) {
      const std::uint16_t ports[] = {53, 80, 443, 8080};
      k.tp_src = ports[rng.pick_index(4)];
      k.tp_dst = ports[rng.pick_index(4)];
    }
  }
  return k;
}

/// Matches across the mask spectrum: exact, 5-tuple, CIDR nets, single
/// fields, and the all-wildcard table-miss template.
Match random_match(Rng& rng) {
  const net::FlowKey k = random_key(rng);
  switch (rng.next_below(7)) {
    case 0:
      return Match::exact(k);
    case 1:  // 5-tuple
      return Match()
          .dl_type(k.dl_type)
          .nw_proto(k.nw_proto)
          .nw_src(k.nw_src)
          .nw_dst(k.nw_dst)
          .tp_dst(k.tp_dst);
    case 2:  // destination CIDR
      return Match().dl_type(net::ethertype::kIpv4).nw_dst(
          k.nw_dst, static_cast<int>(rng.next_range(8, 24)));
    case 3:  // source CIDR + protocol
      return Match()
          .dl_type(net::ethertype::kIpv4)
          .nw_proto(k.nw_proto)
          .nw_src(k.nw_src, static_cast<int>(rng.next_range(16, 32)));
    case 4:  // service port
      return Match().dl_type(net::ethertype::kIpv4).tp_dst(k.tp_dst);
    case 5:  // ingress port
      return Match().in_port(k.in_port);
    default:  // table-miss (all wildcard)
      return Match();
  }
}

FlowMod random_mod(Rng& rng, std::uint64_t& next_cookie) {
  FlowMod mod;
  const std::uint64_t r = rng.next_below(100);
  if (r < 72) {
    mod.command = FlowModCommand::kAdd;
  } else if (r < 82) {
    mod.command = FlowModCommand::kModify;
  } else if (r < 92) {
    mod.command = FlowModCommand::kDelete;
  } else {
    mod.command = FlowModCommand::kDeleteStrict;
  }
  mod.match = random_match(rng);
  // Few distinct priorities => constant tie-breaking pressure.
  mod.priority = static_cast<std::uint16_t>(100 * rng.next_range(1, 4));
  mod.cookie = next_cookie++;
  mod.send_flow_removed = true;
  if (rng.next_bool(0.3)) mod.idle_timeout = milliseconds(rng.next_range(1, 40));
  if (rng.next_bool(0.2)) mod.hard_timeout = milliseconds(rng.next_range(10, 80));
  return mod;
}

struct RemovedLog {
  std::vector<std::uint64_t> seqs;
  std::vector<int> reasons;

  FlowTable::RemovedCallback recorder() {
    return [this](const FlowEntry& e, FlowRemovedReason reason) {
      seqs.push_back(e.seq);
      reasons.push_back(static_cast<int>(reason));
    };
  }
};

/// Full observable-state comparison: size, install order, identity and
/// counters of every entry, and the global hit counters.
template <typename Oracle>
void expect_same_state(FlowTable& table, Oracle& oracle, SimTime now,
                       const std::string& where) {
  ASSERT_EQ(table.size(), oracle.size()) << where;
  EXPECT_EQ(table.lookups(), oracle.lookups()) << where;
  EXPECT_EQ(table.matches(), oracle.matches()) << where;
  const auto got = table.stats(now);
  const auto want = oracle.stats(now);
  ASSERT_EQ(got.size(), want.size()) << where;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].cookie, want[i].cookie) << where << " entry " << i;
    EXPECT_EQ(got[i].priority, want[i].priority) << where << " entry " << i;
    EXPECT_TRUE(got[i].match == want[i].match)
        << where << " entry " << i << ": " << got[i].match.to_string() << " vs "
        << want[i].match.to_string();
    EXPECT_EQ(got[i].packet_count, want[i].packet_count) << where << " entry " << i;
    EXPECT_EQ(got[i].byte_count, want[i].byte_count) << where << " entry " << i;
  }
}

// --- property tests: TSS vs linear oracle ----------------------------------

/// Seeded rule sets x packet streams: every lookup returns the same
/// winner (by cookie and install seq), counters march in lockstep, and
/// the flow-removed stream is identical event for event.
TEST(ClassifyDifferential, LookupMatchesOracleAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng{seed * 7919 + 1};
    FlowTable table;
    testing_oracle oracle;
    RemovedLog table_log, oracle_log;
    table.set_removed_callback(table_log.recorder());
    oracle.set_removed_callback(oracle_log.recorder());

    std::uint64_t next_cookie = 1;
    SimTime now = 0;
    for (int round = 0; round < 2500; ++round) {
      now += microseconds(rng.next_range(1, 2000));
      const std::uint64_t op = rng.next_below(100);
      if (op < 30) {
        const FlowMod mod = random_mod(rng, next_cookie);
        table.apply(mod, now);
        oracle.apply(mod, now);
      } else if (op < 95) {
        const net::FlowKey key = random_key(rng);
        const std::size_t bytes = 64 + rng.next_below(1400);
        FlowEntry* got = table.lookup(key, bytes, now);
        FlowEntry* want = oracle.lookup(key, bytes, now);
        ASSERT_EQ(got != nullptr, want != nullptr)
            << "round " << round << " key " << key.to_string();
        if (got) {
          EXPECT_EQ(got->cookie, want->cookie) << "round " << round;
          EXPECT_EQ(got->seq, want->seq) << "round " << round;
          EXPECT_EQ(got->priority, want->priority) << "round " << round;
        }
      } else {
        EXPECT_EQ(table.expire(now), oracle.expire(now)) << "round " << round;
      }
    }
    expect_same_state(table, oracle, now, "final");
    // Eviction order is part of the contract: the flow-removed streams
    // must be identical, not merely equal as sets.
    EXPECT_EQ(table_log.seqs, oracle_log.seqs);
    EXPECT_EQ(table_log.reasons, oracle_log.reasons);
  }
}

/// apply_batch must leave exactly the state of N sequential apply()
/// calls -- the oracle applies one-by-one, the table in batches.
TEST(ClassifyDifferential, BatchApplyEquivalentToSequential) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng{seed + 42};
    FlowTable table;
    testing_oracle oracle;
    RemovedLog table_log, oracle_log;
    table.set_removed_callback(table_log.recorder());
    oracle.set_removed_callback(oracle_log.recorder());

    std::uint64_t next_cookie = 1;
    SimTime now = 0;
    for (int batch = 0; batch < 60; ++batch) {
      now += milliseconds(1);
      std::vector<FlowMod> mods;
      const std::size_t n = 1 + rng.next_below(40);
      for (std::size_t i = 0; i < n; ++i) mods.push_back(random_mod(rng, next_cookie));
      table.apply_batch(mods, now);
      oracle.apply_batch(mods, now);
      for (int probe = 0; probe < 50; ++probe) {
        const net::FlowKey key = random_key(rng);
        FlowEntry* got = table.lookup(key, 100, now);
        FlowEntry* want = oracle.lookup(key, 100, now);
        ASSERT_EQ(got != nullptr, want != nullptr);
        if (got) EXPECT_EQ(got->seq, want->seq);
      }
    }
    expect_same_state(table, oracle, now, "final");
    EXPECT_EQ(table_log.seqs, oracle_log.seqs);
    EXPECT_EQ(table_log.reasons, oracle_log.reasons);
  }
}

/// record_hit (the batch fast path) must leave counters exactly as if
/// lookup() had run per packet, and stay oracle-identical.
TEST(ClassifyDifferential, RecordHitCountersMatchOracle) {
  Rng rng{99};
  FlowTable table;
  testing_oracle oracle;
  std::uint64_t next_cookie = 1;
  SimTime now = 0;
  for (int i = 0; i < 60; ++i) {
    FlowMod mod = random_mod(rng, next_cookie);
    mod.command = FlowModCommand::kAdd;
    mod.idle_timeout = 0;
    mod.hard_timeout = 0;
    table.apply(mod, now);
    oracle.apply(mod, now);
  }
  for (int round = 0; round < 500; ++round) {
    now += microseconds(50);
    const net::FlowKey key = random_key(rng);
    FlowEntry* got = table.lookup(key, 100, now);
    FlowEntry* want = oracle.lookup(key, 100, now);
    ASSERT_EQ(got != nullptr, want != nullptr);
    if (!got) continue;
    // A "run" of the same flow replays hits without re-probing.
    const std::size_t run = rng.next_below(8);
    for (std::size_t j = 0; j < run; ++j) {
      now += microseconds(1);
      table.record_hit(*got, 100, now);
      oracle.record_hit(*want, 100, now);
    }
  }
  expect_same_state(table, oracle, now, "final");
}

// --- churn fuzz ------------------------------------------------------------

/// 50k seeded random operations; the full observable table state is
/// diffed against the oracle every 1k ops. Runs under the ASan/TSan CI
/// jobs like every other test binary.
TEST(ClassifyChurnFuzz, FiftyThousandOpsOracleIdentical) {
  Rng rng{0xC0FFEE};
  FlowTable table;
  testing_oracle oracle;
  RemovedLog table_log, oracle_log;
  table.set_removed_callback(table_log.recorder());
  oracle.set_removed_callback(oracle_log.recorder());

  std::uint64_t next_cookie = 1;
  SimTime now = 0;
  for (int op = 1; op <= 50000; ++op) {
    now += microseconds(rng.next_range(1, 500));
    const std::uint64_t r = rng.next_below(100);
    if (r < 25) {
      const FlowMod mod = random_mod(rng, next_cookie);
      table.apply(mod, now);
      oracle.apply(mod, now);
    } else if (r < 97) {
      const net::FlowKey key = random_key(rng);
      FlowEntry* got = table.lookup(key, 64, now);
      FlowEntry* want = oracle.lookup(key, 64, now);
      ASSERT_EQ(got != nullptr, want != nullptr) << "op " << op;
      if (got) ASSERT_EQ(got->seq, want->seq) << "op " << op;
    } else {
      ASSERT_EQ(table.expire(now), oracle.expire(now)) << "op " << op;
    }
    if (op % 1000 == 0) {
      expect_same_state(table, oracle, now, "op " + std::to_string(op));
      ASSERT_EQ(table_log.seqs, oracle_log.seqs) << "op " << op;
    }
  }
}

// --- delete_matching cost regression ---------------------------------------

/// The purge paths must route through the mask index: cost proportional
/// to the entries actually touched, not to the table size. (The seed
/// implementation rescanned all N entries for every delete.)
TEST(ClassifyPurgeCost, DeleteExaminesOnlyMatchingEntries) {
  FlowTable table;
  // 20k exact entries...
  std::vector<FlowMod> mods;
  for (std::uint32_t i = 0; i < 20000; ++i) {
    net::FlowKey k;
    k.dl_type = net::ethertype::kIpv4;
    k.nw_proto = net::ipproto::kUdp;
    k.nw_src = net::Ipv4Addr(0x0a000000u + i);
    k.nw_dst = net::Ipv4Addr(0x0b000000u + i);
    k.tp_src = 1000;
    k.tp_dst = 2000;
    FlowMod mod;
    mod.match = Match::exact(k);
    mod.cookie = i;
    mods.push_back(mod);
  }
  // ...plus 100 wildcard entries in one mask group, distinct buckets.
  for (std::uint32_t i = 0; i < 100; ++i) {
    FlowMod mod;
    mod.match = Match().dl_type(net::ethertype::kIpv4).nw_dst(net::Ipv4Addr(0x0c000000u + i));
    mod.cookie = 100000 + i;
    mods.push_back(mod);
  }
  table.apply_batch(mods, 0);
  ASSERT_EQ(table.size(), 20100u);

  // Strict delete: only the template's own bucket is examined.
  FlowMod del;
  del.command = FlowModCommand::kDeleteStrict;
  del.match = Match().dl_type(net::ethertype::kIpv4).nw_dst(net::Ipv4Addr(0x0c000000u + 7));
  del.priority = 0x8000;
  table.apply(del, 0);
  EXPECT_EQ(table.size(), 20099u);
  EXPECT_LE(table.last_delete_examined(), 2u)
      << "strict purge rescanned the table (examined "
      << table.last_delete_examined() << " of 20100 entries)";

  // Non-strict delete with an exact template: one bucket probe, not a
  // scan of the 20k-entry exact space.
  net::FlowKey victim;
  victim.dl_type = net::ethertype::kIpv4;
  victim.nw_proto = net::ipproto::kUdp;
  victim.nw_src = net::Ipv4Addr(0x0a000000u + 5);
  victim.nw_dst = net::Ipv4Addr(0x0b000000u + 5);
  victim.tp_src = 1000;
  victim.tp_dst = 2000;
  FlowMod del2;
  del2.command = FlowModCommand::kDelete;
  del2.match = Match::exact(victim);
  table.apply(del2, 0);
  EXPECT_EQ(table.size(), 20098u);
  EXPECT_LE(table.last_delete_examined(), 2u);
}

// --- ClassifierTree vs linear first-match ----------------------------------

/// Random rule lists over the full filter grammar x random packets: the
/// compiled decision tree and plain first-match evaluation agree on
/// every verdict.
TEST(ClassifierTreeDifferential, TreeMatchesLinearAcrossSeeds) {
  using click::ClassifierTree;
  using click::ClassifyCtx;
  using click::FilterExpr;

  auto random_atom = [](Rng& rng) -> std::string {
    switch (rng.next_below(10)) {
      case 0: return "ip";
      case 1: return "arp";
      case 2: return "tcp";
      case 3: return "udp";
      case 4: return "icmp";
      case 5: {
        const char* dir[] = {"src ", "dst ", ""};
        return std::string(dir[rng.pick_index(3)]) + "host 10.0." +
               std::to_string(rng.next_range(0, 3)) + "." + std::to_string(rng.next_range(1, 5));
      }
      case 6: {
        const char* dir[] = {"src ", "dst ", ""};
        return std::string(dir[rng.pick_index(3)]) + "net 10.0." +
               std::to_string(rng.next_range(0, 3)) + ".0/" + std::to_string(8 * rng.next_range(2, 3));
      }
      case 7: {
        const char* dir[] = {"src ", "dst ", ""};
        const std::uint16_t ports[] = {53, 80, 443, 8080};
        return std::string(dir[rng.pick_index(3)]) + "port " +
               std::to_string(ports[rng.pick_index(4)]);
      }
      case 8:
        return "dscp " + std::to_string(rng.next_range(0, 3) << 2);
      default: {
        const char* flags[] = {"syn", "ack", "fin", "rst"};
        return flags[rng.pick_index(4)];
      }
    }
  };
  auto random_expr_text = [&](Rng& rng) {
    std::string text = rng.next_bool(0.2) ? "not " + random_atom(rng) : random_atom(rng);
    const std::size_t terms = rng.next_below(3);
    for (std::size_t i = 0; i < terms; ++i) {
      text += rng.next_bool() ? " && " : " || ";
      if (rng.next_bool(0.15)) text += "not ";
      text += random_atom(rng);
    }
    return text;
  };
  // Contexts mirror ClassifyCtx::from_packet: tcp_flags only on ip/tcp.
  auto random_ctx = [](Rng& rng) {
    ClassifyCtx ctx;
    ctx.key = random_key(rng);
    if (ctx.key.dl_type == net::ethertype::kIpv4 && ctx.key.nw_proto == net::ipproto::kTcp) {
      ctx.tcp_flags = static_cast<std::uint8_t>(rng.next_below(32));
    }
    return ctx;
  };

  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng{seed * 131 + 7};
    std::vector<FilterExpr> rules;
    const std::size_t n_rules = 1 + rng.next_below(12);
    for (std::size_t i = 0; i < n_rules; ++i) {
      auto expr = FilterExpr::compile(random_expr_text(rng));
      ASSERT_TRUE(expr.ok()) << expr.error().to_string();
      rules.push_back(std::move(*expr));
    }
    std::vector<ClassifierTree::RuleSpec> specs;
    for (std::size_t i = 0; i < rules.size(); ++i) {
      specs.push_back({static_cast<int>(i), &rules[i]});
    }
    const int miss = -1;
    ClassifierTree tree;
    tree.compile(specs, miss);

    for (int packet = 0; packet < 3000; ++packet) {
      const ClassifyCtx ctx = random_ctx(rng);
      int linear = miss;
      for (std::size_t i = 0; i < rules.size(); ++i) {
        if (rules[i].matches(ctx)) {
          linear = static_cast<int>(i);
          break;
        }
      }
      ASSERT_EQ(tree.classify(ctx), linear)
          << "packet " << packet << " key " << ctx.key.to_string() << " flags "
          << int(ctx.tcp_flags);
    }
  }
}

// --- scale smoke -----------------------------------------------------------

/// One million exact rules installed in a single batch, looked up, and
/// purged. Sized to finish well inside the ctest --timeout headroom
/// even under sanitizers.
TEST(ClassifyScale, MillionRuleSmoke) {
  FlowTable table;
  constexpr std::uint32_t kRules = 1'000'000;
  std::vector<FlowMod> mods;
  mods.reserve(kRules);
  for (std::uint32_t i = 0; i < kRules; ++i) {
    net::FlowKey k;
    k.dl_type = net::ethertype::kIpv4;
    k.nw_proto = net::ipproto::kTcp;
    k.nw_src = net::Ipv4Addr(0x0a000000u + i);
    k.nw_dst = net::Ipv4Addr(0x14000000u + (i >> 8));
    k.tp_src = static_cast<std::uint16_t>(i & 0xffff);
    k.tp_dst = 443;
    FlowMod mod;
    mod.match = Match::exact(k);
    mod.cookie = i;
    mods.push_back(mod);
  }
  table.apply_batch(mods, 0);
  ASSERT_EQ(table.size(), kRules);
  // The exact space is one mask group regardless of rule count.
  EXPECT_EQ(table.mask_group_count(), 1u);

  Rng rng{3};
  for (int i = 0; i < 10000; ++i) {
    const std::uint32_t pick = static_cast<std::uint32_t>(rng.next_below(kRules));
    FlowEntry* hit = table.lookup(mods[pick].match.fields(), 64, 1);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->cookie, pick);
  }
  EXPECT_EQ(table.matches(), 10000u);

  // Table-miss purge drops everything in one flow-mod.
  FlowMod del;
  del.command = FlowModCommand::kDelete;
  table.apply(del, 1);
  EXPECT_EQ(table.size(), 0u);
}

// --- workload generator ----------------------------------------------------

TEST(WorkloadPlan, DeterministicAndWellFormed) {
  workload::Options opts;
  opts.seed = 1234;
  opts.fattree_k = 4;
  opts.flows = 500;
  opts.chains = 3;
  const workload::Plan a = workload::generate(opts);
  const workload::Plan b = workload::generate(opts);

  // fat-tree(4): 16 hosts, 4 cores + 8 edge + 8 agg, 4 containers.
  EXPECT_EQ(a.hosts.size(), 16u);
  EXPECT_EQ(a.switches.size(), 20u);
  EXPECT_EQ(a.containers.size(), 4u);
  // Links: 48 fabric (16 edge-agg + 16 agg-core + 16 host-edge) + 4
  // container attachments.
  EXPECT_EQ(a.links.size(), 52u);
  EXPECT_EQ(a.arrivals.size(), 500u);

  // Same seed => identical plan, event for event.
  ASSERT_EQ(a.arrivals.size(), b.arrivals.size());
  for (std::size_t i = 0; i < a.arrivals.size(); ++i) {
    EXPECT_EQ(a.arrivals[i].at, b.arrivals[i].at);
    EXPECT_EQ(a.arrivals[i].src_host, b.arrivals[i].src_host);
    EXPECT_EQ(a.arrivals[i].dst_host, b.arrivals[i].dst_host);
    EXPECT_EQ(a.arrivals[i].packets, b.arrivals[i].packets);
  }
  ASSERT_EQ(a.churn.size(), b.churn.size());
  for (std::size_t i = 0; i < a.churn.size(); ++i) {
    EXPECT_EQ(a.churn[i].at, b.churn[i].at);
    EXPECT_EQ(a.churn[i].deploy, b.churn[i].deploy);
    EXPECT_EQ(a.churn[i].slot, b.churn[i].slot);
  }

  // Arrivals are time-sorted; no flow talks to itself; churn per slot
  // alternates starting with a deploy.
  for (std::size_t i = 1; i < a.arrivals.size(); ++i) {
    EXPECT_LE(a.arrivals[i - 1].at, a.arrivals[i].at);
  }
  for (const auto& fa : a.arrivals) {
    EXPECT_NE(fa.src_host, fa.dst_host);
    EXPECT_LT(fa.src_host, a.hosts.size());
    EXPECT_LT(fa.dst_host, a.hosts.size());
  }
  std::vector<bool> up(opts.chains, false);
  for (const auto& ev : a.churn) {
    EXPECT_EQ(ev.deploy, !up[ev.slot]);
    up[ev.slot] = ev.deploy;
  }

  // A different seed actually changes the schedule.
  opts.seed = 4321;
  const workload::Plan c = workload::generate(opts);
  bool any_diff = false;
  for (std::size_t i = 0; i < c.arrivals.size() && !any_diff; ++i) {
    any_diff = c.arrivals[i].at != a.arrivals[i].at ||
               c.arrivals[i].dst_host != a.arrivals[i].dst_host;
  }
  EXPECT_TRUE(any_diff);
}

/// The workload replayed through the full emulation is deterministic
/// across event-engine thread counts: 1-thread and 4-thread sharded
/// runs produce bit-identical scheduler order digests and delivery
/// counters.
TEST(WorkloadPlan, ShardedReplayDigestsIdentical) {
  workload::Options wopts;
  wopts.seed = 5;
  wopts.fattree_k = 2;
  wopts.flows = 60;
  wopts.arrival_rate = 400.0;
  wopts.chains = 0;  // traffic only; chains exercise their own tests
  const workload::Plan plan = workload::generate(wopts);

  auto replay = [&plan](std::size_t threads) {
    obs::MetricsRegistry::global().reset_values();
    service::TopologySpec spec;
    spec.name = "wl";
    for (const auto& h : plan.hosts) spec.nodes.push_back({h, "host", 1.0, 8});
    for (const auto& s : plan.switches) spec.nodes.push_back({s, "switch", 1.0, 8});
    for (const auto& c : plan.containers) spec.nodes.push_back({c, "container", 4.0, 16});
    std::map<std::string, std::uint16_t> next_port;
    for (const auto& s : plan.switches) next_port[s] = 1;
    auto port_of = [&next_port](const std::string& node) -> std::uint16_t {
      auto it = next_port.find(node);
      return it == next_port.end() ? 0 : it->second++;
    };
    for (const auto& l : plan.links) {
      service::TopologyLinkSpec link;
      link.a = l.a;
      link.port_a = port_of(l.a);
      link.b = l.b;
      link.port_b = port_of(l.b);
      spec.links.push_back(link);
    }
    EnvironmentOptions opts;
    opts.threads = threads;
    opts.shard_by = netemu::ShardBy::kSwitch;
    Environment env{opts};
    EXPECT_TRUE(env.load_topology(spec).ok());
    EXPECT_TRUE(env.start().ok());
    const SimTime base = env.scheduler().now();
    for (const auto& fa : plan.arrivals) {
      // Arrival events go straight onto the source host's shard so the
      // flow starts as a shard-local event (cross-shard hops then ride
      // the links' registered lookahead).
      netemu::Host* src = env.host(plan.hosts[fa.src_host]);
      netemu::Host* dst = env.host(plan.hosts[fa.dst_host]);
      src->scheduler().schedule_at(base + fa.at, [src, dst, fa] {
        src->start_udp_flow(dst->mac(), dst->ip(), fa.src_port, fa.dst_port, fa.packets, 2000);
      });
    }
    env.run_for(plan.horizon + seconds(1));
    std::uint64_t tx = 0;
    for (const auto& h : plan.hosts) tx += env.host(h)->tx_packets();
    return std::pair<std::uint64_t, std::uint64_t>(env.scheduler().order_digest(), tx);
  };

  const auto single = replay(1);
  const auto sharded = replay(4);
  EXPECT_EQ(single.first, sharded.first) << "order digest diverged across thread counts";
  EXPECT_EQ(single.second, sharded.second);
}

}  // namespace
}  // namespace escape::openflow
