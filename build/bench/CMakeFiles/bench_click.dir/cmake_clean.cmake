file(REMOVE_RECURSE
  "CMakeFiles/bench_click.dir/bench_click.cpp.o"
  "CMakeFiles/bench_click.dir/bench_click.cpp.o.d"
  "bench_click"
  "bench_click.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_click.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
