#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace escape::obs {

namespace {

void append_escaped(std::string& out, std::string_view raw) {
  for (char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

void sort_labels(Labels& labels) {
  std::sort(labels.begin(), labels.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

Logger& obs_log() {
  static Logger log{"obs.metrics"};
  return log;
}

/// Formats a value the way Prometheus text exposition expects: integral
/// values without a fractional part, everything else with %g.
std::string format_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    return strings::format("%lld", static_cast<long long>(v));
  }
  return strings::format("%g", v);
}

}  // namespace

std::string format_labels(const Labels& labels) {
  if (labels.empty()) return "";
  Labels sorted = labels;
  sort_labels(sorted);
  std::string out = "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i) out += ",";
    out += sorted[i].first;
    out += "=\"";
    append_escaped(out, sorted[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

// --- BoundedHistogram ---------------------------------------------------------

BoundedHistogram::BoundedHistogram(HistogramOptions options)
    : options_(options), log_growth_(std::log(options.growth)) {
  if (options_.buckets < 2) options_.buckets = 2;
  if (options_.growth <= 1.0) {
    options_.growth = 1.189207115002721;
    log_growth_ = std::log(options_.growth);
  }
  if (options_.min_bound <= 0) options_.min_bound = 1.0;
  counts_ = std::vector<std::atomic<std::uint64_t>>(options_.buckets);
}

std::size_t BoundedHistogram::bucket_index(double sample) const {
  if (!(sample > options_.min_bound)) return 0;
  const double i = std::ceil(std::log(sample / options_.min_bound) / log_growth_);
  if (i >= static_cast<double>(counts_.size() - 1)) return counts_.size() - 1;
  return static_cast<std::size_t>(i);
}

double BoundedHistogram::bucket_upper(std::size_t i) const {
  return options_.min_bound * std::pow(options_.growth, static_cast<double>(i));
}

void BoundedHistogram::record(double sample) {
  counts_[bucket_index(sample)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS loops instead of atomic<double>::fetch_add/min/max so the same
  // code works on toolchains without C++20 atomic-float RMW support.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + sample, std::memory_order_relaxed)) {
  }
  cur = min_.load(std::memory_order_relaxed);
  while (sample < cur &&
         !min_.compare_exchange_weak(cur, sample, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (sample > cur &&
         !max_.compare_exchange_weak(cur, sample, std::memory_order_relaxed)) {
  }
}

double BoundedHistogram::percentile(double p) const {
  const std::size_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Geometric bucket midpoint, clamped to the observed range so
      // single-valued and extreme distributions stay exact.
      double estimate;
      if (i == 0) {
        estimate = options_.min_bound;
      } else {
        estimate = bucket_upper(i) / std::sqrt(options_.growth);
      }
      return std::clamp(estimate, min(), max());
    }
  }
  return max();
}

void BoundedHistogram::clear() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

std::string BoundedHistogram::summary() const {
  return strings::format("n=%zu mean=%.3f p50=%.3f p95=%.3f max=%.3f",
                         count(), mean(), p50(), p95(), max());
}

// --- MetricsRegistry ----------------------------------------------------------

std::string_view metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kCallbackGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

std::string MetricsRegistry::key_of(std::string_view name, const Labels& labels) {
  return std::string(name) + format_labels(labels);
}

MetricsRegistry::Entry* MetricsRegistry::find_or_create(std::string_view name,
                                                        Labels&& labels, MetricKind kind) {
  sort_labels(labels);
  const std::string key = key_of(name, labels);
  auto it = metrics_.find(key);
  if (it != metrics_.end()) {
    // Callback gauges are re-registrable (a restarted VNF re-exports its
    // handlers); everything else must match the original kind.
    if (it->second.kind == kind) return &it->second;
    obs_log().warn("metric '", key, "' re-registered as ",
                   metric_kind_name(kind), " but exists as ",
                   metric_kind_name(it->second.kind), "; returning detached metric");
    detached_.push_back(std::make_unique<Entry>());
    Entry* orphan = detached_.back().get();
    orphan->name = std::string(name);
    orphan->labels = std::move(labels);
    orphan->kind = kind;
    return orphan;
  }
  Entry entry;
  entry.name = std::string(name);
  entry.labels = std::move(labels);
  entry.kind = kind;
  return &metrics_.emplace(key, std::move(entry)).first->second;
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = find_or_create(name, std::move(labels), MetricKind::kCounter);
  if (!e->counter) e->counter = std::make_unique<Counter>();
  return *e->counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = find_or_create(name, std::move(labels), MetricKind::kGauge);
  if (!e->gauge) e->gauge = std::make_unique<Gauge>();
  return *e->gauge;
}

BoundedHistogram& MetricsRegistry::histogram(std::string_view name, Labels labels,
                                             HistogramOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = find_or_create(name, std::move(labels), MetricKind::kHistogram);
  if (!e->histogram) e->histogram = std::make_unique<BoundedHistogram>(options);
  return *e->histogram;
}

void MetricsRegistry::callback_gauge(std::string_view name, Labels labels,
                                     const void* owner, CallbackFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = find_or_create(name, std::move(labels), MetricKind::kCallbackGauge);
  e->owner = owner;
  e->callback = std::move(fn);
}

void MetricsRegistry::remove_callbacks(const void* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = metrics_.begin(); it != metrics_.end();) {
    if (it->second.kind == MetricKind::kCallbackGauge && it->second.owner == owner) {
      it = metrics_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

bool MetricsRegistry::has(std::string_view name, const Labels& labels) const {
  Labels sorted = labels;
  sort_labels(sorted);
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.count(key_of(name, sorted)) > 0;
}

std::string MetricsRegistry::render_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::set<std::string> typed;
  for (const auto& [key, e] : metrics_) {
    const std::string labels = format_labels(e.labels);
    if (typed.insert(e.name).second) {
      out += "# TYPE " + e.name + " " + std::string(metric_kind_name(e.kind)) + "\n";
    }
    switch (e.kind) {
      case MetricKind::kCounter:
        out += e.name + labels + " " + std::to_string(e.counter->value()) + "\n";
        break;
      case MetricKind::kGauge:
        out += e.name + labels + " " + format_value(e.gauge->value()) + "\n";
        break;
      case MetricKind::kCallbackGauge: {
        auto v = e.callback ? e.callback() : std::nullopt;
        if (v) out += e.name + labels + " " + format_value(*v) + "\n";
        break;
      }
      case MetricKind::kHistogram: {
        const BoundedHistogram& h = *e.histogram;
        out += e.name + "_count" + labels + " " + std::to_string(h.count()) + "\n";
        out += e.name + "_sum" + labels + " " + format_value(h.sum()) + "\n";
        for (double q : {50.0, 95.0, 99.0}) {
          Labels ql = e.labels;
          ql.emplace_back("quantile", strings::format("%.2f", q / 100.0));
          out += e.name + format_labels(ql) + " " + format_value(h.percentile(q)) + "\n";
        }
        break;
      }
    }
  }
  return out;
}

json::Value MetricsRegistry::snapshot_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Array metrics;
  for (const auto& [key, e] : metrics_) {
    json::Object m;
    m["name"] = e.name;
    m["kind"] = std::string(metric_kind_name(e.kind));
    json::Object labels;
    for (const auto& [k, v] : e.labels) labels[k] = v;
    m["labels"] = std::move(labels);
    switch (e.kind) {
      case MetricKind::kCounter:
        m["value"] = e.counter->value();
        break;
      case MetricKind::kGauge:
        m["value"] = e.gauge->value();
        break;
      case MetricKind::kCallbackGauge: {
        auto v = e.callback ? e.callback() : std::nullopt;
        if (!v) continue;
        m["value"] = *v;
        break;
      }
      case MetricKind::kHistogram: {
        const BoundedHistogram& h = *e.histogram;
        m["count"] = static_cast<std::uint64_t>(h.count());
        m["sum"] = h.sum();
        m["min"] = h.min();
        m["max"] = h.max();
        m["mean"] = h.mean();
        m["p50"] = h.p50();
        m["p95"] = h.p95();
        m["p99"] = h.p99();
        break;
      }
    }
    metrics.push_back(std::move(m));
  }
  json::Object doc;
  doc["metrics"] = std::move(metrics);
  return doc;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, e] : metrics_) {
    if (e.counter) e.counter->reset();
    if (e.gauge) e.gauge->set(0);
    if (e.histogram) e.histogram->clear();
  }
}

}  // namespace escape::obs

namespace escape::stats {

obs::Counter& packet_clones() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("escape_packet_clones_total");
  return counter;
}

}  // namespace escape::stats
