# Empty compiler generated dependencies file for bench_click.
# This may be replaced when dependencies are built.
