// Flow-aware middlebox chain: a TCP stream IDS deployed from the VNF
// catalog, fed by the FlowManager classification substrate.
//
// Demonstrates:
//   * the tcp_ids catalog template (FlowManager -> TcpReassembler ->
//     StreamIDS) rendered and deployed like any other VNF,
//   * cross-packet pattern detection: the signature straddles a TCP
//     segment boundary, so per-packet DPI would miss it while stream
//     reassembly catches it,
//   * MODE drop cutting the flagged connection mid-stream while other
//     flows keep flowing,
//   * flow-table observability (flows, evictions, alerts) through the
//     NETCONF monitoring path.
#include <cstdio>

#include "escape/environment.hpp"
#include "net/builder.hpp"

using namespace escape;

namespace {

constexpr const char* kTopology = R"({
  "name": "ids-tap",
  "nodes": [
    {"name": "client", "kind": "host"},
    {"name": "server", "kind": "host"},
    {"name": "s1",     "kind": "switch"},
    {"name": "s2",     "kind": "switch"},
    {"name": "mb",     "kind": "container", "cpu": 1.0, "slots": 8}
  ],
  "links": [
    {"a": "client", "a_port": 0, "b": "s1", "b_port": 1, "bw_mbps": 1000, "delay_us": 100},
    {"a": "s1",     "a_port": 2, "b": "s2", "b_port": 1, "bw_mbps": 1000, "delay_us": 100},
    {"a": "server", "a_port": 0, "b": "s2", "b_port": 2, "bw_mbps": 1000, "delay_us": 100},
    {"a": "mb",     "a_port": 0, "b": "s1", "b_port": 3, "bw_mbps": 1000, "delay_us": 50}
  ]
})";

constexpr const char* kServiceGraph = R"({
  "name": "middlebox-tcp-ids",
  "saps": ["client", "server"],
  "vnfs": [
    {"id": "ids", "type": "tcp_ids", "cpu": 0.25,
     "params": {"patterns": "exploit", "mode": "drop"}}
  ],
  "links": [
    {"src": "client", "dst": "ids", "bw_mbps": 100},
    {"src": "ids", "dst": "server", "bw_mbps": 100}
  ]
})";

/// One TCP segment of the client->server stream.
net::Packet segment(netemu::Host* client, netemu::Host* server, std::uint32_t seq,
                    std::uint8_t flags, std::string_view payload) {
  net::TcpFields tcp;
  tcp.src_port = 44123;
  tcp.dst_port = 80;
  tcp.seq = seq;
  tcp.flags = flags;
  net::PacketBuilder b;
  b.eth(client->mac(), server->mac())
      .ipv4(client->ip(), server->ip(), net::ipproto::kTcp)
      .tcp(tcp);
  if (!payload.empty()) b.payload(payload);
  return b.build();
}

}  // namespace

int main() {
  Logging::set_level(LogLevel::kWarn);
  Environment env;

  auto topology = service::TopologySpec::from_json(kTopology);
  if (!topology.ok()) {
    std::fprintf(stderr, "topology: %s\n", topology.error().to_string().c_str());
    return 1;
  }
  if (auto s = env.load_topology(*topology); !s.ok()) {
    std::fprintf(stderr, "build: %s\n", s.error().to_string().c_str());
    return 1;
  }
  if (auto s = env.start(); !s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.error().to_string().c_str());
    return 1;
  }

  auto graph = service::service_graph_from_json(kServiceGraph);
  if (!graph.ok()) {
    std::fprintf(stderr, "sg: %s\n", graph.error().to_string().c_str());
    return 1;
  }
  auto chain = env.deploy(*graph);
  if (!chain.ok()) {
    std::fprintf(stderr, "deploy: %s\n", chain.error().to_string().c_str());
    return 1;
  }
  const ChainDeployment* dep = env.deployment(*chain);
  std::printf("deployed '%s': %s\n", graph->name().c_str(),
              dep->record.mapping.to_string().c_str());

  netemu::Host* client = env.host("client");
  netemu::Host* server = env.host("server");

  // An innocent UDP flow through the same chain (the IDS falls back to
  // per-packet scanning for non-TCP traffic and finds nothing).
  client->start_udp_flow(server->mac(), server->ip(), 40000, 8080, 500, 2000);
  env.run_for(seconds(2));
  const std::uint64_t innocent = server->rx_packets();
  std::printf("innocent UDP flow: %llu/500 delivered\n",
              static_cast<unsigned long long>(innocent));

  // The attack stream. The signature "exploit" straddles the boundary
  // between the two data segments: neither packet contains it alone.
  const std::uint32_t isn = 7000;
  client->send(segment(client, server, isn, /*SYN*/ 0x02, ""));
  client->send(segment(client, server, isn + 1, /*ACK*/ 0x10, "GET /expl"));
  client->send(segment(client, server, isn + 10, /*ACK*/ 0x10, "oit.bin HTTP/1.0"));
  // Already flagged: MODE drop cuts every later packet of this flow.
  client->send(segment(client, server, isn + 26, /*ACK*/ 0x10, "Host: victim"));
  env.run_for(seconds(1));
  std::printf("attack stream: %llu of 4 segments reached the server\n",
              static_cast<unsigned long long>(server->rx_packets() - innocent));

  // Clicky surface over NETCONF: the flow table and IDS verdicts.
  for (const auto& vnf : dep->record.vnfs) {
    auto info = env.monitor_vnf(vnf.container, vnf.instance_id);
    if (!info.ok()) continue;
    std::printf("-- %s @ %s\n", vnf.vnf_id.c_str(), vnf.container.c_str());
    for (const auto& [handler, value] : info->handlers) {
      if (handler.find("flows") != std::string::npos ||
          handler.find("alerts") != std::string::npos ||
          handler.find("cut_packets") != std::string::npos ||
          handler.find("reassembled_bytes") != std::string::npos ||
          handler.find("pattern0_hits") != std::string::npos) {
        std::printf("   %-28s %s\n", handler.c_str(), value.c_str());
      }
    }
  }
  return 0;
}
